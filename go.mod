module parcc

go 1.24
