package parcc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"parcc/internal/baseline"
	"parcc/internal/core"
	"parcc/internal/graph"
	"parcc/internal/labeled"
	"parcc/internal/liutarjan"
	"parcc/internal/ltz"
	"parcc/internal/obs"
	"parcc/internal/par"
	"parcc/internal/pram"
	"parcc/internal/prim"
	"parcc/internal/solve"
	"parcc/internal/spectral"
)

// Solver is a reusable connectivity session: a goroutine pool, a PRAM
// machine, a scratch arena, and a cached CSR plan that persist across
// Solve calls.  ConnectedComponents pays the construction of all four on
// every call; a Solver pays it once, so a serving loop issuing many solves
// runs against warm state — after the first solve on a graph, the hot
// paths are near-zero-alloc (SolveInto with a reused Result is the
// zero-allocation variant).
//
// A Solver is safe for concurrent use: Solve serializes internally.  For
// parallel query throughput across CPU cores, create one Solver per worker
// goroutine instead of sharing one (the arena and machine are per-session
// state, not shareable mid-solve).  Close releases the pooled goroutines;
// an unclosed Solver is reclaimed by the garbage collector.
//
//	s, _ := parcc.NewSolver(&parcc.Options{Backend: parcc.BackendConcurrent})
//	defer s.Close()
//	for _, g := range queries {
//		res, _ := s.Solve(g)
//		...
//	}
type Solver struct {
	opt   Options // normalized: algorithm, backend, KnownGapB filled in
	seed  uint64  // effective seed (Options.Seed/ZeroSeed resolved)
	procs int

	// rec is the session's trace recorder: non-nil exactly when
	// Options.Trace is set, immutable after NewSolver (so the pre-lock
	// validation timing may read it without s.mu).  Nil threads through
	// cx.Rec as the no-op tracing-off state.
	rec *obs.Recorder

	mu        sync.Mutex
	m         *pram.Machine
	rt        *par.Runtime // concurrent-backend pool (nil otherwise)
	casRT     *par.Runtime // lazy pool for CASUnite and the incremental kernels
	arena     *par.Arena
	cx        *solve.Ctx  // persistent solve context (machine+arena+plan cache)
	plan      *graph.Plan // single-slot plan cache (most recent graph)
	inc       *incSession // live incremental session (nil until Attach)
	lastTrace *Trace      // most recent traced operation (tracing on only)
	closed    bool
	// fCur/fNxt are the frontier engine's reusable active-vertex-set pair
	// (nil until the first frontier solve; empty between operations), so
	// warm frontier solves allocate nothing.
	fCur, fNxt *par.Frontier

	// snap is the published read view (see PublishSnapshot/ReadView):
	// written under mu, loaded lock-free by any number of readers.
	// snapVersion counts publishes across the Solver's whole lifetime.
	snap        atomic.Pointer[Snapshot]
	snapVersion uint64
	// pages is the copy-on-write paged snapshot mirror (pages.go): nil
	// until the first PublishSnapshot after an Attach, so sessions that
	// never publish pay zero mirror bookkeeping in AddEdges/RemoveEdges.
	pages *pageStore
}

// NewSolver validates the options and builds a session: the machine and
// (for the concurrent backend) the goroutine pool are constructed here,
// once.  A nil opt selects the defaults, exactly as ConnectedComponents
// does.
func NewSolver(opt *Options) (*Solver, error) {
	o := Options{}
	if opt != nil {
		o = *opt
	}
	if o.Algorithm == "" {
		o.Algorithm = FLS
	}
	if !knownAlgorithm(o.Algorithm) {
		return nil, fmt.Errorf("parcc: unknown algorithm %q", o.Algorithm)
	}
	if o.KnownGapB <= 0 {
		o.KnownGapB = 16
	}
	if o.Procs < 0 {
		return nil, &ProcsRangeError{Procs: o.Procs}
	}
	s := &Solver{opt: o, seed: effectiveSeed(o), arena: par.NewArena()}

	procs := o.Procs
	if procs <= 0 {
		procs = o.Workers
	}
	if procs <= 0 {
		procs = runtime.NumCPU()
	}
	mopts := []pram.Option{pram.Seed(s.seed)}
	switch o.Backend {
	case "":
		if o.Sequential {
			procs = 1
			mopts = append(mopts, pram.Sequential())
		} else if o.Workers > 0 {
			mopts = append(mopts, pram.Workers(o.Workers))
		}
	case BackendSequential:
		procs = 1
		mopts = append(mopts, pram.Sequential())
	case BackendConcurrent:
		s.rt = par.New(par.Procs(procs), par.Seed(s.seed))
		mopts = append(mopts, pram.OnExecutor(s.rt))
	default:
		return nil, fmt.Errorf("parcc: unknown backend %q", o.Backend)
	}
	s.procs = procs
	if o.Trace {
		s.rec = obs.NewRecorder()
	}
	s.m = pram.New(mopts...)
	s.cx = solve.New(s.m).WithArena(s.arena).WithPlanner(s.planFor).WithRecorder(s.rec)
	return s, nil
}

// Close releases the solver's pooled goroutines.  The solver must not be
// used after Close; calling Close more than once is a no-op.
func (s *Solver) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.rt != nil {
		s.rt.Close()
	}
	if s.casRT != nil {
		s.casRT.Close()
	}
}

// Solve labels the connected components of g, reusing the session's pool,
// machine, arena, and (for the same graph) CSR plan.  The result is
// freshly allocated; use SolveInto to recycle one across calls.
func (s *Solver) Solve(g *Graph) (*Result, error) {
	res := &Result{}
	if err := s.SolveInto(g, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SolveInto is Solve writing into a caller-owned Result: res.Labels and
// res.Breakdown are reused when they have the capacity, making the steady
// state of a serving loop allocation-free for the label output too.  All
// other fields are overwritten.
func (s *Solver) SolveInto(g *Graph, res *Result) error {
	if g == nil {
		return ErrNilGraph
	}
	// s.rec is immutable after NewSolver, so the pre-lock validation may
	// read it: with tracing on, the O(m) Validate sweep is timed here and
	// accrued after the recorder reset below.
	var start time.Time
	if s.rec != nil {
		start = time.Now()
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("parcc: %w", err)
	}
	validated := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSolverClosed
	}
	o := s.opt
	m := s.m
	m.Reset()
	cx := s.cx
	rec := s.rec
	rec.Reset()
	if rec != nil {
		rec.AddPhase(obs.PhaseValidate, validated.Sub(start))
	}

	params := core.Default(g.N)
	if o.Params != nil {
		params = *o.Params
	}
	params.Seed ^= s.seed

	algo := o.Algorithm
	var rule string
	var autoMaxDeg int
	autoLocality := -1.0
	if algo == Auto {
		// The decision may build or revalidate the plan — charge that to
		// the plan phase.
		tp := rec.Begin()
		algo, rule, autoMaxDeg, autoLocality = s.chooseAuto(g)
		rec.End(obs.PhasePlan, tp)
	}
	dst := res.Labels
	*res = Result{
		Algorithm: algo, Backend: o.Backend, Procs: s.procs,
		Breakdown: res.Breakdown[:0],
	}
	solveSpan := rec.Begin()
	switch algo {
	case FLS:
		r := core.ConnectivityOn(cx, g, params, dst)
		res.Labels, res.NumComponents, res.Phases = r.Labels, r.NumComponents, r.Phases
		res.Breakdown = stageCostsInto(res.Breakdown, r.Breakdown)
	case FLSKnownGap:
		r := core.SolveKnownGapOn(cx, g, o.KnownGapB, params, dst)
		res.Labels, res.NumComponents = r.Labels, r.NumComponents
		res.Breakdown = stageCostsInto(res.Breakdown, r.Breakdown)
	case LTZ:
		lp := params.LTZ
		lp.Seed ^= s.seed
		res.Labels = ltz.SolveLabelsInto(cx, g, lp, dst)
	case SV:
		f := baseline.ShiloachVishkinCtx(cx, g)
		res.Labels = labeled.LabelsOnInto(m.Exec(), f, dst)
		f.Free()
	case RandomMate:
		f := baseline.RandomMateCtx(cx, g, s.seed)
		res.Labels = labeled.LabelsOnInto(m.Exec(), f, dst)
		f.Free()
	case LabelProp:
		res.Labels = baseline.LabelPropInto(cx, g, dst)
	case LT:
		res.Labels = liutarjan.LabelsInto(cx, g, liutarjan.Config{
			Connect: liutarjan.ParentConnect, Alter: true,
		}, dst)
	case ParBFS:
		res.Labels = baseline.ParallelBFSInto(cx, g, dst)
	case CASUnite:
		// Nominal model charge: one O(log n)-deep linear-work contraction.
		m.Contract(prim.Log2Ceil(g.N+2)+1, int64(2*g.M()+g.N), func() {
			res.Labels = par.ComponentsInto(s.casExec(), g, dst)
		})
	case Sample:
		labels, ratio, fls := s.solveSample(g, params, dst)
		res.Labels, res.SkipRatio = labels, ratio
		if fls != nil {
			res.NumComponents, res.Phases = fls.NumComponents, fls.Phases
			res.Breakdown = stageCostsInto(res.Breakdown, fls.Breakdown)
		}
	case Frontier:
		labels, comps := s.solveFrontier(g, dst)
		res.Labels, res.NumComponents = labels, comps
	case UnionFind:
		res.Labels = baseline.UnionFindLabelsInto(cx, g, dst)
	case BFS:
		res.Labels = baseline.BFSLabelsInto(cx, g, dst)
	default:
		return fmt.Errorf("parcc: unknown algorithm %q", o.Algorithm)
	}
	switch algo {
	case FLS, FLSKnownGap, Sample, Frontier:
		// Decomposed internally: these solves recorded their own spans.
	default:
		rec.End(obs.PhaseSolve, solveSpan)
	}
	if res.NumComponents == 0 {
		tc := rec.Begin()
		res.NumComponents = solve.NumLabels(cx, res.Labels, g.N)
		rec.End(obs.PhaseCount, tc)
	}
	if algo == CASUnite {
		// The CAS union-find attempts every edge once; the hooks that
		// merged are exactly the spanning-forest edges.
		rec.Add(obs.CtrCASAttempts, int64(g.M()))
		rec.Add(obs.CtrCASHooks, int64(g.N-res.NumComponents))
	}
	res.Steps = m.Steps()
	res.Work = m.Work()
	if rec != nil {
		tr := traceFromRecorder(rec, "solve", algo, time.Since(start))
		tr.SkipRatio = res.SkipRatio
		if o.Algorithm == Auto {
			tr.Dispatch = &DispatchDecision{
				Chosen: algo, Rule: rule,
				N: g.N, M: g.M(), AvgDeg: 2 * float64(g.M()) / float64(max(g.N, 1)),
				MaxDeg: autoMaxDeg, Locality: autoLocality,
			}
		}
		res.Trace = tr
		s.lastTrace = tr
	}
	return nil
}

// Plan returns the session's cached CSR plan for g, building it (on the
// runtime, for the concurrent backend) if the cache holds another or a
// stale graph.  Useful for driving the spectral estimators against the
// same adjacency the solves use.
func (s *Solver) Plan(g *Graph) *graph.Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.planFor(g)
}

// SpectralGap is parcc.SpectralGap against the session's cached plan.
func (s *Solver) SpectralGap(g *Graph) float64 {
	return spectral.GapOn(s.Plan(g), nil)
}

// ComponentSpectralGaps is parcc.ComponentSpectralGaps against the
// session's cached plan.
func (s *Solver) ComponentSpectralGaps(g *Graph) []float64 {
	return spectral.ComponentGapsOn(s.Plan(g), nil)
}

// casExec returns the runtime the uncharged CAS kernels (cas-unite, the
// incremental unite/splice/compress batches) run on: the session pool for
// the concurrent backend, else a lazily built pool at the session's procs
// (procs is 1 for the sequential backend, so those kernels stay
// single-threaded and deterministic there).  Callers hold s.mu.
func (s *Solver) casExec() *par.Runtime {
	if s.rt != nil {
		return s.rt
	}
	if s.casRT == nil {
		s.casRT = par.New(par.Procs(s.procs), par.Seed(s.seed))
	}
	return s.casRT
}

// planFor is the single-slot plan cache (callers hold s.mu).  Validation
// honors Options.TrustGraph: the default revalidates edge content with an
// O(m) fingerprint pass (catching in-place mutation), TrustGraph checks
// only the edge count.  A cached plan whose graph has grown by appended
// edges is extended in place (old adjacency memcpy + scatter of the new
// endpoints) rather than rebuilt by counting sort — the delta path
// AddEdges relies on.  On a closed solver the pool is gone, so the plan is
// built sequentially and not cached — Plan/SpectralGap degrade gracefully
// instead of panicking on the released runtime.
func (s *Solver) planFor(g *graph.Graph) *graph.Plan {
	if s.closed {
		return graph.NewPlan(g)
	}
	var e graph.Exec
	if s.rt != nil {
		e = s.rt
	}
	if s.plan != nil && s.plan.G == g {
		if s.planStillValid() {
			return s.plan
		}
		if np := graph.ExtendPlanOn(e, s.plan, g); np != nil {
			// The extension trusts the prefix, so verify it — even under
			// TrustGraph, whose promise covers only same-length overwrites:
			// a caller that compacted edges out and appended others changes
			// the length, and must be caught here, not served stale labels.
			// The one provable exception is the session-owned live graph,
			// whose mutations all pass through AddEdges/RemoveEdges under
			// this same lock (and RemoveEdges drops the plan), so its
			// prefix cannot have been rewritten — skipping the O(m) scan
			// there keeps AddEdges-then-solve streams on the delta path's
			// O(batch) cost.  A mutated prefix falls through to rebuild.
			if (s.inc != nil && s.inc.g == g) || np.Valid() {
				s.plan = np
				return s.plan
			}
		}
	}
	s.plan = graph.BuildPlanOn(e, g)
	return s.plan
}

// planStillValid applies the option-selected validation to the cached plan
// (callers hold s.mu and have checked s.plan.G).
func (s *Solver) planStillValid() bool {
	if s.opt.TrustGraph {
		return s.plan.ValidQuick()
	}
	return s.plan.Valid()
}

// Tuning of the sampling fast path and the auto dispatcher.  The constants
// are deliberately coarse: the decision only has to be right about orders
// of magnitude, and every branch is correct — a wrong guess costs wall
// clock, never the partition.
const (
	// sampleRounds is the number of neighbor-sampling rounds before the
	// skip pass; Afforest's k.  Two rounds settle dense communities and —
	// because low-degree vertices enumerate their adjacency exactly —
	// cover degree ≤ 2 regions completely.
	sampleRounds = 2
	// sampleProbes sizes the majority vote and the skip-ratio probe.
	sampleProbes = 1024
	// sampleMajorityCover is the majority coverage above which the skip
	// pass proceeds without probing edges: a component holding ≥ 45% of
	// the vertices guarantees a large settled-edge fraction by itself.
	sampleMajorityCover = 0.45
	// autoTinyCutoff is the n+m size below which Auto picks the
	// sequential union-find: at that scale pool dispatch and atomics cost
	// more than the whole solve.
	autoTinyCutoff = 1 << 13
	// autoSampleAvgDeg is the average degree (2m/n) at which Auto
	// switches from cas to sample unconditionally.  The sampling phase's
	// cost is dominated by its ~n successful hooks — a hard floor
	// independent of m — so sampling only pays once the edge pass it
	// eliminates is worth several multiples of that floor; measured on
	// this container the unconditional crossover sits at 2m/n ≈ 16.
	autoSampleAvgDeg = 16.0
	// autoSampleSkewDeg/autoSampleMaxDeg bound the inconclusive band
	// below autoSampleAvgDeg where the average alone cannot decide: a
	// moderate average hiding a high-degree core (lollipop/barbell-style
	// clique cores) still samples well, because the core collapses in one
	// round and its edges dominate m.  In that band Auto consults the
	// plan's exact MaxDeg — building (and caching) the plan if the
	// session does not hold one yet.
	autoSampleSkewDeg = 4.0
	autoSampleMaxDeg  = 64
	// sampleIncMinEdges is the edge count above which Attach and the
	// scoped re-solve route through the sampling fast path.
	sampleIncMinEdges = 1 << 15
	// frontierMeshAvgDeg / frontierMeshMaxDeg / frontierMeshLocality /
	// frontierCliqueMaxDeg describe the id-local regime the frontier
	// engine wins: low average degree (grids are 4, tori 4, paths 2 —
	// random sparse graphs sit higher or fail locality) and id-local
	// edges (generated meshes connect id-adjacent vertices and score ≈ 1
	// on the sampled locality; gnm-style random graphs score ≈
	// 2/localityWindow).  Within that band the max degree separates the
	// shapes the seed sweep floods in O(1) rounds from the ones it
	// cannot: bounded-degree lattices (MaxDeg ≤ frontierMeshMaxDeg —
	// every vertex adjacent to its immediate predecessors, so one
	// ascending pass carries the minimum through) and locally dense
	// blocks (MaxDeg ≥ frontierCliqueMaxDeg — cliques and hub clusters
	// whose vertices see the region minimum directly, as in barbell and
	// lollipop).  The middle band — randomly wired sparse local blocks,
	// e.g. a union of small gnm components — floods in Θ(log) rounds of
	// nearly full occupancy and stays with the union-find kernels.
	frontierMeshAvgDeg   = 6.0
	frontierMeshMaxDeg   = 8
	frontierCliqueMaxDeg = 64
	frontierMeshLocality = 0.95
	// frontierIncMinEdges is the edge count above which the incremental
	// paths consider routing a full labeling through the frontier engine.
	frontierIncMinEdges = 1 << 14
)

// sampleFallbackSkip is the predicted skip ratio below which the sample
// algorithm concedes the gamble and runs the full FLS pipeline instead.
// Package-level variable so tests can force the fallback deterministically.
var sampleFallbackSkip = 0.2

// chooseAuto is the Auto dispatch decision: tiny inputs to the sequential
// union-find, clearly dense inputs to the sampling fast path, clearly
// sparse ones to cas — all decided O(1) from n and m.  In the inconclusive
// band between the sparse and dense thresholds the average is refined by
// the plan's exact degree statistics (a moderate average can hide a
// high-degree clique core whose edges dominate m and sample away): the
// plan is built through the session cache if not already held, an O(m)
// cost paid once per graph and reused by every later solve — and by the
// sample algorithm itself if selected.  With Options.TrustGraph unset, a
// warm re-decision in that band revalidates the cached plan's fingerprint
// (O(m)), the same cost every plan consumer pays.  The decision table is
// documented in docs/ARCHITECTURE.md.  Callers hold s.mu.
//
// Below the dense threshold the mesh rule runs first: an O(1) sampled
// edge-locality sweep over the edge list decides whether the graph looks
// id-local (grids, tori, paths, barbells score ≈ 1; random sparse graphs
// ≈ 0.1), and only then is the plan consulted for the exact MaxDeg that
// separates the flood-in-O(1)-rounds shapes (bounded-degree lattices,
// locally dense clique blocks) from id-local regions wired randomly inside
// — so purely random sparse inputs still dispatch O(1), without a plan
// build.
//
// Alongside the decision it reports the decision-table row that fired
// ("tiny", "dense", "mesh", "skewed", "sparse"), the plan's max degree
// when a band consulted it (0 otherwise), and the sampled edge locality
// when the mesh rule measured it (−1 otherwise) — the inputs
// Trace.Dispatch records.
func (s *Solver) chooseAuto(g *Graph) (Algorithm, string, int, float64) {
	n, m := g.N, g.M()
	if n+m <= autoTinyCutoff {
		return UnionFind, "tiny", 0, -1
	}
	avg := 2 * float64(m) / float64(n)
	if avg >= autoSampleAvgDeg {
		return Sample, "dense", 0, -1
	}
	if avg <= frontierMeshAvgDeg {
		if loc := graph.EdgeLocality(g.N, g.Edges); loc >= frontierMeshLocality {
			plan := s.planFor(g)
			if int(plan.MaxDeg) <= frontierMeshMaxDeg || int(plan.MaxDeg) >= frontierCliqueMaxDeg {
				return Frontier, "mesh", int(plan.MaxDeg), loc
			}
			// Id-local but randomly wired inside (moderate max degree —
			// neither lattice nor dense block): the seed sweep cannot
			// flood such regions in O(1) rounds, so fall through to the
			// degree bands with the plan in hand.
			if avg >= autoSampleSkewDeg && float64(plan.MaxDeg) >= autoSampleMaxDeg {
				return Sample, "skewed", int(plan.MaxDeg), loc
			}
			return CASUnite, "sparse", int(plan.MaxDeg), loc
		}
	}
	if avg >= autoSampleSkewDeg {
		plan := s.planFor(g)
		if float64(plan.MaxDeg) >= autoSampleMaxDeg && plan.AvgDeg() >= autoSampleSkewDeg {
			return Sample, "skewed", int(plan.MaxDeg), -1
		}
		return CASUnite, "sparse", int(plan.MaxDeg), -1
	}
	return CASUnite, "sparse", 0, -1
}

// solveSample is the Afforest-style sampling solve: sample → flatten →
// probe → skip → finish, with the FLS pipeline as the fallback when the
// probes predict too low a skip ratio.  Returns the labels, the skip ratio
// (measured when the skip pass ran, the failing probe estimate when it did
// not), and the FLS result if the fallback ran (nil otherwise).  The
// kernel phases are charged nominally, like CASUnite; an FLS fallback adds
// the pipeline's own charges on top, so Steps/Work honestly reflect the
// wasted gamble.  Callers hold s.mu.
func (s *Solver) solveSample(g *Graph, params core.Params, dst []int32) ([]int32, float64, *core.Result) {
	rec := s.cx.Rec
	span := rec.Begin()
	e := s.casExec()
	plan := s.planFor(g)
	span = rec.Lap(obs.PhasePlan, span)
	n := g.N
	p := dst
	if cap(p) < n {
		p = make([]int32, n)
	}
	p = p[:n]

	var est float64
	maj := int32(-1)
	probeBuf := s.cx.Grab32(sampleProbes)
	defer s.cx.Release32(probeBuf)
	s.m.Contract(prim.Log2Ceil(n+2)+1, int64((sampleRounds+1)*n+2*sampleProbes), func() {
		e.Run(n, func(v int) { p[v] = int32(v) })
		att, hk := par.SampleUnite(e, p, plan.CSR, sampleRounds)
		rec.Add(obs.CtrCASAttempts, att)
		rec.Add(obs.CtrCASHooks, hk)
		span = rec.Lap(obs.PhaseSample, span)
		par.Compress(e, p)
		span = rec.Lap(obs.PhaseCompress, span)
		root, cover := par.MajorityRoot(e, p, sampleProbes, probeBuf)
		rec.Set(obs.GaugeCoverPPM, obs.PPM(cover))
		if cover >= sampleMajorityCover {
			// A dominant component: the finish pass skips its vertices'
			// adjacency ranges wholesale (the pure Afforest signal — no
			// need to probe edges).
			maj, est = root, 1
			rec.Set(obs.GaugeMajorityMode, 1)
		} else {
			// No single majority — probe sampled edges directly, which
			// keeps multi-community graphs (every block settled, none
			// dominant) on the fast path, in direction-filtered mode.
			est = par.EstimateSkip(e, p, g.Edges, sampleProbes)
		}
		rec.Set(obs.GaugeSkipEstPPM, obs.PPM(est))
		span = rec.Lap(obs.PhaseVote, span)
	})
	if est < sampleFallbackSkip {
		r := core.ConnectivityOn(s.cx, g, params, p)
		return r.Labels, est, r
	}

	var processed int64
	s.m.Contract(prim.Log2Ceil(n+2)+1, int64(2*g.M()+n), func() {
		span = rec.Begin()
		var hooks int64
		processed, hooks = par.SkipUnite(e, p, plan.CSR, maj)
		rec.Add(obs.CtrCASAttempts, processed)
		rec.Add(obs.CtrCASHooks, hooks)
		span = rec.Lap(obs.PhaseSkip, span)
		par.Compress(e, p)
		rec.End(obs.PhaseCompress, span)
	})
	ratio := 1.0
	if m := g.M(); m > 0 {
		// Approximate in majority mode (an unsettled edge between two
		// non-majority vertices is attempted from both sides), exact in
		// the filtered mode; clamped for the pathological double-count.
		ratio = max(0, 1-float64(processed)/float64(m))
	}
	return p, ratio, nil
}

// sampleLabelsInto is the uncharged kernel sequence of the sampling fast
// path over an explicit CSR — identity init, sampling rounds, flatten,
// full skip pass, flatten, root count — shared by Attach and the scoped
// re-solve of RemoveEdges for large dense inputs.  Returns the labels
// (component minima) and the exact component count.  Callers hold s.mu.
func (s *Solver) sampleLabelsInto(e *par.Runtime, g *graph.Graph, csr *graph.CSR, dst []int32) ([]int32, int) {
	rec := s.cx.Rec
	span := rec.Begin()
	n := g.N
	p := dst
	if cap(p) < n {
		p = make([]int32, n)
	}
	p = p[:n]
	e.Run(n, func(v int) { p[v] = int32(v) })
	att, hk := par.SampleUnite(e, p, csr, sampleRounds)
	rec.Add(obs.CtrCASAttempts, att)
	rec.Add(obs.CtrCASHooks, hk)
	span = rec.Lap(obs.PhaseSample, span)
	par.Compress(e, p)
	span = rec.Lap(obs.PhaseCompress, span)
	maj := int32(-1)
	probeBuf := s.cx.Grab32(sampleProbes)
	root, cover := par.MajorityRoot(e, p, sampleProbes, probeBuf)
	rec.Set(obs.GaugeCoverPPM, obs.PPM(cover))
	if cover >= sampleMajorityCover {
		maj = root
		rec.Set(obs.GaugeMajorityMode, 1)
	}
	s.cx.Release32(probeBuf)
	span = rec.Lap(obs.PhaseVote, span)
	att, hk = par.SkipUnite(e, p, csr, maj)
	rec.Add(obs.CtrCASAttempts, att)
	rec.Add(obs.CtrCASHooks, hk)
	span = rec.Lap(obs.PhaseSkip, span)
	par.Compress(e, p)
	span = rec.Lap(obs.PhaseCompress, span)
	roots := par.Count(e, n, func(v int) bool { return p[v] == int32(v) })
	rec.End(obs.PhaseCount, span)
	return p, int(roots)
}

// sampleWorthwhile reports whether the incremental paths should route a
// full-graph labeling through the sampling fast path: enough edges that
// the skip pass amortizes its CSR traversal, and dense enough that a
// meaningful fraction of them will be skipped.
func sampleWorthwhile(g *graph.Graph) bool {
	return g.M() >= sampleIncMinEdges && 2*float64(g.M()) >= autoSampleAvgDeg*float64(g.N)
}

// solveFrontier is the frontier-driven solve: plan lookup, then the
// frontier kernel sequence under a nominal model charge (one O(log n)-deep
// linear-work contraction, like CASUnite — CAS retry and revisit counts
// are not PRAM quantities).  Callers hold s.mu.
func (s *Solver) solveFrontier(g *Graph, dst []int32) ([]int32, int) {
	rec := s.cx.Rec
	span := rec.Begin()
	e := s.casExec()
	plan := s.planFor(g)
	rec.End(obs.PhasePlan, span)
	var labels []int32
	var comps int
	s.m.Contract(prim.Log2Ceil(g.N+2)+1, int64(2*g.M()+g.N), func() {
		labels, comps = s.frontierLabelsInto(e, g, plan.CSR, dst)
	})
	return labels, comps
}

// frontierLabelsInto is the uncharged kernel sequence of the frontier
// engine over an explicit CSR — identity labels, a full cold-solve seed,
// asynchronous minimum-label propagation to fixpoint over the session's
// reusable frontier pair, then a minima count (a label equals its index
// exactly once per component) — shared by the frontier solve, Attach, and
// the scoped re-solve of RemoveEdges on mesh-like inputs.  Returns the
// labels (component minima) and the exact component count.  Callers hold
// s.mu.
func (s *Solver) frontierLabelsInto(e *par.Runtime, g *graph.Graph, csr *graph.CSR, dst []int32) ([]int32, int) {
	rec := s.cx.Rec
	span := rec.Begin()
	n := g.N
	p := dst
	if cap(p) < n {
		p = make([]int32, n)
	}
	p = p[:n]
	e.Run(n, func(v int) { p[v] = int32(v) })
	cur, next := s.frontierPair(n)
	cur.SeedAll()
	// The per-round occupancy hook is bound only when tracing is on, so
	// the tracing-off hot loop carries a nil check per round, not a call.
	var onRound func(occ int64, dense bool)
	if rec != nil {
		onRound = rec.RecordFrontierRound
	}
	st := par.FrontierPropagate(e, p, csr, cur, next, onRound)
	rec.Add(obs.CtrFrontierInspected, st.Inspected)
	rec.Add(obs.CtrFrontierLowered, st.Lowered)
	rec.Add(obs.CtrFrontierSwitches, int64(st.Switches))
	span = rec.Lap(obs.PhaseSolve, span)
	comps := par.Count(e, n, func(v int) bool { return p[v] == int32(v) })
	rec.End(obs.PhaseCount, span)
	return p, int(comps)
}

// frontierPair returns the session's reusable frontier pair sized for n
// vertices, building or growing it through the arena on demand.  Both
// frontiers are empty between operations (the engine consumes them), so
// reuse and Resize need no clearing.  Callers hold s.mu.
func (s *Solver) frontierPair(n int) (*par.Frontier, *par.Frontier) {
	if s.fCur == nil || s.fCur.Cap() < n {
		if s.fCur != nil {
			s.fCur.Free(s.arena)
			s.fNxt.Free(s.arena)
		}
		s.fCur = par.NewFrontier(s.arena, n)
		s.fNxt = par.NewFrontier(s.arena, n)
		return s.fCur, s.fNxt
	}
	s.fCur.Resize(n)
	s.fNxt.Resize(n)
	return s.fCur, s.fNxt
}

// frontierWorthwhile reports whether the incremental paths should route a
// full-graph labeling through the frontier engine: the same mesh signals
// the Auto dispatcher uses (low average degree, id-local edges), plus
// enough edges that per-round frontier bookkeeping amortizes.  Computed
// from the edge list directly — the incremental paths often hold no plan
// for the graph in question (scoped subgraphs never do).
func frontierWorthwhile(g *graph.Graph) bool {
	return g.M() >= frontierIncMinEdges &&
		2*float64(g.M()) <= frontierMeshAvgDeg*float64(g.N) &&
		graph.EdgeLocality(g.N, g.Edges) >= frontierMeshLocality
}

func knownAlgorithm(a Algorithm) bool {
	switch a {
	case FLS, FLSKnownGap, LTZ, SV, RandomMate, LabelProp, LT, ParBFS,
		CASUnite, UnionFind, BFS, Sample, Frontier, Auto:
		return true
	}
	return false
}

// effectiveSeed resolves the Options seed convention: a nonzero Seed wins;
// the zero value means "unset" and selects the default seed 1 — unless
// ZeroSeed asks for the literal seed 0.
func effectiveSeed(o Options) uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	if o.ZeroSeed {
		return 0
	}
	return 1
}

func stageCostsInto(dst []StageCost, marks []pram.Mark) []StageCost {
	dst = dst[:0]
	for _, mk := range marks {
		dst = append(dst, StageCost{Stage: mk.Label, Steps: mk.Steps, Work: mk.Work})
	}
	return dst
}
