package parcc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"parcc/internal/baseline"
	"parcc/internal/core"
	"parcc/internal/graph"
	"parcc/internal/labeled"
	"parcc/internal/liutarjan"
	"parcc/internal/ltz"
	"parcc/internal/par"
	"parcc/internal/pram"
	"parcc/internal/prim"
	"parcc/internal/solve"
	"parcc/internal/spectral"
)

// Solver is a reusable connectivity session: a goroutine pool, a PRAM
// machine, a scratch arena, and a cached CSR plan that persist across
// Solve calls.  ConnectedComponents pays the construction of all four on
// every call; a Solver pays it once, so a serving loop issuing many solves
// runs against warm state — after the first solve on a graph, the hot
// paths are near-zero-alloc (SolveInto with a reused Result is the
// zero-allocation variant).
//
// A Solver is safe for concurrent use: Solve serializes internally.  For
// parallel query throughput across CPU cores, create one Solver per worker
// goroutine instead of sharing one (the arena and machine are per-session
// state, not shareable mid-solve).  Close releases the pooled goroutines;
// an unclosed Solver is reclaimed by the garbage collector.
//
//	s, _ := parcc.NewSolver(&parcc.Options{Backend: parcc.BackendConcurrent})
//	defer s.Close()
//	for _, g := range queries {
//		res, _ := s.Solve(g)
//		...
//	}
type Solver struct {
	opt   Options // normalized: algorithm, backend, KnownGapB filled in
	seed  uint64  // effective seed (Options.Seed/ZeroSeed resolved)
	procs int

	mu     sync.Mutex
	m      *pram.Machine
	rt     *par.Runtime // concurrent-backend pool (nil otherwise)
	casRT  *par.Runtime // lazy pool for CASUnite and the incremental kernels
	arena  *par.Arena
	cx     *solve.Ctx  // persistent solve context (machine+arena+plan cache)
	plan   *graph.Plan // single-slot plan cache (most recent graph)
	inc    *incSession // live incremental session (nil until Attach)
	closed bool

	// snap is the published read view (see PublishSnapshot/ReadView):
	// written under mu, loaded lock-free by any number of readers.
	// snapVersion counts publishes across the Solver's whole lifetime.
	snap        atomic.Pointer[Snapshot]
	snapVersion uint64
}

// NewSolver validates the options and builds a session: the machine and
// (for the concurrent backend) the goroutine pool are constructed here,
// once.  A nil opt selects the defaults, exactly as ConnectedComponents
// does.
func NewSolver(opt *Options) (*Solver, error) {
	o := Options{}
	if opt != nil {
		o = *opt
	}
	if o.Algorithm == "" {
		o.Algorithm = FLS
	}
	if !knownAlgorithm(o.Algorithm) {
		return nil, fmt.Errorf("parcc: unknown algorithm %q", o.Algorithm)
	}
	if o.KnownGapB <= 0 {
		o.KnownGapB = 16
	}
	s := &Solver{opt: o, seed: effectiveSeed(o), arena: par.NewArena()}

	procs := o.Procs
	if procs <= 0 {
		procs = o.Workers
	}
	if procs <= 0 {
		procs = runtime.NumCPU()
	}
	mopts := []pram.Option{pram.Seed(s.seed)}
	switch o.Backend {
	case "":
		if o.Sequential {
			procs = 1
			mopts = append(mopts, pram.Sequential())
		} else if o.Workers > 0 {
			mopts = append(mopts, pram.Workers(o.Workers))
		}
	case BackendSequential:
		procs = 1
		mopts = append(mopts, pram.Sequential())
	case BackendConcurrent:
		s.rt = par.New(par.Procs(procs), par.Seed(s.seed))
		mopts = append(mopts, pram.OnExecutor(s.rt))
	default:
		return nil, fmt.Errorf("parcc: unknown backend %q", o.Backend)
	}
	s.procs = procs
	s.m = pram.New(mopts...)
	s.cx = solve.New(s.m).WithArena(s.arena).WithPlanner(s.planFor)
	return s, nil
}

// Close releases the solver's pooled goroutines.  The solver must not be
// used after Close; calling Close more than once is a no-op.
func (s *Solver) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.rt != nil {
		s.rt.Close()
	}
	if s.casRT != nil {
		s.casRT.Close()
	}
}

// Solve labels the connected components of g, reusing the session's pool,
// machine, arena, and (for the same graph) CSR plan.  The result is
// freshly allocated; use SolveInto to recycle one across calls.
func (s *Solver) Solve(g *Graph) (*Result, error) {
	res := &Result{}
	if err := s.SolveInto(g, res); err != nil {
		return nil, err
	}
	return res, nil
}

// SolveInto is Solve writing into a caller-owned Result: res.Labels and
// res.Breakdown are reused when they have the capacity, making the steady
// state of a serving loop allocation-free for the label output too.  All
// other fields are overwritten.
func (s *Solver) SolveInto(g *Graph, res *Result) error {
	if g == nil {
		return ErrNilGraph
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("parcc: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSolverClosed
	}
	o := s.opt
	m := s.m
	m.Reset()
	cx := s.cx

	params := core.Default(g.N)
	if o.Params != nil {
		params = *o.Params
	}
	params.Seed ^= s.seed

	dst := res.Labels
	*res = Result{
		Algorithm: o.Algorithm, Backend: o.Backend, Procs: s.procs,
		Breakdown: res.Breakdown[:0],
	}
	switch o.Algorithm {
	case FLS:
		r := core.ConnectivityOn(cx, g, params, dst)
		res.Labels, res.NumComponents, res.Phases = r.Labels, r.NumComponents, r.Phases
		res.Breakdown = stageCostsInto(res.Breakdown, r.Breakdown)
	case FLSKnownGap:
		r := core.SolveKnownGapOn(cx, g, o.KnownGapB, params, dst)
		res.Labels, res.NumComponents = r.Labels, r.NumComponents
		res.Breakdown = stageCostsInto(res.Breakdown, r.Breakdown)
	case LTZ:
		lp := params.LTZ
		lp.Seed ^= s.seed
		res.Labels = ltz.SolveLabelsInto(cx, g, lp, dst)
	case SV:
		f := baseline.ShiloachVishkinCtx(cx, g)
		res.Labels = labeled.LabelsOnInto(m.Exec(), f, dst)
		f.Free()
	case RandomMate:
		f := baseline.RandomMateCtx(cx, g, s.seed)
		res.Labels = labeled.LabelsOnInto(m.Exec(), f, dst)
		f.Free()
	case LabelProp:
		res.Labels = baseline.LabelPropInto(cx, g, dst)
	case LT:
		res.Labels = liutarjan.LabelsInto(cx, g, liutarjan.Config{
			Connect: liutarjan.ParentConnect, Alter: true,
		}, dst)
	case ParBFS:
		res.Labels = baseline.ParallelBFSInto(cx, g, dst)
	case CASUnite:
		// Nominal model charge: one O(log n)-deep linear-work contraction.
		m.Contract(prim.Log2Ceil(g.N+2)+1, int64(2*g.M()+g.N), func() {
			res.Labels = par.ComponentsInto(s.casExec(), g, dst)
		})
	case UnionFind:
		res.Labels = baseline.UnionFindLabelsInto(cx, g, dst)
	case BFS:
		res.Labels = baseline.BFSLabelsInto(cx, g, dst)
	default:
		return fmt.Errorf("parcc: unknown algorithm %q", o.Algorithm)
	}
	if res.NumComponents == 0 {
		res.NumComponents = solve.NumLabels(cx, res.Labels, g.N)
	}
	res.Steps = m.Steps()
	res.Work = m.Work()
	return nil
}

// Plan returns the session's cached CSR plan for g, building it (on the
// runtime, for the concurrent backend) if the cache holds another or a
// stale graph.  Useful for driving the spectral estimators against the
// same adjacency the solves use.
func (s *Solver) Plan(g *Graph) *graph.Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.planFor(g)
}

// SpectralGap is parcc.SpectralGap against the session's cached plan.
func (s *Solver) SpectralGap(g *Graph) float64 {
	return spectral.GapOn(s.Plan(g), nil)
}

// ComponentSpectralGaps is parcc.ComponentSpectralGaps against the
// session's cached plan.
func (s *Solver) ComponentSpectralGaps(g *Graph) []float64 {
	return spectral.ComponentGapsOn(s.Plan(g), nil)
}

// casExec returns the runtime the uncharged CAS kernels (cas-unite, the
// incremental unite/splice/compress batches) run on: the session pool for
// the concurrent backend, else a lazily built pool at the session's procs
// (procs is 1 for the sequential backend, so those kernels stay
// single-threaded and deterministic there).  Callers hold s.mu.
func (s *Solver) casExec() *par.Runtime {
	if s.rt != nil {
		return s.rt
	}
	if s.casRT == nil {
		s.casRT = par.New(par.Procs(s.procs), par.Seed(s.seed))
	}
	return s.casRT
}

// planFor is the single-slot plan cache (callers hold s.mu).  Validation
// honors Options.TrustGraph: the default revalidates edge content with an
// O(m) fingerprint pass (catching in-place mutation), TrustGraph checks
// only the edge count.  A cached plan whose graph has grown by appended
// edges is extended in place (old adjacency memcpy + scatter of the new
// endpoints) rather than rebuilt by counting sort — the delta path
// AddEdges relies on.  On a closed solver the pool is gone, so the plan is
// built sequentially and not cached — Plan/SpectralGap degrade gracefully
// instead of panicking on the released runtime.
func (s *Solver) planFor(g *graph.Graph) *graph.Plan {
	if s.closed {
		return graph.NewPlan(g)
	}
	var e graph.Exec
	if s.rt != nil {
		e = s.rt
	}
	if s.plan != nil && s.plan.G == g {
		if s.planStillValid() {
			return s.plan
		}
		if np := graph.ExtendPlanOn(e, s.plan, g); np != nil {
			// The extension trusts the prefix, so verify it — even under
			// TrustGraph, whose promise covers only same-length overwrites:
			// a caller that compacted edges out and appended others changes
			// the length, and must be caught here, not served stale labels.
			// The one provable exception is the session-owned live graph,
			// whose mutations all pass through AddEdges/RemoveEdges under
			// this same lock (and RemoveEdges drops the plan), so its
			// prefix cannot have been rewritten — skipping the O(m) scan
			// there keeps AddEdges-then-solve streams on the delta path's
			// O(batch) cost.  A mutated prefix falls through to rebuild.
			if (s.inc != nil && s.inc.g == g) || np.Valid() {
				s.plan = np
				return s.plan
			}
		}
	}
	s.plan = graph.BuildPlanOn(e, g)
	return s.plan
}

// planStillValid applies the option-selected validation to the cached plan
// (callers hold s.mu and have checked s.plan.G).
func (s *Solver) planStillValid() bool {
	if s.opt.TrustGraph {
		return s.plan.ValidQuick()
	}
	return s.plan.Valid()
}

func knownAlgorithm(a Algorithm) bool {
	switch a {
	case FLS, FLSKnownGap, LTZ, SV, RandomMate, LabelProp, LT, ParBFS,
		CASUnite, UnionFind, BFS:
		return true
	}
	return false
}

// effectiveSeed resolves the Options seed convention: a nonzero Seed wins;
// the zero value means "unset" and selects the default seed 1 — unless
// ZeroSeed asks for the literal seed 0.
func effectiveSeed(o Options) uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	if o.ZeroSeed {
		return 0
	}
	return 1
}

func stageCostsInto(dst []StageCost, marks []pram.Mark) []StageCost {
	dst = dst[:0]
	for _, mk := range marks {
		dst = append(dst, StageCost{Stage: mk.Label, Steps: mk.Steps, Work: mk.Work})
	}
	return dst
}
