package parcc

import (
	"parcc/internal/par"
)

// This file is the copy-on-write paged mirror behind O(delta) snapshot
// publishing.  The first PublishSnapshot after an Attach pays one O(n)
// full build (par.SnapshotPages); every publish after that shares the
// previous snapshot's label and size pages and clones only the pages the
// intervening write groups touched — a group touching k vertices
// republishes in O(k + ⌈k/pageSize⌉) work instead of O(n).
//
// The mirror holds exact flattened labels (not a lazy view over the
// union-find forest: a historical root can migrate to the split-off side
// of a deletion, so chase-on-read against old pages would be unsound).
// Exactness is restored at every flush point from two delta feeds:
//
//   - AddEdges reports each merge's LOSING root (par.UniteBatchTouch).
//     The size transfer is applied eagerly — O(1) per merge — and the
//     member relabel is deferred: the loser goes on a pending list, and
//     flush walks its member circle once, however many batches queued it.
//   - RemoveEdges reports each split's moved side
//     (dynconn.Tracker.DeleteCollect) and each scoped repair's region
//     vertex set; both relabel through the mirror directly, so the mirror
//     is exact again at batch exit.
//
// Membership is tracked with one circular doubly-linked list per
// component (next/prev), giving O(|component|) member walks and O(1)
// pending-merge records with zero per-edge overhead.  flush walks every
// pending loser's ORIGINAL circle first and splices all circles after all
// walks — a merge chain a←b←c therefore walks each vertex exactly once
// (the circles are disjoint pre-splice), keeping flush O(total moved).
//
// Everything here runs under the Solver's session lock.  Readers never
// see the mirror: PublishSnapshot hands out copies of the page-header
// slices and marks every page shared; the next mutation that lands on a
// shared page clones it first (pageStore.setLabel/setSize), so published
// pages are immutable and the lock-free read contract of Snapshot holds.
const (
	pageShift = 10
	pageSize  = 1 << pageShift // vertices per label/size page
	pageMask  = pageSize - 1
)

// pageStore is the mirror's state.  labels[v>>pageShift][v&pageMask] is
// v's exact flattened label as of the last flush point; sizes holds the
// per-component tallies at the root's slot (zero elsewhere) — the same
// layout par.SnapshotLabels produces, so paged and eager snapshots are
// byte-comparable.
type pageStore struct {
	n      int
	labels [][]int32
	sizes  [][]int32
	// sharedL/sharedS flag pages referenced by a published snapshot; a
	// write to a flagged page clones it first (copy-on-write).
	sharedL []bool
	sharedS []bool
	// next/prev are the per-component circular member lists.
	next []int32
	prev []int32
	// pending holds the losing roots of merges whose member walks are
	// deferred to the next flush.  Duplicate-free: a root loses at most
	// once between flushes (the winning CAS retires it from roothood, and
	// only RemoveEdges — which flushes at entry — can mint new roots).
	pending []int32
	cloned  int     // pages cloned since the last publish
	losers  []int32 // scratch for par.UniteBatchTouch
}

func numPages(n int) int { return (n + pageSize - 1) / pageSize }

// newPageStore full-builds the mirror from the live forest: one parallel
// page-granular flatten plus a sequential member-list build, O(n).
func newPageStore(e par.Exec, parent []int32) *pageStore {
	n := len(parent)
	np := numPages(n)
	st := &pageStore{
		n:       n,
		labels:  make([][]int32, np),
		sizes:   make([][]int32, np),
		sharedL: make([]bool, np),
		sharedS: make([]bool, np),
		next:    make([]int32, n),
		prev:    make([]int32, n),
	}
	for pg := 0; pg < np; pg++ {
		st.labels[pg] = make([]int32, pageSize)
		st.sizes[pg] = make([]int32, pageSize)
	}
	par.SnapshotPages(e, parent, pageSize, st.labels, st.sizes)
	for v := int32(0); int(v) < n; v++ {
		if st.label(v) == v {
			st.next[v], st.prev[v] = v, v
		}
	}
	for v := int32(0); int(v) < n; v++ {
		if r := st.label(v); r != v {
			st.linkAfter(r, v)
		}
	}
	return st
}

func (st *pageStore) label(v int32) int32 { return st.labels[v>>pageShift][v&pageMask] }
func (st *pageStore) size(v int32) int32  { return st.sizes[v>>pageShift][v&pageMask] }

func (st *pageStore) setLabel(v, x int32) {
	pg := v >> pageShift
	if st.sharedL[pg] {
		st.labels[pg] = clonePage(st.labels[pg])
		st.sharedL[pg] = false
		st.cloned++
	}
	st.labels[pg][v&pageMask] = x
}

func (st *pageStore) setSize(v, x int32) {
	pg := v >> pageShift
	if st.sharedS[pg] {
		st.sizes[pg] = clonePage(st.sizes[pg])
		st.sharedS[pg] = false
		st.cloned++
	}
	st.sizes[pg][v&pageMask] = x
}

func clonePage(p []int32) []int32 {
	q := make([]int32, len(p))
	copy(q, p)
	return q
}

// linkAfter inserts x into r's circle, right after r.
func (st *pageStore) linkAfter(r, x int32) {
	st.next[x] = st.next[r]
	st.prev[st.next[r]] = x
	st.next[r] = x
	st.prev[x] = r
}

// loserBuf returns the scratch slice UniteBatchTouch fills, sized to k.
func (st *pageStore) loserBuf(k int) []int32 {
	if cap(st.losers) < k {
		st.losers = make([]int32, k)
	}
	st.losers = st.losers[:k]
	return st.losers
}

// noteMerge records one merge's losing root ru: the size transfer to the
// current winner is applied now (order-independent within and across
// batches — every pre-batch size entry is zeroed exactly once, into the
// final root par.Find resolves), the member relabel is deferred to flush.
func (st *pageStore) noteMerge(parent []int32, ru int32) {
	f := par.Find(parent, ru)
	st.setSize(f, st.size(f)+st.size(ru))
	st.setSize(ru, 0)
	st.pending = append(st.pending, ru)
}

// flush applies the deferred merge relabels, making labels exact again.
// Phase 1 walks each pending loser's ORIGINAL circle, writing the final
// root (the circles are disjoint until phase 2, so each moved vertex is
// written once even across merge chains).  Phase 2 splices each loser's
// circle into its winner's.  O(total vertices that changed root).
func (st *pageStore) flush(parent []int32) {
	if len(st.pending) == 0 {
		return
	}
	for _, ru := range st.pending {
		f := par.Find(parent, ru)
		x := ru
		for {
			st.setLabel(x, f)
			x = st.next[x]
			if x == ru {
				break
			}
		}
	}
	for _, ru := range st.pending {
		f := par.Find(parent, ru)
		tf, tr := st.prev[f], st.prev[ru]
		st.next[tf] = ru
		st.prev[ru] = tf
		st.next[tr] = f
		st.prev[f] = tr
	}
	st.pending = st.pending[:0]
}

// split moves the relabeled side of a deletion split out of oldRoot's
// component: moved (which contains newRoot, never oldRoot — the search
// relabels the side NOT holding the union-find root) is unlinked from the
// old circle, relinked as its own circle, relabeled, and the two size
// entries adjusted.  O(|moved|).  Caller must have flushed first (split
// circles must be current).
func (st *pageStore) split(moved []int32, oldRoot, newRoot int32) {
	for _, x := range moved {
		st.next[st.prev[x]] = st.next[x]
		st.prev[st.next[x]] = st.prev[x]
	}
	k := int32(len(moved))
	for i, x := range moved {
		st.next[x] = moved[(i+1)%len(moved)]
		st.prev[x] = moved[(i-1+len(moved))%len(moved)]
		st.setLabel(x, newRoot)
	}
	st.setSize(oldRoot, st.size(oldRoot)-k)
	st.setSize(newRoot, k)
}

// rebuildRegion re-derives the mirror for a scoped repair's region after
// par.SpliceLabels wrote the re-solved (flat) labels into parent: labels
// copy straight from parent, sizes are zeroed and recounted, circles are
// rebuilt in two passes.  Regions are whole components (dirty sets are
// closed under adjacency, and mid-batch splits keep circles
// component-exact), so no circle links cross the region boundary.
// O(|verts|).
func (st *pageStore) rebuildRegion(parent []int32, verts []int32) {
	for _, v := range verts {
		st.setSize(v, 0)
	}
	for _, v := range verts {
		r := parent[v]
		st.setLabel(v, r)
		st.setSize(r, st.size(r)+1)
	}
	for _, v := range verts {
		if parent[v] == v {
			st.next[v], st.prev[v] = v, v
		}
	}
	for _, v := range verts {
		if r := parent[v]; r != v {
			st.linkAfter(r, v)
		}
	}
}

// share marks every page as referenced by a published snapshot and resets
// the clone counter — called by PublishSnapshot after copying the page
// headers into the new Snapshot.
func (st *pageStore) share() {
	for pg := range st.sharedL {
		st.sharedL[pg] = true
		st.sharedS[pg] = true
	}
	st.cloned = 0
}
