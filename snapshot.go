package parcc

import (
	"parcc/internal/par"
)

// Snapshot is an immutable point-in-time view of a live session's
// component partition: the flattened labels, per-component sizes, and the
// exact component count, stamped with a monotonically increasing version.
// A Snapshot never changes after PublishSnapshot returns it, so any number
// of goroutines may query it concurrently, lock-free, while the session
// keeps mutating — readers holding an old snapshot simply observe the
// partition as it was at that version (a historically valid partition,
// never a torn one).  This is the read side of the serving layer's
// single-writer/many-reader discipline (internal/service publishes one
// snapshot per coalesced mutation batch; see docs/OPERATIONS.md for the
// memory model).
//
// Point queries are O(1) array lookups; none of them allocates.  Vertex
// arguments must be in [0, N()) — the methods index slices directly and
// panic on out-of-range input, exactly like the slices themselves (the
// serving layer validates before calling).
type Snapshot struct {
	labels  []int32
	sizes   []int32 // indexed by root label
	ncomp   int
	version uint64
}

// N returns the number of vertices the snapshot covers.
func (sn *Snapshot) N() int { return len(sn.labels) }

// Version is the publish counter of the owning Solver: strictly increasing
// across PublishSnapshot calls, never reused within a Solver's lifetime
// (re-Attach keeps counting).  Readers use it to order snapshots and to
// key them to an external history.
func (sn *Snapshot) Version() uint64 { return sn.version }

// NumComponents is the exact number of connected components at the
// snapshot's version.
func (sn *Snapshot) NumComponents() int { return sn.ncomp }

// ComponentOf returns u's component representative.  Representatives are
// stable within one snapshot (ComponentOf(u) == ComponentOf(v) iff u and v
// are connected) but may differ across snapshots even for an unchanged
// partition — compare partitions, not raw labels, across versions.
func (sn *Snapshot) ComponentOf(u int) int32 { return sn.labels[u] }

// Connected reports whether u and v are in the same component.
func (sn *Snapshot) Connected(u, v int) bool { return sn.labels[u] == sn.labels[v] }

// ComponentSize returns the number of vertices in u's component.
func (sn *Snapshot) ComponentSize(u int) int { return int(sn.sizes[sn.labels[u]]) }

// Labels exposes the flattened label array (labels[v] is v's
// representative).  The slice is the snapshot's own storage: treat it as
// read-only — writing to it would tear the view for every other reader.
func (sn *Snapshot) Labels() []int32 { return sn.labels }

// PublishSnapshot captures the live partition into a fresh immutable
// Snapshot and atomically installs it as the session's read view.  The
// capture runs under the session lock (it serializes with AddEdges/
// RemoveEdges, so it always sees a batch boundary, never a half-applied
// one) and costs O(n) — two parallel passes on the session's runtime: a
// flatten of the union-find forest when mutations left chains, then the
// par.SnapshotLabels copy+count kernel.  The swap itself is a single
// atomic pointer store: readers calling ReadView never block, and readers
// holding the previous snapshot keep a consistent view for as long as they
// keep the pointer.
//
// Publishing is explicit rather than automatic so the incremental fast
// path keeps its O(batch·α) cost: callers that want a fresh read view
// after every mutation batch publish once per batch (what internal/service
// does, amortizing the O(n) across all writes it coalesced into the
// batch); callers that only use Components/ComponentsInto never pay it.
// Errors are the incremental taxonomy's: ErrSolverClosed, ErrNotAttached.
func (s *Solver) PublishSnapshot() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inc, err := s.incReady()
	if err != nil {
		return nil, err
	}
	e := s.casExec()
	if inc.needsCompress {
		par.Compress(e, inc.parent)
		inc.needsCompress = false
	}
	n := inc.g.N
	sn := &Snapshot{
		labels: make([]int32, n),
		sizes:  make([]int32, n),
		ncomp:  inc.ncomp,
	}
	par.SnapshotLabels(e, inc.parent, sn.labels, sn.sizes)
	s.snapVersion++
	sn.version = s.snapVersion
	s.snap.Store(sn)
	return sn, nil
}

// ReadView returns the most recently published snapshot without taking the
// session lock — one atomic pointer load, safe to call from any number of
// goroutines concurrently with mutations on the same Solver.  It is nil
// until the first PublishSnapshot after an Attach (Attach unpublishes:
// a snapshot of the previous live graph must not answer for the new one).
// Close does not unpublish — a drained server may keep answering reads
// from the last view while it shuts down.
func (s *Solver) ReadView() *Snapshot { return s.snap.Load() }
