package parcc

import (
	"sync"

	"parcc/internal/par"
)

// Snapshot is an immutable point-in-time view of a live session's
// component partition: the flattened labels, per-component sizes, and the
// exact component count, stamped with a monotonically increasing version.
// A Snapshot never changes after PublishSnapshot returns it, so any number
// of goroutines may query it concurrently, lock-free, while the session
// keeps mutating — readers holding an old snapshot simply observe the
// partition as it was at that version (a historically valid partition,
// never a torn one).  This is the read side of the serving layer's
// single-writer/many-reader discipline (internal/service publishes one
// snapshot per coalesced mutation batch; see docs/OPERATIONS.md for the
// memory model).
//
// Storage is paged copy-on-write (pages.go): consecutive snapshots share
// every label/size page the intervening write groups did not touch, so a
// version costs O(pages touched), not O(n), in both time and memory.
// Sharing is invisible to readers — a shared page is immutable for as
// long as any snapshot references it; the session clones before writing.
//
// Point queries are O(1) lookups (one page indirection); none of them
// allocates.  Vertex arguments must be in [0, N()) — the methods index
// slices directly and panic on out-of-range input, exactly like the
// slices themselves (the serving layer validates before calling).
type Snapshot struct {
	n       int
	labels  [][]int32 // labels[v>>pageShift][v&pageMask] = v's representative
	sizes   [][]int32 // component size at the root's slot, zero elsewhere
	ncomp   int
	version uint64
	full    bool // produced by a full O(n) build, not a delta publish
	cloned  int  // pages the write groups since the previous publish cloned

	// flat is the lazily materialized flat label array behind Labels();
	// built at most once per snapshot, only for bulk readers.
	flatOnce sync.Once
	flat     []int32
}

// N returns the number of vertices the snapshot covers.
func (sn *Snapshot) N() int { return sn.n }

// Version is the publish counter of the owning Solver: strictly increasing
// across PublishSnapshot calls, never reused within a Solver's lifetime
// (re-Attach keeps counting, and a service-layer recovery advances past
// every version that could have been observed before the crash).  Readers
// use it to order snapshots and to key them to an external history.
func (sn *Snapshot) Version() uint64 { return sn.version }

// NumComponents is the exact number of connected components at the
// snapshot's version.
func (sn *Snapshot) NumComponents() int { return sn.ncomp }

// ComponentOf returns u's component representative.  Representatives are
// stable within one snapshot (ComponentOf(u) == ComponentOf(v) iff u and v
// are connected) but may differ across snapshots even for an unchanged
// partition — compare partitions, not raw labels, across versions.
func (sn *Snapshot) ComponentOf(u int) int32 {
	return sn.labels[u>>pageShift][u&pageMask]
}

// Connected reports whether u and v are in the same component.
func (sn *Snapshot) Connected(u, v int) bool {
	return sn.ComponentOf(u) == sn.ComponentOf(v)
}

// ComponentSize returns the number of vertices in u's component.
func (sn *Snapshot) ComponentSize(u int) int {
	r := sn.ComponentOf(u)
	return int(sn.sizes[r>>pageShift][r&pageMask])
}

// Labels returns the flattened label array (labels[v] is v's
// representative).  The flat copy is materialized from the pages on first
// call — O(n), amortized across all callers of the same snapshot — and is
// the snapshot's own storage afterwards: treat it as read-only.  Point
// queries never pay this; only bulk readers (the /snapshot endpoint,
// equivalence tests) do.
func (sn *Snapshot) Labels() []int32 {
	sn.flatOnce.Do(func() {
		flat := make([]int32, sn.n)
		for pg, page := range sn.labels {
			copy(flat[pg<<pageShift:], page)
		}
		sn.flat = flat
	})
	return sn.flat
}

// PublishedFull reports whether this snapshot was produced by a full O(n)
// page build — the first publish after an Attach (or a service-layer
// recovery) — rather than an O(delta) copy-on-write publish.  The serving
// layer routes its publish-latency histogram on this.
func (sn *Snapshot) PublishedFull() bool { return sn.full }

// ClonedPages is the number of label/size pages the write groups between
// the previous publish and this one cloned — the delta publish's cost in
// pages (zero for a publish with no intervening writes, and for a full
// build, whose cost is all of n instead).
func (sn *Snapshot) ClonedPages() int { return sn.cloned }

// PublishSnapshot captures the live partition into a fresh immutable
// Snapshot and atomically installs it as the session's read view.  The
// capture runs under the session lock (it serializes with AddEdges/
// RemoveEdges, so it always sees a batch boundary, never a half-applied
// one).  The first publish after an Attach pays one O(n) full page build;
// every later publish is O(delta): deferred merge relabels are flushed
// through the copy-on-write mirror (pages.go), the page headers are
// copied, and every page untouched since the previous version is shared
// with it.  The swap itself is a single atomic pointer store: readers
// calling ReadView never block, and readers holding the previous snapshot
// keep a consistent view for as long as they keep the pointer.
//
// Publishing is explicit rather than automatic so the incremental fast
// path keeps its O(batch·α) cost: callers that want a fresh read view
// after every mutation batch publish once per batch (what internal/service
// does, amortizing the cost across all writes it coalesced into the
// batch); callers that only use Components/ComponentsInto never pay it.
// Errors are the incremental taxonomy's: ErrSolverClosed, ErrNotAttached.
func (s *Solver) PublishSnapshot() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inc, err := s.incReady()
	if err != nil {
		return nil, err
	}
	e := s.casExec()
	full := false
	if s.pages == nil {
		if inc.needsCompress {
			par.Compress(e, inc.parent)
			inc.needsCompress = false
		}
		s.pages = newPageStore(e, inc.parent)
		full = true
	} else {
		s.pages.flush(inc.parent)
	}
	st := s.pages
	sn := &Snapshot{
		n:      st.n,
		labels: append([][]int32(nil), st.labels...),
		sizes:  append([][]int32(nil), st.sizes...),
		ncomp:  inc.ncomp,
		full:   full,
		cloned: st.cloned,
	}
	st.share()
	s.snapVersion++
	sn.version = s.snapVersion
	s.snap.Store(sn)
	return sn, nil
}

// AdvanceSnapshotVersion floors the session's publish counter at v: the
// next PublishSnapshot stamps at least v+1.  It never moves the counter
// backwards.  This is the recovery hook of the serving layer's write-ahead
// log: replay applies the logged batches without their original
// per-publish stamps, then advances the counter to the log's last durable
// sequence number so the single post-replay publish is strictly newer than
// any version a reader could have observed before the crash (the log is
// fsync'd before the publish it seeds, so observed versions never exceed
// durable sequence numbers).
func (s *Solver) AdvanceSnapshotVersion(v uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snapVersion < v {
		s.snapVersion = v
	}
}

// ReadView returns the most recently published snapshot without taking the
// session lock — one atomic pointer load, safe to call from any number of
// goroutines concurrently with mutations on the same Solver.  It is nil
// until the first PublishSnapshot after an Attach (Attach unpublishes:
// a snapshot of the previous live graph must not answer for the new one).
// Close does not unpublish — a drained server may keep answering reads
// from the last view while it shuts down.
func (s *Solver) ReadView() *Snapshot { return s.snap.Load() }
