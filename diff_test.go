package parcc

import (
	"fmt"
	"testing"

	"parcc/internal/pram"
)

// randomMultigraph decodes a byte string into a multigraph, the shared
// decoder for the differential tests and the fuzz target.  Every byte pair
// is an edge; self-loops and parallel edges arise naturally.
func randomMultigraph(data []byte) *Graph {
	n := 2 + int(pram.SplitMix64(uint64(len(data)))%62)
	g := NewGraph(n)
	for i := 0; i+1 < len(data); i += 2 {
		g.AddEdge(int(data[i])%n, int(data[i+1])%n)
	}
	return g
}

// TestDifferentialAllAlgorithms cross-checks every parallel algorithm
// against BFS on a large battery of random multigraphs, under the default
// parallel machine and under all three sequential write orders — the
// ARBITRARY CRCW obligation, exercised broadly.
func TestDifferentialAllAlgorithms(t *testing.T) {
	algos := []Algorithm{FLS, FLSKnownGap, LTZ, SV, RandomMate, LabelProp}
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		data := make([]byte, 8+trial*7)
		s := uint64(trial)*0x9e3779b97f4a7c15 + 1
		for i := range data {
			s = pram.SplitMix64(s)
			data[i] = byte(s)
		}
		g := randomMultigraph(data)
		for _, a := range algos {
			res, err := ConnectedComponents(g, &Options{Algorithm: a, Seed: uint64(trial + 1)})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a, err)
			}
			if !Verify(g, res.Labels) {
				t.Fatalf("trial %d: %s wrong on n=%d m=%d", trial, a, g.N, g.M())
			}
		}
	}
}

func TestDifferentialSequentialOrders(t *testing.T) {
	algos := []Algorithm{FLS, LTZ, SV}
	for trial := 0; trial < 8; trial++ {
		data := make([]byte, 16+trial*11)
		s := uint64(trial) + 77
		for i := range data {
			s = pram.SplitMix64(s)
			data[i] = byte(s)
		}
		g := randomMultigraph(data)
		for _, a := range algos {
			for _, seq := range []bool{false, true} {
				res, err := ConnectedComponents(g, &Options{
					Algorithm: a, Seed: uint64(trial + 1), Sequential: seq,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !Verify(g, res.Labels) {
					t.Fatalf("trial %d %s seq=%v: wrong partition", trial, a, seq)
				}
			}
		}
	}
}

// TestDifferentialDegenerateShapes hits shapes that historically break
// contraction algorithms: all-loops, one giant star, heavy parallelism,
// a single edge, and alternating isolated blocks.
func TestDifferentialDegenerateShapes(t *testing.T) {
	shapes := map[string]*Graph{}

	loops := NewGraph(10)
	for v := 0; v < 10; v++ {
		loops.AddEdge(v, v)
	}
	shapes["all-loops"] = loops

	heavy := NewGraph(2)
	for i := 0; i < 500; i++ {
		heavy.AddEdge(0, 1)
	}
	shapes["heavy-parallel"] = heavy

	single := NewGraph(100)
	single.AddEdge(42, 77)
	shapes["single-edge"] = single

	blocks := NewGraph(60)
	for b := 0; b < 6; b += 2 {
		for v := 0; v < 9; v++ {
			blocks.AddEdge(b*10+v, b*10+v+1)
		}
	}
	shapes["alternating-blocks"] = blocks

	star := NewGraph(512)
	for v := 1; v < 512; v++ {
		star.AddEdge(0, v)
		star.AddEdge(0, v) // doubled spokes
	}
	shapes["double-star"] = star

	for name, g := range shapes {
		for _, a := range []Algorithm{FLS, FLSKnownGap, LTZ, SV, RandomMate, LabelProp} {
			res, err := ConnectedComponents(g, &Options{Algorithm: a, Seed: 9})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, a, err)
			}
			if !Verify(g, res.Labels) {
				t.Fatalf("%s/%s: wrong partition", name, a)
			}
		}
	}
}

func TestBreakdownExposed(t *testing.T) {
	g := Cycle(256)
	res, err := ConnectedComponents(g, &Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breakdown) == 0 {
		t.Fatal("FLS result should carry a stage breakdown")
	}
	var steps int64
	seen := map[string]bool{}
	for _, sc := range res.Breakdown {
		steps += sc.Steps
		seen[sc.Stage] = true
	}
	if !seen["stage1-reduce"] {
		t.Error("breakdown missing stage1-reduce")
	}
	if steps != res.Steps {
		t.Errorf("breakdown steps %d != total %d", steps, res.Steps)
	}
}

// FuzzConnectivity is the native fuzz target: any byte string decodes to a
// multigraph; FLS must match BFS on it.  Run with:
//
//	go test -fuzz=FuzzConnectivity -fuzztime=30s .
func FuzzConnectivity(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0})
	f.Add([]byte{5, 5, 5, 5})
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	for i := 0; i < 8; i++ {
		b := make([]byte, 3+i*9)
		s := uint64(i) * 31
		for j := range b {
			s = pram.SplitMix64(s)
			b[j] = byte(s)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g := randomMultigraph(data)
		res, err := ConnectedComponents(g, &Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !Verify(g, res.Labels) {
			t.Fatalf("FLS disagrees with BFS on %s", fmt.Sprint(g.Edges))
		}
	})
}

// FuzzLTZ fuzzes the Theorem-2 baseline the same way.
func FuzzLTZ(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2})
	f.Add([]byte{9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := randomMultigraph(data)
		res, err := ConnectedComponents(g, &Options{Algorithm: LTZ, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !Verify(g, res.Labels) {
			t.Fatal("LTZ disagrees with BFS")
		}
	})
}
