// Command ccload is the closed-loop load generator for the connectivity
// service: it drives the internal/service engine with mixed
// read/write workloads at several shard counts and records sustained QPS
// against the naive alternative — answering every point query with a full
// from-scratch solve.  The table it emits is the BENCH_qps.json artifact
// CI publishes next to BENCH_inc.json, so the serving-layer throughput
// trajectory is recorded across PRs.
//
//	ccload -n 65536 -shards 1,2,4 -workers 8 -dur 2s -out BENCH_qps.json
//
// Workload mixes (reads/writes): read-heavy 99/1, mixed 90/10,
// write-heavy 50/50.  Reads are point queries off the published snapshot
// (Connected / ComponentOf+Size / ComponentCount); writes alternate
// AddEdges and RemoveEdges batches, so the write path exercises both the
// O(batch·α) insert fast path and the coalesced O(m)-sweep delete path.
// Every worker runs closed-loop (next op only after the previous
// completed), which is what makes the QPS numbers back-pressure-honest.
//
// Each shard's graph is a disjoint union of blocks (-block) with writes
// kept block-local — the serving-realistic locality (tenants, clusters,
// percolation cells) under which a deletion's dirty region stays one
// block and the scoped re-solve does bounded work.  One giant component
// instead degrades every delete to a full re-solve; that regime is
// already measured honestly by `ccbench -run INC` (delete-heavy row).
//
// -run wal switches to the durability scenario (BENCH_wal.json): an
// oracle-tracked write stream against a WAL-enabled engine, a simulated
// kill (the recovery input is the on-disk log image as of the last
// acknowledged write), recovery + replay-throughput measurement with
// correctness verified against the oracle — at the full log and at
// several byte-truncation crash points — plus a publish-cost sweep
// showing snapshot publishing is O(delta), not O(n): full-build vs
// k-vertex delta publish latencies across n and k.
//
// -run repl switches to the replication chaos scenario
// (BENCH_repl.json): real ccserved processes — a WAL-backed primary and
// N -follow followers over loopback HTTP — with an oracle-tracked
// sequential writer, kill -9 of the primary mid-write plus restart from
// its log, every follower read verified against the oracle partition at
// the version the follower reported, and a replica-scaling measurement
// of aggregate follower read QPS at 1..N followers.
package main

import (
	"bufio"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parcc"
	"parcc/internal/baseline"
	"parcc/internal/bench"
	"parcc/internal/graph"
	"parcc/internal/service"
)

type mix struct {
	name    string
	readPct int
}

var mixes = []mix{
	{"read-heavy 99/1", 99},
	{"mixed 90/10", 90},
	{"write-heavy 50/50", 50},
}

func main() {
	var (
		n           = flag.Int("n", 1<<16, "vertices per shard graph")
		deg         = flag.Int("deg", 2, "initial edges per vertex (m0 = deg*n)")
		block       = flag.Int("block", 1024, "block size: shard graphs are disjoint unions of blocks and writes stay block-local")
		shardsFlag  = flag.String("shards", "1,2,4", "comma-separated shard counts to sweep")
		workers     = flag.Int("workers", 8, "closed-loop client goroutines")
		dur         = flag.Duration("dur", 2*time.Second, "measured duration per workload row")
		batch       = flag.Int("batch", 8, "edges per write batch")
		window      = flag.Duration("window", 0, "engine batch-coalesce window")
		backend     = flag.String("backend", "", "solver backend: sequential | concurrent (default: legacy simulator)")
		procs       = flag.Int("procs", 0, "parallelism of the concurrent backend")
		seed        = flag.Uint64("seed", 1, "random seed")
		baselineDur = flag.Duration("baseline-dur", 2*time.Second, "duration of the naive full-solve baseline run (0 disables)")
		out         = flag.String("out", "", "write the JSON table here (default stdout)")
		run         = flag.String("run", "qps", "scenario: qps (throughput sweep) | wal (durability: crash recovery + publish-cost sweep) | repl (replication chaos: follower processes + primary kill -9)")
		walBatches  = flag.Int("wal-batches", 400, "acknowledged write batches in the -run wal stream")

		replFollowers = flag.Int("repl-followers", 2, "follower processes in the -run repl topology")
		replKills     = flag.Int("repl-kills", 3, "primary kill -9 cycles in -run repl")
		replBatches   = flag.Int("repl-batches", 120, "acknowledged write batches in the -run repl stream")
		replN         = flag.Int("repl-n", 8192, "vertices in the -run repl chaos graph")
		ccservedPath  = flag.String("ccserved", "", "ccserved binary for -run repl (default: $PATH, else go build ./cmd/ccserved)")
	)
	flag.Parse()

	switch *run {
	case "qps":
	case "wal":
		runWALScenario(&parcc.Options{
			Backend:    parcc.Backend(strings.ToLower(*backend)),
			Procs:      *procs,
			Seed:       *seed,
			TrustGraph: true,
		}, *n, *deg, *block, *batch, *walBatches, *seed, *out)
		return
	case "repl":
		runReplScenario(strings.ToLower(*backend), *replN, *deg, *block, *batch, *replBatches,
			*replFollowers, *replKills, *dur, *seed, *ccservedPath, *out)
		return
	default:
		fmt.Fprintf(os.Stderr, "ccload: unknown -run %q (want qps, wal, or repl)\n", *run)
		os.Exit(1)
	}

	var shardCounts []int
	for _, s := range strings.Split(*shardsFlag, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || k < 1 {
			fmt.Fprintf(os.Stderr, "ccload: bad -shards entry %q\n", s)
			os.Exit(1)
		}
		shardCounts = append(shardCounts, k)
	}

	opts := &parcc.Options{
		Backend:    parcc.Backend(strings.ToLower(*backend)),
		Procs:      *procs,
		Seed:       *seed,
		TrustGraph: true, // the engine owns the live graphs
	}

	t := &bench.Table{
		ID:    "SVC",
		Title: "service QPS: sharded snapshot reads + coalesced writes vs naive per-query full solves",
		Claim: "point queries served lock-free from published label snapshots sustain orders of " +
			"magnitude more QPS than answering each query with a full from-scratch solve, and " +
			"read throughput scales with shard count while coalescing amortizes write batches",
		Columns: []string{"workload", "shards", "n/shard", "m0/shard", "workers",
			"ops", "qps", "applies", "coalesce%", "publish µs", "naive qps", "speedup"},
	}

	// Naive baseline: every point query pays a full solve of the same
	// graph.  Generously warm — a persistent Solver session with a cached
	// CSR plan and the cheapest full algorithm (union-find) — so the
	// recorded speedup is against the strongest "no snapshot" opponent.
	naiveQPS := 0.0
	if *baselineDur > 0 {
		naiveQPS = naiveBaseline(*n, *deg, *block, *workers, *seed, *baselineDur)
		fmt.Fprintf(os.Stderr, "naive full-solve baseline: %.0f qps (n=%d, m=%d, %d workers, union-find)\n",
			naiveQPS, *n, *deg**n, *workers)
	}

	readHeavySpeedup := 0.0
	for _, m := range mixes {
		for _, shards := range shardCounts {
			ops, wall, sm := runWorkload(opts, m, *n, *deg, *block, shards, *workers, *batch, *window, *seed, *dur)
			qps := float64(ops) / wall.Seconds()
			naiveCell, speedupCell := "-", "-"
			if naiveQPS > 0 {
				naiveCell = fmt.Sprintf("%.4g", naiveQPS)
				speedupCell = fmt.Sprintf("%.4gx", qps/naiveQPS)
				if m.readPct == 99 && qps/naiveQPS > readHeavySpeedup {
					readHeavySpeedup = qps / naiveQPS
				}
			}
			t.Add(m.name, shards, *n, *deg**n, *workers, ops, qps,
				sm.appliesCell(), sm.coalesceCell(), sm.publishCell(), naiveCell, speedupCell)
			fmt.Fprintf(os.Stderr, "%-18s shards=%d: %d ops in %v (%.0f qps)\n",
				m.name, shards, ops, wall.Round(time.Millisecond), qps)
		}
	}

	t.Note("closed loop: %d workers issue the next op only after the previous completed; "+
		"reads are snapshot point queries, writes alternate AddEdges/RemoveEdges batches of %d "+
		"edges routed through the shard writer (coalesce window %v).  backend=%q procs=%d.",
		*workers, *batch, *window, string(opts.Backend), *procs)
	t.Note("each shard graph is a disjoint union of %d-vertex blocks and writes are "+
		"block-local, so a deletion's dirty region is one block and its scoped re-solve does "+
		"bounded work; the one-giant-component delete regime is measured by ccbench -run INC.",
		*block)
	t.Note("the naive baseline answers every query with a full solve of the same graph on a " +
		"warm persistent session (cached CSR plan, union-find — the cheapest full algorithm), " +
		"i.e. it is the strongest opponent that lacks snapshots and incrementality.")
	t.Note("applies / coalesce%% / publish µs are GET /metrics deltas scraped over loopback " +
		"HTTP around each measured window (parcc_engine_applies_total, coalesced/writes, mean " +
		"parcc_snapshot_publish_seconds) — the same surface ccserved exports to Prometheus.")
	if naiveQPS > 0 {
		verdict := "PASS"
		if readHeavySpeedup < 10 {
			verdict = "FAIL"
		}
		t.Note("acceptance bar (read-heavy >= 10x naive at this n): best read-heavy speedup "+
			"%.4gx — %s.", readHeavySpeedup, verdict)
	}

	body := t.JSON()
	if *out != "" {
		if err := os.WriteFile(*out, []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ccload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		return
	}
	fmt.Print(body)
}

// blockUnion builds the workload graph: n vertices as a disjoint union of
// `block`-sized cells, each wired like a supercritical GNM internally
// (deg edges per vertex, endpoints inside the cell).
func blockUnion(n, deg, block int, seed uint64) *parcc.Graph {
	g := parcc.NewGraph(n)
	rng := rand.New(rand.NewSource(int64(seed)*2654435761 + 1))
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		w := hi - lo
		for k := 0; k < deg*w; k++ {
			g.AddEdge(lo+rng.Intn(w), lo+rng.Intn(w))
		}
	}
	return g
}

// svcMetrics is the /metrics delta of one measured window: the engine's
// own Prometheus counters scraped over HTTP before and after the run.
type svcMetrics struct {
	ok                bool // both scrapes succeeded
	writes, applies   float64
	coalesced         float64
	pubCount, pubSecs float64
}

func (s svcMetrics) appliesCell() string {
	if !s.ok {
		return "-"
	}
	return fmt.Sprintf("%.0f", s.applies)
}

func (s svcMetrics) coalesceCell() string {
	if !s.ok || s.writes == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*s.coalesced/s.writes)
}

func (s svcMetrics) publishCell() string {
	if !s.ok || s.pubCount == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 1e6*s.pubSecs/s.pubCount)
}

// scrapeMetrics GETs a Prometheus text page and returns the unlabeled
// samples by name (labeled per-shard series are skipped — the engine
// totals are what the deltas need).
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %d", url, resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.Contains(fields[0], "{") {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}

// metricsDelta converts a before/after scrape pair into the window's
// counter deltas.
func metricsDelta(before, after map[string]float64) svcMetrics {
	if before == nil || after == nil {
		return svcMetrics{}
	}
	d := func(name string) float64 { return after[name] - before[name] }
	return svcMetrics{
		ok:        true,
		writes:    d("parcc_engine_writes_total"),
		applies:   d("parcc_engine_applies_total"),
		coalesced: d("parcc_engine_coalesced_total"),
		pubCount:  d("parcc_snapshot_publish_seconds_count"),
		pubSecs:   d("parcc_snapshot_publish_seconds_sum"),
	}
}

// runWorkload measures one (mix, shard count) cell: an engine with
// `shards` independent block-union sessions, `workers` closed-loop
// clients spreading ops across them, for roughly dur.  The engine's real
// HTTP handler is served on a loopback port and /metrics is scraped
// before and after the window, so the embedded deltas exercise the same
// scrape path Prometheus would.
func runWorkload(opts *parcc.Options, m mix, n, deg, block, shards, workers, batchSize int, window time.Duration, seed uint64, dur time.Duration) (int64, time.Duration, svcMetrics) {
	eng := service.New(service.Options{Solver: opts, CoalesceWindow: window})
	defer eng.Close()
	names := make([]string, shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard%d", i)
		if err := eng.Create(names[i], blockUnion(n, deg, block, seed+uint64(i))); err != nil {
			fmt.Fprintln(os.Stderr, "ccload:", err)
			os.Exit(1)
		}
	}

	// Serve the real API on loopback for the metric scrapes.  Scrape
	// failures degrade the metric cells to "-" rather than failing the run.
	var metricsURL string
	if ln, err := net.Listen("tcp", "127.0.0.1:0"); err == nil {
		srv := &http.Server{Handler: service.NewHandler(eng)}
		go srv.Serve(ln)
		defer srv.Close()
		metricsURL = fmt.Sprintf("http://%s/metrics", ln.Addr())
	} else {
		fmt.Fprintln(os.Stderr, "ccload: metrics listener:", err)
	}
	scrape := func() map[string]float64 {
		if metricsURL == "" {
			return nil
		}
		mm, err := scrapeMetrics(metricsURL)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccload: metrics scrape:", err)
			return nil
		}
		return mm
	}
	before := scrape()

	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed) + int64(w)*7919))
			// Batches this worker added and may later remove; per-worker
			// queues keep the remove multiset semantics conflict-free.
			type addedBatch struct {
				name  string
				batch []parcc.Edge
			}
			var added []addedBatch
			ops := int64(0)
			for !stop.Load() {
				name := names[rng.Intn(len(names))]
				if rng.Intn(100) < m.readPct {
					switch rng.Intn(4) {
					case 0:
						if _, err := eng.ComponentOf(name, rng.Intn(n)); err != nil {
							fail(err)
						}
					case 1:
						if _, err := eng.ComponentSize(name, rng.Intn(n)); err != nil {
							fail(err)
						}
					case 2:
						if _, err := eng.ComponentCount(name); err != nil {
							fail(err)
						}
					default:
						if _, err := eng.Connected(name, rng.Intn(n), rng.Intn(n)); err != nil {
							fail(err)
						}
					}
				} else if len(added) > 0 && rng.Intn(2) == 0 {
					i := rng.Intn(len(added))
					ab := added[i]
					added[i] = added[len(added)-1]
					added = added[:len(added)-1]
					if err := eng.RemoveEdges(ab.name, ab.batch); err != nil {
						fail(err)
					}
				} else {
					// Block-local insert: endpoints inside one random cell.
					lo := (rng.Intn(n) / block) * block
					w := block
					if lo+w > n {
						w = n - lo
					}
					b := make([]parcc.Edge, batchSize)
					for j := range b {
						b[j] = parcc.Edge{U: int32(lo + rng.Intn(w)), V: int32(lo + rng.Intn(w))}
					}
					if err := eng.AddEdges(name, b); err != nil {
						fail(err)
					}
					added = append(added, addedBatch{name: name, batch: b})
				}
				ops++
			}
			total.Add(ops)
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	wall := time.Since(start)
	return total.Load(), wall, metricsDelta(before, scrape())
}

// naiveBaseline measures the no-service alternative: the same point
// queries, each answered by a full solve of the same graph.
func naiveBaseline(n, deg, block, workers int, seed uint64, dur time.Duration) float64 {
	g := blockUnion(n, deg, block, seed)
	var stop atomic.Bool
	var total atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := parcc.NewSolver(&parcc.Options{
				Algorithm: parcc.UnionFind, Seed: seed, TrustGraph: true,
			})
			if err != nil {
				fail(err)
			}
			defer s.Close()
			rng := rand.New(rand.NewSource(int64(seed) + int64(w)*104729))
			res := &parcc.Result{}
			ops := int64(0)
			for !stop.Load() {
				if err := s.SolveInto(g, res); err != nil {
					fail(err)
				}
				u, v := rng.Intn(n), rng.Intn(n)
				_ = res.Labels[u] == res.Labels[v]
				ops++
			}
			total.Add(ops)
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return float64(total.Load()) / time.Since(start).Seconds()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ccload:", err)
	os.Exit(1)
}

// runWALScenario is the -run wal durability benchmark: write a tracked
// stream through a WAL-enabled engine, snapshot the log bytes as of the
// last acknowledged write (the crash image — fsync ordering guarantees
// this is exactly what a kill -9 would leave), then recover from the full
// image and from several byte-truncation crash points, verifying every
// recovered partition against the oracle at the replayed stream position.
// It finishes with the publish-cost sweep: full-build vs k-vertex delta
// snapshot publish latency across n and k.
func runWALScenario(opts *parcc.Options, n, deg, block, batchSize, batches int, seed uint64, out string) {
	t := &bench.Table{
		ID:    "WAL",
		Title: "durable shards: write-ahead logging, crash recovery, and O(delta) snapshot publishing",
		Claim: "every acknowledged write survives a kill at any byte position — recovery replays the " +
			"clean log prefix to exactly the oracle's partition at that stream position — and " +
			"republishing after a k-vertex write group costs O(k/pageSize) page clones, not O(n)",
		Columns: []string{"scenario", "n", "batches|k", "records", "edges", "wal KiB", "elapsed", "rate", "verdict"},
	}
	pass := true
	verdict := func(ok bool) string {
		if ok {
			return "PASS"
		}
		pass = false
		return "FAIL"
	}

	// Phase 1: the logged write stream, one acknowledged batch at a time so
	// log records map 1:1 to oracle positions.
	dirA, err := os.MkdirTemp("", "ccload-wal-a-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dirA)
	eng := service.New(service.Options{Solver: opts, WALDir: dirA})
	g0 := blockUnion(n, deg, block, seed)
	oracle := baseline.NewIncOracle(g0)
	if err := eng.Create("wal", g0.Clone()); err != nil {
		fail(err)
	}
	history := [][]int32{append([]int32(nil), oracle.Labels()...)}
	rng := rand.New(rand.NewSource(int64(seed)*6364136223846793005 + 3))
	edgesLogged := g0.M()
	t0 := time.Now()
	for b := 0; b < batches; b++ {
		live := oracle.Graph()
		if rng.Intn(10) < 6 || live.M() == 0 {
			// Block-local insert, same locality as the qps workload.
			lo := (rng.Intn(n) / block) * block
			w := block
			if lo+w > n {
				w = n - lo
			}
			batch := make([]parcc.Edge, batchSize)
			for i := range batch {
				batch[i] = parcc.Edge{U: int32(lo + rng.Intn(w)), V: int32(lo + rng.Intn(w))}
			}
			if err := eng.AddEdges("wal", batch); err != nil {
				fail(err)
			}
			if err := oracle.AddEdges(batch); err != nil {
				fail(err)
			}
			edgesLogged += len(batch)
		} else {
			k := 1 + rng.Intn(batchSize)
			if k > live.M() {
				k = live.M()
			}
			idx := rng.Perm(live.M())[:k]
			batch := make([]parcc.Edge, 0, k)
			for _, i := range idx {
				batch = append(batch, live.Edges[i])
			}
			if err := eng.RemoveEdges("wal", batch); err != nil {
				fail(err)
			}
			if err := oracle.RemoveEdges(batch); err != nil {
				fail(err)
			}
			edgesLogged += len(batch)
		}
		history = append(history, append([]int32(nil), oracle.Labels()...))
	}
	writeWall := time.Since(t0)

	// The crash image: the log bytes as of the last acknowledged write.
	// Every ack happened after its group's fsync, so reading the file now
	// (before any graceful shutdown) is byte-for-byte what a kill -9 at
	// this instant would leave on disk.
	entries, err := os.ReadDir(dirA)
	if err != nil || len(entries) != 1 {
		fail(fmt.Errorf("wal dir holds %d files (err %v), want 1", len(entries), err))
	}
	walFile := entries[0].Name()
	image, err := os.ReadFile(filepath.Join(dirA, walFile))
	if err != nil {
		fail(err)
	}
	eng.Close() // the abandoned engine; recovery only ever sees `image`
	t.Add("write+log", n, batches, batches+1, edgesLogged, len(image)/1024,
		fmt.Sprintf("%v", writeWall.Round(time.Millisecond)),
		fmt.Sprintf("%.4g edges/s", float64(edgesLogged)/writeWall.Seconds()), "-")
	fmt.Fprintf(os.Stderr, "logged %d batches (%d edges, %d KiB) in %v\n",
		batches, edgesLogged, len(image)/1024, writeWall.Round(time.Millisecond))

	// recoverImage starts a fresh engine over a (possibly truncated) copy
	// of the crash image and verifies the replayed partition against the
	// oracle at the position the log prefix encodes: create = version 1,
	// batch i = version i+1, so a recovered version v means position v-2.
	recoverImage := func(label string, data []byte) {
		dir, err := os.MkdirTemp("", "ccload-wal-r-")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(dir)
		if err := os.WriteFile(filepath.Join(dir, walFile), data, 0o644); err != nil {
			fail(err)
		}
		e2 := service.New(service.Options{Solver: opts, WALDir: dir})
		defer e2.Close()
		stats, err := e2.Recover()
		if err != nil {
			fail(fmt.Errorf("%s: recover: %w", label, err))
		}
		sn, err := e2.Snapshot("wal")
		if errors.Is(err, service.ErrGraphNotFound) {
			// Cut inside the create record: nothing was durable yet, and
			// nothing may be served.
			ok := stats.Graphs == 0 && stats.Records == 0
			t.Add(label, n, -1, 0, 0, len(data)/1024,
				fmt.Sprintf("%v", stats.Elapsed.Round(time.Microsecond)), "-", verdict(ok))
			return
		}
		if err != nil {
			fail(fmt.Errorf("%s: %w", label, err))
		}
		pos := int(sn.Version()) - 2
		ok := pos >= 0 && pos < len(history) &&
			graph.SamePartition(history[pos], sn.Labels()) &&
			sn.NumComponents() == graph.NumLabels(history[pos])
		rate := "-"
		if stats.Elapsed > 0 {
			rate = fmt.Sprintf("%.4g edges/s", float64(stats.Edges)/stats.Elapsed.Seconds())
		}
		t.Add(label, n, pos, stats.Records, stats.Edges, len(data)/1024,
			fmt.Sprintf("%v", stats.Elapsed.Round(time.Microsecond)), rate, verdict(ok))
		fmt.Fprintf(os.Stderr, "%s: replayed %d records to position %d in %v — %s\n",
			label, stats.Records, pos, stats.Elapsed.Round(time.Millisecond), verdict(ok))
	}

	// Phase 2: recovery from the full image, then from byte-truncation
	// crash points spread across the batch tail of the log (the create
	// frame's length prefix tells us where the tail starts) and one cut
	// inside the create record itself.
	recoverImage("recover(full)", image)
	createEnd := 8 + int(binary.LittleEndian.Uint32(image[:4]))
	tail := len(image) - createEnd
	for _, q := range []int{1, 2, 3} {
		cut := createEnd + q*tail/4
		recoverImage(fmt.Sprintf("recover(cut@%d%%)", 25*q), image[:cut])
	}
	recoverImage("recover(torn-tail)", image[:len(image)-3])
	recoverImage("recover(mid-create)", image[:createEnd/2])

	// Phase 3: publish-cost sweep — full-build vs k-vertex delta publish
	// across n.  The delta cost tracks k (pages touched), not n: that is
	// the O(delta) claim, visible as a full/delta ratio that grows with n
	// at fixed k.
	for _, nn := range []int{1 << 14, 1 << 16, 1 << 18} {
		s, err := parcc.NewSolver(opts)
		if err != nil {
			fail(err)
		}
		if err := s.Attach(&parcc.Graph{N: nn}); err != nil {
			fail(err)
		}
		tf := time.Now()
		if _, err := s.PublishSnapshot(); err != nil {
			fail(err)
		}
		fullUS := float64(time.Since(tf).Microseconds())
		t.Add("publish(full)", nn, "-", "-", "-", "-", fmt.Sprintf("%.4g µs", fullUS), "-", "-")
		off := 0
		for _, k := range []int{64, 1024, 8192} {
			var samples []float64
			var cloned int
			for rep := 0; rep < 9; rep++ {
				if off+k+1 >= nn {
					off = 0
				}
				batch := make([]parcc.Edge, k)
				for i := range batch {
					batch[i] = parcc.Edge{U: int32(off + i), V: int32(off + i + 1)}
				}
				off += k + 1
				if err := s.AddEdges(batch); err != nil {
					fail(err)
				}
				td := time.Now()
				sn, err := s.PublishSnapshot()
				if err != nil {
					fail(err)
				}
				samples = append(samples, float64(time.Since(td).Microseconds()))
				cloned = sn.ClonedPages()
			}
			sort.Float64s(samples)
			deltaUS := samples[len(samples)/2]
			ratio := "-"
			if deltaUS > 0 {
				ratio = fmt.Sprintf("full/delta %.3gx", fullUS/deltaUS)
			}
			t.Add("publish(delta)", nn, k, "-", "-", "-",
				fmt.Sprintf("%.4g µs", deltaUS), ratio,
				fmt.Sprintf("%d pages cloned", cloned))
		}
		s.Close()
	}

	t.Note("crash image = log bytes read after the last acknowledged write and before any "+
		"graceful shutdown; acks follow the group fsync, so the image equals a kill -9 state.  "+
		"recovery rows replay a truncated copy and compare against the oracle partition at the "+
		"position the clean prefix encodes (recovered version v ⇒ position v-2); torn tails are "+
		"truncated and tolerated, mid-create cuts must recover to an empty engine.  backend=%q.",
		string(opts.Backend))
	t.Note("publish rows: first publish builds the full page mirror (O(n)); each later publish " +
		"clones only the label/size pages the write group touched (O(⌈k/1024⌉) — the 'pages " +
		"cloned' cell), so the full/delta latency ratio grows with n at fixed k.")
	t.Note("overall verdict: %s.", verdict(pass))

	body := t.JSON()
	if out != "" {
		if err := os.WriteFile(out, []byte(body), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
		return
	}
	fmt.Print(body)
}
