// -run repl: the replication chaos scenario (BENCH_repl.json).  Real
// processes, not goroutines: a ccserved primary with a WAL and N ccserved
// followers tailing it over loopback HTTP.  A sequential oracle-tracked
// writer drives the primary while closed-loop readers hammer the
// followers; the primary is kill -9'd with a write in flight and
// restarted from its log, repeatedly; every follower read is verified
// against the oracle partition at the exact version the follower
// reported.  The scenario ends with the replica-scaling measurement:
// aggregate follower read QPS at fixed per-replica client concurrency,
// for 1..N followers.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"parcc"
	"parcc/internal/baseline"
	"parcc/internal/bench"
	"parcc/internal/graph"
)

// replProc is one managed ccserved process.
type replProc struct {
	cmd *exec.Cmd
	url string
	log *os.File
}

func startServed(bin, logPath string, args ...string) (*replProc, error) {
	lf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = lf, lf
	if err := cmd.Start(); err != nil {
		lf.Close()
		return nil, err
	}
	return &replProc{cmd: cmd, log: lf}, nil
}

// kill is the chaos action: SIGKILL, no drain, no checkpoint.
func (p *replProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.log.Close()
}

func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port, nil
}

// ccservedBinary resolves the server binary: the flag, PATH, or a local
// `go build` of ./cmd/ccserved as a last resort.
func ccservedBinary(flagPath, tmp string) (string, error) {
	if flagPath != "" {
		return flagPath, nil
	}
	if p, err := exec.LookPath("ccserved"); err == nil {
		return p, nil
	}
	out := filepath.Join(tmp, "ccserved")
	build := exec.Command("go", "build", "-o", out, "./cmd/ccserved")
	if msg, err := build.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building ccserved: %v\n%s", err, msg)
	}
	return out, nil
}

var replClient = &http.Client{
	Timeout: 15 * time.Second,
	Transport: &http.Transport{
		MaxIdleConnsPerHost: 64,
	},
}

func replJSON(method, url string, body []byte) (int, map[string]any, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	resp, err := replClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, nil, err
		}
	}
	return resp.StatusCode, out, nil
}

// waitReadyz polls /readyz until it reports 200 — the gate both for a
// restarted primary (recovery done) and for followers (synced within
// max-lag).
func waitReadyz(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, _, err := replJSON("GET", url+"/readyz", nil)
		if err == nil && st == http.StatusOK {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("%s/readyz not 200 within %v", url, timeout)
}

// edgePairs converts to the API's wire shape for edge lists.
func edgePairs(edges []parcc.Edge) [][2]int32 {
	out := make([][2]int32, len(edges))
	for i, e := range edges {
		out[i] = [2]int32{e.U, e.V}
	}
	return out
}

// versionHistory maps snapshot version -> oracle labels at that version.
// The writer appends; readers verify against it.
type versionHistory struct {
	mu sync.RWMutex
	m  map[uint64][]int32
}

func (h *versionHistory) set(v uint64, labels []int32) {
	h.mu.Lock()
	h.m[v] = append([]int32(nil), labels...)
	h.mu.Unlock()
}

func (h *versionHistory) get(v uint64) ([]int32, bool) {
	h.mu.RLock()
	l, ok := h.m[v]
	h.mu.RUnlock()
	return l, ok
}

// deferredRead is a follower read observed at a version the writer had
// not yet recorded (the follower can apply a group before the primary's
// ack reaches the writer) — verified after the run.
type deferredRead struct {
	version   uint64
	u, v      int
	connected bool
}

// readerStats aggregates the chaos readers' outcomes.
type readerStats struct {
	reads, errs, verifyFails atomic.Int64
	mu                       sync.Mutex
	deferred                 []deferredRead
}

// runChaosReaders keeps one closed-loop verifying reader per follower
// running until stop is closed.
func runChaosReaders(stop chan struct{}, wg *sync.WaitGroup, followers []string, n int, hist *versionHistory, stats *readerStats, seed int64) {
	for i, base := range followers {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u, v := rng.Intn(n), rng.Intn(n)
				st, body, err := replJSON("GET", fmt.Sprintf("%s/graphs/chaos/connected?u=%d&v=%d", base, u, v), nil)
				if err != nil || st != http.StatusOK {
					stats.errs.Add(1)
					time.Sleep(5 * time.Millisecond)
					continue
				}
				stats.reads.Add(1)
				conn, _ := body["connected"].(bool)
				ver := uint64(body["version"].(float64))
				if labels, ok := hist.get(ver); ok {
					if (labels[u] == labels[v]) != conn {
						stats.verifyFails.Add(1)
					}
				} else {
					stats.mu.Lock()
					stats.deferred = append(stats.deferred, deferredRead{version: ver, u: u, v: v, connected: conn})
					stats.mu.Unlock()
				}
				time.Sleep(time.Millisecond)
			}
		}(i, base)
	}
}

// measureReadQPS runs `workersPer` closed-loop readers against each of
// the first `use` followers for dur, with a fixed per-request think time
// — the replica-scaling measurement: each follower gets the same client
// concurrency, so aggregate QPS tracks serving capacity added per
// replica.
func measureReadQPS(followers []string, use, workersPer, n int, think, dur time.Duration, seed int64) float64 {
	var stopFlag atomic.Bool
	var ops atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for f := 0; f < use; f++ {
		for w := 0; w < workersPer; w++ {
			wg.Add(1)
			go func(f, w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(f)*104729 + int64(w)))
				url := followers[f]
				for !stopFlag.Load() {
					u, v := rng.Intn(n), rng.Intn(n)
					st, _, err := replJSON("GET", fmt.Sprintf("%s/graphs/chaos/connected?u=%d&v=%d", url, u, v), nil)
					if err != nil || st != http.StatusOK {
						fail(fmt.Errorf("qps read: status %d err %v", st, err))
					}
					ops.Add(1)
					time.Sleep(think)
				}
			}(f, w)
		}
	}
	time.Sleep(dur)
	stopFlag.Store(true)
	wg.Wait()
	return float64(ops.Load()) / time.Since(start).Seconds()
}

// runReplScenario is the -run repl entry point.
func runReplScenario(backend string, n, deg, block, batchSize, batches, followerCount, kills int, qpsDur time.Duration, seed uint64, ccservedFlag, out string) {
	t := &bench.Table{
		ID:    "REPL",
		Title: "replication chaos: WAL-tailing followers under primary kill -9, with oracle-verified reads",
		Claim: "followers re-applying the primary's log serve reads indistinguishable from the primary " +
			"at every version they publish — through repeated kill -9 of the primary and its WAL " +
			"recovery — and keep serving while the primary is down; aggregate read throughput " +
			"scales with follower count at fixed per-replica client concurrency",
		Columns: []string{"scenario", "detail", "ops", "elapsed", "rate", "verdict"},
	}
	pass := true
	verdict := func(ok bool) string {
		if ok {
			return "PASS"
		}
		pass = false
		return "FAIL"
	}

	tmp, err := os.MkdirTemp("", "ccload-repl-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(tmp)
	bin, err := ccservedBinary(ccservedFlag, tmp)
	if err != nil {
		fail(err)
	}
	walDir := filepath.Join(tmp, "wal")
	if err := os.Mkdir(walDir, 0o755); err != nil {
		fail(err)
	}

	// Topology: one primary (durable) + followerCount followers on loopback.
	primaryPort, err := freePort()
	if err != nil {
		fail(err)
	}
	primaryURL := fmt.Sprintf("http://127.0.0.1:%d", primaryPort)
	primaryArgs := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", primaryPort),
		"-backend", backend, "-wal-dir", walDir,
	}
	startPrimary := func() *replProc {
		p, err := startServed(bin, filepath.Join(tmp, "primary.log"), primaryArgs...)
		if err != nil {
			fail(err)
		}
		if err := waitReadyz(primaryURL, 30*time.Second); err != nil {
			fail(err)
		}
		return p
	}
	primary := startPrimary()
	defer func() { primary.kill() }()

	// Create the graph, seed the oracle and the version history.
	g0 := blockUnion(n, deg, block, seed)
	oracle := baseline.NewIncOracle(g0)
	createBody, err := json.Marshal(map[string]any{"n": n, "edges": edgePairs(g0.Edges)})
	if err != nil {
		fail(err)
	}
	if st, body, err := replJSON("PUT", primaryURL+"/graphs/chaos", createBody); err != nil || st != http.StatusCreated {
		fail(fmt.Errorf("create: status %d err %v body %v", st, err, body))
	}
	hist := &versionHistory{m: map[uint64][]int32{}}
	hist.set(1, oracle.Labels())
	lastSeq := uint64(1)

	followers := make([]string, followerCount)
	fprocs := make([]*replProc, followerCount)
	for i := range followers {
		port, err := freePort()
		if err != nil {
			fail(err)
		}
		followers[i] = fmt.Sprintf("http://127.0.0.1:%d", port)
		fprocs[i], err = startServed(bin, filepath.Join(tmp, fmt.Sprintf("follower%d.log", i)),
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-backend", backend, "-follow", primaryURL, "-max-lag", "2s")
		if err != nil {
			fail(err)
		}
		defer fprocs[i].kill()
	}
	for _, u := range followers {
		if err := waitReadyz(u, 30*time.Second); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "topology up: primary %s + %d followers, graph n=%d m=%d\n",
		primaryURL, followerCount, n, g0.M())

	// Chaos readers run for the whole write phase, across every kill.
	stats := &readerStats{}
	stopReaders := make(chan struct{})
	var readerWG sync.WaitGroup
	runChaosReaders(stopReaders, &readerWG, followers, n, hist, stats, int64(seed))

	// The sequential writer: block-local adds and random removals, each
	// acked before the next, the oracle and history tracking every version
	// the primary assigns.  writeBatch returns the batch it built.
	rng := rand.New(rand.NewSource(int64(seed)*2862933555777941757 + 5))
	mkAdd := func() []parcc.Edge {
		lo := (rng.Intn(n) / block) * block
		w := block
		if lo+w > n {
			w = n - lo
		}
		b := make([]parcc.Edge, batchSize)
		for i := range b {
			b[i] = parcc.Edge{U: int32(lo + rng.Intn(w)), V: int32(lo + rng.Intn(w))}
		}
		return b
	}
	post := func(path string, batch []parcc.Edge) (uint64, error) {
		body, err := json.Marshal(map[string]any{"edges": edgePairs(batch)})
		if err != nil {
			return 0, err
		}
		st, resp, err := replJSON("POST", primaryURL+path, body)
		if err != nil {
			return 0, err
		}
		if st != http.StatusOK {
			return 0, fmt.Errorf("POST %s: status %d: %v", path, st, resp)
		}
		return uint64(resp["version"].(float64)), nil
	}
	ack := func(v uint64) {
		if v != lastSeq+1 {
			fail(fmt.Errorf("writer saw version %d after %d (want +1)", v, lastSeq))
		}
		lastSeq = v
		hist.set(v, oracle.Labels())
	}

	// killRestart fires a batch at the primary, kill -9s it with the write
	// in flight, restarts it from the WAL, and reconciles: the recovery
	// publish is always lastRecordSeq+1, so the recovered version says —
	// unambiguously — whether the in-flight group became durable.
	killRestart := func(k int) {
		batch := mkAdd()
		body, _ := json.Marshal(map[string]any{"edges": edgePairs(batch)})
		inflight := make(chan error, 1)
		sendDelay := time.Duration(rng.Intn(3000)) * time.Microsecond
		killDelay := time.Duration(rng.Intn(3000)) * time.Microsecond
		go func() {
			time.Sleep(sendDelay)
			_, _, err := replJSON("POST", primaryURL+"/graphs/chaos/edges", body)
			inflight <- err
		}()
		time.Sleep(killDelay)
		t0 := time.Now()
		primary.kill()
		<-inflight // outcome unknowable from the client side; the log decides
		primary = startPrimary()
		st, resp, err := replJSON("GET", primaryURL+"/graphs/chaos/snapshot", nil)
		if err != nil || st != http.StatusOK {
			fail(fmt.Errorf("post-restart snapshot: %d %v", st, err))
		}
		recovered := uint64(resp["version"].(float64))
		landed := false
		switch recovered {
		case lastSeq + 1: // recovery bump only: the in-flight group was lost
		case lastSeq + 2: // the group hit the log before the kill
			landed = true
			if err := oracle.AddEdges(batch); err != nil {
				fail(err)
			}
			// Followers stream and publish the batch's own seq — record it,
			// or their reads at that version would look unassigned.
			hist.set(lastSeq+1, oracle.Labels())
		default:
			fail(fmt.Errorf("kill %d: recovered version %d, want %d or %d", k, recovered, lastSeq+1, lastSeq+2))
		}
		raw := resp["labels"].([]any)
		labels := make([]int32, len(raw))
		for i, x := range raw {
			labels[i] = int32(x.(float64))
		}
		okPart := graph.SamePartition(labels, oracle.Labels())
		lastSeq = recovered
		hist.set(recovered, oracle.Labels())
		if !landed {
			// Lost cleanly: replay it so the stream always advances.
			v, err := post("/graphs/chaos/edges", batch)
			if err != nil {
				fail(err)
			}
			if err := oracle.AddEdges(batch); err != nil {
				fail(err)
			}
			ack(v)
		}
		// Followers must reconnect and catch back up.
		caught := true
		for _, u := range followers {
			if err := waitReadyz(u, 30*time.Second); err != nil {
				caught = false
			}
		}
		outcome := "lost (replayed)"
		if landed {
			outcome = "durable"
		}
		t.Add(fmt.Sprintf("kill#%d", k),
			fmt.Sprintf("in-flight batch %s; recovered v%d", outcome, recovered),
			1, fmt.Sprintf("%v", time.Since(t0).Round(time.Millisecond)),
			"kill -9 → WAL recovery → followers caught up", verdict(okPart && caught))
		fmt.Fprintf(os.Stderr, "kill#%d: in-flight %s, recovered v%d, followers caught up=%v\n",
			k, outcome, recovered, caught)
	}

	t0 := time.Now()
	killAt := map[int]int{}
	for k := 1; k <= kills; k++ {
		killAt[k*batches/(kills+1)] = k
	}
	wrote := 0
	for b := 0; b < batches; b++ {
		if k, ok := killAt[b]; ok {
			killRestart(k)
		}
		live := oracle.Graph()
		if rng.Intn(10) < 7 || live.M() == 0 {
			batch := mkAdd()
			v, err := post("/graphs/chaos/edges", batch)
			if err != nil {
				fail(err)
			}
			if err := oracle.AddEdges(batch); err != nil {
				fail(err)
			}
			ack(v)
		} else {
			k := 1 + rng.Intn(batchSize)
			if k > live.M() {
				k = live.M()
			}
			idx := rng.Perm(live.M())[:k]
			batch := make([]parcc.Edge, 0, k)
			for _, i := range idx {
				batch = append(batch, live.Edges[i])
			}
			v, err := post("/graphs/chaos/edges/remove", batch)
			if err != nil {
				fail(err)
			}
			if err := oracle.RemoveEdges(batch); err != nil {
				fail(err)
			}
			ack(v)
		}
		wrote++
		if b == batches/2 {
			// Mid-stream compaction: the log's head becomes a checkpoint and
			// live streams must survive the swap.
			if st, _, err := replJSON("POST", primaryURL+"/graphs/chaos/compact", nil); err != nil || st != http.StatusOK {
				fail(fmt.Errorf("compact: %d %v", st, err))
			}
		}
	}
	writeWall := time.Since(t0)
	t.Add("chaos writes",
		fmt.Sprintf("%d acked batches, %d kill -9s, 1 compact; final v%d", wrote, kills, lastSeq),
		wrote, fmt.Sprintf("%v", writeWall.Round(time.Millisecond)),
		fmt.Sprintf("%.4g writes/s", float64(wrote)/writeWall.Seconds()), "-")

	// Wait for every follower to reach the final version, then stop the
	// readers and settle the deferred verifications.
	finalOK := true
	for _, u := range followers {
		deadline := time.Now().Add(30 * time.Second)
		for {
			st, body, err := replJSON("GET", fmt.Sprintf("%s/graphs/chaos/count?min_version=%d", u, lastSeq), nil)
			if err == nil && st == http.StatusOK {
				_ = body
				break
			}
			if !time.Now().Before(deadline) {
				finalOK = false
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	close(stopReaders)
	readerWG.Wait()
	for _, d := range stats.deferred {
		labels, ok := hist.get(d.version)
		if !ok {
			stats.verifyFails.Add(1) // served a version the primary never assigned
			continue
		}
		if (labels[d.u] == labels[d.v]) != d.connected {
			stats.verifyFails.Add(1)
		}
	}
	readsOK := stats.verifyFails.Load() == 0 && stats.reads.Load() > 0
	t.Add("follower reads",
		fmt.Sprintf("%d verified against oracle@version (%d deferred, %d transient errors)",
			stats.reads.Load(), len(stats.deferred), stats.errs.Load()),
		stats.reads.Load(), fmt.Sprintf("%v", writeWall.Round(time.Millisecond)),
		fmt.Sprintf("%d mismatches", stats.verifyFails.Load()), verdict(readsOK && finalOK))
	fmt.Fprintf(os.Stderr, "follower reads: %d verified, %d mismatches, %d transient errors\n",
		stats.reads.Load(), stats.verifyFails.Load(), stats.errs.Load())

	// Replica scaling: aggregate follower read QPS at fixed per-replica
	// client concurrency (closed loop, think time >> service time, so each
	// replica contributes its own concurrency slots).
	const workersPer = 8
	think := 4 * time.Millisecond
	qps := make([]float64, followerCount+1)
	for use := 1; use <= followerCount; use++ {
		qps[use] = measureReadQPS(followers, use, workersPer, n, think, qpsDur, int64(seed)+int64(use))
		scale := "-"
		v := "-"
		if use >= 2 && qps[1] > 0 {
			s := qps[use] / qps[1]
			scale = fmt.Sprintf("%.3gx vs 1 follower", s)
			if use == 2 {
				v = verdict(s >= 1.7)
			}
		}
		t.Add(fmt.Sprintf("read qps x%d", use),
			fmt.Sprintf("%d followers x %d closed-loop readers, %v think", use, workersPer, think),
			int64(qps[use]*qpsDur.Seconds()), fmt.Sprintf("%v", qpsDur),
			fmt.Sprintf("%.4g qps aggregate  %s", qps[use], scale), v)
		fmt.Fprintf(os.Stderr, "read qps x%d: %.0f aggregate\n", use, qps[use])
	}

	t.Note("real processes over loopback HTTP: ccserved -wal-dir primary, ccserved -follow "+
		"followers (backend=%q).  The writer is sequential (each batch acked before the next), so "+
		"log seq == snapshot version and the oracle history maps every version a follower may "+
		"publish; each follower read of connected(u,v) is checked against the oracle partition at "+
		"the version the follower reported — the replication correctness contract.", backend)
	t.Note("kill rows: the primary is SIGKILLed with a write in flight.  The recovery publish is " +
		"always lastRecordSeq+1, so the recovered version proves whether the in-flight group became " +
		"durable (v+2) or was lost whole (v+1) — either way the recovered partition must equal the " +
		"oracle's, lost batches are replayed, and every follower must reconnect and catch up.")
	t.Note("read-qps rows: closed-loop readers with a fixed think time and a fixed worker count " +
		"PER REPLICA, so aggregate throughput tracks the serving capacity replicas add; the " +
		"acceptance bar is >= 1.7x aggregate QPS at 2 followers vs 1.")
	t.Note("overall verdict: %s.", verdict(pass))

	body := t.JSON()
	if out != "" {
		if err := os.WriteFile(out, []byte(body), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
		return
	}
	fmt.Print(body)
}
