// Command graphgen emits a generated graph as an edge list on stdout (or to
// a file), in the "n m" + one-edge-per-line format the other tools read.
//
// Usage:
//
//	graphgen -gen expander:n=65536,d=8 > g.txt
//	graphgen -gen cliques:k=32,s=16,bridges=4 -out ring.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"parcc/internal/cli"
	"parcc/internal/graph"
)

func main() {
	var (
		genSpec = flag.String("gen", "", "generator spec (families: "+cli.Families()+")")
		out     = flag.String("out", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print n/m/degree stats to stderr")
	)
	flag.Parse()
	if *genSpec == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -gen SPEC is required; families:", cli.Families())
		os.Exit(1)
	}
	spec, err := cli.ParseSpec(*genSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	g, err := spec.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if *stats {
		deg := g.Degrees()
		var min, max int32
		if len(deg) > 0 {
			min, max = deg[0], deg[0]
			for _, d := range deg {
				if d < min {
					min = d
				}
				if d > max {
					max = d
				}
			}
		}
		fmt.Fprintf(os.Stderr, "n=%d m=%d degree min=%d max=%d\n", g.N, g.M(), min, max)
	}
}
