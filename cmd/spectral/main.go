// Command spectral estimates the quantities the paper's bounds depend on:
// the per-component spectral gap λ (Definition 2.2), the diameter d, and —
// for small graphs — the exact conductance φ (Definition 2.3).
//
// Usage:
//
//	spectral -gen hypercube:d=10
//	spectral -graph g.txt -conductance
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"parcc/internal/cli"
	"parcc/internal/spectral"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "edge-list file (- for stdin)")
		genSpec   = flag.String("gen", "", "generator spec (families: "+cli.Families()+")")
		perComp   = flag.Bool("per-component", false, "print λ per component")
		cond      = flag.Bool("conductance", false, "exact conductance (n ≤ 20 only)")
		exact     = flag.Bool("exact-diameter", false, "exact diameter (O(nm))")
	)
	flag.Parse()
	g, err := cli.LoadGraph(*graphFile, *genSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spectral:", err)
		os.Exit(1)
	}
	fmt.Printf("graph:     n=%d m=%d\n", g.N, g.M())
	lam := spectral.Gap(g, nil)
	fmt.Printf("lambda:    %.6g (min over components)\n", lam)
	if lam > 0 {
		fmt.Printf("log2(1/λ): %.2f\n", math.Log2(1/lam))
	}
	if *perComp {
		for i, l := range spectral.ComponentGaps(g, nil) {
			fmt.Printf("component %d: λ = %.6g\n", i, l)
		}
	}
	if *exact {
		fmt.Printf("diameter:  %d (exact)\n", spectral.DiameterExact(g))
	} else {
		fmt.Printf("diameter:  ≥ %d (double sweep)\n", spectral.DiameterApprox(g, 3))
	}
	if *cond {
		if g.N > 20 {
			fmt.Fprintln(os.Stderr, "spectral: -conductance enumerates subsets; n must be ≤ 20")
			os.Exit(1)
		}
		phi := spectral.Conductance(g)
		fmt.Printf("phi:       %.6g  (Cheeger: φ²/2=%.4g ≤ λ ≤ 2φ=%.4g)\n",
			phi, phi*phi/2, 2*phi)
	}
}
