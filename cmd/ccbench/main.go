// Command ccbench regenerates the experiment tables of EXPERIMENTS.md.
// Every table and figure series is derived from a quantitative claim of the
// paper (DESIGN.md §3 maps each experiment to its theorem/lemma).
//
// Usage:
//
//	ccbench                      # run everything at small scale, markdown
//	ccbench -run E1,E2 -scale full
//	ccbench -run SP -scale full -backend concurrent -procs 8   # T1/TP self-speedup
//	ccbench -run QPS -backend concurrent                       # one-shot vs Solver session
//	ccbench -run INC -format json -out results/                # incremental updates vs cold re-solve
//	ccbench -run SOLVE -scale full -format json                # raw-solve sweep: cas vs sample vs auto
//	ccbench -format csv -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"parcc/internal/bench"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		run     = flag.String("run", "all", "comma-separated experiment IDs (E1..E17) or 'all'")
		scale   = flag.String("scale", "small", "small | full")
		format  = flag.String("format", "md", "md | csv | json")
		outDir  = flag.String("out", "", "write one file per experiment into this directory")
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "goroutine pool size (0 = NumCPU)")
		backend = flag.String("backend", "", "execution backend: sequential | concurrent (default: legacy simulator)")
		procs   = flag.Int("procs", 0, "parallelism of the concurrent backend (0 = NumCPU); also the top procs of SP")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	switch strings.ToLower(*backend) {
	case "", "sequential", "concurrent":
	default:
		fmt.Fprintf(os.Stderr, "ccbench: unknown backend %q (want sequential or concurrent)\n", *backend)
		os.Exit(1)
	}
	cfg := bench.Config{Seed: *seed, Workers: *workers, Backend: *backend, Procs: *procs}
	switch strings.ToLower(*scale) {
	case "small":
		cfg.Scale = bench.Small
	case "full":
		cfg.Scale = bench.Full
	default:
		fmt.Fprintln(os.Stderr, "ccbench: -scale must be small or full")
		os.Exit(1)
	}

	var todo []bench.Experiment
	if strings.EqualFold(*run, "all") {
		todo = bench.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q\n", id)
				os.Exit(1)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		t0 := time.Now()
		tab := e.Run(cfg)
		var body string
		switch *format {
		case "md":
			body = tab.Markdown()
		case "csv":
			body = tab.CSV()
		case "json":
			body = tab.JSON()
		default:
			fmt.Fprintln(os.Stderr, "ccbench: -format must be md, csv, or json")
			os.Exit(1)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "ccbench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, fmt.Sprintf("%s.%s", strings.ToLower(e.ID), *format))
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "ccbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "%s: wrote %s (%v)\n", e.ID, path, time.Since(t0).Round(time.Millisecond))
			continue
		}
		fmt.Println(body)
		fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
}
