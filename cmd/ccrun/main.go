// Command ccrun runs a connectivity algorithm on a graph and reports the
// result together with the charged PRAM time and work.
//
// Usage:
//
//	ccrun -gen expander:n=65536,d=8 -algo fls
//	ccrun -graph edges.txt -algo sv -workers 4
//	graphgen -gen cycle:n=100000 | ccrun -graph - -algo ltz
//
// Algorithms: fls (the paper), fls-known-gap, ltz, sv, random-mate,
// label-prop, union-find, bfs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parcc"
	"parcc/internal/cli"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "edge-list file (- for stdin)")
		genSpec   = flag.String("gen", "", "generator spec, e.g. expander:n=4096,d=8 (families: "+cli.Families()+")")
		algo      = flag.String("algo", "fls", "algorithm: fls fls-known-gap ltz sv random-mate label-prop liu-tarjan union-find bfs")
		workers   = flag.Int("workers", 0, "goroutine pool size (0 = NumCPU)")
		seq       = flag.Bool("seq", false, "deterministic sequential simulation")
		seed      = flag.Uint64("seed", 1, "random seed")
		b         = flag.Int("b", 16, "degree target for fls-known-gap")
		verify    = flag.Bool("verify", false, "check the result against BFS")
		list      = flag.Bool("components", false, "print every component")
	)
	flag.Parse()

	g, err := cli.LoadGraph(*graphFile, *genSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrun:", err)
		os.Exit(1)
	}

	start := time.Now()
	res, err := parcc.ConnectedComponents(g, &parcc.Options{
		Algorithm:  parcc.Algorithm(*algo),
		Workers:    *workers,
		Sequential: *seq,
		Seed:       *seed,
		KnownGapB:  *b,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrun:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	fmt.Printf("graph:       n=%d m=%d\n", g.N, g.M())
	fmt.Printf("algorithm:   %s\n", res.Algorithm)
	fmt.Printf("components:  %d\n", res.NumComponents)
	fmt.Printf("pram time:   %d rounds\n", res.Steps)
	fmt.Printf("pram work:   %d ops (%.2f per edge+vertex)\n", res.Work,
		float64(res.Work)/float64(g.M()+g.N))
	fmt.Printf("wall clock:  %v\n", wall)
	if res.Phases > 0 {
		fmt.Printf("phases:      %d\n", res.Phases)
	}
	if *verify {
		if parcc.Verify(g, res.Labels) {
			fmt.Println("verify:      OK (matches BFS)")
		} else {
			fmt.Println("verify:      FAILED")
			os.Exit(2)
		}
	}
	if *list {
		for i, comp := range res.Components() {
			fmt.Printf("component %d (%d vertices): %v\n", i, len(comp), comp)
		}
	}
}
