// Command ccrun runs a connectivity algorithm on a graph and reports the
// result together with the charged PRAM time and work.
//
// Usage:
//
//	ccrun -gen expander:n=65536,d=8 -algo fls
//	ccrun -graph edges.txt -algo sv -workers 4
//	ccrun -gen expander:n=262144,d=8 -backend concurrent -procs 8 -speedup
//	graphgen -gen cycle:n=100000 | ccrun -graph - -algo ltz
//
// Algorithms: fls (the paper), fls-known-gap, ltz, sv, random-mate,
// label-prop, liu-tarjan, parallel-bfs, cas, union-find, bfs.
//
// Backends: sequential (deterministic single-threaded simulation) and
// concurrent (the internal/par goroutine pool); -speedup additionally runs
// the concurrent backend at procs=1 and reports T1/TP self-speedup.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parcc"
	"parcc/internal/cli"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "edge-list file (- for stdin)")
		genSpec   = flag.String("gen", "", "generator spec, e.g. expander:n=4096,d=8 (families: "+cli.Families()+")")
		algo      = flag.String("algo", "fls", "algorithm: fls fls-known-gap ltz sv random-mate label-prop liu-tarjan parallel-bfs cas union-find bfs sample frontier auto")
		backend   = flag.String("backend", "", "execution backend: sequential | concurrent (default: legacy simulator)")
		procs     = flag.Int("procs", 0, "parallelism of the concurrent backend (0 = NumCPU)")
		workers   = flag.Int("workers", 0, "goroutine pool size (0 = NumCPU)")
		seq       = flag.Bool("seq", false, "deterministic sequential simulation")
		seed      = flag.Uint64("seed", 1, "random seed")
		b         = flag.Int("b", 16, "degree target for fls-known-gap")
		speedup   = flag.Bool("speedup", false, "report T1/TP self-speedup of the concurrent backend (runs twice)")
		verify    = flag.Bool("verify", false, "check the result against BFS")
		list      = flag.Bool("components", false, "print every component")
		trace     = flag.Bool("trace", false, "record and print the solve-phase trace (wall time per phase, kernel counters)")
	)
	flag.Parse()

	g, err := cli.LoadGraph(*graphFile, *genSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrun:", err)
		os.Exit(1)
	}

	opt := parcc.Options{
		Algorithm:  parcc.Algorithm(*algo),
		Backend:    parcc.Backend(*backend),
		Procs:      *procs,
		Workers:    *workers,
		Sequential: *seq,
		Seed:       *seed,
		KnownGapB:  *b,
		Trace:      *trace,
	}
	if *speedup {
		opt.Backend = parcc.BackendConcurrent
	}

	start := time.Now()
	res, err := parcc.ConnectedComponents(g, &opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccrun:", err)
		os.Exit(1)
	}
	wall := time.Since(start)

	fmt.Printf("graph:       n=%d m=%d\n", g.N, g.M())
	fmt.Printf("algorithm:   %s\n", res.Algorithm)
	if res.Backend != "" {
		fmt.Printf("backend:     %s (procs=%d)\n", res.Backend, res.Procs)
	}
	fmt.Printf("components:  %d\n", res.NumComponents)
	fmt.Printf("pram time:   %d rounds\n", res.Steps)
	fmt.Printf("pram work:   %d ops (%.2f per edge+vertex)\n", res.Work,
		float64(res.Work)/float64(g.M()+g.N))
	fmt.Printf("wall clock:  %v\n", wall)
	if res.Phases > 0 {
		fmt.Printf("phases:      %d\n", res.Phases)
	}
	if *trace && res.Trace != nil {
		res.Trace.WriteText(os.Stdout)
	}

	if *speedup {
		p := res.Procs
		one := opt
		one.Procs = 1
		t0 := time.Now()
		if _, err := parcc.ConnectedComponents(g, &one); err != nil {
			fmt.Fprintln(os.Stderr, "ccrun:", err)
			os.Exit(1)
		}
		t1 := time.Since(t0)
		fmt.Printf("T1 (procs=1): %v\n", t1)
		fmt.Printf("TP (procs=%d): %v\n", p, wall)
		fmt.Printf("self-speedup: %.2fx\n", float64(t1)/float64(wall))
	}

	if *verify {
		if parcc.Verify(g, res.Labels) {
			fmt.Println("verify:      OK (matches BFS)")
		} else {
			fmt.Println("verify:      FAILED")
			os.Exit(2)
		}
	}
	if *list {
		for i, comp := range res.Components() {
			fmt.Printf("component %d (%d vertices): %v\n", i, len(comp), comp)
		}
	}
}
