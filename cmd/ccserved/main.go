// Command ccserved serves connectivity as a service: a multi-graph query
// engine (internal/service) over HTTP/JSON.  Each named graph is a live
// incremental parcc.Solver session behind a single-writer/many-reader
// discipline — point queries answer lock-free from an immutable label
// snapshot, mutations are coalesced into batches on a per-graph writer.
//
// docs/OPERATIONS.md is the deployment and tuning guide, including the
// full endpoint reference.  Quick start:
//
//	ccserved -addr :8080 -backend concurrent &
//	curl -X PUT localhost:8080/graphs/demo -d '{"n":6,"edges":[[0,1],[1,2]]}'
//	curl -X POST localhost:8080/graphs/demo/edges -d '{"edges":[[2,3]]}'
//	curl 'localhost:8080/graphs/demo/connected?u=0&v=3'
//
// Graphs can be preloaded from generator specs at startup:
//
//	ccserved -preload web=expander:n=65536,d=8 -preload mesh=grid:r=256,c=256
//
// Observability: GET /metrics exposes the engine's Prometheus counters and
// the snapshot-publish latency histogram; GET /graphs/{name}/trace returns
// the session's last solve-phase trace (-trace, on by default); -pprof
// mounts net/http/pprof under /debug/pprof/ (off by default).  GET /healthz
// is pure liveness (200 while the process serves); GET /readyz is
// readiness — 503 while recovering from the WAL or, on a follower, while
// replication lags beyond -max-lag.
//
// Durability: -wal-dir enables a per-graph write-ahead log — every applied
// mutation group is logged and (by default) fsync'd before its callers are
// released, and the logs are replayed on startup, reconstructing every
// graph at its last durable state (-fsync=false trades that guarantee for
// append latency; see docs/OPERATIONS.md §durability).  On clean shutdown
// each log is compacted to a checkpoint of the live state.
//
// Replication: -follow http://primary:8080 runs this process as a
// read-only follower — it discovers the primary's graphs, tails each
// graph's WAL stream (GET /graphs/{name}/wal), re-applies committed groups
// through real sessions, and serves every read endpoint at exactly the
// versions the primary's log assigned.  Writes are rejected with 409 and
// the primary's URL; -max-lag bounds staleness (see docs/OPERATIONS.md
// §replication).
//
// On SIGINT/SIGTERM the server drains gracefully, in dependency order:
// in-flight HTTP requests finish, replication stops (follower), queued
// mutation batches are applied (each group logged and fsync'd as it
// lands), the WAL handles are checkpointed and closed, then every session
// is released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parcc"
	"parcc/internal/cli"
	"parcc/internal/repl"
	"parcc/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		backend  = flag.String("backend", "", "solver backend per session: sequential | concurrent (default: legacy simulator)")
		procs    = flag.Int("procs", 0, "parallelism of each session's concurrent backend (0 = NumCPU)")
		seed     = flag.Uint64("seed", 1, "solver seed")
		trust    = flag.Bool("trust", true, "set Options.TrustGraph (safe here: the engine owns every live graph)")
		window   = flag.Duration("window", 0, "batch-coalesce window per shard writer (0 = coalesce only what is queued)")
		maxBatch = flag.Int("maxbatch", 1<<16, "max edges combined into one coalesced apply")
		queue    = flag.Int("queue", 256, "per-shard mutation queue depth (back pressure beyond it)")
		drain    = flag.Duration("drain", 15*time.Second, "graceful shutdown timeout for in-flight HTTP requests")
		trace    = flag.Bool("trace", true, "record per-operation solve traces (GET /graphs/{name}/trace)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (trusted networks only)")
		noForest = flag.Bool("no-forest", false, "disable spanning-forest deletion handling; every deletion takes the scoped re-solve (debugging / A-B measurement)")
		walDir   = flag.String("wal-dir", "", "write-ahead-log directory: every applied mutation group is logged there before callers are released, and the logs are replayed on startup (empty = durability off)")
		fsync    = flag.Bool("fsync", true, "fsync the WAL after every coalesced group; -fsync=false trades crash durability for append latency")

		// Replication.
		follow = flag.String("follow", "", "run as a read-only follower of the primary at this base URL (e.g. http://primary:8080); writes are rejected with 409")
		maxLag = flag.Duration("max-lag", 5*time.Second, "follower bounded staleness: /readyz reports 503 once replication lags the primary's head by more than this")

		// HTTP server hardening.  The WAL stream endpoint exempts itself
		// from the write timeout via a per-request deadline.
		readHeaderTO = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout: slow-loris guard on request headers")
		readTO       = flag.Duration("read-timeout", 2*time.Minute, "http.Server ReadTimeout: full-request read deadline (covers large mutation bodies)")
		writeTO      = flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout: response write deadline (the replication stream is exempt)")
		idleTO       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout: keep-alive connection reap")
		maxBody      = flag.Int64("max-body", 64<<20, "max mutation request body bytes (413 beyond it; <0 disables the cap)")
	)
	var preloads []string
	flag.Func("preload", "name=genspec graph to create at startup (repeatable), e.g. web=expander:n=65536,d=8", func(s string) error {
		preloads = append(preloads, s)
		return nil
	})
	flag.Parse()

	switch strings.ToLower(*backend) {
	case "", "sequential", "concurrent":
	default:
		fmt.Fprintf(os.Stderr, "ccserved: unknown backend %q (want sequential or concurrent)\n", *backend)
		os.Exit(1)
	}
	if *follow != "" {
		// A follower's state comes from the primary's logs, not its own:
		// local durability and preloads contradict that.
		if *walDir != "" {
			fmt.Fprintln(os.Stderr, "ccserved: -follow and -wal-dir are mutually exclusive (the primary's WAL is the follower's source of truth)")
			os.Exit(1)
		}
		if len(preloads) > 0 {
			fmt.Fprintln(os.Stderr, "ccserved: -follow and -preload are mutually exclusive (a follower's graphs come from the primary)")
			os.Exit(1)
		}
	}
	solverOpt := &parcc.Options{
		Backend:    parcc.Backend(strings.ToLower(*backend)),
		Procs:      *procs,
		Seed:       *seed,
		TrustGraph: *trust,
		Trace:      *trace,
		NoForest:   *noForest,
	}
	eng := service.New(service.Options{
		Solver:         solverOpt,
		CoalesceWindow: *window,
		MaxBatchEdges:  *maxBatch,
		QueueDepth:     *queue,
		WALDir:         *walDir,
		NoFsync:        !*fsync,
		ReadOnly:       *follow != "",
		Primary:        *follow,
	})

	if *walDir != "" {
		stats, err := eng.Recover()
		if err != nil {
			log.Fatalf("ccserved: recover: %v", err)
		}
		if stats.Graphs > 0 {
			log.Printf("recovered %d graph(s) from %s: %d records, %d edges in %v (%.0f edges/s)",
				stats.Graphs, *walDir, stats.Records, stats.Edges, stats.Elapsed.Round(time.Millisecond),
				float64(stats.Edges)/stats.Elapsed.Seconds())
		}
	}

	for _, p := range preloads {
		name, spec, ok := strings.Cut(p, "=")
		if !ok || name == "" {
			log.Fatalf("ccserved: -preload wants name=genspec, got %q", p)
		}
		g, err := cli.LoadGraph("", spec)
		if err != nil {
			log.Fatalf("ccserved: preload %q: %v", name, err)
		}
		if err := eng.Create(name, g); err != nil {
			if errors.Is(err, service.ErrGraphExists) {
				// Already reconstructed from its WAL — the recovered state
				// is newer than the preload spec, keep it.
				log.Printf("preload %q: recovered from WAL, keeping the replayed state", name)
				continue
			}
			log.Fatalf("ccserved: preload %q: %v", name, err)
		}
		log.Printf("preloaded %q: n=%d m=%d", name, g.N, g.M())
	}

	var follower *repl.Follower
	handlerOpts := service.HandlerOptions{Pprof: *pprofOn, MaxBodyBytes: *maxBody}
	if *follow != "" {
		var err error
		follower, err = repl.New(repl.Options{
			Primary: *follow,
			Engine:  eng,
			Solver:  solverOpt,
			MaxLag:  *maxLag,
		})
		if err != nil {
			log.Fatalf("ccserved: follower: %v", err)
		}
		follower.RegisterMetrics(eng.Registry())
		handlerOpts.Readiness = follower.Ready
		follower.Start()
		log.Printf("following primary %s (max lag %v); writes are rejected with 409", *follow, *maxLag)
	}

	handler := service.NewHandlerOpts(eng, handlerOpts)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTO,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
	}
	go func() {
		log.Printf("ccserved listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("ccserved: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	log.Printf("ccserved: %v — draining (timeout %v)", sig, *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("ccserved: forced shutdown: %v", err)
	}
	if follower != nil {
		follower.Stop() // stop tailing before the engine releases sessions
	}
	eng.Close() // applies+logs queued batches, checkpoints+closes WALs, releases sessions
	log.Printf("ccserved: drained")
}
