package parcc

import (
	"math/rand"
	"slices"
	"testing"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// pathBatch builds a path over k+1 consecutive vertices starting at lo —
// a write group whose touched set lives in a known page range.
func pathBatch(lo, k int) []Edge {
	batch := make([]Edge, k)
	for i := range batch {
		batch[i] = Edge{U: int32(lo + i), V: int32(lo + i + 1)}
	}
	return batch
}

// TestPublishCostIsDeltaBounded pins the O(⌈k/pageSize⌉) publish claim
// structurally: a k-vertex write group confined to one page republishes by
// cloning O(1) pages — not O(n/pageSize) — and an untouched session
// republishes with zero clones.  These are exact-count pins, not timings,
// so they hold on any machine.
func TestPublishCostIsDeltaBounded(t *testing.T) {
	const n = 4 * pageSize // 4096: big enough that full-vs-delta is visible
	s, err := NewSolver(&Options{Backend: BackendSequential, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Attach(&Graph{N: n}); err != nil {
		t.Fatal(err)
	}

	// First publish builds the mirror from scratch: a full flatten.
	sn1, err := s.PublishSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !sn1.PublishedFull() {
		t.Fatal("first publish must be a full build")
	}

	// A 512-edge path inside page 0 touches one label page and one size
	// page: exactly 2 clones, regardless of n.
	if err := s.AddEdges(pathBatch(0, 512)); err != nil {
		t.Fatal(err)
	}
	sn2, err := s.PublishSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if sn2.PublishedFull() {
		t.Fatal("second publish must be a delta")
	}
	if c := sn2.ClonedPages(); c < 1 || c > 2 {
		t.Fatalf("single-page write group cloned %d pages, want 1..2", c)
	}

	// Same shape in the last page: the cost tracks the touched pages, not
	// their position or the pages dirtied by earlier publishes.
	if err := s.AddEdges(pathBatch(3*pageSize, 512)); err != nil {
		t.Fatal(err)
	}
	sn3, err := s.PublishSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if c := sn3.ClonedPages(); c < 1 || c > 2 {
		t.Fatalf("far-page write group cloned %d pages, want 1..2", c)
	}

	// A group straddling a page boundary clones both sides — still
	// ⌈k/pageSize⌉-bounded, still far below numPages(n).
	if err := s.AddEdges(pathBatch(pageSize+pageSize/2, pageSize)); err != nil {
		t.Fatal(err)
	}
	sn4, err := s.PublishSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if c := sn4.ClonedPages(); c < 2 || c > 4 {
		t.Fatalf("two-page write group cloned %d pages, want 2..4", c)
	}

	// Published snapshots are immutable: the clones that served sn4 must
	// not have touched sn2's view of page 1..2.
	for v := pageSize + pageSize/2; v < 2*pageSize; v++ {
		if sn2.ComponentOf(v) != int32(v) {
			t.Fatalf("sn2 label of %d mutated to %d after later publishes", v, sn2.ComponentOf(v))
		}
	}

	// Untouched republish: no pages clone and the steady-state allocation
	// budget stays flat (snapshot header + two page-table copies — the
	// per-page payloads are all shared).
	snPrev, err := s.PublishSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if c := snPrev.ClonedPages(); c != 0 {
		t.Fatalf("untouched publish cloned %d pages, want 0", c)
	}
	allocs := testing.AllocsPerRun(20, func() {
		sn, err := s.PublishSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if sn.ClonedPages() != 0 {
			t.Fatal("untouched publish cloned a page")
		}
	})
	if allocs > 8 {
		t.Fatalf("untouched publish allocates %v objects, want <= 8", allocs)
	}
	// Reads off the published view stay allocation-free.
	view := s.ReadView()
	if a := testing.AllocsPerRun(100, func() {
		_ = view.ComponentOf(17)
		_ = view.ComponentSize(3*pageSize + 100)
		_ = view.Connected(0, 511)
	}); a != 0 {
		t.Fatalf("point reads allocate %v objects, want 0", a)
	}
}

// TestSnapshotEquivalenceRandomized is the regression referee for the COW
// mirror: across a long randomized add/remove stream — forest and
// NoForest deletion paths, both backends — every published version's
// labels must be byte-identical to an eager flatten of the same parent
// array, with matching counts and sizes.  SamePartition would hide a
// mirror that drifted to a different-but-isomorphic labeling; byte
// equality does not.
func TestSnapshotEquivalenceRandomized(t *testing.T) {
	const (
		n       = 2500
		batches = 140
	)
	for _, be := range []Backend{BackendSequential, BackendConcurrent} {
		for _, noForest := range []bool{false, true} {
			name := string(be)
			if noForest {
				name += "/no-forest"
			}
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(len(name)) * 7919))
				g0 := gen.GNM(n, 3*n/2, 5)
				s, err := NewSolver(&Options{Backend: be, Procs: 3, Seed: 7, NoForest: noForest})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				if err := s.Attach(g0.Clone()); err != nil {
					t.Fatal(err)
				}
				oracle := baseline.NewIncOracle(g0)
				res := &Result{}
				for b := 0; b < batches; b++ {
					live := oracle.Graph()
					if rng.Intn(10) < 6 || live.M() == 0 {
						k := 1 + rng.Intn(12)
						batch := make([]Edge, k)
						for i := range batch {
							batch[i] = Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
						}
						if err := s.AddEdges(batch); err != nil {
							t.Fatalf("batch %d: AddEdges: %v", b, err)
						}
						if err := oracle.AddEdges(batch); err != nil {
							t.Fatal(err)
						}
					} else {
						k := 1 + rng.Intn(8)
						if k > live.M() {
							k = live.M()
						}
						idx := rng.Perm(live.M())[:k]
						batch := make([]Edge, 0, k)
						for _, i := range idx {
							batch = append(batch, live.Edges[i])
						}
						if err := s.RemoveEdges(batch); err != nil {
							t.Fatalf("batch %d: RemoveEdges: %v", b, err)
						}
						if err := oracle.RemoveEdges(batch); err != nil {
							t.Fatal(err)
						}
					}
					sn, err := s.PublishSnapshot()
					if err != nil {
						t.Fatalf("batch %d: publish: %v", b, err)
					}
					if err := s.ComponentsInto(res); err != nil {
						t.Fatalf("batch %d: flatten: %v", b, err)
					}
					if !slices.Equal(sn.Labels(), res.Labels) {
						t.Fatalf("batch %d: COW labels diverge from eager flatten", b)
					}
					if sn.NumComponents() != res.NumComponents {
						t.Fatalf("batch %d: count %d, want %d", b, sn.NumComponents(), res.NumComponents)
					}
					want := oracle.Labels()
					if !graph.SamePartition(want, res.Labels) {
						t.Fatalf("batch %d: partition differs from oracle", b)
					}
					counts := map[int32]int{}
					for _, l := range res.Labels {
						counts[l]++
					}
					for v := 0; v < n; v += 97 {
						if got, wantC := sn.ComponentSize(v), counts[res.Labels[v]]; got != wantC {
							t.Fatalf("batch %d: ComponentSize(%d) = %d, want %d", b, v, got, wantC)
						}
					}
				}
			})
		}
	}
}
