package parcc

import (
	"sync"
	"testing"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

var solverAlgos = []Algorithm{
	FLS, FLSKnownGap, LTZ, SV, RandomMate, LabelProp, LT, ParBFS,
	CASUnite, UnionFind, BFS,
}

func solverTestGraph() *Graph {
	return gen.Union(
		gen.RandomRegular(600, 6, 1),
		gen.Grid(20, 25),
		gen.Path(200),
		graph.New(7),
	)
}

// TestSolverMatchesConnectedComponents is the session-equivalence contract:
// on the deterministic sequential backend, Solver.Solve — first call, and a
// second call reusing the machine, arena, and plan — must produce labels,
// steps, and work identical to the one-shot ConnectedComponents path, for
// every algorithm.
func TestSolverMatchesConnectedComponents(t *testing.T) {
	g := solverTestGraph()
	for _, algo := range solverAlgos {
		opts := &Options{Algorithm: algo, Backend: BackendSequential, Seed: 11}
		want, err := ConnectedComponents(g, opts)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		s, err := NewSolver(opts)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for rep := 0; rep < 3; rep++ {
			got, err := s.Solve(g)
			if err != nil {
				t.Fatalf("%s rep %d: %v", algo, rep, err)
			}
			if got.Steps != want.Steps || got.Work != want.Work {
				t.Errorf("%s rep %d: steps/work = (%d,%d), one-shot = (%d,%d)",
					algo, rep, got.Steps, got.Work, want.Steps, want.Work)
			}
			if got.NumComponents != want.NumComponents {
				t.Errorf("%s rep %d: components %d vs %d", algo, rep,
					got.NumComponents, want.NumComponents)
			}
			for v := range want.Labels {
				if got.Labels[v] != want.Labels[v] {
					t.Errorf("%s rep %d: label[%d] = %d, want %d",
						algo, rep, v, got.Labels[v], want.Labels[v])
					break
				}
			}
		}
		s.Close()
	}
}

// TestSolverConcurrentBackendRepeats: under real goroutines the ARBITRARY
// write winners may steer racy algorithms differently per run, so the
// contract is partition equality (checked against ground truth) on every
// repeat — plus intact model accounting.
func TestSolverConcurrentBackendRepeats(t *testing.T) {
	g := solverTestGraph()
	truth, _ := ConnectedComponents(g, &Options{Algorithm: BFS})
	for _, algo := range solverAlgos {
		s, err := NewSolver(&Options{Algorithm: algo, Backend: BackendConcurrent, Procs: 3, Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for rep := 0; rep < 2; rep++ {
			got, err := s.Solve(g)
			if err != nil {
				t.Fatalf("%s rep %d: %v", algo, rep, err)
			}
			if !graph.SamePartition(truth.Labels, got.Labels) {
				t.Errorf("%s rep %d: wrong partition", algo, rep)
			}
			// The sequential baselines charge no PRAM cost by design.
			if algo != UnionFind && algo != BFS && (got.Steps <= 0 || got.Work <= 0) {
				t.Errorf("%s rep %d: lost accounting (steps=%d work=%d)",
					algo, rep, got.Steps, got.Work)
			}
		}
		s.Close()
	}
}

// TestSolverSecondSolveAllocsFar is the allocation-behavior satellite: the
// steady state of SolveInto on a warm solver must allocate far less than
// the one-shot path, on both backends.  The serving algorithms (bfs,
// union-find) must clear the 10× bar of the repeated-solve experiment; the
// pool-and-arena sharing still has to show up clearly on the others.
func TestSolverSecondSolveAllocsFar(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow-ish")
	}
	g := solverTestGraph()
	measure := func(opts *Options) (cold, warm float64) {
		cold = testing.AllocsPerRun(3, func() {
			if _, err := ConnectedComponents(g, opts); err != nil {
				t.Fatal(err)
			}
		})
		s, err := NewSolver(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		res := &Result{}
		for i := 0; i < 2; i++ { // warm the arena and plan cache
			if err := s.SolveInto(g, res); err != nil {
				t.Fatal(err)
			}
		}
		warm = testing.AllocsPerRun(5, func() {
			if err := s.SolveInto(g, res); err != nil {
				t.Fatal(err)
			}
		})
		return cold, warm
	}
	for _, be := range []Backend{BackendSequential, BackendConcurrent} {
		for _, tc := range []struct {
			algo   Algorithm
			factor float64 // required cold/warm reduction
		}{
			{UnionFind, 10},
			{BFS, 8},
			{CASUnite, 2},
			{LabelProp, 2},
		} {
			cold, warm := measure(&Options{Algorithm: tc.algo, Backend: be, Procs: 2, Seed: 3})
			if warm*tc.factor > cold {
				t.Errorf("%s/%s: warm solve allocs %.0f not ≥%.0fx below one-shot %.0f",
					be, tc.algo, warm, tc.factor, cold)
			}
		}
	}
}

// TestSolveIntoReusesLabelBuffer: the zero-alloc serving path must keep
// writing into the same backing array once it has the capacity.
func TestSolveIntoReusesLabelBuffer(t *testing.T) {
	g := gen.GNM(300, 500, 2)
	s, err := NewSolver(&Options{Algorithm: CASUnite})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res := &Result{}
	if err := s.SolveInto(g, res); err != nil {
		t.Fatal(err)
	}
	first := &res.Labels[0]
	if err := s.SolveInto(g, res); err != nil {
		t.Fatal(err)
	}
	if &res.Labels[0] != first {
		t.Error("SolveInto reallocated the label buffer despite sufficient capacity")
	}
}

// TestSolverPlanCache: the session caches the CSR plan per graph and
// rebuilds it when the graph is mutated or swapped.
func TestSolverPlanCache(t *testing.T) {
	g1 := gen.Grid(10, 10)
	g2 := gen.Cycle(50)
	s, err := NewSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p1 := s.Plan(g1)
	if s.Plan(g1) != p1 {
		t.Error("plan for the same graph must be cached")
	}
	p2 := s.Plan(g2)
	if p2 == p1 {
		t.Error("different graph must get a fresh plan")
	}
	g2.AddEdge(0, 25)
	p3 := s.Plan(g2)
	if p3 == p2 {
		t.Error("mutated graph must invalidate the cached plan")
	}
	// In-place mutation (same edge count) must invalidate too: a warm
	// solver serving from a stale adjacency would return wrong labels.
	gm := graph.FromPairs(4, [][2]int{{0, 1}, {2, 3}})
	sm, err := NewSolver(&Options{Algorithm: BFS})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	if _, err := sm.Solve(gm); err != nil {
		t.Fatal(err)
	}
	gm.Edges[1] = graph.Edge{U: 1, V: 2}
	res, err := sm.Solve(gm)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(gm, res.Labels) {
		t.Error("warm solver served labels from a stale CSR after in-place mutation")
	}
	if got := s.SpectralGap(g1); got <= 0 {
		t.Errorf("session spectral gap on a grid = %g, want > 0", got)
	}
}

// TestSolverSharedAcrossGoroutines: Solve serializes internally, so a
// shared solver must be race-free and correct under concurrent callers.
func TestSolverSharedAcrossGoroutines(t *testing.T) {
	g := gen.GNM(400, 700, 5)
	truth, _ := ConnectedComponents(g, &Options{Algorithm: BFS})
	s, err := NewSolver(&Options{Algorithm: LT})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Solve(g)
			if err != nil {
				errs <- err
				return
			}
			if !graph.SamePartition(truth.Labels, res.Labels) {
				errs <- errWrongPartition
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errWrongPartition = &partitionError{}

type partitionError struct{}

func (*partitionError) Error() string { return "wrong partition from shared solver" }

// TestSolverClosed: a closed solver refuses work.
func TestSolverClosed(t *testing.T) {
	s, err := NewSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // double-close is a no-op
	if _, err := s.Solve(gen.Path(4)); err == nil {
		t.Fatal("closed solver must error")
	}
}

// TestSeedZeroReachable is the Options.Seed satellite: the zero value of
// Seed selects the default (identical to Seed: 1), while ZeroSeed makes
// the literal seed 0 reachable and reproducible.
func TestSeedZeroReachable(t *testing.T) {
	g := gen.GNM(200, 350, 4)
	run := func(o *Options) *Result {
		t.Helper()
		o.Algorithm = RandomMate
		o.Backend = BackendSequential
		res, err := ConnectedComponents(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if !Verify(g, res.Labels) {
			t.Fatal("wrong labels")
		}
		return res
	}
	def := run(&Options{})
	one := run(&Options{Seed: 1})
	if def.Steps != one.Steps || def.Work != one.Work {
		t.Errorf("unset seed must equal the documented default 1: (%d,%d) vs (%d,%d)",
			def.Steps, def.Work, one.Steps, one.Work)
	}
	z1 := run(&Options{ZeroSeed: true})
	z2 := run(&Options{ZeroSeed: true})
	if z1.Steps != z2.Steps || z1.Work != z2.Work {
		t.Error("explicit seed 0 must be reproducible")
	}
	// Seed wins over ZeroSeed when both are set.
	s5a := run(&Options{Seed: 5, ZeroSeed: true})
	s5b := run(&Options{Seed: 5})
	if s5a.Steps != s5b.Steps || s5a.Work != s5b.Work {
		t.Error("ZeroSeed must be ignored when Seed != 0")
	}
}
