package core

import (
	"testing"

	"parcc/internal/graph/gen"
	"parcc/internal/pram"
)

func TestDefaultParamsSane(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1 << 20} {
		p := Default(n)
		if p.B0 < 4 {
			t.Errorf("n=%d: B0=%d too small", n, p.B0)
		}
		if p.BGrowth <= 1 {
			t.Errorf("n=%d: BGrowth=%f must exceed 1", n, p.BGrowth)
		}
		if p.MaxPhases < 1 {
			t.Errorf("n=%d: MaxPhases=%d", n, p.MaxPhases)
		}
		if p.SampleP64 == 0 {
			t.Errorf("n=%d: zero sampling probability", n)
		}
	}
}

func TestPaperParamsStructure(t *testing.T) {
	p := Paper(1 << 16)
	if p.BGrowth != 1.1 {
		t.Errorf("paper growth = %f, want 1.1", p.BGrowth)
	}
	if p.FilterGrowth != 1.1 {
		t.Errorf("paper filter growth = %f", p.FilterGrowth)
	}
	if p.B0 > 4096 {
		t.Errorf("paper B0 must be clamped, got %d", p.B0)
	}
	d := Default(1 << 16)
	if p.MaxPhases < d.MaxPhases {
		t.Error("paper runs at least as many phases")
	}
}

func TestBScheduleCaps(t *testing.T) {
	p := Default(1 << 16)
	if b := p.bSchedule(1000); b != 1<<20 {
		t.Errorf("runaway schedule should cap at 2^20, got %d", b)
	}
	p.B0 = 0
	if b := p.bSchedule(0); b < 4 {
		t.Errorf("schedule floor violated: %d", b)
	}
}

func TestFilterRoundsGrowAndCap(t *testing.T) {
	p := Default(1 << 12)
	r0 := filterRounds(p, 0, 1<<12)
	r3 := filterRounds(p, 3, 1<<12)
	if r3 <= r0 {
		t.Errorf("filter rounds must grow per phase: %d -> %d", r0, r3)
	}
	if r := filterRounds(p, 1000, 1<<12); r > 4096 {
		t.Errorf("filter rounds cap violated: %d", r)
	}
	p.FilterRoundsBase = 0
	if r := filterRounds(p, 0, 16); r < 1 {
		t.Errorf("filter rounds floor violated: %d", r)
	}
}

func TestSolveRoundsCDefaultInInterweave(t *testing.T) {
	// SolveRoundsC ≤ 0 must fall back to a positive default rather than an
	// unlimited in-phase solve.
	g := gen.Cycle(256)
	p := Default(g.N)
	p.SolveRoundsC = 0
	m := pram.New(pram.Seed(1))
	res := Connectivity(m, g, p)
	if res.NumComponents != 1 {
		t.Fatal("wrong result with zero SolveRoundsC")
	}
}
