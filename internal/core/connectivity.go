package core

import (
	"fmt"
	"time"

	"parcc/internal/graph"
	"parcc/internal/labeled"
	"parcc/internal/ltz"
	"parcc/internal/obs"
	"parcc/internal/pram"
	"parcc/internal/prim"
	"parcc/internal/solve"
	"parcc/internal/stage1"
	"parcc/internal/stage2"
	"parcc/internal/stage3"
)

// Result is the outcome of a connectivity run.
type Result struct {
	Labels        []int32       // component label (root) per vertex
	NumComponents int           // number of distinct labels
	Steps         int64         // charged PRAM time
	Work          int64         // charged PRAM work
	Elapsed       time.Duration // wall-clock
	Phases        int           // INTERWEAVE phases executed (0 for known-λ)
	PhaseRounds   []int64       // charged steps per phase
	FinalB        int           // gap guess of the terminating phase
	UsedRemain    bool          // whether REMAIN performed the completion
	UsedBackstop  bool          // whether the post-loop backstop ran
	Breakdown     []pram.Mark   // per-stage cost attribution
}

// Connectivity runs CONNECTIVITY(G) (§7.1): the full Theorem-1 algorithm
// with unknown spectral gap.  The returned labeling is always exact — the
// REMAIN pass (and, under clamped practical parameters, a final backstop of
// the same kind) completes any component the sampled subgraphs missed.
func Connectivity(m *pram.Machine, g *graph.Graph, p Params) *Result {
	return ConnectivityOn(solve.New(m), g, p, nil)
}

// ConnectivityOn is Connectivity against a solve context: the forest, the
// Stage-1 scratch, the auxiliary array, and the per-phase working sets are
// borrowed from the context's arena, and the labels are written into dst
// when it has the capacity.  One-shot calls (nil arena) behave exactly
// like the original allocation pattern.
func ConnectivityOn(cx *solve.Ctx, g *graph.Graph, p Params, dst []int32) *Result {
	m := cx.M
	start := time.Now()
	res := &Result{}
	f := labeled.NewOn(cx.A, g.N)
	m.ResetMarks()
	span := cx.Rec.Begin()

	// Step 1 is New's initialization (v.p = v).
	// Step 2: REDUCE — contract to n/poly(log n) vertices (skipped only by
	// the E12 ablation profile).
	s1 := stage1.NewRunnerOn(cx, f, p.Stage1)
	var red stage1.Result
	if p.SkipStage1 {
		red = stage1.Result{Edges: cx.CopyEdges(g.Edges)}
		red.Roots = make([]int32, g.N)
		m.Iota32(red.Roots)
	} else {
		red = s1.Reduce(g)
	}
	m.SetMark("stage1-reduce")
	span = cx.Rec.Lap(obs.PhaseReduce, span)
	Gp := red.Edges // E(G′), kept un-ALTERed for the rest of the run (§7.4)
	roots := red.Roots

	// Auxiliary array over E(G′) (§7.4.1).
	aux := stage2.BuildAuxOn(cx, g.N, Gp)

	// Step 3: pre-sample H₁ and H₂ with independent randomness.
	H1 := cx.GrabEdgesCap(len(Gp)/4 + 4)
	h1mask := make([]bool, len(Gp))
	H2 := cx.GrabEdgesCap(len(Gp)/4 + 4)
	m.Contract(1, int64(2*len(Gp)), func() {
		for i, e := range Gp {
			if pram.SplitMix64(p.Seed^0x11^uint64(i)*0x9e3779b97f4a7c15) < p.SampleP64 {
				H1 = append(H1, e)
				h1mask[i] = true
			}
			if pram.SplitMix64(p.Seed^0x22^uint64(i)*0xbf58476d1ce4e5b9) < p.SampleP64 {
				H2 = append(H2, e)
			}
		}
	})

	m.SetMark("presample")
	span = cx.Rec.Lap(obs.PhasePresample, span)

	// Step 4: E_filter = copy of E(G′).
	Efilter := cx.CopyEdges(Gp)

	// Step 5: the phase loop.
	done := false
	for i := 0; i < p.MaxPhases; i++ {
		stepsBefore := m.Steps()
		var finished bool
		Efilter, H1, finished = interweave(cx, f, s1, phaseEnv{
			p: p, phase: i, roots: roots, aux: aux,
			Gp: Gp, h1mask: h1mask,
		}, Efilter, H1, H2)
		res.Phases = i + 1
		res.PhaseRounds = append(res.PhaseRounds, m.Steps()-stepsBefore)
		res.FinalB = p.bSchedule(i)
		m.SetMark(fmt.Sprintf("phase-%d", i))
		span = cx.Rec.Lap(obs.PhaseInterweave, span)
		if finished {
			done = true
			res.UsedRemain = true
			break
		}
		if len(Efilter) == 0 {
			break
		}
	}

	// Step 6 + backstop: flatten, then complete any unfinished component
	// from the unsampled edges (same mechanism as REMAIN; a no-op when the
	// phase loop finished the work).
	labeled.FlattenAll(m, f)
	if !done {
		res.UsedBackstop = backstop(cx, f, Gp, p)
		labeled.FlattenAll(m, f)
	}
	m.SetMark("finish")
	span = cx.Rec.Lap(obs.PhaseFinish, span)

	res.Labels = labeled.LabelsOnInto(m.Exec(), f, dst)
	res.NumComponents = solve.NumLabels(cx, res.Labels, g.N)
	cx.Rec.End(obs.PhaseCount, span)
	cx.Rec.Add(obs.CtrFLSPhases, int64(res.Phases))
	res.Steps = m.Steps()
	res.Work = m.Work()
	res.Elapsed = time.Since(start)
	res.Breakdown = m.Marks()
	s1.Free()
	aux.Free(cx)
	cx.ReleaseEdges(Gp)
	cx.ReleaseEdges(H2)
	cx.ReleaseEdges(H1)
	cx.ReleaseEdges(Efilter)
	f.Free()
	return res
}

// ConnectivityScoped is the incremental path's scoped re-solve: the full
// CONNECTIVITY pipeline run on the subgraph induced by the components a
// deletion batch touched, with the parameter profile re-derived for the
// subproblem size (the phase schedule, sampling rates, and round budgets
// are all functions of n, so a dirty region of a few thousand vertices
// must not run with the budgets of the million-vertex host graph).  The
// labels written into dst are in sub-vertex space; par.SpliceLabels maps
// them back into the live forest.  Charged exactly like ConnectivityOn —
// O(m'+n') work on the dirty subgraph, which is the whole point of scoping.
func ConnectivityScoped(cx *solve.Ctx, sub *graph.Graph, seed uint64, dst []int32) *Result {
	p := Default(sub.N)
	p.Seed ^= seed
	return ConnectivityOn(cx, sub, p, dst)
}

// phaseEnv carries the per-run immutable context into interweave.
type phaseEnv struct {
	p      Params
	phase  int
	roots  []int32 // V(G′): all roots at the end of Stage 1
	aux    *stage2.Aux
	Gp     []graph.Edge // E(G′), original (never altered)
	h1mask []bool
}

// interweave runs INTERWEAVE(G′,H₁,H₂,E_filter,i) (§7.1).  It returns the
// updated E_filter and H₁ and whether the phase finished the computation
// (Step 4 fired and REMAIN completed the components).
func interweave(cx *solve.Ctx, f *labeled.Forest, s1 *stage1.Runner, env phaseEnv, Efilter, H1, H2 []graph.Edge) (ef, h1 []graph.Edge, finished bool) {
	m := cx.M
	p := env.p

	// Step 1: b for this phase.
	b := p.bSchedule(env.phase)
	s2p := stage2.DefaultParams(f.Len(), b)
	s2p.LTZ = p.LTZ
	s2p.Seed = p.Seed ^ uint64(env.phase)<<32
	// Each stage within a phase is limited to O(log b) time (§3.4); a
	// too-small gap guess must fail fast and fall through to the next
	// phase rather than solve the instance outright.
	c := p.SolveRoundsC
	if c <= 0 {
		c = 2
	}
	s2p.SolveRounds = c * int(prim.Log2Ceil(b+1))
	if p.DensifyRoundsC > 0 {
		s2p.DensifyRounds = p.DensifyRoundsC * int(prim.Log2Ceil(b+1))
	}

	// Snapshot for the Step-5 revert: parents of V(G′) and the H₁ edges.
	snapP := cx.Grab32(len(env.roots))
	f.SnapshotOfInto(env.roots, snapP)
	snapH1 := cx.CopyEdges(H1)

	// Active roots: roots of V(G′) that still carry a non-loop edge in any
	// live edge set (fully contracted components have none and are ignored
	// per the discussion after Definition 7.2).
	active := activeRoots(cx, f, env.roots, Efilter, H1, H2)

	if len(active) > 0 {
		// Step 2: INCREASE(G′,H₁,H₂,b) — sparse skeleton + densify + heads.
		H1, _ = stage2.IncreaseSparseOn(cx, f, active, env.aux, H1, H2, s2p)

		// Step 3: 20·log b rounds of EXPAND-MAXLINK on H₁, then Theorem-2
		// rounds, then ALTER(H₁).
		lp := p.LTZ
		lp.Seed ^= uint64(env.phase) * 0x9e37
		st := ltz.NewStateOn(cx, f, active, H1, lp)
		r1 := st.Run(p.H1Rounds * int(prim.Log2Ceil(b+1)))
		r2 := st.Run(p.H1Rounds * int(prim.LogLog(f.Len()+4)))
		cx.Rec.Add(obs.CtrLTZRounds, int64(r1+r2))
		eh := labeled.Alter(m, f, st.CurrentEdges())
		cx.ReleaseEdges(H1) // pre-Step-3 backing, already copied into st
		H1 = eh
		done := st.Done()
		st.Free()

		// Step 4: if H₁ is fully contracted, REMAIN finishes G′.
		if len(H1) == 0 && done {
			remain(cx, f, env, p)
			cx.Release32(snapP)
			cx.ReleaseEdges(snapH1)
			cx.ReleaseEdges(H1)
			cx.ReleaseEdges(Efilter) // the phase loop ends here; recycle it
			return nil, nil, true
		}
	}

	// Step 5: revert the labeled digraph and H₁ to their Step-1 state.
	f.RestoreOf(env.roots, snapP)
	cx.Release32(snapP)
	cx.ReleaseEdges(H1) // superseded by the snapshot (exclusive backing)
	H1 = snapH1

	// Step 6: matching rounds on E_filter with random deletions.
	rounds := filterRounds(p, env.phase, f.Len())
	for r := 0; r < rounds; r++ {
		s1.Matching(Efilter)
		Efilter = labeled.Alter(m, f, Efilter)
		Efilter = deleteEdges(m, Efilter, p.FilterDeleteP64, p.Seed^0xdead^uint64(env.phase)<<20^uint64(r))
		if len(Efilter) == 0 {
			break
		}
	}

	// Step 7: shortcut V(G′) until the trees over it are flat again.
	shortRounds := env.phase + 2*int(prim.LogLog(f.Len()+4))
	for r := 0; r < shortRounds; r++ {
		labeled.Shortcut(m, f, env.roots)
	}

	// Step 8: E′ = original G′ edges whose endpoint-parent left V(E_filter),
	// gathered from the auxiliary array; then ALTER(E′).
	inFilter := markVertexSet(cx, f.Len(), Efilter)
	Ep := env.aux.Gather(m, func(u int32) bool {
		pu := f.P[u]
		return inFilter[pu] == 0
	})
	cx.Release32(inFilter)
	Ep = labeled.Alter(m, f, Ep)

	// Step 9: matching + shortcut rounds on E′.
	for r := 0; r < rounds; r++ {
		if len(Ep) == 0 {
			break
		}
		s1.Matching(Ep)
		labeled.Shortcut(m, f, env.roots)
		Ep = labeled.Alter(m, f, Ep)
	}

	// Step 10: REVERSE(V(E_filter), E(H₂)).
	Vf := solve.VertexSet(cx, f.Len(), Efilter)
	stage1.Reverse(m, f, Vf, H2)

	return Efilter, H1, false
}

// remain runs REMAIN(G′,H₁) (§7.1): the components of H₁ are all
// contracted; the sampling lemma of [KKT95] bounds the edges of G′ crossing
// them by O(|V(G′)|/p), so one Theorem-2 run on E(G′)\E(H₁) finishes.
func remain(cx *solve.Ctx, f *labeled.Forest, env phaseEnv, p Params) {
	m := cx.M
	// Step 1–2: E_remain = E(G′) \ E(H₁), altered to current parents.
	Er := stage2.EdgesNotIn(m, env.Gp, env.h1mask)
	Er = labeled.Alter(m, f, Er)
	if len(Er) == 0 {
		return
	}
	// Step 3: drop loops and parallel edges.
	keys := make([]int64, len(Er))
	for i, e := range Er {
		keys[i] = prim.PackEdge(e.U, e.V)
	}
	keys = prim.DedupPairs(m, keys, true)
	Er = Er[:0]
	for _, k := range keys {
		u, v := prim.UnpackEdge(k)
		Er = append(Er, graph.Edge{U: u, V: v})
	}
	// Step 4: Theorem 2.
	if len(Er) > 0 {
		ltz.SolveOnCtx(cx, f, solve.VertexSet(cx, f.Len(), Er), Er, p.LTZ)
	}
}

// backstop completes any components left unfinished when the phase loop
// exhausts its budget under clamped practical parameters.  It is the same
// mechanism as REMAIN applied to all remaining non-loop edges of G′; under
// the paper's parameters it is provably never needed.
func backstop(cx *solve.Ctx, f *labeled.Forest, Gp []graph.Edge, p Params) bool {
	m := cx.M
	E := cx.CopyEdges(Gp)
	E = labeled.Alter(m, f, E)
	if len(E) == 0 {
		cx.ReleaseEdges(E)
		return false
	}
	ltz.SolveOnCtx(cx, f, solve.VertexSet(cx, f.Len(), E), E, p.LTZ)
	cx.ReleaseEdges(E)
	return true
}

// activeRoots flags roots of V(G′) adjacent to any live non-loop edge.
func activeRoots(cx *solve.Ctx, f *labeled.Forest, roots []int32, sets ...[]graph.Edge) []int32 {
	m := cx.M
	flag := cx.Grab32(f.Len())
	for _, E := range sets {
		m.For(len(E), func(i int) {
			e := E[i]
			if e.U != e.V {
				pram.SetFlag(flag, int(f.P[e.U]))
				pram.SetFlag(flag, int(f.P[e.V]))
			}
		})
	}
	var out []int32
	m.Contract(prim.LogStar(f.Len())+1, int64(len(roots)), func() {
		for _, v := range roots {
			if f.P[v] == v && flag[v] != 0 {
				out = append(out, v)
			}
		}
	})
	cx.Release32(flag)
	return out
}

func filterRounds(p Params, phase, n int) int {
	r := float64(p.FilterRoundsBase) * float64(prim.LogLog(n+4))
	for j := 0; j < phase; j++ {
		r *= p.FilterGrowth
	}
	if r > 4096 {
		r = 4096
	}
	if r < 1 {
		r = 1
	}
	return int(r)
}

func deleteEdges(m *pram.Machine, E []graph.Edge, p64 uint64, seed uint64) []graph.Edge {
	out := E[:0]
	m.Contract(1, int64(len(E)), func() {
		for i, e := range E {
			if pram.SplitMix64(seed^uint64(i)*0x9e3779b97f4a7c15) >= p64 {
				out = append(out, e)
			}
		}
	})
	return out
}

func markVertexSet(cx *solve.Ctx, n int, E []graph.Edge) []int32 {
	m := cx.M
	flag := cx.Grab32(n)
	m.For(len(E), func(i int) {
		pram.SetFlag(flag, int(E[i].U))
		pram.SetFlag(flag, int(E[i].V))
	})
	return flag
}

// SolveKnownGap runs the three-stage pipeline of §§4–6 (Theorem 3) with a
// fixed degree target b — the algorithm for graphs whose component-wise
// spectral gap is promised to be ≥ b^{-0.1}.  The result is exact for every
// input regardless of the promise, because SAMPLESOLVE's Theorem-2 call is
// followed by the same backstop cleanup CONNECTIVITY uses.
func SolveKnownGap(m *pram.Machine, g *graph.Graph, b int, p Params) *Result {
	return SolveKnownGapOn(solve.New(m), g, b, p, nil)
}

// SolveKnownGapOn is SolveKnownGap against a solve context (see
// ConnectivityOn).
func SolveKnownGapOn(cx *solve.Ctx, g *graph.Graph, b int, p Params, dst []int32) *Result {
	m := cx.M
	start := time.Now()
	f := labeled.NewOn(cx.A, g.N)
	m.ResetMarks()
	span := cx.Rec.Begin()

	// Stage 1: REDUCE.
	s1 := stage1.NewRunnerOn(cx, f, p.Stage1)
	red := s1.Reduce(g)
	m.SetMark("stage1-reduce")
	span = cx.Rec.Lap(obs.PhaseReduce, span)

	// Stage 2: INCREASE to min degree b.
	s2p := stage2.DefaultParams(g.N, b)
	s2p.LTZ = p.LTZ
	E := cx.CopyEdges(red.Edges)
	if len(E) > 0 {
		stage2.IncreaseOn(cx, f, red.Roots, E, s2p)
	}
	m.SetMark("stage2-increase")
	span = cx.Rec.Lap(obs.PhaseIncrease, span)

	// Stage 3: SAMPLESOLVE on the current graph.
	active := activeRoots(cx, f, red.Roots, E)
	if len(active) > 0 {
		E = labeled.Alter(m, f, E)
		stage3.SampleSolveOn(cx, f, active, E, p.Stage3)
	}
	m.SetMark("stage3-samplesolve")
	span = cx.Rec.Lap(obs.PhaseSampleSolve, span)

	// Backstop for sampling losses (the §3.4 corner case / KKT cleanup).
	labeled.FlattenAll(m, f)
	usedBackstop := backstop(cx, f, red.Edges, p)
	labeled.FlattenAll(m, f)
	m.SetMark("backstop")
	span = cx.Rec.Lap(obs.PhaseFinish, span)

	labels := labeled.LabelsOnInto(m.Exec(), f, dst)
	ncomp := solve.NumLabels(cx, labels, g.N)
	cx.Rec.End(obs.PhaseCount, span)
	res := &Result{
		Labels:        labels,
		NumComponents: ncomp,
		Steps:         m.Steps(),
		Work:          m.Work(),
		Elapsed:       time.Since(start),
		FinalB:        b,
		UsedBackstop:  usedBackstop,
		Breakdown:     m.Marks(),
	}
	s1.Free()
	cx.ReleaseEdges(E)
	cx.ReleaseEdges(red.Edges)
	f.Free()
	return res
}
