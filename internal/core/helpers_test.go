package core

import (
	"testing"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/pram"
	"parcc/internal/solve"
)

func TestActiveRootsFlagsLiveEdgesOnly(t *testing.T) {
	m := pram.New()
	f := labeled.New(6)
	f.P[1] = 0 // 1 is a child
	roots := []int32{0, 2, 3, 4, 5}
	// live non-loop edge (0,2); a loop at 3; nothing on 4, 5
	sets := [][]graph.Edge{
		{{U: 0, V: 2}},
		{{U: 3, V: 3}},
	}
	got := activeRoots(solve.New(m), f, roots, sets...)
	want := map[int32]bool{0: true, 2: true}
	if len(got) != len(want) {
		t.Fatalf("active roots = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected active root %d", v)
		}
	}
}

func TestActiveRootsResolvesParents(t *testing.T) {
	// Edge endpoints may be stale (children); flags must land on parents.
	m := pram.New()
	f := labeled.New(4)
	f.P[1] = 0
	f.P[3] = 2
	got := activeRoots(solve.New(m), f, []int32{0, 2}, []graph.Edge{{U: 1, V: 3}})
	if len(got) != 2 {
		t.Fatalf("active roots = %v, want the two parents", got)
	}
}

func TestMarkVertexSetAndList(t *testing.T) {
	m := pram.New()
	E := []graph.Edge{{U: 1, V: 2}, {U: 2, V: 4}}
	flags := markVertexSet(solve.New(m), 6, E)
	for v, want := range map[int]bool{0: false, 1: true, 2: true, 3: false, 4: true} {
		if (flags[v] != 0) != want {
			t.Fatalf("flag[%d] = %d", v, flags[v])
		}
	}
	list := solve.VertexSet(solve.New(m), 6, E)
	if len(list) != 3 {
		t.Fatalf("vertex list = %v", list)
	}
}

func TestDeleteEdgesProbabilities(t *testing.T) {
	m := pram.New()
	E := make([]graph.Edge, 10000)
	kept := deleteEdges(m, append([]graph.Edge(nil), E...), pram.P64(0), 1)
	if len(kept) != len(E) {
		t.Fatalf("p=0 deleted edges: %d left", len(kept))
	}
	kept = deleteEdges(m, append([]graph.Edge(nil), E...), pram.P64(1), 1)
	if len(kept) != 0 {
		t.Fatalf("p=1 kept %d edges", len(kept))
	}
	kept = deleteEdges(m, append([]graph.Edge(nil), E...), pram.P64(0.5), 1)
	frac := float64(len(kept)) / float64(len(E))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("p=0.5 kept fraction %.3f", frac)
	}
}

func TestBackstopNoopWhenDone(t *testing.T) {
	g := gen.Path(4)
	m := pram.New()
	f := labeled.New(g.N)
	// contract fully first
	for v := 1; v < g.N; v++ {
		f.P[v] = 0
	}
	if backstop(solve.New(m), f, g.Edges, Default(g.N)) {
		t.Fatal("backstop should be a no-op on a finished instance")
	}
	// and must act when edges remain
	f2 := labeled.New(g.N)
	if !backstop(solve.New(m), f2, g.Edges, Default(g.N)) {
		t.Fatal("backstop should engage on a fresh instance")
	}
	labeled.FlattenAll(m, f2)
	if graph.NumLabels(f2.Labels()) != 1 {
		t.Fatal("backstop did not finish the path")
	}
}

func TestSkipStage1StillExact(t *testing.T) {
	g := gen.Union(gen.Cycle(200), gen.RandomRegular(128, 4, 3))
	p := Default(g.N)
	p.SkipStage1 = true
	m := pram.New(pram.Seed(5))
	res := Connectivity(m, g, p)
	if graph.NumLabels(res.Labels) != 2 {
		t.Fatalf("skip-stage1 run found %d components", graph.NumLabels(res.Labels))
	}
}
