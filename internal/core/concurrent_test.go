package core

import (
	"testing"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/par"
	"parcc/internal/pram"
	"parcc/internal/solve"
)

// TestConnectivityOnParRuntime runs the full CONNECTIVITY driver with its
// loop bodies scheduled on the internal/par pool and checks the partition
// and the model accounting against the sequential simulator.
func TestConnectivityOnParRuntime(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"expander":   gen.RandomRegular(1<<11, 4, 2),
		"two-cycles": gen.TwoCycles(1500),
		"components": gen.ManyComponents(4, func(i int) *graph.Graph {
			return gen.GNM(300, 450, uint64(i+1))
		}),
	}
	for name, g := range graphs {
		seqM := pram.New(pram.Seed(3), pram.Sequential())
		pSeq := Default(g.N)
		pSeq.Seed ^= 3
		want := Connectivity(seqM, g, pSeq)

		rt := par.New(par.Procs(4), par.Seed(3))
		m := pram.New(pram.Seed(3), pram.OnExecutor(rt))
		pCon := Default(g.N)
		pCon.Seed ^= 3
		got := Connectivity(m, g, pCon)
		rt.Close()

		if !graph.SamePartition(want.Labels, got.Labels) {
			t.Errorf("%s: concurrent partition differs from sequential", name)
		}
		if got.NumComponents != want.NumComponents {
			t.Errorf("%s: components %d vs %d", name, got.NumComponents, want.NumComponents)
		}
		if got.Steps <= 0 || got.Work <= 0 {
			t.Errorf("%s: concurrent run lost the model accounting (steps=%d work=%d)",
				name, got.Steps, got.Work)
		}
	}
}

// TestVertexSetListDeterministicSorted guards the determinism fix: the
// vertex list must come back sorted regardless of backend (it used to be
// collected from a map, whose iteration order is random).
func TestVertexSetListDeterministicSorted(t *testing.T) {
	E := []graph.Edge{{U: 9, V: 2}, {U: 5, V: 9}, {U: 0, V: 7}, {U: 2, V: 5}}
	check := func(m *pram.Machine) {
		t.Helper()
		got := solve.VertexSet(solve.New(m), 12, E)
		want := []int32{0, 2, 5, 7, 9}
		if len(got) != len(want) {
			t.Fatalf("got %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	}
	check(pram.New(pram.Sequential()))
	rt := par.New(par.Procs(3))
	defer rt.Close()
	check(pram.New(pram.OnExecutor(rt)))
}
