package core

import (
	"fmt"
	"testing"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/pram"
)

// suite returns the graph families every correctness test runs against.
func suite() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":        graph.New(0),
		"singleton":    graph.New(1),
		"isolated":     graph.New(64),
		"selfloops":    graph.FromPairs(5, [][2]int{{0, 0}, {1, 1}, {2, 3}}),
		"path":         gen.Path(257),
		"cycle":        gen.Cycle(200),
		"twocycles":    gen.TwoCycles(200),
		"grid":         gen.Grid(17, 23),
		"hypercube":    gen.Hypercube(7),
		"star":         gen.Star(300),
		"tree":         gen.BinaryTree(255),
		"complete":     gen.Complete(40),
		"expander":     gen.RandomRegular(512, 4, 7),
		"gnm-sparse":   gen.GNM(400, 300, 11),
		"gnm-dense":    gen.GNM(300, 2400, 13),
		"cliques-ring": gen.RingOfCliques(12, 10, 2, 17),
		"components": gen.Union(
			gen.Path(50), gen.Cycle(40), gen.Complete(12),
			gen.Star(30), graph.New(9), gen.RandomRegular(64, 3, 5)),
		"lollipop": gen.Lollipop(150, 30),
		"barbell":  gen.Barbell(160, 25),
		"parallel": graph.FromPairs(4, [][2]int{{0, 1}, {0, 1}, {0, 1}, {2, 3}, {2, 3}}),
	}
}

func checkLabels(t *testing.T, name string, g *graph.Graph, got []int32) {
	t.Helper()
	want := baseline.BFSLabels(g)
	if !graph.SamePartition(want, got) {
		t.Fatalf("%s: wrong partition: got %d comps, want %d",
			name, graph.NumLabels(got), graph.NumLabels(want))
	}
}

func TestConnectivityMatchesBFS(t *testing.T) {
	for name, g := range suite() {
		g := g
		t.Run(name, func(t *testing.T) {
			m := pram.New(pram.Seed(42))
			res := Connectivity(m, g, Default(g.N))
			checkLabels(t, name, g, res.Labels)
		})
	}
}

func TestConnectivitySequentialOrders(t *testing.T) {
	// Arbitrary-write robustness: the result must be the same partition
	// under every write-resolution order.
	g := gen.Union(gen.Cycle(120), gen.Grid(9, 13), gen.RandomRegular(128, 3, 3))
	for _, ord := range []pram.Order{pram.Forward, pram.Reverse, pram.Shuffled} {
		m := pram.New(pram.Sequential(), pram.WriteOrder(ord), pram.Seed(7))
		res := Connectivity(m, g, Default(g.N))
		checkLabels(t, ord.String(), g, res.Labels)
	}
}

func TestConnectivityPaperParams(t *testing.T) {
	g := gen.Union(gen.RandomRegular(256, 4, 9), gen.Path(100))
	m := pram.New(pram.Seed(1))
	res := Connectivity(m, g, Paper(g.N))
	checkLabels(t, "paper-params", g, res.Labels)
}

func TestConnectivityManySeeds(t *testing.T) {
	g := gen.Union(gen.Cycle(90), gen.TwoCycles(80), gen.GNM(200, 260, 3))
	for seed := uint64(1); seed <= 8; seed++ {
		p := Default(g.N)
		p.Seed = seed
		m := pram.New(pram.Seed(seed))
		res := Connectivity(m, g, p)
		checkLabels(t, fmt.Sprintf("seed=%d", seed), g, res.Labels)
	}
}

func TestSolveKnownGapMatchesBFS(t *testing.T) {
	for name, g := range suite() {
		g := g
		t.Run(name, func(t *testing.T) {
			m := pram.New(pram.Seed(42))
			res := SolveKnownGap(m, g, 16, Default(g.N))
			checkLabels(t, name, g, res.Labels)
		})
	}
}

func TestConnectivityWorkBounded(t *testing.T) {
	// Charged work must stay within a reasonable multiple of m+n on a
	// well-connected graph (the Theorem-1 regime).
	g := gen.RandomRegular(4096, 8, 21)
	m := pram.New(pram.Seed(5))
	res := Connectivity(m, g, Default(g.N))
	checkLabels(t, "expander", g, res.Labels)
	mn := int64(g.M() + g.N)
	if res.Work > 600*mn {
		t.Errorf("charged work %d exceeds 600·(m+n)=%d", res.Work, 600*mn)
	}
	if res.Steps == 0 || res.Work == 0 {
		t.Errorf("accounting not recorded: steps=%d work=%d", res.Steps, res.Work)
	}
}

func TestResultFields(t *testing.T) {
	g := gen.Cycle(64)
	m := pram.New(pram.Seed(2))
	res := Connectivity(m, g, Default(g.N))
	if res.NumComponents != 1 {
		t.Fatalf("cycle: got %d components, want 1", res.NumComponents)
	}
	if len(res.Labels) != g.N {
		t.Fatalf("labels length %d, want %d", len(res.Labels), g.N)
	}
	if res.Phases < 0 || res.Phases > Default(g.N).MaxPhases {
		t.Errorf("phases out of range: %d", res.Phases)
	}
}

func TestBSchedule(t *testing.T) {
	p := Default(1 << 16)
	prev := 0
	for i := 0; i < 10; i++ {
		b := p.bSchedule(i)
		if b < prev {
			t.Fatalf("b schedule not monotone at phase %d: %d < %d", i, b, prev)
		}
		prev = b
	}
	if p.bSchedule(0) != p.B0 {
		t.Errorf("phase 0 guess = %d, want B0 = %d", p.bSchedule(0), p.B0)
	}
}
