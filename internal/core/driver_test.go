package core

import (
	"testing"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/pram"
)

func TestRemainOrBackstopCompletesSparseGraphs(t *testing.T) {
	// On a long path the sampled H₁ shatters and contracts quickly, so a
	// phase terminates via REMAIN (or, failing that, the backstop): the
	// completion mechanism must fire and the result must be exact.
	g := gen.Path(4000)
	m := pram.New(pram.Seed(3))
	res := Connectivity(m, g, Default(g.N))
	if !graph.SamePartition(baseline.BFSLabels(g), res.Labels) {
		t.Fatal("path result wrong")
	}
	if !res.UsedRemain && !res.UsedBackstop {
		t.Error("neither REMAIN nor backstop fired on a sparse graph")
	}
}

func TestPhaseRoundsRecorded(t *testing.T) {
	g := gen.RandomRegular(2048, 6, 5)
	m := pram.New(pram.Seed(5))
	res := Connectivity(m, g, Default(g.N))
	if len(res.PhaseRounds) != res.Phases {
		t.Fatalf("recorded %d phase-round entries for %d phases",
			len(res.PhaseRounds), res.Phases)
	}
	for i, r := range res.PhaseRounds {
		if r <= 0 {
			t.Errorf("phase %d charged %d rounds", i, r)
		}
	}
}

func TestStrictBudgetsEscalatePhases(t *testing.T) {
	// With minimal per-phase budgets, a low-λ graph cannot finish in phase
	// 0, so the schedule must escalate — and still end correct.
	g := gen.RingOfCliques(24, 12, 1, 3)
	p := Default(g.N)
	p.SolveRoundsC = 1
	p.H1Rounds = 1
	p.B0 = 4
	m := pram.New(pram.Seed(9))
	res := Connectivity(m, g, p)
	if !graph.SamePartition(baseline.BFSLabels(g), res.Labels) {
		t.Fatal("strict-budget run wrong")
	}
	t.Logf("strict budgets: phases=%d finalB=%d remain=%v backstop=%v",
		res.Phases, res.FinalB, res.UsedRemain, res.UsedBackstop)
}

func TestRevertIsolatesFailedPhases(t *testing.T) {
	// Run with budgets so strict that early phases must fail; the final
	// partition must still be exact, which exercises the Step-5 revert (a
	// broken revert leaves the forest poisoned by the failed INCREASE).
	g := gen.Union(gen.Cycle(900), gen.Path(700), gen.RandomRegular(512, 4, 2))
	p := Default(g.N)
	p.SolveRoundsC = 1
	p.H1Rounds = 1
	p.MaxPhases = 3
	for seed := uint64(1); seed <= 6; seed++ {
		p.Seed = seed
		m := pram.New(pram.Seed(seed))
		res := Connectivity(m, g, p)
		if !graph.SamePartition(baseline.BFSLabels(g), res.Labels) {
			t.Fatalf("seed %d: revert corrupted the run", seed)
		}
	}
}

func TestAdversarialRelabeling(t *testing.T) {
	// Hook-to-smaller algorithms are sensitive to label order; the paper's
	// algorithm must not be.  Run the same graph under identity, reversed,
	// and shuffled labelings.
	base := gen.Union(gen.Grid(20, 20), gen.Cycle(300))
	perms := map[string]func(i, n int) int32{
		"identity": func(i, n int) int32 { return int32(i) },
		"reversed": func(i, n int) int32 { return int32(n - 1 - i) },
		"shuffled": func(i, n int) int32 {
			return int32((uint64(i)*2654435761 + 7) % uint64(n))
		},
	}
	for name, pf := range perms {
		perm := make([]int32, base.N)
		used := make([]bool, base.N)
		for i := range perm {
			p := pf(i, base.N)
			for used[p] { // linear probe to a free slot keeps it a permutation
				p = (p + 1) % int32(base.N)
			}
			perm[i] = p
			used[p] = true
		}
		g, err := graph.Relabel(base, perm)
		if err != nil {
			t.Fatal(err)
		}
		m := pram.New(pram.Seed(4))
		res := Connectivity(m, g, Default(g.N))
		if !graph.SamePartition(baseline.BFSLabels(g), res.Labels) {
			t.Errorf("%s relabeling broke the run", name)
		}
	}
}

func TestManyComponentsAllRegimes(t *testing.T) {
	// A union mixing every gap regime plus singletons, solved with both
	// drivers and checked for exactness and component counts.
	g := gen.Union(
		gen.RandomRegular(512, 8, 1), // λ = Θ(1)
		gen.Hypercube(8),             // λ = Θ(1/log n)
		gen.Grid(16, 16),             // λ = Θ(1/n)
		gen.Cycle(256),               // λ = Θ(1/n²)
		graph.New(17),                // singletons
	)
	want := graph.NumLabels(baseline.BFSLabels(g))
	for _, known := range []bool{false, true} {
		m := pram.New(pram.Seed(11))
		var res *Result
		if known {
			res = SolveKnownGap(m, g, 8, Default(g.N))
		} else {
			res = Connectivity(m, g, Default(g.N))
		}
		if res.NumComponents != want {
			t.Errorf("known=%v: %d components, want %d", known, res.NumComponents, want)
		}
	}
}

func TestBreakdownPartitionsTotals(t *testing.T) {
	g := gen.RandomRegular(1024, 4, 7)
	m := pram.New(pram.Seed(2))
	res := Connectivity(m, g, Default(g.N))
	var steps, work int64
	for _, mk := range res.Breakdown {
		steps += mk.Steps
		work += mk.Work
	}
	if steps != res.Steps || work != res.Work {
		t.Errorf("breakdown sums (%d,%d) != totals (%d,%d)", steps, work, res.Steps, res.Work)
	}
}

func TestKnownGapBreakdownStages(t *testing.T) {
	g := gen.RandomRegular(1024, 6, 3)
	m := pram.New(pram.Seed(2))
	res := SolveKnownGap(m, g, 8, Default(g.N))
	labels := map[string]bool{}
	for _, mk := range res.Breakdown {
		labels[mk.Label] = true
	}
	for _, want := range []string{"stage1-reduce", "stage2-increase", "stage3-samplesolve", "backstop"} {
		if !labels[want] {
			t.Errorf("known-gap breakdown missing %q (got %v)", want, labels)
		}
	}
}
