// Package core implements §7 of the paper — the overall CONNECTIVITY
// algorithm: Stage-1 preprocessing, the pre-sampled subgraphs H₁/H₂, the
// phase loop with double-exponentially growing spectral-gap guesses
// (INTERWEAVE), the work-reduced skeleton construction (SPARSEBUILD), and
// the REMAIN cleanup justified by the KKT sampling lemma.  It is the
// algorithm of Theorem 1: O(log(1/λ) + log log n) time and O(m+n) work
// w.h.p., with no prior knowledge of λ.
package core

import (
	"math"

	"parcc/internal/ltz"
	"parcc/internal/pram"
	"parcc/internal/prim"
	"parcc/internal/stage1"
	"parcc/internal/stage3"
)

// Params collects every tunable of CONNECTIVITY.  Each field documents the
// paper's value; constructors provide the practical profile (Default) and
// the clamped paper formulas (Paper).  Correctness does not depend on the
// values: the final REMAIN/backstop pass completes any unfinished component
// (§7.1 footnote 21), and tests verify every output against BFS.
type Params struct {
	// Stage1 configures REDUCE (§4).
	Stage1 stage1.Params
	// B0 is the initial gap guess b (paper: (log n)^100 in §7.1 Step 1 of
	// INTERWEAVE with i=0).
	B0 int
	// BGrowth is the per-phase exponent: b ← b^BGrowth
	// (paper: 1.1 in §7, 1.5 in the §3.4 overview).
	BGrowth float64
	// MaxPhases bounds the phase loop (paper: 10·log log n).
	MaxPhases int
	// SampleP64 is the sampling probability for H₁ and H₂
	// (paper: 1/(log n)^7).
	SampleP64 uint64
	// FilterRoundsBase scales the Step-6 matching round count
	// (paper: 10^6·1.1^i·log log n in phase i).
	FilterRoundsBase int
	// FilterGrowth is the per-phase growth of the Step-6 round count
	// (paper: 1.1).
	FilterGrowth float64
	// FilterDeleteP64 is the Step-6 edge deletion probability (paper 10^-4).
	FilterDeleteP64 uint64
	// H1Rounds scales INTERWEAVE Step 3: H1Rounds·log b EXPAND-MAXLINK
	// rounds (paper: 20·log b) followed by Theorem-2 rounds
	// (paper: 10^4·log log n).
	H1Rounds int
	// SolveRoundsC scales the round limit of the Theorem-2 calls inside a
	// phase: limit = SolveRoundsC·log2(b) (§3.4: each stage runs for
	// O(log b) time within a phase).
	SolveRoundsC int
	// DensifyRoundsC scales DENSIFY's EXPAND-MAXLINK budget per phase:
	// DensifyRoundsC·log2(b) rounds (paper: 20·log b).  0 keeps the
	// stage2 default.
	DensifyRoundsC int
	// LTZ configures all Theorem-2 invocations.
	LTZ ltz.Params
	// Stage3 configures SAMPLESOLVE when running the known-λ pipeline.
	Stage3 stage3.Params
	// Seed drives every random choice.
	Seed uint64
	// Workers is the goroutine budget when the caller lets core build the
	// machine (0 = NumCPU).
	Workers int
	// SkipStage1 bypasses REDUCE, running the phase loop on the raw graph.
	// Ablation only (E12): at feasible n Stage 1's n/poly(log n)
	// contraction leaves instances phase 0 finishes outright; skipping it
	// exposes the double-exponential schedule dynamically.
	SkipStage1 bool
}

// Default returns the practical profile for an n-vertex, m-edge graph
// (DESIGN.md §4): polylog exponents reduced to small multiples of log n so
// that the structure — three stages, doubling guesses, interweaving — is
// exercised at feasible sizes.
func Default(n int) Params {
	lg := int(prim.Log2Ceil(n + 2))
	if lg < 4 {
		lg = 4
	}
	return Params{
		Stage1:           stage1.DefaultParams(n),
		B0:               maxInt(8, lg/2),
		BGrowth:          1.5,
		MaxPhases:        int(4 * prim.LogLog(n+4)),
		SampleP64:        pram.P64(1 / float64(lg)),
		FilterRoundsBase: 2,
		FilterGrowth:     1.5,
		FilterDeleteP64:  pram.P64(1e-4),
		H1Rounds:         4,
		SolveRoundsC:     2,
		LTZ:              ltz.DefaultParams(n),
		Stage3:           stage3.DefaultParams(n),
		Seed:             0xc0ffee,
	}
}

// Paper returns the paper's formulas clamped to feasible magnitudes.  The
// clamping is unavoidable — (log n)^100 exceeds memory for every real n —
// and is reported via the Clamped field of the returned struct's doc; the
// structure (round counts proportional to log log n, deletion probability
// 10^-4, growth 1.1) is kept exact.
func Paper(n int) Params {
	p := Default(n)
	lg := float64(prim.Log2Ceil(n + 2))
	b0 := lg * lg // stands in for (log n)^100, clamped
	if b0 > 4096 {
		b0 = 4096
	}
	p.B0 = maxInt(8, int(b0))
	p.BGrowth = 1.1
	p.FilterGrowth = 1.1
	p.MaxPhases = int(10 * prim.LogLog(n+4))
	p.LTZ = ltz.PaperParams(n)
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bSchedule returns the phase-i gap guess: B0^(BGrowth^i), capped.
func (p Params) bSchedule(i int) int {
	b := float64(p.B0)
	for j := 0; j < i; j++ {
		b = math.Pow(b, p.BGrowth)
		if b > 1<<20 {
			return 1 << 20
		}
	}
	if b < 4 {
		b = 4
	}
	return int(b)
}
