package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Transport is the follower's seam to its primary: graph discovery plus
// the per-graph replication stream.  The production implementation is
// HTTP against a ccserved primary; tests and the fault-injection layer
// (repl/faultconn) substitute their own.
type Transport interface {
	// Names lists the primary's live graphs.
	Names(ctx context.Context) ([]string, error)
	// Stream opens the replication stream for name, resuming past the
	// follower's last applied seq on the log identified by epoch (both
	// zero for a fresh follower).  The returned reader yields the wire
	// format of service.ReadStreamFrame and stays open across the
	// long-poll tail; it must unblock when ctx is canceled.
	Stream(ctx context.Context, name string, from, epoch uint64) (io.ReadCloser, error)
}

// httpTransport speaks to a ccserved primary.
type httpTransport struct {
	base string // primary base URL, no trailing slash
	// short-request client (discovery): bounded end to end.
	names *http.Client
	// streaming client: bounded connect + response header, unbounded body
	// (the stream IS unbounded; stalls are the tailer watchdog's job).
	stream *http.Client
}

// NewHTTPTransport returns the production Transport for a primary at
// base (e.g. "http://127.0.0.1:8080").
func NewHTTPTransport(base string) Transport {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &httpTransport{
		base:  base,
		names: &http.Client{Timeout: 5 * time.Second},
		stream: &http.Client{Transport: &http.Transport{
			ResponseHeaderTimeout: 5 * time.Second,
			MaxIdleConnsPerHost:   4,
		}},
	}
}

func (t *httpTransport) Names(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/graphs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.names.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("repl: primary /graphs: %s", resp.Status)
	}
	var body struct {
		Graphs []string `json:"graphs"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&body); err != nil {
		return nil, fmt.Errorf("repl: primary /graphs: %w", err)
	}
	return body.Graphs, nil
}

func (t *httpTransport) Stream(ctx context.Context, name string, from, epoch uint64) (io.ReadCloser, error) {
	u := t.base + "/graphs/" + url.PathEscape(name) + "/wal?from=" +
		strconv.FormatUint(from, 10) + "&epoch=" + strconv.FormatUint(epoch, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.stream.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("repl: primary wal stream %q: %s", name, resp.Status)
	}
	return resp.Body, nil
}
