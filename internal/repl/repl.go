// Package repl is the replication layer: a Follower tails a primary's
// per-graph write-ahead-log streams (service's GET /graphs/{name}/wal),
// re-applies each committed group through a real incremental session, and
// publishes snapshots at exactly the versions the stream encodes — so a
// read served by the follower is indistinguishable, at its reported
// version, from the same read served by the primary.
//
// Correctness rules (schedule-independent, like the kernels underneath):
//
//   - Groups are buffered frame by frame and applied only when the
//     group's COMMIT frame arrives.  A stream cut mid-group discards the
//     partial buffer; the reconnect resumes from the last APPLIED seq, so
//     no group is ever half-applied or applied twice.
//   - A create/checkpoint frame resets the replica to the full state it
//     carries (publishing at its seq); the epoch field detects a primary
//     whose graph was dropped and re-created, so two histories are never
//     spliced.
//   - The snapshot version is forced to the group's seq via
//     AdvanceSnapshotVersion(seq-1) + PublishSnapshot — versions a
//     follower serves are exactly the versions the primary's log assigned,
//     even across primary recoveries (whose own publish seq is never in
//     the log; followers simply skip it).
//
// Liveness: the tailer retries with jittered exponential backoff, a
// stall watchdog severs connections that stop producing frames (the
// primary heartbeats commit frames while idle), and discovery keeps the
// replica set in sync with the primary's graph list.  When the primary
// dies, tailers keep the last applied state serving reads and reconnect
// until it returns.
package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parcc"
	"parcc/internal/obs"
	"parcc/internal/service"
)

// Options configures a Follower.
type Options struct {
	// Primary is the primary's base URL; used by the default transport
	// and echoed in operator-facing errors.
	Primary string
	// Engine is the follower's read-only serving engine (service.Options
	// ReadOnly: true); replicas are installed into it as they sync.
	Engine *service.Engine
	// Solver configures each replica session (nil: parcc defaults).
	Solver *parcc.Options
	// MaxLag is the bounded-staleness threshold: Ready() reports an error
	// once the follower has gone longer than this without being caught up
	// to the primary's advertised head (default 5s).
	MaxLag time.Duration
	// Transport overrides the primary connection (fault injection,
	// tests).  Nil: HTTP against Primary.
	Transport Transport
	// Poll is the graph-discovery interval (default 2s).
	Poll time.Duration
	// RetryMin/RetryMax bound the jittered exponential reconnect backoff
	// (defaults 50ms / 2s).
	RetryMin, RetryMax time.Duration
	// Stall severs a stream that produces no frame for this long —
	// covers half-open connections the primary's heartbeat can't reach
	// (default 5s; must exceed the primary's heartbeat interval).
	Stall time.Duration
	// Seed makes the backoff jitter deterministic for tests (0: seeded
	// from the clock).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxLag <= 0 {
		o.MaxLag = 5 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Second
	}
	if o.RetryMin <= 0 {
		o.RetryMin = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.Stall <= 0 {
		o.Stall = 5 * time.Second
	}
	if o.Transport == nil {
		o.Transport = NewHTTPTransport(o.Primary)
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	return o
}

// Follower replicates a primary's graphs into a read-only engine.
type Follower struct {
	opt    Options
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	tailers map[string]*tailer
	synced  atomic.Bool // at least one successful discovery round

	reconnects  atomic.Uint64 // stream (re)connect attempts after the first
	resets      atomic.Uint64 // full-state resets (create/checkpoint applied)
	groups      atomic.Uint64 // committed groups applied
	applyErrs   atomic.Uint64 // groups the session rejected (forced resync)
	frames      atomic.Uint64 // stream frames received
	streamBytes atomic.Uint64 // approximate stream payload bytes received
}

// New builds a Follower; Start begins replication.
func New(opt Options) (*Follower, error) {
	opt = opt.withDefaults()
	if opt.Engine == nil {
		return nil, fmt.Errorf("repl: Options.Engine is required")
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Follower{
		opt:     opt,
		ctx:     ctx,
		cancel:  cancel,
		tailers: make(map[string]*tailer),
	}, nil
}

// Start launches discovery and the per-graph tailers.
func (f *Follower) Start() {
	f.wg.Add(1)
	go f.discover()
}

// Stop halts replication and releases every replica session.  The engine
// keeps serving the last published snapshots until it is closed (readers
// holding a snapshot are never invalidated).
func (f *Follower) Stop() {
	f.cancel()
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	for name, t := range f.tailers {
		t.teardown()
		delete(f.tailers, name)
	}
}

// discover polls the primary's graph list, starting tailers for new
// graphs and stopping them for dropped ones.  Discovery failures leave
// the current replica set serving — a dead primary must not take the
// follower's reads down with it.
func (f *Follower) discover() {
	defer f.wg.Done()
	tick := time.NewTicker(f.opt.Poll)
	defer tick.Stop()
	for {
		f.syncOnce()
		select {
		case <-f.ctx.Done():
			return
		case <-tick.C:
		}
	}
}

func (f *Follower) syncOnce() {
	ctx, cancel := context.WithTimeout(f.ctx, f.opt.Poll)
	names, err := f.opt.Transport.Names(ctx)
	cancel()
	if err != nil {
		return // primary unreachable: keep serving what we have
	}
	f.synced.Store(true)
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ctx.Err() != nil {
		return
	}
	for _, name := range names {
		if _, ok := f.tailers[name]; !ok {
			t := f.newTailer(name)
			f.tailers[name] = t
			f.wg.Add(1)
			go t.run()
		}
	}
	for name, t := range f.tailers {
		if !want[name] {
			t.teardown()
			delete(f.tailers, name)
		}
	}
}

// Ready implements the readiness probe: nil when the follower has
// discovered the primary at least once and every replica is caught up to
// the primary's advertised head within MaxLag.  The error names the
// laggiest graph — the /readyz body surfaces it.
func (f *Follower) Ready() error {
	if !f.synced.Load() {
		return fmt.Errorf("repl: no contact with primary %s yet", f.opt.Primary)
	}
	now := time.Now().UnixNano()
	f.mu.Lock()
	defer f.mu.Unlock()
	for name, t := range f.tailers {
		fresh := t.freshAt.Load()
		if fresh == 0 {
			return fmt.Errorf("repl: graph %q not yet synced", name)
		}
		if lag := time.Duration(now - fresh); lag > f.opt.MaxLag {
			return fmt.Errorf("repl: graph %q lagging %.1fs behind primary (max %s, %d seqs behind)",
				name, lag.Seconds(), f.opt.MaxLag, t.lagSeqs())
		}
	}
	return nil
}

// GraphStatus is one replica's replication position.
type GraphStatus struct {
	Name    string `json:"name"`
	Applied uint64 `json:"applied_seq"`
	Head    uint64 `json:"head_seq"`
	LagSeqs uint64 `json:"lag_seqs"`
	Fresh   bool   `json:"fresh"` // caught up within MaxLag
}

// Status reports every replica's position, sorted by name.
func (f *Follower) Status() []GraphStatus {
	now := time.Now().UnixNano()
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]GraphStatus, 0, len(f.tailers))
	for name, t := range f.tailers {
		fresh := t.freshAt.Load()
		out = append(out, GraphStatus{
			Name:    name,
			Applied: t.applied.Load(),
			Head:    t.head.Load(),
			LagSeqs: t.lagSeqs(),
			Fresh:   fresh != 0 && time.Duration(now-fresh) <= f.opt.MaxLag,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lag returns the worst (seqs, seconds) lag across replicas.
func (f *Follower) lag() (uint64, float64) {
	now := time.Now().UnixNano()
	f.mu.Lock()
	defer f.mu.Unlock()
	var seqs uint64
	var secs float64
	for _, t := range f.tailers {
		if s := t.lagSeqs(); s > seqs {
			seqs = s
		}
		fresh := t.freshAt.Load()
		if fresh == 0 {
			continue
		}
		if s := time.Duration(now - fresh).Seconds(); s > secs {
			secs = s
		}
	}
	return seqs, secs
}

// RegisterMetrics adds the replication series to reg (the follower
// engine's registry, so they scrape from the same /metrics).
func (f *Follower) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("parcc_repl_graphs",
		"Replica sessions this follower maintains.",
		func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return float64(len(f.tailers))
		})
	reg.GaugeFunc("parcc_repl_lag_seqs",
		"Worst replication lag across graphs, in log seqs (primary head minus applied).",
		func() float64 { s, _ := f.lag(); return float64(s) })
	reg.GaugeFunc("parcc_repl_lag_seconds",
		"Worst staleness across graphs: seconds since the replica was last caught up to the primary's head.",
		func() float64 { _, s := f.lag(); return s })
	reg.Collect("parcc_repl_groups_total",
		"Committed mutation groups applied from the replication stream.", "counter",
		func(w io.Writer, name string) { fmt.Fprintf(w, "%s %d\n", name, f.groups.Load()) })
	reg.Collect("parcc_repl_resets_total",
		"Full-state resets applied (create/checkpoint frames).", "counter",
		func(w io.Writer, name string) { fmt.Fprintf(w, "%s %d\n", name, f.resets.Load()) })
	reg.Collect("parcc_repl_reconnects_total",
		"Replication stream reconnect attempts.", "counter",
		func(w io.Writer, name string) { fmt.Fprintf(w, "%s %d\n", name, f.reconnects.Load()) })
	reg.Collect("parcc_repl_apply_errors_total",
		"Stream groups the replica session rejected (forces a full resync).", "counter",
		func(w io.Writer, name string) { fmt.Fprintf(w, "%s %d\n", name, f.applyErrs.Load()) })
	reg.Collect("parcc_repl_frames_total",
		"Replication stream frames received (including commit heartbeats).", "counter",
		func(w io.Writer, name string) { fmt.Fprintf(w, "%s %d\n", name, f.frames.Load()) })
}

// tailer replicates one graph.
type tailer struct {
	f    *Follower
	name string
	rng  *rand.Rand // backoff jitter; owned by the run goroutine

	// Replication position, read by Ready/Status/metrics.
	applied atomic.Uint64 // last seq whose group is applied AND published
	head    atomic.Uint64 // primary's last advertised durable seq
	epoch   atomic.Uint64 // log identity from the last head record
	// freshAt is when the replica was last caught up (applied >= head at
	// a commit frame); 0 until the first catch-up.
	freshAt atomic.Int64

	// Session state; owned by the run goroutine (teardown synchronizes
	// through closed).
	mu     sync.Mutex
	solver *parcc.Solver
	rep    *service.Replica
	edges  int64
	closed bool
}

// lagSeqs is the primary's advertised head minus the last applied seq
// (zero when caught up; head may trail applied briefly after a reset).
func (t *tailer) lagSeqs() uint64 {
	head, applied := t.head.Load(), t.applied.Load()
	if head <= applied {
		return 0
	}
	return head - applied
}

func (f *Follower) newTailer(name string) *tailer {
	// Derive a per-graph jitter stream from the follower seed: distinct
	// graphs don't reconnect in lockstep, and a fixed seed is fully
	// deterministic for the fault-injection tests.
	h := int64(0)
	for _, c := range name {
		h = h*131 + int64(c)
	}
	return &tailer{f: f, name: name, rng: rand.New(rand.NewSource(f.opt.Seed ^ h))}
}

// teardown removes the replica from the engine and closes its session.
// Readers that already hold the snapshot keep a valid frozen view.
func (t *tailer) teardown() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	if t.rep != nil {
		t.f.opt.Engine.DropReplica(t.name)
		t.rep = nil
	}
	if t.solver != nil {
		t.solver.Close()
		t.solver = nil
	}
}

// run is the tailer's connection loop: connect, consume frames until the
// stream dies, back off, reconnect from the last applied seq.
func (t *tailer) run() {
	defer t.f.wg.Done()
	attempt := 0
	for {
		if t.f.ctx.Err() != nil {
			return
		}
		if attempt > 0 {
			t.f.reconnects.Add(1)
			if !t.sleep(t.backoff(attempt)) {
				return
			}
		}
		attempt++
		rc, err := t.f.opt.Transport.Stream(t.f.ctx, t.name, t.applied.Load(), t.epoch.Load())
		if err != nil {
			continue
		}
		if t.consume(rc) {
			// Made progress: the next disconnect starts backoff from the
			// bottom instead of where this connection left it.
			attempt = 1
		}
		rc.Close()
	}
}

// backoff is the jittered exponential schedule: min·2^k up to max, each
// scaled by a uniform [0.5, 1.0) factor so a fleet of followers does not
// reconnect in phase.
func (t *tailer) backoff(attempt int) time.Duration {
	d := t.f.opt.RetryMin << uint(attempt-1)
	if d > t.f.opt.RetryMax || d <= 0 {
		d = t.f.opt.RetryMax
	}
	return time.Duration(float64(d) * (0.5 + 0.5*t.rng.Float64()))
}

func (t *tailer) sleep(d time.Duration) bool {
	select {
	case <-t.f.ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// consume drains one stream connection, buffering each group and applying
// it at its commit frame.  Returns whether any group was applied (resets
// the caller's backoff).  A partial group at disconnect is discarded —
// the reconnect's from=applied re-fetches it whole.
func (t *tailer) consume(rc io.ReadCloser) bool {
	// Stall watchdog: if no frame lands for Stall, sever the connection
	// so the read below unblocks and the caller reconnects.
	watch := time.AfterFunc(t.f.opt.Stall, func() { rc.Close() })
	defer watch.Stop()
	stop := context.AfterFunc(t.f.ctx, func() { rc.Close() })
	defer stop()

	br := bufio.NewReaderSize(rc, 64<<10)
	var pend []*service.StreamFrame // current group's frames, commit pending
	var pendSeq uint64
	progressed := false
	for {
		fr, err := service.ReadStreamFrame(br)
		if err != nil {
			return progressed
		}
		watch.Reset(t.f.opt.Stall)
		t.f.frames.Add(1)
		t.f.streamBytes.Add(uint64(16 + 8*len(fr.Batch)))
		switch fr.Kind {
		case service.FrameCreate, service.FrameCheckpoint:
			if fr.Epoch == t.epoch.Load() && fr.Seq <= t.applied.Load() {
				// Stale rewind of our own history (server resent the head
				// record we already hold): ignore.
				pend, pendSeq = nil, 0
				continue
			}
			pend, pendSeq = []*service.StreamFrame{fr}, fr.Seq
		case service.FrameAdd, service.FrameRemove:
			if pendSeq != 0 && fr.Seq != pendSeq {
				// A new group began without a commit for the previous one —
				// should not happen, but never splice two groups together.
				pend = nil
			}
			pend, pendSeq = append(pend, fr), fr.Seq
		case service.FrameCommit:
			if pendSeq != 0 && fr.Seq == pendSeq {
				if !t.applyGroup(pend) {
					return progressed // forced resync: reconnect from scratch
				}
				progressed = true
				pend, pendSeq = nil, 0
			}
			t.head.Store(fr.Head)
			if t.applied.Load() >= fr.Head {
				t.freshAt.Store(time.Now().UnixNano())
			}
		}
	}
}

// applyGroup applies one committed group through the replica session and
// publishes at exactly the group's seq.  Returns false when the session
// rejected the group — the tailer then falls back to a full resync
// (epoch 0 forces the server to stream the head record).
func (t *tailer) applyGroup(group []*service.StreamFrame) bool {
	seq := group[0].Seq
	if head := group[0]; head.Kind == service.FrameCreate || head.Kind == service.FrameCheckpoint {
		if !t.reset(head) {
			return false
		}
		group = group[1:]
		if len(group) > 0 {
			// A head record always commits alone (it IS the group).
			return false
		}
		t.applied.Store(seq)
		t.f.groups.Add(1)
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.solver == nil {
		return false
	}
	edges := t.edges
	for _, fr := range group {
		var err error
		if fr.Kind == service.FrameRemove {
			err = t.solver.RemoveEdges(fr.Batch)
			edges -= int64(len(fr.Batch))
		} else {
			err = t.solver.AddEdges(fr.Batch)
			edges += int64(len(fr.Batch))
		}
		if err != nil {
			// The log is the truth; a rejection means this replica diverged.
			// Force a full resync rather than serve a forked state.
			t.f.applyErrs.Add(1)
			t.applied.Store(0)
			t.epoch.Store(0)
			return false
		}
	}
	t.solver.AdvanceSnapshotVersion(seq - 1)
	if _, err := t.solver.PublishSnapshot(); err != nil {
		t.f.applyErrs.Add(1)
		t.applied.Store(0)
		t.epoch.Store(0)
		return false
	}
	t.edges = edges
	t.rep.SetEdges(edges)
	t.rep.AddApplied()
	t.applied.Store(seq)
	t.f.groups.Add(1)
	return true
}

// reset rebuilds the replica from a full-state head record (create or
// checkpoint) and swaps it into the engine, publishing at the record's
// seq.
func (t *tailer) reset(head *service.StreamFrame) bool {
	s, err := parcc.NewSolver(t.f.opt.Solver)
	if err != nil {
		return false
	}
	g := parcc.NewGraph(head.N)
	g.Edges = append(g.Edges, head.Batch...)
	if err := s.Attach(g); err != nil {
		s.Close()
		t.f.applyErrs.Add(1)
		return false
	}
	s.AdvanceSnapshotVersion(head.Seq - 1)
	if _, err := s.PublishSnapshot(); err != nil {
		s.Close()
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		s.Close()
		return false
	}
	// InstallReplica atomically replaces an existing replica shard, so a
	// reset never makes the graph 404 between drop and re-install.
	old := t.solver
	rep, err := t.f.opt.Engine.InstallReplica(t.name, head.N, s)
	if err != nil {
		s.Close()
		return false
	}
	if old != nil {
		old.Close() // late readers still hold valid frozen snapshots
	}
	t.solver = s
	t.rep = rep
	t.edges = int64(len(head.Batch))
	rep.SetEdges(t.edges)
	t.epoch.Store(head.Epoch)
	t.f.resets.Add(1)
	return true
}
