// Package faultconn wraps a repl.Transport with deterministic fault
// injection for replication-robustness tests: connection attempts that
// fail, reads that stall, and connections that are severed after a byte
// budget — which, being frame-oblivious, routinely cuts the stream in
// the middle of a frame (exactly the torn read a real network delivers).
//
// All randomness derives from Plan.Seed: given the same seed and the
// same sequence of Stream calls, the injected schedule is identical, so
// a failing schedule is replayable.
package faultconn

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"time"

	"parcc/internal/repl"
)

// ErrInjected marks every failure this package fabricates.
var ErrInjected = errors.New("faultconn: injected fault")

// Plan is a deterministic fault schedule.
type Plan struct {
	// Seed drives every random choice below.
	Seed int64
	// ConnectFailEvery makes every k-th Stream call fail outright
	// (0: connects never fail).
	ConnectFailEvery int
	// SeverAfterMin/Max bound the per-connection byte budget: after a
	// uniformly drawn budget in [Min, Max] bytes, the connection is
	// severed — usually mid-frame (0 Max: never severed).
	SeverAfterMin, SeverAfterMax int
	// Delay is the maximum uniform per-read delay (0: no delays).
	Delay time.Duration
}

// Transport injects Plan's faults into an inner repl.Transport.
type Transport struct {
	inner repl.Transport
	plan  Plan

	mu    sync.Mutex
	rng   *rand.Rand
	conns int

	// Severs counts injected connection cuts; Fails counts injected
	// connect failures (read with the Counts method).
	severs, fails int
}

// New wraps inner with plan.
func New(inner repl.Transport, plan Plan) *Transport {
	return &Transport{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Counts reports (injected connect failures, injected severs) so tests
// can assert the schedule actually fired.
func (t *Transport) Counts() (fails, severs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fails, t.severs
}

// Names passes discovery through unfaulted — the tailer stream is the
// machinery under test.
func (t *Transport) Names(ctx context.Context) ([]string, error) {
	return t.inner.Names(ctx)
}

// Stream opens the inner stream behind a fault-injecting reader, or
// fails outright per the plan.
func (t *Transport) Stream(ctx context.Context, name string, from, epoch uint64) (io.ReadCloser, error) {
	t.mu.Lock()
	t.conns++
	fail := t.plan.ConnectFailEvery > 0 && t.conns%t.plan.ConnectFailEvery == 0
	budget := -1
	if t.plan.SeverAfterMax > 0 {
		lo, hi := t.plan.SeverAfterMin, t.plan.SeverAfterMax
		if hi < lo {
			hi = lo
		}
		budget = lo + t.rng.Intn(hi-lo+1)
	}
	var delay time.Duration
	if t.plan.Delay > 0 {
		delay = time.Duration(t.rng.Int63n(int64(t.plan.Delay)))
	}
	if fail {
		t.fails++
	}
	t.mu.Unlock()
	if fail {
		return nil, ErrInjected
	}
	rc, err := t.inner.Stream(ctx, name, from, epoch)
	if err != nil {
		return nil, err
	}
	return &faultReader{t: t, rc: rc, budget: budget, delay: delay}, nil
}

// faultReader enforces one connection's byte budget and read delay.
type faultReader struct {
	t      *Transport
	rc     io.ReadCloser
	budget int // bytes until sever; -1 = unlimited
	delay  time.Duration
}

func (r *faultReader) Read(p []byte) (int, error) {
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	if r.budget == 0 {
		r.t.mu.Lock()
		r.t.severs++
		r.t.mu.Unlock()
		r.rc.Close()
		return 0, ErrInjected
	}
	if r.budget > 0 && len(p) > r.budget {
		p = p[:r.budget]
	}
	n, err := r.rc.Read(p)
	if r.budget > 0 {
		r.budget -= n
	}
	return n, err
}

func (r *faultReader) Close() error { return r.rc.Close() }
