// Replication-layer tests: a real primary engine behind its HTTP handler,
// a real follower engine fed by a Follower, and (for the robustness
// matrix) a seeded fault-injection transport between them.  External test
// package so faultconn (which imports repl) can sit in the middle.
package repl_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"parcc"
	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/repl"
	"parcc/internal/repl/faultconn"
	"parcc/internal/service"
)

// newPrimary is a WAL-backed engine behind its handler, with a fast
// stream heartbeat so followers' freshness clocks tick quickly.
func newPrimary(t *testing.T) (*service.Engine, *httptest.Server) {
	t.Helper()
	e := service.New(service.Options{Solver: &parcc.Options{}, WALDir: t.TempDir()})
	srv := httptest.NewServer(service.NewHandlerOpts(e, service.HandlerOptions{
		StreamHeartbeat: 20 * time.Millisecond,
	}))
	t.Cleanup(func() { srv.Close(); e.Close() })
	return e, srv
}

// newFollower wires a read-only engine to a Follower over tr, with test
// timings tight enough that convergence is fast but backoff still real.
func newFollower(t *testing.T, tr repl.Transport) (*service.Engine, *repl.Follower) {
	t.Helper()
	fe := service.New(service.Options{ReadOnly: true, Primary: "http://primary.test"})
	f, err := repl.New(repl.Options{
		Primary:   "http://primary.test",
		Engine:    fe,
		Transport: tr,
		Poll:      20 * time.Millisecond,
		RetryMin:  2 * time.Millisecond,
		RetryMax:  50 * time.Millisecond,
		Stall:     400 * time.Millisecond,
		MaxLag:    30 * time.Second,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(func() { f.Stop(); fe.Close() })
	return fe, f
}

// driveWrites applies `batches` randomized sequential add/remove batches
// through the primary, mirroring each into the oracle, and extends
// history so history[v] is the expected partition at snapshot version v.
func driveWrites(t *testing.T, e *service.Engine, name string, oracle *baseline.IncOracle,
	history map[uint64][]int32, fromVersion uint64, batches int, seed int64) uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v := fromVersion
	for b := 0; b < batches; b++ {
		live := oracle.Graph()
		if rng.Intn(10) < 7 || live.M() == 0 {
			k := 1 + rng.Intn(4)
			batch := make([]parcc.Edge, k)
			for i := range batch {
				batch[i] = parcc.Edge{U: int32(rng.Intn(live.N)), V: int32(rng.Intn(live.N))}
			}
			if err := e.AddEdges(name, batch); err != nil {
				t.Fatalf("batch %d: %v", b, err)
			}
			if err := oracle.AddEdges(batch); err != nil {
				t.Fatal(err)
			}
		} else {
			k := 1 + rng.Intn(3)
			if k > live.M() {
				k = live.M()
			}
			idx := rng.Perm(live.M())[:k]
			batch := make([]parcc.Edge, 0, k)
			for _, i := range idx {
				batch = append(batch, live.Edges[i])
			}
			if err := e.RemoveEdges(name, batch); err != nil {
				t.Fatalf("batch %d: %v", b, err)
			}
			if err := oracle.RemoveEdges(batch); err != nil {
				t.Fatal(err)
			}
		}
		v++
		history[v] = append([]int32(nil), oracle.Labels()...)
	}
	return v
}

// watchFollower polls the follower's snapshot until it reaches version
// `want` with the oracle's partition, failing on any published version
// that does not match its history entry — the "never serve an unapplied
// version" property — or on a version going backwards.
func watchFollower(t *testing.T, fe *service.Engine, name string,
	history map[uint64][]int32, want uint64, deadline time.Duration) {
	t.Helper()
	var last uint64
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		sn, err := fe.Snapshot(name)
		if err != nil {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		v := sn.Version()
		if v < last {
			t.Fatalf("follower version went backwards: %d after %d", v, last)
		}
		last = v
		wantLabels, ok := history[v]
		if !ok {
			t.Fatalf("follower published version %d, which the primary never assigned", v)
		}
		if !graph.SamePartition(wantLabels, sn.Labels()) {
			t.Fatalf("follower partition at version %d differs from the oracle", v)
		}
		if v == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("follower stuck at version %d, want %d after %v", last, want, deadline)
}

// followerEdges reads the follower shard's live edge count — a
// double-applied add or remove group shows up here even when the label
// partition happens to be insensitive to it.
func followerEdges(t *testing.T, fe *service.Engine, name string) int64 {
	t.Helper()
	for _, st := range fe.Stats() {
		if st.Name == name {
			return st.Edges
		}
	}
	t.Fatalf("no stats for %q", name)
	return 0
}

// TestFollowerConverges: clean network — the follower replays the full
// history, matches the oracle at every published version, and tracks new
// writes live.
func TestFollowerConverges(t *testing.T) {
	e, srv := newPrimary(t)
	g0 := gen.GNM(64, 80, 11)
	oracle := baseline.NewIncOracle(g0.Clone())
	if err := e.Create("g", g0.Clone()); err != nil {
		t.Fatal(err)
	}
	history := map[uint64][]int32{1: append([]int32(nil), oracle.Labels()...)}
	final := driveWrites(t, e, "g", oracle, history, 1, 20, 101)

	fe, f := newFollower(t, repl.NewHTTPTransport(srv.URL))
	watchFollower(t, fe, "g", history, final, 15*time.Second)
	if got, want := followerEdges(t, fe, "g"), int64(oracle.Graph().M()); got != want {
		t.Fatalf("follower edge count %d, want %d", got, want)
	}

	// Live writes replicate too.
	final = driveWrites(t, e, "g", oracle, history, final, 8, 202)
	watchFollower(t, fe, "g", history, final, 15*time.Second)

	if err := f.Ready(); err != nil {
		t.Fatalf("converged follower not ready: %v", err)
	}
	sts := f.Status()
	if len(sts) != 1 || sts[0].Applied != final || !sts[0].Fresh {
		t.Fatalf("status: %+v (want applied=%d fresh)", sts, final)
	}
}

// TestFollowerFaultInjection is the robustness matrix: seeded connect
// failures, read delays, and mid-frame severs between primary and
// follower.  The follower must still converge to the oracle, never
// publish an unapplied version, and never double-apply a group a severed
// connection made it re-fetch.
func TestFollowerFaultInjection(t *testing.T) {
	for _, seed := range []int64{7, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			e, srv := newPrimary(t)
			g0 := gen.GNM(48, 60, 5)
			oracle := baseline.NewIncOracle(g0.Clone())
			if err := e.Create("g", g0.Clone()); err != nil {
				t.Fatal(err)
			}
			history := map[uint64][]int32{1: append([]int32(nil), oracle.Labels()...)}
			final := driveWrites(t, e, "g", oracle, history, 1, 30, seed*13)

			ft := faultconn.New(repl.NewHTTPTransport(srv.URL), faultconn.Plan{
				Seed:             seed,
				ConnectFailEvery: 2,
				SeverAfterMin:    100,
				SeverAfterMax:    600,
				Delay:            500 * time.Microsecond,
			})
			fe, _ := newFollower(t, ft)
			watchFollower(t, fe, "g", history, final, 30*time.Second)
			if got, want := followerEdges(t, fe, "g"), int64(oracle.Graph().M()); got != want {
				t.Fatalf("follower edge count %d, want %d (double-applied group?)", got, want)
			}

			// Keep writing under continuing faults.
			final = driveWrites(t, e, "g", oracle, history, final, 10, seed*29)
			watchFollower(t, fe, "g", history, final, 30*time.Second)
			if got, want := followerEdges(t, fe, "g"), int64(oracle.Graph().M()); got != want {
				t.Fatalf("post-fault edge count %d, want %d", got, want)
			}
			fails, severs := ft.Counts()
			if fails == 0 || severs == 0 {
				t.Fatalf("fault schedule never fired: fails=%d severs=%d", fails, severs)
			}
		})
	}
}

// TestFollowerRestart: a follower stopped mid-stream and replaced by a
// fresh one (same serving engine) catches back up without double-applying
// — the restarted tailer resyncs from the primary's head record.
func TestFollowerRestart(t *testing.T) {
	e, srv := newPrimary(t)
	g0 := gen.GNM(32, 40, 3)
	oracle := baseline.NewIncOracle(g0.Clone())
	if err := e.Create("g", g0.Clone()); err != nil {
		t.Fatal(err)
	}
	history := map[uint64][]int32{1: append([]int32(nil), oracle.Labels()...)}
	final := driveWrites(t, e, "g", oracle, history, 1, 10, 41)

	fe := service.New(service.Options{ReadOnly: true, Primary: "http://primary.test"})
	t.Cleanup(func() { fe.Close() })
	mk := func(seed int64) *repl.Follower {
		f, err := repl.New(repl.Options{
			Primary:   "http://primary.test",
			Engine:    fe,
			Transport: repl.NewHTTPTransport(srv.URL),
			Poll:      20 * time.Millisecond,
			RetryMin:  2 * time.Millisecond,
			RetryMax:  50 * time.Millisecond,
			Stall:     400 * time.Millisecond,
			MaxLag:    30 * time.Second,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.Start()
		return f
	}
	f1 := mk(1)
	watchFollower(t, fe, "g", history, final, 15*time.Second)
	f1.Stop()

	// Writes the first follower never saw.
	final = driveWrites(t, e, "g", oracle, history, final, 6, 42)

	f2 := mk(2)
	defer f2.Stop()
	watchFollower(t, fe, "g", history, final, 15*time.Second)
	if got, want := followerEdges(t, fe, "g"), int64(oracle.Graph().M()); got != want {
		t.Fatalf("post-restart edge count %d, want %d", got, want)
	}
}

// TestFollowerDropRecreate: dropping and re-creating a graph on the
// primary rotates the log epoch; the follower must abandon the old
// history and converge on the new graph instead of splicing the two.
func TestFollowerDropRecreate(t *testing.T) {
	e, srv := newPrimary(t)
	if err := e.Create("g", gen.Cycle(8)); err != nil {
		t.Fatal(err)
	}
	fe, _ := newFollower(t, repl.NewHTTPTransport(srv.URL))
	waitSnapshot := func(wantN int, deadline time.Duration) *parcc.Snapshot {
		stop := time.Now().Add(deadline)
		for time.Now().Before(stop) {
			sn, err := fe.Snapshot("g")
			if err == nil && len(sn.Labels()) == wantN {
				return sn
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("follower never served n=%d", wantN)
		return nil
	}
	sn := waitSnapshot(8, 15*time.Second)
	if sn.NumComponents() != 1 {
		t.Fatalf("cycle components: %d", sn.NumComponents())
	}

	if err := e.Drop("g"); err != nil {
		t.Fatal(err)
	}
	g2 := gen.GNM(12, 0, 9)
	if err := e.Create("g", g2); err != nil {
		t.Fatal(err)
	}
	sn = waitSnapshot(12, 15*time.Second)
	if sn.NumComponents() != 12 {
		t.Fatalf("re-created graph components: %d, want 12", sn.NumComponents())
	}
}
