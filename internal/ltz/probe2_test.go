package ltz

import (
	"os"
	"testing"

	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/pram"
)

func TestProbePathScaling(t *testing.T) {
	if os.Getenv("PARCC_PROBE") == "" {
		t.Skip("diagnostic only; set PARCC_PROBE=1 to run")
	}
	for _, lg := range []int{6, 8, 10, 12, 14, 16} {
		g := gen.Path(1 << lg)
		var tot int64
		for seed := uint64(1); seed <= 5; seed++ {
			p := DefaultParams(g.N)
			p.Seed = seed
			m := pram.New(pram.Seed(seed))
			f := labeled.New(g.N)
			V := make([]int32, g.N)
			m.Iota32(V)
			tot += SolveOn(m, f, V, g.Edges, p)
		}
		t.Logf("path 2^%d: avg rounds=%.1f", lg, float64(tot)/5)
	}
}
