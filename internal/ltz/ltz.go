// Package ltz implements the PRAM connectivity algorithm of Liu, Tarjan and
// Zhong [LTZ20] — Theorem 2 of the paper — in the form the paper itself
// restates it: the EXPAND-MAXLINK subroutine of §5.2.1 (Steps 1–10) with
// per-vertex levels ℓ(v), budgets β_ℓ, hash tables, and dormancy, iterated
// until every edge of the current graph is a loop.  It runs in
// O(log d + log log n) rounds and is invoked throughout Stages 2–3 and the
// overall CONNECTIVITY driver, both round-limited and to completion.
//
// Representation note (recorded in DESIGN.md): the paper stores added edges
// as items inside each vertex's historical hash-table blocks ("the
// non-maximum-size blocks contain the added edges").  We keep the hash
// tables as per-round scratch — used exactly as the pseudocode does for
// duplicate detection, budget-bounded expansion and dormancy — and append
// their contents to an explicit added-edge list, which is the same edge set
// in a flat representation.  MAXLINK's argmax uses an atomic max on a packed
// (level, vertex) word, the O(1)-time equivalent of the indexed-table argmax
// in the proof of Lemma 5.8.
package ltz

import (
	"math"

	"parcc/internal/graph"
	"parcc/internal/labeled"
	"parcc/internal/obs"
	"parcc/internal/pram"
	"parcc/internal/solve"
)

// Params configures EXPAND-MAXLINK.  Paper values are given in comments;
// defaults are the practical profile (see DESIGN.md §4).
type Params struct {
	// Beta1 is the level-1 budget/table size (paper: (log n)^80, Eq. 2).
	Beta1 int
	// BetaGrowth is the per-level budget multiplier (paper: β_ℓ = β1^(1.01^(ℓ-1)),
	// i.e. slightly super-geometric; practical: geometric factor 2).
	BetaGrowth float64
	// LevelUpExp is x in the Step-3 level-up probability β(v)^(-x)
	// (paper: 0.06).
	LevelUpExp float64
	// TableCap bounds any single table size (memory guard; the paper's
	// unbounded processor pool has no analogue of this).
	TableCap int
	// MaxRounds bounds Solve; 0 means 4·log2(n)+64.  The bound exists only
	// as a safety net: if it is ever hit, Solve falls back to deterministic
	// min-hooking so the result is still correct.
	MaxRounds int
	// DedupThreshold triggers a dedup of the added-edge list when it grows
	// past this multiple of the original edge count (default 4).
	DedupThreshold int
	// Seed drives all coin flips and hash choices.
	Seed uint64
}

// DefaultParams returns the practical profile for an n-vertex instance.
func DefaultParams(n int) Params {
	return Params{
		Beta1:          8,
		BetaGrowth:     2,
		LevelUpExp:     0.25,
		TableCap:       1 << 14,
		DedupThreshold: 4,
		Seed:           0x1cebe11a,
	}
}

// PaperParams returns the paper's formulas, clamped to feasible sizes (the
// clamp is unavoidable: (log n)^80 overflows memory for any real n).
func PaperParams(n int) Params {
	p := DefaultParams(n)
	lg := math.Log2(float64(n) + 2)
	b := math.Pow(lg, 80)
	if b > 1<<14 {
		b = 1 << 14
	}
	p.Beta1 = int(b)
	if p.Beta1 < 4 {
		p.Beta1 = 4
	}
	p.BetaGrowth = 1.01 // per-level exponent growth approximated geometrically
	p.LevelUpExp = 0.06
	return p
}

// State is the mutable state of an EXPAND-MAXLINK run over a sub-instance:
// a vertex set V(H) and an edge set, sharing the global labeled digraph.
type State struct {
	M      *pram.Machine
	F      *labeled.Forest
	V      []int32      // V(H): the vertices of this sub-instance
	Edges  []graph.Edge // altered original edges of H (loops removed)
	Extra  []graph.Edge // added edges (hash-table items), altered alongside
	Level  []int32      // global level field ℓ(v); len == F.Len()
	P      Params
	cx     *solve.Ctx
	best   []int64 // maxlink scratch; len == F.Len()
	origM  int
	round  int64
	budget []int64 // budget by level (precomputed, capped)
	upP64  []uint64
}

// NewState prepares a run over vertex set V and edge set E (copied).  The
// level field is fresh (all ones, per §5.2.1).
func NewState(m *pram.Machine, f *labeled.Forest, V []int32, E []graph.Edge, p Params) *State {
	return NewStateOn(solve.New(m), f, V, E, p)
}

// NewStateOn is NewState drawing the level field, the maxlink scratch, the
// edge copy, and every per-round table from the context's arena.  Pair it
// with Free.
func NewStateOn(cx *solve.Ctx, f *labeled.Forest, V []int32, E []graph.Edge, p Params) *State {
	m := cx.M
	s := &State{
		M:     m,
		F:     f,
		V:     V,
		Edges: cx.CopyEdges(E),
		Level: cx.Grab32(f.Len()),
		P:     p,
		cx:    cx,
		best:  cx.Grab64(f.Len()),
		origM: len(E) + 1,
	}
	for i := range s.Level {
		s.Level[i] = 1
	}
	s.precompute()
	// Drop initial loops.
	s.Edges = labeled.Alter(m, f, s.Edges)
	return s
}

// Free returns the state's arena buffers.  The state (and the edge slices
// it handed out via CurrentEdges) must not be used afterwards.
func (s *State) Free() {
	s.cx.Release32(s.Level)
	s.cx.Release64(s.best)
	s.cx.ReleaseEdges(s.Edges)
	s.Level, s.best, s.Edges = nil, nil, nil
}

func (s *State) precompute() {
	const maxLevel = 64
	s.budget = make([]int64, maxLevel)
	s.upP64 = make([]uint64, maxLevel)
	b := float64(s.P.Beta1)
	for l := 0; l < maxLevel; l++ {
		if b > float64(s.P.TableCap) {
			b = float64(s.P.TableCap)
		}
		s.budget[l] = int64(b)
		if s.budget[l] < 4 {
			s.budget[l] = 4
		}
		s.upP64[l] = pram.P64(math.Pow(float64(s.budget[l]), -s.P.LevelUpExp))
		b *= s.P.BetaGrowth
	}
}

func (s *State) budgetOf(level int32) int64 {
	if int(level) >= len(s.budget) {
		return s.budget[len(s.budget)-1]
	}
	if level < 1 {
		level = 1
	}
	return s.budget[level-1]
}

// CurrentEdges returns all edges of the current graph (altered originals
// plus added edges): the paper's E_close ingredient.
func (s *State) CurrentEdges() []graph.Edge {
	out := make([]graph.Edge, 0, len(s.Edges)+len(s.Extra))
	out = append(out, s.Edges...)
	out = append(out, s.Extra...)
	return out
}

// Done reports whether every edge of the current graph is a loop (they have
// all been removed by ALTER), i.e. every component of H is contracted.
func (s *State) Done() bool { return len(s.Edges) == 0 && len(s.Extra) == 0 }

// Rounds returns the number of EXPAND-MAXLINK rounds executed.
func (s *State) Rounds() int64 { return s.round }

// Run executes up to `rounds` EXPAND-MAXLINK rounds, stopping early when the
// instance is fully contracted.  It returns the rounds actually executed.
func (s *State) Run(rounds int) int {
	for r := 0; r < rounds; r++ {
		if s.Done() {
			return r
		}
		s.Round()
	}
	return rounds
}

// Round executes one EXPAND-MAXLINK(H) (§5.2.1 Steps 1–10).
func (s *State) Round() {
	m, f := s.M, s.F
	s.round++
	n := f.Len()

	// Step 2: MAXLINK(V); ALTER(E).
	s.maxlink()
	s.Edges = labeled.Alter(m, f, s.Edges)
	s.Extra = labeled.Alter(m, f, s.Extra)

	// Identify active roots and allocate this round's tables.
	roots := s.cx.Grab32Cap(len(s.V))
	for _, v := range s.V {
		if f.IsRoot(v) {
			roots = append(roots, v)
		}
	}
	m.ChargeTime(1)
	m.ChargeWork(int64(len(s.V)))

	// Step 3: each root levels up w.p. β(v)^(-exp).
	lvl := s.Level
	step := s.round * 131
	m.For(len(roots), func(i int) {
		v := roots[i]
		if m.Coin(step, int(v), s.upP64[minInt(int(lvl[v])-1, len(s.upP64)-1)]) {
			lvl[v]++
		}
	})

	// Table layout: per-root offset into a shared slab.
	tblPos := s.cx.Grab64(n) // position+1 of v's table; 0 = none
	var slabSize int64
	offs := s.cx.Grab64(len(roots) + 1)
	for i, v := range roots {
		offs[i] = slabSize
		slabSize += s.budgetOf(lvl[v])
	}
	offs[len(roots)] = slabSize
	m.ChargeTime(1)
	m.ChargeWork(int64(len(roots)))
	slab := s.cx.Grab32(int(slabSize)) // entries store vertex+1; 0 = empty
	dormant := s.cx.Grab32(n)
	collide := s.cx.Grab32(n)
	for i, v := range roots {
		tblPos[v] = offs[i] + 1
	}

	hashInto := func(v int32, w int32) {
		// hash w into H(v); record collisions on v.
		pos := tblPos[v] - 1
		size := s.budgetOf(lvl[v])
		slot := pos + int64(pram.SplitMix64(s.P.Seed^uint64(s.round)<<40^uint64(uint32(w)))%uint64(size))
		pram.Store32(slab, int(slot), w+1)
	}
	verify := func(v, w int32) {
		pos := tblPos[v] - 1
		size := s.budgetOf(lvl[v])
		slot := pos + int64(pram.SplitMix64(s.P.Seed^uint64(s.round)<<40^uint64(uint32(w)))%uint64(size))
		if pram.Load32(slab, int(slot)) != w+1 {
			pram.SetFlag(collide, int(v))
		}
	}

	// Step 4: for each root v, hash each equal-budget root w ∈ N*(v) into
	// H(v).  Edge-centric over the current graph, both directions, then a
	// verification pass that detects collisions (the winner of a slot is
	// arbitrary; a loser observing a different value means two distinct
	// keys collided).
	forEachCurrent := func(body func(u, v int32)) {
		m.For(len(s.Edges), func(i int) {
			e := s.Edges[i]
			body(e.U, e.V)
			body(e.V, e.U)
		})
		m.For(len(s.Extra), func(i int) {
			e := s.Extra[i]
			body(e.U, e.V)
			body(e.V, e.U)
		})
	}
	hashEq := func(v, w int32) {
		// hash w into H(v) when both are roots of equal budget
		if tblPos[v] == 0 || tblPos[w] == 0 {
			return
		}
		if s.budgetOf(lvl[v]) != s.budgetOf(lvl[w]) {
			return
		}
		hashInto(v, w)
	}
	forEachCurrent(func(u, v int32) { hashEq(v, u) })
	forEachCurrent(func(u, v int32) {
		if tblPos[v] == 0 || tblPos[u] == 0 || s.budgetOf(lvl[v]) != s.budgetOf(lvl[u]) {
			return
		}
		verify(v, u)
	})

	// Step 5: roots with collisions become dormant; then any vertex whose
	// table contains a dormant vertex becomes dormant.
	m.For(len(roots), func(i int) {
		v := roots[i]
		if pram.Flag(collide, int(v)) {
			pram.SetFlag(dormant, int(v))
		}
	})
	scanWork := slabSize
	m.ForWork(len(roots), scanWork, func(i int) {
		v := roots[i]
		lo, hi := offs[i], offs[i+1]
		for j := lo; j < hi; j++ {
			w := pram.Load32(slab, int(j))
			if w != 0 && pram.Flag(dormant, int(w-1)) {
				pram.SetFlag(dormant, int(v))
				return
			}
		}
	})

	// Step 6: two-hop expansion — for each root v, for each w ∈ H(v), hash
	// every u ∈ H(w) into H(v); collisions make v dormant.  New pairs are
	// the "added edges" collected below.
	var pairWork int64
	pairCount := []int64{0}
	m.Contract(1, 0, func() {
		m.For(len(roots), func(i int) {
			v := roots[i]
			if pram.Flag(dormant, int(v)) {
				return
			}
			lo, hi := offs[i], offs[i+1]
			var local int64
			for j := lo; j < hi; j++ {
				w := pram.Load32(slab, int(j))
				if w == 0 {
					continue
				}
				wi := w - 1
				if tblPos[wi] == 0 || wi == v {
					continue
				}
				wlo := tblPos[wi] - 1
				whi := wlo + s.budgetOf(lvl[wi])
				for k := wlo; k < whi; k++ {
					u := pram.Load32(slab, int(k))
					if u == 0 {
						continue
					}
					local++
					hashInto(v, u-1)
				}
			}
			pram.Add64(pairCount, 0, local)
		})
		// Verify pass for step-6 collisions.
		m.For(len(roots), func(i int) {
			v := roots[i]
			if pram.Flag(dormant, int(v)) {
				return
			}
			lo, hi := offs[i], offs[i+1]
			for j := lo; j < hi; j++ {
				w := pram.Load32(slab, int(j))
				if w != 0 {
					verify(v, w-1)
				}
			}
			if pram.Flag(collide, int(v)) {
				pram.SetFlag(dormant, int(v))
			}
		})
	})
	pairWork = pairCount[0]
	m.ChargeWork(pairWork + slabSize)

	// Collect added edges (the table items) into the explicit list.
	m.Contract(1, slabSize, func() {
		for i, v := range roots {
			lo, hi := offs[i], offs[i+1]
			for j := lo; j < hi; j++ {
				w := slab[j]
				if w != 0 && w-1 != v {
					s.Extra = append(s.Extra, graph.Edge{U: v, V: w - 1})
				}
			}
		}
	})

	// Step 7: MAXLINK(V); SHORTCUT(V); ALTER(E(V)).
	s.maxlink()
	labeled.Shortcut(m, f, s.V)
	s.Edges = labeled.Alter(m, f, s.Edges)
	s.Extra = labeled.Alter(m, f, s.Extra)

	// Step 8: dormant roots that did not level up in Step 3 level up now.
	// (We approximate "did not increase level in Step 3" by capping one
	// increase per round: Step 3 winners already advanced, so advancing
	// dormant roots unconditionally would double-step them; track parity.)
	m.For(len(roots), func(i int) {
		v := roots[i]
		if f.IsRoot(v) && pram.Flag(dormant, int(v)) && !m.Coin(step, int(v), s.upP64[minInt(int(lvl[v])-1, len(s.upP64)-1)]) {
			lvl[v]++
		}
	})

	// Step 9 is implicit: next round's table sizes derive from the levels.

	s.cx.Release32(slab)
	s.cx.Release32(dormant)
	s.cx.Release32(collide)
	s.cx.Release64(tblPos)
	s.cx.Release64(offs)
	s.cx.Release32(roots)

	// Keep the added-edge list tidy (duplicates are semantically harmless
	// but cost work): dedup when it outgrows the threshold.
	if s.P.DedupThreshold > 0 && len(s.Extra) > s.P.DedupThreshold*s.origM {
		s.dedupExtra()
	}
}

// maxlink is MAXLINK(V) (§5.2.1): two iterations of linking each vertex to
// the maximum-level parent among its closed neighborhood's parents.
func (s *State) maxlink() {
	m, f := s.M, s.F
	p := f.P
	lvl := s.Level
	best := s.best
	pack := func(w int32) int64 { return int64(lvl[w])<<32 | int64(uint32(w)) }
	for it := 0; it < 2; it++ {
		m.For(len(s.V), func(i int) {
			v := s.V[i]
			pv := pram.Load32(p, int(v))
			pram.Store64(best, int(v), pack(pv))
		})
		prop := func(x, y int32) {
			py := pram.Load32(p, int(y))
			pram.Max64(best, int(x), pack(py))
		}
		m.For(len(s.Edges), func(i int) {
			e := s.Edges[i]
			prop(e.U, e.V)
			prop(e.V, e.U)
		})
		m.For(len(s.Extra), func(i int) {
			e := s.Extra[i]
			prop(e.U, e.V)
			prop(e.V, e.U)
		})
		m.For(len(s.V), func(i int) {
			v := s.V[i]
			b := pram.Load64(best, int(v))
			u := int32(uint32(b))
			if int32(b>>32) > lvl[v] {
				pram.Store32(p, int(v), u)
			}
		})
	}
}

func (s *State) dedupExtra() {
	m := s.M
	keys := s.cx.Grab64Cap(len(s.Extra))
	for _, e := range s.Extra {
		keys = append(keys, packEdge(e.U, e.V))
	}
	m.Contract(1, int64(len(keys)), func() {})
	seen := make(map[int64]struct{}, len(keys))
	out := s.Extra[:0]
	for _, k := range keys {
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		u, v := int32(k>>32), int32(uint32(k))
		out = append(out, graph.Edge{U: u, V: v})
	}
	s.cx.Release64(keys)
	s.Extra = out
}

func packEdge(u, v int32) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(uint32(v))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// SolveOn runs the Theorem-2 algorithm to completion on the sub-instance
// (V, E), updating the shared forest.  If the safety round cap is hit (never
// observed in practice; the cap exists because our budgets are the practical
// profile, not the paper's polylogs), it falls back to deterministic
// min-hooking so the contraction always completes.  Returns rounds used.
func SolveOn(m *pram.Machine, f *labeled.Forest, V []int32, E []graph.Edge, p Params) int64 {
	return SolveOnCtx(solve.New(m), f, V, E, p)
}

// SolveOnCtx is SolveOn drawing all working state from the solve context.
// Rounds executed are accrued onto the context recorder's ltz_rounds
// counter (a no-op with tracing off).
func SolveOnCtx(cx *solve.Ctx, f *labeled.Forest, V []int32, E []graph.Edge, p Params) int64 {
	s := NewStateOn(cx, f, V, E, p)
	defer s.Free()
	defer func() { cx.Rec.Add(obs.CtrLTZRounds, s.round) }()
	maxR := p.MaxRounds
	if maxR <= 0 {
		maxR = 4*log2(len(f.P)+2) + 64
	}
	for r := 0; r < maxR; r++ {
		if s.Done() {
			return s.round
		}
		s.Round()
	}
	if !s.Done() {
		minHookFallback(cx, f, s.CurrentEdges())
	}
	return s.round
}

// Solve computes the connected components of g from scratch with the LTZ
// algorithm, returning the forest (flattened).
func Solve(m *pram.Machine, g *graph.Graph, p Params) *labeled.Forest {
	return SolveCtx(solve.New(m), g, p)
}

// SolveCtx is Solve on a context: the forest comes from the arena (the
// caller frees it after extracting labels).
func SolveCtx(cx *solve.Ctx, g *graph.Graph, p Params) *labeled.Forest {
	m := cx.M
	f := labeled.NewOn(cx.A, g.N)
	V := cx.Grab32(g.N)
	m.Iota32(V)
	SolveOnCtx(cx, f, V, g.Edges, p)
	cx.Release32(V)
	labeled.FlattenAll(m, f)
	return f
}

// SolveLabels runs Solve and extracts component labels, using the machine's
// parallel runtime for the (uncharged) extraction when one is installed —
// the concurrent-backend entry point for the Theorem-2 baseline.
func SolveLabels(m *pram.Machine, g *graph.Graph, p Params) []int32 {
	return SolveLabelsInto(solve.New(m), g, p, nil)
}

// SolveLabelsInto is SolveLabels on a context, writing into dst when it
// has the capacity.
func SolveLabelsInto(cx *solve.Ctx, g *graph.Graph, p Params, dst []int32) []int32 {
	f := SolveCtx(cx, g, p)
	out := labeled.LabelsOnInto(cx.M.Exec(), f, dst)
	f.Free()
	return out
}

// minHookFallback contracts the remaining edges by repeated minimum-root
// hooking + shortcut.  Deterministic, always terminates, O(log n · |E|)
// work in the worst case; used only as a correctness backstop.
func minHookFallback(cx *solve.Ctx, f *labeled.Forest, E []graph.Edge) {
	m := cx.M
	E = labeled.Alter(m, f, E)
	p := f.P
	tgt := cx.Grab64(f.Len())
	defer cx.Release64(tgt)
	for len(E) > 0 {
		m.For(len(E), func(i int) {
			e := E[i]
			pram.Store64(tgt, int(e.U), int64(e.U))
			pram.Store64(tgt, int(e.V), int64(e.V))
		})
		m.For(len(E), func(i int) {
			e := E[i]
			pram.Min64(tgt, int(e.U), int64(e.V))
			pram.Min64(tgt, int(e.V), int64(e.U))
		})
		m.For(len(E), func(i int) {
			e := E[i]
			hookMin(p, e.U, tgt)
			hookMin(p, e.V, tgt)
		})
		labeled.ShortcutAll(m, f)
		E = labeled.Alter(m, f, E)
	}
}

func hookMin(p []int32, v int32, tgt []int64) {
	if pram.Load32(p, int(v)) != v {
		return
	}
	t := int32(tgt[v])
	if t < v {
		pram.Store32(p, int(v), t)
	}
}
