package ltz

import (
	"testing"
	"testing/quick"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/pram"
)

func solveLabels(t *testing.T, g *graph.Graph, p Params) []int32 {
	t.Helper()
	m := pram.New(pram.Seed(11))
	f := Solve(m, g, p)
	if err := f.CheckAcyclic(); err != nil {
		t.Fatalf("forest has cycles: %v", err)
	}
	return f.Labels()
}

func TestSolveMatchesBFS(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"empty":     graph.New(0),
		"isolated":  graph.New(17),
		"path":      gen.Path(200),
		"cycle":     gen.Cycle(128),
		"grid":      gen.Grid(11, 13),
		"expander":  gen.RandomRegular(256, 4, 3),
		"gnm":       gen.GNM(300, 500, 5),
		"star":      gen.Star(100),
		"complete":  gen.Complete(32),
		"loops":     graph.FromPairs(4, [][2]int{{0, 0}, {1, 2}}),
		"parallel":  graph.FromPairs(3, [][2]int{{0, 1}, {0, 1}, {0, 1}}),
		"union":     gen.Union(gen.Path(40), gen.Cycle(30), graph.New(6)),
		"twocycles": gen.TwoCycles(150),
		"deeppath":  gen.Path(3000),
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			got := solveLabels(t, g, DefaultParams(g.N))
			if !graph.SamePartition(baseline.BFSLabels(g), got) {
				t.Fatalf("%s: wrong partition", name)
			}
		})
	}
}

func TestSolvePaperParams(t *testing.T) {
	g := gen.Union(gen.Cycle(64), gen.RandomRegular(128, 4, 9))
	got := solveLabels(t, g, PaperParams(g.N))
	if !graph.SamePartition(baseline.BFSLabels(g), got) {
		t.Fatal("paper-params solve wrong")
	}
}

func TestSolveSequentialOrders(t *testing.T) {
	g := gen.Union(gen.Grid(7, 9), gen.Cycle(50))
	for _, ord := range []pram.Order{pram.Forward, pram.Reverse, pram.Shuffled} {
		m := pram.New(pram.Sequential(), pram.WriteOrder(ord), pram.Seed(3))
		f := Solve(m, g, DefaultParams(g.N))
		if !graph.SamePartition(baseline.BFSLabels(g), f.Labels()) {
			t.Errorf("%v: wrong partition", ord)
		}
	}
}

func TestSolveRandomGraphsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.GNM(80, 100, seed)
		m := pram.New(pram.Seed(seed))
		fo := Solve(m, g, DefaultParams(g.N))
		return graph.SamePartition(baseline.BFSLabels(g), fo.Labels())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRoundsScaleWithDiameter(t *testing.T) {
	// O(log d + log log n): averaged over seeds, long paths need more
	// EXPAND-MAXLINK rounds than short ones.
	avgRounds := func(g *graph.Graph) float64 {
		var tot int64
		const seeds = 5
		for seed := uint64(1); seed <= seeds; seed++ {
			p := DefaultParams(g.N)
			p.Seed = seed
			m := pram.New(pram.Seed(seed))
			f := labeled.New(g.N)
			V := make([]int32, g.N)
			m.Iota32(V)
			tot += SolveOn(m, f, V, g.Edges, p)
		}
		return float64(tot) / seeds
	}
	short := avgRounds(gen.Path(1 << 6))
	long := avgRounds(gen.Path(1 << 14))
	if long <= short {
		t.Errorf("rounds should grow with diameter: path 2^6 → %.1f, path 2^14 → %.1f", short, long)
	}
}

func TestRunStopsEarlyWhenDone(t *testing.T) {
	g := gen.Complete(8)
	m := pram.New(pram.Seed(1))
	f := labeled.New(g.N)
	V := make([]int32, g.N)
	m.Iota32(V)
	s := NewState(m, f, V, g.Edges, DefaultParams(g.N))
	used := s.Run(1000)
	if used >= 1000 {
		t.Fatal("K8 should contract in far fewer than 1000 rounds")
	}
	if !s.Done() {
		t.Fatal("state should be done")
	}
	if extra := s.Run(10); extra != 0 {
		t.Fatal("Run on a done state should execute nothing")
	}
}

func TestStatePreservesComponents(t *testing.T) {
	g := gen.Union(gen.Cycle(40), gen.Grid(5, 8))
	truth := baseline.BFSLabels(g)
	m := pram.New(pram.Seed(9))
	f := labeled.New(g.N)
	V := make([]int32, g.N)
	m.Iota32(V)
	s := NewState(m, f, V, g.Edges, DefaultParams(g.N))
	for r := 0; r < 6 && !s.Done(); r++ {
		s.Round()
		// Invariant: parents never cross ground-truth components, and all
		// current edges stay within components.
		if err := labeled.CheckSameComponent(f, truth); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for _, e := range s.CurrentEdges() {
			if truth[e.U] != truth[e.V] {
				t.Fatalf("round %d: added edge crosses components", r)
			}
		}
	}
}

func TestLevelsNondecreasingAndBudgetsGrow(t *testing.T) {
	g := gen.RandomRegular(128, 4, 2)
	m := pram.New(pram.Seed(4))
	f := labeled.New(g.N)
	V := make([]int32, g.N)
	m.Iota32(V)
	s := NewState(m, f, V, g.Edges, DefaultParams(g.N))
	prev := append([]int32(nil), s.Level...)
	for r := 0; r < 5 && !s.Done(); r++ {
		s.Round()
		for v := range s.Level {
			if s.Level[v] < prev[v] {
				t.Fatalf("level of %d decreased: %d -> %d", v, prev[v], s.Level[v])
			}
		}
		copy(prev, s.Level)
	}
	if s.budgetOf(1) > s.budgetOf(5) {
		t.Error("budgets must be nondecreasing in level")
	}
	if s.budgetOf(0) < 4 || s.budgetOf(100) != s.budgetOf(63) {
		t.Error("budget bounds wrong")
	}
}

func TestMaxRoundsFallbackStillCorrect(t *testing.T) {
	// Force the safety fallback by allowing zero useful rounds.
	g := gen.Path(500)
	p := DefaultParams(g.N)
	p.MaxRounds = 1
	m := pram.New(pram.Seed(8))
	f := Solve(m, g, p)
	if !graph.SamePartition(baseline.BFSLabels(g), f.Labels()) {
		t.Fatal("fallback must still produce the right partition")
	}
}

func TestDedupExtraBounded(t *testing.T) {
	g := gen.Complete(24)
	p := DefaultParams(g.N)
	p.DedupThreshold = 1
	m := pram.New(pram.Seed(3))
	f := labeled.New(g.N)
	V := make([]int32, g.N)
	m.Iota32(V)
	s := NewState(m, f, V, g.Edges, p)
	for r := 0; r < 8 && !s.Done(); r++ {
		s.Round()
		if len(s.Extra) > 4*p.DedupThreshold*(g.M()+1) {
			t.Fatalf("extra list grew unboundedly: %d", len(s.Extra))
		}
	}
}

func TestPaperParamsClamped(t *testing.T) {
	p := PaperParams(1 << 20)
	if p.Beta1 > 1<<14 || p.Beta1 < 4 {
		t.Errorf("clamped Beta1 = %d out of range", p.Beta1)
	}
	if p.LevelUpExp != 0.06 {
		t.Errorf("paper level-up exponent = %f", p.LevelUpExp)
	}
}
