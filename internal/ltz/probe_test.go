package ltz

import (
	"os"
	"testing"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/pram"
)

// TestProbeRounds is a diagnostic: it logs round counts per family and
// parameter choice.  Run with -v to inspect; it never fails.
func TestProbeRounds(t *testing.T) {
	if os.Getenv("PARCC_PROBE") == "" {
		t.Skip("diagnostic only; set PARCC_PROBE=1 to run")
	}
	families := map[string]*graph.Graph{
		"path-16k":     gen.Path(1 << 14),
		"expander-16k": gen.RandomRegular(1<<14, 4, 7),
		"hyper-14":     gen.Hypercube(14),
		"cycle-16k":    gen.Cycle(1 << 14),
	}
	for _, beta := range []int{8, 32, 128} {
		for _, exp := range []float64{0.1, 0.25, 0.5} {
			for name, g := range families {
				p := DefaultParams(g.N)
				p.Beta1 = beta
				p.LevelUpExp = exp
				m := pram.New(pram.Seed(7))
				f := labeled.New(g.N)
				V := make([]int32, g.N)
				m.Iota32(V)
				r := SolveOn(m, f, V, g.Edges, p)
				t.Logf("beta=%3d exp=%.2f %-13s rounds=%3d work/m=%5.1f",
					beta, exp, name, r, float64(m.Work())/float64(g.M()+g.N))
			}
		}
	}
}
