package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"parcc"
	"parcc/internal/graph/gen"
)

// requiredMetrics is the metric-name contract of GET /metrics — the CI
// smoke step asserts the same list against a live ccserved.
var requiredMetrics = []string{
	"parcc_engine_uptime_seconds",
	"parcc_engine_graphs",
	"parcc_engine_reads_total",
	"parcc_engine_writes_total",
	"parcc_engine_applies_total",
	"parcc_engine_coalesced_total",
	"parcc_engine_coalesce_ratio",
	"parcc_engine_edges",
	"parcc_engine_queue_depth",
	"parcc_snapshot_publish_seconds",
	"parcc_snapshot_publish_full_seconds",
	"parcc_snapshot_publish_delta_seconds",
	"parcc_wal_appends_total",
	"parcc_wal_bytes_total",
	"parcc_wal_fsyncs_total",
	"parcc_wal_errors_total",
	"parcc_wal_replay_records_total",
	"parcc_wal_replay_edges_total",
	"parcc_wal_replay_seconds",
	"parcc_wal_checkpoints_total",
	"parcc_wal_stream_conns_total",
	"parcc_wal_stream_conns_active",
	"parcc_wal_stream_frames_total",
	"parcc_wal_stream_bytes_total",
	"parcc_shard_reads_total",
	"parcc_shard_writes_total",
	"parcc_shard_edges",
	"parcc_shard_queue_depth",
	"parcc_shard_components",
}

// TestMetricsExposition: /metrics serves the full Prometheus name table
// (>= 10 metrics, including the snapshot-publish histogram and the
// coalesce ratio), with per-shard labeled series and histogram plumbing.
func TestMetricsExposition(t *testing.T) {
	e, srv := testServer(t)
	if err := e.Create("g1", gen.Cycle(64)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Connected("g1", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.AddEdges("g1", []parcc.Edge{{U: 0, V: 32}}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, name := range requiredMetrics {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("/metrics missing metric %q", name)
		}
	}
	for _, line := range []string{
		"parcc_snapshot_publish_seconds_bucket{le=\"+Inf\"}",
		"parcc_snapshot_publish_seconds_count",
		"parcc_shard_reads_total{graph=\"g1\"}",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing sample line %q in:\n%s", line, body)
		}
	}
}

// TestStatsSinceUptime: /stats carries the monotone since timestamp and
// uptime alongside the per-shard counter table.
func TestStatsSinceUptime(t *testing.T) {
	e, srv := testServer(t)
	if err := e.Create("g1", gen.Path(16)); err != nil {
		t.Fatal(err)
	}
	status, out := doJSON(t, "GET", srv.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("GET /stats = %d", status)
	}
	if s, ok := out["since"].(string); !ok || s == "" {
		t.Errorf("/stats since = %v, want RFC3339 timestamp", out["since"])
	}
	if up, ok := out["uptime_seconds"].(float64); !ok || up < 0 {
		t.Errorf("/stats uptime_seconds = %v, want >= 0", out["uptime_seconds"])
	}
	if _, ok := out["graphs"].([]any); !ok {
		t.Errorf("/stats graphs = %v, want array", out["graphs"])
	}
}

// TestTraceEndpoint: /graphs/{name}/trace serves the last solve trace as
// JSON when the engine's solvers trace, and 404s when they do not or the
// graph is unknown.
func TestTraceEndpoint(t *testing.T) {
	e := New(Options{Solver: &parcc.Options{Trace: true}})
	srv := httptest.NewServer(NewHandler(e))
	defer func() { srv.Close(); e.Close() }()
	if err := e.Create("g1", gen.TwoCycles(64)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/graphs/g1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /graphs/g1/trace = %d, want 200", resp.StatusCode)
	}
	var tr struct {
		Op          string `json:"op"`
		Incremental *struct {
			BatchEdges int64 `json:"batch_edges"`
		} `json:"incremental"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Op != "attach" || tr.Incremental == nil || tr.Incremental.BatchEdges == 0 {
		t.Errorf("trace = %+v, want attach trace with batch shape", tr)
	}
	if st, _ := doJSON(t, "GET", srv.URL+"/graphs/nope/trace", ""); st != http.StatusNotFound {
		t.Errorf("unknown graph trace = %d, want 404", st)
	}

	// Tracing off: the endpoint reports 404 (ErrNoTrace), not an empty doc.
	off, srvOff := testServer(t)
	if err := off.Create("g1", gen.Path(8)); err != nil {
		t.Fatal(err)
	}
	if st, _ := doJSON(t, "GET", srvOff.URL+"/graphs/g1/trace", ""); st != http.StatusNotFound {
		t.Errorf("tracing-off trace = %d, want 404", st)
	}
}

// TestPprofGating: the profiling endpoints exist only when
// HandlerOptions.Pprof is set.
func TestPprofGating(t *testing.T) {
	_, srv := testServer(t)
	if resp, err := http.Get(srv.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("pprof without opt-in = %d, want 404", resp.StatusCode)
		}
	}
	e := New(Options{})
	srvOn := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{Pprof: true}))
	defer func() { srvOn.Close(); e.Close() }()
	if resp, err := http.Get(srvOn.URL + "/debug/pprof/"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("pprof with opt-in = %d, want 200", resp.StatusCode)
		}
	}
}

// TestMetricsRace drives concurrent /metrics scrapes, stats polls, and
// trace reads against a mutating writer — the scrape path must be safe
// against live counter updates (run under -race in CI).
func TestMetricsRace(t *testing.T) {
	e := New(Options{Solver: &parcc.Options{Trace: true}})
	defer e.Close()
	if err := e.Create("g1", gen.Cycle(256)); err != nil {
		t.Fatal(err)
	}
	const iters = 200
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e.WriteMetrics(io.Discard)
				e.Stats()
				e.Trace("g1")
				e.Connected("g1", 0, 128)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			ed := []parcc.Edge{{U: int32(i % 256), V: int32((i + 7) % 256)}}
			if err := e.AddEdges("g1", ed); err != nil {
				t.Error(err)
				return
			}
			if err := e.RemoveEdges("g1", ed); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
