package service

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"parcc"
)

// Per-shard write-ahead log.  When Options.WALDir is set, every shard
// appends exactly the coalesced mutation groups its writer goroutine
// applies — one frame per successful AddEdges/RemoveEdges sub-batch — and
// fsyncs before the group's snapshot is published and its callers are
// released.  Engine.Recover replays the logs on startup, reconstructing
// every named graph at its last durable state.
//
// Frame format (all integers little-endian):
//
//	u32 length      — payload bytes (not counting this 8-byte header)
//	u32 crc         — CRC-32 (IEEE) of the payload
//	payload:
//	  u8  kind      — 1 create, 2 add, 3 remove, 4 checkpoint, 5 commit
//	  u64 seq       — see below
//	  create/checkpoint: u64 epoch, u64 n, u64 m, then m × (i32 u, i32 v)
//	  add/remove:        u64 count, then count × (i32 u, i32 v)
//	  commit:            u64 head (stream-only, never on disk)
//
// seq is the snapshot version that exposes the record: the create record
// carries 1 (Create's publish is version 1) and every frame of one
// coalesced group carries the same lastSeq+1 (the group publishes once).
// The writer's lastSeq therefore mirrors the session's published version
// exactly, and recovery — which applies all records, floors the version
// counter at the last record's seq, and publishes once — resumes at
// maxSeq+1: strictly greater than any version a reader could have
// observed before the crash, because the fsync of a frame always precedes
// the publish that exposes it.
//
// A CHECKPOINT record is a create record under another name: the full
// live edge multiset at seq, written by log compaction (clean shutdown or
// POST /graphs/{name}/compact) as the head of a rewritten log whose
// fully-applied prefix has been dropped.  Recovery and followers treat it
// exactly like a create whose publish version is its seq.  The EPOCH in
// create/checkpoint records is a random identity drawn when the graph is
// created: it survives recovery and compaction, and changes only when a
// graph is dropped and re-created — how a follower (which resumes by seq)
// detects that "seq 7" of the log it left is not "seq 7" of the log that
// now answers, and resets instead of splicing two histories together.
//
// A COMMIT frame exists only on the replication stream (never on disk):
// the streaming endpoint emits one after the last frame of each seq group
// so a follower knows the group is complete and may publish it, and
// repeats it as a heartbeat while idle.  Its head field carries the
// primary's last durable seq — the follower's lag in seqs is head minus
// its last applied seq.
//
// The decoder distinguishes a TORN tail (a truncated header or frame
// body: exactly what an interrupted final write leaves) from mid-log
// CORRUPTION (checksum mismatch, impossible lengths, unknown kinds).
// Recovery tolerates only the former, truncating the file to the last
// whole frame; anything else fails recovery with a typed
// *parcc.WALCorruptionError — a log that lies must never yield silent
// partial state.
//
// Live-tail safety for stream readers: walWriter.durable is advanced only
// after a whole group's frames (and their fsync) land, so a reader that
// never reads past durable can be concurrent with the appending writer
// and still never observe a torn frame — the torn tail exists only beyond
// the durable boundary.

const (
	walKindCreate     byte = 1
	walKindAdd        byte = 2
	walKindRemove     byte = 3
	walKindCheckpoint byte = 4 // full state at seq: compaction's stream head
	walKindCommit     byte = 5 // stream-only: group boundary + primary head

	walHeaderLen = 8       // u32 length + u32 crc
	walMinFrame  = 9       // kind + seq: the smallest possible payload
	walMaxFrame  = 1 << 30 // sanity cap on a single frame's payload
	walSuffix    = ".wal"
)

// walPath is the shard's log file: the graph name, query-escaped so any
// name is a safe file name, under the engine's WAL directory.
func walPath(dir, name string) string {
	return filepath.Join(dir, url.QueryEscape(name)+walSuffix)
}

// walRecord is one decoded frame.
type walRecord struct {
	kind  byte
	seq   uint64
	epoch uint64 // log identity (create/checkpoint frames only)
	head  uint64 // primary's last durable seq (commit frames only)
	n     int    // vertex count (create/checkpoint frames only)
	batch []parcc.Edge
}

// appendWALFrame encodes rec as one frame onto buf.
func appendWALFrame(buf []byte, rec *walRecord) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc, patched below
	p0 := len(buf)
	buf = append(buf, rec.kind)
	buf = binary.LittleEndian.AppendUint64(buf, rec.seq)
	switch rec.kind {
	case walKindCommit:
		buf = binary.LittleEndian.AppendUint64(buf, rec.head)
	default:
		if rec.kind == walKindCreate || rec.kind == walKindCheckpoint {
			buf = binary.LittleEndian.AppendUint64(buf, rec.epoch)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.n))
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(rec.batch)))
		for _, ed := range rec.batch {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(ed.U))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(ed.V))
		}
	}
	payload := buf[p0:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

func walErr(off int, torn bool, format string, args ...any) error {
	return &parcc.WALCorruptionError{
		Offset: int64(off),
		Torn:   torn,
		Reason: fmt.Sprintf(format, args...),
	}
}

// decodeWALFrame decodes the frame at data[off:], returning the record
// and the offset just past it.  It validates length, checksum, kind, and
// the internal length/count consistency before allocating anything sized
// by untrusted fields, so garbage input can neither panic nor force a
// huge allocation.
func decodeWALFrame(data []byte, off int) (walRecord, int, error) {
	var rec walRecord
	rem := len(data) - off
	if rem < walHeaderLen {
		return rec, off, walErr(off, true, "truncated frame header (%d bytes)", rem)
	}
	length := int(binary.LittleEndian.Uint32(data[off:]))
	wantCRC := binary.LittleEndian.Uint32(data[off+4:])
	if length < walMinFrame || length > walMaxFrame {
		return rec, off, walErr(off, false, "frame length %d out of range [%d,%d]", length, walMinFrame, walMaxFrame)
	}
	if rem-walHeaderLen < length {
		return rec, off, walErr(off, true, "truncated frame body (%d of %d bytes)", rem-walHeaderLen, length)
	}
	payload := data[off+walHeaderLen : off+walHeaderLen+length]
	if crc := crc32.ChecksumIEEE(payload); crc != wantCRC {
		return rec, off, walErr(off, false, "checksum mismatch (stored %08x, computed %08x)", wantCRC, crc)
	}
	rec.kind = payload[0]
	rec.seq = binary.LittleEndian.Uint64(payload[1:])
	body := payload[walMinFrame:]
	switch rec.kind {
	case walKindCreate, walKindCheckpoint:
		if len(body) < 24 {
			return rec, off, walErr(off, false, "create frame too short (%d bytes)", len(body))
		}
		rec.epoch = binary.LittleEndian.Uint64(body)
		n := binary.LittleEndian.Uint64(body[8:])
		m := binary.LittleEndian.Uint64(body[16:])
		if n > 1<<31-1 {
			return rec, off, walErr(off, false, "create frame vertex count %d overflows int32", n)
		}
		if uint64(len(body)-24) != m*8 {
			return rec, off, walErr(off, false, "create frame declares %d edges, carries %d bytes", m, len(body)-24)
		}
		rec.n = int(n)
		rec.batch = decodeWALEdges(body[24:])
	case walKindCommit:
		if len(body) != 8 {
			return rec, off, walErr(off, false, "commit frame carries %d body bytes, want 8", len(body))
		}
		rec.head = binary.LittleEndian.Uint64(body)
	case walKindAdd, walKindRemove:
		count := binary.LittleEndian.Uint64(body)
		if uint64(len(body)-8) != count*8 {
			return rec, off, walErr(off, false, "batch frame declares %d edges, carries %d bytes", count, len(body)-8)
		}
		rec.batch = decodeWALEdges(body[8:])
	default:
		return rec, off, walErr(off, false, "unknown record kind %d", rec.kind)
	}
	return rec, off + walHeaderLen + length, nil
}

// decodeWALEdges decodes a validated (length-checked) edge array.
func decodeWALEdges(b []byte) []parcc.Edge {
	edges := make([]parcc.Edge, len(b)/8)
	for i := range edges {
		edges[i] = parcc.Edge{
			U: int32(binary.LittleEndian.Uint32(b[i*8:])),
			V: int32(binary.LittleEndian.Uint32(b[i*8+4:])),
		}
	}
	return edges
}

// decodeWAL decodes a whole log image.  It returns every cleanly decoded
// record, the byte length of that clean prefix, and the error that
// stopped decoding (nil at a clean end of input).  The error is always a
// *parcc.WALCorruptionError; Torn distinguishes a truncated final frame
// from mid-log corruption.
func decodeWAL(data []byte) ([]walRecord, int, error) {
	var recs []walRecord
	off := 0
	for off < len(data) {
		rec, next, err := decodeWALFrame(data, off)
		if err != nil {
			return recs, off, err
		}
		recs = append(recs, rec)
		off = next
	}
	return recs, off, nil
}

// walWriter is a shard's append handle: owned by the shard's writer
// goroutine (appends are naturally serialized), with atomic counters for
// the metrics scraper and an atomic durable boundary + wakeup channel for
// the replication stream readers tailing the file concurrently.
type walWriter struct {
	f     *os.File
	path  string
	fsync bool
	// lastSeq mirrors the session's current published snapshot version;
	// the next group's frames are stamped lastSeq+1 (see the file header
	// comment for the lockstep argument).
	lastSeq uint64
	// epoch is the log's identity, carried in its create/checkpoint head
	// record: stable across recovery and compaction, fresh on re-create.
	epoch uint64
	buf   []byte
	// groupsSinceHead counts mutation groups appended since the head
	// record (create or checkpoint) — a clean shutdown checkpoints only
	// when it is non-zero, so an idle log is not rewritten for nothing.
	groupsSinceHead int

	appends     atomic.Uint64 // frames written
	bytes       atomic.Uint64 // bytes written
	fsyncs      atomic.Uint64 // fsyncs issued
	checkpoints atomic.Uint64 // checkpoint rewrites (compactions)

	// durable is the byte length of the whole-group prefix of the file:
	// advanced only after a complete group's frames (and fsync) land, so a
	// stream reader that stops at durable never observes a torn frame even
	// while the writer is mid-append past it.
	durable atomic.Int64
	// headSeq mirrors lastSeq for readers outside the writer goroutine.
	headSeq atomic.Uint64
	// gen counts file rewrites (checkpoints): a stream reader holding the
	// pre-rename file re-opens from the head when it observes a bump.
	gen atomic.Uint64

	// tailMu guards tail, the broadcast channel closed-and-replaced after
	// every append so long-polling stream readers wake without polling.
	tailMu sync.Mutex
	tail   chan struct{}
}

// newEpoch draws a random log identity.  Uniqueness across drop+re-create
// of the same graph name is what matters; crypto/rand failure falls back
// to the pid/time mix (still unique enough for the resume-safety check).
func newEpoch() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// createWAL opens (truncating) the shard's log file.  A fresh Create
// supersedes any stale log under the same name — a crash-recovered graph
// re-registers through Engine.Recover before Create can race it.
func createWAL(dir, name string, fsync bool) (*walWriter, error) {
	path := walPath(dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: wal create: %w", err)
	}
	return &walWriter{f: f, path: path, fsync: fsync, epoch: newEpoch(), tail: make(chan struct{})}, nil
}

// openWAL reopens an existing log for appending after replay.  lastSeq is
// the recovered session's published version (the next group is stamped
// lastSeq+1); headSeq is the last seq actually present in the log — one
// less than lastSeq after recovery, whose publish is never logged — so
// stream heartbeats advertise a head a follower can actually reach.
// epoch and size come from the replayed head record and the truncated
// file.
func openWAL(path string, fsync bool, lastSeq, headSeq, epoch uint64, size int64) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: wal open: %w", err)
	}
	w := &walWriter{f: f, path: path, fsync: fsync, lastSeq: lastSeq, epoch: epoch, tail: make(chan struct{})}
	w.durable.Store(size)
	w.headSeq.Store(headSeq)
	return w, nil
}

// wake wakes every stream reader blocked on the tail channel.
func (w *walWriter) wake() {
	w.tailMu.Lock()
	ch := w.tail
	w.tail = make(chan struct{})
	w.tailMu.Unlock()
	close(ch)
}

// tailWait returns the channel the next wake will close; a reader that
// has consumed up to durable selects on it to sleep until new frames land.
func (w *walWriter) tailWait() <-chan struct{} {
	w.tailMu.Lock()
	defer w.tailMu.Unlock()
	return w.tail
}

// appendCreate logs the graph's birth record — seq 1, matching the
// publish Create issues — and syncs it; a Create whose birth record
// cannot be made durable fails.
func (w *walWriter) appendCreate(n int, edges []parcc.Edge) error {
	w.buf = appendWALFrame(w.buf[:0], &walRecord{kind: walKindCreate, seq: 1, epoch: w.epoch, n: n, batch: edges})
	if err := w.write(1); err != nil {
		return err
	}
	w.lastSeq = 1
	w.headSeq.Store(1)
	w.durable.Add(int64(len(w.buf)))
	w.wake()
	if cap(w.buf) > 1<<20 {
		w.buf = nil // the birth record can dwarf every later group; don't pin it
	}
	return nil
}

// walEntry is one successfully applied sub-batch of a coalesced group.
type walEntry struct {
	remove bool
	batch  []parcc.Edge
}

// appendGroup logs one coalesced group — every frame stamped with the seq
// of the single publish that will expose it — and syncs once for the
// whole group.
func (w *walWriter) appendGroup(entries []walEntry) error {
	seq := w.lastSeq + 1
	w.buf = w.buf[:0]
	for _, en := range entries {
		kind := walKindAdd
		if en.remove {
			kind = walKindRemove
		}
		w.buf = appendWALFrame(w.buf, &walRecord{kind: kind, seq: seq, batch: en.batch})
	}
	if err := w.write(len(entries)); err != nil {
		return err
	}
	w.lastSeq = seq
	w.headSeq.Store(seq)
	w.durable.Add(int64(len(w.buf)))
	w.groupsSinceHead++
	w.wake()
	return nil
}

// writeCheckpoint compacts the log: the full live state (n vertices, the
// edge multiset) becomes a checkpoint head record at the current seq, and
// every fully-applied frame before it is dropped.  The rewrite goes
// through a temp file + fsync + rename so a crash at any point leaves
// either the old log or the new one, never a mix; the append handle is
// then swapped to the renamed file and gen is bumped so stream readers
// holding the pre-rename inode restart from the new head.
func (w *walWriter) writeCheckpoint(n int, edges []parcc.Edge) error {
	buf := appendWALFrame(nil, &walRecord{
		kind:  walKindCheckpoint,
		seq:   w.lastSeq,
		epoch: w.epoch,
		n:     n,
		batch: edges,
	})
	tmp := w.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: wal checkpoint create: %w", err)
	}
	if _, err := tf.Write(buf); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: wal checkpoint write: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: wal checkpoint fsync: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: wal checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: wal checkpoint rename: %w", err)
	}
	nf, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("service: wal checkpoint reopen: %w", err)
	}
	w.f.Close()
	w.f = nf
	w.appends.Add(1)
	w.bytes.Add(uint64(len(buf)))
	w.fsyncs.Add(1)
	w.checkpoints.Add(1)
	w.groupsSinceHead = 0
	w.durable.Store(int64(len(buf)))
	w.gen.Add(1)
	w.wake()
	return nil
}

// write flushes buf to the file (and syncs, when fsync is on), charging
// the counters.
func (w *walWriter) write(frames int) error {
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("service: wal append %s: %w", w.path, err)
	}
	w.appends.Add(uint64(frames))
	w.bytes.Add(uint64(len(w.buf)))
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("service: wal fsync %s: %w", w.path, err)
		}
		w.fsyncs.Add(1)
	}
	return nil
}

// Close releases the file handle (the OS flushes on close; every released
// caller's group was already synced if fsync is on).
func (w *walWriter) Close() error { return w.f.Close() }

// replayedShard is one log's reconstructed session.
type replayedShard struct {
	name     string
	solver   *parcc.Solver
	n        int
	edges    int64 // live edge count after replay
	replayed int64 // total batch edges pushed through the incremental path
	records  int
	version  uint64 // published version after the recovery publish
	lastSeq  uint64 // seq of the last replayed record
	epoch    uint64 // log identity from the head record
	size     int64  // byte length of the clean (post-truncation) log
}

// replayWAL reconstructs one shard from its log file.  A torn tail is
// truncated away (the interrupted group never released its callers, so
// dropping it is consistent); any other decode or replay failure returns
// a *parcc.WALCorruptionError (possibly wrapped) and recovery fails.  A
// log with no durable records returns (nil, nil): the caller removes the
// file and moves on.
func (e *Engine) replayWAL(path string) (*replayedShard, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("service: wal read: %w", err)
	}
	recs, valid, derr := decodeWAL(data)
	if derr != nil {
		var ce *parcc.WALCorruptionError
		if !errors.As(derr, &ce) || !ce.Torn {
			if ce != nil && ce.Path == "" {
				ce.Path = path
			}
			return nil, derr
		}
		// Torn tail: keep the clean prefix, truncate the damage away so
		// the reopened log appends from a whole-frame boundary.
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, fmt.Errorf("service: wal truncate torn tail: %w", err)
		}
	}
	if len(recs) == 0 {
		return nil, nil
	}
	if recs[0].kind != walKindCreate && recs[0].kind != walKindCheckpoint {
		return nil, &parcc.WALCorruptionError{Path: path, Reason: "first record is not a create or checkpoint"}
	}
	g := parcc.NewGraph(recs[0].n)
	g.Edges = append(g.Edges, recs[0].batch...)
	s, err := parcc.NewSolver(e.opt.Solver)
	if err != nil {
		return nil, err
	}
	if err := s.Attach(g); err != nil {
		s.Close()
		return nil, &parcc.WALCorruptionError{Path: path, Reason: fmt.Sprintf("create record rejected on replay: %v", err)}
	}
	edges := int64(len(recs[0].batch))
	replayed := edges
	for i, rec := range recs[1:] {
		var aerr error
		switch rec.kind {
		case walKindAdd:
			aerr = s.AddEdges(rec.batch)
			edges += int64(len(rec.batch))
		case walKindRemove:
			aerr = s.RemoveEdges(rec.batch)
			edges -= int64(len(rec.batch))
		default:
			// create/checkpoint belong only at the head; commit frames are
			// stream-only and must never reach disk.
			aerr = fmt.Errorf("unexpected record kind %d mid-log", rec.kind)
		}
		if aerr != nil {
			s.Close()
			return nil, &parcc.WALCorruptionError{Path: path, Reason: fmt.Sprintf("record %d rejected on replay: %v", i+1, aerr)}
		}
		replayed += int64(len(rec.batch))
	}
	// Resume the version lockstep: one publish, stamped past every
	// version that was observable before the crash (see the file header).
	s.AdvanceSnapshotVersion(recs[len(recs)-1].seq)
	sn, err := s.PublishSnapshot()
	if err != nil {
		s.Close()
		return nil, err
	}
	name, err := url.QueryUnescape(filepath.Base(path[:len(path)-len(walSuffix)]))
	if err != nil {
		s.Close()
		return nil, &parcc.WALCorruptionError{Path: path, Reason: fmt.Sprintf("undecodable graph name: %v", err)}
	}
	return &replayedShard{
		name:     name,
		solver:   s,
		n:        recs[0].n,
		edges:    edges,
		replayed: replayed,
		records:  len(recs),
		version:  sn.Version(),
		lastSeq:  recs[len(recs)-1].seq,
		epoch:    recs[0].epoch,
		size:     int64(valid),
	}, nil
}
