package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"parcc"
)

// The HTTP surface of the engine, served by cmd/ccserved and documented
// endpoint by endpoint in docs/OPERATIONS.md.  Everything is JSON; edges
// travel as [u,v] pairs.  Read endpoints answer from one snapshot per
// request (value and version are consistent with each other); mutation
// endpoints return only after the batch is applied and the refreshed
// snapshot published, so a client's next read observes its write.
//
// Error mapping (the typed taxonomy → status codes):
//
//	400  *VertexRangeError, *parcc.EdgeRangeError, malformed JSON/params
//	404  ErrGraphNotFound, ErrNoTrace
//	409  ErrGraphExists, *parcc.MissingEdgeError,
//	     parcc.ErrReadOnlyReplica (body carries the primary hint),
//	     ErrWALDisabled (compact/stream need a log)
//	413  *http.MaxBytesError (mutation body over the cap)
//	503  ErrEngineClosed (draining), parcc.ErrRecovering (replaying),
//	     *StaleVersionError (?min_version= newer than the snapshot)
//	500  anything else
//
// Health probes are split: GET /healthz is liveness (200 whenever the
// process serves HTTP at all) and GET /readyz is readiness — 503 while
// recovering or while a follower lags its primary beyond -max-lag; wait
// loops and load balancers should gate on /readyz
// (docs/OPERATIONS.md §replication).
type apiError struct {
	Error string `json:"error"`
}

// HandlerOptions configures the optional parts of the HTTP surface.
type HandlerOptions struct {
	// Pprof mounts net/http/pprof under /debug/pprof/.  Off by default —
	// the profiling endpoints expose heap contents and should only be
	// enabled on trusted networks (ccserved -pprof).
	Pprof bool
	// Readiness, when set, adds a veto to GET /readyz: a non-nil return
	// makes readiness report 503 with the error's text.  ccserved wires
	// the replication follower's lag check through this seam (the service
	// package must not import the replication layer).
	Readiness func() error
	// MaxBodyBytes caps mutation request bodies (create, add, remove,
	// batch); over-cap requests fail with 413.  Zero means the default
	// (64 MiB); negative disables the cap.
	MaxBodyBytes int64
	// StreamHeartbeat bounds how long an idle replication stream goes
	// without a commit heartbeat (default 1s) — the follower's freshness
	// clock ticks on these.
	StreamHeartbeat time.Duration
}

func (o HandlerOptions) withDefaults() HandlerOptions {
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.StreamHeartbeat <= 0 {
		o.StreamHeartbeat = time.Second
	}
	return o
}

// NewHandler returns the engine's HTTP API with the default options
// (no pprof).
func NewHandler(e *Engine) http.Handler {
	return NewHandlerOpts(e, HandlerOptions{})
}

// NewHandlerOpts returns the engine's HTTP API.
func NewHandlerOpts(e *Engine, opts HandlerOptions) http.Handler {
	opts = opts.withDefaults()
	capBody := func(w http.ResponseWriter, r *http.Request) {
		if opts.MaxBodyBytes > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, opts.MaxBodyBytes)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process is up and serving.  Recovering and lagging
		// states still answer 200 here — restarts don't fix either.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if e.Recovering() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
			return
		}
		if opts.Readiness != nil {
			if err := opts.Readiness(); err != nil {
				writeJSON(w, http.StatusServiceUnavailable, map[string]string{
					"status": "unready", "reason": err.Error(),
				})
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"since":          e.Since().UTC().Format(time.RFC3339Nano),
			"uptime_seconds": e.Uptime().Seconds(),
			"graphs":         e.Stats(),
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		e.WriteMetrics(w)
	})
	mux.HandleFunc("GET /graphs/{name}/trace", func(w http.ResponseWriter, r *http.Request) {
		tr, err := e.Trace(r.PathValue("name"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, tr)
	})
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"graphs": e.Names()})
	})
	mux.HandleFunc("PUT /graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		capBody(w, r)
		var body struct {
			N     int        `json:"n"`
			Edges [][2]int32 `json:"edges"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeBodyError(w, err)
			return
		}
		if body.N < 0 {
			writeJSON(w, http.StatusBadRequest, apiError{"n must be >= 0"})
			return
		}
		g := parcc.NewGraph(body.N)
		for _, p := range body.Edges {
			ed := parcc.Edge{U: p[0], V: p[1]}
			// Validate here so a bad edge is a 400 (EdgeRangeError), not
			// Attach's untyped validation error surfacing as a 500.
			if int(ed.U) < 0 || int(ed.U) >= body.N || int(ed.V) < 0 || int(ed.V) >= body.N {
				writeError(w, &parcc.EdgeRangeError{Edge: ed, N: body.N})
				return
			}
			g.Edges = append(g.Edges, ed)
		}
		name := r.PathValue("name")
		if err := e.Create(name, g); err != nil {
			writeError(w, err)
			return
		}
		sn, err := e.Snapshot(name)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{
			"graph": name, "n": body.N, "edges": len(body.Edges),
			"components": sn.NumComponents(), "version": sn.Version(),
		})
	})
	mux.HandleFunc("DELETE /graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := e.Drop(r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /graphs/{name}/edges", mutateHandler(e, false, capBody))
	mux.HandleFunc("POST /graphs/{name}/edges/remove", mutateHandler(e, true, capBody))
	mux.HandleFunc("GET /graphs/{name}/wal", func(w http.ResponseWriter, r *http.Request) {
		e.streamWAL(w, r, opts.StreamHeartbeat)
	})
	mux.HandleFunc("POST /graphs/{name}/compact", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if err := e.Compact(name); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"graph": name, "compacted": true})
	})
	mux.HandleFunc("GET /graphs/{name}/connected", func(w http.ResponseWriter, r *http.Request) {
		sn, err := snapshotMin(e, r)
		if err != nil {
			writeError(w, err)
			return
		}
		u, err := queryVertex(r, "u", sn.N())
		if err != nil {
			writeError(w, err)
			return
		}
		v, err := queryVertex(r, "v", sn.N())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"connected": sn.Connected(u, v), "version": sn.Version(),
		})
	})
	mux.HandleFunc("GET /graphs/{name}/component", func(w http.ResponseWriter, r *http.Request) {
		sn, err := snapshotMin(e, r)
		if err != nil {
			writeError(w, err)
			return
		}
		u, err := queryVertex(r, "u", sn.N())
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"component": sn.ComponentOf(u), "size": sn.ComponentSize(u),
			"version": sn.Version(),
		})
	})
	mux.HandleFunc("GET /graphs/{name}/count", func(w http.ResponseWriter, r *http.Request) {
		sn, err := snapshotMin(e, r)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"components": sn.NumComponents(), "version": sn.Version(),
		})
	})
	mux.HandleFunc("GET /graphs/{name}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		sn, err := snapshotMin(e, r)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"n": sn.N(), "components": sn.NumComponents(),
			"version": sn.Version(), "labels": sn.Labels(),
		})
	})
	mux.HandleFunc("POST /graphs/{name}/batch", func(w http.ResponseWriter, r *http.Request) {
		capBody(w, r)
		batchHandler(e, w, r)
	})
	return mux
}

// snapshotMin resolves the request's snapshot, honoring the
// bounded-staleness contract: with ?min_version=V, a published snapshot
// older than V is refused with a *StaleVersionError (503) instead of
// served stale — the caller retries, or asks a fresher replica.
func snapshotMin(e *Engine, r *http.Request) (*parcc.Snapshot, error) {
	name := r.PathValue("name")
	sn, err := e.Snapshot(name)
	if err != nil {
		return nil, err
	}
	mv, err := queryUint(r, "min_version")
	if err != nil {
		return nil, err
	}
	if mv > 0 && sn.Version() < mv {
		return nil, &StaleVersionError{Graph: name, Have: sn.Version(), MinVersion: mv}
	}
	return sn, nil
}

func mutateHandler(e *Engine, remove bool, capBody func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		capBody(w, r)
		var body struct {
			Edges [][2]int32 `json:"edges"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeBodyError(w, err)
			return
		}
		name := r.PathValue("name")
		batch := make([]parcc.Edge, len(body.Edges))
		for i, p := range body.Edges {
			batch[i] = parcc.Edge{U: p[0], V: p[1]}
		}
		var err error
		if remove {
			err = e.RemoveEdges(name, batch)
		} else {
			err = e.AddEdges(name, batch)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		sn, err := e.Snapshot(name)
		if err != nil {
			writeError(w, err)
			return
		}
		key := "added"
		if remove {
			key = "removed"
		}
		writeJSON(w, http.StatusOK, map[string]any{
			key: len(batch), "components": sn.NumComponents(), "version": sn.Version(),
		})
	}
}

// batchOp is one line of the NDJSON batch protocol.
type batchOp struct {
	Op    string     `json:"op"` // connected | component | count | add | remove
	U     *int       `json:"u,omitempty"`
	V     *int       `json:"v,omitempty"`
	Edges [][2]int32 `json:"edges,omitempty"`
}

// batchHandler streams the NDJSON batch endpoint: one JSON op per request
// line, one JSON result per response line, in order.  Ops execute
// sequentially, each against the then-current state — a read after an
// "add" line observes it.  A failing line reports {"error": ...} and the
// stream continues; only a malformed request aborts it.
func batchHandler(e *Engine, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var op batchOp
		if err := json.Unmarshal(line, &op); err != nil {
			enc.Encode(apiError{"invalid op: " + err.Error()})
			continue
		}
		enc.Encode(runBatchOp(e, name, &op))
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := sc.Err(); err != nil {
		// The stream died mid-body (oversized line, read error): emit one
		// final error line so the client can tell truncation from
		// completion — the remaining ops never ran.
		enc.Encode(apiError{"batch stream aborted: " + err.Error()})
	}
}

func runBatchOp(e *Engine, name string, op *batchOp) any {
	switch op.Op {
	case "connected":
		if op.U == nil || op.V == nil {
			return apiError{`"connected" needs u and v`}
		}
		ok, err := e.Connected(name, *op.U, *op.V)
		if err != nil {
			return apiError{err.Error()}
		}
		return map[string]any{"connected": ok}
	case "component":
		if op.U == nil {
			return apiError{`"component" needs u`}
		}
		sn, err := e.Snapshot(name)
		if err != nil {
			return apiError{err.Error()}
		}
		if *op.U < 0 || *op.U >= sn.N() {
			return apiError{(&VertexRangeError{V: *op.U, N: sn.N()}).Error()}
		}
		return map[string]any{"component": sn.ComponentOf(*op.U), "size": sn.ComponentSize(*op.U)}
	case "count":
		k, err := e.ComponentCount(name)
		if err != nil {
			return apiError{err.Error()}
		}
		return map[string]any{"components": k}
	case "add", "remove":
		batch := make([]parcc.Edge, len(op.Edges))
		for i, p := range op.Edges {
			batch[i] = parcc.Edge{U: p[0], V: p[1]}
		}
		var err error
		if op.Op == "remove" {
			err = e.RemoveEdges(name, batch)
		} else {
			err = e.AddEdges(name, batch)
		}
		if err != nil {
			return apiError{err.Error()}
		}
		key := "added"
		if op.Op == "remove" {
			key = "removed"
		}
		return map[string]any{key: len(batch)}
	default:
		return apiError{fmt.Sprintf("unknown op %q", op.Op)}
	}
}

// errBadParam marks malformed request parameters; writeError maps it to
// 400 without string matching.
var errBadParam = errors.New("bad request parameter")

func queryVertex(r *http.Request, key string, n int) (int, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0, fmt.Errorf("%w: missing %q", errBadParam, key)
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %q is not an integer", errBadParam, key)
	}
	if v < 0 || v >= n {
		return 0, &VertexRangeError{V: v, N: n}
	}
	return v, nil
}

// writeBodyError classifies a request-body decode failure: an over-cap
// body is a 413 (the MaxBytesReader tripped), anything else malformed
// JSON (400).
func writeBodyError(w http.ResponseWriter, err error) {
	var mb *http.MaxBytesError
	if errors.As(err, &mb) {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusBadRequest, apiError{"invalid JSON body: " + err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps the typed error taxonomy onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	var roe *parcc.ReadOnlyReplicaError
	if errors.As(err, &roe) {
		// The 409 body names the primary so clients redirect, not retry.
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": roe.Error(), "primary": roe.Primary,
		})
		return
	}
	var (
		vr *VertexRangeError
		re *parcc.EdgeRangeError
		me *parcc.MissingEdgeError
		sv *StaleVersionError
		mb *http.MaxBytesError
	)
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrGraphNotFound), errors.Is(err, ErrNoTrace):
		status = http.StatusNotFound
	case errors.Is(err, ErrGraphExists), errors.As(err, &me),
		errors.Is(err, ErrWALDisabled), errors.Is(err, parcc.ErrReadOnlyReplica):
		status = http.StatusConflict
	case errors.As(err, &mb):
		status = http.StatusRequestEntityTooLarge
	case errors.As(err, &vr), errors.As(err, &re),
		errors.Is(err, parcc.ErrNilGraph), errors.Is(err, errBadParam):
		status = http.StatusBadRequest
	case errors.Is(err, ErrEngineClosed), errors.Is(err, parcc.ErrRecovering),
		errors.As(err, &sv):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, apiError{err.Error()})
}
