package service

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parcc"
	"parcc/internal/graph"
)

// walServer is a WAL-backed engine behind its HTTP handler, with a fast
// stream heartbeat so tail tests don't wait out the 1s default.
func walServer(t *testing.T) (*Engine, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	e := New(Options{Solver: &parcc.Options{}, WALDir: dir})
	srv := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{StreamHeartbeat: 25 * time.Millisecond}))
	t.Cleanup(func() { srv.Close(); e.Close() })
	return e, srv, dir
}

// openStream opens GET /graphs/{name}/wal and returns a frame reader.
// The request is canceled at test cleanup, so a hung read fails the test
// instead of wedging the suite.
func openStream(t *testing.T, base, name string, from, epoch uint64) *bufio.Reader {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	u := base + "/graphs/" + name + "/wal?from=" + strconv.FormatUint(from, 10) +
		"&epoch=" + strconv.FormatUint(epoch, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("stream open: %s", resp.Status)
	}
	t.Cleanup(func() { cancel(); resp.Body.Close() })
	return bufio.NewReader(resp.Body)
}

func mustFrame(t *testing.T, br *bufio.Reader) *StreamFrame {
	t.Helper()
	fr, err := ReadStreamFrame(br)
	if err != nil {
		t.Fatalf("ReadStreamFrame: %v", err)
	}
	return fr
}

// nextDataFrame skips commit heartbeats until a data frame arrives.
func nextDataFrame(t *testing.T, br *bufio.Reader) *StreamFrame {
	t.Helper()
	for i := 0; i < 100; i++ {
		fr := mustFrame(t, br)
		if fr.Kind != FrameCommit {
			return fr
		}
	}
	t.Fatal("no data frame within 100 frames")
	return nil
}

// TestWALStreamHistoryTailAndHeartbeat: the stream serves the durable
// history with a commit after each group, heartbeats while idle, and
// forwards a live write as it lands.
func TestWALStreamHistoryTailAndHeartbeat(t *testing.T) {
	e, srv, _ := walServer(t)
	if err := e.Create("g", mkGraph(8, parcc.Edge{U: 0, V: 1})); err != nil {
		t.Fatal(err)
	}
	if err := e.AddEdges("g", []parcc.Edge{{U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveEdges("g", []parcc.Edge{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}

	br := openStream(t, srv.URL, "g", 0, 0)
	fr := mustFrame(t, br)
	if fr.Kind != FrameCreate || fr.Seq != 1 || fr.Epoch == 0 || fr.N != 8 || len(fr.Batch) != 1 {
		t.Fatalf("head frame: %+v", fr)
	}
	epoch := fr.Epoch
	wantSeqs := []struct {
		kind byte
		seq  uint64
	}{
		{FrameCommit, 1},
		{FrameAdd, 2},
		{FrameCommit, 2},
		{FrameRemove, 3},
		{FrameCommit, 3},
	}
	for i, want := range wantSeqs {
		fr := mustFrame(t, br)
		if fr.Kind != want.kind || fr.Seq != want.seq {
			t.Fatalf("frame %d: kind=%d seq=%d, want kind=%d seq=%d", i, fr.Kind, fr.Seq, want.kind, want.seq)
		}
		if fr.Kind == FrameCommit && fr.Head != 3 {
			t.Fatalf("frame %d: commit head %d, want 3", i, fr.Head)
		}
	}
	// Idle: the next frame is a heartbeat commit at the current head.
	fr = mustFrame(t, br)
	if fr.Kind != FrameCommit || fr.Seq != 3 || fr.Head != 3 {
		t.Fatalf("heartbeat: %+v", fr)
	}
	// Live write: the tail forwards the group plus its commit.
	if err := e.AddEdges("g", []parcc.Edge{{U: 3, V: 4}}); err != nil {
		t.Fatal(err)
	}
	fr = nextDataFrame(t, br)
	if fr.Kind != FrameAdd || fr.Seq != 4 || len(fr.Batch) != 1 {
		t.Fatalf("tailed write: %+v", fr)
	}
	fr = mustFrame(t, br)
	if fr.Kind != FrameCommit || fr.Seq != 4 || fr.Head != 4 {
		t.Fatalf("tailed commit: %+v", fr)
	}
	if epoch == 0 {
		t.Fatal("epoch never set")
	}
}

// TestWALStreamResumeSkipsApplied: a follower reconnecting with
// from=<applied>&epoch=<known> receives no data frames it already holds —
// just a commit heartbeat, then new groups as they land.  A wrong epoch
// (dropped + re-created graph) gets the full head record instead.
func TestWALStreamResumeSkipsApplied(t *testing.T) {
	e, srv, _ := walServer(t)
	if err := e.Create("g", mkGraph(8)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddEdges("g", []parcc.Edge{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	head := mustFrame(t, openStream(t, srv.URL, "g", 0, 0))
	if head.Kind != FrameCreate {
		t.Fatalf("head: %+v", head)
	}

	// Matching epoch, caught up: commit only.
	br := openStream(t, srv.URL, "g", 2, head.Epoch)
	fr := mustFrame(t, br)
	if fr.Kind != FrameCommit || fr.Seq != 2 || fr.Head != 2 {
		t.Fatalf("resume first frame: %+v", fr)
	}
	if err := e.AddEdges("g", []parcc.Edge{{U: 2, V: 3}}); err != nil {
		t.Fatal(err)
	}
	fr = nextDataFrame(t, br)
	if fr.Kind != FrameAdd || fr.Seq != 3 {
		t.Fatalf("resume tailed write: %+v", fr)
	}

	// Epoch mismatch: the full head record streams again.
	br2 := openStream(t, srv.URL, "g", 2, head.Epoch+1)
	fr = mustFrame(t, br2)
	if fr.Kind != FrameCreate || fr.Seq != 1 {
		t.Fatalf("epoch-mismatch first frame: %+v", fr)
	}
}

// TestWALCheckpointCompact: POST-compact the log collapses to a single
// checkpoint record carrying the live state at the current version; the
// stream serves it as the head; recovery replays it; and versions keep
// advancing past it.
func TestWALCheckpointCompact(t *testing.T) {
	e, srv, dir := walServer(t)
	if err := e.Create("g", mkGraph(16, parcc.Edge{U: 0, V: 1})); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := e.AddEdges("g", []parcc.Edge{{U: int32(i), V: int32(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := e.Snapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	st, body := doJSON(t, "POST", srv.URL+"/graphs/g/compact", "")
	if st != 200 || body["compacted"] != true {
		t.Fatalf("compact: %d %v", st, body)
	}

	// On disk: exactly one checkpoint record at the current seq.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("wal dir: %v %d", err, len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	rec, next, err := decodeWALFrame(data, 0)
	if err != nil || next != len(data) {
		t.Fatalf("compacted log is not a single record: %v next=%d len=%d", err, next, len(data))
	}
	if rec.kind != walKindCheckpoint || rec.seq != want.Version() || rec.n != 16 || len(rec.batch) != 4 {
		t.Fatalf("checkpoint record: kind=%d seq=%d n=%d m=%d", rec.kind, rec.seq, rec.n, len(rec.batch))
	}

	// The stream now serves the checkpoint as its head record.
	br := openStream(t, srv.URL, "g", 0, 0)
	fr := mustFrame(t, br)
	if fr.Kind != FrameCheckpoint || fr.Seq != want.Version() || len(fr.Batch) != 4 {
		t.Fatalf("stream head after compact: %+v", fr)
	}

	// Writes continue past the checkpoint; recovery replays head + suffix.
	if err := e.AddEdges("g", []parcc.Edge{{U: 10, V: 11}}); err != nil {
		t.Fatal(err)
	}
	after, err := e.Snapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	if after.Version() != want.Version()+1 {
		t.Fatalf("post-compact version %d, want %d", after.Version(), want.Version()+1)
	}
	dir2 := t.TempDir()
	copyWALDir(t, dir, dir2)
	e2 := New(Options{Solver: &parcc.Options{}, WALDir: dir2})
	defer e2.Close()
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	sn, err := e2.Snapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	if !graph.SamePartition(after.Labels(), sn.Labels()) {
		t.Fatal("recovered partition differs after compaction")
	}
	if !sn.Connected(10, 11) {
		t.Fatal("post-compact write lost in recovery")
	}
}

// TestWALCheckpointOnCleanShutdown: Close compacts each dirty log to a
// checkpoint, recovery resumes from it, and an untouched recovered log is
// NOT rewritten by the next clean shutdown.
func TestWALCheckpointOnCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	e := New(Options{Solver: &parcc.Options{}, WALDir: dir})
	if err := e.Create("g", mkGraph(8, parcc.Edge{U: 0, V: 1})); err != nil {
		t.Fatal(err)
	}
	if err := e.AddEdges("g", []parcc.Edge{{U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	want, err := e.Snapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	e.Close()

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("wal dir: %v %d", err, len(entries))
	}
	path := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, next, err := decodeWALFrame(data, 0)
	if err != nil || next != len(data) || rec.kind != walKindCheckpoint || rec.seq != want.Version() {
		t.Fatalf("shutdown checkpoint: err=%v next=%d/%d kind=%d seq=%d", err, next, len(data), rec.kind, rec.seq)
	}

	// Recover, read, close without writing: the log must not be rewritten.
	e2 := New(Options{Solver: &parcc.Options{}, WALDir: dir})
	if _, err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	sn, err := e2.Snapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	if !graph.SamePartition(want.Labels(), sn.Labels()) {
		t.Fatal("recovered partition differs from pre-shutdown state")
	}
	e2.Close()
	data2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("idle recovered log was rewritten on clean shutdown")
	}
}

// TestReadyzSplitsFromHealthz: /healthz is pure liveness; /readyz vetoes
// through HandlerOptions.Readiness (the follower's lag check in ccserved).
func TestReadyzSplitsFromHealthz(t *testing.T) {
	var unready atomic.Bool
	e := New(Options{})
	srv := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{Readiness: func() error {
		if unready.Load() {
			return errors.New("replication lagging")
		}
		return nil
	}}))
	t.Cleanup(func() { srv.Close(); e.Close() })

	if st, _ := doJSON(t, "GET", srv.URL+"/healthz", ""); st != 200 {
		t.Fatalf("healthz: %d", st)
	}
	if st, _ := doJSON(t, "GET", srv.URL+"/readyz", ""); st != 200 {
		t.Fatalf("readyz ready: %d", st)
	}
	unready.Store(true)
	st, body := doJSON(t, "GET", srv.URL+"/readyz", "")
	if st != 503 || body["status"] != "unready" || !strings.Contains(body["reason"].(string), "lagging") {
		t.Fatalf("readyz unready: %d %v", st, body)
	}
	if st, _ := doJSON(t, "GET", srv.URL+"/healthz", ""); st != 200 {
		t.Fatalf("healthz while unready: %d", st)
	}
}

// TestMinVersionBoundedStaleness: ?min_version gates reads on snapshot
// freshness — 503 when the snapshot is older, 200 once it satisfies.
func TestMinVersionBoundedStaleness(t *testing.T) {
	e, srv := testServer(t)
	if err := e.Create("g", mkGraph(4, parcc.Edge{U: 0, V: 1})); err != nil {
		t.Fatal(err)
	}
	if st, _ := doJSON(t, "GET", srv.URL+"/graphs/g/count?min_version=1", ""); st != 200 {
		t.Fatalf("satisfied min_version: %d", st)
	}
	st, body := doJSON(t, "GET", srv.URL+"/graphs/g/count?min_version=9", "")
	if st != 503 || !strings.Contains(body["error"].(string), "min_version") {
		t.Fatalf("stale min_version: %d %v", st, body)
	}
	if st, _ := doJSON(t, "GET", srv.URL+"/graphs/g/connected?u=0&v=1&min_version=9", ""); st != 503 {
		t.Fatalf("stale connected: %d", st)
	}
	if st, _ := doJSON(t, "GET", srv.URL+"/graphs/g/count?min_version=bogus", ""); st != 400 {
		t.Fatalf("bad min_version: %d", st)
	}
}

// TestBodyCap413: mutation bodies beyond MaxBodyBytes fail with 413, not
// an unbounded read.
func TestBodyCap413(t *testing.T) {
	e := New(Options{})
	srv := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{MaxBodyBytes: 256}))
	t.Cleanup(func() { srv.Close(); e.Close() })

	big := `{"n":4,"edges":[` + strings.Repeat("[0,1],", 200) + `[0,1]]}`
	st, _ := doJSON(t, "PUT", srv.URL+"/graphs/g", big)
	if st != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create: %d, want 413", st)
	}
	if st, _ := doJSON(t, "PUT", srv.URL+"/graphs/g", `{"n":4,"edges":[[0,1]]}`); st != http.StatusCreated {
		t.Fatalf("small create: %d", st)
	}
	if st, _ := doJSON(t, "POST", srv.URL+"/graphs/g/edges", big); st != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized add: %d, want 413", st)
	}
}

// TestReadOnlyReplicaRejectsWrites: a follower engine answers every
// mutation with 409 and the primary's URL; reads on installed replicas
// still serve.
func TestReadOnlyReplicaRejectsWrites(t *testing.T) {
	e := New(Options{ReadOnly: true, Primary: "http://primary:8080"})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() { srv.Close(); e.Close() })

	st, body := doJSON(t, "PUT", srv.URL+"/graphs/g", `{"n":4}`)
	if st != http.StatusConflict || body["primary"] != "http://primary:8080" {
		t.Fatalf("read-only create: %d %v", st, body)
	}
	if st, _ := doJSON(t, "POST", srv.URL+"/graphs/g/edges", `{"edges":[[0,1]]}`); st != http.StatusConflict {
		t.Fatalf("read-only add: %d", st)
	}
	if st, _ := doJSON(t, "DELETE", srv.URL+"/graphs/g", ""); st != http.StatusConflict {
		t.Fatalf("read-only drop: %d", st)
	}
	if !errors.Is(e.Compact("g"), parcc.ErrReadOnlyReplica) {
		t.Fatal("read-only compact: want ErrReadOnlyReplica")
	}

	// Install a replica the way the replication layer does and read it.
	s, err := parcc.NewSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	g := parcc.NewGraph(4)
	g.Edges = append(g.Edges, parcc.Edge{U: 0, V: 1})
	if err := s.Attach(g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PublishSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.InstallReplica("g", 4, s); err != nil {
		t.Fatal(err)
	}
	st, body = doJSON(t, "GET", srv.URL+"/graphs/g/connected?u=0&v=1", "")
	if st != 200 || body["connected"] != true {
		t.Fatalf("replica read: %d %v", st, body)
	}
}

// TestCompactEndpointWithoutWAL: compaction without a log is a 409 (the
// operation cannot mean anything), not a 500.
func TestCompactEndpointWithoutWAL(t *testing.T) {
	e, srv := testServer(t)
	if err := e.Create("g", mkGraph(4)); err != nil {
		t.Fatal(err)
	}
	if st, _ := doJSON(t, "POST", srv.URL+"/graphs/g/compact", ""); st != http.StatusConflict {
		t.Fatalf("compact without WAL: %d, want 409", st)
	}
	if st, _ := doJSON(t, "POST", srv.URL+"/graphs/none/compact", ""); st != http.StatusNotFound {
		t.Fatalf("compact unknown graph: %d, want 404", st)
	}
}

// mkGraph builds a small graph literal.
func mkGraph(n int, edges ...parcc.Edge) *parcc.Graph {
	g := parcc.NewGraph(n)
	g.Edges = append(g.Edges, edges...)
	return g
}

// copyWALDir clones every log file (recovery must see the same images).
func copyWALDir(t *testing.T, from, to string) {
	t.Helper()
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(from, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
