package service

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"parcc"
	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// TestConcurrentReadersVsWriter is the snapshot-isolation satellite: one
// mutating writer streams add/remove batches into a single service shard
// while concurrent readers hammer the snapshot.  Every snapshot a reader
// observes must be SOME historically valid partition — the exact
// partition baseline.IncOracle computed for that snapshot's version —
// never a torn mix of two batches.  The oracle history for version v+1 is
// recorded BEFORE batch v is handed to the engine, so any published
// snapshot always has its referee entry in place when it becomes visible.
//
// Run under -race (CI does): the assertions catch semantic tearing, the
// race detector catches memory-level tearing.
func TestConcurrentReadersVsWriter(t *testing.T) {
	const (
		n       = 300
		batches = 50
		readers = 4
	)
	base := gen.GNM(n, 450, 11)

	e := New(Options{Solver: &parcc.Options{Backend: parcc.BackendConcurrent, Procs: 2}})
	defer e.Close()
	if err := e.Create("g", base.Clone()); err != nil {
		t.Fatal(err)
	}

	// history[v] is the oracle partition the snapshot at version v must
	// equal.  Create published version 1 = the initial graph.
	oracle := baseline.NewIncOracle(base)
	var history [batches + 2]atomic.Pointer[[]int32]
	init := oracle.Labels()
	history[1].Store(&init)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			seen := map[uint64]bool{}
			for i := 0; ; i++ {
				// Check stop only after at least one verified read, so the
				// test is meaningful even if the scheduler starves readers
				// until the stream is done (single-core hosts).
				if i > 0 {
					select {
					case <-stop:
						if len(seen) == 0 {
							t.Errorf("reader %d observed no snapshots", r)
						}
						return
					default:
					}
				}
				sn, err := e.Snapshot("g")
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				v := sn.Version()
				if v == 0 || v >= uint64(len(history)) {
					t.Errorf("reader %d: snapshot version %d out of the mutation history", r, v)
					return
				}
				want := history[v].Load()
				if want == nil {
					t.Errorf("reader %d: snapshot version %d visible before its batch was recorded", r, v)
					return
				}
				if !graph.SamePartition(*want, sn.Labels()) {
					t.Errorf("reader %d: snapshot version %d is not the historical partition of its batch (torn read?)", r, v)
					return
				}
				seen[v] = true
				// Point queries must cohere with the same snapshot.
				u, w := (i*13)%n, (i*29)%n
				if sn.Connected(u, w) != (sn.ComponentOf(u) == sn.ComponentOf(w)) {
					t.Errorf("reader %d: Connected and ComponentOf disagree within one snapshot", r)
					return
				}
				if i%16 == 0 {
					count := map[int32]int{}
					for _, l := range sn.Labels() {
						count[l]++
					}
					if len(count) != sn.NumComponents() {
						t.Errorf("reader %d: %d labels vs %d claimed components", r, len(count), sn.NumComponents())
						return
					}
					if sn.ComponentSize(u) != count[sn.ComponentOf(u)] {
						t.Errorf("reader %d: ComponentSize inconsistent with labels", r)
						return
					}
				}
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(23))
	for b := 0; b < batches; b++ {
		remove := b%3 == 2 && oracle.Graph().M() > 32
		var batch []graph.Edge
		if remove {
			live := oracle.Graph()
			for _, j := range rng.Perm(live.M())[:4] {
				batch = append(batch, live.Edges[j])
			}
		} else {
			for j := 0; j < 8; j++ {
				batch = append(batch, graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))})
			}
		}
		// Referee first, engine second: the entry for version b+2 exists
		// before any reader can observe that version.
		var err error
		if remove {
			err = oracle.RemoveEdges(batch)
		} else {
			err = oracle.AddEdges(batch)
		}
		if err != nil {
			t.Fatal(err)
		}
		labels := oracle.Labels()
		history[b+2].Store(&labels)
		if remove {
			err = e.RemoveEdges("g", batch)
		} else {
			err = e.AddEdges("g", batch)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The final snapshot is the final oracle state, exactly.
	sn, err := e.Snapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	if sn.Version() != batches+1 {
		t.Fatalf("final version %d, want %d (one publish per batch)", sn.Version(), batches+1)
	}
	if !graph.SamePartition(oracle.Labels(), sn.Labels()) {
		t.Fatal("final snapshot diverges from the oracle")
	}
}
