package service

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"parcc"
)

// Replication stream: GET /graphs/{name}/wal?from=<seq>&epoch=<epoch>
// serves the shard's write-ahead log as a live byte stream — the durable
// prefix first, then a long-poll tail that forwards each new group as it
// lands.  The wire format is exactly the on-disk frame format (stream
// decoding IS log decoding), plus stream-only COMMIT frames: one after
// the last frame of each seq group (the follower's signal that the group
// is complete and may be applied + published) and one as an idle
// heartbeat, both carrying the primary's last durable seq so the follower
// can measure its lag.
//
// Resume contract: `from` is the follower's last applied seq and `epoch`
// the log identity it learned from the head record; the server then skips
// frames the follower already holds.  On an epoch mismatch (the graph was
// dropped and re-created) or a follower that is behind the log's
// checkpoint head, the server streams the full head record instead — the
// follower resets on any create/checkpoint frame.
//
// Safety: the stream never reads past walWriter.durable, which advances
// only after whole-group writes (and their fsync), so a concurrent reader
// can never observe a torn frame; and a checkpoint rewrite bumps the gen
// counter, making the stream re-open the file and serve the new head.

// Stream frame kinds, mirroring the on-disk WAL record kinds.
const (
	FrameCreate     byte = walKindCreate
	FrameAdd        byte = walKindAdd
	FrameRemove     byte = walKindRemove
	FrameCheckpoint byte = walKindCheckpoint
	FrameCommit     byte = walKindCommit
)

// StreamFrame is one decoded replication-stream frame.
type StreamFrame struct {
	Kind  byte
	Seq   uint64       // snapshot version that exposes the frame's group
	Epoch uint64       // log identity (create/checkpoint only)
	Head  uint64       // primary's last durable seq (commit only)
	N     int          // vertex count (create/checkpoint only)
	Batch []parcc.Edge // edges (create/checkpoint/add/remove)
}

// ReadStreamFrame reads and validates one frame from a replication
// stream.  io.EOF marks a cleanly closed stream between frames; a cut
// inside a frame surfaces as io.ErrUnexpectedEOF; framing damage is a
// *parcc.WALCorruptionError.
func ReadStreamFrame(br *bufio.Reader) (*StreamFrame, error) {
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			// A cut inside the header is torn mid-frame only if any header
			// byte arrived.
			if err == io.ErrUnexpectedEOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, io.EOF
		}
		return nil, err
	}
	length := int(binary.LittleEndian.Uint32(hdr[:]))
	if length < walMinFrame || length > walMaxFrame {
		return nil, walErr(0, false, "stream frame length %d out of range [%d,%d]", length, walMinFrame, walMaxFrame)
	}
	buf := make([]byte, walHeaderLen+length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(br, buf[walHeaderLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	rec, _, err := decodeWALFrame(buf, 0)
	if err != nil {
		return nil, err
	}
	return &StreamFrame{
		Kind:  rec.kind,
		Seq:   rec.seq,
		Epoch: rec.epoch,
		Head:  rec.head,
		N:     rec.n,
		Batch: rec.batch,
	}, nil
}

// AppendStreamFrame encodes a frame in the stream wire format — the test
// and fault-injection counterpart of ReadStreamFrame.
func AppendStreamFrame(buf []byte, fr *StreamFrame) []byte {
	return appendWALFrame(buf, &walRecord{
		kind:  fr.Kind,
		seq:   fr.Seq,
		epoch: fr.Epoch,
		head:  fr.Head,
		n:     fr.N,
		batch: fr.Batch,
	})
}

// streamWAL serves one replication-stream request.  heartbeat bounds how
// long an idle tail goes without a commit frame.
func (e *Engine) streamWAL(w http.ResponseWriter, r *http.Request, heartbeat time.Duration) {
	name := r.PathValue("name")
	from, err := queryUint(r, "from")
	if err != nil {
		writeError(w, err)
		return
	}
	clientEpoch, err := queryUint(r, "epoch")
	if err != nil {
		writeError(w, err)
		return
	}
	h, err := e.walHandle(name)
	if err != nil {
		writeError(w, err)
		return
	}
	// The tail long-polls indefinitely: exempt this response from the
	// server's WriteTimeout (satellite: per-request deadline control).
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)

	e.streamConns.Add(1)
	e.streamActive.Add(1)
	defer e.streamActive.Add(-1)

	bw := bufio.NewWriterSize(w, 64<<10)
	var scratch []byte
	send := func(raw []byte) bool {
		if _, err := bw.Write(raw); err != nil {
			return false
		}
		e.streamFrames.Add(1)
		e.streamBytes.Add(uint64(len(raw)))
		return true
	}
	sendCommit := func(seq uint64) bool {
		scratch = appendWALFrame(scratch[:0], &walRecord{kind: walKindCommit, seq: seq, head: h.headSeq.Load()})
		return send(scratch)
	}
	flush := func() bool {
		if err := bw.Flush(); err != nil {
			return false
		}
		rc.Flush()
		return true
	}

	alive := func() bool {
		// Identity, not just existence: after a drop + re-create the name
		// resolves to a NEW log handle, and heartbeating from the stale one
		// would keep this stream alive forever without ever serving the new
		// epoch's head record.
		hh, err := e.walHandle(name)
		return err == nil && hh == h
	}
	ctx := r.Context()
	sent := from // last data-frame seq forwarded (or resumed past)
	for {
		gen := h.gen.Load()
		f, err := os.Open(h.path)
		if err != nil {
			return // dropped under us; the follower re-resolves on reconnect
		}
		ok := streamFile(ctx, f, h, gen, clientEpoch, heartbeat, alive, &sent, send, sendCommit, flush)
		f.Close()
		if !ok {
			return
		}
		if h.gen.Load() == gen {
			// A read/decode anomaly without a rewrite is real damage, not
			// the checkpoint swap race: end the stream; the follower's
			// reconnect (with backoff) re-resolves the log.
			return
		}
		// gen changed (checkpoint rewrite): reopen and serve the new head.
		time.Sleep(2 * time.Millisecond)
	}
}

// streamFile serves one generation of the log file: catch-up from the
// current position, then the long-poll tail.  Returns true when the
// caller should reopen (gen changed), false when the stream is done
// (client gone, graph dropped, or an unexpected read state).
func streamFile(
	ctx context.Context,
	f *os.File, h *walWriter, gen, clientEpoch uint64, heartbeat time.Duration,
	alive func() bool, sent *uint64,
	send func([]byte) bool, sendCommit func(uint64) bool, flush func() bool,
) bool {
	var off int64
	headRecord := true // the next frame read at off 0 is the head record
	filter := false    // true: skip frames with seq <= resume
	var resume uint64  // the follower's position when filtering was decided
	for {
		tail := h.tailWait() // grab BEFORE the durable load: no lost wakeups
		durable := h.durable.Load()
		if h.gen.Load() != gen {
			return true
		}
		if off < durable {
			chunk := make([]byte, durable-off)
			if _, err := f.ReadAt(chunk, off); err != nil {
				// The file was swapped between our open and the gen load, or
				// shrank under a checkpoint: reopen and retry from the head.
				return true
			}
			o := 0
			pending := uint64(0) // seq of a group with frames sent, commit not yet
			for o < len(chunk) {
				rec, next, err := decodeWALFrame(chunk, o)
				if err != nil {
					return true // same swap race as above: reopen
				}
				raw := chunk[o:next]
				o = next
				if rec.kind == walKindCreate || rec.kind == walKindCheckpoint {
					if !headRecord {
						return false // head record mid-file: never valid
					}
					headRecord = false
					// Resume only when the follower is on this log's history
					// AND past its head; otherwise stream the full head record
					// and let the follower reset.
					if clientEpoch == rec.epoch && *sent >= rec.seq {
						filter = true
						resume = *sent
						continue
					}
					filter = false
					if !send(raw) {
						return false
					}
					*sent = rec.seq
					pending = rec.seq
					continue
				}
				if filter && rec.seq <= resume {
					continue
				}
				if pending != 0 && rec.seq != pending {
					if !sendCommit(pending) {
						return false
					}
				}
				if !send(raw) {
					return false
				}
				*sent = rec.seq
				pending = rec.seq
			}
			off = durable
			// The durable boundary is a group boundary: close the last group
			// (or, when everything was filtered, heartbeat the head) and
			// flush so the follower applies without waiting for more.
			seqc := pending
			if seqc == 0 {
				seqc = *sent
			}
			if !sendCommit(seqc) || !flush() {
				return false
			}
			continue
		}
		// Caught up: long-poll for the next group, heartbeating while idle.
		select {
		case <-ctx.Done():
			return false
		case <-tail:
		case <-time.After(heartbeat):
			if !alive() {
				return false // graph dropped: end instead of heartbeating a ghost
			}
			if !sendCommit(*sent) || !flush() {
				return false
			}
		}
	}
}

// queryUint parses an optional unsigned integer query parameter (absent
// means zero).
func queryUint(r *http.Request, key string) (uint64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q is not an unsigned integer", errBadParam, key)
	}
	return v, nil
}
