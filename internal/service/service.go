// Package service is the connectivity-as-a-service layer: a concurrent
// multi-graph query engine managing a shard map of named live sessions,
// each an incremental parcc.Solver behind a single-writer/many-reader
// discipline.
//
// The read path is lock-free: point queries (Connected, ComponentOf,
// ComponentCount, ComponentSize) resolve the shard through a sync.Map and
// answer from the session's published immutable label snapshot
// (Solver.ReadView — one atomic pointer load), so reads never block on
// writers and never observe a half-spliced partition.  The write path is a
// single writer goroutine per shard draining a mutation queue: queued
// AddEdges/RemoveEdges calls are coalesced into combined batches before
// hitting the incremental path, amortizing the per-batch costs (the O(m)
// delete sweep, the O(n) snapshot publish) across every caller that
// queued while the previous batch was applying.  One snapshot is
// published per coalesced group, and callers are released only after the
// publish — a caller's own reads always observe its completed write.
//
// Engine errors follow the same typed-taxonomy convention as parcc
// (errors.Is / errors.As, never string matching); the HTTP layer in this
// package maps them to status codes.  docs/OPERATIONS.md is the
// deployment and tuning guide.
package service

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parcc"
	"parcc/internal/obs"
)

// ErrEngineClosed reports a call on an Engine after Close.
var ErrEngineClosed = errors.New("service: engine is closed")

// ErrGraphNotFound reports a query against a name with no live session.
var ErrGraphNotFound = errors.New("service: graph not found")

// ErrGraphExists reports a Create with a name that already has a session.
var ErrGraphExists = errors.New("service: graph already exists")

// ErrNoTrace reports a trace query against a session that has no recorded
// trace — either the engine's solvers run with tracing off, or no traced
// operation has completed yet.
var ErrNoTrace = errors.New("service: no trace recorded")

// ErrWALDisabled reports a WAL-dependent call (log streaming, compaction)
// on an engine running without Options.WALDir.
var ErrWALDisabled = errors.New("service: write-ahead log disabled")

// StaleVersionError reports a read that demanded a snapshot at least as
// new as MinVersion (?min_version=) from a session whose published
// snapshot is older — the bounded-staleness contract's refusal.  Mapped to
// HTTP 503 so a fresh retry (or another replica) can satisfy it.
type StaleVersionError struct {
	Graph      string
	Have       uint64 // the published snapshot's version
	MinVersion uint64 // what the caller demanded
}

func (e *StaleVersionError) Error() string {
	return fmt.Sprintf("service: graph %q snapshot version %d is older than required min_version %d",
		e.Graph, e.Have, e.MinVersion)
}

// VertexRangeError reports a point query with a vertex outside [0, N).
type VertexRangeError struct {
	V int // the offending vertex
	N int // the graph's vertex-count bound
}

func (e *VertexRangeError) Error() string {
	return fmt.Sprintf("service: vertex %d out of range [0,%d)", e.V, e.N)
}

// Options configures an Engine.
type Options struct {
	// Solver configures every shard's parcc.Solver (nil: parcc defaults).
	// The engine owns the live graphs, so Options.TrustGraph is safe and
	// worth setting for serving workloads (docs/OPERATIONS.md §tuning).
	Solver *parcc.Options
	// CoalesceWindow is how long the shard writer waits, after picking up
	// one mutation, for more to queue before applying the combined batch.
	// Zero (the default) coalesces only what is already queued — lowest
	// latency; larger windows trade write latency for bigger batches,
	// which matters most for deletions (one O(m) sweep per batch, however
	// many callers share it).
	CoalesceWindow time.Duration
	// MaxBatchEdges caps the edges combined into one coalesced apply
	// (default 1 << 16).  A cap keeps worst-case apply latency — and thus
	// snapshot staleness — bounded under write floods.
	MaxBatchEdges int
	// QueueDepth is the per-shard mutation queue capacity (default 256).
	// Writers beyond it block in Add/RemoveEdges — closed-loop back
	// pressure, not an error.
	QueueDepth int
	// WALDir enables per-shard durability: every coalesced mutation group
	// is appended to a write-ahead log under this directory before its
	// callers are released, and Recover replays the logs on startup.
	// Empty (the default) disables the WAL entirely.
	WALDir string
	// NoFsync skips the fsync after each logged group.  The zero value —
	// fsync on — is the safe default: with NoFsync a crash can lose
	// acknowledged writes up to the OS flush interval, in exchange for
	// append latency (docs/OPERATIONS.md §durability).  Ignored when
	// WALDir is empty.
	NoFsync bool
	// ReadOnly makes the engine a follower replica: every mutating call
	// (Create, Drop, AddEdges, RemoveEdges, Compact) fails with a
	// *parcc.ReadOnlyReplicaError, and sessions are installed only through
	// InstallReplica by the replication layer tailing a primary's logs.
	ReadOnly bool
	// Primary is the base URL of the primary that accepts writes for this
	// replica's graphs; it rides in the ReadOnlyReplicaError (and the HTTP
	// 409 body) so clients can redirect instead of retrying here.
	Primary string
}

func (o Options) withDefaults() Options {
	if o.MaxBatchEdges <= 0 {
		o.MaxBatchEdges = 1 << 16
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// Engine is the multi-session connectivity service.  All methods are safe
// for concurrent use.
type Engine struct {
	opt    Options
	shards sync.Map // name -> *shard
	closed atomic.Bool
	wg     sync.WaitGroup // one writer goroutine per live shard
	// life serializes session creation against Close: Create holds the
	// read side across the closed check, shard registration, and wg.Add,
	// so Close (write side) can never observe the closed flag set while a
	// registration is still in flight — every shard it drains is fully
	// registered, and wg.Add never races wg.Wait from a zero counter.
	// The query/mutation paths never touch it.
	life sync.RWMutex

	// start anchors the /stats since timestamp and the uptime gauge.  Go's
	// time.Time carries the monotonic clock, so Uptime is monotone across
	// wall-clock steps.
	start time.Time
	// reg is the engine's metrics registry; publish is the snapshot-publish
	// latency histogram every shard observes into, with publishFull/
	// publishDelta splitting it by publish kind (the O(n) full page build
	// vs the O(delta) copy-on-write publish).  Metric updates are
	// lock-free atomics on the serving paths; only scrapes take the
	// registry lock.
	reg          *obs.Registry
	publish      *obs.Histogram
	publishFull  *obs.Histogram
	publishDelta *obs.Histogram

	// recovering gates the API while Recover replays the write-ahead
	// logs: lookups and Creates fail with parcc.ErrRecovering (HTTP 503)
	// until every log has been replayed, so no reader can observe a graph
	// at a pre-crash state mid-replay.
	recovering atomic.Bool
	// walErrs counts groups whose WAL append failed (the in-memory apply
	// still published; the callers got the error — see shard.apply).
	walErrs atomic.Uint64
	// WAL streaming counters (the replication endpoint in stream.go).
	streamConns  atomic.Uint64 // stream requests accepted
	streamActive atomic.Int64  // streams currently open
	streamFrames atomic.Uint64 // frames sent to followers
	streamBytes  atomic.Uint64 // bytes sent to followers
	// Replay totals of the last Recover, for the metrics surface.
	replayRecords atomic.Uint64
	replayEdges   atomic.Uint64
	replayNanos   atomic.Int64
}

// New returns an empty engine.  Close releases every session.
func New(opt Options) *Engine {
	e := &Engine{opt: opt.withDefaults(), start: time.Now(), reg: obs.NewRegistry()}
	if e.opt.WALDir != "" {
		// Best-effort: an unusable directory surfaces as a typed error on
		// the first Create/Recover that touches it.
		os.MkdirAll(e.opt.WALDir, 0o755)
	}
	e.registerMetrics()
	return e
}

// registerMetrics builds the engine's Prometheus surface: engine-wide
// totals summed over shards at scrape time, derived gauges (coalesce
// ratio, queue depth), the snapshot-publish latency histogram, and the
// per-shard labeled series.  The full name table is in
// docs/ARCHITECTURE.md §8.
func (e *Engine) registerMetrics() {
	e.reg.GaugeFunc("parcc_engine_uptime_seconds",
		"Seconds since the engine started (monotonic clock).",
		func() float64 { return e.Uptime().Seconds() })
	e.reg.GaugeFunc("parcc_engine_graphs",
		"Live sessions currently served.",
		func() float64 {
			n := 0
			e.eachShard(func(*shard) { n++ })
			return float64(n)
		})
	e.reg.Collect("parcc_engine_reads_total",
		"Point queries served, summed over all sessions.", "counter",
		func(w io.Writer, name string) {
			var total uint64
			e.eachShard(func(sh *shard) { total += sh.reads.Load() })
			fmt.Fprintf(w, "%s %d\n", name, total)
		})
	e.reg.Collect("parcc_engine_writes_total",
		"Mutations accepted (callers), summed over all sessions.", "counter",
		func(w io.Writer, name string) {
			var total uint64
			e.eachShard(func(sh *shard) { total += sh.writes.Load() })
			fmt.Fprintf(w, "%s %d\n", name, total)
		})
	e.reg.Collect("parcc_engine_applies_total",
		"Combined batches applied through the incremental path.", "counter",
		func(w io.Writer, name string) {
			var total uint64
			e.eachShard(func(sh *shard) { total += sh.applies.Load() })
			fmt.Fprintf(w, "%s %d\n", name, total)
		})
	e.reg.Collect("parcc_engine_coalesced_total",
		"Mutations that shared a combined apply with another caller.", "counter",
		func(w io.Writer, name string) {
			var total uint64
			e.eachShard(func(sh *shard) { total += sh.coalesced.Load() })
			fmt.Fprintf(w, "%s %d\n", name, total)
		})
	e.reg.GaugeFunc("parcc_engine_coalesce_ratio",
		"Fraction of accepted mutations that shared an apply (coalesced/writes).",
		func() float64 {
			var coalesced, writes uint64
			e.eachShard(func(sh *shard) {
				coalesced += sh.coalesced.Load()
				writes += sh.writes.Load()
			})
			if writes == 0 {
				return 0
			}
			return float64(coalesced) / float64(writes)
		})
	e.reg.GaugeFunc("parcc_engine_edges",
		"Live edges across all sessions.",
		func() float64 {
			var total int64
			e.eachShard(func(sh *shard) { total += sh.edges.Load() })
			return float64(total)
		})
	e.reg.GaugeFunc("parcc_engine_queue_depth",
		"Mutations queued and not yet applied, summed over all shard queues.",
		func() float64 {
			total := 0
			e.eachShard(func(sh *shard) { total += len(sh.reqs) })
			return float64(total)
		})
	e.publish = e.reg.Histogram("parcc_snapshot_publish_seconds",
		"Latency of snapshot publishes, all kinds combined.")
	e.publishFull = e.reg.Histogram("parcc_snapshot_publish_full_seconds",
		"Latency of full snapshot publishes (the O(n) page build of the first publish after attach or recovery).")
	e.publishDelta = e.reg.Histogram("parcc_snapshot_publish_delta_seconds",
		"Latency of delta snapshot publishes (copy-on-write: O(pages touched by the write group)).")
	e.reg.Collect("parcc_wal_appends_total",
		"Write-ahead-log frames appended, summed over all sessions.", "counter",
		func(w io.Writer, name string) {
			var total uint64
			e.eachShard(func(sh *shard) {
				if w := sh.wal.Load(); w != nil {
					total += w.appends.Load()
				}
			})
			fmt.Fprintf(w, "%s %d\n", name, total)
		})
	e.reg.Collect("parcc_wal_bytes_total",
		"Write-ahead-log bytes appended, summed over all sessions.", "counter",
		func(w io.Writer, name string) {
			var total uint64
			e.eachShard(func(sh *shard) {
				if w := sh.wal.Load(); w != nil {
					total += w.bytes.Load()
				}
			})
			fmt.Fprintf(w, "%s %d\n", name, total)
		})
	e.reg.Collect("parcc_wal_fsyncs_total",
		"Write-ahead-log fsyncs issued, summed over all sessions.", "counter",
		func(w io.Writer, name string) {
			var total uint64
			e.eachShard(func(sh *shard) {
				if w := sh.wal.Load(); w != nil {
					total += w.fsyncs.Load()
				}
			})
			fmt.Fprintf(w, "%s %d\n", name, total)
		})
	e.reg.Collect("parcc_wal_errors_total",
		"Mutation groups whose write-ahead-log append failed (applied in memory, error returned to callers).", "counter",
		func(w io.Writer, name string) {
			fmt.Fprintf(w, "%s %d\n", name, e.walErrs.Load())
		})
	e.reg.Collect("parcc_wal_replay_records_total",
		"Write-ahead-log records replayed by the last Recover.", "counter",
		func(w io.Writer, name string) {
			fmt.Fprintf(w, "%s %d\n", name, e.replayRecords.Load())
		})
	e.reg.Collect("parcc_wal_replay_edges_total",
		"Edges replayed through the incremental path by the last Recover.", "counter",
		func(w io.Writer, name string) {
			fmt.Fprintf(w, "%s %d\n", name, e.replayEdges.Load())
		})
	e.reg.GaugeFunc("parcc_wal_replay_seconds",
		"Wall time of the last Recover's replay.",
		func() float64 { return time.Duration(e.replayNanos.Load()).Seconds() })
	e.reg.Collect("parcc_wal_checkpoints_total",
		"Write-ahead-log checkpoint rewrites (compaction), summed over all sessions.", "counter",
		func(w io.Writer, name string) {
			var total uint64
			e.eachShard(func(sh *shard) {
				if w := sh.wal.Load(); w != nil {
					total += w.checkpoints.Load()
				}
			})
			fmt.Fprintf(w, "%s %d\n", name, total)
		})
	e.reg.Collect("parcc_wal_stream_conns_total",
		"Replication stream requests accepted.", "counter",
		func(w io.Writer, name string) {
			fmt.Fprintf(w, "%s %d\n", name, e.streamConns.Load())
		})
	e.reg.GaugeFunc("parcc_wal_stream_conns_active",
		"Replication streams currently open.",
		func() float64 { return float64(e.streamActive.Load()) })
	e.reg.Collect("parcc_wal_stream_frames_total",
		"Frames sent on replication streams (including commit heartbeats).", "counter",
		func(w io.Writer, name string) {
			fmt.Fprintf(w, "%s %d\n", name, e.streamFrames.Load())
		})
	e.reg.Collect("parcc_wal_stream_bytes_total",
		"Bytes sent on replication streams.", "counter",
		func(w io.Writer, name string) {
			fmt.Fprintf(w, "%s %d\n", name, e.streamBytes.Load())
		})
	e.reg.Collect("parcc_shard_reads_total",
		"Point queries served, per session.", "counter",
		e.perShard(func(sh *shard) string { return fmt.Sprintf("%d", sh.reads.Load()) }))
	e.reg.Collect("parcc_shard_writes_total",
		"Mutations accepted, per session.", "counter",
		e.perShard(func(sh *shard) string { return fmt.Sprintf("%d", sh.writes.Load()) }))
	e.reg.Collect("parcc_shard_edges",
		"Live edge count, per session.", "gauge",
		e.perShard(func(sh *shard) string { return fmt.Sprintf("%d", sh.edges.Load()) }))
	e.reg.Collect("parcc_shard_queue_depth",
		"Queued mutations, per session.", "gauge",
		e.perShard(func(sh *shard) string { return fmt.Sprintf("%d", len(sh.reqs)) }))
	e.reg.Collect("parcc_shard_components",
		"Components in the published snapshot, per session.", "gauge",
		e.perShard(func(sh *shard) string {
			if sn := sh.s.ReadView(); sn != nil {
				return fmt.Sprintf("%d", sn.NumComponents())
			}
			return "0"
		}))
}

// eachShard visits every live shard (unordered).
func (e *Engine) eachShard(fn func(sh *shard)) {
	e.shards.Range(func(_, v any) bool {
		fn(v.(*shard))
		return true
	})
}

// perShard adapts a per-shard value function into a Collect callback that
// emits one labeled sample line per session, sorted by name so scrapes
// are deterministic.
func (e *Engine) perShard(value func(sh *shard) string) func(io.Writer, string) {
	return func(w io.Writer, name string) {
		var shs []*shard
		e.eachShard(func(sh *shard) { shs = append(shs, sh) })
		sort.Slice(shs, func(i, j int) bool { return shs[i].name < shs[j].name })
		for _, sh := range shs {
			fmt.Fprintf(w, "%s{graph=\"%s\"} %s\n", name, obs.EscapeLabel(sh.name), value(sh))
		}
	}
}

// WriteMetrics renders the engine's metrics in the Prometheus text
// exposition format — the body of GET /metrics.
func (e *Engine) WriteMetrics(w io.Writer) { e.reg.WritePrometheus(w) }

// Registry exposes the engine's metrics registry so cooperating layers
// (the replication follower) can add their own series to the same
// /metrics surface.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Recovering reports whether Recover is still replaying write-ahead logs
// (the readiness probe's recovering state).
func (e *Engine) Recovering() bool { return e.recovering.Load() }

// ReadOnly reports whether the engine is a follower replica.
func (e *Engine) ReadOnly() bool { return e.opt.ReadOnly }

// Primary returns the configured primary hint of a read-only engine.
func (e *Engine) Primary() string { return e.opt.Primary }

// walHandle resolves the named shard's log handle for the streaming
// endpoint.
func (e *Engine) walHandle(name string) (*walWriter, error) {
	sh, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	w := sh.wal.Load()
	if w == nil {
		return nil, ErrWALDisabled
	}
	return w, nil
}

// Since returns the engine's start time.
func (e *Engine) Since() time.Time { return e.start }

// Uptime returns how long the engine has been up, on the monotonic clock.
func (e *Engine) Uptime() time.Duration { return time.Since(e.start) }

// Trace returns the named session's most recent operation trace — the
// body of GET /graphs/{name}/trace.  Errors: ErrGraphNotFound, or
// ErrNoTrace when the session's solver runs with tracing off or has not
// completed a traced operation yet.
func (e *Engine) Trace(name string) (*parcc.Trace, error) {
	sh, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	tr := sh.s.LastTrace()
	if tr == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoTrace, name)
	}
	return tr, nil
}

// mutation is one queued write: a batch plus the channel its caller waits
// on.  The reply is sent after the batch is applied AND the new snapshot
// is published, so the caller's subsequent reads see its write.
type mutation struct {
	remove bool
	// compact marks a log-compaction barrier instead of a batch: the writer
	// checkpoints the WAL between groups (never inside one), so the
	// checkpoint's state is exactly the log's state at its seq.
	compact bool
	batch   []parcc.Edge
	err     chan error
}

// shard is one named live session: the incremental solver, its mutation
// queue, and the serving counters.  Exactly one writer goroutine consumes
// reqs; any number of readers answer from the solver's published snapshot.
type shard struct {
	name         string
	n            int // vertex count, fixed at Create
	s            *parcc.Solver
	reqs         chan *mutation
	done         chan struct{}  // closed when the writer has drained and exited
	publish      *obs.Histogram // engine-wide snapshot-publish latency
	publishFull  *obs.Histogram // … split: full O(n) page builds
	publishDelta *obs.Histogram // … split: O(delta) copy-on-write publishes
	// wal is the shard's write-ahead-log handle (nil: durability off).
	// Appended to only by the writer goroutine, after a group is applied
	// and before its snapshot is published and its callers released.
	// Atomic because it is published after the shard is registered, while
	// metric collectors and the stream endpoint may already be reading.
	wal     atomic.Pointer[walWriter]
	walErrs *atomic.Uint64 // engine-wide append-failure counter
	// replica marks a follower-installed shard: no writer goroutine, no
	// queue, no WAL — the replication layer owns the solver and applies
	// streamed groups itself; the engine only serves reads from it.
	replica bool

	// state guards the closing flag against enqueuers: senders hold the
	// read side across the channel send, Drop/Close take the write side
	// before closing reqs, so a send can never hit a closed channel.
	state   sync.RWMutex
	closing bool

	reads     atomic.Uint64 // point queries served
	writes    atomic.Uint64 // mutations accepted (callers)
	applies   atomic.Uint64 // combined batches applied
	coalesced atomic.Uint64 // mutations that shared an apply with another
	edges     atomic.Int64  // live edge count (maintained, not measured)
}

// Create attaches g as a new live session under name and publishes its
// first snapshot; the engine owns g afterwards (mutate it only through
// AddEdges/RemoveEdges).  Errors: ErrEngineClosed, ErrGraphExists, or
// whatever Solver.Attach rejects (e.g. an out-of-range edge in g).
func (e *Engine) Create(name string, g *parcc.Graph) error {
	e.life.RLock()
	defer e.life.RUnlock()
	if e.closed.Load() {
		return ErrEngineClosed
	}
	if e.opt.ReadOnly {
		return &parcc.ReadOnlyReplicaError{Primary: e.opt.Primary}
	}
	if e.recovering.Load() {
		return fmt.Errorf("service: %w", parcc.ErrRecovering)
	}
	if name == "" {
		return fmt.Errorf("service: empty graph name")
	}
	if g == nil {
		return parcc.ErrNilGraph
	}
	s, err := parcc.NewSolver(e.opt.Solver)
	if err != nil {
		return err
	}
	if err := s.Attach(g); err != nil {
		s.Close()
		return err
	}
	t0 := time.Now()
	if _, err := s.PublishSnapshot(); err != nil {
		s.Close()
		return err
	}
	d := time.Since(t0)
	e.publish.Observe(d)
	e.publishFull.Observe(d)
	sh := e.newShard(name, g.N, s)
	sh.edges.Store(int64(g.M()))
	if _, raced := e.shards.LoadOrStore(name, sh); raced {
		s.Close()
		return fmt.Errorf("%w: %q", ErrGraphExists, name)
	}
	if e.opt.WALDir != "" {
		// The birth record must be durable before the shard serves writes.
		// The name is registered, so no concurrent Create shares the log
		// file; mutations that queued meanwhile are failed out below if
		// the log cannot be opened — the shard is torn back down.
		if err := e.attachWAL(sh, g); err != nil {
			e.shards.Delete(name)
			// Fail out anything that queued meanwhile.  Drain concurrently
			// with taking the state lock: a sender blocked on a full queue
			// holds the read side, so the drain is what lets the write
			// side ever be acquired.
			drained := make(chan struct{})
			go func() {
				for m := range sh.reqs {
					m.err <- fmt.Errorf("%w: %q", ErrGraphNotFound, name)
				}
				close(drained)
			}()
			sh.state.Lock()
			sh.closing = true
			close(sh.reqs)
			sh.state.Unlock()
			<-drained
			s.Close()
			return err
		}
	}
	e.wg.Add(1)
	go e.writer(sh)
	return nil
}

// newShard builds a shard around an attached, published solver.
func (e *Engine) newShard(name string, n int, s *parcc.Solver) *shard {
	return &shard{
		name:         name,
		n:            n,
		s:            s,
		reqs:         make(chan *mutation, e.opt.QueueDepth),
		done:         make(chan struct{}),
		publish:      e.publish,
		publishFull:  e.publishFull,
		publishDelta: e.publishDelta,
		walErrs:      &e.walErrs,
	}
}

// attachWAL creates the shard's log and makes its birth record durable.
func (e *Engine) attachWAL(sh *shard, g *parcc.Graph) error {
	w, err := createWAL(e.opt.WALDir, sh.name, !e.opt.NoFsync)
	if err != nil {
		return err
	}
	if err := w.appendCreate(g.N, g.Edges); err != nil {
		w.Close()
		os.Remove(w.path)
		return err
	}
	sh.wal.Store(w)
	return nil
}

// Drop removes the named session: queued mutations are drained and
// applied, then the solver is released and the shard's write-ahead log
// (if any) is deleted — a dropped graph must not resurrect on the next
// recovery.  Readers that already hold the shard's snapshot keep a valid
// (now frozen) view.
func (e *Engine) Drop(name string) error {
	if e.opt.ReadOnly {
		return &parcc.ReadOnlyReplicaError{Primary: e.opt.Primary}
	}
	v, ok := e.shards.LoadAndDelete(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	sh := v.(*shard)
	sh.shutdown()
	if w := sh.wal.Load(); w != nil {
		os.Remove(w.path)
	}
	return nil
}

// Compact checkpoints the named session's write-ahead log: the live state
// becomes the log's head record and the fully-applied history before it
// is dropped, so the log's size tracks the graph, not its mutation count.
// The request rides the shard's writer queue — it runs after every
// mutation queued before it, never inside a coalesced group — and returns
// once the rewritten log is durable.  Errors: ErrGraphNotFound,
// ErrWALDisabled, *parcc.ReadOnlyReplicaError, or the rewrite's I/O error.
func (e *Engine) Compact(name string) error {
	if e.opt.ReadOnly {
		return &parcc.ReadOnlyReplicaError{Primary: e.opt.Primary}
	}
	sh, err := e.lookup(name)
	if err != nil {
		return err
	}
	if sh.wal.Load() == nil {
		return ErrWALDisabled
	}
	m := &mutation{compact: true, err: make(chan error, 1)}
	sh.state.RLock()
	if sh.closing {
		sh.state.RUnlock()
		return fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	sh.reqs <- m // may block: queue-depth back pressure
	sh.state.RUnlock()
	return <-m.err
}

// Replica is the bookkeeping handle InstallReplica returns: the narrow
// surface through which the replication layer (which applies streamed
// groups outside the engine's writer path) keeps the engine's serving
// counters honest.
type Replica struct{ sh *shard }

// SetEdges records the replica's live edge count after an applied group.
func (r *Replica) SetEdges(edges int64) { r.sh.edges.Store(edges) }

// AddApplied charges one applied stream group to the serving counters
// (surfaces in /stats and parcc_engine_applies_total).
func (r *Replica) AddApplied() {
	r.sh.applies.Add(1)
	r.sh.writes.Add(1)
}

// InstallReplica registers a read-only session around a follower-owned
// solver.  The shard gets no writer goroutine, no queue, and no log: the
// replication layer owns the solver — it applies streamed groups and
// publishes snapshots itself, and must keep the solver alive until the
// shard is dropped (DropReplica) or the engine is closed.  The engine
// only serves reads from it.  Errors: ErrEngineClosed, ErrGraphExists.
func (e *Engine) InstallReplica(name string, n int, s *parcc.Solver) (*Replica, error) {
	e.life.RLock()
	defer e.life.RUnlock()
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	if name == "" {
		return nil, fmt.Errorf("service: empty graph name")
	}
	if s == nil || s.ReadView() == nil {
		return nil, fmt.Errorf("service: replica solver has no published snapshot")
	}
	sh := e.newShard(name, n, s)
	sh.replica = true
	sh.reqs = nil // no writer: len(nil chan) = 0 keeps the queue gauges honest
	for {
		v, raced := e.shards.LoadOrStore(name, sh)
		if !raced {
			break
		}
		old := v.(*shard)
		if !old.replica {
			return nil, fmt.Errorf("%w: %q", ErrGraphExists, name)
		}
		// Replacing a replica (full-state reset) swaps the shard atomically:
		// readers move from the old snapshot to the new one without ever
		// observing the graph missing.  The old solver stays the replication
		// layer's to close.
		if e.shards.CompareAndSwap(name, v, sh) {
			break
		}
	}
	return &Replica{sh: sh}, nil
}

// DropReplica removes a replica session (e.g. when the primary's log
// identity changed and the follower must rebuild).  The solver is not
// closed — the replication layer owns it; readers already holding its
// snapshot keep a valid frozen view.
func (e *Engine) DropReplica(name string) error {
	v, ok := e.shards.LoadAndDelete(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	sh := v.(*shard)
	if !sh.replica {
		e.shards.LoadOrStore(name, sh) // not ours to drop this way
		return fmt.Errorf("service: graph %q is not a replica", name)
	}
	return nil
}

// Names lists the live sessions, sorted.
func (e *Engine) Names() []string {
	var names []string
	e.shards.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// Close drains and releases every session and rejects all further calls
// with ErrEngineClosed.  Queued mutations are applied before their
// sessions close (graceful drain); Close returns when every writer has
// exited.  Idempotent.
func (e *Engine) Close() {
	e.life.Lock()
	first := e.closed.CompareAndSwap(false, true)
	e.life.Unlock() // in-flight Creates have registered; new ones see closed
	if !first {
		e.wg.Wait() // a concurrent Close drains; wait for it
		return
	}
	e.shards.Range(func(k, v any) bool {
		if _, ours := e.shards.LoadAndDelete(k); ours {
			v.(*shard).shutdown()
		}
		return true
	})
	e.wg.Wait()
}

// RecoverStats summarizes one Engine.Recover run.
type RecoverStats struct {
	Graphs  int           // sessions reconstructed
	Records int           // WAL records replayed (including create records)
	Edges   int64         // edges replayed through the incremental path
	Elapsed time.Duration // wall time of the whole replay
}

// Recover replays every write-ahead log under Options.WALDir,
// reconstructing each named graph at its last durable state and
// registering it as a live shard — call it once, after New and before
// serving.  While it runs, every lookup and Create fails with
// parcc.ErrRecovering (HTTP 503), so no reader can observe a graph
// mid-replay.  A log's torn final record (an interrupted append) is
// truncated away — the interrupted group never released its callers, so
// dropping it is consistent; any other damage fails recovery with a
// *parcc.WALCorruptionError identifying the file and offset, and no shard
// from that log is registered (operator intervention beats silent partial
// state).  Empty logs (a Create that never wrote, or a fully torn tail)
// are removed.  With WALDir empty, Recover is a no-op.
func (e *Engine) Recover() (RecoverStats, error) {
	var st RecoverStats
	if e.opt.WALDir == "" {
		return st, nil
	}
	e.life.RLock()
	defer e.life.RUnlock()
	if e.closed.Load() {
		return st, ErrEngineClosed
	}
	e.recovering.Store(true)
	defer e.recovering.Store(false)
	t0 := time.Now()
	entries, err := os.ReadDir(e.opt.WALDir)
	if err != nil {
		return st, fmt.Errorf("service: wal dir: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), walSuffix) {
			continue
		}
		path := filepath.Join(e.opt.WALDir, ent.Name())
		rr, err := e.replayWAL(path)
		if err != nil {
			st.Elapsed = time.Since(t0)
			return st, err
		}
		if rr == nil {
			os.Remove(path) // no durable records: the graph never existed
			continue
		}
		w, err := openWAL(path, !e.opt.NoFsync, rr.version, rr.lastSeq, rr.epoch, rr.size)
		if err != nil {
			rr.solver.Close()
			st.Elapsed = time.Since(t0)
			return st, err
		}
		sh := e.newShard(rr.name, rr.n, rr.solver)
		sh.wal.Store(w)
		sh.edges.Store(rr.edges)
		if _, raced := e.shards.LoadOrStore(rr.name, sh); raced {
			// Two log files decoding to one name (hand-copied files).
			w.Close()
			rr.solver.Close()
			st.Elapsed = time.Since(t0)
			return st, &parcc.WALCorruptionError{Path: path, Reason: fmt.Sprintf("duplicate graph %q", rr.name)}
		}
		e.wg.Add(1)
		go e.writer(sh)
		st.Graphs++
		st.Records += rr.records
		st.Edges += rr.replayed
	}
	st.Elapsed = time.Since(t0)
	e.replayRecords.Store(uint64(st.Records))
	e.replayEdges.Store(uint64(st.Edges))
	e.replayNanos.Store(int64(st.Elapsed))
	return st, nil
}

// lookup resolves a shard on the lock-free read path.
func (e *Engine) lookup(name string) (*shard, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	if e.recovering.Load() {
		return nil, fmt.Errorf("service: %w", parcc.ErrRecovering)
	}
	v, ok := e.shards.Load(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	return v.(*shard), nil
}

// view resolves a shard and its current snapshot: a sync.Map load plus an
// atomic pointer load — no locks, no contention with the shard writer.
func (e *Engine) view(name string) (*shard, *parcc.Snapshot, error) {
	sh, err := e.lookup(name)
	if err != nil {
		return nil, nil, err
	}
	sn := sh.s.ReadView()
	if sn == nil {
		// Unreachable by construction (Create publishes before the shard
		// becomes visible, and nothing unpublishes); fail closed anyway.
		return nil, nil, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	return sh, sn, nil
}

// Connected reports whether u and v share a component, answered from the
// published snapshot.
func (e *Engine) Connected(name string, u, v int) (bool, error) {
	sh, sn, err := e.view(name)
	if err != nil {
		return false, err
	}
	if err := checkVertex(u, sh.n); err != nil {
		return false, err
	}
	if err := checkVertex(v, sh.n); err != nil {
		return false, err
	}
	sh.reads.Add(1)
	return sn.Connected(u, v), nil
}

// ComponentOf returns u's component representative (stable within one
// snapshot version; compare via Connected across versions).
func (e *Engine) ComponentOf(name string, u int) (int32, error) {
	sh, sn, err := e.view(name)
	if err != nil {
		return 0, err
	}
	if err := checkVertex(u, sh.n); err != nil {
		return 0, err
	}
	sh.reads.Add(1)
	return sn.ComponentOf(u), nil
}

// ComponentSize returns the size of u's component.
func (e *Engine) ComponentSize(name string, u int) (int, error) {
	sh, sn, err := e.view(name)
	if err != nil {
		return 0, err
	}
	if err := checkVertex(u, sh.n); err != nil {
		return 0, err
	}
	sh.reads.Add(1)
	return sn.ComponentSize(u), nil
}

// ComponentCount returns the exact number of components.
func (e *Engine) ComponentCount(name string) (int, error) {
	sh, sn, err := e.view(name)
	if err != nil {
		return 0, err
	}
	sh.reads.Add(1)
	return sn.NumComponents(), nil
}

// Snapshot returns the named session's current published snapshot — the
// bulk-read form of the point queries, for callers that want a consistent
// view across many lookups.
func (e *Engine) Snapshot(name string) (*parcc.Snapshot, error) {
	sh, sn, err := e.view(name)
	if err != nil {
		return nil, err
	}
	sh.reads.Add(1)
	return sn, nil
}

// AddEdges queues an insert batch on the shard writer and returns once it
// is applied and the refreshed snapshot is published.  The batch is
// validated against the vertex bound before queueing, so range errors
// return immediately and a queued batch cannot fail the combined apply it
// is coalesced into.  The engine borrows batch until the call returns.
func (e *Engine) AddEdges(name string, batch []parcc.Edge) error {
	return e.mutate(name, false, batch)
}

// RemoveEdges queues a delete batch (multiset semantics: one occurrence
// per entry, either orientation) and returns once applied and published.
// A batch with missing occurrences fails with *parcc.MissingEdgeError and
// mutates nothing — coalesced neighbors are unaffected (the writer falls
// back to per-caller application when a combined batch fails).
func (e *Engine) RemoveEdges(name string, batch []parcc.Edge) error {
	return e.mutate(name, true, batch)
}

func (e *Engine) mutate(name string, remove bool, batch []parcc.Edge) error {
	if e.opt.ReadOnly {
		return &parcc.ReadOnlyReplicaError{Primary: e.opt.Primary}
	}
	sh, err := e.lookup(name)
	if err != nil {
		return err
	}
	for _, ed := range batch {
		if err := checkVertex(int(ed.U), sh.n); err != nil {
			return &parcc.EdgeRangeError{Edge: ed, N: sh.n}
		}
		if err := checkVertex(int(ed.V), sh.n); err != nil {
			return &parcc.EdgeRangeError{Edge: ed, N: sh.n}
		}
	}
	if len(batch) == 0 {
		return nil
	}
	m := &mutation{remove: remove, batch: batch, err: make(chan error, 1)}
	sh.state.RLock()
	if sh.closing {
		sh.state.RUnlock()
		return fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	sh.reqs <- m // may block: queue-depth back pressure
	sh.state.RUnlock()
	sh.writes.Add(1)
	return <-m.err
}

func checkVertex(v, n int) error {
	if v < 0 || v >= n {
		return &VertexRangeError{V: v, N: n}
	}
	return nil
}

// shutdown stops the shard's writer after a graceful drain and releases
// its solver.  The drain order is the durability contract: queued
// mutation groups are applied and logged (each group fsync'd as it
// lands), then the log is compacted to a checkpoint if any groups landed
// since the last head record (so restarts replay a snapshot, not
// history), then the WAL handle is closed, then the session — so a
// graceful stop loses nothing and the log ends on a whole-frame boundary.
// Safe to call once per shard (Drop and Close both route through
// LoadAndDelete, which elects a single caller).
func (sh *shard) shutdown() {
	if sh.replica {
		// Follower-installed shard: no writer, no queue, no WAL; the
		// replication layer owns (and closes) the solver.
		return
	}
	sh.state.Lock()
	sh.closing = true
	close(sh.reqs)
	sh.state.Unlock()
	<-sh.done // writer drains remaining queued mutations, then exits
	if w := sh.wal.Load(); w != nil {
		if w.groupsSinceHead > 0 {
			// Best-effort: a failed checkpoint leaves the (longer, equally
			// durable) pre-compaction log for the next recovery to replay.
			if g := sh.s.Live(); g != nil {
				w.writeCheckpoint(g.N, g.Edges)
			}
		}
		w.Close()
	}
	sh.s.Close()
}

// writer is the shard's single mutator: it picks up one queued mutation,
// coalesces whatever else is waiting (bounded by MaxBatchEdges and the
// CoalesceWindow), applies the combined batches through the incremental
// path, publishes one snapshot for the whole group, and only then releases
// the callers.  Compaction barriers run between groups, never inside one.
func (e *Engine) writer(sh *shard) {
	defer e.wg.Done()
	defer close(sh.done)
	for first := range sh.reqs {
		for first != nil {
			if first.compact {
				first.err <- sh.compact()
				first = nil
				continue
			}
			var group []*mutation
			group, first = e.collect(sh, first)
			sh.apply(group)
		}
	}
}

// collect gathers the coalescing group starting at first.  With a zero
// window it takes only what is already queued; with a positive window it
// keeps listening until the window closes or the edge cap is reached.  A
// compaction barrier pulled mid-collection ends the group and is returned
// for the writer to run after the group lands.
func (e *Engine) collect(sh *shard, first *mutation) ([]*mutation, *mutation) {
	group := []*mutation{first}
	edges := len(first.batch)
	var window <-chan time.Time
	if e.opt.CoalesceWindow > 0 {
		window = time.After(e.opt.CoalesceWindow)
	}
	for edges < e.opt.MaxBatchEdges {
		if window == nil {
			select {
			case m, ok := <-sh.reqs:
				if !ok {
					return group, nil
				}
				if m.compact {
					return group, m
				}
				group = append(group, m)
				edges += len(m.batch)
			default:
				return group, nil
			}
		} else {
			select {
			case m, ok := <-sh.reqs:
				if !ok {
					return group, nil
				}
				if m.compact {
					return group, m
				}
				group = append(group, m)
				edges += len(m.batch)
			case <-window:
				return group, nil
			}
		}
	}
	return group, nil
}

// compact checkpoints the shard's log: the live state becomes the new
// head record at the current seq and the applied history before it is
// dropped.  Runs on the writer goroutine between groups, so the captured
// state is exactly the log's state at lastSeq.
func (sh *shard) compact() error {
	w := sh.wal.Load()
	if w == nil {
		return ErrWALDisabled
	}
	g := sh.s.Live()
	if g == nil {
		return parcc.ErrNotAttached // unreachable while the writer runs
	}
	return w.writeCheckpoint(g.N, g.Edges)
}

// apply runs the group through the incremental path: consecutive
// mutations of the same kind become one combined AddEdges/RemoveEdges
// call (order across kinds is preserved — an add queued before a remove
// is applied before it).  If a combined call fails, the run is replayed
// per caller so each gets its exact error and innocent neighbors still
// land.  With the WAL on, exactly the successfully applied sub-batches
// are logged and fsync'd; then one snapshot publish covers the whole
// group, and only then are the callers released — so a write is never
// acknowledged, and never visible to any reader, before it is durable.
func (sh *shard) apply(group []*mutation) {
	errs := make([]error, len(group))
	mutated := false
	wal := sh.wal.Load()
	var logged []walEntry
	ok := func(remove bool, batch []parcc.Edge) {
		mutated = true
		if wal != nil {
			logged = append(logged, walEntry{remove: remove, batch: batch})
		}
	}
	for lo := 0; lo < len(group); {
		hi := lo + 1
		for hi < len(group) && group[hi].remove == group[lo].remove {
			hi++
		}
		run := group[lo:hi]
		if len(run) == 1 {
			errs[lo] = sh.applyOne(run[0].remove, run[0].batch)
			if errs[lo] == nil {
				ok(run[0].remove, run[0].batch)
			}
			lo = hi
			continue
		}
		combined := make([]parcc.Edge, 0, runEdges(run))
		for _, m := range run {
			combined = append(combined, m.batch...)
		}
		if err := sh.applyOne(run[0].remove, combined); err != nil {
			// One caller's batch poisoned the combined apply (e.g. two
			// removes racing for the same occurrence).  Nothing was
			// mutated; replay per caller for exact attribution.
			for i, m := range run {
				errs[lo+i] = sh.applyOne(m.remove, m.batch)
				if errs[lo+i] == nil {
					ok(m.remove, m.batch)
				}
			}
		} else {
			ok(run[0].remove, combined)
			sh.coalesced.Add(uint64(len(run)))
		}
		lo = hi
	}
	if mutated && wal != nil {
		if werr := wal.appendGroup(logged); werr != nil {
			// The group is applied in memory and will publish below —
			// read-your-writes holds — but its durability failed, so
			// every caller whose batch landed gets the WAL error instead
			// of success (a write acknowledged as durable must be).
			sh.walErrs.Add(1)
			for i := range errs {
				if errs[i] == nil {
					errs[i] = werr
				}
			}
		}
	}
	if mutated {
		// Cannot fail: the writer owns the session, which is attached and
		// not closed until this goroutine exits.
		t0 := time.Now()
		sn, _ := sh.s.PublishSnapshot()
		d := time.Since(t0)
		sh.publish.Observe(d)
		if sn != nil {
			if sn.PublishedFull() {
				sh.publishFull.Observe(d)
			} else {
				sh.publishDelta.Observe(d)
			}
		}
	}
	for i, m := range group {
		m.err <- errs[i]
	}
}

// applyOne applies a single batch and maintains the serving counters.
func (sh *shard) applyOne(remove bool, batch []parcc.Edge) error {
	var err error
	if remove {
		err = sh.s.RemoveEdges(batch)
	} else {
		err = sh.s.AddEdges(batch)
	}
	if err == nil {
		sh.applies.Add(1)
		if remove {
			sh.edges.Add(int64(-len(batch)))
		} else {
			sh.edges.Add(int64(len(batch)))
		}
	}
	return err
}

func runEdges(run []*mutation) int {
	total := 0
	for _, m := range run {
		total += len(m.batch)
	}
	return total
}

// ShardStats is one session's serving counters, as reported by Stats.
type ShardStats struct {
	Name       string `json:"name"`
	N          int    `json:"n"`
	Edges      int64  `json:"edges"`
	Components int    `json:"components"`
	Version    uint64 `json:"snapshot_version"`
	Reads      uint64 `json:"reads"`
	Writes     uint64 `json:"writes"`
	Applies    uint64 `json:"applies"`
	Coalesced  uint64 `json:"coalesced"`
	Queue      int    `json:"queue"`
}

// Stats reports every live session's counters, sorted by name.  It reads
// only lock-free state (snapshot + atomics) — safe to poll in production.
func (e *Engine) Stats() []ShardStats {
	var out []ShardStats
	e.shards.Range(func(_, v any) bool {
		sh := v.(*shard)
		st := ShardStats{
			Name:      sh.name,
			N:         sh.n,
			Edges:     sh.edges.Load(),
			Reads:     sh.reads.Load(),
			Writes:    sh.writes.Load(),
			Applies:   sh.applies.Load(),
			Coalesced: sh.coalesced.Load(),
			Queue:     len(sh.reqs),
		}
		if sn := sh.s.ReadView(); sn != nil {
			st.Components = sn.NumComponents()
			st.Version = sn.Version()
		}
		out = append(out, st)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
