package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e := New(Options{})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() { srv.Close(); e.Close() })
	return e, srv
}

func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode, out
}

// TestHTTPLifecycle walks the REST surface: create, query, mutate, stats,
// snapshot, drop — and the documented status codes on every failure mode.
func TestHTTPLifecycle(t *testing.T) {
	_, srv := testServer(t)
	u := srv.URL

	st, body := doJSON(t, "PUT", u+"/graphs/demo", `{"n":6,"edges":[[0,1],[1,2],[3,4]]}`)
	if st != http.StatusCreated || body["components"].(float64) != 3 {
		t.Fatalf("create: %d %v", st, body)
	}
	if st, body = doJSON(t, "PUT", u+"/graphs/demo", `{"n":2}`); st != http.StatusConflict {
		t.Fatalf("duplicate create: %d %v", st, body)
	}
	if st, body = doJSON(t, "GET", u+"/graphs/demo/connected?u=0&v=2", ""); st != 200 || body["connected"] != true {
		t.Fatalf("connected(0,2): %d %v", st, body)
	}
	if st, body = doJSON(t, "GET", u+"/graphs/demo/connected?u=0&v=3", ""); st != 200 || body["connected"] != false {
		t.Fatalf("connected(0,3): %d %v", st, body)
	}
	if st, body = doJSON(t, "GET", u+"/graphs/demo/component?u=4", ""); st != 200 || body["size"].(float64) != 2 {
		t.Fatalf("component(4): %d %v", st, body)
	}
	if st, body = doJSON(t, "GET", u+"/graphs/demo/count", ""); st != 200 || body["components"].(float64) != 3 {
		t.Fatalf("count: %d %v", st, body)
	}

	// Mutations: read-your-write through HTTP.
	if st, body = doJSON(t, "POST", u+"/graphs/demo/edges", `{"edges":[[2,3]]}`); st != 200 || body["components"].(float64) != 2 {
		t.Fatalf("add: %d %v", st, body)
	}
	if st, body = doJSON(t, "POST", u+"/graphs/demo/edges/remove", `{"edges":[[2,3]]}`); st != 200 || body["components"].(float64) != 3 {
		t.Fatalf("remove: %d %v", st, body)
	}

	// Documented error statuses.
	if st, _ = doJSON(t, "GET", u+"/graphs/none/count", ""); st != http.StatusNotFound {
		t.Fatalf("unknown graph: %d", st)
	}
	if st, _ = doJSON(t, "GET", u+"/graphs/demo/connected?u=0&v=99", ""); st != http.StatusBadRequest {
		t.Fatalf("out-of-range query: %d", st)
	}
	if st, _ = doJSON(t, "GET", u+"/graphs/demo/connected?u=0", ""); st != http.StatusBadRequest {
		t.Fatalf("missing param: %d", st)
	}
	if st, _ = doJSON(t, "POST", u+"/graphs/demo/edges", `{"edges":[[0,99]]}`); st != http.StatusBadRequest {
		t.Fatalf("out-of-range add: %d", st)
	}
	if st, _ = doJSON(t, "POST", u+"/graphs/demo/edges/remove", `{"edges":[[0,5]]}`); st != http.StatusConflict {
		t.Fatalf("missing remove: %d", st)
	}
	if st, _ = doJSON(t, "PUT", u+"/graphs/bad", `{not json}`); st != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d", st)
	}
	if st, _ = doJSON(t, "PUT", u+"/graphs/bad", `{"n":2,"edges":[[0,9]]}`); st != http.StatusBadRequest {
		t.Fatalf("create with out-of-range edge: %d, want 400", st)
	}

	// Snapshot and stats.
	if st, body = doJSON(t, "GET", u+"/graphs/demo/snapshot", ""); st != 200 {
		t.Fatalf("snapshot: %d %v", st, body)
	} else if labels := body["labels"].([]any); len(labels) != 6 {
		t.Fatalf("snapshot labels: %v", labels)
	}
	if st, body = doJSON(t, "GET", u+"/stats", ""); st != 200 {
		t.Fatalf("stats: %d %v", st, body)
	} else if gs := body["graphs"].([]any); len(gs) != 1 {
		t.Fatalf("stats graphs: %v", gs)
	}
	if st, body = doJSON(t, "GET", u+"/graphs", ""); st != 200 || len(body["graphs"].([]any)) != 1 {
		t.Fatalf("list: %d %v", st, body)
	}

	if st, _ = doJSON(t, "DELETE", u+"/graphs/demo", ""); st != http.StatusNoContent {
		t.Fatalf("drop: %d", st)
	}
	if st, _ = doJSON(t, "DELETE", u+"/graphs/demo", ""); st != http.StatusNotFound {
		t.Fatalf("double drop: %d", st)
	}
}

// TestHTTPBatchNDJSON drives the streaming batch endpoint: ordered ops,
// read-your-writes within the stream, and per-line errors that do not
// abort it.
func TestHTTPBatchNDJSON(t *testing.T) {
	_, srv := testServer(t)
	u := srv.URL

	if st, _ := doJSON(t, "PUT", u+"/graphs/b", `{"n":5,"edges":[[0,1]]}`); st != http.StatusCreated {
		t.Fatalf("create: %d", st)
	}
	batch := strings.Join([]string{
		`{"op":"connected","u":0,"v":2}`,
		`{"op":"add","edges":[[1,2]]}`,
		`{"op":"connected","u":0,"v":2}`,
		`{"op":"component","u":2}`,
		`{"op":"remove","edges":[[4,0]]}`, // not present: per-line error
		`{"op":"count"}`,
		`{"op":"nope"}`,
	}, "\n")
	resp, err := http.Post(u+"/graphs/b/batch", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var lines []map[string]any
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		m := map[string]any{}
		if err := dec.Decode(&m); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 7 {
		t.Fatalf("got %d response lines, want 7: %v", len(lines), lines)
	}
	if lines[0]["connected"] != false {
		t.Fatalf("line 0: %v", lines[0])
	}
	if lines[1]["added"].(float64) != 1 {
		t.Fatalf("line 1: %v", lines[1])
	}
	if lines[2]["connected"] != true { // read-your-write inside the stream
		t.Fatalf("line 2: %v", lines[2])
	}
	if lines[3]["size"].(float64) != 3 {
		t.Fatalf("line 3: %v", lines[3])
	}
	if _, isErr := lines[4]["error"]; !isErr {
		t.Fatalf("line 4 should error: %v", lines[4])
	}
	if lines[5]["components"].(float64) != 3 { // stream survived the error
		t.Fatalf("line 5: %v", lines[5])
	}
	if _, isErr := lines[6]["error"]; !isErr {
		t.Fatalf("line 6 should error: %v", lines[6])
	}
}
