package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"parcc"
	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// TestFuzzBatchEndpointVsOracle is the seeded, bounded fuzz harness over
// ccserved's NDJSON batch endpoint: random op streams (adds, multiset
// removes in either orientation, invalid removes, point queries) are
// POSTed through a real HTTP round trip, and every resulting state is
// refereed three ways —
//
//   - per response line: mutating lines report added/removed counts or the
//     exact error passthrough; query lines must agree with the oracle's
//     partition at that position in the stream (reads interleave with
//     mutations line by line);
//   - per request: the published snapshot's version must index the oracle
//     history (one publish per successful mutating line, none for a failed
//     remove) and its labels must be that exact historical partition;
//   - continuously: a background reader verifies every snapshot version it
//     observes against the history, the race-test pattern, so the delete
//     fast path is exercised through the coalescing writer while reads are
//     in flight.
//
// Seeded and bounded (a few hundred ops), so it is CI-friendly and
// deterministic on the driver side; run under -race in CI.
func TestFuzzBatchEndpointVsOracle(t *testing.T) {
	const (
		n        = 160
		requests = 48
		maxVers  = 512
	)
	base := gen.GNM(n, 240, 41)
	e := New(Options{Solver: &parcc.Options{Backend: parcc.BackendConcurrent, Procs: 2}})
	defer e.Close()
	if err := e.Create("fz", base.Clone()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	client := srv.Client()

	// history[v] is the oracle partition snapshot version v must carry.
	// Create published version 1; each successful mutating line bumps it.
	oracle := baseline.NewIncOracle(base)
	var history [maxVers]atomic.Pointer[[]int32]
	init := oracle.Labels()
	history[1].Store(&init)
	vers := uint64(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			if i > 0 {
				select {
				case <-stop:
					return
				default:
				}
			}
			sn, err := e.Snapshot("fz")
			if err != nil {
				t.Errorf("background reader: %v", err)
				return
			}
			v := sn.Version()
			if v == 0 || v >= maxVers {
				t.Errorf("background reader: version %d outside the history", v)
				return
			}
			want := history[v].Load()
			if want == nil {
				t.Errorf("background reader: version %d visible before it was recorded", v)
				return
			}
			if !graph.SamePartition(*want, sn.Labels()) {
				t.Errorf("background reader: version %d is not its historical partition", v)
				return
			}
			// COW self-consistency: the paged snapshot's count and sizes
			// must agree with its own labels at every version.
			labels := sn.Labels()
			counts := map[int32]int{}
			for _, l := range labels {
				counts[l]++
			}
			if len(counts) != sn.NumComponents() {
				t.Errorf("background reader: version %d has %d labels but claims %d components",
					v, len(counts), sn.NumComponents())
				return
			}
			for u := 0; u < sn.N(); u += 13 {
				if sn.ComponentSize(u) != counts[labels[u]] {
					t.Errorf("background reader: version %d ComponentSize(%d) = %d, want %d",
						v, u, sn.ComponentSize(u), counts[labels[u]])
					return
				}
			}
		}
	}()

	// expect describes the assertion for one request line.
	type expect struct {
		key       string // response field that must be present
		errWant   bool   // line must report {"error": ...}
		connected *bool  // "connected" query: oracle's answer
		size      *int   // "component" query: oracle's component size
		count     *int   // "count" query: oracle's component count
	}
	intp := func(x int) *int { return &x }
	boolp := func(b bool) *bool { return &b }

	rng := rand.New(rand.NewSource(1003))
	cur := init // oracle labels at the current stream position
	for req := 0; req < requests; req++ {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		var exps []expect
		for l, lines := 0, 1+rng.Intn(5); l < lines; l++ {
			switch k := rng.Intn(10); {
			case k < 3: // add: random endpoints, the odd self-loop/duplicate
				cnt := 1 + rng.Intn(5)
				edges := make([][2]int32, cnt)
				batch := make([]graph.Edge, cnt)
				for i := range edges {
					u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
					if rng.Intn(8) == 0 {
						v = u
					}
					edges[i] = [2]int32{u, v}
					batch[i] = graph.Edge{U: u, V: v}
				}
				if err := oracle.AddEdges(batch); err != nil {
					t.Fatal(err)
				}
				labels := oracle.Labels()
				vers++
				history[vers].Store(&labels)
				cur = labels
				enc.Encode(batchOp{Op: "add", Edges: edges})
				exps = append(exps, expect{key: "added"})
			case k < 7 && oracle.Graph().M() > 8: // remove live occurrences
				live := oracle.Graph()
				cnt := 1 + rng.Intn(4)
				edges := make([][2]int32, 0, cnt+1)
				batch := make([]graph.Edge, 0, cnt+1)
				for _, j := range rng.Perm(live.M())[:cnt] {
					ed := live.Edges[j]
					if rng.Intn(2) == 0 {
						ed.U, ed.V = ed.V, ed.U // either orientation
					}
					edges = append(edges, [2]int32{ed.U, ed.V})
					batch = append(batch, ed)
				}
				if rng.Intn(4) == 0 {
					// Ask for one more occurrence of some entry than the
					// picks guarantee: valid only if the multiset still has a
					// spare copy — the oracle decides which, below.
					edges = append(edges, edges[0])
					batch = append(batch, batch[0])
				}
				enc.Encode(batchOp{Op: "remove", Edges: edges})
				if err := oracle.RemoveEdges(batch); err != nil {
					exps = append(exps, expect{errWant: true})
					break // oracle unchanged; engine must match
				}
				labels := oracle.Labels()
				vers++
				history[vers].Store(&labels)
				cur = labels
				exps = append(exps, expect{key: "removed"})
			case k < 8: // connected query against the current stream state
				u, v := rng.Intn(n), rng.Intn(n)
				enc.Encode(batchOp{Op: "connected", U: intp(u), V: intp(v)})
				exps = append(exps, expect{key: "connected", connected: boolp(cur[u] == cur[v])})
			case k < 9: // component size query
				u := rng.Intn(n)
				size := 0
				for _, l := range cur {
					if l == cur[u] {
						size++
					}
				}
				enc.Encode(batchOp{Op: "component", U: intp(u)})
				exps = append(exps, expect{key: "component", size: intp(size)})
			default: // component count query
				seen := map[int32]bool{}
				for _, l := range cur {
					seen[l] = true
				}
				enc.Encode(batchOp{Op: "count"})
				exps = append(exps, expect{key: "components", count: intp(len(seen))})
			}
		}
		if vers+8 >= maxVers {
			t.Fatal("history capacity exceeded; shrink the fuzz bounds")
		}

		resp, err := client.Post(srv.URL+"/graphs/fz/batch", "application/x-ndjson", &buf)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(resp.Body)
		got := 0
		for sc.Scan() {
			if got >= len(exps) {
				t.Fatalf("request %d: more response lines than ops (%d)", req, got+1)
			}
			var line map[string]any
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("request %d line %d: bad JSON %q: %v", req, got, sc.Text(), err)
			}
			exp := exps[got]
			_, hasErr := line["error"]
			if exp.errWant != hasErr {
				t.Fatalf("request %d line %d: error presence = %v, want %v (%v)", req, got, hasErr, exp.errWant, line)
			}
			if !exp.errWant {
				val, ok := line[exp.key]
				if !ok {
					t.Fatalf("request %d line %d: missing %q in %v", req, got, exp.key, line)
				}
				if exp.connected != nil && val != *exp.connected {
					t.Fatalf("request %d line %d: connected = %v, oracle says %v", req, got, val, *exp.connected)
				}
				if exp.size != nil {
					if sz, _ := line["size"].(float64); int(sz) != *exp.size {
						t.Fatalf("request %d line %d: component size = %v, oracle says %d", req, got, line["size"], *exp.size)
					}
				}
				if exp.count != nil && int(val.(float64)) != *exp.count {
					t.Fatalf("request %d line %d: count = %v, oracle says %d", req, got, val, *exp.count)
				}
			}
			got++
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if got != len(exps) {
			t.Fatalf("request %d: %d response lines for %d ops", req, got, len(exps))
		}

		// The published snapshot after the request: exactly one version per
		// successful mutating line (failed removes publish nothing), and its
		// labels are the recorded historical partition.
		sn, err := e.Snapshot("fz")
		if err != nil {
			t.Fatal(err)
		}
		if sn.Version() != vers {
			t.Fatalf("request %d: snapshot version %d, want %d", req, sn.Version(), vers)
		}
		if !graph.SamePartition(*history[vers].Load(), sn.Labels()) {
			t.Fatalf("request %d: snapshot diverges from the oracle at version %d", req, vers)
		}
	}
	close(stop)
	wg.Wait()
}
