package service

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"parcc"
	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// walStream is a recorded op stream against a WAL-backed engine: the
// per-batch oracle label history (history[i] is the partition after batch
// i; history[0] is the initial state) and the log's frame boundaries.
type walStream struct {
	name       string
	file       string // log file name (not path)
	data       []byte
	boundaries []int // boundaries[r] = byte offset just past record r-1 (boundaries[0] = 0)
	history    [][]int32
}

// buildWALStream drives a randomized add/remove stream through a
// WAL-enabled engine, one acked batch at a time (sequential callers, so
// records map 1:1 to oracle positions), and returns the log image plus
// the oracle history.
func buildWALStream(t *testing.T, backend parcc.Backend, batches int, seed int64) *walStream {
	t.Helper()
	dir := t.TempDir()
	eng := New(Options{
		Solver: &parcc.Options{Backend: backend, Procs: 3, Seed: 7},
		WALDir: dir,
	})
	defer eng.Close()

	rng := rand.New(rand.NewSource(seed))
	g0 := gen.GNM(96, 150, uint64(seed))
	oracle := baseline.NewIncOracle(g0)
	name := "crash/test graph" // exercises the name escaping too
	if err := eng.Create(name, g0.Clone()); err != nil {
		t.Fatal(err)
	}
	st := &walStream{name: name}
	snap := func() []int32 {
		labels := oracle.Labels()
		return append([]int32(nil), labels...)
	}
	st.history = append(st.history, snap())
	for b := 0; b < batches; b++ {
		live := oracle.Graph()
		if rng.Intn(10) < 6 || live.M() == 0 {
			k := 1 + rng.Intn(5)
			batch := make([]parcc.Edge, k)
			for i := range batch {
				batch[i] = parcc.Edge{U: int32(rng.Intn(live.N)), V: int32(rng.Intn(live.N))}
			}
			if err := eng.AddEdges(name, batch); err != nil {
				t.Fatalf("batch %d: AddEdges: %v", b, err)
			}
			if err := oracle.AddEdges(batch); err != nil {
				t.Fatal(err)
			}
		} else {
			k := 1 + rng.Intn(4)
			if k > live.M() {
				k = live.M()
			}
			idx := rng.Perm(live.M())[:k]
			batch := make([]parcc.Edge, 0, k)
			for _, i := range idx {
				batch = append(batch, live.Edges[i])
			}
			if err := eng.RemoveEdges(name, batch); err != nil {
				t.Fatalf("batch %d: RemoveEdges: %v", b, err)
			}
			if err := oracle.RemoveEdges(batch); err != nil {
				t.Fatal(err)
			}
		}
		st.history = append(st.history, snap())
	}
	// Capture the log image BEFORE the graceful Close: every acked batch is
	// already durable (fsync per group), and Close would compact the log to
	// a single checkpoint record — these tests want the full history.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("want 1 wal file, got %d", len(entries))
	}
	st.file = entries[0].Name()
	st.data, err = os.ReadFile(filepath.Join(dir, st.file))
	if err != nil {
		t.Fatal(err)
	}
	st.boundaries = []int{0}
	off := 0
	for off < len(st.data) {
		_, next, err := decodeWALFrame(st.data, off)
		if err != nil {
			t.Fatalf("clean log fails to decode at %d: %v", off, err)
		}
		off = next
		st.boundaries = append(st.boundaries, off)
	}
	if got, want := len(st.boundaries)-1, batches+1; got != want {
		t.Fatalf("log holds %d records, want %d (create + %d batches)", got, want, batches)
	}
	return st
}

// recoverPrefix writes a truncated copy of the stream's log and recovers
// an engine from it, returning the engine (caller closes).
func recoverPrefix(t *testing.T, st *walStream, backend parcc.Backend, cut int) *Engine {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, st.file), st.data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	eng := New(Options{
		Solver: &parcc.Options{Backend: backend, Procs: 3, Seed: 7},
		WALDir: dir,
	})
	if _, err := eng.Recover(); err != nil {
		t.Fatalf("recover at cut %d: %v", cut, err)
	}
	return eng
}

// checkRecovered asserts the recovered partition equals the oracle at
// stream position pos (records = pos+1: create + pos batches).
func checkRecovered(t *testing.T, eng *Engine, st *walStream, pos int) {
	t.Helper()
	sn, err := eng.Snapshot(st.name)
	if err != nil {
		t.Fatalf("pos %d: %v", pos, err)
	}
	want := st.history[pos]
	if !graph.SamePartition(want, sn.Labels()) {
		t.Fatalf("pos %d: recovered partition differs from oracle", pos)
	}
	if wantN := graph.NumLabels(want); sn.NumComponents() != wantN {
		t.Fatalf("pos %d: count %d, want %d", pos, sn.NumComponents(), wantN)
	}
	// The recovery publish resumes the version lockstep past every
	// pre-crash publish: create = version 1, batch i = version i+1, so a
	// log of pos+1 records recovers at version pos+2.
	if got, want := sn.Version(), uint64(pos+2); got != want {
		t.Fatalf("pos %d: version %d, want %d", pos, got, want)
	}
	// Spot-check sizes against the labels.
	counts := map[int32]int{}
	labels := sn.Labels()
	for _, l := range labels {
		counts[l]++
	}
	for v := 0; v < len(labels); v += 7 {
		if got, want := sn.ComponentSize(v), counts[labels[v]]; got != want {
			t.Fatalf("pos %d: ComponentSize(%d) = %d, want %d", pos, v, got, want)
		}
	}
}

// TestWALCrashPoints is the crash-point property satellite: the log is
// truncated at EVERY record boundary — and mid-record, for the torn-tail
// path — and each truncation must recover to exactly the oracle's
// partition at that stream position, on both backends.
func TestWALCrashPoints(t *testing.T) {
	const batches = 14
	for _, backend := range []parcc.Backend{parcc.BackendSequential, parcc.BackendConcurrent} {
		t.Run(string(backend), func(t *testing.T) {
			st := buildWALStream(t, backend, batches, 42+int64(len(backend)))
			for r := 0; r < len(st.boundaries); r++ {
				cut := st.boundaries[r]
				eng := recoverPrefix(t, st, backend, cut)
				if r == 0 {
					// No durable records: the graph never existed.
					if _, err := eng.Snapshot(st.name); !errors.Is(err, ErrGraphNotFound) {
						t.Fatalf("empty log: want ErrGraphNotFound, got %v", err)
					}
				} else {
					checkRecovered(t, eng, st, r-1)
				}
				eng.Close()

				// Mid-record cut: a torn tail of the next record must
				// recover to the same boundary.
				if r < len(st.boundaries)-1 {
					torn := recoverPrefix(t, st, backend, cut+3)
					if r == 0 {
						if _, err := torn.Snapshot(st.name); !errors.Is(err, ErrGraphNotFound) {
							t.Fatalf("torn-at-birth log: want ErrGraphNotFound, got %v", err)
						}
					} else {
						checkRecovered(t, torn, st, r-1)
					}
					torn.Close()
				}
			}
		})
	}
}

// TestWALRecoveredShardKeepsServing: a recovered shard accepts writes,
// stamps them past every pre-crash version, and survives a SECOND
// recovery — the log seam between the replayed prefix and the appended
// suffix must be invisible.
func TestWALRecoveredShardKeepsServing(t *testing.T) {
	const batches = 6
	st := buildWALStream(t, parcc.BackendSequential, batches, 99)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, st.file), st.data, 0o644); err != nil {
		t.Fatal(err)
	}
	opt := Options{Solver: &parcc.Options{Backend: parcc.BackendSequential, Seed: 7}, WALDir: dir}
	eng := New(opt)
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	checkRecovered(t, eng, st, batches)
	// One more write through the recovered shard.
	if err := eng.AddEdges(st.name, []parcc.Edge{{U: 0, V: 95}, {U: 1, V: 94}}); err != nil {
		t.Fatal(err)
	}
	sn, err := eng.Snapshot(st.name)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sn.Version(), uint64(batches+3); got != want {
		t.Fatalf("post-recovery write: version %d, want %d", got, want)
	}
	if !sn.Connected(0, 95) {
		t.Fatal("post-recovery write not visible")
	}
	eng.Close()

	// Crash again, recover again: the appended record must replay.
	eng2 := New(opt)
	if _, err := eng2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	sn2, err := eng2.Snapshot(st.name)
	if err != nil {
		t.Fatal(err)
	}
	if !sn2.Connected(0, 95) || !sn2.Connected(1, 94) {
		t.Fatal("second recovery lost the post-recovery write")
	}
	if got := sn2.Version(); got != uint64(batches+4) {
		t.Fatalf("second recovery: version %d, want %d", got, batches+4)
	}
}

// TestWALMidLogCorruptionFailsRecovery: damage anywhere but the tail is
// not recoverable-around — recovery must fail with a typed
// *parcc.WALCorruptionError (Torn=false), never silently skip records.
func TestWALMidLogCorruptionFailsRecovery(t *testing.T) {
	st := buildWALStream(t, parcc.BackendSequential, 6, 7)
	// Flip a payload byte inside the SECOND record (offsets keep framing
	// intact, so this is a checksum mismatch, not a torn tail).
	data := append([]byte(nil), st.data...)
	data[st.boundaries[1]+walHeaderLen]++
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, st.file), data, 0o644); err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Solver: &parcc.Options{}, WALDir: dir})
	defer eng.Close()
	_, err := eng.Recover()
	var ce *parcc.WALCorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("want *parcc.WALCorruptionError, got %v", err)
	}
	if ce.Torn {
		t.Fatalf("mid-log checksum damage classified as torn: %v", ce)
	}
	// Nothing may have been registered.
	if _, err := eng.Snapshot(st.name); !errors.Is(err, ErrGraphNotFound) {
		t.Fatalf("corrupt log registered a shard: %v", err)
	}
}

// TestWALTornTailTruncated: recovery truncates the torn suffix on disk,
// so the reopened log appends from a whole-frame boundary.
func TestWALTornTailTruncated(t *testing.T) {
	st := buildWALStream(t, parcc.BackendSequential, 4, 11)
	cut := st.boundaries[3] + 5 // mid-record inside record 3
	dir := t.TempDir()
	path := filepath.Join(dir, st.file)
	if err := os.WriteFile(path, st.data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Solver: &parcc.Options{}, WALDir: dir})
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(st.boundaries[3]) {
		t.Fatalf("torn tail not truncated: size %d, want %d", fi.Size(), st.boundaries[3])
	}
}

// TestWALDropRemovesLog: a dropped graph must not resurrect on recovery.
func TestWALDropRemovesLog(t *testing.T) {
	dir := t.TempDir()
	eng := New(Options{Solver: &parcc.Options{}, WALDir: dir})
	if err := eng.Create("g", gen.Cycle(16)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drop("g"); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("dropped graph left %d wal file(s)", len(entries))
	}
}

// TestRecoveringMapsTo503: the taxonomy entry the recovery gate returns
// must surface as Service Unavailable.
func TestRecoveringMapsTo503(t *testing.T) {
	rr := httptest.NewRecorder()
	writeError(rr, parcc.ErrRecovering)
	if rr.Code != 503 {
		t.Fatalf("ErrRecovering mapped to %d, want 503", rr.Code)
	}
}

// FuzzWALDecode is the decoder-robustness satellite: arbitrary bytes —
// including bit-flipped CRCs, truncated length prefixes, and garbage
// frames — must decode to a clean prefix plus a typed
// *parcc.WALCorruptionError, never panic, never allocate unboundedly,
// and never yield records past the damage.  The seeded corpus runs in
// CI's ordinary (non-fuzz) test mode.
func FuzzWALDecode(f *testing.F) {
	valid := appendWALFrame(nil, &walRecord{kind: walKindCreate, seq: 1, n: 8, batch: []parcc.Edge{{U: 0, V: 1}}})
	valid = appendWALFrame(valid, &walRecord{kind: walKindAdd, seq: 2, batch: []parcc.Edge{{U: 2, V: 3}, {U: 4, V: 5}}})
	valid = appendWALFrame(valid, &walRecord{kind: walKindRemove, seq: 3, batch: []parcc.Edge{{U: 2, V: 3}}})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(valid[:5])            // truncated length prefix
	f.Add([]byte{})             // empty
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x40 // payload bit flip → CRC mismatch
	f.Add(flipped)
	badlen := append([]byte(nil), valid...)
	badlen[0], badlen[1], badlen[2], badlen[3] = 0xff, 0xff, 0xff, 0xff // insane length
	f.Add(badlen)
	f.Add([]byte("not a wal at all, just some text that is long enough"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := decodeWAL(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("clean-prefix length %d out of [0,%d]", valid, len(data))
		}
		if err != nil {
			var ce *parcc.WALCorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("decode error is not a *parcc.WALCorruptionError: %v", err)
			}
		} else if valid != len(data) {
			t.Fatalf("nil error but clean prefix %d != input %d", valid, len(data))
		}
		// The clean prefix must re-decode cleanly to the same records —
		// no silent partial state on either side of the cut.
		recs2, valid2, err2 := decodeWAL(data[:valid])
		if err2 != nil || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("clean prefix unstable: %d/%d records, %d/%d bytes, err %v", len(recs2), len(recs), valid2, valid, err2)
		}
	})
}
