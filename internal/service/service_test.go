package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"parcc"
)

func path(n int) *parcc.Graph {
	g := parcc.NewGraph(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// TestEngineBasic drives one session end to end: create, point queries,
// a merge, a split, and the typed errors of the whole surface.
func TestEngineBasic(t *testing.T) {
	e := New(Options{})
	defer e.Close()

	if err := e.Create("g", path(6)); err != nil {
		t.Fatal(err)
	}
	if err := e.Create("g", path(2)); !errors.Is(err, ErrGraphExists) {
		t.Fatalf("duplicate Create = %v, want ErrGraphExists", err)
	}
	if got := e.Names(); len(got) != 1 || got[0] != "g" {
		t.Fatalf("Names = %v", got)
	}

	ok, err := e.Connected("g", 0, 5)
	if err != nil || !ok {
		t.Fatalf("Connected(0,5) = %v, %v on a path", ok, err)
	}
	k, err := e.ComponentCount("g")
	if err != nil || k != 1 {
		t.Fatalf("ComponentCount = %d, %v", k, err)
	}
	sz, err := e.ComponentSize("g", 3)
	if err != nil || sz != 6 {
		t.Fatalf("ComponentSize = %d, %v", sz, err)
	}

	// Split, then re-join: reads issued after a mutation returns must
	// observe it (the writer publishes before releasing the caller).
	if err := e.RemoveEdges("g", []parcc.Edge{{U: 2, V: 3}}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := e.Connected("g", 0, 5); ok {
		t.Fatal("read after RemoveEdges returned must observe the split")
	}
	if k, _ := e.ComponentCount("g"); k != 2 {
		t.Fatalf("ComponentCount after split = %d, want 2", k)
	}
	if err := e.AddEdges("g", []parcc.Edge{{U: 0, V: 5}}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := e.Connected("g", 0, 5); !ok {
		t.Fatal("read after AddEdges returned must observe the merge")
	}

	// Typed errors end to end.
	if _, err := e.Connected("nope", 0, 1); !errors.Is(err, ErrGraphNotFound) {
		t.Fatalf("unknown graph = %v, want ErrGraphNotFound", err)
	}
	var vr *VertexRangeError
	if _, err := e.Connected("g", 0, 99); !errors.As(err, &vr) || vr.V != 99 || vr.N != 6 {
		t.Fatalf("out-of-range query = %v, want *VertexRangeError{99,6}", err)
	}
	var re *parcc.EdgeRangeError
	if err := e.AddEdges("g", []parcc.Edge{{U: 0, V: 99}}); !errors.As(err, &re) {
		t.Fatalf("out-of-range add = %v, want *parcc.EdgeRangeError", err)
	}
	var me *parcc.MissingEdgeError
	if err := e.RemoveEdges("g", []parcc.Edge{{U: 0, V: 3}}); !errors.As(err, &me) {
		t.Fatalf("missing remove = %v, want *parcc.MissingEdgeError", err)
	}

	sn, err := e.Snapshot("g")
	if err != nil || sn.N() != 6 || sn.NumComponents() != 1 {
		t.Fatalf("Snapshot = %+v, %v", sn, err)
	}

	if err := e.Drop("g"); err != nil {
		t.Fatal(err)
	}
	if err := e.Drop("g"); !errors.Is(err, ErrGraphNotFound) {
		t.Fatalf("double Drop = %v, want ErrGraphNotFound", err)
	}
	e.Close()
	if err := e.Create("h", path(2)); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Create after Close = %v, want ErrEngineClosed", err)
	}
	if _, err := e.Connected("g", 0, 1); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("query after Close = %v, want ErrEngineClosed", err)
	}
}

// TestEngineCoalescing floods one shard with concurrent single-edge adds
// under a generous coalesce window: the writer must combine them into far
// fewer applies, and the end state must contain every edge.
func TestEngineCoalescing(t *testing.T) {
	e := New(Options{CoalesceWindow: 50 * time.Millisecond})
	defer e.Close()
	n := 64
	if err := e.Create("g", parcc.NewGraph(n)); err != nil {
		t.Fatal(err)
	}

	const writers = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := e.AddEdges("g", []parcc.Edge{{U: int32(w), V: int32(w + 1)}}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()

	ok, err := e.Connected("g", 0, writers)
	if err != nil || !ok {
		t.Fatalf("Connected(0,%d) = %v, %v after the adds", writers, ok, err)
	}
	st := e.Stats()
	if len(st) != 1 || st[0].Writes != writers {
		t.Fatalf("stats = %+v, want %d writes", st, writers)
	}
	if st[0].Coalesced == 0 || st[0].Applies >= writers {
		t.Fatalf("no coalescing happened: applies=%d coalesced=%d (writes=%d)",
			st[0].Applies, st[0].Coalesced, st[0].Writes)
	}
	if st[0].Edges != writers {
		t.Fatalf("edge counter = %d, want %d", st[0].Edges, writers)
	}
}

// TestEngineCoalescedRemoveConflict queues two removals of the same single
// occurrence into one group: exactly one may win; the loser gets the typed
// missing-edge error; the graph ends consistent either way.
func TestEngineCoalescedRemoveConflict(t *testing.T) {
	e := New(Options{CoalesceWindow: 50 * time.Millisecond})
	defer e.Close()
	g := parcc.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if err := e.Create("g", g); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = e.RemoveEdges("g", []parcc.Edge{{U: 0, V: 1}})
		}(i)
	}
	wg.Wait()

	var me *parcc.MissingEdgeError
	winners := 0
	for _, err := range errs {
		if err == nil {
			winners++
		} else if !errors.As(err, &me) {
			t.Fatalf("loser got %v, want *parcc.MissingEdgeError", err)
		}
	}
	if winners != 1 {
		t.Fatalf("%d removals of one occurrence succeeded, want exactly 1", winners)
	}
	if ok, _ := e.Connected("g", 0, 1); ok {
		t.Fatal("edge (0,1) still present after a successful removal")
	}
	if ok, _ := e.Connected("g", 1, 2); !ok {
		t.Fatal("innocent edge (1,2) went missing")
	}
}

// TestEngineGracefulClose closes the engine under write load: every
// in-flight mutation either lands (nil error) or is rejected with a
// taxonomy error — never a panic, never a hang.
func TestEngineGracefulClose(t *testing.T) {
	e := New(Options{})
	if err := e.Create("g", parcc.NewGraph(128)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				err := e.AddEdges("g", []parcc.Edge{{U: int32(w), V: int32((w + i) % 128)}})
				if err != nil {
					if !errors.Is(err, ErrEngineClosed) && !errors.Is(err, ErrGraphNotFound) {
						t.Errorf("writer %d: %v", w, err)
					}
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	e.Close()
	wg.Wait()
	e.Close() // idempotent
}

// TestEngineCreateCloseRace races session creation against Close: every
// Create either registers fully (and is then drained by Close) or is
// rejected with ErrEngineClosed — after both sides settle, no session may
// survive.  Run under -race: this pins the wg.Add-vs-wg.Wait ordering.
func TestEngineCreateCloseRace(t *testing.T) {
	for round := 0; round < 25; round++ {
		e := New(Options{})
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				err := e.Create(fmt.Sprintf("g%d", j), path(64))
				if err != nil && !errors.Is(err, ErrEngineClosed) {
					t.Errorf("Create: %v", err)
				}
			}(j)
		}
		e.Close()
		wg.Wait()
		if names := e.Names(); len(names) != 0 {
			t.Fatalf("round %d: sessions survived Close: %v", round, names)
		}
	}
}

// TestEngineManyShards spreads sessions across names and checks isolation:
// mutations on one shard never leak into another.
func TestEngineManyShards(t *testing.T) {
	e := New(Options{})
	defer e.Close()
	const shards = 8
	for i := 0; i < shards; i++ {
		if err := e.Create(fmt.Sprintf("s%d", i), path(10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RemoveEdges("s3", []parcc.Edge{{U: 4, V: 5}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("s%d", i)
		k, err := e.ComponentCount(name)
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		if i == 3 {
			want = 2
		}
		if k != want {
			t.Fatalf("%s has %d components, want %d", name, k, want)
		}
	}
	if got := len(e.Names()); got != shards {
		t.Fatalf("Names lists %d shards, want %d", got, shards)
	}
}
