package pram

import "testing"

func TestMarksPartitionCharges(t *testing.T) {
	m := New()
	m.For(100, func(int) {})
	m.SetMark("a")
	m.For(50, func(int) {})
	m.For(25, func(int) {})
	m.SetMark("b")
	marks := m.Marks()
	if len(marks) != 2 {
		t.Fatalf("got %d marks", len(marks))
	}
	if marks[0] != (Mark{Label: "a", Steps: 1, Work: 100}) {
		t.Errorf("mark a = %+v", marks[0])
	}
	if marks[1] != (Mark{Label: "b", Steps: 2, Work: 75}) {
		t.Errorf("mark b = %+v", marks[1])
	}
	var s, w int64
	for _, mk := range marks {
		s += mk.Steps
		w += mk.Work
	}
	if s != m.Steps() || w != m.Work() {
		t.Error("marks must partition the totals")
	}
}

func TestMarkTotalsAggregates(t *testing.T) {
	m := New()
	m.For(10, func(int) {})
	m.SetMark("x")
	m.For(20, func(int) {})
	m.SetMark("x")
	tot := m.MarkTotals()
	if tot["x"].Work != 30 || tot["x"].Steps != 2 {
		t.Errorf("aggregate = %+v", tot["x"])
	}
}

func TestResetMarks(t *testing.T) {
	m := New()
	m.For(10, func(int) {})
	m.SetMark("early")
	m.ResetMarks()
	if len(m.Marks()) != 0 {
		t.Fatal("marks should be cleared")
	}
	m.For(5, func(int) {})
	m.SetMark("later")
	if got := m.Marks()[0]; got.Work != 5 {
		t.Errorf("post-reset mark = %+v (must not include pre-reset charges)", got)
	}
}

func TestResetClearsMarkBase(t *testing.T) {
	m := New()
	m.For(10, func(int) {})
	m.Reset()
	m.For(3, func(int) {})
	m.SetMark("a")
	if got := m.Marks()[0]; got.Work != 3 || got.Steps != 1 {
		t.Errorf("mark after Reset = %+v", got)
	}
}

func TestMarksAreCopies(t *testing.T) {
	m := New()
	m.SetMark("a")
	marks := m.Marks()
	marks[0].Label = "mutated"
	if m.Marks()[0].Label != "a" {
		t.Error("Marks must return a copy")
	}
}
