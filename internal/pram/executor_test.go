package pram

import (
	"sync/atomic"
	"testing"
)

// countingExec is a minimal Executor that records how many loops it ran.
type countingExec struct {
	procs int
	loops int64
}

func (e *countingExec) Run(n int, body func(i int)) {
	atomic.AddInt64(&e.loops, 1)
	for i := 0; i < n; i++ {
		body(i)
	}
}

func (e *countingExec) Procs() int { return e.procs }

func TestOnExecutorRoutesLargeLoops(t *testing.T) {
	e := &countingExec{procs: 4}
	m := New(Seed(1), Grain(8), OnExecutor(e))
	if m.WorkersHint() != 4 {
		t.Fatalf("WorkersHint = %d, want the executor's procs", m.WorkersHint())
	}
	if m.Exec() == nil {
		t.Fatal("Exec() should return the installed executor")
	}
	hits := make([]int32, 100)
	m.For(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
	if e.loops != 1 {
		t.Fatalf("executor ran %d loops, want 1", e.loops)
	}
	// Loops below the grain stay inline.
	m.For(4, func(i int) {})
	if e.loops != 1 {
		t.Fatalf("sub-grain loop should not hit the executor (loops=%d)", e.loops)
	}
	// Charging is unaffected by the executor.
	if m.Steps() != 2 || m.Work() != 104 {
		t.Fatalf("steps=%d work=%d, want 2/104", m.Steps(), m.Work())
	}
}

func TestSequentialMachineIgnoresExecutor(t *testing.T) {
	e := &countingExec{procs: 4}
	m := New(Sequential(), OnExecutor(e), Grain(1))
	if m.Exec() != nil {
		t.Fatal("sequential machine must report no executor")
	}
	m.For(100, func(i int) {})
	if e.loops != 0 {
		t.Fatalf("sequential machine used the executor %d times", e.loops)
	}
}
