package pram

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		m := New(Workers(workers), Grain(8))
		n := 1000
		hit := make([]int32, n)
		m.For(n, func(i int) { atomic.AddInt32(&hit[i], 1) })
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForChargesTimeAndWork(t *testing.T) {
	m := New()
	m.For(100, func(int) {})
	m.For(0, func(int) {})
	m.For(50, func(int) {})
	if got := m.Steps(); got != 3 {
		t.Errorf("steps = %d, want 3", got)
	}
	if got := m.Work(); got != 150 {
		t.Errorf("work = %d, want 150", got)
	}
}

func TestForWorkChargesCustomWork(t *testing.T) {
	m := New()
	m.ForWork(100, 7, func(int) {})
	if m.Work() != 7 {
		t.Errorf("work = %d, want 7", m.Work())
	}
	if m.Steps() != 1 {
		t.Errorf("steps = %d, want 1", m.Steps())
	}
}

func TestContractSuspendsInnerCharging(t *testing.T) {
	m := New()
	m.Contract(5, 42, func() {
		m.For(1000, func(int) {})
		m.Contract(99, 99, func() {
			m.For(10, func(int) {})
		})
	})
	if m.Steps() != 5 {
		t.Errorf("steps = %d, want 5", m.Steps())
	}
	if m.Work() != 42 {
		t.Errorf("work = %d, want 42", m.Work())
	}
}

func TestReset(t *testing.T) {
	m := New()
	m.For(10, func(int) {})
	m.Reset()
	if m.Steps() != 0 || m.Work() != 0 {
		t.Errorf("after reset: steps=%d work=%d", m.Steps(), m.Work())
	}
}

func TestSequentialOrders(t *testing.T) {
	for _, ord := range []Order{Forward, Reverse, Shuffled} {
		m := New(Sequential(), WriteOrder(ord), Seed(3))
		n := 257
		hit := make([]bool, n)
		m.For(n, func(i int) {
			if hit[i] {
				t.Fatalf("%v: index %d executed twice", ord, i)
			}
			hit[i] = true
		})
		for i, h := range hit {
			if !h {
				t.Fatalf("%v: index %d never executed", ord, i)
			}
		}
	}
}

func TestSequentialOrderDeterminesWinner(t *testing.T) {
	cell := []int32{-1}
	run := func(ord Order) int32 {
		m := New(Sequential(), WriteOrder(ord))
		cell[0] = -1
		m.For(10, func(i int) { Store32(cell, 0, int32(i)) })
		return cell[0]
	}
	if got := run(Forward); got != 9 {
		t.Errorf("forward winner = %d, want 9", got)
	}
	if got := run(Reverse); got != 0 {
		t.Errorf("reverse winner = %d, want 0", got)
	}
}

func TestMax64(t *testing.T) {
	a := []int64{5}
	Max64(a, 0, 3)
	if a[0] != 5 {
		t.Errorf("Max64 lowered the value to %d", a[0])
	}
	Max64(a, 0, 9)
	if a[0] != 9 {
		t.Errorf("Max64 did not raise: %d", a[0])
	}
}

func TestMin64(t *testing.T) {
	a := []int64{5}
	Min64(a, 0, 9)
	if a[0] != 5 {
		t.Errorf("Min64 raised the value to %d", a[0])
	}
	Min64(a, 0, 2)
	if a[0] != 2 {
		t.Errorf("Min64 did not lower: %d", a[0])
	}
}

func TestMax64Concurrent(t *testing.T) {
	m := New(Workers(8), Grain(16))
	a := make([]int64, 1)
	m.For(10000, func(i int) { Max64(a, 0, int64(i)) })
	if a[0] != 9999 {
		t.Errorf("concurrent max = %d, want 9999", a[0])
	}
}

func TestP64Bounds(t *testing.T) {
	if P64(0) != 0 {
		t.Errorf("P64(0) = %d", P64(0))
	}
	if P64(1) != ^uint64(0) {
		t.Errorf("P64(1) = %d", P64(1))
	}
	if P64(-1) != 0 || P64(2) != ^uint64(0) {
		t.Error("P64 should clamp out-of-range probabilities")
	}
	half := P64(0.5)
	if half < 1<<62 || half > 3<<62 {
		t.Errorf("P64(0.5) = %d out of plausible range", half)
	}
}

func TestCoinFrequency(t *testing.T) {
	m := New(Seed(99))
	p := P64(0.25)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if m.Coin(1, i, p) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.23 || frac > 0.27 {
		t.Errorf("coin frequency %.4f, want ≈0.25", frac)
	}
}

func TestSplitMix64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		v := SplitMix64(i)
		if seen[v] {
			t.Fatalf("collision at input %d", i)
		}
		seen[v] = true
	}
}

func TestRandDeterministic(t *testing.T) {
	m1 := New(Seed(5))
	m2 := New(Seed(5))
	if m1.Rand(7, 13) != m2.Rand(7, 13) {
		t.Error("Rand not deterministic for equal seeds")
	}
	m3 := New(Seed(6))
	if m1.Rand(7, 13) == m3.Rand(7, 13) {
		t.Error("Rand identical across different seeds")
	}
}

func TestFillAndIota(t *testing.T) {
	m := New()
	a := make([]int32, 100)
	m.Fill32(a, 7)
	for _, v := range a {
		if v != 7 {
			t.Fatal("Fill32 missed an element")
		}
	}
	m.Iota32(a)
	for i, v := range a {
		if v != int32(i) {
			t.Fatal("Iota32 wrong value")
		}
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		a := []int32{0}
		Store32(a, 0, v)
		return Load32(a, 0) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(v int64) bool {
		a := []int64{0}
		Store64(a, 0, v)
		return Load64(a, 0) == v
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAndFlags(t *testing.T) {
	a32 := []int32{0}
	if Add32(a32, 0, 5) != 5 {
		t.Error("Add32 wrong return")
	}
	a64 := []int64{1}
	if Add64(a64, 0, 2) != 3 {
		t.Error("Add64 wrong return")
	}
	fl := []int32{0}
	if Flag(fl, 0) {
		t.Error("flag should start clear")
	}
	SetFlag(fl, 0)
	if !Flag(fl, 0) {
		t.Error("flag should be set")
	}
}

func TestWorkersHint(t *testing.T) {
	if New(Workers(4)).WorkersHint() != 4 {
		t.Error("WorkersHint mismatch")
	}
	if New(Sequential()).WorkersHint() != 1 {
		t.Error("sequential machine should hint 1 worker")
	}
}

func TestOrderString(t *testing.T) {
	if Forward.String() != "forward" || Reverse.String() != "reverse" || Shuffled.String() != "shuffled" {
		t.Error("Order.String mismatch")
	}
	if Order(9).String() == "" {
		t.Error("unknown order should still format")
	}
}
