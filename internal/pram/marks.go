package pram

// Mark is a named accounting checkpoint: the time and work charged since
// the previous mark.  The driver algorithms mark stage boundaries so that
// experiments can attribute cost to Stage 1 / phases / REMAIN etc.
type Mark struct {
	Label string
	Steps int64
	Work  int64
}

// SetMark records the charges accumulated since the last SetMark (or since
// construction/Reset) under the given label.  Consecutive marks therefore
// partition the run's total cost.
func (m *Machine) SetMark(label string) {
	m.marks = append(m.marks, Mark{
		Label: label,
		Steps: m.steps - m.lastMarkSteps,
		Work:  m.work - m.lastMarkWork,
	})
	m.lastMarkSteps = m.steps
	m.lastMarkWork = m.work
}

// Marks returns the recorded checkpoints in order.
func (m *Machine) Marks() []Mark {
	out := make([]Mark, len(m.marks))
	copy(out, m.marks)
	return out
}

// MarkTotals aggregates marks by label (several phases may share one).
func (m *Machine) MarkTotals() map[string]Mark {
	out := map[string]Mark{}
	for _, mk := range m.marks {
		t := out[mk.Label]
		t.Label = mk.Label
		t.Steps += mk.Steps
		t.Work += mk.Work
		out[mk.Label] = t
	}
	return out
}

// ResetMarks clears the checkpoint log (counters are untouched); the log
// keeps its capacity, since Marks hands out copies.
func (m *Machine) ResetMarks() {
	m.marks = m.marks[:0]
	m.lastMarkSteps = m.steps
	m.lastMarkWork = m.work
}
