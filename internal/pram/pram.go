// Package pram simulates an ARBITRARY CRCW PRAM on top of a goroutine pool.
//
// The paper's algorithms are specified as sequences of synchronous parallel
// loops ("for each edge ...", "for each vertex ...").  Each call to
// Machine.For is one such loop: it charges one unit of parallel time (a PRAM
// step) and one unit of work per active item, and executes the body over a
// pool of goroutines.  Concurrent writes to the same cell must be performed
// through the atomic helpers in this package; the winner is arbitrary, and —
// exactly as the ARBITRARY CRCW model demands — the algorithms built on top
// are correct no matter which writer wins.
//
// Classical PRAM primitives with known (time, work) contracts (approximate
// compaction, padded sort, perfect hashing; see internal/prim) run inside
// Machine.Contract, which suspends per-loop accounting and charges the
// published contract instead, so that the measured time and work are exactly
// the quantities the paper charges.
package pram

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Order controls how a sequential machine resolves concurrent writes.  In a
// real CRCW machine the winning writer is arbitrary; in sequential mode the
// iteration order determines the last (winning) writer, so varying the order
// exercises the "correct under any resolution" obligation of the model.
type Order int

const (
	// Forward iterates 0..n-1 (the last writer in index order wins).
	Forward Order = iota
	// Reverse iterates n-1..0.
	Reverse
	// Shuffled iterates in a seeded pseudo-random order.
	Shuffled
)

func (o Order) String() string {
	switch o {
	case Forward:
		return "forward"
	case Reverse:
		return "reverse"
	case Shuffled:
		return "shuffled"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Executor runs the bodies of parallel loops on behalf of a Machine.  It is
// the seam between the PRAM simulation and a real parallel runtime: install
// one with OnExecutor and every charged loop executes its bodies there (the
// accounting is untouched).  internal/par.Runtime satisfies it.
type Executor interface {
	// Run executes body(i) for every i in [0,n) and returns when all calls
	// have completed (establishing the step barrier).
	Run(n int, body func(i int))
	// Procs reports the parallelism degree.
	Procs() int
}

// Machine is a simulated ARBITRARY CRCW PRAM.  The zero value is not usable;
// construct with New.  All orchestration methods (For, Contract, ...) must be
// called from a single goroutine; loop bodies run concurrently.
type Machine struct {
	workers int
	seq     bool
	order   Order
	seed    uint64
	grain   int
	exec    Executor

	suspend int // >0 while running inside a Contract
	steps   int64
	work    int64

	marks         []Mark
	lastMarkSteps int64
	lastMarkWork  int64

	wg sync.WaitGroup
}

// Option configures a Machine.
type Option func(*Machine)

// Workers sets the number of goroutines used for parallel loops.
// Values < 1 select runtime.NumCPU().
func Workers(n int) Option {
	return func(m *Machine) {
		if n >= 1 {
			m.workers = n
		}
	}
}

// Sequential forces single-threaded, deterministic execution.  Combined with
// WriteOrder it makes concurrent-write resolution reproducible.
func Sequential() Option {
	return func(m *Machine) { m.seq = true; m.workers = 1 }
}

// WriteOrder selects the iteration order used in sequential mode.
func WriteOrder(o Order) Option {
	return func(m *Machine) { m.order = o }
}

// Seed sets the seed for the machine's per-step random streams.
func Seed(s uint64) Option {
	return func(m *Machine) { m.seed = s }
}

// Grain sets the minimum loop size that is split across goroutines.
func Grain(g int) Option {
	return func(m *Machine) {
		if g >= 1 {
			m.grain = g
		}
	}
}

// OnExecutor installs a parallel runtime: loop bodies large enough to split
// run there instead of on per-step spawned goroutines.  It also sets the
// worker count to the executor's parallelism.  A nil executor restores the
// built-in spawning behavior.
func OnExecutor(e Executor) Option {
	return func(m *Machine) {
		m.exec = e
		if e != nil {
			m.workers = e.Procs()
		}
	}
}

// New returns a machine with the given options applied.
func New(opts ...Option) *Machine {
	m := &Machine{
		workers: runtime.NumCPU(),
		order:   Forward,
		seed:    0x9e3779b97f4a7c15,
		grain:   4096,
	}
	for _, o := range opts {
		o(m)
	}
	if m.workers < 1 {
		m.workers = 1
	}
	return m
}

// WorkersHint returns the number of goroutines the machine uses for loops;
// primitives may use it to parallelize their uncharged internals.
func (m *Machine) WorkersHint() int {
	if m.seq {
		return 1
	}
	if m.exec != nil {
		return m.exec.Procs()
	}
	return m.workers
}

// Exec returns the installed parallel runtime, or nil when the machine runs
// sequentially or with the built-in per-step goroutines.  Uncharged helpers
// (label extraction, compaction inside Contract bodies) use it to pick the
// concurrent fast path.
func (m *Machine) Exec() Executor {
	if m.seq {
		return nil
	}
	return m.exec
}

// Steps reports the number of parallel time steps charged so far.
func (m *Machine) Steps() int64 { return m.steps }

// Work reports the total work (operations) charged so far.
func (m *Machine) Work() int64 { return m.work }

// Reset zeroes the time and work counters and the mark log, recycling the
// machine for the next solve: a Solver calls it between Solve invocations
// so a reused machine is indistinguishable from a fresh one (the per-step
// random streams restart with it, since they are keyed on the step
// counter).  The mark log keeps its capacity across resets.
func (m *Machine) Reset() {
	m.steps, m.work = 0, 0
	m.suspend = 0
	m.marks = m.marks[:0]
	m.lastMarkSteps, m.lastMarkWork = 0, 0
}

// ChargeTime adds t parallel steps without executing anything.
func (m *Machine) ChargeTime(t int64) {
	if m.suspend == 0 {
		m.steps += t
	}
}

// ChargeWork adds w units of work without executing anything.
func (m *Machine) ChargeWork(w int64) {
	if m.suspend == 0 {
		m.work += w
	}
}

// Contract runs f with per-loop accounting suspended and then charges exactly
// (time, work).  It is used by primitives whose published PRAM contracts
// differ from the depth of their portable implementation here (for example
// approximate compaction: O(log* n) time, O(n) work, Lemma 4.2).
func (m *Machine) Contract(time, work int64, f func()) {
	if m.suspend == 0 {
		m.steps += time
		m.work += work
	}
	m.suspend++
	f()
	m.suspend--
}

// For executes body(i) for every i in [0, n) as one synchronous PRAM step,
// charging one time step and n work.  Bodies run concurrently; any cell that
// can be written by more than one i in the same step must be accessed via
// the atomic helpers (Store32, WinWrite32, Max64, ...).
func (m *Machine) For(n int, body func(i int)) {
	if m.suspend == 0 {
		m.steps++
		m.work += int64(n)
	}
	m.run(n, body)
}

// ForWork is like For but charges the given per-step work instead of n.  It
// is used when only part of the items are active processors (the inactive
// bodies return immediately) and the paper charges only the active ones.
func (m *Machine) ForWork(n int, work int64, body func(i int)) {
	if m.suspend == 0 {
		m.steps++
		m.work += work
	}
	m.run(n, body)
}

func (m *Machine) run(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if m.seq || m.workers == 1 || n < m.grain {
		m.runSeq(n, body)
		return
	}
	if m.exec != nil {
		m.exec.Run(n, body)
		return
	}
	chunk := (n + m.workers - 1) / m.workers
	if chunk < 1 {
		chunk = 1
	}
	for w := 0; w < m.workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		m.wg.Add(1)
		go func(lo, hi int) {
			defer m.wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	m.wg.Wait()
}

func (m *Machine) runSeq(n int, body func(i int)) {
	switch m.order {
	case Forward:
		for i := 0; i < n; i++ {
			body(i)
		}
	case Reverse:
		for i := n - 1; i >= 0; i-- {
			body(i)
		}
	case Shuffled:
		// A seeded Feistel-free permutation: iterate a full-period LCG over
		// the next power of two and skip out-of-range values.
		size := 1
		for size < n {
			size <<= 1
		}
		mask := uint64(size - 1)
		x := SplitMix64(m.seed^uint64(m.steps)) & mask
		for k := 0; k < size; k++ {
			// x' = 5x+odd mod 2^b is a full-period LCG for any odd increment.
			x = (x*5 + (SplitMix64(m.seed)|1)&mask) & mask
			if x < uint64(n) {
				body(int(x))
			}
		}
	}
}

// Rand returns a deterministic pseudo-random word for item i of the current
// step.  Distinct (seed, step, i) triples give independent-looking streams,
// which is what the paper's per-processor coin flips require.
func (m *Machine) Rand(step int64, i int) uint64 {
	return SplitMix64(m.seed ^ uint64(step)*0x9e3779b97f4a7c15 ^ uint64(i)*0xbf58476d1ce4e5b9)
}

// Coin reports a Bernoulli(p) draw for item i of step s, with p given as a
// 64-bit fixed-point probability (see P64).
func (m *Machine) Coin(step int64, i int, p uint64) bool {
	return m.Rand(step, i) < p
}

// P64 converts a probability in [0,1] to the fixed-point form used by Coin.
func P64(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	return uint64(p * float64(1<<63) * 2)
}

// SplitMix64 is the SplitMix64 mixing function; it is the package's universal
// source of deterministic pseudo-randomness.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Store32 atomically stores v into a[i].  Under concurrent stores an
// arbitrary writer wins, matching the ARBITRARY CRCW write rule.
func Store32(a []int32, i int, v int32) { atomic.StoreInt32(&a[i], v) }

// Load32 atomically loads a[i].
func Load32(a []int32, i int) int32 { return atomic.LoadInt32(&a[i]) }

// Store64 atomically stores v into a[i].
func Store64(a []int64, i int, v int64) { atomic.StoreInt64(&a[i], v) }

// Load64 atomically loads a[i].
func Load64(a []int64, i int) int64 { return atomic.LoadInt64(&a[i]) }

// Max64 atomically raises a[i] to v if v is larger.  It implements the
// argmax-by-concurrent-write trick (proof of Lemma 5.8) with a single
// hardware primitive of the same O(1) cost.
func Max64(a []int64, i int, v int64) {
	for {
		cur := atomic.LoadInt64(&a[i])
		if v <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(&a[i], cur, v) {
			return
		}
	}
}

// Min64 atomically lowers a[i] to v if v is smaller.
func Min64(a []int64, i int, v int64) {
	for {
		cur := atomic.LoadInt64(&a[i])
		if v >= cur {
			return
		}
		if atomic.CompareAndSwapInt64(&a[i], cur, v) {
			return
		}
	}
}

// Add64 atomically adds d to a[i] and returns the new value.
func Add64(a []int64, i int, d int64) int64 { return atomic.AddInt64(&a[i], d) }

// CAS32 performs a compare-and-swap on a[i].
func CAS32(a []int32, i int, old, new int32) bool {
	return atomic.CompareAndSwapInt32(&a[i], old, new)
}

// Add32 atomically adds d to a[i] and returns the new value.
func Add32(a []int32, i int, d int32) int32 { return atomic.AddInt32(&a[i], d) }

// SetFlag atomically sets a[i] to 1.
func SetFlag(a []int32, i int) { atomic.StoreInt32(&a[i], 1) }

// Flag reports whether a[i] is nonzero.
func Flag(a []int32, i int) bool { return atomic.LoadInt32(&a[i]) != 0 }

// Fill32 sets every element of a to v as one charged step of len(a) work.
func (m *Machine) Fill32(a []int32, v int32) {
	m.For(len(a), func(i int) { a[i] = v })
}

// Iota32 fills a with 0,1,2,... as one charged step.
func (m *Machine) Iota32(a []int32) {
	m.For(len(a), func(i int) { a[i] = int32(i) })
}
