// Package solve defines the solve-context threaded from a parcc.Solver
// down through every algorithm layer: the PRAM machine doing the cost
// accounting, the scratch arena recycling working arrays across solves,
// and the provider of cached CSR plans.  The compatibility wrappers of the
// algorithm packages build a bare context (nil arena, uncached plans)
// around their machine argument, so one-shot calls behave exactly as
// before; a Solver installs a persistent arena and plan cache, turning the
// same code paths near-zero-alloc on repeat solves.
package solve

import (
	"sort"

	"parcc/internal/graph"
	"parcc/internal/obs"
	"parcc/internal/par"
	"parcc/internal/pram"
	"parcc/internal/prim"
)

// Ctx carries the borrowed per-solve state.  The machine is always
// non-nil; a nil Arena degrades every Grab to make (one-shot mode); a nil
// plan provider builds plans on demand without caching.  A Ctx is owned by
// the session's single orchestrating goroutine and must never be shared
// across concurrent solves — the same discipline as the arena and machine
// it wraps.  The Grab/Release accessors are uncharged (scratch management
// is serving infrastructure, not PRAM work); charged helpers (VertexSet,
// NumLabels via Contract) say so explicitly.
type Ctx struct {
	M *pram.Machine
	A *par.Arena

	// Rec receives phase spans and counters from the algorithm layers.
	// Nil means tracing is off — obs.Recorder methods no-op on nil, so the
	// layers call it unconditionally (the nil-safety contract of
	// internal/obs).
	Rec *obs.Recorder

	planFn func(*graph.Graph) *graph.Plan
	inc    *IncScratch
}

// IncScratch is the dirty-set scratch of the incremental path: the working
// buffers Solver.RemoveEdges needs to extract and re-solve the subgraph
// induced by the components its deletions touched.  It lives on the Ctx so
// the buffers persist across batches — a steady stream of deletion batches
// reuses one set of backings instead of reallocating per batch.  All
// fields are plain reusable storage with no invariants between calls;
// owned by the session's single orchestrating goroutine (the same
// discipline as the arena), never shared.
type IncScratch struct {
	// Verts lists the dirty vertices (global ids) of the current batch.
	Verts []int32
	// Sub is the reused backing for the induced dirty subgraph.
	Sub *graph.Graph
	// SubLabels is the reused label output of the scoped re-solve.
	SubLabels []int32
}

// Inc returns the context's incremental scratch, lazily created.  Uncharged
// accessor; see IncScratch for the ownership contract.
func (c *Ctx) Inc() *IncScratch {
	if c.inc == nil {
		c.inc = &IncScratch{}
	}
	return c.inc
}

// New returns a bare one-shot context around m: no arena, no plan cache.
func New(m *pram.Machine) *Ctx { return &Ctx{M: m} }

// WithArena installs a scratch arena and returns c.
func (c *Ctx) WithArena(a *par.Arena) *Ctx { c.A = a; return c }

// WithRecorder installs a trace recorder (nil keeps tracing off) and
// returns c.
func (c *Ctx) WithRecorder(r *obs.Recorder) *Ctx { c.Rec = r; return c }

// WithPlanner installs a plan provider (typically a Solver's cache) and
// returns c.
func (c *Ctx) WithPlanner(fn func(*graph.Graph) *graph.Plan) *Ctx {
	c.planFn = fn
	return c
}

// Plan returns the CSR plan for g — from the installed provider when one
// is set (the Solver's cache), otherwise freshly built on the machine's
// executor.
func (c *Ctx) Plan(g *graph.Graph) *graph.Plan {
	if c.planFn != nil {
		if p := c.planFn(g); p != nil {
			return p
		}
	}
	return graph.BuildPlanOn(c.M.Exec(), g)
}

// Grab32 returns a zeroed []int32 of length n from the arena (or make).
func (c *Ctx) Grab32(n int) []int32 { return c.A.Grab32(n) }

// Grab32Cap returns an empty []int32 with capacity ≥ n.
func (c *Ctx) Grab32Cap(n int) []int32 { return c.A.Grab32Cap(n) }

// Release32 returns a Grab32/Grab32Cap buffer to the arena.
func (c *Ctx) Release32(s []int32) { c.A.Release32(s) }

// Grab64 returns a zeroed []int64 of length n from the arena (or make).
func (c *Ctx) Grab64(n int) []int64 { return c.A.Grab64(n) }

// Grab64Cap returns an empty []int64 with capacity ≥ n (no zeroing).
func (c *Ctx) Grab64Cap(n int) []int64 { return c.A.Grab64Cap(n) }

// Release64 returns a Grab64 buffer to the arena.
func (c *Ctx) Release64(s []int64) { c.A.Release64(s) }

// GrabEdges returns a zeroed []graph.Edge of length n from the arena.
func (c *Ctx) GrabEdges(n int) []graph.Edge { return c.A.GrabEdges(n) }

// GrabEdgesCap returns an empty edge slice with capacity ≥ n.
func (c *Ctx) GrabEdgesCap(n int) []graph.Edge { return c.A.GrabEdgesCap(n) }

// ReleaseEdges returns a GrabEdges/GrabEdgesCap buffer to the arena.
func (c *Ctx) ReleaseEdges(s []graph.Edge) { c.A.ReleaseEdges(s) }

// CopyEdges returns an arena-backed copy of E (the pass-by-value edge-set
// convention used throughout the stages).
func (c *Ctx) CopyEdges(E []graph.Edge) []graph.Edge {
	out := c.GrabEdges(len(E))
	copy(out, E)
	return out
}

// NumLabels counts the distinct values of labels (all in [0,n)) with an
// arena flag sweep — the allocation-free equivalent of graph.NumLabels for
// the serving hot path.
func NumLabels(c *Ctx, labels []int32, n int) int {
	if n == 0 {
		return 0
	}
	flag := c.Grab32(n)
	count := 0
	for _, l := range labels {
		if flag[l] == 0 {
			flag[l] = 1
			count++
		}
	}
	c.Release32(flag)
	return count
}

// VertexSet returns the distinct endpoints of E in increasing order — the
// one shared implementation of the V(E) primitive (previously duplicated,
// and map-ordered in stage1, which made sequential runs nondeterministic).
// The charged cost is the approximate-compaction contract over the edge
// set: O(log* n) time, O(|E|) work.  The actual work tracks the charge: a
// flag-array sweep runs only when the edge set is dense enough that O(n) =
// O(|E|); sparse edge sets take a sort-dedup of the 2|E| endpoints, whose
// log factor is uncharged like the other sort-backed contracts in
// internal/prim.  Both paths yield the same sorted list on every backend.
func VertexSet(c *Ctx, n int, E []graph.Edge) []int32 {
	m := c.M
	var out []int32
	m.Contract(prim.LogStar(n)+1, int64(len(E)), func() {
		if 16*len(E) >= n {
			flag := c.Grab32(n)
			if e := m.Exec(); e != nil {
				e.Run(len(E), func(i int) {
					pram.SetFlag(flag, int(E[i].U))
					pram.SetFlag(flag, int(E[i].V))
				})
				out = par.CompactIndices(e, n, func(v int) bool { return flag[v] != 0 })
			} else {
				for _, ed := range E {
					flag[ed.U], flag[ed.V] = 1, 1
				}
				for v := 0; v < n; v++ {
					if flag[v] != 0 {
						out = append(out, int32(v))
					}
				}
			}
			c.Release32(flag)
			return
		}
		ends := c.Grab32Cap(2 * len(E))[:2*len(E)]
		for i, ed := range E {
			ends[2*i], ends[2*i+1] = ed.U, ed.V
		}
		sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
		for i, v := range ends {
			if i == 0 || ends[i-1] != v {
				out = append(out, v)
			}
		}
		c.Release32(ends)
	})
	return out
}
