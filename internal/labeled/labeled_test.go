package labeled

import (
	"testing"
	"testing/quick"

	"parcc/internal/graph"
	"parcc/internal/pram"
)

func TestNewForestIsFlat(t *testing.T) {
	f := New(10)
	for v := int32(0); v < 10; v++ {
		if !f.IsRoot(v) {
			t.Fatal("fresh forest should be all roots")
		}
	}
	if f.MaxHeight() != 0 {
		t.Fatal("fresh forest height should be 0")
	}
}

func TestRootChase(t *testing.T) {
	f := New(5)
	f.P[3] = 2
	f.P[2] = 1
	f.P[1] = 0
	if f.Root(3) != 0 {
		t.Fatalf("Root(3) = %d", f.Root(3))
	}
	if f.Root(4) != 4 {
		t.Fatal("isolated root should be itself")
	}
}

func TestAlterMovesAndDropsLoops(t *testing.T) {
	m := pram.New()
	f := New(6)
	f.P[1] = 0
	f.P[2] = 0
	E := []graph.Edge{{U: 1, V: 2}, {U: 1, V: 3}, {U: 4, V: 5}}
	out := Alter(m, f, E)
	// (1,2) -> (0,0) loop dropped; (1,3) -> (0,3); (4,5) unchanged
	if len(out) != 2 {
		t.Fatalf("alter kept %d edges, want 2", len(out))
	}
	if out[0] != (graph.Edge{U: 0, V: 3}) {
		t.Fatalf("altered edge = %v", out[0])
	}
}

func TestAlterKeepRetainsLoops(t *testing.T) {
	m := pram.New()
	f := New(4)
	f.P[1] = 0
	E := []graph.Edge{{U: 0, V: 1}}
	AlterKeep(m, f, E)
	if E[0] != (graph.Edge{U: 0, V: 0}) {
		t.Fatalf("altered = %v", E[0])
	}
}

func TestShortcutHalvesDepth(t *testing.T) {
	m := pram.New()
	f := New(8)
	for v := 1; v < 8; v++ {
		f.P[v] = int32(v - 1) // chain of depth 7
	}
	h0 := f.MaxHeight()
	ShortcutAll(m, f)
	if f.MaxHeight() >= h0 {
		t.Fatal("shortcut must reduce height")
	}
	FlattenAll(m, f)
	if f.MaxHeight() > 1 {
		t.Fatalf("flatten left height %d", f.MaxHeight())
	}
	for v := int32(0); v < 8; v++ {
		if f.Root(v) != 0 {
			t.Fatal("flatten changed roots")
		}
	}
}

func TestShortcutSubset(t *testing.T) {
	m := pram.New()
	f := New(4)
	f.P[3] = 2
	f.P[2] = 1
	Shortcut(m, f, []int32{3})
	if f.P[3] != 1 {
		t.Fatalf("p[3] = %d, want 1", f.P[3])
	}
	if f.P[2] != 1 {
		t.Fatal("untouched vertex changed")
	}
}

func TestLabels(t *testing.T) {
	f := New(6)
	f.P[1] = 0
	f.P[2] = 1 // height 2: labels must still resolve to 0
	f.P[4] = 5
	l := f.Labels()
	want := []int32{0, 0, 0, 3, 5, 5}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("labels = %v, want %v", l, want)
		}
	}
}

func TestLabelsDeepChain(t *testing.T) {
	n := 50000
	f := New(n)
	for v := 1; v < n; v++ {
		f.P[v] = int32(v - 1)
	}
	l := f.Labels()
	for v := 0; v < n; v++ {
		if l[v] != 0 {
			t.Fatalf("deep chain label[%d] = %d", v, l[v])
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	f := New(4)
	s := f.Snapshot()
	f.P[2] = 0
	f.Restore(s)
	if f.P[2] != 2 {
		t.Fatal("restore failed")
	}
	sub := f.SnapshotOf([]int32{1, 3})
	f.P[1] = 0
	f.P[3] = 0
	f.RestoreOf([]int32{1, 3}, sub)
	if f.P[1] != 1 || f.P[3] != 3 {
		t.Fatal("partial restore failed")
	}
}

func TestCheckAcyclic(t *testing.T) {
	f := New(4)
	f.P[1] = 2
	f.P[2] = 1 // 2-cycle among non-roots
	if f.CheckAcyclic() == nil {
		t.Fatal("cycle not detected")
	}
	g := New(4)
	g.P[1] = 0
	if err := g.CheckAcyclic(); err != nil {
		t.Fatalf("false positive: %v", err)
	}
}

func TestCheckEdgesOnRoots(t *testing.T) {
	f := New(4)
	f.P[1] = 0
	E := []graph.Edge{{U: 1, V: 2}}
	if CheckEdgesOnRoots(f, E) == nil {
		t.Fatal("non-root end not detected")
	}
	if err := CheckEdgesOnRoots(f, []graph.Edge{{U: 0, V: 2}}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSameComponent(t *testing.T) {
	f := New(4)
	truth := []int32{0, 0, 2, 2}
	f.P[1] = 0
	if err := CheckSameComponent(f, truth); err != nil {
		t.Fatal(err)
	}
	f.P[2] = 0 // crosses components
	if CheckSameComponent(f, truth) == nil {
		t.Fatal("cross-component parent not detected")
	}
}

func TestRoots(t *testing.T) {
	f := New(5)
	f.P[1] = 0
	f.P[3] = 4
	all := f.Roots(nil)
	if len(all) != 3 {
		t.Fatalf("roots = %v", all)
	}
	some := f.Roots([]int32{0, 1, 3, 4})
	if len(some) != 2 {
		t.Fatalf("subset roots = %v", some)
	}
}

func TestFlattenAllProperty(t *testing.T) {
	// Any acyclic parent assignment flattens to the same root labels.
	f := func(seed int64) bool {
		n := 64
		fo := New(n)
		// build random forest: p[v] < v or v itself
		s := uint64(seed)
		for v := 1; v < n; v++ {
			s = pram.SplitMix64(s)
			if s&1 == 0 {
				fo.P[v] = int32(s % uint64(v))
			}
		}
		want := fo.Labels()
		m := pram.New()
		FlattenAll(m, fo)
		if fo.MaxHeight() > 1 {
			return false
		}
		got := fo.Labels()
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
