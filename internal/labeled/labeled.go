// Package labeled implements the labeled digraph of §2.1: the global parent
// field v.p over all vertices, plus the shared subroutines ALTER and
// SHORTCUT that every stage of the algorithm uses.  Arcs (v, v.p) form the
// forest; a vertex with v.p == v is a root; trees of height ≤ 1 are flat.
//
// The package also exposes the structural invariants the paper proves
// (heights, acyclicity, edges-on-roots) as checkable predicates so that
// tests can assert Lemmas 4.5–4.9/4.21/5.22 directly on running state.
package labeled

import (
	"fmt"

	"parcc/internal/graph"
	"parcc/internal/par"
	"parcc/internal/pram"
)

// Forest is the labeled digraph: P[v] is the parent of v.
type Forest struct {
	P   []int32
	tmp []int32    // scratch for synchronous shortcuts
	ar  *par.Arena // optional arena backing P and tmp (session solves)
}

// New returns the initial forest where every vertex is its own parent.
func New(n int) *Forest {
	return NewOn(nil, n)
}

// NewOn is New with the parent array (and shortcut scratch) drawn from an
// arena, for session solves; release with Free when the solve is done.  A
// nil arena is equivalent to New.
func NewOn(a *par.Arena, n int) *Forest {
	f := &Forest{P: a.Grab32(n), ar: a}
	for i := range f.P {
		f.P[i] = int32(i)
	}
	return f
}

// Free returns the forest's buffers to the arena it was built on (no-op
// for plain New forests).  The forest must not be used afterwards.
func (f *Forest) Free() {
	if f.ar == nil {
		return
	}
	f.ar.Release32(f.P)
	if f.tmp != nil {
		f.ar.Release32(f.tmp)
	}
	f.P, f.tmp = nil, nil
}

// Len returns the number of vertices.
func (f *Forest) Len() int { return len(f.P) }

// IsRoot reports whether v is a root.
func (f *Forest) IsRoot(v int32) bool { return f.P[v] == v }

// Parent returns v.p.
func (f *Forest) Parent(v int32) int32 { return f.P[v] }

// Root chases parent pointers from v to the root of its tree.
func (f *Forest) Root(v int32) int32 {
	for f.P[v] != v {
		v = f.P[v]
	}
	return v
}

// Snapshot returns a copy of the parent array, for the phase-revert step of
// INTERWEAVE (Step 5).
func (f *Forest) Snapshot() []int32 {
	s := make([]int32, len(f.P))
	copy(s, f.P)
	return s
}

// Restore overwrites the parent array from a snapshot.
func (f *Forest) Restore(s []int32) {
	copy(f.P, s)
}

// SnapshotOf copies the parents of the listed vertices only (the paper's
// revert copies pointers for v ∈ V(G′), Lemma 7.17).
func (f *Forest) SnapshotOf(vs []int32) []int32 {
	s := make([]int32, len(vs))
	f.SnapshotOfInto(vs, s)
	return s
}

// SnapshotOfInto is SnapshotOf into a caller-owned buffer of len(vs).
func (f *Forest) SnapshotOfInto(vs, dst []int32) {
	for i, v := range vs {
		dst[i] = f.P[v]
	}
}

// RestoreOf undoes SnapshotOf.
func (f *Forest) RestoreOf(vs []int32, s []int32) {
	for i, v := range vs {
		f.P[v] = s[i]
	}
}

// Alter is ALTER(E) of §4.2: replace each edge (u,v) by (u.p, v.p) and
// remove loops.  The surviving edges are returned compacted (the paper keeps
// holes and compacts with Lemma 4.2 where needed; folding the filter into
// the same step charges the same O(|E|) work and O(1) time).
func Alter(m *pram.Machine, f *Forest, E []graph.Edge) []graph.Edge {
	p := f.P
	m.For(len(E), func(i int) {
		E[i].U = pram.Load32(p, int(E[i].U))
		E[i].V = pram.Load32(p, int(E[i].V))
	})
	var out []graph.Edge
	m.Contract(1, int64(len(E)), func() {
		// The loop filter is uncharged (the contract above carries the model
		// cost); on the concurrent backend it runs as a parallel compaction,
		// which produces the same edge order as the sequential filter.  The
		// compacted edges are copied back into E's backing so the caller's
		// buffer ownership (and the session arena's accounting) survives
		// Alter on every backend.
		if e := m.Exec(); e != nil && len(E) >= 1<<14 {
			tmp := par.Compact(e, E, func(i int) bool { return E[i].U != E[i].V })
			out = E[:len(tmp)]
			e.Run(len(tmp), func(i int) { out[i] = tmp[i] })
			return
		}
		out = E[:0]
		for _, e := range E {
			if e.U != e.V {
				out = append(out, e)
			}
		}
	})
	return out
}

// AlterKeep replaces endpoints by parents but keeps loops in place, for the
// call sites (Stage 2/3) where the paper explicitly retains loops.
func AlterKeep(m *pram.Machine, f *Forest, E []graph.Edge) {
	p := f.P
	m.For(len(E), func(i int) {
		E[i].U = pram.Load32(p, int(E[i].U))
		E[i].V = pram.Load32(p, int(E[i].V))
	})
}

// Shortcut is SHORTCUT(V): v.p = v.p.p for each listed vertex.  PRAM steps
// are synchronous — a step's reads see the previous step's state — so the
// grandparents are gathered into scratch before any cell is written; without
// this, intra-step cascades would compress paths faster than the model
// allows and corrupt the time accounting.
func Shortcut(m *pram.Machine, f *Forest, vs []int32) {
	p := f.P
	tmp := f.scratch(len(vs))
	m.For(len(vs), func(i int) {
		pv := pram.Load32(p, int(vs[i]))
		tmp[i] = pram.Load32(p, int(pv))
	})
	m.For(len(vs), func(i int) {
		pram.Store32(p, int(vs[i]), tmp[i])
	})
}

// ShortcutAll applies v.p = v.p.p to every vertex (synchronously; see
// Shortcut).
func ShortcutAll(m *pram.Machine, f *Forest) {
	p := f.P
	tmp := f.scratch(len(p))
	m.For(len(p), func(i int) {
		pv := pram.Load32(p, i)
		tmp[i] = pram.Load32(p, int(pv))
	})
	m.For(len(p), func(i int) {
		pram.Store32(p, i, tmp[i])
	})
}

// FlattenAll shortcuts every vertex until all trees are flat, charging one
// round per iteration.  Rounds are O(log maxHeight).
func FlattenAll(m *pram.Machine, f *Forest) {
	p := f.P
	tmp := f.scratch(len(p))
	// The loop bodies are hoisted so the rounds share two closure values
	// instead of allocating fresh ones per iteration (they capture only
	// loop-invariant variables).
	flag := []int32{0}
	gather := func(i int) {
		pv := pram.Load32(p, i)
		gp := pram.Load32(p, int(pv))
		if gp != pv {
			pram.SetFlag(flag, 0)
		}
		tmp[i] = gp
	}
	write := func(i int) {
		pram.Store32(p, i, tmp[i])
	}
	for {
		flag[0] = 0
		m.For(len(p), gather)
		m.For(len(p), write)
		if flag[0] == 0 {
			return
		}
	}
}

// scratch returns a reusable buffer of at least k parent slots.  Forest
// methods are orchestrated from a single goroutine, so one buffer suffices.
func (f *Forest) scratch(k int) []int32 {
	if cap(f.tmp) < k {
		if f.ar != nil && f.tmp != nil {
			f.ar.Release32(f.tmp)
		}
		f.tmp = f.ar.Grab32(k)
	}
	return f.tmp[:k]
}

// Labels returns the final component labels: the root of each vertex.  This
// is an output helper (memoized pointer-chase), not a charged PRAM step.
func (f *Forest) Labels() []int32 {
	return f.LabelsInto(nil)
}

// LabelsInto is Labels writing into dst when it has the capacity (the
// zero-alloc serving path); a short dst is replaced by a fresh array.
// Scratch comes from the forest's arena when it has one.
func (f *Forest) LabelsInto(dst []int32) []int32 {
	n := len(f.P)
	out := dst
	if cap(out) < n {
		out = make([]int32, n)
	}
	out = out[:n]
	state := f.ar.Grab32(n) // 0 unvisited, 1 done, 2 on stack
	stack := make([]int32, 0, 64)
	for v := 0; v < n; v++ {
		if state[v] == 1 {
			continue
		}
		x := int32(v)
		stack = stack[:0]
		for state[x] == 0 && f.P[x] != x {
			stack = append(stack, x)
			state[x] = 2 // on stack
			x = f.P[x]
			if state[x] == 2 {
				// Defensive: a cycle among non-roots would be a bug in the
				// algorithms; treat the current vertex as the representative.
				break
			}
		}
		var root int32
		if state[x] == 1 {
			root = out[x]
		} else {
			root = x
			out[x] = x
			state[x] = 1
		}
		for _, y := range stack {
			out[y] = root
			state[y] = 1
		}
	}
	f.ar.Release32(state)
	return out
}

// MaxHeight returns the maximum tree height (0 for singleton trees, per the
// paper's definition).  Test helper; uncharged.
func (f *Forest) MaxHeight() int {
	depth := make([]int32, len(f.P))
	for i := range depth {
		depth[i] = -1
	}
	var h int
	var chase func(v int32) int32
	chase = func(v int32) int32 {
		if depth[v] >= 0 {
			return depth[v]
		}
		if f.P[v] == v {
			depth[v] = 0
			return 0
		}
		depth[v] = chase(f.P[v]) + 1
		return depth[v]
	}
	for v := range f.P {
		d := int(chase(int32(v)))
		if d > h {
			h = d
		}
	}
	return h
}

// CheckAcyclic verifies that the only cycles are self-loops at roots.
func (f *Forest) CheckAcyclic() error {
	n := len(f.P)
	state := make([]int8, n)
	for v := 0; v < n; v++ {
		x := int32(v)
		var path []int32
		for state[x] == 0 {
			if f.P[x] == x {
				break
			}
			state[x] = 2
			path = append(path, x)
			x = f.P[x]
			if state[x] == 2 {
				return fmt.Errorf("cycle through non-root vertex %d", x)
			}
		}
		for _, y := range path {
			state[y] = 1
		}
	}
	return nil
}

// CheckEdgesOnRoots verifies the Lemma 4.9/4.21 postcondition that both ends
// of every edge are roots.
func CheckEdgesOnRoots(f *Forest, E []graph.Edge) error {
	for i, e := range E {
		if !f.IsRoot(e.U) || !f.IsRoot(e.V) {
			return fmt.Errorf("edge %d=(%d,%d) has a non-root end (p=%d,%d)",
				i, e.U, e.V, f.P[e.U], f.P[e.V])
		}
	}
	return nil
}

// CheckSameComponent verifies contraction safety: every vertex's parent lies
// in the same ground-truth component.
func CheckSameComponent(f *Forest, truth []int32) error {
	for v, p := range f.P {
		if truth[v] != truth[p] {
			return fmt.Errorf("vertex %d (comp %d) points to parent %d (comp %d)",
				v, truth[v], p, truth[p])
		}
	}
	return nil
}

// Roots returns the current roots among the given vertices (or all vertices
// if vs is nil).  Uncharged helper for stage drivers and tests.
func (f *Forest) Roots(vs []int32) []int32 {
	var out []int32
	if vs == nil {
		for v := range f.P {
			if f.P[v] == int32(v) {
				out = append(out, int32(v))
			}
		}
		return out
	}
	for _, v := range vs {
		if f.P[v] == v {
			out = append(out, v)
		}
	}
	return out
}
