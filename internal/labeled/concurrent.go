package labeled

import (
	"parcc/internal/par"
	"parcc/internal/pram"
)

// LabelsOn returns component labels exactly like (*Forest).Labels — the root
// of every vertex's tree — but computes them by concurrent pointer jumping
// on the given executor.  Like Labels it is an uncharged output helper, so
// routing it through the runtime changes wall clock only, never the model
// costs.  A nil executor falls back to the sequential memoized chase.  The
// forest itself is not mutated.
func LabelsOn(e pram.Executor, f *Forest) []int32 {
	return LabelsOnInto(e, f, nil)
}

// LabelsOnInto is LabelsOn writing into dst when it has the capacity — the
// zero-alloc serving path of Solver.SolveInto.  A short dst is replaced by
// a fresh array.
func LabelsOnInto(e pram.Executor, f *Forest, dst []int32) []int32 {
	if e == nil || e.Procs() == 1 {
		return f.LabelsInto(dst)
	}
	out := dst
	if cap(out) < len(f.P) {
		out = make([]int32, len(f.P))
	}
	out = out[:len(f.P)]
	e.Run(len(out), func(v int) { out[v] = f.P[v] })
	par.Compress(e, out)
	return out
}
