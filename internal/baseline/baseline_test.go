package baseline

import (
	"testing"
	"testing/quick"
	"time"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/pram"
)

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":      graph.New(0),
		"isolated":   graph.New(20),
		"path":       gen.Path(100),
		"cycle":      gen.Cycle(64),
		"grid":       gen.Grid(8, 9),
		"expander":   gen.RandomRegular(128, 4, 1),
		"gnm":        gen.GNM(150, 200, 2),
		"components": gen.Union(gen.Path(20), gen.Cycle(15), graph.New(5)),
		"loops":      graph.FromPairs(4, [][2]int{{0, 0}, {1, 2}, {2, 2}}),
		"parallel":   graph.FromPairs(3, [][2]int{{0, 1}, {0, 1}, {1, 2}}),
	}
}

func TestUnionFindMatchesBFS(t *testing.T) {
	for name, g := range testGraphs() {
		want := BFSLabels(g)
		got := UnionFindLabels(g)
		if !graph.SamePartition(want, got) {
			t.Errorf("%s: union-find disagrees with BFS", name)
		}
	}
}

func TestShiloachVishkinMatchesBFS(t *testing.T) {
	for name, g := range testGraphs() {
		m := pram.New(pram.Seed(1))
		f := ShiloachVishkin(m, g)
		if !graph.SamePartition(BFSLabels(g), f.Labels()) {
			t.Errorf("%s: SV disagrees with BFS", name)
		}
	}
}

func TestShiloachVishkinSequentialOrders(t *testing.T) {
	g := gen.Union(gen.Cycle(40), gen.Grid(6, 7))
	for _, ord := range []pram.Order{pram.Forward, pram.Reverse, pram.Shuffled} {
		m := pram.New(pram.Sequential(), pram.WriteOrder(ord))
		f := ShiloachVishkin(m, g)
		if !graph.SamePartition(BFSLabels(g), f.Labels()) {
			t.Errorf("%v: SV wrong under this write order", ord)
		}
	}
}

func TestRandomMateMatchesBFS(t *testing.T) {
	for name, g := range testGraphs() {
		m := pram.New(pram.Seed(1))
		f := RandomMate(m, g, 99)
		if !graph.SamePartition(BFSLabels(g), f.Labels()) {
			t.Errorf("%s: random-mate disagrees with BFS", name)
		}
	}
}

func TestLabelPropMatchesBFS(t *testing.T) {
	for name, g := range testGraphs() {
		m := pram.New(pram.Seed(1))
		got := LabelProp(m, g)
		if !graph.SamePartition(BFSLabels(g), got) {
			t.Errorf("%s: label propagation disagrees with BFS", name)
		}
	}
}

func TestUnionFindCount(t *testing.T) {
	u := NewUnionFind(5)
	if u.Count() != 5 {
		t.Fatal("fresh count")
	}
	if !u.Union(0, 1) || u.Count() != 4 {
		t.Fatal("union should merge")
	}
	if u.Union(0, 1) {
		t.Fatal("repeated union should report false")
	}
	u.Union(2, 3)
	u.Union(1, 3)
	if u.Count() != 2 {
		t.Fatalf("count = %d, want 2", u.Count())
	}
	if u.Find(0) != u.Find(2) {
		t.Fatal("0 and 2 should share a representative")
	}
}

func TestSVWorkScalesWithLogN(t *testing.T) {
	// SV charges full edge scans per round: on a path its round count grows
	// with log n, so work/(m+n) must grow too — the E2 contrast baseline.
	work := func(n int) float64 {
		g := gen.Path(n)
		m := pram.New(pram.Seed(3))
		ShiloachVishkin(m, g)
		return float64(m.Work()) / float64(g.M()+g.N)
	}
	small, large := work(1<<8), work(1<<13)
	if large <= small {
		t.Errorf("SV normalized work should grow: %f -> %f", small, large)
	}
}

func TestRandomGraphsAgainstBFS(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.GNM(60, 70, seed)
		m := pram.New(pram.Seed(seed))
		return graph.SamePartition(BFSLabels(g), ShiloachVishkin(m, g).Labels()) &&
			graph.SamePartition(BFSLabels(g), UnionFindLabels(g)) &&
			graph.SamePartition(BFSLabels(g), LabelProp(pram.New(pram.Seed(seed)), g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestShiloachVishkinHookCycleRegression(t *testing.T) {
	// Regression: under concurrent execution the old star hook checked the
	// target's rootness with a racy live read; on this instance three star
	// roots check-then-wrote concurrently and closed a 3-cycle of parent
	// pointers (11 -> 34 -> 12 -> 11), which the synchronous shortcut maps
	// to its inverse forever.  Snapshot-only hook decisions must terminate.
	seed := uint64(0xc0bad6722deab0a4)
	g := gen.GNM(60, 70, seed)
	done := make(chan *labeled.Forest, 1)
	m := pram.New(pram.Seed(seed))
	go func() { done <- ShiloachVishkin(m, g) }()
	select {
	case f := <-done:
		if !graph.SamePartition(BFSLabels(g), f.Labels()) {
			t.Fatal("wrong partition")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Shiloach-Vishkin livelocked")
	}
}

func TestBFSLabelsUseSmallestVertex(t *testing.T) {
	g := gen.Union(gen.Path(3), gen.Path(2))
	l := BFSLabels(g)
	if l[0] != 0 || l[3] != 3 {
		t.Errorf("labels should be the component's smallest vertex: %v", l)
	}
}

func TestParallelBFSMatchesBFS(t *testing.T) {
	for name, g := range testGraphs() {
		m := pram.New(pram.Seed(1))
		got := ParallelBFS(m, g)
		if !graph.SamePartition(BFSLabels(g), got) {
			t.Errorf("%s: parallel BFS disagrees with BFS", name)
		}
	}
}

func TestParallelBFSRoundsScaleWithDiameter(t *testing.T) {
	rounds := func(g *graph.Graph) int64 {
		m := pram.New(pram.Seed(1))
		ParallelBFS(m, g)
		return m.Steps()
	}
	short := rounds(gen.Star(1024))
	long := rounds(gen.Path(1024))
	if long <= short*4 {
		t.Errorf("path rounds %d should dwarf star rounds %d", long, short)
	}
}

func TestParallelBFSWorkLinear(t *testing.T) {
	// O(m+n) total work: each edge relaxes O(1) times overall.
	g := gen.RandomRegular(1<<13, 4, 3)
	m := pram.New(pram.Seed(1))
	ParallelBFS(m, g)
	norm := float64(m.Work()) / float64(g.M()+g.N)
	if norm > 20 {
		t.Errorf("parallel BFS normalized work %.1f too high", norm)
	}
}

func TestShiloachVishkinNoLivelock(t *testing.T) {
	// Regression: a union of eight 4-regular expanders livelocked the
	// star-hooking step (a conditional hook and a star hook formed a
	// mutual 2-cycle that the synchronous shortcut reset identically every
	// round).  The snapshot-root target checks must keep this terminating.
	g := gen.ManyComponents(8, func(i int) *graph.Graph {
		return gen.RandomRegular(1<<12, 4, uint64(i))
	})
	done := make(chan *labeled.Forest, 1)
	m := pram.New(pram.Seed(1))
	go func() { done <- ShiloachVishkin(m, g) }()
	select {
	case f := <-done:
		if !graph.SamePartition(BFSLabels(g), f.Labels()) {
			t.Fatal("wrong partition")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Shiloach-Vishkin livelocked")
	}
}

func TestShiloachVishkinManySeedsManyShapes(t *testing.T) {
	// Broad livelock sweep: every run must terminate and be exact.
	for seed := uint64(1); seed <= 6; seed++ {
		g := gen.ManyComponents(4, func(i int) *graph.Graph {
			return gen.GNM(300, 500, seed*31+uint64(i))
		})
		m := pram.New(pram.Seed(seed))
		f := ShiloachVishkin(m, g)
		if !graph.SamePartition(BFSLabels(g), f.Labels()) {
			t.Fatalf("seed %d: wrong partition", seed)
		}
	}
}
