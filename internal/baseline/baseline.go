// Package baseline implements the comparison algorithms the paper positions
// itself against:
//
//   - sequential BFS labelling (ground truth; the O(m) sequential optimum
//     [Tar72]);
//   - union-find with path compression and union by rank;
//   - Shiloach–Vishkin / Awerbuch–Shiloach CRCW connectivity [SV82, AS87]:
//     O(log n) time, Θ((m+n) log n) work;
//   - Reif's random-mate contraction [Rei84]: O(log n) time, Θ((m+n) log n)
//     work in this form;
//   - synchronous minimum-label propagation: Θ(d) rounds.
//
// The PRAM variants run on the simulator and charge per-round costs, so the
// work/time comparisons in experiments E2/E10 are model-level, not
// wall-clock artifacts.
package baseline

import (
	"parcc/internal/graph"
	"parcc/internal/labeled"
	"parcc/internal/par"
	"parcc/internal/pram"
	"parcc/internal/prim"
	"parcc/internal/solve"
)

// BFSLabels returns component labels (smallest vertex in the component) by
// sequential breadth-first search.  Used as ground truth everywhere.
func BFSLabels(g *graph.Graph) []int32 {
	return BFSLabelsCSR(graph.BuildCSR(g), g.N, nil)
}

// BFSLabelsInto is BFSLabels against the context's cached CSR plan,
// writing into dst when it has the capacity; the BFS queue comes from the
// arena.
func BFSLabelsInto(cx *solve.Ctx, g *graph.Graph, dst []int32) []int32 {
	// Capacity g.N: the queue can hold a whole component, so it never
	// regrows past the arena's buffer on the warm path.
	queue := cx.Grab32Cap(g.N)
	out := bfsLabels(cx.Plan(g).CSR, g.N, dst, queue)
	cx.Release32(queue)
	return out
}

// BFSLabelsCSR runs the BFS labeling over a prebuilt adjacency.
func BFSLabelsCSR(csr *graph.CSR, n int, dst []int32) []int32 {
	return bfsLabels(csr, n, dst, make([]int32, 0, 1024))
}

func bfsLabels(csr *graph.CSR, n int, dst, queue []int32) []int32 {
	labels := dst
	if cap(labels) < n {
		labels = make([]int32, n)
	}
	labels = labels[:n]
	for i := range labels {
		labels[i] = -1
	}
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		root := int32(s)
		labels[s] = root
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range csr.Neighbors(v) {
				if labels[w] < 0 {
					labels[w] = root
					queue = append(queue, w)
				}
			}
		}
	}
	return labels
}

// UnionFind is a sequential disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int32
	rank   []int32
	count  int
}

// NewUnionFind returns a forest of n singletons.
func NewUnionFind(n int) *UnionFind {
	return NewUnionFindOn(nil, n)
}

// NewUnionFindOn is NewUnionFind with the arrays drawn from an arena (nil
// is equivalent to NewUnionFind); release them with Free.
func NewUnionFindOn(a *par.Arena, n int) *UnionFind {
	u := &UnionFind{parent: a.Grab32(n), rank: a.Grab32(n), count: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Free returns the forest's arrays to the arena.  The forest must not be
// used afterwards.
func (u *UnionFind) Free(a *par.Arena) {
	a.Release32(u.parent)
	a.Release32(u.rank)
	u.parent, u.rank = nil, nil
}

// Find returns the representative of x with path compression.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b; reports whether they were distinct.
func (u *UnionFind) Union(a, b int32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Count returns the number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// UnionFindLabels labels components with a sequential union-find pass.
func UnionFindLabels(g *graph.Graph) []int32 {
	return UnionFindLabelsInto(solve.New(nil), g, nil)
}

// UnionFindLabelsInto is UnionFindLabels with the forest drawn from the
// context's arena and labels written into dst when it has the capacity.
func UnionFindLabelsInto(cx *solve.Ctx, g *graph.Graph, dst []int32) []int32 {
	u := NewUnionFindOn(cx.A, g.N)
	for _, e := range g.Edges {
		u.Union(e.U, e.V)
	}
	labels := dst
	if cap(labels) < g.N {
		labels = make([]int32, g.N)
	}
	labels = labels[:g.N]
	for v := range labels {
		labels[v] = u.Find(int32(v))
	}
	u.Free(cx.A)
	return labels
}

// ShiloachVishkin runs the Awerbuch–Shiloach simplification of the
// Shiloach–Vishkin connectivity algorithm on the machine and returns the
// resulting forest.  Each round performs conditional star hooking,
// unconditional star hooking, and a shortcut, each a full O(m+n)-work step,
// for O(log n) rounds: Θ((m+n) log n) total work.
func ShiloachVishkin(m *pram.Machine, g *graph.Graph) *labeled.Forest {
	return ShiloachVishkinCtx(solve.New(m), g)
}

// ShiloachVishkinCtx is ShiloachVishkin on a solve context; the returned
// forest comes from the arena (the caller frees it).
func ShiloachVishkinCtx(cx *solve.Ctx, g *graph.Graph) *labeled.Forest {
	m := cx.M
	n := g.N
	f := labeled.NewOn(cx.A, n)
	p := f.P
	old := cx.Grab32(n) // pre-step snapshot: PRAM steps read old state
	star := cx.Grab32(n)
	tmp := cx.Grab32(n)
	changed := []int32{1}
	snapshot := func() {
		m.For(n, func(v int) { old[v] = pram.Load32(p, v) })
	}
	// Past this cap the star-hooking step is disabled: conditional hooking
	// plus shortcutting alone is a terminating, correct (slower) algorithm,
	// so the cap is a liveness backstop, never a correctness risk.
	capRounds := 4*log2ceil(n) + 64
	for rounds := 0; changed[0] != 0; rounds++ {
		changed[0] = 0
		// Conditional hooking: roots hook onto strictly smaller roots.
		snapshot()
		m.For(len(g.Edges), func(i int) {
			e := g.Edges[i]
			hookCond(p, old, e.U, e.V, changed)
			hookCond(p, old, e.V, e.U, changed)
		})
		if rounds <= capRounds {
			computeStars(m, p, star)
			// Unconditional hooking for stars (onto any different root).
			snapshot()
			m.For(len(g.Edges), func(i int) {
				e := g.Edges[i]
				if pram.Flag(star, int(e.U)) {
					hookStar(p, old, star, e.U, e.V, changed)
				}
				if pram.Flag(star, int(e.V)) {
					hookStar(p, old, star, e.V, e.U, changed)
				}
			})
		}
		// Shortcut (synchronous: gather grandparents, then write).
		m.For(n, func(v int) {
			pv := pram.Load32(p, v)
			gp := pram.Load32(p, int(pv))
			if gp != pv {
				pram.SetFlag(changed, 0)
			}
			tmp[v] = gp
		})
		m.For(n, func(v int) { pram.Store32(p, v, tmp[v]) })
	}
	cx.Release32(old)
	cx.Release32(star)
	cx.Release32(tmp)
	return f
}

// Hooking discipline.  Both hook kinds decide purely from the pre-step
// snapshot (old) and write the live array, and both require the target pv
// to be a root *in the snapshot*.  Deciding from a racy live read instead
// (a previous revision checked p[pv]==pv at write time) admits hooking
// cycles: with k mutually adjacent stars, all k check-then-write pairs can
// interleave so every check passes before any write lands, producing a
// k-cycle of parent pointers — and the synchronous shortcut only permutes a
// cycle (a 2-cycle resets to two roots, a 3-cycle maps to its inverse), so
// the round repeats forever.  Snapshot-only decisions make the write set of
// a step a deterministic function of the pre-step state, independent of the
// goroutine interleaving; the rules below then forbid cycles outright.
//
// No-cycle argument: every write targets p[pu] for a snapshot root pu, so a
// cycle could only pass through written roots, following pu -> pv where pv
// is the next written root on the cycle.  In the conditional step every
// edge has pv < pu — a strictly decreasing cycle is impossible.  In the
// star step a written root is a star root; hooking onto a *larger* target
// is allowed only when the target's tree is not a star, so an edge of the
// cycle pointing at a written (star) root must again have pv < pu.  Roots
// therefore never resurrect, |roots| is non-increasing and drops on every
// hook, and shortcut-only rounds strictly reduce total height: the loop
// terminates under any write interleaving.

// hookCond points u's snapshot root at v's snapshot parent when the latter
// is a strictly smaller snapshot root.
func hookCond(p, old []int32, u, v int32, changed []int32) {
	pu := old[u]
	if old[pu] != pu {
		return
	}
	pv := old[v]
	if old[pv] == pv && pv < pu {
		pram.Store32(p, int(pu), pv)
		pram.SetFlag(changed, 0)
	}
}

// hookStar hooks the root of a star vertex u onto v's snapshot parent: any
// smaller root, or a larger root whose tree is not a star (a larger star
// would reciprocate and could close a 2-cycle; it hooks onto us instead).
func hookStar(p, old, star []int32, u, v int32, changed []int32) {
	pu := old[u]
	if old[pu] != pu {
		return
	}
	pv := old[v]
	if pv == pu || old[pv] != pv {
		return
	}
	if pv < pu || !pram.Flag(star, int(pv)) {
		pram.Store32(p, int(pu), pv)
		pram.SetFlag(changed, 0)
	}
}

func log2ceil(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// computeStars marks star[v] = 1 iff v belongs to a tree of height ≤ 1,
// using the standard three-step procedure.
func computeStars(m *pram.Machine, p []int32, star []int32) {
	n := len(p)
	m.For(n, func(v int) { star[v] = 1 })
	m.For(n, func(v int) {
		pv := pram.Load32(p, v)
		gp := pram.Load32(p, int(pv))
		if gp != pv {
			pram.Store32(star, v, 0)
			pram.Store32(star, int(gp), 0)
		}
	})
	m.For(n, func(v int) {
		pv := pram.Load32(p, v)
		if !pram.Flag(star, int(pv)) {
			pram.Store32(star, v, 0)
		}
	})
}

// RandomMate runs Reif's random-mate contraction: every round each root
// flips a coin; head-roots hook onto adjacent tail-roots; then a shortcut.
// O(log n) rounds w.h.p., full edge scans per round.
func RandomMate(m *pram.Machine, g *graph.Graph, seed uint64) *labeled.Forest {
	return RandomMateCtx(solve.New(m), g, seed)
}

// RandomMateCtx is RandomMate on a solve context; the returned forest
// comes from the arena (the caller frees it).
func RandomMateCtx(cx *solve.Ctx, g *graph.Graph, seed uint64) *labeled.Forest {
	m := cx.M
	f := labeled.NewOn(cx.A, g.N)
	p := f.P
	E := cx.CopyEdges(g.Edges)
	coin := cx.Grab32(g.N)
	round := int64(0)
	for len(E) > 0 {
		round++
		m.For(g.N, func(v int) {
			if pram.SplitMix64(seed^uint64(round)<<32^uint64(v))&1 == 1 {
				coin[v] = 1
			} else {
				coin[v] = 0
			}
		})
		m.For(len(E), func(i int) {
			e := E[i]
			uRoot := pram.Load32(p, int(e.U)) == e.U
			vRoot := pram.Load32(p, int(e.V)) == e.V
			if !uRoot || !vRoot {
				return
			}
			if coin[e.U] == 1 && coin[e.V] == 0 {
				pram.Store32(p, int(e.U), e.V)
			} else if coin[e.V] == 1 && coin[e.U] == 0 {
				pram.Store32(p, int(e.V), e.U)
			}
		})
		labeled.ShortcutAll(m, f)
		E = labeled.Alter(m, f, E)
	}
	cx.Release32(coin)
	cx.ReleaseEdges(E)
	return f
}

// LabelProp runs synchronous minimum-label propagation until fixpoint:
// Θ(diameter) rounds.  Returns labels directly.
func LabelProp(m *pram.Machine, g *graph.Graph) []int32 {
	return LabelPropInto(solve.New(m), g, nil)
}

// LabelPropInto is LabelProp on a solve context, writing into dst when it
// has the capacity.
//
// The rounds are frontier-driven (par.Frontier): only vertices whose label
// changed in the previous round push their label across their incident
// edges, and only vertices whose shadow value actually dropped are
// committed and re-seeded.  A vertex outside the frontier pushed its
// (unchanged) label the last time it changed — and labels only decrease —
// so the skipped pushes are exactly the redundant ones: the label
// evolution is round-identical to the classic dense formulation (snapshot,
// relax every edge, commit every vertex), while the charged work per round
// is Σ deg over the frontier plus the touched-set commit instead of
// m + n.  lab64 is a persistent shadow of lab (equal at every round
// boundary), so no per-round snapshot pass runs at all.
func LabelPropInto(cx *solve.Ctx, g *graph.Graph, dst []int32) []int32 {
	m := cx.M
	n := g.N
	csr := cx.Plan(g).CSR
	lab := dst
	if cap(lab) < n {
		lab = make([]int32, n)
	}
	lab = lab[:n]
	m.Iota32(lab)
	lab64 := cx.Grab64(n)
	m.For(n, func(v int) { lab64[v] = int64(lab[v]) })
	// The frontier pair stays in full/sparse-list mode throughout so the
	// machine's per-index loops can address it by position.
	cur := par.NewFrontier(cx.A, n)
	touched := par.NewFrontier(cx.A, n)
	cur.SeedAll()
	// Hoisted round bodies: the rounds share two closures instead of
	// allocating two per round.
	relax := func(i int) {
		v := cur.At(i)
		lv := int64(lab[v])
		for _, u := range csr.Neighbors(v) {
			// The pre-check makes membership exact: u is touched iff its
			// shadow strictly dropped (whoever wins the racing Min64, some
			// strict lowerer also Adds u; the bitmap dedups).
			if lv < pram.Load64(lab64, int(u)) {
				pram.Min64(lab64, int(u), lv)
				touched.Add(u)
			}
		}
	}
	commit := func(i int) {
		v := touched.At(i)
		lab[v] = int32(lab64[v])
	}
	for cur.Count() > 0 {
		touched.BeginCollect(true)
		var relaxWork int64
		for i, l := 0, cur.Len(); i < l; i++ {
			relaxWork += int64(csr.Deg(cur.At(i)))
		}
		m.ForWork(cur.Len(), relaxWork, relax)
		m.ForWork(touched.Len(), int64(touched.Len()), commit)
		cur.Clear()
		cur, touched = touched, cur
	}
	cur.Free(cx.A)
	touched.Free(cx.A)
	cx.Release64(lab64)
	return lab
}

// ParallelBFS labels components by multi-source level-synchronous BFS: all
// unvisited vertices start a frontier wave per component.  It is the
// natural work-optimal comparator at the other end of the time spectrum:
// O(d) rounds and O(m+n) total work (each edge relaxes O(1) times per
// wave), against which the paper's O(log(1/λ) + log log n) rounds are
// measured.  Frontier compaction per round uses the approximate-compaction
// contract like the rest of the codebase.
func ParallelBFS(m *pram.Machine, g *graph.Graph) []int32 {
	return ParallelBFSInto(solve.New(m), g, nil)
}

// ParallelBFSInto is ParallelBFS against the context's cached CSR plan,
// with the frontier machinery drawn from the arena and labels written into
// dst when it has the capacity.
func ParallelBFSInto(cx *solve.Ctx, g *graph.Graph, dst []int32) []int32 {
	m := cx.M
	n := g.N
	csr := cx.Plan(g).CSR
	labels := dst
	if cap(labels) < n {
		labels = make([]int32, n)
	}
	labels = labels[:n]
	m.For(n, func(v int) { labels[v] = int32(v) })
	// Every vertex is initially its own frontier; a vertex adopts the
	// smallest label seen among its neighbors' waves.  Rather than running
	// one BFS per component sequentially (which would charge Σd rounds),
	// all components proceed in parallel: per round, every frontier vertex
	// relaxes its edges once.
	frontier := cx.Grab32(n)
	m.Iota32(frontier)
	lab64 := cx.Grab64(n)
	inNf := cx.Grab32(n) // membership of the next frontier (uncharged dedup)
	// Hoisted round bodies (closures capture the frontier/nf variables, so
	// reassigning them between rounds is visible inside).
	var nf []int32
	snap := func(i int) {
		v := frontier[i]
		pram.Store64(lab64, int(v), int64(labels[v]))
	}
	relax := func(i int) {
		v := frontier[i]
		lv := int64(labels[v])
		for _, w := range csr.Neighbors(v) {
			pram.Min64(lab64, int(w), lv)
		}
	}
	advance := func() {
		for _, v := range frontier {
			for _, w := range csr.Neighbors(v) {
				if int32(lab64[w]) < labels[w] && inNf[w] == 0 {
					inNf[w] = 1
					nf = append(nf, w)
				}
			}
		}
		for _, w := range nf {
			labels[w] = int32(lab64[w])
			inNf[w] = 0
		}
	}
	for len(frontier) > 0 {
		m.ForWork(len(frontier), int64(len(frontier)), snap)
		var relaxWork int64
		for _, v := range frontier {
			relaxWork += int64(csr.Deg(v))
		}
		m.ForWork(len(frontier), relaxWork, relax)
		// Next frontier: vertices whose label improved.
		nf = cx.Grab32Cap(n)
		m.Contract(prim.LogStar(n)+1, int64(len(frontier)), advance)
		cx.Release32(frontier)
		frontier = nf
	}
	cx.Release32(frontier)
	cx.Release32(inNf)
	cx.Release64(lab64)
	return labels
}
