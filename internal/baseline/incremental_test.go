package baseline

import (
	"testing"

	"parcc/internal/graph"
)

// TestIncOracleMultisetSemantics: the referee itself must honor the
// documented multiset semantics — one occurrence per entry, either
// orientation, error (without mutation) on a missing occurrence.
func TestIncOracleMultisetSemantics(t *testing.T) {
	g := graph.FromPairs(4, [][2]int{{0, 1}, {1, 0}, {2, 3}})
	o := NewIncOracle(g)
	if g.M() != 3 {
		t.Fatal("oracle must clone, not adopt")
	}
	if err := o.RemoveEdges([]graph.Edge{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if o.Graph().M() != 2 {
		t.Fatalf("m = %d, want 2 (one occurrence removed)", o.Graph().M())
	}
	if err := o.RemoveEdges([]graph.Edge{{U: 1, V: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := o.RemoveEdges([]graph.Edge{{U: 0, V: 1}}); err == nil {
		t.Fatal("exhausted occurrence must error")
	}
	if o.Graph().M() != 1 {
		t.Fatal("failed removal must not mutate")
	}
	if err := o.AddEdges([]graph.Edge{{U: 0, V: 9}}); err == nil {
		t.Fatal("out-of-range endpoint must error")
	}
	if err := o.AddEdges([]graph.Edge{{U: 0, V: 2}}); err != nil {
		t.Fatal(err)
	}
	labels := o.Labels()
	if labels[0] != labels[2] || labels[0] == labels[1] {
		t.Fatalf("labels = %v after {0-2},{2-3} with 1 isolated", labels)
	}
}
