package baseline

import (
	"fmt"

	"parcc/internal/graph"
)

// IncOracle is the incremental-vs-scratch referee: it maintains the same
// edge-multiset semantics as the Solver's AddEdges/RemoveEdges but answers
// every query with a cold from-scratch union-find solve, so tests can
// assert the live incremental partition against an implementation that
// shares none of its machinery.  Deliberately unoptimized and sequential;
// uncharged (it exists for verification, not serving).  Not safe for
// concurrent use.
type IncOracle struct {
	g *graph.Graph
}

// NewIncOracle starts an oracle over a deep copy of g (the caller's graph
// is never touched).
func NewIncOracle(g *graph.Graph) *IncOracle {
	return &IncOracle{g: g.Clone()}
}

// AddEdges appends the batch, mirroring Solver.AddEdges.
func (o *IncOracle) AddEdges(batch []graph.Edge) error {
	for _, e := range batch {
		if e.U < 0 || int(e.U) >= o.g.N || e.V < 0 || int(e.V) >= o.g.N {
			return fmt.Errorf("baseline: edge (%d,%d) out of range [0,%d)", e.U, e.V, o.g.N)
		}
	}
	o.g.Edges = append(o.g.Edges, batch...)
	return nil
}

// RemoveEdges removes one occurrence per batch entry, matching either
// orientation of an undirected edge — the Solver's multiset semantics.  A
// batch entry with no remaining occurrence is an error, and the graph is
// left unchanged.
func (o *IncOracle) RemoveEdges(batch []graph.Edge) error {
	need := make(map[int64]int, len(batch))
	for _, e := range batch {
		if e.U < 0 || int(e.U) >= o.g.N || e.V < 0 || int(e.V) >= o.g.N {
			return fmt.Errorf("baseline: edge (%d,%d) out of range [0,%d)", e.U, e.V, o.g.N)
		}
		need[e.CanonKey()]++
	}
	have := make(map[int64]int, len(need))
	for _, e := range o.g.Edges {
		k := e.CanonKey()
		if need[k] > have[k] {
			have[k]++
		}
	}
	for k, n := range need {
		if have[k] < n {
			u, v := int32(k>>32), int32(uint32(k))
			return fmt.Errorf("baseline: %d missing occurrence(s) of edge (%d,%d)", n-have[k], u, v)
		}
	}
	kept := o.g.Edges[:0]
	for _, e := range o.g.Edges {
		if k := e.CanonKey(); need[k] > 0 {
			need[k]--
			continue
		}
		kept = append(kept, e)
	}
	o.g.Edges = kept
	return nil
}

// Labels answers the current query with a cold union-find solve.
func (o *IncOracle) Labels() []int32 { return UnionFindLabels(o.g) }

// Graph exposes the oracle's live graph (read-only: mutate only through
// AddEdges/RemoveEdges).
func (o *IncOracle) Graph() *graph.Graph { return o.g }
