package bench

import (
	"runtime"
	"time"

	"parcc"
	"parcc/internal/graph/gen"
)

// QPSSessionReuse is the repeated-solve (serving) experiment: the same
// query answered over and over, one-shot parcc.ConnectedComponents versus
// a parcc.Solver session reusing the goroutine pool, PRAM machine, scratch
// arena, and cached CSR plan.  It reports throughput (solves/s), mean wall
// time per solve, and allocations per solve — for the session path the
// allocs/op are steady-state ("second solve") numbers, measured after a
// warmup solve has populated the arena and plan cache.
func QPSSessionReuse(c Config) *Table {
	n, deg, iters := 2000, 8, 25
	if c.Scale == Full {
		n, deg, iters = 50000, 8, 100
	}
	g := gen.Union(
		gen.RandomRegular(n, deg, c.seed()),
		gen.Grid(n/100, 50),
		gen.Path(n/4),
	)

	t := &Table{
		ID:    "QPS",
		Title: "repeated-solve throughput: one-shot vs session (Solver)",
		Claim: "amortizing runtime, machine, arena, and CSR plan across solves " +
			"makes repeat queries faster and (on the serving algorithms) near-zero-alloc",
		Columns: []string{"algorithm", "backend",
			"one-shot solves/s", "session solves/s", "speedup",
			"one-shot allocs/op", "session allocs/op", "alloc reduction"},
	}

	var backend parcc.Backend
	switch c.Backend {
	case "concurrent":
		backend = parcc.BackendConcurrent
	default:
		backend = parcc.BackendSequential
	}

	algos := []parcc.Algorithm{
		parcc.FLS, parcc.LTZ, parcc.LabelProp, parcc.ParBFS,
		parcc.CASUnite, parcc.UnionFind, parcc.BFS,
	}
	for _, algo := range algos {
		opts := &parcc.Options{
			Algorithm: algo, Backend: backend, Procs: c.procs(), Seed: c.seed(),
		}
		oneWall, oneAllocs := measureLoop(iters, func() {
			if _, err := parcc.ConnectedComponents(g, opts); err != nil {
				panic(err)
			}
		})

		s, err := parcc.NewSolver(opts)
		if err != nil {
			panic(err)
		}
		res := &parcc.Result{}
		// Warm up: the first solve pays the arena fills and the plan build.
		if err := s.SolveInto(g, res); err != nil {
			panic(err)
		}
		sesWall, sesAllocs := measureLoop(iters, func() {
			if err := s.SolveInto(g, res); err != nil {
				panic(err)
			}
		})
		s.Close()

		t.Add(string(algo), string(backend),
			perSecond(oneWall), perSecond(sesWall),
			ratio(oneWall.Seconds(), sesWall.Seconds()),
			oneAllocs, sesAllocs, ratio(oneAllocs, sesAllocs))
	}
	t.Note("session allocs/op are steady-state (post-warmup) SolveInto numbers; "+
		"identical labels/steps/work to the one-shot path on the sequential backend "+
		"(asserted by TestSolverMatchesConnectedComponents).  n=%d, m=%d, %d solves per cell.",
		g.N, g.M(), iters)
	t.Note("the serving baselines (union-find, bfs) and cas reach ~zero steady-state " +
		"allocations; the charged PRAM algorithms remain bounded below by one closure " +
		"per charged loop, so their gain is wall-clock, not allocs.")
	return t
}

// measureLoop runs fn iters times and returns total wall time and mean
// heap allocations per iteration.
func measureLoop(iters int, fn func()) (time.Duration, float64) {
	fn() // exclude one-time warmup effects (lazy pools, code paths)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	return wall / time.Duration(iters), float64(after.Mallocs-before.Mallocs) / float64(iters)
}

func perSecond(per time.Duration) float64 {
	if per <= 0 {
		return 0
	}
	return 1 / per.Seconds()
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return a // effectively "a× over nothing"; keeps the table finite
	}
	return a / b
}
