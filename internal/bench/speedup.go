package bench

import (
	"fmt"
	"runtime"
	"time"

	"parcc/internal/core"
	"parcc/internal/graph/gen"
	"parcc/internal/par"
	"parcc/internal/pram"
)

// SPSelfSpeedup measures the concurrent backend's self-speedup T1/TP: the
// same algorithm, same seed, same charged PRAM costs, run on the
// internal/par pool at increasing procs.  The graph is an expander (the
// paper's best case, λ = Θ(1)), n = 2^18 at full scale.  Two rows per procs
// setting: the paper's CONNECTIVITY executing its charged steps on the pool,
// and the barrier-free cas-unite kernel as the wall-clock reference point.
func SPSelfSpeedup(c Config) *Table {
	n := 1 << 16
	if c.Scale == Full {
		n = 1 << 18
	}
	d := 8
	g := gen.RandomRegular(n, d, c.seed())

	maxP := c.procs()
	var plist []int
	for p := 1; p < maxP; p *= 2 {
		plist = append(plist, p)
	}
	plist = append(plist, maxP)

	t := &Table{
		ID:    "SP",
		Title: "concurrent backend self-speedup (T1/TP)",
		Claim: "executing the charged PRAM steps on real goroutines yields wall-clock " +
			"self-speedup on an expander while the charged costs stay model-level " +
			"(work/(m+n) flat; rounds may vary slightly with the arbitrary-write winners)",
		Columns: []string{"algorithm", "procs", "wall", "T1/TP", "steps", "work/(m+n)"},
	}
	t.Note("expander RandomRegular(n=%d, d=%d); times are single runs on %d CPUs",
		n, d, runtime.NumCPU())
	if runtime.NumCPU() < 2 {
		t.Note("this host exposes a single CPU: goroutines timeshare one core, so " +
			"T1/TP cannot exceed 1 here; on a P-core machine the same command " +
			"reports real self-speedup")
	}

	type runner struct {
		name string
		run  func(rt *par.Runtime, m *pram.Machine) (steps, work int64)
	}
	runners := []runner{
		{"fls", func(rt *par.Runtime, m *pram.Machine) (int64, int64) {
			p := core.Default(g.N)
			p.Seed ^= c.seed()
			core.Connectivity(m, g, p)
			return m.Steps(), m.Work()
		}},
		{"cas-unite", func(rt *par.Runtime, m *pram.Machine) (int64, int64) {
			par.Components(rt, g)
			return -1, -1 // charged on the parcc facade, not here
		}},
		{"min-label", func(rt *par.Runtime, m *pram.Machine) (int64, int64) {
			labels := make([]int32, g.N)
			rt.For(g.N, func(v int) { labels[v] = int32(v) })
			rounds := par.PropagateMin(rt, g.Edges, labels)
			return int64(rounds), -1 // Θ(diameter) CAS rounds, uncharged
		}},
	}

	norm := float64(g.M() + g.N)
	for _, r := range runners {
		var t1 time.Duration
		for _, p := range plist {
			rt := par.New(par.Procs(p), par.Seed(c.seed()))
			m := pram.New(pram.Seed(c.seed()), pram.OnExecutor(rt))
			t0 := time.Now()
			steps, work := r.run(rt, m)
			wall := time.Since(t0)
			rt.Close()
			if p == 1 {
				t1 = wall
			}
			sp := float64(t1) / float64(wall)
			stepCell, workCell := "-", "-"
			if steps >= 0 {
				stepCell = fmt.Sprint(steps)
			}
			if work >= 0 {
				workCell = fmt.Sprintf("%.4g", float64(work)/norm)
			}
			t.Add(r.name, p, wall.Round(time.Microsecond), fmt.Sprintf("%.2fx", sp),
				stepCell, workCell)
		}
	}
	return t
}
