package bench

import (
	"math"

	"parcc/internal/baseline"
	"parcc/internal/core"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/liutarjan"
	"parcc/internal/pram"
	"parcc/internal/spectral"
	"parcc/internal/stage1"
	"parcc/internal/stage2"
)

// E1TimeVsGap measures charged PRAM rounds of CONNECTIVITY against the
// component-wise spectral gap λ across families whose gaps span five orders
// of magnitude.  Theorem 1 predicts time O(log(1/λ) + log log n): rounds
// should grow roughly linearly in log(1/λ) at fixed n.
func E1TimeVsGap(c Config) *Table {
	t := &Table{
		ID:    "E1",
		Title: "parallel time vs spectral gap",
		Claim: "Theorem 1: O(log(1/λ) + log log n) time",
		Columns: []string{"family", "n", "m", "lambda", "log2(1/lambda)",
			"rounds", "work/(m+n)"},
	}
	n := 1 << 12
	if c.Scale == Full {
		n = 1 << 14
	}
	side := 1
	for side*side < n {
		side++
	}
	fams := map[string]*graph.Graph{
		"expander-d8": gen.RandomRegular(n, 8, c.seed()),
		"hypercube":   gen.Hypercube(lg(n)),
		"torus":       gen.Torus(side, side),
		"grid":        gen.Grid(side, side),
		"cycle":       gen.Cycle(n),
		"path":        gen.Path(n),
	}
	const seeds = 3
	for _, name := range sortedKeys(fams) {
		g := fams[name]
		lam := spectral.Gap(g, &spectral.Options{Seed: c.seed()})
		var steps, work int64
		for s := uint64(0); s < seeds; s++ {
			cc := c
			cc.Seed = c.seed() + s*977
			st, wk, _, _ := runFLS(cc, g)
			steps += st
			work += wk
		}
		t.Add(name, g.N, g.M(), lam, log2(1/lam), steps/seeds,
			float64(work)/float64(seeds)/float64(g.M()+g.N))
	}
	t.Note("rounds averaged over %d seeds; they include every charged PRAM step (Stage 1, all phases, cleanup)", seeds)
	return t
}

// E2WorkLinearity sweeps n on a fixed-density family and reports charged
// work normalized by m+n for CONNECTIVITY vs the LTZ and SV baselines.
// Theorem 1 predicts a flat series for CONNECTIVITY; SV grows with log n
// and LTZ with its round count.
func E2WorkLinearity(c Config) *Table {
	t := &Table{
		ID:    "E2",
		Title: "normalized work vs n",
		Claim: "Theorem 1: O(m+n) total work; [SV82] Θ((m+n)·log n); [LTZ20] Θ(m·(log d + log log n))",
		Columns: []string{"n", "m", "fls work/(m+n)", "ltz work/(m+n)",
			"sv work/(m+n)", "fls rounds", "sv rounds~"},
	}
	maxLg := 14
	if c.Scale == Full {
		maxLg = 17
	}
	for lgn := 10; lgn <= maxLg; lgn += 2 {
		n := 1 << lgn
		g := gen.GNM(n, 3*n, c.seed())
		mn := float64(g.M() + g.N)
		flsSteps, flsWork, _, _ := runFLS(c, g)
		_, ltzWork, _ := runLTZ(c, g)
		m := c.machine()
		baseline.ShiloachVishkin(m, g)
		svWork, svSteps := m.Work(), m.Steps()
		t.Add(n, g.M(), float64(flsWork)/mn, float64(ltzWork)/mn,
			float64(svWork)/mn, flsSteps, svSteps)
	}
	return t
}

// E3MatchingShrink measures the root-reduction factor of a single MATCHING
// call (Lemma 4.4 guarantees ≤ 0.999 w.h.p.; typical factors are far
// smaller).
func E3MatchingShrink(c Config) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "MATCHING constant shrink",
		Claim:   "Lemma 4.4: one call reduces live roots to ≤ 0.999·n′ w.h.p.",
		Columns: []string{"family", "n", "roots before", "roots after", "factor"},
	}
	n := 1 << 12
	if c.Scale == Full {
		n = 1 << 15
	}
	side := 1
	for side*side < n {
		side++
	}
	fams := map[string]*graph.Graph{
		"cycle":    gen.Cycle(n),
		"expander": gen.RandomRegular(n, 4, c.seed()),
		"grid":     gen.Grid(side, side),
		"star":     gen.Star(n),
		"gnm":      gen.GNM(n, 2*n, c.seed()),
	}
	for _, name := range sortedKeys(fams) {
		g := fams[name]
		m := c.machine()
		f := labeled.New(g.N)
		r := stage1.NewRunner(m, f, stage1.DefaultParams(g.N))
		before := len(f.Roots(nil))
		r.Matching(g.Edges)
		after := len(f.Roots(nil))
		t.Add(name, g.N, before, after, float64(after)/float64(before))
	}
	return t
}

// E4ReduceShrink sweeps n and reports the fraction of live roots REDUCE
// leaves, plus its normalized work (Lemma 4.25: n/poly(log n) vertices in
// O(m)+O(n) work).
func E4ReduceShrink(c Config) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "REDUCE shrink and work",
		Claim:   "Lemma 4.25: current graph shrinks to n/poly(log n) in O(m)+O(n) work",
		Columns: []string{"n", "m", "live roots", "live/n", "work/(m+n)", "steps"},
	}
	maxLg := 14
	if c.Scale == Full {
		maxLg = 17
	}
	for lgn := 10; lgn <= maxLg; lgn += 2 {
		n := 1 << lgn
		g := gen.RandomRegular(n, 4, c.seed())
		m := c.machine()
		f := labeled.New(g.N)
		r := stage1.NewRunner(m, f, stage1.DefaultParams(g.N))
		res := r.Reduce(g)
		live := map[int32]struct{}{}
		for _, e := range res.Edges {
			if e.U != e.V {
				live[e.U] = struct{}{}
				live[e.V] = struct{}{}
			}
		}
		t.Add(n, g.M(), len(live), float64(len(live))/float64(n),
			float64(m.Work())/float64(g.M()+g.N), m.Steps())
	}
	return t
}

// E5SkeletonSize reports |E(H)|/(m+n) for BUILD across densities and b
// (Lemma 5.5: the skeleton has ≤ (m+n)/poly(log n) edges).
func E5SkeletonSize(c Config) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "skeleton graph sparsity",
		Claim:   "Lemma 5.5: |E(H)| ≤ (m+n)/(log n)^5 (paper constants)",
		Columns: []string{"family", "n", "m", "b", "|E(H)|", "|E(H)|/(m+n)"},
	}
	n := 1 << 10
	if c.Scale == Full {
		n = 1 << 12
	}
	// BUILD runs after Stage-1 contraction, where vertex degrees are large
	// relative to b; the families below reproduce that regime (a vertex is
	// classified high roughly when its degree exceeds ≈5.5b with the
	// practical table sizing, cf. §5.1).
	fams := map[string]*graph.Graph{
		"dense-gnm-64": gen.GNM(n, 64*n, c.seed()),
		"complete":     gen.Complete(n / 2),
		"powerlaw-ba8": gen.BarabasiAlbert(n, 8, c.seed()),
	}
	for _, name := range sortedKeys(fams) {
		g := fams[name]
		for _, b := range []int{4, 8, 16} {
			m := c.machine()
			V := make([]int32, g.N)
			m.Iota32(V)
			p := stage2.DefaultParams(g.N, b)
			H := stage2.Build(m, V, g.Edges, p)
			t.Add(name, g.N, g.M(), b, len(H),
				float64(len(H))/float64(g.M()+g.N))
		}
	}
	t.Note("high–high edges are kept w.p. 1/b; low-adjacent edges are kept exactly; the ratio falls as degrees outgrow b")
	return t
}

// E6MinDegree verifies the Lemma 5.25 postcondition: after INCREASE every
// active root's degree in the current graph is at least b.
func E6MinDegree(c Config) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "minimum degree after INCREASE",
		Claim:   "Lemma 5.25: every surviving root has degree ≥ b in the current graph",
		Columns: []string{"family", "profile", "b", "active roots", "min deg", "median deg", "ok"},
	}
	n := 1 << 12
	if c.Scale == Full {
		n = 1 << 14
	}
	fams := map[string]*graph.Graph{
		"expander": gen.RandomRegular(n, 6, c.seed()),
		"gnm":      gen.GNM(n, 6*n, c.seed()),
	}
	for _, name := range sortedKeys(fams) {
		g := fams[name]
		for _, tc := range []struct {
			profile string
			limited bool
			b       int
		}{
			{"full", false, 8}, {"full", false, 16},
			{"starved", true, 8}, {"starved", true, 16},
		} {
			b := tc.b
			m := c.machine()
			f := labeled.New(g.N)
			p2 := stage2.DefaultParams(g.N, b)
			var roots []int32
			var E []graph.Edge
			if tc.limited {
				// starved ablation: Stage 1 skipped and DENSIFY cut to a
				// single round, far below the paper's 20·log b budget, so
				// components survive Stage 2 and the degree readout shows
				// what the missing budget costs
				p2.SolveRounds = 1
				p2.DensifyRounds = 1
				p2.ShortcutRounds = 1
				roots = make([]int32, g.N)
				m.Iota32(roots)
				E = append([]graph.Edge(nil), g.Edges...)
			} else {
				r := stage1.NewRunner(m, f, stage1.DefaultParams(g.N))
				red := r.Reduce(g)
				roots = red.Roots
				E = append([]graph.Edge(nil), red.Edges...)
			}
			stage2.Increase(m, f, roots, E, p2)
			deg := map[int32]int{}
			for _, e := range E {
				if e.U != e.V {
					deg[e.U]++
					deg[e.V]++
				}
			}
			var degs []int
			for v, d := range deg {
				if f.IsRoot(v) {
					degs = append(degs, d)
				}
			}
			minD, medD := distrib(degs)
			// When INCREASE finishes every component outright (common in
			// the unlimited profile), the postcondition holds vacuously.
			ok := minD >= b || len(degs) == 0
			t.Add(name, tc.profile, b, len(degs), minD, medD, ok)
		}
	}
	t.Note("0 active roots means Stage 2 contracted every component already — the postcondition holds vacuously")
	t.Note("'starved' is an ablation: Stage 1 skipped and DENSIFY cut to 1 round (vs the paper's 20·log b); survivors then miss the degree target, showing the budget is necessary, not slack")
	return t
}

// E7DiameterBlowup measures the Appendix-B effect: a construction with
// small diameter whose edge-sampled subgraph stays connected but has
// diameter Ω(n/poly(t)).
func E7DiameterBlowup(c Config) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "edge sampling blows up diameter",
		Claim:   "Appendix B: poly(log n)-diameter graph whose 1/poly(log n)-sampled subgraph has diameter n/poly(log n)",
		Columns: []string{"n", "t (p=1/t)", "m", "diam before", "diam after", "connected after", "blowup"},
	}
	sizes := []int{1 << 11, 1 << 12}
	if c.Scale == Full {
		sizes = []int{1 << 12, 1 << 13, 1 << 14}
	}
	for _, n := range sizes {
		tt := 4
		g := gen.AppendixB(n, tt)
		before := spectral.DiameterApprox(g, 3)
		s := gen.SampleEdges(g, 1/float64(tt), c.seed())
		after := spectral.DiameterApprox(s, 3)
		comps := graph.NumLabels(baseline.BFSLabels(s))
		t.Add(g.N, tt, g.M(), before, after,
			comps == 1, float64(after)/float64(before+1))
	}
	t.Note("bundled base-path edges survive sampling; single express edges mostly die")
	return t
}

// E8SampledGap measures |λ−λ′| between a graph and its edge-sampled
// subgraph against the Corollary C.3 bound O(√(log n/(p·deg))).
func E8SampledGap(c Config) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "spectral gap under edge sampling",
		Claim:   "Corollary C.3: |λ−λ′| ≤ C·√(ln n/(p·deg)) w.h.p.",
		Columns: []string{"degree", "p", "lambda", "lambda'", "|diff|", "sqrt(ln n/(p·d))"},
	}
	n := 400
	if c.Scale == Full {
		n = 1200
	}
	for _, d := range []int{16, 32, 64} {
		for _, p := range []float64{0.5, 0.25, 0.125} {
			g := gen.RandomRegular(n, d, c.seed())
			lam := spectral.Gap(g, &spectral.Options{Seed: c.seed()})
			s := gen.SampleEdges(g, p, c.seed()+7)
			lam2 := spectral.Gap(s, &spectral.Options{Seed: c.seed()})
			bound := math.Sqrt(math.Log(float64(n)) / (p * float64(d)))
			t.Add(d, p, lam, lam2, math.Abs(lam-lam2), bound)
		}
	}
	return t
}

// E9KKTRemain counts inter-component edges of G with respect to the
// components of an edge-sampled subgraph: the KKT sampling lemma bounds
// them by O(n/p), which is what makes REMAIN cheap.
func E9KKTRemain(c Config) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "inter-component edges after sampling (REMAIN cost)",
		Claim:   "[KKT95] sampling lemma: #cross edges = O(n/p) w.h.p.",
		Columns: []string{"n", "m", "p", "cross edges", "n/p", "ratio"},
	}
	maxLg := 13
	if c.Scale == Full {
		maxLg = 16
	}
	for lgn := 11; lgn <= maxLg; lgn += 1 {
		n := 1 << lgn
		g := gen.GNM(n, 4*n, c.seed())
		p := 0.25
		s := gen.SampleEdges(g, p, c.seed()+3)
		lab := baseline.BFSLabels(s)
		cross := 0
		for _, e := range g.Edges {
			if lab[e.U] != lab[e.V] {
				cross++
			}
		}
		bound := float64(n) / p
		t.Add(n, g.M(), p, cross, bound, float64(cross)/bound)
	}
	return t
}

// E10Headline compares every implemented algorithm on a graph suite:
// charged rounds, charged work, and wall-clock.
func E10Headline(c Config) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "headline comparison",
		Claim:   "Theorem 1 vs the classical baselines (§1–2)",
		Columns: []string{"graph", "algorithm", "rounds", "work/(m+n)", "wall ms", "components"},
	}
	n := 1 << 12
	if c.Scale == Full {
		n = 1 << 15
	}
	side := 1
	for side*side < n {
		side++
	}
	suite := map[string]*graph.Graph{
		"expander": gen.RandomRegular(n, 8, c.seed()),
		"grid":     gen.Grid(side, side),
		"cycle":    gen.Cycle(n),
		"gnm-3n":   gen.GNM(n, 3*n, c.seed()),
		"comps": gen.ManyComponents(8, func(i int) *graph.Graph {
			return gen.RandomRegular(n/8, 4, c.seed()+uint64(i))
		}),
	}
	for _, gname := range sortedKeys(suite) {
		g := suite[gname]
		mn := float64(g.M() + g.N)
		// FLS
		steps, work, wall, res := runFLS(c, g)
		t.Add(gname, "fls", steps, float64(work)/mn, wall.Milliseconds(), res.NumComponents)
		// LTZ
		steps, work, wall = runLTZ(c, g)
		t.Add(gname, "ltz", steps, float64(work)/mn, wall.Milliseconds(), "")
		// SV
		m := c.machine()
		f := baseline.ShiloachVishkin(m, g)
		t.Add(gname, "sv", m.Steps(), float64(m.Work())/mn, "", graph.NumLabels(f.Labels()))
		// random-mate
		m = c.machine()
		baseline.RandomMate(m, g, c.seed())
		t.Add(gname, "random-mate", m.Steps(), float64(m.Work())/mn, "", "")
		// label-prop
		m = c.machine()
		baseline.LabelProp(m, g)
		t.Add(gname, "label-prop", m.Steps(), float64(m.Work())/mn, "", "")
		// Liu–Tarjan (parent-connect + alter)
		m = c.machine()
		liutarjan.Solve(m, g, liutarjan.Config{Connect: liutarjan.ParentConnect, Alter: true})
		t.Add(gname, "liu-tarjan", m.Steps(), float64(m.Work())/mn, "", "")
	}
	return t
}

// E11TwoCycle contrasts one n-cycle with two n/2-cycles (the 2-CYCLE
// instances).  λ = Θ(1/n²) for both, so Theorem 1 (and, conditionally,
// Appendix A's lower bound) predicts rounds growing linearly in log n.
func E11TwoCycle(c Config) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "rounds on the 2-CYCLE instances",
		Claim:   "Appendix A: Ω(log(1/λ)) = Ω(log n) on cycles, conditional on the 2-CYCLE conjecture",
		Columns: []string{"n", "lambda(one)", "rounds one-cycle", "rounds two-cycles", "distinguish rounds", "rounds/log2(n)"},
	}
	maxLg := 13
	if c.Scale == Full {
		maxLg = 16
	}
	seeds := []uint64{c.seed(), c.seed() + 7, c.seed() + 13}
	for lgn := 9; lgn <= maxLg; lgn += 2 {
		n := 1 << lgn
		one := gen.Cycle(n)
		two := gen.TwoCycles(n)
		lam := 1 - math.Cos(2*math.Pi/float64(n)) // analytic λ(C_n)
		s1, _, _, _ := runFLS(c, one)
		s2, _, _, _ := runFLS(c, two)
		dist := RoundsToDistinguish(n, seeds)
		t.Add(n, lam, s1, s2, dist, float64(s1)/float64(lgn))
	}
	t.Note("'distinguish rounds' is the minimal EXPAND-MAXLINK budget certifying both instances (BudgetedDecide)")
	return t
}

// E12PhaseSchedule sweeps λ via ring-of-cliques bridge multiplicity and
// reports the phase behaviour: phases used, the terminating guess b, and
// the geometric-sum property (total time ≈ last-phase time, §3.4).
func E12PhaseSchedule(c Config) *Table {
	t := &Table{
		ID:    "E12",
		Title: "double-exponential gap search",
		Claim: "§3.4/§7: O(log log n) phases; total time dominated by the terminating phase",
		Columns: []string{"profile", "bridges/n", "lambda", "phases", "final b",
			"total rounds", "last-phase rounds", "last/total"},
	}
	k, s := 32, 16
	if c.Scale == Full {
		k = 64
	}
	run := func(profile string, g *graph.Graph, key any, strict, p1 bool) {
		lam := spectral.Gap(g, &spectral.Options{Seed: c.seed()})
		m := c.machine()
		p := core.Default(g.N)
		p.Seed ^= c.seed()
		if strict {
			// Minimal per-phase budgets so the O(log b) limits bind.
			p.SolveRoundsC = 1
			p.H1Rounds = 1
			p.DensifyRoundsC = 1
			p.B0 = 4
		}
		if p1 {
			// H₁ = G′ and no Stage-1 contraction: nothing is shattered by
			// sampling and nothing pre-shrunk, so REMAIN cannot rescue
			// phase 0 and the schedule must escalate until the per-phase
			// O(log b) budget covers the instance.
			p.SampleP64 = pram.P64(1)
			p.SkipStage1 = true
		}
		res := core.Connectivity(m, g, p)
		var last, tot int64
		for _, r := range res.PhaseRounds {
			tot += r
		}
		if len(res.PhaseRounds) > 0 {
			last = res.PhaseRounds[len(res.PhaseRounds)-1]
		}
		frac := 0.0
		if tot > 0 {
			frac = float64(last) / float64(tot)
		}
		t.Add(profile, key, lam, res.Phases, res.FinalB, m.Steps(), last, frac)
	}
	for _, bridges := range []int{1, 4, 16, 64} {
		run("default", gen.RingOfCliques(k, s, bridges, c.seed()), bridges, false, false)
	}
	for _, bridges := range []int{1, 4, 16, 64} {
		run("strict", gen.RingOfCliques(k, s, bridges, c.seed()), bridges, true, false)
	}
	for _, lgn := range []int{8, 10, 12} {
		run("strict-p1-cycle", gen.Cycle(1<<lgn), 1<<lgn, true, true)
	}
	t.Note("strict: SolveRoundsC=1, H1Rounds=1, DensifyRoundsC=1, B0=4; strict-p1-cycle additionally samples H₁/H₂ at probability 1 and skips Stage 1 (key column = n)")
	t.Note("finding: even under strict budgets phase 0 terminates at feasible n — Stage 1 plus the level-based contraction finish instances long before the schedule must escalate; the escalation is exercised structurally (bSchedule/revert tests), not dynamically")
	return t
}

// E13ContractionGap contracts random edges of small graphs and verifies
// Lemma 6.1's direction: contraction does not decrease the spectral gap.
func E13ContractionGap(c Config) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "contraction preserves the spectral gap",
		Claim:   "Lemma 6.1 / [CG97] 1.15: contracting within a component cannot decrease λ",
		Columns: []string{"family", "trials", "min λ'/λ", "violations"},
	}
	trials := 20
	if c.Scale == Full {
		trials = 60
	}
	fams := map[string]func(uint64) *graph.Graph{
		"gnm-16":   func(s uint64) *graph.Graph { return connectedGNM(16, 28, s) },
		"cycle-12": func(uint64) *graph.Graph { return gen.Cycle(12) },
		"grid-3x4": func(uint64) *graph.Graph { return gen.Grid(3, 4) },
	}
	for _, name := range sortedKeys(fams) {
		mk := fams[name]
		minRatio := math.Inf(1)
		viol := 0
		for i := 0; i < trials; i++ {
			g := mk(c.seed() + uint64(i))
			lam := spectral.GapDense(g)
			h := contractRandomEdge(g, c.seed()+uint64(i)*13)
			if h == nil {
				continue
			}
			lam2 := spectral.GapDense(h)
			r := lam2 / lam
			if r < minRatio {
				minRatio = r
			}
			if r < 1-1e-6 {
				viol++
			}
		}
		t.Add(name, trials, minRatio, viol)
	}
	return t
}

// E14NaiveSampling shows why plain edge sampling cannot replace Stages 1–2:
// on unions of paths it disconnects almost every component (§3).
func E14NaiveSampling(c Config) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "naive edge sampling breaks sparse components",
		Claim:   "§3: random edge sampling can disconnect components (e.g. collections of paths)",
		Columns: []string{"family", "p", "components before", "components after", "broken fraction"},
	}
	k := 64
	plen := 32
	if c.Scale == Full {
		k = 256
	}
	paths := gen.ManyComponents(k, func(int) *graph.Graph { return gen.Path(plen) })
	dense := gen.ManyComponents(k/4, func(i int) *graph.Graph {
		return gen.RandomRegular(plen, 8, c.seed()+uint64(i))
	})
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"paths", paths}, {"dense-d8", dense}} {
		before := graph.NumLabels(baseline.BFSLabels(tc.g))
		for _, p := range []float64{0.9, 0.5, 0.25} {
			s := gen.SampleEdges(tc.g, p, c.seed())
			after := graph.NumLabels(baseline.BFSLabels(s))
			t.Add(tc.name, p, before, after,
				float64(after-before)/float64(before))
		}
	}
	return t
}

// --- helpers ---

func lg(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

func distrib(xs []int) (min, median int) {
	if len(xs) == 0 {
		return 0, 0
	}
	min = xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	// selection by copy-sort (small inputs)
	cp := append([]int(nil), xs...)
	for i := 1; i < len(cp); i++ {
		v := cp[i]
		j := i - 1
		for j >= 0 && cp[j] > v {
			cp[j+1] = cp[j]
			j--
		}
		cp[j+1] = v
	}
	return min, cp[len(cp)/2]
}

func connectedGNM(n, m int, seed uint64) *graph.Graph {
	for i := 0; i < 50; i++ {
		g := gen.GNM(n, m, seed+uint64(i)*101)
		if graph.NumLabels(baseline.BFSLabels(g)) == 1 {
			return g
		}
	}
	return gen.Cycle(n)
}

// contractRandomEdge contracts one non-loop edge and returns the contracted
// graph (nil if no non-loop edge exists).
func contractRandomEdge(g *graph.Graph, seed uint64) *graph.Graph {
	var candidates []graph.Edge
	for _, e := range g.Edges {
		if e.U != e.V {
			candidates = append(candidates, e)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	e := candidates[pram.SplitMix64(seed)%uint64(len(candidates))]
	// identify e.V into e.U; vertex e.V becomes isolated and is dropped by
	// renumbering.
	out := graph.New(g.N - 1)
	remap := func(v int32) int32 {
		if v == e.V {
			v = e.U
		}
		if v > e.V {
			v--
		}
		return v
	}
	for _, ed := range g.Edges {
		u, v := remap(ed.U), remap(ed.V)
		out.Edges = append(out.Edges, graph.Edge{U: u, V: v})
	}
	return out
}

// E15StageBreakdown attributes the charged cost of CONNECTIVITY to its
// stages (Stage-1 REDUCE, presampling, phases, final cleanup) across
// spectral-gap regimes: the λ-dependence should localize in the phase /
// cleanup shares while Stage 1 stays flat (its O(log log n) + O(m) cost is
// λ-independent).
func E15StageBreakdown(c Config) *Table {
	t := &Table{
		ID:    "E15",
		Title: "per-stage cost attribution",
		Claim: "§7: Stage 1 is λ-independent; the O(log(1/λ)) term lives in the phases and REMAIN",
		Columns: []string{"family", "stage", "steps", "work",
			"steps share", "work share"},
	}
	n := 1 << 12
	if c.Scale == Full {
		n = 1 << 14
	}
	fams := map[string]*graph.Graph{
		"expander": gen.RandomRegular(n, 8, c.seed()),
		"cycle":    gen.Cycle(n),
		"path":     gen.Path(n),
	}
	for _, name := range sortedKeys(fams) {
		g := fams[name]
		_, _, _, res := runFLS(c, g)
		var totS, totW int64
		for _, mk := range res.Breakdown {
			totS += mk.Steps
			totW += mk.Work
		}
		for _, mk := range res.Breakdown {
			t.Add(name, mk.Label, mk.Steps, mk.Work,
				float64(mk.Steps)/float64(totS+1),
				float64(mk.Work)/float64(totW+1))
		}
	}
	t.Note("'finish' contains FlattenAll and, when a phase did not terminate via REMAIN, the backstop cleanup")
	return t
}
