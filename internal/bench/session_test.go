package bench

import (
	"strings"
	"testing"

	"parcc"
	"parcc/internal/graph/gen"
)

func TestQPSTableShape(t *testing.T) {
	tab := QPSSessionReuse(Config{Scale: Small, Seed: 1, Procs: 2})
	if len(tab.Rows) == 0 {
		t.Fatal("QPS produced no rows")
	}
	for _, r := range tab.Rows {
		if len(r) != len(tab.Columns) {
			t.Fatalf("ragged row %v", r)
		}
	}
	var hasServing bool
	for _, r := range tab.Rows {
		if r[0] == string(parcc.UnionFind) || r[0] == string(parcc.BFS) {
			hasServing = true
		}
	}
	if !hasServing {
		t.Error("QPS must cover the serving baselines")
	}
	if !strings.Contains(tab.Markdown(), "allocs/op") {
		t.Error("QPS table must report allocs/op")
	}
}

// The CI smoke benchmarks: one-shot vs session on a small instance, so
// `go test -bench . -benchtime 1x` exercises the throughput experiment
// path without a full table run.
func benchGraph() *parcc.Graph {
	return gen.Union(gen.RandomRegular(1500, 6, 1), gen.Path(300))
}

func BenchmarkOneShotSolve(b *testing.B) {
	g := benchGraph()
	opts := &parcc.Options{Algorithm: parcc.LT, Backend: parcc.BackendSequential}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parcc.ConnectedComponents(g, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionSolve(b *testing.B) {
	g := benchGraph()
	s, err := parcc.NewSolver(&parcc.Options{Algorithm: parcc.LT, Backend: parcc.BackendSequential})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	res := &parcc.Result{}
	if err := s.SolveInto(g, res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SolveInto(g, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionSolveConcurrent(b *testing.B) {
	g := benchGraph()
	s, err := parcc.NewSolver(&parcc.Options{Algorithm: parcc.CASUnite, Backend: parcc.BackendConcurrent})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	res := &parcc.Result{}
	if err := s.SolveInto(g, res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SolveInto(g, res); err != nil {
			b.Fatal(err)
		}
	}
}
