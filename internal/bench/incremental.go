package bench

import (
	"math/rand"
	"time"

	"parcc"
	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// INCIncrementalUpdates is the mutable-graph serving experiment: a stream
// of edge-update batches, each followed by a component query, answered two
// ways — incrementally on a live Solver session (AddEdges/RemoveEdges +
// Components) and by a cold from-scratch re-solve of the mutated graph.
// Insert-only streams are the incremental subsystem's headline: the live
// path does O(batch·α) work per batch while the cold path re-pays
// O(m+n), so the speedup grows linearly with graph size (the acceptance
// bar is ≥5× at n = 2^16, i.e. -scale full).  Mixed and delete-heavy
// streams show the scoped re-solve: deletions re-run the FLS pipeline on
// the dirty components only.  The fourth, delete-dominated family measures
// the spanning-forest deletion path against the scoped re-solve itself
// (Options.NoForest), with a ≥10× acceptance verdict in the table notes.
func INCIncrementalUpdates(c Config) *Table {
	n, batches, batchSize := 1<<12, 12, 128
	if c.Scale == Full {
		n, batches, batchSize = 1<<16, 24, 512
	}

	var backend parcc.Backend
	switch c.Backend {
	case "concurrent":
		backend = parcc.BackendConcurrent
	default:
		backend = parcc.BackendSequential
	}
	opts := &parcc.Options{Backend: backend, Procs: c.procs(), Seed: c.seed()}

	t := &Table{
		ID:    "INC",
		Title: "incremental updates: live session vs cold re-solve per batch",
		Claim: "insertions fold into the live partition in O(batch) CAS union-find work and " +
			"deletions re-solve only the dirty components, so update/query streams beat " +
			"from-scratch re-solves by a factor that grows with graph size",
		Columns: []string{"workload", "n", "m0", "batches", "batch",
			"inc ms/batch", "cold ms/batch", "speedup"},
	}

	type workload struct {
		name      string
		removePct int // percentage of batches that are deletions
	}
	for _, w := range []workload{
		{"insert-only", 0},
		{"mixed 75/25", 25},
		{"delete-heavy", 50},
	} {
		base := gen.GNM(n, 2*n, c.seed())
		rng := rand.New(rand.NewSource(int64(c.seed()) + int64(w.removePct)))

		// Pre-generate the batch stream so both sides replay identical
		// mutations; the oracle supplies the reference multiset semantics.
		type step struct {
			remove bool
			batch  []graph.Edge
		}
		sim := baseline.NewIncOracle(base) // evolves as the stream is generated
		steps := make([]step, batches)
		for i := range steps {
			if rm := i > 0 && rng.Intn(100) < w.removePct; rm {
				live := sim.Graph()
				k := batchSize / 4
				if k > live.M() {
					k = live.M()
				}
				idx := rng.Perm(live.M())[:k]
				b := make([]graph.Edge, 0, k)
				for _, j := range idx {
					b = append(b, live.Edges[j])
				}
				steps[i] = step{remove: true, batch: b}
				if err := sim.RemoveEdges(b); err != nil {
					panic(err)
				}
			} else {
				b := make([]graph.Edge, batchSize)
				for j := range b {
					b[j] = graph.Edge{U: int32(rng.Intn(n)), V: int32(rng.Intn(n))}
				}
				steps[i] = step{batch: b}
				if err := sim.AddEdges(b); err != nil {
					panic(err)
				}
			}
		}

		// Incremental side: one live session, update + re-query per batch.
		s, err := parcc.NewSolver(opts)
		if err != nil {
			panic(err)
		}
		if err := s.Attach(base.Clone()); err != nil {
			panic(err)
		}
		res := &parcc.Result{}
		t0 := time.Now()
		for _, st := range steps {
			if st.remove {
				err = s.RemoveEdges(st.batch)
			} else {
				err = s.AddEdges(st.batch)
			}
			if err != nil {
				panic(err)
			}
			if err := s.ComponentsInto(res); err != nil {
				panic(err)
			}
		}
		incWall := time.Since(t0)
		incComps := res.NumComponents
		s.Close()

		// Cold side: same stream, but every query is a from-scratch solve
		// of the mutated graph (session state is kept to be fair to the
		// cold path's arena; the partition is recomputed per batch, which
		// is what "no incremental support" means).  Mutations go through a
		// second oracle — the same reference removal semantics.
		cold, err := parcc.NewSolver(opts)
		if err != nil {
			panic(err)
		}
		cg := baseline.NewIncOracle(base)
		t0 = time.Now()
		for _, st := range steps {
			if st.remove {
				err = cg.RemoveEdges(st.batch)
			} else {
				err = cg.AddEdges(st.batch)
			}
			if err != nil {
				panic(err)
			}
			if err := cold.SolveInto(cg.Graph(), res); err != nil {
				panic(err)
			}
		}
		coldWall := time.Since(t0)
		cold.Close()
		if res.NumComponents != incComps {
			panic("INC: incremental and cold component counts diverged")
		}

		t.Add(w.name, base.N, 2*n, batches, batchSize,
			incWall.Seconds()*1000/float64(batches),
			coldWall.Seconds()*1000/float64(batches),
			ratio(coldWall.Seconds(), incWall.Seconds()))
	}
	t.Note("both sides replay the identical pre-generated mutation stream and answer a "+
		"component query after every batch; final counts are asserted equal.  deletions "+
		"are quarter-size batches of existing edges.  backend=%s.", string(backend))
	t.Note("the cold side re-solves the full mutated graph with the session's default " +
		"algorithm (FLS); the incremental side folds inserts into the live CAS union-find " +
		"and scoped-re-solves only dirty components on deletes.")

	// Delete-dominated family: the spanning-forest acceptance experiment.
	// A dense GNM graph (one giant component) takes a stream of small
	// delete-only batches.  Nearly every deleted edge is non-forest, so the
	// forest path retires it in O(1); the baseline is the SAME live session
	// with forest maintenance disabled (Options.NoForest), whose scoped
	// re-solve must re-run the pipeline over the giant dirty component on
	// every batch.  The cold column holds that scoped baseline.
	{
		dn, dm, dbatches, dsize := 1<<12, 8<<12, 24, 16
		if c.Scale == Full {
			dn, dm, dbatches, dsize = 1<<16, 8<<16, 32, 32
		}
		base := gen.GNM(dn, dm, c.seed()+7)
		rng := rand.New(rand.NewSource(int64(c.seed()) + 99))
		sim := baseline.NewIncOracle(base)
		steps := make([][]graph.Edge, dbatches)
		for i := range steps {
			live := sim.Graph()
			b := make([]graph.Edge, 0, dsize)
			for _, j := range rng.Perm(live.M())[:dsize] {
				b = append(b, live.Edges[j])
			}
			steps[i] = b
			if err := sim.RemoveEdges(b); err != nil {
				panic(err)
			}
		}

		run := func(noForest bool) (time.Duration, int) {
			o := *opts
			o.NoForest = noForest
			s, err := parcc.NewSolver(&o)
			if err != nil {
				panic(err)
			}
			defer s.Close()
			if err := s.Attach(base.Clone()); err != nil {
				panic(err)
			}
			res := &parcc.Result{}
			t0 := time.Now()
			for _, b := range steps {
				if err := s.RemoveEdges(b); err != nil {
					panic(err)
				}
				if err := s.ComponentsInto(res); err != nil {
					panic(err)
				}
			}
			return time.Since(t0), res.NumComponents
		}
		forestWall, forestComps := run(false)
		scopedWall, scopedComps := run(true)
		if forestComps != scopedComps {
			panic("INC: forest and scoped component counts diverged")
		}
		sp := ratio(scopedWall.Seconds(), forestWall.Seconds())
		t.Add("delete-dominated", dn, dm, dbatches, dsize,
			forestWall.Seconds()*1000/float64(dbatches),
			scopedWall.Seconds()*1000/float64(dbatches),
			sp)
		verdict := "FAIL"
		if sp >= 10 {
			verdict = "PASS"
		}
		t.Note("delete-dominated row: small delete-only batches on a dense GNM (m=8n) giant "+
			"component; the baseline (cold column) is the same live session with "+
			"Options.NoForest, i.e. every deletion takes the scoped re-solve.  "+
			"acceptance bar ≥10x over the scoped path: %s (%.3gx).", verdict, sp)
	}
	return t
}
