package bench

// Verdicts maps each experiment to its paper-vs-measured summary, written
// after the full-scale runs recorded in EXPERIMENTS.md.  cmd/ccbench -run
// can regenerate the raw tables; these texts interpret them against the
// claims (EXPERIMENTS.md is assembled from both).
var Verdicts = map[string]string{
	"E1": "Reproduced in shape. At fixed n, averaged rounds order by log(1/λ): " +
		"expander and hypercube (λ ≥ 0.14) sit at the Stage-1 floor, torus and grid " +
		"(λ ≈ 10⁻³) add ≈5–20%, cycle and path (λ ≈ 10⁻⁴) add ≈20–30%. The additive " +
		"log log n floor (Stage 1) dominates the constant, as the theorem's sum form predicts.",
	"E2": "Reproduced in shape. CONNECTIVITY's work/(m+n) stays within a ±15% band " +
		"over a 64× range of n, while Shiloach–Vishkin's normalized work grows with its " +
		"round count (∝ log n) and LTZ sits in between. Absolute constants favor the " +
		"baselines at these sizes — expected: the paper's optimality is asymptotic, and " +
		"our polylog parameters are scaled down, not the per-pass constants.",
	"E3": "Reproduced, with margin. Lemma 4.4 guarantees a ≤0.999 factor per MATCHING " +
		"call; measured factors are 0.50–0.88 on constant-degree families and ~3×10⁻⁵ on " +
		"stars (Step 6 adopts every spoke at once).",
	"E4": "Reproduced. REDUCE leaves ≤0.3% of vertices live across a 64× range of n " +
		"with normalized work in a narrow band (≈90–115 ops per edge+vertex) — the " +
		"n/poly(log n) shrink at O(m)+O(n) work of Lemma 4.25.",
	"E5": "Reproduced in the regime BUILD targets (degrees ≫ b): the skeleton ratio " +
		"tracks ≈1/b on dense families (0.25 → 0.06 as b goes 4 → 16) because high–high " +
		"edges are sampled w.p. 1/b, while power-law graphs keep most edges — their mass " +
		"sits on low vertices, which BUILD must keep exactly (that is Lemma 5.4's point).",
	"E6": "Reproduced, with an instructive ablation. In the paper-budget profile " +
		"Stage 2 finishes every component outright at feasible sizes (the postcondition " +
		"holds vacuously — there are no survivors to violate it); the 'starved' profile " +
		"cuts DENSIFY to one round and survivors then miss the degree target (min 2–6 " +
		"vs b=8/16), showing the 20·log b budget of §5.2 is necessary, not slack.",
	"E7": "Reproduced. The Appendix-B construction has double-sweep diameter ≈30–35 " +
		"before sampling; after p=1/4 edge sampling it stays connected and the diameter " +
		"multiplies ≈50–90×, reaching Θ(n/poly t) — the separation that rules out naive " +
		"sparsification before Stage 2.",
	"E8": "Reproduced. |λ−λ′| under edge sampling stays well below the C·√(ln n/(p·d)) " +
		"envelope of Corollary C.3 and decays as p·d grows, the matrix-concentration shape " +
		"Stage 3 relies on.",
	"E9": "Reproduced. Edges of G crossing the sampled subgraph's components stay a " +
		"small fraction of n/p across a 32× range of n (ratios ≈0.1–0.3), confirming the " +
		"KKT bound that makes REMAIN affordable.",
	"E10": "Headline comparison. The paper's algorithm pays a larger constant than the " +
		"simple baselines at feasible sizes but is the only one whose rounds do not grow " +
		"with n on low-gap inputs beyond the log(1/λ) term and whose normalized work stays " +
		"flat; label propagation explodes on the cycle (Θ(d) rounds), SV grows with log n.",
	"E11": "Consistent with the conditional lower bound. Rounds to certify one-cycle vs " +
		"two-cycles (the 2-CYCLE instances) grow with log n (≈6 at n=2⁶ to ≈12 at 2¹⁴ in " +
		"the unit tests' wider sweep), matching Ω(log 1/λ) = Ω(log n) on cycles.",
	"E12": "Partially reproduced — structurally, not dynamically. Phase 0 terminates " +
		"on every feasible instance, even under strict per-phase budgets with sampling " +
		"disabled and Stage 1 skipped: the level-based contraction finishes long before " +
		"the guess schedule must escalate (its rounds grow too slowly in n for budgets " +
		"×log b to bind below astronomic sizes). The schedule itself (double-exponential " +
		"b growth, per-phase revert isolation, geometric time sum) is verified by unit " +
		"tests on bSchedule and the revert path; the last/total≈1 column confirms the " +
		"terminating phase dominates, which is the §3.4 sum argument's observable face.",
	"E13": "Reproduced exactly: zero violations of Lemma 6.1's direction over all " +
		"contraction trials (minimum observed λ′/λ ≥ 1).",
	"E14": "Reproduced. p=0.25 sampling shatters every path component (broken fraction " +
		"≥ 1 per original component) while dense d=8 components survive — the §3 " +
		"counterexample motivating densify-before-sample.",
	"E15": "Reproduced. Stage-1 cost is identical across families (λ-independent), " +
		"while the phase + cleanup share grows from ≈30% on expanders to ≈60% on paths — " +
		"the λ-dependence lives exactly where §7 puts it.",
	"E16": "Ablation. The paper's 10⁻⁴ is indistinguishable from p=0 at feasible " +
		"sizes (the deletion is an asymptotic work device); raising p to 0.1–0.3 cuts " +
		"Stage-1 work by a third without hurting the contraction — live roots even " +
		"drop — because MATCHING only ever needs a constant fraction of the edges.",
	"E17": "Ablation. Bigger β₁ buys fewer rounds at more work per edge on both " +
		"families; the level-up exponent trades rounds against work with an interior " +
		"optimum near 0.25 at practical sizes — consistent with the paper's choice of " +
		"slowly-growing budgets plus rare level-ups at asymptotic scale.",
	"SP": "Engineering measurement, not a paper claim. Executing the charged PRAM " +
		"steps on the internal/par pool keeps the model accounting (normalized work " +
		"flat; round counts may shift a few percent across procs because ARBITRARY " +
		"concurrent-write winners steer the randomized control flow) while the wall " +
		"clock scales with procs; the barrier-free cas-unite kernel gives the " +
		"wall-clock floor the synchronous algorithms are measured against. On a " +
		"single-CPU host T1/TP honestly reports ≈1.0x — goroutines timeshare one " +
		"core — and the table says so in its footnote.",
	"QPS": "Engineering measurement, not a paper claim. Session reuse (parcc.Solver) " +
		"amortizes the goroutine pool, PRAM machine, scratch arena, and cached CSR " +
		"plan across solves: the serving baselines drop to ~zero steady-state " +
		"allocations (union-find 13×, bfs 19× fewer allocs/op than one-shot in the " +
		"small-scale run, bfs ~4× higher throughput because the plan cache removes " +
		"the per-call CSR rebuild).  The charged PRAM algorithms keep one closure " +
		"allocation per charged loop by construction, so their session gain is " +
		"bounded — arena reuse trims allocs ~5–10% and the pool/machine reuse shows " +
		"up at smaller instances where per-call setup is a visible fraction.",
	"SOLVE": "Engineering measurement, not a paper claim.  The Afforest-style " +
		"sampling fast path (sample a cache-line-confined neighbor window per vertex, " +
		"flatten, vote a majority root, then finish over the CSR skipping settled " +
		"regions wholesale) beats the cas union-find baseline exactly where its theory " +
		"says it should: ≥2× on the dense block (2.1–2.5×) and relaxed-caveman " +
		"community (2.2–2.4×) families at n=2^16, 6.3× on complete, 1.8× on dense GNM " +
		"— and honestly loses on sparse low-degree families (paths, grids, trees) " +
		"where the ~n successful sampling hooks cost more than the edge pass they " +
		"would eliminate.  The auto dispatcher reads n, m, and (in the inconclusive " +
		"mid-density band) the cached plan's max degree, and lands within 1.1× of the " +
		"best fixed algorithm on every family (worst ≈1.05×); its decision is echoed " +
		"in Result.Algorithm.  Partitions are asserted equal across algorithms on " +
		"every family and run.",
	"INC": "Engineering measurement, not a paper claim — the paper is static " +
		"connectivity; the serving layer maintains the partition incrementally and " +
		"falls back to the paper's pipeline only when the spanning forest cannot " +
		"decide a deletion locally.  Insert-only streams run ~10²× faster than cold " +
		"re-solves because AddEdges does O(batch·α) CAS union-find work while a " +
		"re-solve re-pays O(m+n).  Since the forest subsystem, mixed (75/25) and " +
		"delete-heavy streams hold the same ~10²× instead of the pre-forest ≈2–6×: " +
		"a non-forest deletion is O(1) and a forest deletion pays only a bounded " +
		"replacement search, so random deletions on these graphs almost never reach " +
		"the scoped re-solve.  The delete-dominated row isolates that mechanism — " +
		"the same live session with Options.NoForest (every deletion scoped) is the " +
		"baseline — and clears the ≥10× acceptance bar by orders of magnitude " +
		"(~2.5×10³× at n=2¹², m=8n), because the scoped path must re-solve the " +
		"giant dirty component per batch while the forest path retires dense-graph " +
		"deletions in O(1).  Final component counts are asserted equal on every run.",
}
