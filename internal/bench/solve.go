package bench

import (
	"fmt"
	"math"
	"time"

	"parcc"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// SOLVERawSolves is the tracked end-to-end solve benchmark: every generator
// family swept against the four wall-clock-oriented algorithms — the cas
// union-find baseline, the Afforest-style sampling fast path, the
// frontier-driven label propagation engine, and the auto dispatcher — on
// warm Solver sessions.  Three bars are evaluated and recorded in the
// table:
//
//   - sample must beat cas by ≥ 2× wall clock on the block/community
//     families (the stochastic-block and relaxed-caveman shapes whose
//     edges concentrate inside communities — Afforest's target), at the
//     full scale n = 2^16;
//   - frontier must beat the best of the other fixed algorithms on the
//     high-diameter mesh cells (the path/grid/torus -xl rows at larger
//     side lengths — the regime the PR 5 sampler loses and the frontier
//     engine targets), at the full scale;
//   - auto must never be worse than 1.1× the best fixed algorithm on any
//     family (its decision is free, so any penalty is a wrong pick).
//
// Partitions are asserted equal across the four algorithms on every
// family, so the speedups cannot come from wrong answers.  CI publishes
// the JSON form as BENCH_solve.json, giving the perf trajectory a
// raw-solve series next to the incremental (BENCH_inc.json) and serving
// (BENCH_qps.json) ones.
func SOLVERawSolves(c Config) *Table {
	n := 1 << 12
	if c.Scale == Full {
		n = 1 << 16
	}
	var backend parcc.Backend
	switch c.Backend {
	case "concurrent":
		backend = parcc.BackendConcurrent
	default:
		backend = parcc.BackendSequential
	}
	algos := []parcc.Algorithm{parcc.CASUnite, parcc.Sample, parcc.Frontier, parcc.Auto}
	solvers := map[parcc.Algorithm]*parcc.Solver{}
	for _, a := range algos {
		s, err := parcc.NewSolver(&parcc.Options{
			Algorithm: a, Backend: backend, Procs: c.procs(), Seed: c.seed(),
			// The sweep never mutates a graph after generating it, so the
			// O(m) per-solve fingerprint revalidation would only blur the
			// kernel costs being compared.
			TrustGraph: true,
		})
		if err != nil {
			panic(err)
		}
		solvers[a] = s
	}
	defer func() {
		for _, s := range solvers {
			s.Close()
		}
	}()

	t := &Table{
		ID:    "SOLVE",
		Title: "end-to-end solve wall clock: cas vs sample vs frontier vs auto per generator family",
		Claim: "neighbor sampling settles most components early, so the full edge pass skips " +
			"the intra-community majority of edges (Afforest); on block/community families " +
			"that is a ≥2× end-to-end win; frontier-driven label propagation pays per round " +
			"only for the active vertices, winning the high-diameter mesh cells; and the auto " +
			"dispatcher picks the right algorithm from plan statistics at no measurable cost",
		Columns: []string{"family", "n", "m", "cas ms", "sample ms", "frontier ms", "auto ms",
			"auto pick", "skip%", "sample/cas", "frontier/fix", "auto/best", "bar"},
	}

	worstAuto := 0.0
	worstAutoFamily := ""
	barsPass := true
	hidiamPass := true
	res := &parcc.Result{}
	for _, f := range solveFamilies(n, c.seed()) {
		g := f.make()
		wall := map[parcc.Algorithm]float64{}
		var labels map[parcc.Algorithm][]int32 = map[parcc.Algorithm][]int32{}
		var skipRatio float64
		var autoPick parcc.Algorithm
		// Warm each session once untimed (plan cache, label buffers), then
		// take per-algorithm minima over short consecutive rep bursts —
		// hot-cache, so each kernel is measured at its best — repeated in
		// several rounds cycling through the algorithms: machine-wide
		// drift (frequency scaling, noisy neighbors) spans time windows,
		// and giving every algorithm a burst in every window keeps a slow
		// phase from biasing whichever single block ran during it.  The
		// ratios below compare algorithms, so noise correlated across a
		// round cancels where one long per-algorithm block would not.
		for _, a := range algos {
			s := solvers[a]
			if err := s.SolveInto(g, res); err != nil {
				panic(err)
			}
			wall[a] = math.Inf(1)
			labels[a] = append([]int32(nil), res.Labels...)
			switch a {
			case parcc.Sample:
				skipRatio = res.SkipRatio
			case parcc.Auto:
				autoPick = res.Algorithm
			}
		}
		const rounds, burst = 3, 3
		for i := 0; i < rounds; i++ {
			for _, a := range algos {
				s := solvers[a]
				for j := 0; j < burst; j++ {
					t0 := time.Now()
					if err := s.SolveInto(g, res); err != nil {
						panic(err)
					}
					if d := time.Since(t0).Seconds(); d < wall[a] {
						wall[a] = d
					}
				}
			}
		}
		if !graph.SamePartition(labels[parcc.CASUnite], labels[parcc.Sample]) ||
			!graph.SamePartition(labels[parcc.CASUnite], labels[parcc.Frontier]) ||
			!graph.SamePartition(labels[parcc.CASUnite], labels[parcc.Auto]) {
			panic(fmt.Sprintf("SOLVE %s: partitions diverged across algorithms", f.name))
		}

		sampleSpeed := ratio(wall[parcc.CASUnite], wall[parcc.Sample])
		frontierSpeed := ratio(math.Min(wall[parcc.CASUnite], wall[parcc.Sample]), wall[parcc.Frontier])
		bestFixed := math.Min(wall[parcc.Frontier], math.Min(wall[parcc.CASUnite], wall[parcc.Sample]))
		autoPen := ratio(wall[parcc.Auto], bestFixed)
		if autoPen > worstAuto {
			worstAuto, worstAutoFamily = autoPen, f.name
		}
		bar := "-"
		switch {
		case f.barred:
			if sampleSpeed >= 2 {
				bar = "PASS"
			} else {
				bar = "FAIL"
				barsPass = false
			}
		case f.hidiam:
			if frontierSpeed > 1 {
				bar = "PASS"
			} else {
				bar = "FAIL"
				hidiamPass = false
			}
		}
		t.Add(f.name, g.N, g.M(),
			wall[parcc.CASUnite]*1000, wall[parcc.Sample]*1000, wall[parcc.Frontier]*1000,
			wall[parcc.Auto]*1000,
			string(autoPick), skipRatio*100, sampleSpeed, frontierSpeed, autoPen, bar)
	}

	verdict := "PASS"
	if !barsPass {
		verdict = "FAIL"
	}
	t.Note("bar 1 — sample ≥ 2× cas on the block/community families: %s (binding at -scale full, n=2^16).", verdict)
	hidiamVerdict := "PASS"
	if !hidiamPass {
		hidiamVerdict = "FAIL"
	}
	t.Note("bar 2 — frontier beats the best other fixed algorithm on the high-diameter "+
		"path/grid/torus -xl cells: %s (binding at -scale full).", hidiamVerdict)
	autoVerdict := "PASS"
	if worstAuto > 1.1 {
		autoVerdict = "FAIL"
	}
	t.Note("bar 3 — auto within 1.1× of the best fixed algorithm on every family: %s "+
		"(worst %.3fx on %s).", autoVerdict, worstAuto, worstAutoFamily)
	t.Note("wall times are the minimum over repeated warm solves on a reused session "+
		"(TrustGraph; plan cached).  partitions asserted equal across algorithms on every "+
		"family.  skip%% is the fraction of edges settled without a Unite (range-skipped "+
		"or dismissed by the root compare — Result.SkipRatio); frontier/fix is the best "+
		"other fixed algorithm's wall over frontier's (> 1: frontier fastest); auto pick "+
		"is the dispatch decision Result.Algorithm records.  backend=%s, procs=%d.",
		string(backend), c.procs())
	return t
}

// solveFamily is one row of the SOLVE sweep; barred marks the
// block/community families the ≥2× sampling bar applies to, hidiam the
// high-diameter mesh cells the frontier bar applies to.
type solveFamily struct {
	name   string
	barred bool
	hidiam bool
	make   func() *graph.Graph
}

// solveFamilies instantiates all twenty-three generator families at the
// target vertex count (complete is capped — n² edges — and the composite
// families split n across their parts).  The three -xl cells scale the
// high-diameter meshes past the base size — 4n vertices (double side
// lengths for the lattices) — where the diameter, and with it the round
// count any dense-round algorithm pays, grows another 2×.
func solveFamilies(n int, seed uint64) []solveFamily {
	sq := int(math.Sqrt(float64(n)))
	d := 0
	for 1<<(d+1) <= n {
		d++
	}
	return []solveFamily{
		{"path", false, false, func() *graph.Graph { return gen.Path(n) }},
		{"cycle", false, false, func() *graph.Graph { return gen.Cycle(n) }},
		{"two-cycles", false, false, func() *graph.Graph { return gen.TwoCycles(n) }},
		{"grid", false, false, func() *graph.Graph { return gen.Grid(sq, sq) }},
		{"torus", false, false, func() *graph.Graph { return gen.Torus(sq, sq) }},
		{"hypercube", false, false, func() *graph.Graph { return gen.Hypercube(d) }},
		{"complete", false, false, func() *graph.Graph { return gen.Complete(min(n, 1024)) }},
		{"star", false, false, func() *graph.Graph { return gen.Star(n) }},
		{"binary-tree", false, false, func() *graph.Graph { return gen.BinaryTree(n) }},
		{"random-regular", false, false, func() *graph.Graph { return gen.RandomRegular(n, 4, seed) }},
		{"gnm-sparse", false, false, func() *graph.Graph { return gen.GNM(n, 2*n, seed) }},
		{"gnm-dense", false, false, func() *graph.Graph { return gen.GNM(n, 16*n, seed) }},
		{"block", true, false, func() *graph.Graph { return blockGraph(n, seed) }},
		{"community", true, false, func() *graph.Graph { return communityGraph(n, seed) }},
		{"lollipop", false, false, func() *graph.Graph { return gen.Lollipop(n, min(n/8, 512)) }},
		{"barbell", false, false, func() *graph.Graph { return gen.Barbell(n, min(n/4, 256)) }},
		{"union", false, false, func() *graph.Graph {
			return gen.Union(gen.Path(n/3), gen.Cycle(n/3), gen.GNM(n/3, n/2, seed))
		}},
		{"many-components", false, false, func() *graph.Graph {
			b := n / 64
			return gen.ManyComponents(64, func(i int) *graph.Graph {
				return gen.GNM(b, 3*b/2, seed+uint64(i))
			})
		}},
		{"watts-strogatz", false, false, func() *graph.Graph { return gen.WattsStrogatz(n, 8, 0.1, seed) }},
		{"barabasi-albert", false, false, func() *graph.Graph { return gen.BarabasiAlbert(n, 8, seed) }},
		{"path-xl", false, true, func() *graph.Graph { return gen.Path(4 * n) }},
		{"grid-xl", false, true, func() *graph.Graph { return gen.Grid(2*sq, 2*sq) }},
		{"torus-xl", false, true, func() *graph.Graph { return gen.Torus(2*sq, 2*sq) }},
	}
}

// blockGraph is the stochastic-block shape the sampling bar targets: one
// dominant dense block holding three quarters of the vertices and the
// overwhelming share of the edges (the majority component Afforest's vote
// finds, whose adjacency ranges the finish pass then skips unread) plus
// eight sparser satellite blocks that exercise the non-majority finish
// path.
func blockGraph(n int, seed uint64) *graph.Graph {
	main := 3 * n / 4
	gs := []*graph.Graph{gen.GNM(main, 40*main, seed)}
	k := 8
	bs := (n - main) / k
	for i := 0; i < k; i++ {
		gs = append(gs, gen.GNM(bs, 4*bs, seed+uint64(i+1)))
	}
	return gen.Union(gs...)
}

// communityGraph is a relaxed caveman graph: cliques of 32 plus two random
// inter-community edges per vertex (the μ ≈ 0.1 mixing regime of
// LFR-style community benchmarks, keeping the graph connected the way
// real community graphs are).  Sampling contracts each clique and the
// sampled inter-community links then percolate the contracted supernodes
// into a giant component, so the finish pass runs in majority mode — the
// behavior Afforest is designed around.  The inter-community edges are
// emitted before the cliques: adjacency order follows edge-emission
// order, and real community edge lists are arbitrarily ordered — emitting
// cliques first would sort every adjacency list against any
// prefix-window sampler (Afforest's first-k included), an adversarial
// layout rather than a representative one.
func communityGraph(n int, seed uint64) *graph.Graph {
	s := 32
	g := graph.New(n / s * s)
	r := newSplitMix(seed ^ 0xA5A5A5A5)
	for i := 0; i < 2*g.N; i++ {
		g.AddEdge(int(r.next()%uint64(g.N)), int(r.next()%uint64(g.N)))
	}
	for c := 0; c+s <= g.N; c += s {
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				g.AddEdge(c+i, c+j)
			}
		}
	}
	return g
}

// newSplitMix is a tiny local RNG for the bench generators (the gen
// package keeps its rng unexported).
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
