package bench

import (
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/ltz"
	"parcc/internal/pram"
	"parcc/internal/stage1"
)

// E16FilterDeletion ablates FILTER's per-round edge-deletion probability
// (paper: 10^-4).  Deletion is the work-reduction device of §4.2: too low
// and every round rescans all edges (work grows); too high and edges die
// before MATCHING can use them, leaving more live roots for later stages.
func E16FilterDeletion(c Config) *Table {
	t := &Table{
		ID:    "E16",
		Title: "ablation: FILTER edge-deletion probability",
		Claim: "§4.2: per-round deletion bounds FILTER's total work; the paper sets 10^-4",
		Columns: []string{"delete p", "live roots after REDUCE", "work/(m+n)",
			"steps"},
	}
	n := 1 << 13
	if c.Scale == Full {
		n = 1 << 15
	}
	g := gen.RandomRegular(n, 4, c.seed())
	for _, p := range []float64{0, 1e-4, 1e-2, 0.1, 0.3} {
		m := c.machine()
		f := labeled.New(g.N)
		prm := stage1.DefaultParams(g.N)
		prm.DeleteP64 = pram.P64(p)
		r := stage1.NewRunner(m, f, prm)
		res := r.Reduce(g)
		live := map[int32]struct{}{}
		for _, e := range res.Edges {
			if e.U != e.V {
				live[e.U] = struct{}{}
				live[e.V] = struct{}{}
			}
		}
		t.Add(p, len(live), float64(m.Work())/float64(g.M()+g.N), m.Steps())
	}
	t.Note("p=0 never sheds edges (upper work bound); large p starves MATCHING")
	return t
}

// E17BudgetGrid ablates EXPAND-MAXLINK's two knobs: the base budget β₁
// (table size) and the level-up exponent x in P[level up] = β^(-x)
// (paper: β₁=(log n)^80, x=0.06).  Budgets control how fast neighborhoods
// square (the log d term); the exponent controls level diversity and hence
// how often MAXLINK can contract (the log log n term).
func E17BudgetGrid(c Config) *Table {
	t := &Table{
		ID:    "E17",
		Title: "ablation: EXPAND-MAXLINK budgets and level-up rate",
		Claim: "§5.2: budget growth + random level-ups drive the O(log d + log log n) bound",
		Columns: []string{"beta1", "level-up exp", "graph", "rounds",
			"work/(m+n)"},
	}
	n := 1 << 12
	if c.Scale == Full {
		n = 1 << 14
	}
	fams := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(n)},
		{"expander", gen.RandomRegular(n, 4, c.seed())},
	}
	for _, beta := range []int{4, 16, 64} {
		for _, exp := range []float64{0.06, 0.25, 0.5} {
			for _, fam := range fams {
				p := ltz.DefaultParams(fam.g.N)
				p.Beta1 = beta
				p.LevelUpExp = exp
				p.Seed = c.seed()
				m := c.machine()
				f := labeled.New(fam.g.N)
				V := make([]int32, fam.g.N)
				m.Iota32(V)
				rounds := ltz.SolveOn(m, f, V, fam.g.Edges, p)
				t.Add(beta, exp, fam.name, rounds,
					float64(m.Work())/float64(fam.g.M()+fam.g.N))
			}
		}
	}
	t.Note("larger budgets square neighborhoods faster but cost table work; the exponent trades level diversity against wasted rounds")
	return t
}
