package bench

import (
	"strconv"
	"testing"
)

func TestE16DeletionReducesWork(t *testing.T) {
	tab := E16FilterDeletion(Config{Scale: Small, Seed: 5})
	// Work at p=0 (no shedding) must exceed work at p=0.1.
	var w0, wBig float64
	for _, r := range tab.Rows {
		w, err := strconv.ParseFloat(r[2], 64)
		if err != nil {
			t.Fatalf("work cell %q", r[2])
		}
		switch r[0] {
		case "0":
			w0 = w
		case "0.1":
			wBig = w
		}
	}
	if w0 == 0 || wBig == 0 {
		t.Fatalf("missing rows: %v", tab.Rows)
	}
	if wBig >= w0 {
		t.Errorf("deletion should reduce FILTER work: p=0 → %.1f, p=0.1 → %.1f", w0, wBig)
	}
}

func TestE17GridCoversAllCells(t *testing.T) {
	tab := E17BudgetGrid(Config{Scale: Small, Seed: 3})
	if len(tab.Rows) != 3*3*2 {
		t.Fatalf("grid has %d rows, want 18", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		rounds, err := strconv.Atoi(r[3])
		if err != nil || rounds <= 0 {
			t.Fatalf("bad rounds cell %q", r[3])
		}
	}
}

func TestE17BiggerBudgetsMoreWork(t *testing.T) {
	tab := E17BudgetGrid(Config{Scale: Small, Seed: 3})
	// At fixed exponent 0.25 on the expander, β=64 must charge more work
	// per edge than β=4 (tables dominate).
	var w4, w64 float64
	for _, r := range tab.Rows {
		if r[1] == "0.25" && r[2] == "expander" {
			w, _ := strconv.ParseFloat(r[4], 64)
			switch r[0] {
			case "4":
				w4 = w
			case "64":
				w64 = w
			}
		}
	}
	if w64 <= w4 {
		t.Errorf("β=64 work %.1f should exceed β=4 work %.1f", w64, w4)
	}
}
