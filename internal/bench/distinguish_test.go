package bench

import (
	"testing"

	"parcc/internal/graph/gen"
)

func TestBudgetedDecideUnknownThenResolved(t *testing.T) {
	g := gen.Cycle(512)
	if d := BudgetedDecide(g, 1, 3); d != Unknown {
		t.Errorf("1 round should not certify a 512-cycle, got %v", d)
	}
	if d := BudgetedDecide(g, 256, 3); d != OneComponent {
		t.Errorf("generous budget should certify one component, got %v", d)
	}
	if d := BudgetedDecide(gen.TwoCycles(512), 256, 3); d != ManyComponents {
		t.Errorf("two cycles should certify many components, got %v", d)
	}
}

func TestBudgetedDecideNeverLies(t *testing.T) {
	// A certified answer must be the true answer at every budget.
	one := gen.Cycle(128)
	two := gen.TwoCycles(128)
	for r := 1; r <= 64; r++ {
		if d := BudgetedDecide(one, r, 7); d == ManyComponents {
			t.Fatalf("budget %d: certified the wrong answer for one cycle", r)
		}
		if d := BudgetedDecide(two, r, 7); d == OneComponent {
			t.Fatalf("budget %d: certified the wrong answer for two cycles", r)
		}
	}
}

func TestRoundsToDistinguishGrows(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	small := RoundsToDistinguish(1<<6, seeds)
	large := RoundsToDistinguish(1<<14, seeds)
	if large <= small {
		t.Errorf("distinguish rounds should grow with n: %f -> %f", small, large)
	}
}
