// Package bench is the experiment harness: it regenerates every table and
// figure series in EXPERIMENTS.md.  The paper is a theory paper with no
// measured evaluation, so each experiment instantiates one of its
// quantitative claims (theorem, lemma, or appendix construction); the
// mapping is recorded in DESIGN.md §3 and EXPERIMENTS.md.
//
// Experiments run at two scales: Small (seconds; used by unit tests and the
// benchmark suite) and Full (the published tables in EXPERIMENTS.md).
package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"parcc/internal/core"
	"parcc/internal/graph"
	"parcc/internal/ltz"
	"parcc/internal/par"
	"parcc/internal/pram"
)

// Scale selects experiment sizes.
type Scale int

// Scales.
const (
	Small Scale = iota // CI-sized: a few seconds per experiment
	Full               // the published tables
)

// Config parameterizes an experiment run.
type Config struct {
	Scale   Scale
	Seed    uint64
	Workers int
	// Backend selects the execution engine for every experiment machine:
	// "" (legacy simulator), "sequential", or "concurrent" (the
	// internal/par pool).
	Backend string
	// Procs bounds the concurrent backend's parallelism (0: Workers, else
	// NumCPU).
	Procs int
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) procs() int {
	if c.Procs > 0 {
		return c.Procs
	}
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// pools shares one runtime per parallelism degree across all experiment
// machines: experiments build machines in nested loops, and a pool per
// machine would stack up parked goroutines (and GC-timed teardown) while
// the benchmark is timing.  The pools live for the process — ccbench exits
// when the tables are done.  Machine randomness comes from pram.Seed; the
// runtime seed only feeds ForChunks streams, which machines don't use.
var (
	poolMu sync.Mutex
	pools  = map[int]*par.Runtime{}
)

func sharedPool(procs int) *par.Runtime {
	poolMu.Lock()
	defer poolMu.Unlock()
	rt, ok := pools[procs]
	if !ok {
		rt = par.New(par.Procs(procs))
		pools[procs] = rt
	}
	return rt
}

func (c Config) machine() *pram.Machine {
	opts := []pram.Option{pram.Seed(c.seed())}
	switch strings.ToLower(c.Backend) {
	case "sequential":
		opts = append(opts, pram.Sequential())
	case "concurrent":
		opts = append(opts, pram.OnExecutor(sharedPool(c.procs())))
	default:
		if c.Workers > 0 {
			opts = append(opts, pram.Workers(c.Workers))
		}
	}
	return pram.New(opts...)
}

// Table is one experiment's output: a titled grid of formatted cells.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement being instantiated
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row of cells formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note records a caveat printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ",") + "\n")
	}
	return b.String()
}

// JSON renders the table as a machine-readable document — the format CI
// publishes (BENCH_inc.json) so successive PRs accumulate a throughput
// trajectory that tooling can diff.
func (t *Table) JSON() string {
	doc := struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Claim   string     `json:"claim,omitempty"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Claim, t.Columns, t.Rows, t.Notes}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// The struct is marshal-safe by construction; keep the CLI alive.
		return "{}"
	}
	return string(out) + "\n"
}

// Experiment couples an ID to its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) *Table
}

// All returns the registry in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", "parallel time vs spectral gap (Theorem 1)", E1TimeVsGap},
		{"E2", "work linearity vs baselines (Theorem 1)", E2WorkLinearity},
		{"E3", "MATCHING constant shrink (Lemma 4.4)", E3MatchingShrink},
		{"E4", "REDUCE shrink factor (Lemma 4.25)", E4ReduceShrink},
		{"E5", "skeleton sparsity (Lemma 5.5)", E5SkeletonSize},
		{"E6", "minimum degree after INCREASE (Lemma 5.25)", E6MinDegree},
		{"E7", "sampling blows up diameter (Appendix B)", E7DiameterBlowup},
		{"E8", "sampled spectral gap (Corollary C.3)", E8SampledGap},
		{"E9", "inter-component edges after sampling (KKT lemma)", E9KKTRemain},
		{"E10", "headline comparison across algorithms", E10Headline},
		{"E11", "one cycle vs two cycles (Appendix A)", E11TwoCycle},
		{"E12", "double-exponential phase schedule (§3.4/§7)", E12PhaseSchedule},
		{"E13", "contraction preserves the gap (Lemma 6.1)", E13ContractionGap},
		{"E14", "naive sampling breaks paths (§3)", E14NaiveSampling},
		{"E15", "per-stage cost attribution (§7)", E15StageBreakdown},
		{"E16", "ablation: FILTER deletion probability (§4.2)", E16FilterDeletion},
		{"E17", "ablation: EXPAND-MAXLINK budgets (§5.2)", E17BudgetGrid},
		{"SP", "concurrent backend self-speedup T1/TP (internal/par)", SPSelfSpeedup},
		{"QPS", "repeated-solve throughput: one-shot vs Solver session", QPSSessionReuse},
		{"INC", "incremental updates: live session vs cold re-solve", INCIncrementalUpdates},
		{"SOLVE", "end-to-end solve wall clock: cas vs sample vs auto", SOLVERawSolves},
	}
}

// Find returns the experiment with the given ID (case-insensitive).
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// runFLS executes the paper's algorithm and reports (rounds, work, wall).
func runFLS(c Config, g *graph.Graph) (steps, work int64, wall time.Duration, res *core.Result) {
	m := c.machine()
	p := core.Default(g.N)
	p.Seed ^= c.seed()
	t0 := time.Now()
	res = core.Connectivity(m, g, p)
	return m.Steps(), m.Work(), time.Since(t0), res
}

// runLTZ executes the Theorem-2 baseline.
func runLTZ(c Config, g *graph.Graph) (steps, work int64, wall time.Duration) {
	m := c.machine()
	p := ltz.DefaultParams(g.N)
	p.Seed ^= c.seed()
	t0 := time.Now()
	ltz.Solve(m, g, p)
	return m.Steps(), m.Work(), time.Since(t0)
}

func log2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	l := 0.0
	for x >= 2 {
		x /= 2
		l++
	}
	for x < 1 {
		x *= 2
		l--
	}
	// linear interpolation on the mantissa is plenty for plotting
	return l + (x - 1)
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
