package bench

import (
	"strconv"
	"testing"
)

// TestSOLVEShapeAndEquivalence: the small-scale SOLVE sweep must cover all
// twenty-three families with finite timings and a recorded auto decision
// per row.  (The experiment itself panics if the four algorithms'
// partitions ever diverge, so running it at all is the equivalence check;
// the ≥2×, frontier-wins-hidiam, and 1.1× bars bind only at -scale full
// and are recorded, not asserted, here — small-scale wall clocks are
// overhead-dominated.)
func TestSOLVEShapeAndEquivalence(t *testing.T) {
	tab := SOLVERawSolves(Config{Scale: Small, Seed: 3})
	if len(tab.Rows) != 23 {
		t.Fatalf("rows = %d, want 23 families", len(tab.Rows))
	}
	picks := map[string]bool{"cas": true, "sample": true, "union-find": true, "frontier": true}
	for _, row := range tab.Rows {
		for _, col := range []int{3, 4, 5, 6} {
			ms, err := strconv.ParseFloat(row[col], 64)
			if err != nil || ms <= 0 {
				t.Fatalf("%s: wall cell %q not a positive duration", row[0], row[col])
			}
		}
		if !picks[row[7]] {
			t.Errorf("%s: auto pick %q is not a concrete algorithm", row[0], row[7])
		}
		if skip, err := strconv.ParseFloat(row[8], 64); err != nil || skip < 0 || skip > 100 {
			t.Errorf("%s: skip%% cell %q outside [0,100]", row[0], row[8])
		}
	}
	if len(tab.Notes) < 4 {
		t.Fatalf("notes = %d, want the three bar verdicts and the method note", len(tab.Notes))
	}
}

func BenchmarkSOLVERawSolves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SOLVERawSolves(Config{Scale: Small, Seed: 1})
	}
}
