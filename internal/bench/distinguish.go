package bench

import (
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/ltz"
	"parcc/internal/pram"
)

// Decision is the outcome of a round-budgeted connectivity probe.
type Decision int

// Probe outcomes.
const (
	Unknown      Decision = iota // budget exhausted before full contraction
	OneComponent                 // instance fully contracted to one root
	ManyComponents
)

// BudgetedDecide runs the Theorem-2 contraction for at most `rounds`
// EXPAND-MAXLINK rounds and reports whether it can already certify the
// component count.  A contraction algorithm certifies only at fixpoint —
// before that, remaining non-loop edges could still merge roots — which is
// exactly the information constraint behind the 2-CYCLE conjecture
// (Appendix A): distinguishing one n-cycle from two n/2-cycles requires
// enough rounds for information to travel the cycle.
func BudgetedDecide(g *graph.Graph, rounds int, seed uint64) Decision {
	m := pram.New(pram.Seed(seed))
	f := labeled.New(g.N)
	V := make([]int32, g.N)
	m.Iota32(V)
	p := ltz.DefaultParams(g.N)
	p.Seed = seed
	st := ltz.NewState(m, f, V, g.Edges, p)
	st.Run(rounds)
	if !st.Done() {
		return Unknown
	}
	if graph.NumLabels(f.Labels()) == 1 {
		return OneComponent
	}
	return ManyComponents
}

// RoundsToDistinguish returns the minimal round budget at which the probe
// resolves both 2-CYCLE instances of size n correctly, averaged over the
// given seeds (it returns the mean of the per-seed minima).  The Appendix-A
// lower bound predicts growth proportional to log n.
func RoundsToDistinguish(n int, seeds []uint64) float64 {
	one := gen.Cycle(n)
	two := gen.TwoCycles(n)
	var total float64
	for _, s := range seeds {
		r := 1
		for ; r < 4*lg(n)+64; r++ {
			d1 := BudgetedDecide(one, r, s)
			d2 := BudgetedDecide(two, r, s)
			if d1 == OneComponent && d2 == ManyComponents {
				break
			}
		}
		total += float64(r)
	}
	return total / float64(len(seeds))
}
