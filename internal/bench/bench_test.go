package bench

import (
	"strconv"
	"strings"
	"testing"

	"parcc/internal/graph"
)

func TestAllExperimentsRunSmall(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(Config{Scale: Small, Seed: 3})
			if tab.ID != e.ID {
				t.Errorf("table ID %q, want %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for i, r := range tab.Rows {
				if len(r) != len(tab.Columns) {
					t.Fatalf("row %d has %d cells, want %d", i, len(r), len(tab.Columns))
				}
			}
			md := tab.Markdown()
			if !strings.Contains(md, tab.Title) {
				t.Error("markdown missing title")
			}
			csv := tab.CSV()
			if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(tab.Rows)+1 {
				t.Error("csv row count mismatch")
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("e1"); !ok {
		t.Error("case-insensitive find failed")
	}
	if _, ok := Find("E99"); ok {
		t.Error("bogus ID should not resolve")
	}
}

func TestE3ShrinkFactorsBelowBound(t *testing.T) {
	tab := E3MatchingShrink(Config{Scale: Small, Seed: 7})
	for _, r := range tab.Rows {
		f, err := strconv.ParseFloat(r[4], 64)
		if err != nil {
			t.Fatalf("factor cell %q not numeric", r[4])
		}
		if f > 0.999 {
			t.Errorf("%s: shrink factor %f exceeds Lemma 4.4 bound", r[0], f)
		}
	}
}

func TestE6MinDegreeHolds(t *testing.T) {
	tab := E6MinDegree(Config{Scale: Small, Seed: 5})
	for _, r := range tab.Rows {
		// The guarantee is asserted for the unlimited profile; the
		// phase-limited rows are reported observationally (the paper's
		// proof covers them only at full polylog parameters).
		if r[1] == "full" && r[6] != "true" {
			t.Errorf("%s b=%s: min degree below b (row %v)", r[0], r[2], r)
		}
	}
}

func TestE13NoViolations(t *testing.T) {
	tab := E13ContractionGap(Config{Scale: Small, Seed: 11})
	for _, r := range tab.Rows {
		if r[3] != "0" {
			t.Errorf("%s: %s contraction-gap violations", r[0], r[3])
		}
	}
}

func TestE7DiameterGrows(t *testing.T) {
	tab := E7DiameterBlowup(Config{Scale: Small, Seed: 9})
	for _, r := range tab.Rows {
		if r[5] != "true" {
			t.Errorf("sampled Appendix-B graph disconnected (row %v)", r)
			continue
		}
		before, _ := strconv.Atoi(r[3])
		after, _ := strconv.Atoi(r[4])
		if after <= 2*before {
			t.Errorf("diameter did not blow up: %d -> %d", before, after)
		}
	}
}

func TestE14PathsBreakDenseSurvive(t *testing.T) {
	tab := E14NaiveSampling(Config{Scale: Small, Seed: 13})
	var pathBroken, denseBroken float64
	for _, r := range tab.Rows {
		if r[1] == "0.25" {
			f, _ := strconv.ParseFloat(r[4], 64)
			switch r[0] {
			case "paths":
				pathBroken = f
			case "dense-d8":
				denseBroken = f
			}
		}
	}
	if pathBroken < 1 {
		t.Errorf("paths should shatter under p=0.25 sampling (broken=%f)", pathBroken)
	}
	if denseBroken > pathBroken/4 {
		t.Errorf("dense components should survive sampling far better: %f vs %f",
			denseBroken, pathBroken)
	}
}

func TestLog2Helper(t *testing.T) {
	if log2(8) != 3 {
		t.Errorf("log2(8) = %f", log2(8))
	}
	if log2(0.5) > -0.9 || log2(0.5) < -1.1 {
		t.Errorf("log2(0.5) = %f", log2(0.5))
	}
	if log2(0) != 0 {
		t.Error("log2(0) should clamp")
	}
}

func TestDistrib(t *testing.T) {
	min, med := distrib([]int{5, 1, 9, 3, 7})
	if min != 1 || med != 5 {
		t.Errorf("distrib = %d,%d", min, med)
	}
	if a, b := distrib(nil); a != 0 || b != 0 {
		t.Error("empty distrib should be zeros")
	}
}

func TestContractRandomEdge(t *testing.T) {
	g := connectedGNM(10, 16, 3)
	h := contractRandomEdge(g, 5)
	if h == nil || h.N != g.N-1 {
		t.Fatal("contraction should drop one vertex")
	}
	if h.M() != g.M() {
		t.Fatal("contraction keeps all edges (as loops if need be)")
	}
	loops := graph.New(3)
	loops.AddEdge(0, 0)
	if contractRandomEdge(loops, 1) != nil {
		t.Fatal("loop-only graph has nothing to contract")
	}
}

func TestVerdictsCoverAllExperiments(t *testing.T) {
	for _, e := range All() {
		if _, ok := Verdicts[e.ID]; !ok {
			t.Errorf("no verdict recorded for %s", e.ID)
		}
	}
	for id := range Verdicts {
		if _, ok := Find(id); !ok {
			t.Errorf("verdict for unknown experiment %s", id)
		}
	}
}
