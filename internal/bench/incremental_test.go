package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestINCSpeedupAndShape: the small-scale INC experiment must produce the
// three workloads and show the insert-only live path beating cold
// re-solves (the full-scale acceptance bar is 5× at n=2^16; small scale
// must already clear 2× or the incremental path is broken).
func TestINCSpeedupAndShape(t *testing.T) {
	tab := INCIncrementalUpdates(Config{Scale: Small, Seed: 3})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 workloads", len(tab.Rows))
	}
	if tab.Rows[0][0] != "insert-only" {
		t.Fatalf("first workload = %q", tab.Rows[0][0])
	}
	speedup, err := strconv.ParseFloat(tab.Rows[0][len(tab.Columns)-1], 64)
	if err != nil {
		t.Fatalf("speedup cell %q: %v", tab.Rows[0][len(tab.Columns)-1], err)
	}
	if speedup < 2 {
		t.Errorf("insert-only incremental speedup = %.2fx, want ≥ 2x even at small scale", speedup)
	}
}

// TestTableJSON: the published BENCH_inc.json format is valid and carries
// the table contents.
func TestTableJSON(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Columns: []string{"a", "b"}}
	tab.Add("1", 2.5)
	tab.Note("n")
	j := tab.JSON()
	for _, want := range []string{`"id": "X"`, `"columns"`, `"2.5"`, `"notes"`} {
		if !strings.Contains(j, want) {
			t.Errorf("JSON missing %s in:\n%s", want, j)
		}
	}
}

func BenchmarkINCIncrementalUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		INCIncrementalUpdates(Config{Scale: Small, Seed: 1})
	}
}
