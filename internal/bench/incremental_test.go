package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestINCSpeedupAndShape: the small-scale INC experiment must produce the
// four workloads and show the insert-only live path beating cold
// re-solves (the full-scale acceptance bar is 5× at n=2^16; small scale
// must already clear 2× or the incremental path is broken).  The
// delete-dominated row compares the forest deletion path against the
// scoped re-solve (NoForest) and must clear a conservative 4× at small
// scale (the ≥10× acceptance verdict is recorded in the table notes for
// the published BENCH_inc.json runs).
func TestINCSpeedupAndShape(t *testing.T) {
	tab := INCIncrementalUpdates(Config{Scale: Small, Seed: 3})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 workloads", len(tab.Rows))
	}
	if tab.Rows[0][0] != "insert-only" {
		t.Fatalf("first workload = %q", tab.Rows[0][0])
	}
	speedup, err := strconv.ParseFloat(tab.Rows[0][len(tab.Columns)-1], 64)
	if err != nil {
		t.Fatalf("speedup cell %q: %v", tab.Rows[0][len(tab.Columns)-1], err)
	}
	if speedup < 2 {
		t.Errorf("insert-only incremental speedup = %.2fx, want ≥ 2x even at small scale", speedup)
	}
	last := tab.Rows[3]
	if last[0] != "delete-dominated" {
		t.Fatalf("last workload = %q, want delete-dominated", last[0])
	}
	forestSpeedup, err := strconv.ParseFloat(last[len(tab.Columns)-1], 64)
	if err != nil {
		t.Fatalf("speedup cell %q: %v", last[len(tab.Columns)-1], err)
	}
	if forestSpeedup < 4 {
		t.Errorf("delete-dominated forest-vs-scoped speedup = %.2fx, want ≥ 4x at small scale", forestSpeedup)
	}
	found := false
	for _, n := range tab.Notes {
		found = found || strings.Contains(n, "acceptance bar ≥10x")
	}
	if !found {
		t.Error("delete-dominated verdict note missing from the table")
	}
}

// TestTableJSON: the published BENCH_inc.json format is valid and carries
// the table contents.
func TestTableJSON(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Columns: []string{"a", "b"}}
	tab.Add("1", 2.5)
	tab.Note("n")
	j := tab.JSON()
	for _, want := range []string{`"id": "X"`, `"columns"`, `"2.5"`, `"notes"`} {
		if !strings.Contains(j, want) {
			t.Errorf("JSON missing %s in:\n%s", want, j)
		}
	}
}

func BenchmarkINCIncrementalUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		INCIncrementalUpdates(Config{Scale: Small, Seed: 1})
	}
}
