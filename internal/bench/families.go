package bench

import "parcc"

// Family is one generator family of the SOLVE sweep, exposed so tests
// outside this package (the auto-dispatch golden test) can run against
// the exact graph population the tracked benchmark measures.
type Family struct {
	Name string
	Make func() *parcc.Graph
}

// Families instantiates all twenty-three generator families at the target
// vertex count, in sweep order.
func Families(n int, seed uint64) []Family {
	fams := solveFamilies(n, seed)
	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		out = append(out, Family{Name: f.name, Make: f.make})
	}
	return out
}
