package spectral

import (
	"math"
	"testing"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGapCompleteGraph(t *testing.T) {
	// λ(K_n) = n/(n-1).
	for _, n := range []int{4, 8, 16} {
		g := gen.Complete(n)
		want := float64(n) / float64(n-1)
		if got := Gap(g, nil); !almost(got, want, 0.02) {
			t.Errorf("K%d: gap = %f, want %f", n, got, want)
		}
	}
}

func TestGapCycle(t *testing.T) {
	// λ(C_n) = 1 - cos(2π/n).
	for _, n := range []int{8, 16, 32} {
		g := gen.Cycle(n)
		want := 1 - math.Cos(2*math.Pi/float64(n))
		if got := Gap(g, nil); !almost(got, want, 0.01) {
			t.Errorf("C%d: gap = %f, want %f", n, got, want)
		}
	}
}

func TestGapPath(t *testing.T) {
	// λ(P_n) = 1 - cos(π/(n-1)) for the path's normalized Laplacian.
	g := gen.Path(16)
	want := 1 - math.Cos(math.Pi/15)
	if got := Gap(g, nil); !almost(got, want, 0.01) {
		t.Errorf("P16: gap = %f, want %f", got, want)
	}
}

func TestGapHypercube(t *testing.T) {
	// λ(Q_d) = 2/d.
	for _, d := range []int{3, 4, 5} {
		g := gen.Hypercube(d)
		want := 2 / float64(d)
		if got := Gap(g, nil); !almost(got, want, 0.02) {
			t.Errorf("Q%d: gap = %f, want %f", d, got, want)
		}
	}
}

func TestGapStar(t *testing.T) {
	// λ(K_{1,n}) = 1.
	if got := Gap(gen.Star(12), nil); !almost(got, 1, 0.02) {
		t.Errorf("star gap = %f, want 1", got)
	}
}

func TestGapMatchesDenseOracle(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Cycle(9), gen.Grid(3, 4), gen.Complete(6),
		gen.Lollipop(10, 4), gen.RandomRegular(12, 4, 7),
	}
	for i, g := range graphs {
		want := GapDense(g)
		got := Gap(g, &Options{MaxIter: 20000, Tol: 1e-12})
		if !almost(got, want, 0.02) {
			t.Errorf("graph %d: power-iter gap %f vs dense %f", i, got, want)
		}
	}
}

func TestGapDisconnectedIsZero(t *testing.T) {
	g := gen.Union(gen.Cycle(8), gen.Cycle(8))
	// Component-wise λ: the min over components (each is a connected cycle).
	want := 1 - math.Cos(2*math.Pi/8)
	if got := Gap(g, nil); !almost(got, want, 0.01) {
		t.Errorf("two-cycles component gap = %f, want %f", got, want)
	}
	// But the whole-graph dense λ2 of a disconnected graph is 0.
	if l := EigenvaluesDense(NormalizedLaplacian(g)); !almost(l[1], 0, 1e-9) {
		t.Errorf("disconnected λ2 = %f, want 0", l[1])
	}
}

func TestComponentGapsSkipsSingletons(t *testing.T) {
	g := gen.Union(gen.Cycle(6), graph.New(3))
	gaps := ComponentGaps(g, nil)
	nan := 0
	for _, l := range gaps {
		if math.IsNaN(l) {
			nan++
		}
	}
	if nan != 3 {
		t.Errorf("expected 3 singleton NaNs, got %d (gaps=%v)", nan, gaps)
	}
	if Gap(g, nil) > 2 || Gap(g, nil) <= 0 {
		t.Error("gap of union should come from the cycle")
	}
}

func TestGapExpanderConstant(t *testing.T) {
	g := gen.RandomRegular(256, 6, 5)
	if got := Gap(g, nil); got < 0.15 {
		t.Errorf("6-regular expander gap = %f, suspiciously small", got)
	}
}

func TestSelfLoopsRaiseNoPanic(t *testing.T) {
	g := graph.FromPairs(3, [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 2}})
	got := Gap(g, nil)
	want := GapDense(g)
	if !almost(got, want, 0.03) {
		t.Errorf("loops: %f vs dense %f", got, want)
	}
}

func TestCheegerInequality(t *testing.T) {
	// φ²/2 ≤ λ ≤ 2φ on small graphs with exact conductance.
	graphs := []*graph.Graph{
		gen.Cycle(8), gen.Path(7), gen.Complete(6), gen.Grid(3, 3),
		gen.Lollipop(9, 4),
	}
	for i, g := range graphs {
		phi := Conductance(g)
		lam := GapDense(g)
		if lam > 2*phi+1e-9 || lam < phi*phi/2-1e-9 {
			t.Errorf("graph %d: Cheeger violated: φ=%f λ=%f", i, phi, lam)
		}
	}
}

func TestNormalizedLaplacianDefinition(t *testing.T) {
	// Definition 2.1 on a triangle with a self-loop at 0.
	g := graph.FromPairs(3, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 0}})
	L := NormalizedLaplacian(g)
	// deg(0) = 3 (self-loop counts once), w(0,0)=1 → L[0][0] = 1 - 1/3.
	if !almost(L[0][0], 1-1.0/3, 1e-12) {
		t.Errorf("L[0][0] = %f", L[0][0])
	}
	if !almost(L[1][1], 1, 1e-12) {
		t.Errorf("L[1][1] = %f", L[1][1])
	}
	// L[0][1] = -1/sqrt(deg0*deg1) = -1/sqrt(6).
	if !almost(L[0][1], -1/math.Sqrt(6), 1e-12) {
		t.Errorf("L[0][1] = %f", L[0][1])
	}
}

func TestEigenvaluesDenseIdentity(t *testing.T) {
	a := [][]float64{{2, 0}, {0, -1}}
	ev := EigenvaluesDense(a)
	if !almost(ev[0], -1, 1e-9) || !almost(ev[1], 2, 1e-9) {
		t.Errorf("eigenvalues = %v", ev)
	}
}

func TestDiameterExact(t *testing.T) {
	if d := DiameterExact(gen.Path(10)); d != 9 {
		t.Errorf("path diameter = %d", d)
	}
	if d := DiameterExact(gen.Cycle(10)); d != 5 {
		t.Errorf("cycle diameter = %d", d)
	}
	if d := DiameterExact(gen.Complete(6)); d != 1 {
		t.Errorf("K6 diameter = %d", d)
	}
	if d := DiameterExact(gen.Grid(3, 4)); d != 5 {
		t.Errorf("grid diameter = %d", d)
	}
}

func TestDiameterApproxOnTrees(t *testing.T) {
	// Double sweep is exact on trees.
	g := gen.BinaryTree(63)
	if got, want := DiameterApprox(g, 2), DiameterExact(g); got != want {
		t.Errorf("tree diameter approx %d vs exact %d", got, want)
	}
}

func TestDiameterApproxLowerBounds(t *testing.T) {
	g := gen.Torus(8, 8)
	lo := DiameterApprox(g, 3)
	hi := DiameterExact(g)
	if lo > hi {
		t.Errorf("approx %d exceeds exact %d", lo, hi)
	}
	if lo < hi/2 {
		t.Errorf("approx %d too loose vs exact %d", lo, hi)
	}
}

func TestDiameterMultiComponent(t *testing.T) {
	g := gen.Union(gen.Path(5), gen.Path(11))
	if d := DiameterExact(g); d != 10 {
		t.Errorf("union diameter = %d, want 10", d)
	}
	if d := DiameterApprox(g, 2); d != 10 {
		t.Errorf("approx union diameter = %d, want 10", d)
	}
}

func TestGapSampledStaysClose(t *testing.T) {
	// Corollary C.3 shape: with large min degree, sampling perturbs λ little.
	g := gen.RandomRegular(300, 24, 11)
	lam := Gap(g, nil)
	s := gen.SampleEdges(g, 0.5, 7)
	lam2 := Gap(s, nil)
	if math.Abs(lam-lam2) > 0.35 {
		t.Errorf("sampled gap moved too far: %f -> %f", lam, lam2)
	}
}
