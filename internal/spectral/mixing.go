package spectral

import (
	"math"

	"parcc/internal/graph"
	"parcc/internal/pram"
)

// MixingEstimate bounds the lazy-random-walk mixing behaviour of a
// connected graph empirically: it runs the lazy walk distribution from a
// worst-ish start (a vertex found by a double sweep) and reports the number
// of steps until the L2 distance to stationarity drops below eps.  Spectral
// theory ties this to the gap: t_mix = Θ(log(n/eps)/λ), so the estimate is
// a cheap independent cross-check of the eigensolver (used by tests) and of
// the d ≤ O(log n/λ) diameter bound the paper leans on in Stage 3.
func MixingEstimate(g *graph.Graph, eps float64, maxSteps int) int {
	return MixingEstimateOn(graph.NewPlan(g), eps, maxSteps)
}

// MixingEstimateOn is MixingEstimate against a prebuilt plan (the cached
// CSR and degree stats replace the per-call rebuilds).
func MixingEstimateOn(pl *graph.Plan, eps float64, maxSteps int) int {
	g := pl.G
	if g.N == 0 {
		return 0
	}
	if eps <= 0 {
		eps = 1e-3
	}
	if maxSteps <= 0 {
		maxSteps = 64 * g.N
	}
	csr := pl.CSR
	deg := pl.Degrees()
	var vol float64
	for _, d := range deg {
		vol += float64(d)
	}
	if vol == 0 {
		return 0
	}
	// stationary distribution π(v) = deg(v)/vol
	pi := make([]float64, g.N)
	for v := range pi {
		pi[v] = float64(deg[v]) / vol
	}
	// start at the far end of a double sweep (an eccentric vertex)
	dist := make([]int32, g.N)
	far, _ := eccentricity(csr, g.N, 0, dist)
	far2, _ := eccentricity(csr, g.N, far, dist)

	p := make([]float64, g.N)
	q := make([]float64, g.N)
	p[far2] = 1
	for step := 1; step <= maxSteps; step++ {
		for i := range q {
			q[i] = 0
		}
		for v := 0; v < g.N; v++ {
			if p[v] == 0 {
				continue
			}
			q[v] += p[v] / 2 // lazy self-loop half
			dv := float64(csr.Deg(int32(v)))
			if dv == 0 {
				q[v] += p[v] / 2
				continue
			}
			share := p[v] / 2 / dv
			for _, w := range csr.Neighbors(int32(v)) {
				q[w] += share
			}
		}
		p, q = q, p
		var l2 float64
		for v := range p {
			d := p[v] - pi[v]
			l2 += d * d
		}
		if math.Sqrt(l2) < eps {
			return step
		}
	}
	return maxSteps
}

// GapFromMixing inverts the mixing-time relation to a rough gap estimate:
// λ ≈ ln(n/eps)/t_mix.  Useful as an order-of-magnitude cross-check.
func GapFromMixing(g *graph.Graph, eps float64, maxSteps int) float64 {
	return GapFromMixingOn(graph.NewPlan(g), eps, maxSteps)
}

// GapFromMixingOn is GapFromMixing against a prebuilt plan.
func GapFromMixingOn(pl *graph.Plan, eps float64, maxSteps int) float64 {
	t := MixingEstimateOn(pl, eps, maxSteps)
	if t <= 0 {
		return math.NaN()
	}
	return math.Log(float64(pl.G.N)/eps) / float64(t)
}

// WalkDeviation runs k independent lazy random walks of the given length
// from seed vertices and returns the maximum observed visit-frequency
// deviation from stationarity.  It is a randomized tester used by the
// Appendix-C experiments to confirm that sampled expanders still mix.
func WalkDeviation(g *graph.Graph, walks, length int, seed uint64) float64 {
	return WalkDeviationOn(graph.NewPlan(g), walks, length, seed)
}

// WalkDeviationOn is WalkDeviation against a prebuilt plan.
func WalkDeviationOn(pl *graph.Plan, walks, length int, seed uint64) float64 {
	g := pl.G
	if g.N == 0 || walks <= 0 || length <= 0 {
		return 0
	}
	csr := pl.CSR
	deg := pl.Degrees()
	var vol float64
	for _, d := range deg {
		vol += float64(d)
	}
	if vol == 0 {
		return 0
	}
	visits := make([]int64, g.N)
	var total int64
	rng := seed
	next := func(bound int) int {
		rng = pram.SplitMix64(rng)
		return int(rng % uint64(bound))
	}
	for w := 0; w < walks; w++ {
		v := int32(next(g.N))
		for s := 0; s < length; s++ {
			if next(2) == 0 { // lazy half-step
				d := csr.Deg(v)
				if d > 0 {
					v = csr.Neighbors(v)[next(d)]
				}
			}
			if s >= length/2 { // burn-in half
				visits[v]++
				total++
			}
		}
	}
	var worst float64
	for v := 0; v < g.N; v++ {
		want := float64(deg[v]) / vol
		got := float64(visits[v]) / float64(total)
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
	}
	return worst
}
