package spectral

import (
	"math"
	"testing"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

func TestMixingFasterOnExpanders(t *testing.T) {
	exp := gen.RandomRegular(256, 8, 3)
	cyc := gen.Cycle(256)
	te := MixingEstimate(exp, 1e-3, 1<<16)
	tc := MixingEstimate(cyc, 1e-3, 1<<16)
	if te >= tc {
		t.Errorf("expander mixing %d should beat cycle %d", te, tc)
	}
}

func TestMixingMatchesGapOrder(t *testing.T) {
	// t_mix ≈ ln(n/eps)/λ within an order of magnitude.
	g := gen.Hypercube(7) // λ = 2/7
	lam := Gap(g, nil)
	tm := MixingEstimate(g, 1e-3, 1<<16)
	pred := math.Log(float64(g.N)/1e-3) / lam
	if float64(tm) > 10*pred || float64(tm) < pred/10 {
		t.Errorf("mixing %d vs spectral prediction %.0f", tm, pred)
	}
}

func TestGapFromMixingOrderOfMagnitude(t *testing.T) {
	g := gen.RandomRegular(128, 8, 5)
	est := GapFromMixing(g, 1e-3, 1<<16)
	lam := Gap(g, nil)
	if est < lam/20 || est > lam*20 {
		t.Errorf("gap-from-mixing %f vs eigensolver %f", est, lam)
	}
}

func TestMixingDegenerateInputs(t *testing.T) {
	if MixingEstimate(graph.New(0), 1e-3, 10) != 0 {
		t.Error("empty graph should mix instantly")
	}
	if MixingEstimate(graph.New(3), 1e-3, 10) != 0 {
		t.Error("edgeless graph has no stationary walk; expect 0")
	}
	// default parameters kick in for non-positive eps/maxSteps
	g := gen.Complete(4)
	if MixingEstimate(g, 0, 0) <= 0 {
		t.Error("defaults should produce a positive estimate")
	}
}

func TestMixingCompleteGraphFast(t *testing.T) {
	g := gen.Complete(32)
	if tm := MixingEstimate(g, 1e-3, 1000); tm > 40 {
		t.Errorf("complete graph mixing %d too slow", tm)
	}
}

func TestWalkDeviationSmallOnExpander(t *testing.T) {
	g := gen.RandomRegular(128, 8, 7)
	dev := WalkDeviation(g, 64, 4096, 11)
	if dev > 0.05 {
		t.Errorf("visit deviation %f too large for an expander", dev)
	}
}

func TestWalkDeviationDegenerate(t *testing.T) {
	if WalkDeviation(graph.New(0), 4, 4, 1) != 0 {
		t.Error("empty graph deviation should be 0")
	}
	if WalkDeviation(graph.New(5), 4, 4, 1) != 0 {
		t.Error("edgeless graph deviation should be 0")
	}
	if WalkDeviation(gen.Cycle(8), 0, 0, 1) != 0 {
		t.Error("no walks should give 0")
	}
}

func TestWalkDeviationSampledExpanderStillMixes(t *testing.T) {
	// Appendix-C flavor: a sampled dense expander still behaves like an
	// expander under random walks.
	g := gen.RandomRegular(128, 32, 9)
	s := gen.SampleEdges(g, 0.5, 5)
	dev := WalkDeviation(s, 64, 4096, 13)
	if dev > 0.05 {
		t.Errorf("sampled expander deviation %f", dev)
	}
}
