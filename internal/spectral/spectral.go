// Package spectral computes the spectral quantities the paper's bounds are
// parameterized by: the spectral gap λ(G) (second-smallest eigenvalue of the
// normalized Laplacian, Definition 2.1/2.2), the conductance φ(G)
// (Definition 2.3), and graph diameters.
//
// The gap is estimated per connected component by deflated power iteration
// on the positive-semidefinite matrix M = (I + D^{-1/2} A D^{-1/2})/2, whose
// top eigenvector is known in closed form (v₁ ∝ D^{1/2}·1); the second
// eigenvalue μ of M gives λ = 2(1-μ).  Multigraph semantics follow the
// paper: w(u,v) counts parallel edges, a self-loop counts once toward the
// degree and contributes w(v,v) to the diagonal.
package spectral

import (
	"math"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/pram"
)

// Options tunes the eigensolver.
type Options struct {
	MaxIter int     // power-iteration cap (default 5000)
	Tol     float64 // relative convergence tolerance (default 1e-9)
	Seed    uint64  // randomized start vector seed
	Restart int     // number of random restarts, max taken (default 2)
}

func (o *Options) defaults() Options {
	out := Options{MaxIter: 5000, Tol: 1e-9, Seed: 1, Restart: 2}
	if o == nil {
		return out
	}
	if o.MaxIter > 0 {
		out.MaxIter = o.MaxIter
	}
	if o.Tol > 0 {
		out.Tol = o.Tol
	}
	if o.Seed != 0 {
		out.Seed = o.Seed
	}
	if o.Restart > 0 {
		out.Restart = o.Restart
	}
	return out
}

// component holds one connected component in local indexing.
type component struct {
	verts []int32
	edges []graph.Edge // local endpoints
	deg   []float64    // paper degree (self-loop counts once)
	wSelf []float64    // self-loop multiplicity w(v,v)
}

func splitComponents(pl *graph.Plan) []*component {
	g := pl.G
	labels := baseline.BFSLabelsCSR(pl.CSR, g.N, nil)
	idx := make(map[int32]int)
	var comps []*component
	local := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		l := labels[v]
		ci, ok := idx[l]
		if !ok {
			ci = len(comps)
			idx[l] = ci
			comps = append(comps, &component{})
		}
		c := comps[ci]
		local[v] = int32(len(c.verts))
		c.verts = append(c.verts, int32(v))
	}
	for _, c := range comps {
		c.deg = make([]float64, len(c.verts))
		c.wSelf = make([]float64, len(c.verts))
	}
	for _, e := range g.Edges {
		c := comps[idx[labels[e.U]]]
		u, v := local[e.U], local[e.V]
		if u == v {
			c.deg[u]++
			c.wSelf[u]++
		} else {
			c.deg[u]++
			c.deg[v]++
		}
		c.edges = append(c.edges, graph.Edge{U: u, V: v})
	}
	return comps
}

// Gap returns the minimum spectral gap over all connected components with at
// least 2 vertices (the paper's λ).  Components that are single vertices are
// skipped; if the graph has no multi-vertex component the result is 2 (the
// maximum possible eigenvalue).
func Gap(g *graph.Graph, o *Options) float64 {
	return GapOn(graph.NewPlan(g), o)
}

// GapOn is Gap against a prebuilt plan, so a Solver serving repeated
// spectral queries reuses the cached adjacency instead of rebuilding it.
func GapOn(pl *graph.Plan, o *Options) float64 {
	gaps := ComponentGapsOn(pl, o)
	min := 2.0
	for _, l := range gaps {
		if !math.IsNaN(l) && l < min {
			min = l
		}
	}
	return min
}

// ComponentGaps returns λ(C) for every connected component C, in order of
// each component's smallest vertex.  Single-vertex components yield NaN.
func ComponentGaps(g *graph.Graph, o *Options) []float64 {
	return ComponentGapsOn(graph.NewPlan(g), o)
}

// ComponentGapsOn is ComponentGaps against a prebuilt plan.
func ComponentGapsOn(pl *graph.Plan, o *Options) []float64 {
	opt := o.defaults()
	comps := splitComponents(pl)
	out := make([]float64, len(comps))
	for i, c := range comps {
		out[i] = gapOf(c, opt)
	}
	return out
}

// gapOf computes λ of one connected component via deflated power iteration.
func gapOf(c *component, opt Options) float64 {
	n := len(c.verts)
	if n < 2 {
		return math.NaN()
	}
	// v1 ∝ D^{1/2}·1 is the top eigenvector of M (eigenvalue 1).
	v1 := make([]float64, n)
	var norm float64
	for i := 0; i < n; i++ {
		v1[i] = math.Sqrt(c.deg[i])
		norm += c.deg[i]
	}
	norm = math.Sqrt(norm)
	for i := range v1 {
		v1[i] /= norm
	}
	invSqrtDeg := make([]float64, n)
	for i := range invSqrtDeg {
		invSqrtDeg[i] = 1 / math.Sqrt(c.deg[i])
	}
	best := -1.0
	for r := 0; r < opt.Restart; r++ {
		mu := powerIter(c, v1, invSqrtDeg, opt, uint64(r+1)*opt.Seed)
		if mu > best {
			best = mu
		}
	}
	lambda := 2 * (1 - best)
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 2 {
		lambda = 2
	}
	return lambda
}

// powerIter returns the second-largest eigenvalue μ₂ of
// M = (I + D^{-1/2} A D^{-1/2})/2 using deflation against v1.
func powerIter(c *component, v1, invSqrtDeg []float64, opt Options, seed uint64) float64 {
	n := len(c.verts)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(int64(pram.SplitMix64(seed^uint64(i)))%1000)/1000.0 - 0.5
	}
	deflate(x, v1)
	normalize(x)
	prev := math.Inf(-1)
	for it := 0; it < opt.MaxIter; it++ {
		// y = Mx = (x + D^{-1/2} A D^{-1/2} x) / 2.
		for i := range y {
			y[i] = 0
		}
		for _, e := range c.edges {
			if e.U == e.V {
				// self-loop contributes w(v,v)/deg(v) on the diagonal
				y[e.U] += x[e.U] * invSqrtDeg[e.U] * invSqrtDeg[e.U]
				continue
			}
			cu := invSqrtDeg[e.U] * invSqrtDeg[e.V]
			y[e.U] += cu * x[e.V]
			y[e.V] += cu * x[e.U]
		}
		for i := range y {
			y[i] = (x[i] + y[i]) / 2
		}
		deflate(y, v1)
		mu := dot(x, y) // Rayleigh quotient (x normalized)
		nn := normalize(y)
		x, y = y, x
		if nn == 0 {
			return 0 // x was (numerically) in span(v1): gap ≈ max
		}
		if math.Abs(mu-prev) < opt.Tol*math.Max(1, math.Abs(mu)) && it > 16 {
			return mu
		}
		prev = mu
	}
	return prev
}

func deflate(x, v1 []float64) {
	d := dot(x, v1)
	for i := range x {
		x[i] -= d * v1[i]
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normalize(x []float64) float64 {
	n := math.Sqrt(dot(x, x))
	if n == 0 {
		return 0
	}
	for i := range x {
		x[i] /= n
	}
	return n
}

// NormalizedLaplacian returns the dense normalized Laplacian of g
// (Definition 2.1) for small-graph tests.
func NormalizedLaplacian(g *graph.Graph) [][]float64 {
	n := g.N
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	deg := make([]float64, n)
	for _, e := range g.Edges {
		if e.U == e.V {
			deg[e.U]++
			w[e.U][e.U]++
			continue
		}
		deg[e.U]++
		deg[e.V]++
		w[e.U][e.V]++
		w[e.V][e.U]++
	}
	L := make([][]float64, n)
	for i := range L {
		L[i] = make([]float64, n)
		for j := range L[i] {
			switch {
			case i == j && deg[i] != 0:
				L[i][j] = 1 - w[i][i]/deg[i]
			case i != j && w[i][j] != 0:
				L[i][j] = -w[i][j] / math.Sqrt(deg[i]*deg[j])
			}
		}
	}
	return L
}

// EigenvaluesDense returns all eigenvalues of a symmetric matrix ascending,
// via cyclic Jacobi rotations.  Intended for small test matrices.
func EigenvaluesDense(a [][]float64) []float64 {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	for sweep := 0; sweep < 100; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				cos := 1 / math.Sqrt(t*t+1)
				sin := t * cos
				for k := 0; k < n; k++ {
					mp, mq := m[p][k], m[q][k]
					m[p][k] = cos*mp - sin*mq
					m[q][k] = sin*mp + cos*mq
				}
				for k := 0; k < n; k++ {
					mp, mq := m[k][p], m[k][q]
					m[k][p] = cos*mp - sin*mq
					m[k][q] = sin*mp + cos*mq
				}
			}
		}
	}
	ev := make([]float64, n)
	for i := 0; i < n; i++ {
		ev[i] = m[i][i]
	}
	for i := 1; i < n; i++ { // insertion sort
		v := ev[i]
		j := i - 1
		for j >= 0 && ev[j] > v {
			ev[j+1] = ev[j]
			j--
		}
		ev[j+1] = v
	}
	return ev
}

// GapDense computes λ of a connected graph exactly via the dense
// eigensolver.  Test oracle for small graphs.
func GapDense(g *graph.Graph) float64 {
	ev := EigenvaluesDense(NormalizedLaplacian(g))
	if len(ev) < 2 {
		return math.NaN()
	}
	return ev[1]
}

// Conductance computes φ(G) (Definition 2.3) exactly by enumerating vertex
// subsets.  Only usable for n ≤ ~20; test oracle for Cheeger checks.
func Conductance(g *graph.Graph) float64 {
	n := g.N
	deg := g.Degrees()
	var vol int64
	for _, d := range deg {
		vol += int64(d)
	}
	best := math.Inf(1)
	for mask := 1; mask < 1<<n-1; mask++ {
		var volS, cut int64
		for v := 0; v < n; v++ {
			if mask>>v&1 == 1 {
				volS += int64(deg[v])
			}
		}
		if volS == 0 || volS*2 > vol {
			continue
		}
		for _, e := range g.Edges {
			if e.U == e.V {
				continue
			}
			inU := mask>>e.U&1 == 1
			inV := mask>>e.V&1 == 1
			if inU != inV {
				cut++
			}
		}
		phi := float64(cut) / float64(volS)
		if phi < best {
			best = phi
		}
	}
	return best
}

// Eccentricity returns max distance from s (-1 if g is disconnected from s
// is unreachable anywhere; unreachable vertices are ignored).
func eccentricity(csr *graph.CSR, n int, s int32, dist []int32) (far int32, ecc int32) {
	for i := 0; i < n; i++ {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int32{s}
	far, ecc = s, 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range csr.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if dist[w] > ecc {
					ecc, far = dist[w], w
				}
				queue = append(queue, w)
			}
		}
	}
	return far, ecc
}

// DiameterExact returns the maximum eccentricity over all vertices, computed
// per component (the paper's d: longest shortest path within a component).
// O(n·m); use for small graphs.
func DiameterExact(g *graph.Graph) int {
	return DiameterExactOn(graph.NewPlan(g))
}

// DiameterExactOn is DiameterExact against a prebuilt plan.
func DiameterExactOn(pl *graph.Plan) int {
	g := pl.G
	csr := pl.CSR
	dist := make([]int32, g.N)
	var d int32
	for s := 0; s < g.N; s++ {
		_, e := eccentricity(csr, g.N, int32(s), dist)
		if e > d {
			d = e
		}
	}
	return int(d)
}

// DiameterApprox lower-bounds the diameter with iterated double sweeps from
// every component, which is exact on trees and typically tight in practice.
func DiameterApprox(g *graph.Graph, sweeps int) int {
	return DiameterApproxOn(graph.NewPlan(g), sweeps)
}

// DiameterApproxOn is DiameterApprox against a prebuilt plan.
func DiameterApproxOn(pl *graph.Plan, sweeps int) int {
	g := pl.G
	if sweeps < 1 {
		sweeps = 2
	}
	csr := pl.CSR
	labels := baseline.BFSLabelsCSR(pl.CSR, g.N, nil)
	seen := map[int32]bool{}
	dist := make([]int32, g.N)
	var best int32
	for v := 0; v < g.N; v++ {
		l := labels[v]
		if seen[l] {
			continue
		}
		seen[l] = true
		cur := int32(v)
		for s := 0; s < sweeps; s++ {
			far, ecc := eccentricity(csr, g.N, cur, dist)
			if ecc > best {
				best = ecc
			}
			cur = far
		}
	}
	return int(best)
}
