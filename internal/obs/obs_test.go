package obs

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"
)

// TestNilRecorderSafe: the nil receiver is the "tracing off" state — every
// method must no-op (and the timestamp-returning ones must return values
// that are themselves safe to hand back).
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	since := r.Begin()
	r.End(PhaseSample, since)
	since = r.Lap(PhaseVote, since)
	r.AddPhase(PhaseSkip, time.Millisecond)
	r.Add(CtrCASAttempts, 7)
	r.Set(GaugeSkipEstPPM, PPM(0.5))
	r.Reset()
	if r.PhaseNanos(PhaseSample) != 0 || r.Count(CtrCASAttempts) != 0 || r.Gauge(GaugeSkipEstPPM) != 0 {
		t.Fatal("nil recorder must read as zero")
	}
	if since != 0 {
		t.Fatal("nil recorder timestamps must be zero")
	}
}

// TestRecorderNoAllocs pins the contract the solver stack depends on: a
// live Recorder's span and counter operations allocate nothing.
func TestRecorderNoAllocs(t *testing.T) {
	r := NewRecorder()
	if n := testing.AllocsPerRun(100, func() {
		since := r.Begin()
		since = r.Lap(PhaseSample, since)
		r.End(PhaseVote, since)
		r.Add(CtrCASAttempts, 3)
		r.Set(GaugeCoverPPM, 123)
	}); n != 0 {
		t.Fatalf("recorder ops allocated %.0f/run, want 0", n)
	}
}

func TestRecorderSpansAndReset(t *testing.T) {
	r := NewRecorder()
	since := r.Begin()
	time.Sleep(2 * time.Millisecond)
	since = r.Lap(PhaseSample, since)
	r.End(PhaseVote, since)
	if r.PhaseNanos(PhaseSample) < time.Millisecond {
		t.Errorf("sample span %v, want >= 1ms", r.PhaseNanos(PhaseSample))
	}
	if r.PhaseNanos(PhaseVote) < 0 {
		t.Errorf("vote span negative: %v", r.PhaseNanos(PhaseVote))
	}
	r.AddPhase(PhaseValidate, 5*time.Millisecond)
	if r.PhaseNanos(PhaseValidate) != 5*time.Millisecond {
		t.Errorf("AddPhase: got %v", r.PhaseNanos(PhaseValidate))
	}
	r.Add(CtrCASHooks, 4)
	r.Add(CtrCASHooks, 6)
	if r.Count(CtrCASHooks) != 10 {
		t.Errorf("counter: got %d, want 10", r.Count(CtrCASHooks))
	}
	r.Set(GaugeMajorityMode, 1)
	r.Reset()
	if r.PhaseNanos(PhaseSample) != 0 || r.Count(CtrCASHooks) != 0 || r.Gauge(GaugeMajorityMode) != 0 {
		t.Error("Reset must zero everything")
	}
}

func TestEnumNames(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() == "" || p.String() == "unknown" {
			t.Errorf("phase %d has no name", p)
		}
	}
	for c := Counter(0); c < NumCounters; c++ {
		if c.String() == "" || c.String() == "unknown" {
			t.Errorf("counter %d has no name", c)
		}
	}
	if Phase(250).String() != "unknown" || Counter(250).String() != "unknown" {
		t.Error("out-of-range enums must stringify as unknown")
	}
}

func TestPPMRoundTrip(t *testing.T) {
	for _, x := range []float64{0, 0.25, 0.5, 1} {
		if got := FromPPM(PPM(x)); got != x {
			t.Errorf("PPM round trip %g -> %g", x, got)
		}
	}
}

// TestHistogramBuckets: bucket i holds observations in (2^(i-1), 2^i]
// microseconds; the quantile bound walks the cumulative counts.
func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	h.Observe(500 * time.Nanosecond) // 0µs -> bucket 0
	h.Observe(1 * time.Microsecond)  // bucket 0 (le 1µs)
	h.Observe(2 * time.Microsecond)  // bucket 1 (le 2µs)
	h.Observe(3 * time.Microsecond)  // bucket 2 (le 4µs)
	h.Observe(1 * time.Millisecond)  // bucket 10 (le 1024µs)
	h.Observe(2 * time.Hour)         // beyond the last bound -> +Inf bucket
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	want := map[int]int64{0: 2, 1: 1, 2: 1, 10: 1, histBuckets: 1}
	for i := 0; i <= histBuckets; i++ {
		if got := h.bucket[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	// Cumulative counts: 2,3,4,...  p50 of 6 needs cum >= 3 -> bucket 1.
	if q := h.Quantile(0.5); q != 2*time.Microsecond {
		t.Errorf("p50 bound = %v, want 2µs", q)
	}
	if h.Quantile(1) < time.Hour {
		t.Error("p100 with an +Inf observation must saturate")
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}

// TestWritePrometheus checks the exposition shape end to end: HELP/TYPE
// headers, counter and gauge samples, cumulative histogram buckets with an
// +Inf terminator, and labeled collect lines.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("parcc_test_total", "a counter")
	c.Add(41)
	c.Inc()
	reg.GaugeFunc("parcc_test_ratio", "a gauge", func() float64 { return 0.75 })
	h := reg.Histogram("parcc_test_seconds", "a histogram")
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	reg.Collect("parcc_test_labeled", "labeled", "counter", func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s{graph=\"%s\"} 7\n", name, EscapeLabel(`g"1`))
	})
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP parcc_test_total a counter",
		"# TYPE parcc_test_total counter",
		"parcc_test_total 42",
		"# TYPE parcc_test_ratio gauge",
		"parcc_test_ratio 0.75",
		"# TYPE parcc_test_seconds histogram",
		`parcc_test_seconds_bucket{le="4e-06"} 2`,
		`parcc_test_seconds_bucket{le="+Inf"} 2`,
		"parcc_test_seconds_count 2",
		`parcc_test_labeled{graph="g\"1"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := EscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("EscapeLabel = %q", got)
	}
}
