package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is an ordered set of named metrics rendered in the Prometheus
// text exposition format (version 0.0.4).  Metric reads and writes are
// lock-free atomics; the registry lock only guards registration and the
// iteration order of a render, so scraping never contends with the
// serving hot paths that bump the metrics.
type Registry struct {
	mu    sync.Mutex
	items []item
}

type item struct {
	name, help, typ string
	render          func(w io.Writer, name string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (reg *Registry) add(name, help, typ string, render func(io.Writer, string)) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.items = append(reg.items, item{name: name, help: help, typ: typ, render: render})
}

// WritePrometheus renders every registered metric, in registration order.
func (reg *Registry) WritePrometheus(w io.Writer) {
	reg.mu.Lock()
	items := make([]item, len(reg.items))
	copy(items, reg.items)
	reg.mu.Unlock()
	for _, it := range items {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", it.name, it.help, it.name, it.typ)
		it.render(w, it.name)
	}
}

// CounterMetric is a monotonically increasing exported counter.
type CounterMetric struct{ v atomic.Int64 }

// Inc adds one.
func (c *CounterMetric) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0 for the exposition to stay monotone).
func (c *CounterMetric) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *CounterMetric) Value() int64 { return c.v.Load() }

// Counter registers and returns a counter.  Prometheus convention: name
// ends in _total.
func (reg *Registry) Counter(name, help string) *CounterMetric {
	c := &CounterMetric{}
	reg.add(name, help, "counter", func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s %d\n", name, c.Value())
	})
	return c
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the natural shape for derived values (ratios, uptimes, queue depths
// read from other state).
func (reg *Registry) GaugeFunc(name, help string, fn func() float64) {
	reg.add(name, help, "gauge", func(w io.Writer, name string) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(fn()))
	})
}

// Collect registers a callback that writes its own sample lines — the
// escape hatch for labeled per-entity series (per-shard counters) whose
// label sets change at runtime.  The callback must write lines of the
// form `name{label="value"} 123\n` using the metric name it is given.
func (reg *Registry) Collect(name, help, typ string, fn func(w io.Writer, name string)) {
	reg.add(name, help, typ, fn)
}

// histBuckets is the number of finite histogram buckets: upper bounds at
// 2^i microseconds for i in [0, histBuckets), i.e. 1µs up to ~33.5s,
// plus the implicit +Inf bucket.  Fixed power-of-two bounds make bucket
// selection one bit-length instruction and keep every histogram's layout
// identical across processes — deltas and merges need no bucket
// negotiation.
const histBuckets = 25

// Histogram is a latency histogram with fixed power-of-two buckets.
type Histogram struct {
	bucket [histBuckets + 1]atomic.Int64 // per-bucket (non-cumulative); last is +Inf
	sum    atomic.Int64                  // nanoseconds
	count  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := uint64(d.Microseconds())
	var idx int
	if us > 1 {
		idx = bits.Len64(us - 1) // us in (2^(i-1), 2^i] -> bucket i
	}
	if idx > histBuckets {
		idx = histBuckets
	}
	h.bucket[idx].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the accumulated observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) from the
// bucket counts: the upper bound of the first bucket at which the
// cumulative count reaches q of the total.  Zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i <= histBuckets; i++ {
		cum += h.bucket[i].Load()
		if cum >= target {
			if i == histBuckets {
				return time.Duration(math.MaxInt64) // +Inf bucket
			}
			return time.Duration(1<<i) * time.Microsecond
		}
	}
	return 0
}

// Histogram registers and returns a power-of-two-bucket histogram.
// Prometheus convention: the unit is seconds, so name should end in
// _seconds; bucket bounds are rendered as seconds.
func (reg *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	reg.add(name, help, "histogram", func(w io.Writer, name string) {
		var cum int64
		for i := 0; i < histBuckets; i++ {
			cum += h.bucket[i].Load()
			le := float64(int64(1)<<i) / 1e6 // 2^i µs in seconds
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(le), cum)
		}
		cum += h.bucket[histBuckets].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum().Seconds()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	})
	return h
}

// formatFloat renders a float the way Prometheus parsers expect: shortest
// round-trip representation, no exponent surprises for common values.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// EscapeLabel escapes a label value for the text exposition format
// (backslash, double-quote, newline).
func EscapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
