// Package obs is the observability layer of the solver stack: an
// allocation-free, atomic-counter Recorder that the solve paths thread
// through internal/solve.Ctx, and a small Prometheus-style metrics
// Registry the serving layer exports on /metrics.
//
// The Recorder's contract is built around two constraints of the hot
// paths it instruments:
//
//   - Nil-safety: every method is a no-op on a nil *Recorder, checked
//     first thing, so a solve path with tracing disabled pays exactly one
//     predictable (always-taken-the-same-way) branch per call site and no
//     allocation anywhere.  Callers never guard call sites themselves —
//     the nil receiver IS the "tracing off" state.
//   - Allocation freedom: phases, counters, and gauges are small fixed
//     enums indexing flat atomic arrays.  Begin/Lap/End pass int64
//     monotonic timestamps (nanoseconds since the package epoch, taken
//     from time.Since's monotonic reading), so recording a span is two
//     clock reads and one atomic add — no time.Time boxing, no maps, no
//     interface values.
//
// A Recorder is owned by one parcc.Solver and reset at the start of each
// traced operation (solve or incremental batch) under the session lock;
// the atomic operations make it additionally safe for the solve's worker
// goroutines to add counts concurrently mid-operation.
package obs

import (
	"sync/atomic"
	"time"
)

// Phase identifies one span of a solve or incremental operation.  The
// values are indices into the Recorder's flat timing array; String gives
// the stable external name used in traces and docs.
type Phase uint8

// Recorder phases.  The first group is the sampling fast path
// (sample → vote → skip), the second the FLS pipeline's stages, the third
// the incremental path, plus the shared bookkeeping spans.
const (
	// PhaseValidate is the edge-range validation sweep of Solve entry.
	PhaseValidate Phase = iota
	// PhasePlan is CSR plan lookup: cache validation, delta extension, or
	// a full rebuild.
	PhasePlan
	// PhaseSample is the neighbor-sampling rounds (par.SampleUnite).
	PhaseSample
	// PhaseVote is the majority vote plus the skip-ratio probe
	// (par.MajorityRoot / par.EstimateSkip).
	PhaseVote
	// PhaseSkip is the finish pass over the CSR (par.SkipUnite).
	PhaseSkip
	// PhaseCompress is forest flattening (par.Compress), wherever it runs.
	PhaseCompress
	// PhaseCount is component counting (root count or label dedup).
	PhaseCount
	// PhaseSolve is the whole kernel of an algorithm the tracer does not
	// decompose further (cas, union-find, bfs, ltz, sv, ...).
	PhaseSolve
	// PhaseReduce is FLS Stage 1 (REDUCE).
	PhaseReduce
	// PhasePresample is the H1/H2 pre-sampling pass.
	PhasePresample
	// PhaseInterweave is the INTERWEAVE phase loop (all phases pooled).
	PhaseInterweave
	// PhaseIncrease is the known-gap pipeline's Stage 2 (INCREASE).
	PhaseIncrease
	// PhaseSampleSolve is the known-gap pipeline's Stage 3 (SAMPLESOLVE).
	PhaseSampleSolve
	// PhaseFinish is the FLS flatten/backstop completion.
	PhaseFinish
	// PhaseUnite is the incremental insert path (par.UniteBatch).
	PhaseUnite
	// PhaseExtract is the deletion path's sweep + dirty-subgraph
	// extraction (filter, vertex gather, graph.InducedInto).
	PhaseExtract
	// PhaseScoped is the scoped re-solve of the dirty subgraph.
	PhaseScoped
	// PhaseSplice is splicing scoped labels back into the live forest.
	PhaseSplice
	// PhaseReplace is the deletion path's replacement-edge searches (all
	// of a batch's searches pooled, like the other stage loops).
	PhaseReplace

	// NumPhases bounds the enum; keep it last.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"validate", "plan", "sample", "vote", "skip", "compress", "count",
	"solve", "reduce", "presample", "interweave", "increase",
	"sample-solve", "finish", "unite", "extract", "scoped", "splice",
	"replace",
}

// String returns the phase's stable external name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Counter identifies one named monotonic counter.
type Counter uint8

// Recorder counters.
const (
	// CtrCASAttempts counts Unite calls issued by the kernels (an edge
	// that survived every skip test).
	CtrCASAttempts Counter = iota
	// CtrCASHooks counts Unite calls that actually merged two sets.
	CtrCASHooks
	// CtrFLSPhases counts INTERWEAVE phases executed.
	CtrFLSPhases
	// CtrLTZRounds counts EXPAND-MAXLINK rounds executed.
	CtrLTZRounds
	// CtrBatchEdges counts edges in the incremental batch applied.
	CtrBatchEdges
	// CtrDirtyComponents counts components a deletion batch dirtied.
	CtrDirtyComponents
	// CtrScopedVertices counts vertices of the re-solved dirty subgraph.
	CtrScopedVertices
	// CtrScopedEdges counts edges of the re-solved dirty subgraph.
	CtrScopedEdges
	// CtrFrontierRounds counts frontier-engine rounds executed (it is also
	// the write cursor of the per-round occupancy ring — see
	// RecordFrontierRound).
	CtrFrontierRounds
	// CtrFrontierInspected counts adjacency entries the frontier kernels
	// examined — the direct measure of work ∝ frontier size, against the
	// dense round structure's rounds × 2m.
	CtrFrontierInspected
	// CtrFrontierLowered counts successful label lowerings (CAS wins).
	CtrFrontierLowered
	// CtrFrontierSwitches counts dense↔sparse representation switches
	// between consecutive frontier rounds.
	CtrFrontierSwitches
	// CtrForestDeletes counts deleted spanning-forest edges (each ran a
	// replacement search unless its component was already dirty).
	CtrForestDeletes
	// CtrNonForestDeletes counts deleted non-forest edges and self-loops —
	// the O(1) deletions that by construction never touch the partition.
	CtrNonForestDeletes
	// CtrReplacements counts replacement searches that promoted a crossing
	// edge (the component stayed connected).
	CtrReplacements
	// CtrSplits counts deletions that truly split a component (the smaller
	// side was relabeled in place).
	CtrSplits
	// CtrReplaceScans counts adjacency entries the replacement searches
	// inspected — the smaller-side work measure, against the component
	// sizes a scoped re-solve would have paid.
	CtrReplaceScans
	// CtrBudgetFallbacks counts replacement searches that blew their scan
	// budget and handed the component to the scoped re-solve.
	CtrBudgetFallbacks

	// NumCounters bounds the enum; keep it last.
	NumCounters
)

var counterNames = [NumCounters]string{
	"cas_attempts", "cas_hooks", "fls_phases", "ltz_rounds",
	"batch_edges", "dirty_components", "scoped_vertices", "scoped_edges",
	"frontier_rounds", "frontier_inspected", "frontier_lowered",
	"frontier_switches", "forest_deletes", "non_forest_deletes",
	"replacements", "splits", "replace_scans", "budget_fallbacks",
}

// String returns the counter's stable external name.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// Gauge identifies one last-write-wins value.
type Gauge uint8

// Recorder gauges.  Ratios are stored in parts-per-million so the whole
// Recorder stays int64/atomic (Trace converts back to float64).
const (
	// GaugeSkipEstPPM is the probed skip-ratio estimate (ppm).
	GaugeSkipEstPPM Gauge = iota
	// GaugeCoverPPM is the sampled majority coverage (ppm).
	GaugeCoverPPM
	// GaugeMajorityMode is 1 when the skip pass ran in majority mode.
	GaugeMajorityMode

	// NumGauges bounds the enum; keep it last.
	NumGauges
)

// Recorder accumulates phase timings, counters, and gauges for one traced
// operation.  The zero value is ready; the nil value is "tracing off" —
// every method no-ops on a nil receiver (see the package comment for the
// contract).
type Recorder struct {
	phase [NumPhases]atomic.Int64 // accumulated nanoseconds
	count [NumCounters]atomic.Int64
	gauge [NumGauges]atomic.Int64
	// rounds holds the per-round frontier occupancy of the traced
	// operation (see RecordFrontierRound): a fixed array, like everything
	// else here, so recording stays allocation-free.
	rounds [MaxFrontierRounds]atomic.Int64
}

// MaxFrontierRounds bounds the per-round occupancy record.  Operations
// exceeding it keep counting rounds (CtrFrontierRounds is exact) but only
// the first MaxFrontierRounds occupancies are retained — high-diameter
// meshes settle in a handful of rounds, so the cap is generous.
const MaxFrontierRounds = 64

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// epoch anchors the monotonic clock; Begin/Lap/End exchange nanoseconds
// relative to it.  time.Since reads the monotonic clock, so spans are
// immune to wall-clock steps.
var epoch = time.Now()

// Begin returns a monotonic timestamp for a span start (0 on nil: the
// value is only ever handed back to Lap/End, which no-op then too).
func (r *Recorder) Begin() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(epoch))
}

// End accrues the span from `since` (a Begin/Lap result) to now onto ph.
func (r *Recorder) End(ph Phase, since int64) {
	if r == nil {
		return
	}
	r.phase[ph].Add(int64(time.Since(epoch)) - since)
}

// Lap is End followed by Begin in one clock read: it accrues the span
// since `since` onto ph and returns the new span start — the shape of
// back-to-back stage instrumentation.
func (r *Recorder) Lap(ph Phase, since int64) int64 {
	if r == nil {
		return 0
	}
	now := int64(time.Since(epoch))
	r.phase[ph].Add(now - since)
	return now
}

// AddPhase accrues an externally measured duration onto ph — for spans
// measured before the Recorder was reset (e.g. validation ahead of the
// session lock).
func (r *Recorder) AddPhase(ph Phase, d time.Duration) {
	if r == nil || d == 0 {
		return
	}
	r.phase[ph].Add(int64(d))
}

// PhaseNanos returns the time accrued on ph (0 on nil).
func (r *Recorder) PhaseNanos(ph Phase) time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.phase[ph].Load())
}

// Add accrues d onto counter c.
func (r *Recorder) Add(c Counter, d int64) {
	if r == nil || d == 0 {
		return
	}
	r.count[c].Add(d)
}

// Count returns counter c (0 on nil).
func (r *Recorder) Count(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.count[c].Load()
}

// Set stores v into gauge g (last write wins).
func (r *Recorder) Set(g Gauge, v int64) {
	if r == nil {
		return
	}
	r.gauge[g].Store(v)
}

// Gauge returns gauge g (0 on nil).
func (r *Recorder) Gauge(g Gauge) int64 {
	if r == nil {
		return 0
	}
	return r.gauge[g].Load()
}

// RecordFrontierRound appends one frontier round to the occupancy record:
// occ is the round's active-vertex count (≥ 1 — empty frontiers end the
// engine, they are not rounds), dense whether the round iterated the
// bitmap representation (false: the sparse compacted list).  The round
// index comes from CtrFrontierRounds, which this bumps; rounds past
// MaxFrontierRounds are counted but not retained.  The dense flag is
// packed into the sign so the slot stays one atomic int64.  Safe on nil.
func (r *Recorder) RecordFrontierRound(occ int64, dense bool) {
	if r == nil {
		return
	}
	i := r.count[CtrFrontierRounds].Add(1) - 1
	if i >= MaxFrontierRounds {
		return
	}
	if !dense {
		occ = -occ
	}
	r.rounds[i].Store(occ)
}

// FrontierRounds returns the number of retained occupancy entries
// (min(CtrFrontierRounds, MaxFrontierRounds); 0 on nil).
func (r *Recorder) FrontierRounds() int {
	if r == nil {
		return 0
	}
	n := r.count[CtrFrontierRounds].Load()
	if n > MaxFrontierRounds {
		n = MaxFrontierRounds
	}
	return int(n)
}

// FrontierRound returns the occupancy and representation of retained
// round i (callers bound i by FrontierRounds).
func (r *Recorder) FrontierRound(i int) (occ int64, dense bool) {
	v := r.rounds[i].Load()
	if v < 0 {
		return -v, false
	}
	return v, true
}

// Reset zeroes every phase, counter, gauge, and frontier round — called at
// the start of each traced operation.  Safe on nil.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.phase {
		r.phase[i].Store(0)
	}
	for i := range r.count {
		r.count[i].Store(0)
	}
	for i := range r.gauge {
		r.gauge[i].Store(0)
	}
	for i := range r.rounds {
		r.rounds[i].Store(0)
	}
}

// PPM converts a ratio in [0,1] to the parts-per-million integer the
// gauges store; FromPPM inverts it.
func PPM(x float64) int64 { return int64(x * 1e6) }

// FromPPM converts a parts-per-million gauge value back to a ratio.
func FromPPM(v int64) float64 { return float64(v) / 1e6 }
