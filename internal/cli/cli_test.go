package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parcc/internal/graph"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("expander:n=512,d=8,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	if s.Family != "expander" || s.Args["n"] != 512 || s.Args["d"] != 8 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{"", ":n=3", "path:n", "path:n=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

func TestParseSpecBareFamily(t *testing.T) {
	s, err := ParseSpec("cycle")
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1024 {
		t.Errorf("default n = %d", g.N)
	}
}

func TestBuildAllFamilies(t *testing.T) {
	for _, fam := range strings.Fields(Families()) {
		s, err := ParseSpec(fam + ":n=64")
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		g, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if g.N == 0 {
			t.Errorf("%s: empty graph", fam)
		}
	}
}

func TestBuildUnknownFamily(t *testing.T) {
	s := Spec{Family: "nope", Args: map[string]int{}}
	if _, err := s.Build(); err == nil {
		t.Error("unknown family should error")
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := graph.FromPairs(3, [][2]int{{0, 1}, {1, 2}})
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	h, err := LoadGraph(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 3 || h.M() != 2 {
		t.Fatal("loaded graph wrong")
	}
}

func TestLoadGraphSpecAndErrors(t *testing.T) {
	if _, err := LoadGraph("", ""); err == nil {
		t.Error("neither source should error")
	}
	if _, err := LoadGraph("x", "y"); err == nil {
		t.Error("both sources should error")
	}
	g, err := LoadGraph("", "path:n=5")
	if err != nil || g.N != 5 {
		t.Errorf("spec load failed: %v", err)
	}
	if _, err := LoadGraph("/nonexistent/file", ""); err == nil {
		t.Error("missing file should error")
	}
}
