// Package cli holds helpers shared by the command-line tools: the generator
// spec mini-language and graph loading.
//
// A generator spec is "family:key=val,key=val", e.g.
//
//	path:n=1000
//	expander:n=4096,d=8,seed=7
//	grid:r=64,c=64
//	cliques:k=32,s=16,bridges=4
//	appendixb:n=8192,t=4
package cli

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// Spec is a parsed generator specification.
type Spec struct {
	Family string
	Args   map[string]int
}

// ParseSpec parses "family:key=val,...".
func ParseSpec(s string) (Spec, error) {
	out := Spec{Args: map[string]int{}}
	fam, rest, _ := strings.Cut(s, ":")
	out.Family = strings.ToLower(strings.TrimSpace(fam))
	if out.Family == "" {
		return out, fmt.Errorf("empty generator family in %q", s)
	}
	if rest == "" {
		return out, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return out, fmt.Errorf("malformed argument %q (want key=val)", kv)
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return out, fmt.Errorf("argument %q: %v", kv, err)
		}
		out.Args[strings.ToLower(strings.TrimSpace(k))] = n
	}
	return out, nil
}

func (s Spec) get(key string, def int) int {
	if v, ok := s.Args[key]; ok {
		return v
	}
	return def
}

// Build instantiates the generator.
func (s Spec) Build() (*graph.Graph, error) {
	n := s.get("n", 1024)
	seed := uint64(s.get("seed", 1))
	switch s.Family {
	case "path":
		return gen.Path(n), nil
	case "cycle":
		return gen.Cycle(n), nil
	case "twocycles":
		return gen.TwoCycles(n), nil
	case "grid":
		return gen.Grid(s.get("r", 32), s.get("c", 32)), nil
	case "torus":
		return gen.Torus(s.get("r", 32), s.get("c", 32)), nil
	case "hypercube":
		return gen.Hypercube(s.get("d", 10)), nil
	case "complete":
		return gen.Complete(n), nil
	case "star":
		return gen.Star(n), nil
	case "tree":
		return gen.BinaryTree(n), nil
	case "expander", "regular":
		return gen.RandomRegular(n, s.get("d", 4), seed), nil
	case "gnm":
		return gen.GNM(n, s.get("m", 2*n), seed), nil
	case "cliques":
		return gen.RingOfCliques(s.get("k", 16), s.get("s", 16), s.get("bridges", 1), seed), nil
	case "lollipop":
		return gen.Lollipop(n, s.get("k", n/4)), nil
	case "barbell":
		return gen.Barbell(n, s.get("k", n/4)), nil
	case "appendixb":
		return gen.AppendixB(n, s.get("t", 4)), nil
	case "smallworld", "ws":
		return gen.WattsStrogatz(n, s.get("k", 4), float64(s.get("rewire", 10))/100, seed), nil
	case "ba", "prefattach":
		return gen.BarabasiAlbert(n, s.get("m", 3), seed), nil
	default:
		return nil, fmt.Errorf("unknown generator family %q (see package cli docs)", s.Family)
	}
}

// Families lists the spec families for usage messages.
func Families() string {
	return "path cycle twocycles grid torus hypercube complete star tree expander gnm cliques lollipop barbell appendixb smallworld ba"
}

// LoadGraph reads a graph from a file ("-" = stdin) or builds it from a
// generator spec; exactly one of file/spec must be non-empty.
func LoadGraph(file, spec string) (*graph.Graph, error) {
	switch {
	case file != "" && spec != "":
		return nil, fmt.Errorf("pass either -graph or -gen, not both")
	case file == "" && spec == "":
		return nil, fmt.Errorf("pass -graph FILE or -gen SPEC")
	case spec != "":
		s, err := ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		return s.Build()
	case file == "-":
		return graph.ReadEdgeList(os.Stdin)
	default:
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
}
