package stage3

import (
	"testing"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/pram"
)

func TestSampleSolveSmallInstanceExact(t *testing.T) {
	// |V| ≤ SmallN path: simplify + solve directly — always exact.
	g := gen.Union(gen.Cycle(10), gen.Path(7))
	truth := baseline.BFSLabels(g)
	m := pram.New(pram.Seed(1))
	f := labeled.New(g.N)
	V := make([]int32, g.N)
	m.Iota32(V)
	p := DefaultParams(g.N)
	p.SmallN = g.N + 1
	SampleSolve(m, f, V, g.Edges, p)
	if !graph.SamePartition(truth, f.Labels()) {
		t.Fatal("small-instance path must solve exactly")
	}
}

func TestSampleSolveDenseGraphSurvivesSampling(t *testing.T) {
	// With min degree ≫ 1/p the sampled subgraph stays connected w.h.p.
	// (Appendix C / Corollary C.3): a dense expander must come out whole.
	g := gen.RandomRegular(600, 32, 5)
	truth := baseline.BFSLabels(g)
	m := pram.New(pram.Seed(9))
	f := labeled.New(g.N)
	V := make([]int32, g.N)
	m.Iota32(V)
	p := DefaultParams(g.N)
	p.SmallN = 1 // force the sampling path
	p.SampleP64 = pram.P64(0.5)
	SampleSolve(m, f, V, g.Edges, p)
	if !graph.SamePartition(truth, f.Labels()) {
		t.Fatal("dense expander lost connectivity through sampling")
	}
}

func TestSampleSolveContractionSafety(t *testing.T) {
	// Even when sampling disconnects components (low degree), the forest
	// must never merge across true components.
	g := gen.Union(gen.Path(300), gen.Cycle(200))
	truth := baseline.BFSLabels(g)
	m := pram.New(pram.Seed(3))
	f := labeled.New(g.N)
	V := make([]int32, g.N)
	m.Iota32(V)
	p := DefaultParams(g.N)
	p.SmallN = 1
	p.SampleP64 = pram.P64(0.1)
	SampleSolve(m, f, V, g.Edges, p)
	if err := labeled.CheckSameComponent(f, truth); err != nil {
		t.Fatal(err)
	}
}

func TestSampleSolveReportsSampledCount(t *testing.T) {
	g := gen.Complete(100)
	m := pram.New(pram.Seed(7))
	f := labeled.New(g.N)
	V := make([]int32, g.N)
	m.Iota32(V)
	p := DefaultParams(g.N)
	p.SmallN = 1
	p.SampleP64 = pram.P64(0.25)
	got := SampleSolve(m, f, V, g.Edges, p)
	frac := float64(got) / float64(g.M())
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("sampled fraction %.3f, want ≈0.25", frac)
	}
}

func TestSampleSolveFlattensOriginalTrees(t *testing.T) {
	// Step 4's triple jump must leave trees of height ≤ 1 when entering
	// with height ≤ 3 (the Stage-2 postcondition).
	n := 10
	f := labeled.New(n)
	f.P[1] = 0
	f.P[2] = 1
	f.P[3] = 2 // height 3 chain
	m := pram.New()
	p := DefaultParams(n)
	p.SmallN = n + 1
	SampleSolve(m, f, []int32{0}, nil, p)
	if h := f.MaxHeight(); h > 1 {
		t.Fatalf("height %d after final jump", h)
	}
}

func TestSmallCut(t *testing.T) {
	if smallCut(10) < 8 {
		t.Error("small cut floor")
	}
	if smallCut(1<<60) <= smallCut(1<<10) {
		t.Error("small cut should grow with n (beyond the floor)")
	}
}

func TestDefaultParamsSeedStable(t *testing.T) {
	a := DefaultParams(1000)
	b := DefaultParams(1000)
	if a.SampleP64 != b.SampleP64 || a.Seed != b.Seed {
		t.Error("params must be deterministic")
	}
}
