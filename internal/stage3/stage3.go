// Package stage3 implements §6 of the paper: connectivity on the sampled
// graph.  After Stage 2 every vertex of the current graph has degree ≥ b;
// SAMPLESOLVE down-samples the edges (all of them, loops included — §5.3)
// and runs the Theorem-2 algorithm on the sampled subgraph, which by the
// matrix-concentration bound of Appendix C stays connected component-wise
// and has diameter poly(log n) when λ ≥ b^{-0.1}.
package stage3

import (
	"parcc/internal/graph"
	"parcc/internal/labeled"
	"parcc/internal/ltz"
	"parcc/internal/pram"
	"parcc/internal/prim"
	"parcc/internal/solve"
)

// Params configures SAMPLESOLVE.
type Params struct {
	// SampleP64 is the edge sampling probability (paper: 1/log n in §3,
	// 1/(log n)^7 in §6–7).
	SampleP64 uint64
	// SmallN is the |V| ≤ n^0.1 cutoff below which the graph is simplified
	// and solved directly (§6 Step 1).
	SmallN int
	// LTZ configures the Theorem-2 calls.
	LTZ ltz.Params
	// Seed drives the sampling.
	Seed uint64
}

// DefaultParams returns the practical profile.
func DefaultParams(n int) Params {
	lg := float64(prim.Log2Ceil(n + 2))
	if lg < 2 {
		lg = 2
	}
	return Params{
		SampleP64: pram.P64(1 / lg),
		SmallN:    smallCut(n),
		LTZ:       ltz.DefaultParams(n),
		Seed:      0x5a3b1e,
	}
}

func smallCut(n int) int {
	// n^0.1, cheaply: 2^(log2(n)/10), at least 8.
	c := 1 << (prim.Log2Ceil(n+1) / 10)
	if c < 8 {
		c = 8
	}
	return c
}

// SampleSolve runs SAMPLESOLVE(G) (§6) on the current graph (V: its
// vertices; E: its edges, loops included), updating the shared forest, and
// finishes with the Step-4 triple pointer jump so that all original-graph
// trees become flat.  Returns the number of sampled edges (for the work
// accounting experiments).
func SampleSolve(m *pram.Machine, f *labeled.Forest, V []int32, E []graph.Edge, p Params) int {
	return SampleSolveOn(solve.New(m), f, V, E, p)
}

// SampleSolveOn is SampleSolve on a solve context.
func SampleSolveOn(cx *solve.Ctx, f *labeled.Forest, V []int32, E []graph.Edge, p Params) int {
	m := cx.M
	sampled := 0
	if len(V) <= p.SmallN {
		// Step 1: tiny instance — simplify exactly and solve directly.
		simple := dedup(m, E)
		if len(simple) > 0 {
			ltz.SolveOnCtx(cx, f, V, simple, p.LTZ)
		}
		sampled = len(simple)
	} else {
		// Step 2: sample each edge w.p. 1/(log n)^c.
		G2 := cx.GrabEdgesCap(16)
		m.Contract(1, int64(len(E)), func() {
			for i, e := range E {
				if pram.SplitMix64(p.Seed^uint64(i)*0x9e3779b97f4a7c15) < p.SampleP64 {
					G2 = append(G2, e)
				}
			}
		})
		sampled = len(G2)
		// Step 3: Theorem 2 on the sampled subgraph.
		if len(G2) > 0 {
			ltz.SolveOnCtx(cx, f, V, G2, p.LTZ)
		}
		cx.ReleaseEdges(G2)
	}
	// Step 4: v.p = v.p.p.p for every original vertex.
	pp := f.P
	m.For(f.Len(), func(v int) {
		a := pram.Load32(pp, v)
		b := pram.Load32(pp, int(a))
		pram.Store32(pp, v, pram.Load32(pp, int(b)))
	})
	return sampled
}

func dedup(m *pram.Machine, E []graph.Edge) []graph.Edge {
	keys := make([]int64, len(E))
	for i, e := range E {
		keys[i] = prim.PackEdge(e.U, e.V)
	}
	keys = prim.DedupPairs(m, keys, true)
	out := make([]graph.Edge, len(keys))
	for i, k := range keys {
		u, v := prim.UnpackEdge(k)
		out[i] = graph.Edge{U: u, V: v}
	}
	return out
}
