// Package check is a runtime invariant harness: it re-states the paper's
// structural lemmas as executable predicates over (forest, edge set,
// ground-truth labels) triples and runs instrumented stage pipelines that
// assert them at every boundary.  Tests use it to catch violations at the
// step where they occur instead of at the final partition comparison.
//
// Covered invariants:
//
//   - Safety (implicit throughout): every parent stays inside its
//     ground-truth component, and the forest is acyclic;
//   - Lemma 4.5: an original root is a root or a child of a root after
//     MATCHING (height growth bound);
//   - Lemma 4.9/4.21: after EXTRACT/REDUCE, trees are flat and both ends
//     of every surviving edge are roots;
//   - Lemma 5.22: INCREASE preserves flatness and edges-on-roots;
//   - Lemma 6.1 (direction): contraction never decreases the number of
//     ground-truth components represented among roots;
//   - Completeness at fixpoint: if no non-loop edges remain anywhere, the
//     forest's partition equals the ground truth.
package check

import (
	"fmt"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/labeled"
)

// State bundles what the predicates need.
type State struct {
	Truth  []int32 // ground-truth labels (BFS)
	Forest *labeled.Forest
}

// New builds a checker state for graph g and forest f.
func New(g *graph.Graph, f *labeled.Forest) *State {
	return &State{Truth: baseline.BFSLabels(g), Forest: f}
}

// Safety checks contraction safety and acyclicity (must hold at every
// moment of every stage).
func (s *State) Safety() error {
	if err := s.Forest.CheckAcyclic(); err != nil {
		return fmt.Errorf("acyclicity: %w", err)
	}
	if err := labeled.CheckSameComponent(s.Forest, s.Truth); err != nil {
		return fmt.Errorf("contraction safety: %w", err)
	}
	return nil
}

// FlatAndOnRoots checks the Lemma 4.9/4.21/5.22 postcondition for a stage
// boundary: trees flat (height ≤ maxHeight), all edges on roots.
func (s *State) FlatAndOnRoots(E []graph.Edge, maxHeight int) error {
	if h := s.Forest.MaxHeight(); h > maxHeight {
		return fmt.Errorf("tree height %d > %d", h, maxHeight)
	}
	if err := labeled.CheckEdgesOnRoots(s.Forest, E); err != nil {
		return err
	}
	return nil
}

// EdgesIntraComponent checks every edge of E joins vertices of one
// ground-truth component (densify-added edges must satisfy this).
func (s *State) EdgesIntraComponent(E []graph.Edge) error {
	for i, e := range E {
		if s.Truth[e.U] != s.Truth[e.V] {
			return fmt.Errorf("edge %d=(%d,%d) crosses components", i, e.U, e.V)
		}
	}
	return nil
}

// RootsPerComponent returns, for each ground-truth component label, the
// number of distinct forest-roots its vertices currently map to.  A value
// of 1 for every component means the computation is finished.
func (s *State) RootsPerComponent() map[int32]int {
	labels := s.Forest.Labels()
	distinct := map[int32]map[int32]struct{}{}
	for v, comp := range s.Truth {
		set, ok := distinct[comp]
		if !ok {
			set = map[int32]struct{}{}
			distinct[comp] = set
		}
		set[labels[v]] = struct{}{}
	}
	out := make(map[int32]int, len(distinct))
	for comp, set := range distinct {
		out[comp] = len(set)
	}
	return out
}

// Monotone compares two RootsPerComponent snapshots and errors if any
// component's root count increased — contraction progress must be
// monotone across stage boundaries (revert points excepted, which callers
// handle by re-snapshotting).
func Monotone(before, after map[int32]int) error {
	for comp, a := range after {
		if b, ok := before[comp]; ok && a > b {
			return fmt.Errorf("component %d went from %d roots to %d", comp, b, a)
		}
	}
	return nil
}

// Finished checks the completeness condition: the forest partition equals
// the ground truth.
func (s *State) Finished() error {
	if !graph.SamePartition(s.Truth, s.Forest.Labels()) {
		return fmt.Errorf("forest partition differs from ground truth")
	}
	return nil
}
