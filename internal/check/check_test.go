package check

import (
	"testing"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/ltz"
	"parcc/internal/pram"
	"parcc/internal/stage1"
	"parcc/internal/stage2"
)

func TestSafetyDetectsCrossComponentParent(t *testing.T) {
	g := gen.Union(gen.Path(3), gen.Path(3))
	f := labeled.New(g.N)
	s := New(g, f)
	if err := s.Safety(); err != nil {
		t.Fatalf("fresh forest: %v", err)
	}
	f.P[0] = 4 // crosses components
	if s.Safety() == nil {
		t.Fatal("cross-component parent not detected")
	}
}

func TestSafetyDetectsCycle(t *testing.T) {
	g := gen.Path(4)
	f := labeled.New(g.N)
	f.P[1] = 2
	f.P[2] = 1
	if New(g, f).Safety() == nil {
		t.Fatal("cycle not detected")
	}
}

func TestFlatAndOnRoots(t *testing.T) {
	g := gen.Path(5)
	f := labeled.New(g.N)
	f.P[1] = 0
	f.P[2] = 1
	s := New(g, f)
	if s.FlatAndOnRoots(nil, 1) == nil {
		t.Fatal("height 2 not detected")
	}
	if err := s.FlatAndOnRoots(nil, 2); err != nil {
		t.Fatal(err)
	}
	if s.FlatAndOnRoots([]graph.Edge{{U: 2, V: 4}}, 2) == nil {
		t.Fatal("non-root edge end not detected")
	}
}

func TestRootsPerComponentAndMonotone(t *testing.T) {
	g := gen.Union(gen.Path(4), gen.Path(2))
	f := labeled.New(g.N)
	s := New(g, f)
	before := s.RootsPerComponent()
	if before[0] != 4 || before[4] != 2 {
		t.Fatalf("fresh counts: %v", before)
	}
	f.P[1] = 0
	f.P[2] = 0
	after := s.RootsPerComponent()
	if after[0] != 2 {
		t.Fatalf("after contraction: %v", after)
	}
	if err := Monotone(before, after); err != nil {
		t.Fatal(err)
	}
	if Monotone(after, before) == nil {
		t.Fatal("increase not detected")
	}
}

func TestFinished(t *testing.T) {
	g := gen.Path(3)
	f := labeled.New(g.N)
	s := New(g, f)
	if s.Finished() == nil {
		t.Fatal("unfinished forest declared finished")
	}
	f.P[1] = 0
	f.P[2] = 0
	if err := s.Finished(); err != nil {
		t.Fatal(err)
	}
}

// TestInstrumentedPipeline runs Stage 1 → Stage 2 → LTZ with invariants
// asserted at every boundary — the harness's raison d'être.
func TestInstrumentedPipeline(t *testing.T) {
	g := gen.Union(gen.RandomRegular(600, 4, 3), gen.Cycle(150), gen.GNM(300, 420, 5))
	m := pram.New(pram.Seed(7))
	f := labeled.New(g.N)
	s := New(g, f)

	// Stage 1.
	r := stage1.NewRunner(m, f, stage1.DefaultParams(g.N))
	red := r.Reduce(g)
	if err := s.Safety(); err != nil {
		t.Fatalf("after REDUCE: %v", err)
	}
	if err := s.FlatAndOnRoots(red.Edges, 1); err != nil {
		t.Fatalf("after REDUCE (Lemma 4.21): %v", err)
	}
	before := s.RootsPerComponent()

	// Stage 2.
	E := append([]graph.Edge(nil), red.Edges...)
	eclose := stage2.Increase(m, f, red.Roots, E, stage2.DefaultParams(g.N, 8))
	if err := s.Safety(); err != nil {
		t.Fatalf("after INCREASE: %v", err)
	}
	if err := s.EdgesIntraComponent(eclose); err != nil {
		t.Fatalf("close edges: %v", err)
	}
	after := s.RootsPerComponent()
	if err := Monotone(before, after); err != nil {
		t.Fatalf("INCREASE regressed contraction: %v", err)
	}

	// Finish with Theorem 2 on the remaining edges, then flatten.
	E = labeled.Alter(m, f, E)
	if len(E) > 0 {
		V := make([]int32, 0, len(E)*2)
		seen := map[int32]bool{}
		for _, e := range E {
			if !seen[e.U] {
				seen[e.U] = true
				V = append(V, e.U)
			}
			if !seen[e.V] {
				seen[e.V] = true
				V = append(V, e.V)
			}
		}
		ltz.SolveOn(m, f, V, E, ltz.DefaultParams(g.N))
	}
	labeled.FlattenAll(m, f)
	if err := s.Safety(); err != nil {
		t.Fatalf("after finish: %v", err)
	}
	if err := s.Finished(); err != nil {
		t.Fatalf("pipeline incomplete: %v", err)
	}
}

// TestInstrumentedMatchingRounds asserts the height discipline of REDUCE
// Step 5 ("MATCHING(E′); for each v ∈ V: v.p = v.p.p; ALTER(E′)"): each
// MATCHING call grows heights by at most one level (Lemma 4.5 applies to
// the roots; vertices contracted in earlier rounds ride along one level
// deeper), and the interleaved global shortcut keeps the forest within
// height 2 at every boundary.
func TestInstrumentedMatchingRounds(t *testing.T) {
	g := gen.GNM(500, 800, 21)
	m := pram.New(pram.Seed(3))
	f := labeled.New(g.N)
	s := New(g, f)
	r := stage1.NewRunner(m, f, stage1.DefaultParams(g.N))
	E := append([]graph.Edge(nil), g.Edges...)
	prevH := 0
	for round := 0; round < 8; round++ {
		r.Matching(E)
		if err := s.Safety(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if h := f.MaxHeight(); h > prevH+1 {
			t.Fatalf("round %d: height jumped %d -> %d (> +1 per MATCHING)", round, prevH, h)
		}
		labeled.ShortcutAll(m, f)
		E = labeled.Alter(m, f, E)
		if h := f.MaxHeight(); h > 2 {
			t.Fatalf("round %d: height %d after shortcut", round, h)
		}
		prevH = f.MaxHeight()
	}
}
