package liutarjan

import (
	"testing"
	"testing/quick"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/pram"
)

func battery() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":    graph.New(0),
		"isolated": graph.New(13),
		"path":     gen.Path(200),
		"cycle":    gen.Cycle(128),
		"grid":     gen.Grid(9, 11),
		"expander": gen.RandomRegular(128, 4, 5),
		"gnm":      gen.GNM(150, 260, 7),
		"loops":    graph.FromPairs(4, [][2]int{{0, 0}, {1, 2}, {2, 2}}),
		"parallel": graph.FromPairs(3, [][2]int{{0, 1}, {0, 1}, {1, 2}}),
		"union":    gen.Union(gen.Path(30), gen.Star(20), graph.New(4)),
	}
}

func TestAllVariantsMatchBFS(t *testing.T) {
	for _, cfg := range Variants() {
		cfg := cfg
		t.Run(Name(cfg), func(t *testing.T) {
			for name, g := range battery() {
				m := pram.New(pram.Seed(3))
				got := Labels(m, g, cfg)
				if !graph.SamePartition(baseline.BFSLabels(g), got) {
					t.Errorf("%s: wrong partition", name)
				}
			}
		})
	}
}

func TestVariantsSequentialOrders(t *testing.T) {
	g := gen.Union(gen.Cycle(60), gen.Grid(7, 8))
	for _, cfg := range Variants() {
		for _, ord := range []pram.Order{pram.Forward, pram.Reverse, pram.Shuffled} {
			m := pram.New(pram.Sequential(), pram.WriteOrder(ord), pram.Seed(5))
			got := Labels(m, g, cfg)
			if !graph.SamePartition(baseline.BFSLabels(g), got) {
				t.Errorf("%s/%v: wrong partition", Name(cfg), ord)
			}
		}
	}
}

func TestRoundsPolylog(t *testing.T) {
	// Each variant should finish a 4096-path well within the O(log² n)
	// safety budget.
	g := gen.Path(4096)
	for _, cfg := range Variants() {
		m := pram.New(pram.Seed(7))
		_, rounds := Solve(m, g, cfg)
		if rounds >= 8*12*12+64 {
			t.Errorf("%s: hit the round cap (%d)", Name(cfg), rounds)
		}
		if rounds < 2 {
			t.Errorf("%s: suspiciously few rounds (%d)", Name(cfg), rounds)
		}
	}
}

func TestForestInvariants(t *testing.T) {
	g := gen.GNM(300, 450, 9)
	truth := baseline.BFSLabels(g)
	for _, cfg := range Variants() {
		m := pram.New(pram.Seed(11))
		f, _ := Solve(m, g, cfg)
		if err := f.CheckAcyclic(); err != nil {
			t.Fatalf("%s: %v", Name(cfg), err)
		}
		if h := f.MaxHeight(); h > 1 {
			t.Errorf("%s: final height %d", Name(cfg), h)
		}
		for v, l := range f.Labels() {
			if truth[v] != truth[l] {
				t.Fatalf("%s: label crosses components", Name(cfg))
			}
		}
	}
}

func TestQuickRandomGraphs(t *testing.T) {
	cfg := Config{Connect: ParentConnect, Alter: true}
	f := func(seed uint64) bool {
		g := gen.GNM(64, 90, seed)
		m := pram.New(pram.Seed(seed))
		return graph.SamePartition(baseline.BFSLabels(g), Labels(m, g, cfg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestVariantStrings(t *testing.T) {
	if ParentConnect.String() != "parent-connect" ||
		ExtremeConnect.String() != "extreme-connect" ||
		RootConnect.String() != "root-connect" {
		t.Error("variant names wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant should format")
	}
	if Name(Config{Connect: RootConnect, Alter: true}) != "root-connect+alter" {
		t.Error("Name format wrong")
	}
}

func TestMaxRoundsCap(t *testing.T) {
	// With MaxRounds=1 the algorithm must stop early but never corrupt the
	// forest (partial progress is a valid contraction).
	g := gen.Path(500)
	truth := baseline.BFSLabels(g)
	m := pram.New(pram.Seed(1))
	f, rounds := Solve(m, g, Config{Connect: ParentConnect, MaxRounds: 1})
	if rounds != 1 {
		t.Fatalf("rounds = %d", rounds)
	}
	for v, l := range f.Labels() {
		if truth[v] != truth[l] {
			t.Fatal("partial run crossed components")
		}
	}
}
