// Package liutarjan implements the Liu–Tarjan family of simple concurrent
// connected-components algorithms [LT19, LT22] — the framework the paper's
// SHORTCUT and ALTER primitives come from (§5.2.1 cites it directly) and
// the conceptual ancestor of [LTZ20].
//
// An algorithm in the framework is a round that composes primitive steps on
// the parent forest and edge set:
//
//   - connect steps direct edges at parents and hook the larger root onto
//     the smaller: parent-connect (hook p(u) of an edge end), extreme-
//     connect (hook using the minimum parent over each vertex's incident
//     edges), or root-connect (hook only when the end's parent is a root);
//   - shortcut: p(v) ← p(p(v));
//   - alter: replace each edge (u,v) by (p(u), p(v)).
//
// Rounds repeat until no parent changes and every edge is a loop.  All
// variants run in O(log² n) CRCW time with O(m) work per round; their
// simplicity (each round is a constant number of full passes) is the
// baseline the sophisticated Stage-1/2 machinery is measured against.
package liutarjan

import (
	"fmt"

	"parcc/internal/graph"
	"parcc/internal/labeled"
	"parcc/internal/pram"
	"parcc/internal/solve"
)

// Variant names a connect rule.
type Variant int

// Connect rules.
const (
	// ParentConnect hooks via each edge independently ("P" in [LT19]).
	ParentConnect Variant = iota
	// ExtremeConnect aggregates the minimum candidate parent per vertex
	// before hooking ("E").
	ExtremeConnect
	// RootConnect hooks only roots ("R").
	RootConnect
)

func (v Variant) String() string {
	switch v {
	case ParentConnect:
		return "parent-connect"
	case ExtremeConnect:
		return "extreme-connect"
	case RootConnect:
		return "root-connect"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config selects a framework algorithm.
type Config struct {
	Connect Variant
	// Alter replaces edge endpoints by parents each round (the "A"
	// suffix); without it edges are re-read through the parent array.
	Alter bool
	// MaxRounds is a safety bound (0: 8·log²n + 64).
	MaxRounds int
}

// Solve runs the selected variant to fixpoint and returns the forest and
// the number of rounds used.
func Solve(m *pram.Machine, g *graph.Graph, cfg Config) (*labeled.Forest, int) {
	return SolveCtx(solve.New(m), g, cfg)
}

// SolveCtx is Solve on a solve context: the forest and working arrays come
// from the arena (the caller frees the forest after extracting labels).
func SolveCtx(cx *solve.Ctx, g *graph.Graph, cfg Config) (*labeled.Forest, int) {
	m := cx.M
	n := g.N
	f := labeled.NewOn(cx.A, n)
	p := f.P
	E := cx.CopyEdges(g.Edges)

	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		l := 1
		for 1<<l < n+2 {
			l++
		}
		maxRounds = 8*l*l + 64
	}

	old := cx.Grab32(n)
	cand := cx.Grab64(n) // extreme-connect aggregation
	changed := []int32{1}
	rounds := 0
	for changed[0] != 0 && rounds < maxRounds {
		rounds++
		changed[0] = 0
		// Snapshot: connect steps read the pre-round state.
		m.For(n, func(v int) { old[v] = pram.Load32(p, v) })

		switch cfg.Connect {
		case ParentConnect:
			m.For(len(E), func(i int) {
				e := E[i]
				connect(p, old, e.U, e.V, changed)
				connect(p, old, e.V, e.U, changed)
			})
		case RootConnect:
			m.For(len(E), func(i int) {
				e := E[i]
				if old[old[e.U]] == old[e.U] {
					connect(p, old, e.U, e.V, changed)
				}
				if old[old[e.V]] == old[e.V] {
					connect(p, old, e.V, e.U, changed)
				}
			})
		case ExtremeConnect:
			m.For(n, func(v int) { cand[v] = int64(old[v]) })
			m.For(len(E), func(i int) {
				e := E[i]
				pram.Min64(cand, int(old[e.U]), int64(old[e.V]))
				pram.Min64(cand, int(old[e.V]), int64(old[e.U]))
			})
			m.For(n, func(v int) {
				c := int32(cand[v])
				if c < old[v] && old[v] == int32(v) { // v is a root label target
					pram.Store32(p, v, c)
					pram.SetFlag(changed, 0)
				}
			})
		}

		// Shortcut (synchronous two-pass).
		tmp := old // reuse as gather buffer
		m.For(n, func(v int) {
			pv := pram.Load32(p, v)
			gp := pram.Load32(p, int(pv))
			if gp != pv {
				pram.SetFlag(changed, 0)
			}
			tmp[v] = gp
		})
		m.For(n, func(v int) { pram.Store32(p, v, tmp[v]) })

		if cfg.Alter {
			E = labeled.Alter(m, f, E)
			if len(E) == 0 && changed[0] == 0 {
				break
			}
		}
	}
	labeled.FlattenAll(m, f)
	cx.Release32(old)
	cx.Release64(cand)
	cx.ReleaseEdges(E)
	return f, rounds
}

// connect hooks the parent of u onto the parent of v when that lowers it,
// reading the pre-round snapshot and writing the live array (minimum
// resolution keeps the forest acyclic under any write interleaving).
func connect(p, old []int32, u, v int32, changed []int32) {
	pu, pv := old[u], old[v]
	if pv < pu {
		// Hook monotonically: only ever lower a parent pointer.
		for {
			cur := pram.Load32(p, int(pu))
			if pv >= cur {
				return
			}
			if casInt32(p, int(pu), cur, pv) {
				pram.SetFlag(changed, 0)
				return
			}
		}
	}
}

// casInt32 is a compare-and-swap on a plain int32 slice cell.
func casInt32(a []int32, i int, oldv, newv int32) bool {
	return pram.CAS32(a, i, oldv, newv)
}

// Labels is a convenience wrapper returning component labels directly.  On
// the concurrent backend the final label extraction runs as pointer jumping
// on the runtime (uncharged either way).
func Labels(m *pram.Machine, g *graph.Graph, cfg Config) []int32 {
	return LabelsInto(solve.New(m), g, cfg, nil)
}

// LabelsInto is Labels on a solve context, writing into dst when it has
// the capacity.
func LabelsInto(cx *solve.Ctx, g *graph.Graph, cfg Config, dst []int32) []int32 {
	f, _ := SolveCtx(cx, g, cfg)
	out := labeled.LabelsOnInto(cx.M.Exec(), f, dst)
	f.Free()
	return out
}

// Variants enumerates the six canonical framework members for benchmarks.
func Variants() []Config {
	return []Config{
		{Connect: ParentConnect, Alter: false},
		{Connect: ParentConnect, Alter: true},
		{Connect: ExtremeConnect, Alter: false},
		{Connect: ExtremeConnect, Alter: true},
		{Connect: RootConnect, Alter: false},
		{Connect: RootConnect, Alter: true},
	}
}

// Name renders a config like "parent-connect+alter".
func Name(cfg Config) string {
	s := cfg.Connect.String()
	if cfg.Alter {
		s += "+alter"
	}
	return s
}
