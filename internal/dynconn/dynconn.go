// Package dynconn is the spanning-forest dynamic connectivity layer of
// the live incremental session: it grows the static forest representation
// of internal/graph.Certificate into a mutable, session-owned structure
// that lets deletions avoid the scoped re-solve in the common case.
//
// The session maintains, per component, a spanning forest over the live
// multiset: every edge is flagged forest (it united two components when
// it arrived) or non-forest (it closed a cycle).  Deleting a non-forest
// edge cannot change the partition — O(1), no graph traversal at all.
// Deleting a forest edge runs a replacement-edge search
// (par.ReplacementSearch): a smaller-side BFS over the broken tree's two
// halves that either promotes a crossing non-forest edge into the forest
// (partition unchanged) or proves the split and relabels the smaller
// side.  Only when the search's scan budget blows does the session fall
// back to the legacy scoped re-solve, after which RebuildRegion restores
// the forest flags of the re-solved region.
//
// The structure is exactly a certificate kept incrementally: acyclic,
// spanning each component, forest edges ⊆ live edges — Check asserts all
// three, and the randomized session tests run it after every batch.
package dynconn

import (
	"fmt"

	"parcc/internal/graph"
	"parcc/internal/par"
)

// BudgetFloor is the minimum adjacency-scan budget of a replacement
// search, below the m/4 proportional term.  A variable so tests can force
// the budget-blow fallback on small graphs.
var BudgetFloor int64 = 1024

// Tracker owns the session's forest state: the DynForest edge store over
// the live graph and a reusable per-batch mark buffer.  Orchestrator-owned
// (the Solver's session lock), like everything it wraps.
type Tracker struct {
	DF    *graph.DynForest
	marks []bool
}

// New returns an empty Tracker; call BuildScratch (or Marks + Init) to
// bind it to a graph.
func New() *Tracker { return &Tracker{} }

// Marks returns the tracker's mark buffer resized to n — the target of a
// par.UniteBatchMark whose outcome Init or the insert path consumes.
func (t *Tracker) Marks(n int) []bool {
	if cap(t.marks) < n {
		t.marks = make([]bool, n)
	}
	t.marks = t.marks[:n]
	return t.marks
}

// Init indexes g and installs the current mark buffer as the forest flags
// (marks[i] applies to edge position i — the attach paths fill it with a
// UniteBatchMark pass over g.Edges).
func (t *Tracker) Init(g *graph.Graph) {
	t.DF = graph.NewDynForest(g)
	t.DF.SetForestAll(t.marks)
}

// BuildScratch derives the forest flags with the tracker's own union-find
// pass over scratch (len ≥ g.N, contents ignored) and indexes g — the
// attach path for branches whose labeling ran a kernel that does not
// report per-edge merge outcomes (the sampling and frontier fast paths).
func (t *Tracker) BuildScratch(e par.Exec, g *graph.Graph, scratch []int32) {
	p := scratch[:g.N]
	e.Run(g.N, func(v int) { p[v] = int32(v) })
	par.UniteBatchMark(e, p, g.Edges, t.Marks(g.M()))
	t.Init(g)
}

// DeleteKind classifies one deletion's handling.
type DeleteKind uint8

const (
	// DeleteNonForest: the removed occurrence was a non-forest edge (or a
	// self-loop) — the partition is untouched, O(1).
	DeleteNonForest DeleteKind = iota
	// DeleteReplaced: a forest edge fell but a replacement crossing edge
	// was promoted — the partition is untouched.
	DeleteReplaced
	// DeleteSplit: the component truly split; the smaller side was
	// relabeled to Result.NewRoot in place.
	DeleteSplit
	// DeleteBudget: the replacement search blew its budget; the caller
	// must mark the component dirty and fall back to the scoped re-solve.
	DeleteBudget
	// DeleteDirty: the edge lived in a component already marked dirty this
	// batch — only the occurrence was removed (its forest state is pending
	// the region rebuild, so no search is sound there).
	DeleteDirty
)

// DeleteResult reports one Delete.
type DeleteResult struct {
	Kind    DeleteKind
	Root    int32 // the edge's component root before the delete
	NewRoot int32 // new root of the relabeled side (DeleteSplit)
	Moved   int   // vertices relabeled (DeleteSplit)
	Scanned int64 // replacement-search adjacency entries inspected
}

// Delete removes one occurrence of ed (either orientation; the caller has
// validated existence) and repairs the forest.  p must be flat for the
// affected component; fa/fb are the session's empty frontier pair (left
// empty).  dirty reports whether a component root is already awaiting the
// scoped fallback — deletes there skip all forest reasoning.
func (t *Tracker) Delete(p []int32, ed graph.Edge, fa, fb *par.Frontier, dirty func(root int32) bool) DeleteResult {
	return t.DeleteCollect(p, ed, fa, fb, dirty, nil)
}

// DeleteCollect is Delete additionally collecting the relabeled side's
// membership on a DeleteSplit: when moved is non-nil, the vertices that
// took Result.NewRoot are appended to *moved (reset first) — the feed of
// the copy-on-write snapshot mirror's member lists.  Untouched on every
// other outcome.
func (t *Tracker) DeleteCollect(p []int32, ed graph.Edge, fa, fb *par.Frontier, dirty func(root int32) bool, moved *[]int32) DeleteResult {
	df := t.DF
	h := df.PickRemovable(ed.CanonKey())
	u, v := df.U(h), df.V(h)
	wasForest := df.IsForest(h)
	df.Remove(h)
	res := DeleteResult{Root: p[u]}
	if u == v || !wasForest {
		res.Kind = DeleteNonForest
		return res
	}
	if dirty(res.Root) {
		res.Kind = DeleteDirty
		return res
	}
	sr := par.ReplacementSearchCollect(df, p, u, v, fa, fb, t.Budget(), moved)
	res.Scanned = sr.Scanned
	switch sr.Outcome {
	case par.ReplaceFound:
		df.SetForest(sr.Handle, true)
		res.Kind = DeleteReplaced
	case par.ReplaceSplit:
		res.Kind = DeleteSplit
		res.NewRoot = sr.NewRoot
		res.Moved = sr.Moved
	default:
		res.Kind = DeleteBudget
	}
	return res
}

// Budget is the replacement search's adjacency-scan allowance: a quarter
// of the live edge count, floored by BudgetFloor.  Proportional so a
// search never costs more than the O(m) order of the fallback it guards.
func (t *Tracker) Budget() int64 {
	b := int64(t.DF.M()) / 4
	if b < BudgetFloor {
		b = BudgetFloor
	}
	return b
}

// RebuildRegion recomputes the forest flags of a re-solved region after a
// scoped fallback: verts are the region's vertices, vmap the compact map
// used for the induced solve (vmap[v] = compact id + 1, 0 outside), and
// uf a scratch array of len ≥ len(verts).  A sequential union-find pass
// over the region's edges re-derives the flags — every edge incident to a
// region vertex has both endpoints in the region (dirty components are
// closed under adjacency), and iterating side-0 handles only visits each
// exactly once.  O(region vertices + region edges · α).
func (t *Tracker) RebuildRegion(verts, vmap, uf []int32) {
	df := t.DF
	for i := range verts {
		uf[i] = int32(i)
	}
	for _, gv := range verts {
		for h := df.First(gv); h >= 0; h = df.NextIncident(gv, h) {
			if df.U(h) != gv {
				continue // side-1 visit; counted from the u endpoint
			}
			cu, cv := vmap[df.U(h)]-1, vmap[df.V(h)]-1
			df.SetForest(h, cu != cv && seqUnite(uf, cu, cv))
		}
	}
}

// Check asserts the maintained forest is a valid spanning forest of the
// live graph whose partition is labels: forest edges are loop-free and
// acyclic, and the partition they induce equals labels exactly — together
// with forest ⊆ live (structural: flags live on handles) this is the
// certificate invariant.  Test-only; O(n + m·α).
func (t *Tracker) Check(g *graph.Graph, labels []int32) error {
	df := t.DF
	if df.M() != len(g.Edges) {
		return fmt.Errorf("dynconn: store tracks %d edges, graph holds %d", df.M(), len(g.Edges))
	}
	uf := make([]int32, g.N)
	for i := range uf {
		uf[i] = int32(i)
	}
	for i, ed := range g.Edges {
		h := df.HandleAt(i)
		if df.U(h) != ed.U || df.V(h) != ed.V {
			return fmt.Errorf("dynconn: handle %d holds {%d,%d}, position %d holds {%d,%d}",
				h, df.U(h), df.V(h), i, ed.U, ed.V)
		}
		if !df.IsForest(h) {
			continue
		}
		if ed.U == ed.V {
			return fmt.Errorf("dynconn: self-loop {%d,%d} flagged as forest edge", ed.U, ed.V)
		}
		if !seqUnite(uf, ed.U, ed.V) {
			return fmt.Errorf("dynconn: forest edge {%d,%d} closes a cycle", ed.U, ed.V)
		}
	}
	forestLabels := make([]int32, g.N)
	for v := range forestLabels {
		forestLabels[v] = seqFind(uf, int32(v))
	}
	if !graph.SamePartition(forestLabels, labels) {
		return fmt.Errorf("dynconn: forest partition disagrees with live labels (forest under- or over-spans)")
	}
	return nil
}

// seqFind / seqUnite are the sequential union-find helpers of the rebuild
// and checker paths (path halving; union by minimum is unnecessary here).
func seqFind(p []int32, v int32) int32 {
	for p[v] != v {
		p[v] = p[p[v]]
		v = p[v]
	}
	return v
}

func seqUnite(p []int32, a, b int32) bool {
	ra, rb := seqFind(p, a), seqFind(p, b)
	if ra == rb {
		return false
	}
	if ra < rb {
		p[rb] = ra
	} else {
		p[ra] = rb
	}
	return true
}
