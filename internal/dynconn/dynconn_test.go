package dynconn

import (
	"testing"

	"parcc/internal/graph"
	"parcc/internal/par"
)

// seqExec is the minimal Exec for tests: run the body sequentially.
type seqExec struct{}

func (seqExec) Run(n int, body func(int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}

func (seqExec) Procs() int { return 1 }

// buildTracker attaches a tracker to g with a flat parent array, the way
// the session's attach path does.
func buildTracker(t *testing.T, g *graph.Graph) (*Tracker, []int32) {
	t.Helper()
	tr := New()
	scratch := make([]int32, g.N)
	tr.BuildScratch(seqExec{}, g, scratch)
	par.Compress(seqExec{}, scratch)
	if err := tr.Check(g, scratch); err != nil {
		t.Fatalf("fresh tracker fails its own invariant: %v", err)
	}
	return tr, scratch
}

func TestTrackerDeleteKinds(t *testing.T) {
	// Triangle {0,1,2} plus pendant 3 on a bridge and a self-loop at 0:
	// one triangle edge is non-forest, the bridge is forest with no
	// replacement, the loop is free.
	g := graph.FromPairs(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {0, 0}})
	tr, p := buildTracker(t, g)
	fa, fb := par.NewFrontier(nil, g.N), par.NewFrontier(nil, g.N)
	clean := func(int32) bool { return false }

	// The self-loop: always non-forest.
	if dr := tr.Delete(p, graph.Edge{U: 0, V: 0}, fa, fb, clean); dr.Kind != DeleteNonForest {
		t.Fatalf("self-loop delete kind = %v, want DeleteNonForest", dr.Kind)
	}
	// Some triangle edge is the cycle-closer; deleting each triangle edge
	// in turn yields one non-forest delete and then replacements/splits
	// consistent with the oracle partition.  Delete {0,1}: either it was
	// non-forest (free) or the other two triangle edges reconnect it.
	if dr := tr.Delete(p, graph.Edge{U: 0, V: 1}, fa, fb, clean); dr.Kind != DeleteNonForest && dr.Kind != DeleteReplaced {
		t.Fatalf("triangle delete kind = %v, want non-forest or replaced", dr.Kind)
	}
	if err := tr.Check(g, p); err != nil {
		t.Fatalf("after triangle delete: %v", err)
	}
	// The bridge: a true split moving exactly the pendant.
	dr := tr.Delete(p, graph.Edge{U: 2, V: 3}, fa, fb, clean)
	if dr.Kind != DeleteSplit || dr.Moved != 1 {
		t.Fatalf("bridge delete = kind %v moved %d, want split moving 1", dr.Kind, dr.Moved)
	}
	if p[3] == p[0] {
		t.Fatal("split did not relabel the pendant side")
	}
	if err := tr.Check(g, p); err != nil {
		t.Fatalf("after split: %v", err)
	}

	// Dirty short-circuit: with the component reported dirty, a forest
	// delete must not search or mutate labels.
	g2 := graph.FromPairs(2, [][2]int{{0, 1}})
	tr2, p2 := buildTracker(t, g2)
	dr = tr2.Delete(p2, graph.Edge{U: 0, V: 1}, fa, fb, func(int32) bool { return true })
	if dr.Kind != DeleteDirty || dr.Scanned != 0 {
		t.Fatalf("dirty delete = kind %v scanned %d, want DeleteDirty with no scan", dr.Kind, dr.Scanned)
	}
	if p2[0] != p2[1] {
		t.Fatal("dirty delete must leave labels to the scoped fallback")
	}
}

func TestTrackerBudgetAndRebuildRegion(t *testing.T) {
	defer func(old int64) { BudgetFloor = old }(BudgetFloor)
	BudgetFloor = 1 // cycle budget m/4 = 16: the far cut below needs ~100 scans

	// Cycle of 64: the sequential build makes the closing edge {63,0} the
	// one non-forest edge, so cutting {32,33} cannot find it in budget.
	n := 64
	pairs := make([][2]int, n)
	for i := 0; i < n; i++ {
		pairs[i] = [2]int{i, (i + 1) % n}
	}
	g := graph.FromPairs(n, pairs)
	tr, p := buildTracker(t, g)
	fa, fb := par.NewFrontier(nil, g.N), par.NewFrontier(nil, g.N)
	dr := tr.Delete(p, graph.Edge{U: 32, V: 33}, fa, fb, func(int32) bool { return false })
	if dr.Kind != DeleteBudget {
		t.Fatalf("far cut kind = %v, want DeleteBudget (budget %d)", dr.Kind, tr.Budget())
	}

	// The session's fallback: re-solve the region (trivially: it is still
	// one component via {63,0}) and rebuild the flags.  Emulate it with
	// the whole vertex set as the region, all in one sub-component.
	verts := make([]int32, n)
	vmap := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
		vmap[i] = int32(i) + 1
	}
	uf := make([]int32, n)
	tr.RebuildRegion(verts, vmap, uf)
	for i := range p {
		p[i] = 0 // the scoped labels: still one component
	}
	if err := tr.Check(g, p); err != nil {
		t.Fatalf("rebuilt region fails the invariant: %v", err)
	}
}

func TestTrackerInsertPath(t *testing.T) {
	// AddEdges shape: unite-with-marks, then Insert each edge with its
	// outcome.  A duplicate and a loop must come out non-forest.
	g := graph.FromPairs(3, [][2]int{{0, 1}})
	tr, p := buildTracker(t, g)
	batch := []graph.Edge{{U: 1, V: 2}, {U: 1, V: 2}, {U: 2, V: 2}}
	marks := tr.Marks(len(batch))
	if merges := par.UniteBatchMark(seqExec{}, p, batch, marks); merges != 1 {
		t.Fatalf("merges = %d, want 1", merges)
	}
	for i, ed := range batch {
		tr.DF.Insert(ed, marks[i])
	}
	par.Compress(seqExec{}, p)
	if err := tr.Check(g, p); err != nil {
		t.Fatalf("after insert batch: %v", err)
	}
	if !marks[0] || marks[1] || marks[2] {
		t.Fatalf("marks = %v, want [true false false]", marks)
	}
}
