// Package prim provides the classical PRAM building blocks the paper relies
// on, each with the (time, work) contract of its citation charged on the
// simulator:
//
//   - approximate compaction [Goo91], Definition 4.1 / Lemma 4.2:
//     O(log* n) time, O(n) work;
//   - padded sort [HR92], Lemma 7.9: O(log log m) time, O(m) work;
//   - PRAM perfect hashing [GMV91] used for removing parallel edges and
//     loops: O(log* n) time, O(m) work;
//   - prefix sums and binary-tree occupancy counting.
//
// The implementations are functionally exact (our compaction is one-to-one
// into ≤ 2k cells, the sort is a real sort, the dedup is a real dedup); the
// published contracts are charged through Machine.Contract so measured time
// and work match what the paper charges.
package prim

import (
	"sort"

	"parcc/internal/par"
	"parcc/internal/pram"
)

// LogStar returns the iterated logarithm of n (number of times log2 must be
// applied before the value drops to at most 1).
func LogStar(n int) int64 {
	s := int64(0)
	for n > 1 {
		n = bits(n)
		s++
	}
	return s
}

func bits(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// Log2Ceil returns ceil(log2(n)) for n >= 1.
func Log2Ceil(n int) int64 {
	if n <= 1 {
		return 0
	}
	b := int64(0)
	v := 1
	for v < n {
		v <<= 1
		b++
	}
	return b
}

// LogLog returns max(1, ceil(log2(log2(n)))), the ubiquitous round count.
func LogLog(n int) int64 {
	l := Log2Ceil(n)
	if l <= 1 {
		return 1
	}
	ll := Log2Ceil(int(l))
	if ll < 1 {
		ll = 1
	}
	return ll
}

// LogLogLog returns max(1, ceil(log2 log2 log2 n)).
func LogLogLog(n int) int64 {
	ll := LogLog(n)
	lll := Log2Ceil(int(ll))
	if lll < 1 {
		lll = 1
	}
	return lll
}

// PrefixSum computes the exclusive prefix sum of a and the total.  Charged as
// a work-efficient parallel scan: O(log n) time, O(n) work.
func PrefixSum(m *pram.Machine, a []int32) (out []int32, total int64) {
	n := len(a)
	out = make([]int32, n)
	m.Contract(Log2Ceil(n)+1, int64(n), func() {
		var s int64
		for i := 0; i < n; i++ {
			out[i] = int32(s)
			s += int64(a[i])
		}
		total = s
	})
	return out, total
}

// CompactIndices returns the indices i in [0,n) for which keep(i) is true,
// in increasing order.  It fulfils the approximate-compaction contract of
// Lemma 4.2 (in fact exactly: the k distinguished items land one-to-one in a
// length-k array): charged O(log* n) time and O(n) work.
func CompactIndices(m *pram.Machine, n int, keep func(i int) bool) []int32 {
	var out []int32
	m.Contract(LogStar(n)+1, int64(n), func() {
		out = compactSeq(m, n, keep)
	})
	return out
}

func compactSeq(m *pram.Machine, n int, keep func(i int) bool) []int32 {
	if e := m.Exec(); e != nil {
		// Concurrent backend: chunked two-pass compaction on the pooled
		// runtime (deterministic output, identical to the sequential scan).
		return par.CompactIndices(e, n, keep)
	}
	w := m.WorkersHint()
	if w <= 1 || n < 1<<14 {
		out := make([]int32, 0, 16)
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	// Chunked two-pass compaction for wall-clock parallelism (uncharged;
	// the contract above already charged the paper cost).
	parts := make([][]int32, w)
	chunk := (n + w - 1) / w
	done := make(chan int, w)
	for p := 0; p < w; p++ {
		go func(p int) {
			lo, hi := p*chunk, (p+1)*chunk
			if hi > n {
				hi = n
			}
			var loc []int32
			for i := lo; i < hi; i++ {
				if keep(i) {
					loc = append(loc, int32(i))
				}
			}
			parts[p] = loc
			done <- p
		}(p)
	}
	for p := 0; p < w; p++ {
		<-done
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int32, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// CountOccupied counts the nonzero entries of table using the binary-tree
// technique of Lemma 5.1: O(log s) time, O(s) work for a size-s table.
func CountOccupied(m *pram.Machine, table []int32) int {
	var c int
	m.Contract(Log2Ceil(len(table))+1, int64(len(table)), func() {
		for _, v := range table {
			if v != 0 {
				c++
			}
		}
	})
	return c
}

// Hash is a seeded universal-style hash into [0, size).
type Hash struct {
	seed uint64
	size uint64
}

// NewHash returns a hash function onto [0,size).
func NewHash(seed uint64, size int) Hash {
	if size < 1 {
		size = 1
	}
	return Hash{seed: seed, size: uint64(size)}
}

// Apply hashes x into [0,size).
func (h Hash) Apply(x int32) int {
	return int(pram.SplitMix64(h.seed^uint64(uint32(x))) % h.size)
}

// Apply2 hashes an ordered pair into [0,size).
func (h Hash) Apply2(x, y int32) int {
	v := uint64(uint32(x))<<32 | uint64(uint32(y))
	return int(pram.SplitMix64(h.seed^v) % h.size)
}

// SortInt64 sorts keys ascending.  Charged with the padded-sort contract of
// Lemma 7.9: O(log log n) time, O(n) work.
func SortInt64(m *pram.Machine, keys []int64) {
	m.Contract(LogLog(len(keys))+1, int64(len(keys)), func() {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	})
}

// DedupPairs removes duplicate (u,v) pairs (and, when dropLoops is set, pairs
// with u == v) from packed edge keys, returning the distinct keys.  Charged
// with the PRAM perfect-hashing contract of [GMV91]: O(log* n) time, O(n)
// work.
func DedupPairs(m *pram.Machine, keys []int64, dropLoops bool) []int64 {
	var out []int64
	m.Contract(LogStar(len(keys))+1, int64(len(keys)), func() {
		seen := make(map[int64]struct{}, len(keys))
		out = keys[:0]
		for _, k := range keys {
			if dropLoops {
				if int32(k>>32) == int32(k) {
					continue
				}
			}
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, k)
		}
	})
	return out
}

// PackEdge packs an undirected edge into a canonical 64-bit key with the
// smaller endpoint in the high word.
func PackEdge(u, v int32) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(uint32(v))
}

// UnpackEdge inverts PackEdge.
func UnpackEdge(k int64) (u, v int32) {
	return int32(k >> 32), int32(uint32(k))
}
