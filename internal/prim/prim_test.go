package prim

import (
	"testing"
	"testing/quick"

	"parcc/internal/pram"
)

func TestLogStar(t *testing.T) {
	cases := map[int]int64{0: 0, 1: 0, 2: 1, 4: 2, 16: 3, 65536: 4}
	for n, want := range cases {
		if got := LogStar(n); got != want {
			t.Errorf("LogStar(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int64{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLogLogFamilies(t *testing.T) {
	if LogLog(2) < 1 || LogLogLog(2) < 1 {
		t.Error("iterated logs must be at least 1")
	}
	if LogLog(1<<16) != 4 {
		t.Errorf("LogLog(2^16) = %d, want 4", LogLog(1<<16))
	}
	if LogLog(1<<20) > LogLog(1<<40) {
		t.Error("LogLog must be monotone")
	}
}

func TestPrefixSum(t *testing.T) {
	m := pram.New()
	in := []int32{3, 1, 4, 1, 5}
	out, total := PrefixSum(m, in)
	want := []int32{0, 3, 4, 8, 9}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	if total != 14 {
		t.Errorf("total = %d, want 14", total)
	}
}

func TestPrefixSumEmpty(t *testing.T) {
	m := pram.New()
	out, total := PrefixSum(m, nil)
	if len(out) != 0 || total != 0 {
		t.Error("empty prefix sum should be empty")
	}
}

func TestCompactIndices(t *testing.T) {
	m := pram.New()
	got := CompactIndices(m, 10, func(i int) bool { return i%3 == 0 })
	want := []int32{0, 3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCompactIndicesLargeParallel(t *testing.T) {
	m := pram.New(pram.Workers(4))
	n := 1 << 15
	got := CompactIndices(m, n, func(i int) bool { return i%7 == 0 })
	if len(got) != (n+6)/7 {
		t.Fatalf("kept %d, want %d", len(got), (n+6)/7)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("compacted indices must be strictly increasing")
		}
	}
}

func TestCompactChargesContract(t *testing.T) {
	m := pram.New()
	CompactIndices(m, 1000, func(int) bool { return true })
	if m.Work() != 1000 {
		t.Errorf("work = %d, want 1000 (the contract)", m.Work())
	}
	if m.Steps() != LogStar(1000)+1 {
		t.Errorf("steps = %d, want %d", m.Steps(), LogStar(1000)+1)
	}
}

func TestCountOccupied(t *testing.T) {
	m := pram.New()
	if got := CountOccupied(m, []int32{0, 1, 0, 2, 0}); got != 2 {
		t.Errorf("CountOccupied = %d, want 2", got)
	}
}

func TestHashInRange(t *testing.T) {
	f := func(seed uint64, x int32) bool {
		h := NewHash(seed, 97)
		v := h.Apply(x)
		return v >= 0 && v < 97
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDeterministic(t *testing.T) {
	h1 := NewHash(5, 64)
	h2 := NewHash(5, 64)
	for x := int32(0); x < 100; x++ {
		if h1.Apply(x) != h2.Apply(x) {
			t.Fatal("hash not deterministic")
		}
	}
}

func TestHashZeroSize(t *testing.T) {
	h := NewHash(1, 0)
	if h.Apply(5) != 0 {
		t.Error("size-0 hash should clamp to size 1")
	}
}

func TestHash2(t *testing.T) {
	h := NewHash(9, 128)
	a := h.Apply2(1, 2)
	b := h.Apply2(2, 1)
	if a < 0 || a >= 128 || b < 0 || b >= 128 {
		t.Error("Apply2 out of range")
	}
	if h.Apply2(1, 2) != a {
		t.Error("Apply2 not deterministic")
	}
}

func TestSortInt64(t *testing.T) {
	m := pram.New()
	keys := []int64{5, -1, 3, 3, 0}
	SortInt64(m, keys)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("not sorted: %v", keys)
		}
	}
}

func TestDedupPairs(t *testing.T) {
	m := pram.New()
	keys := []int64{
		PackEdge(1, 2), PackEdge(2, 1), PackEdge(3, 3), PackEdge(4, 5), PackEdge(1, 2),
	}
	out := DedupPairs(m, keys, true)
	if len(out) != 2 {
		t.Fatalf("dedup kept %d keys, want 2 (loop dropped, duplicates merged)", len(out))
	}
}

func TestDedupPairsKeepLoops(t *testing.T) {
	m := pram.New()
	keys := []int64{PackEdge(3, 3), PackEdge(3, 3)}
	out := DedupPairs(m, keys, false)
	if len(out) != 1 {
		t.Fatalf("dedup kept %d, want 1 loop", len(out))
	}
}

func TestPackUnpackEdge(t *testing.T) {
	f := func(u, v int32) bool {
		if u < 0 {
			u = -u
		}
		if v < 0 {
			v = -v
		}
		a, b := UnpackEdge(PackEdge(u, v))
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		return a == lo && b == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackEdgeCanonical(t *testing.T) {
	if PackEdge(7, 3) != PackEdge(3, 7) {
		t.Error("PackEdge must canonicalize orientation")
	}
}
