package stage1

import (
	"testing"

	"parcc/internal/graph"
	"parcc/internal/labeled"
	"parcc/internal/pram"
)

// Golden tests: tiny instances where MATCHING's step-by-step effect can be
// traced by hand under the deterministic sequential machine (Forward write
// order: the last writer in index order wins; coin flips are fixed by the
// seed).  These pin the pseudocode semantics rather than just the outcome.

func seqRunner(n int, seed uint64) (*pram.Machine, *labeled.Forest, *Runner) {
	m := pram.New(pram.Sequential(), pram.WriteOrder(pram.Forward), pram.Seed(seed))
	f := labeled.New(n)
	p := DefaultParams(n)
	p.Seed = seed
	return m, f, NewRunner(m, f, p)
}

func TestGoldenSingleEdge(t *testing.T) {
	// One edge (0,1): oriented 1→0 (large to small).  Vertex 1 keeps its
	// outgoing arc; no singletons; no multi-in; the arc survives Step 7
	// with probability 1/2 — if it survives, Step 8 contracts 0 under 1
	// (head v=0 adopts tail u=1): p[0] = 1.  Either way the forest stays
	// within the component and height ≤ 1.
	contracted := 0
	for seed := uint64(1); seed <= 16; seed++ {
		_, f, r := seqRunner(2, seed)
		r.Matching([]graph.Edge{{U: 0, V: 1}})
		if f.P[1] != 1 {
			t.Fatalf("seed %d: tail must stay a root, p=%v", seed, f.P)
		}
		if f.P[0] == 1 {
			contracted++
		} else if f.P[0] != 0 {
			t.Fatalf("seed %d: unexpected parent %d", seed, f.P[0])
		}
	}
	if contracted == 0 || contracted == 16 {
		t.Errorf("Step 7 coin should both keep and kill across 16 seeds (contracted=%d)", contracted)
	}
}

func TestGoldenLoopsAndNonRootsIgnored(t *testing.T) {
	// Step 1 drops loops and edges with non-root ends: nothing changes.
	_, f, r := seqRunner(4, 5)
	f.P[2] = 3 // 2 is a non-root
	before := append([]int32(nil), f.P...)
	upd := r.Matching([]graph.Edge{{U: 1, V: 1}, {U: 2, V: 0}})
	if len(upd) != 0 {
		t.Fatalf("nothing should update, got %v", upd)
	}
	for v := range before {
		if f.P[v] != before[v] {
			t.Fatalf("forest changed: %v -> %v", before, f.P)
		}
	}
}

func TestGoldenStarStep6(t *testing.T) {
	// Star into vertex 0: arcs 1→0, 2→0, 3→0.  Vertex 0 has >1 incoming
	// arcs, so Step 6 adopts all tails: p[1]=p[2]=p[3]=0, regardless of
	// the coin seed (Step 6 precedes the Step-7 coins).
	for seed := uint64(1); seed <= 8; seed++ {
		_, f, r := seqRunner(4, seed)
		upd := r.Matching([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
		for v := 1; v <= 3; v++ {
			if f.P[v] != 0 {
				t.Fatalf("seed %d: p[%d] = %d, want 0 (Step 6)", seed, v, f.P[v])
			}
		}
		if len(upd) != 3 {
			t.Fatalf("seed %d: expected 3 recorded updates, got %v", seed, upd)
		}
	}
}

func TestGoldenSingletonStep4(t *testing.T) {
	// Arcs from {1,2} both point at 0 after orientation... to craft a
	// Step-4 singleton we need a vertex whose only arcs lose the Step-3
	// competition: vertex 2 with arcs 2→0 and 2→1 keeps exactly one
	// outgoing arc.  The vertex at the losing arc's head is unaffected (it
	// still has its own arcs), so instead craft: arcs 1→0 and 2→1 where
	// 2→1 is 2's only arc and 1's outgoing-arc competition plays no role.
	// Build edges (0,1) and (1,2): orientation gives 1→0, 2→1.  Both tails
	// keep their single outgoing arcs; no singleton arises.  Now add a
	// second arc from 2: (2,0) → 2→0.  Vertex 2 keeps one of {2→1, 2→0}
	// (forward order: the later write wins Step 3's competition).
	// Whichever head loses its incoming arc keeps its own outgoing arc, so
	// still no singleton: singletons need a vertex with ONLY incoming
	// pre-Step-3 arcs, all of whose tails kept other arcs.  Vertex 0 in
	// edges (1,0),(2,0),(2,1): arcs 1→0, 2→0, 2→1.  If 2 keeps 2→1, then 0
	// retains arc 1→0 — not a singleton.  Make 1's arc leave 0: impossible
	// (1>0 orients to 0).  So craft with 4 vertices: edges (3,1),(3,2):
	// arcs 3→1, 3→2; vertex 3 keeps one, say 3→2 (forward order); vertex 1
	// had an arc before Step 3 and none after → singleton; Step 4 sets
	// p[1] = 3 (the tail of its pre-Step-3 incoming arc).
	_, f, r := seqRunner(4, 3)
	r.Matching([]graph.Edge{{U: 3, V: 1}, {U: 3, V: 2}})
	if f.P[1] != 3 && f.P[2] != 3 {
		t.Fatalf("one of the heads must have adopted 3 (Step 4 or later), p=%v", f.P)
	}
	if f.P[3] != 3 {
		// 3 may itself contract via Step 8 on its kept arc; then its kept
		// head became its parent — also legal.  But it must stay in the
		// component.
		if f.P[3] != 1 && f.P[3] != 2 {
			t.Fatalf("p[3] = %d escaped the component", f.P[3])
		}
	}
	if err := f.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	if h := f.MaxHeight(); h > 1 {
		t.Fatalf("height %d", h)
	}
}

func TestGoldenTriangleAllSeeds(t *testing.T) {
	// On a triangle, every seed and write order must leave at most one
	// root with edges and a flat forest within the component.
	for _, ord := range []pram.Order{pram.Forward, pram.Reverse, pram.Shuffled} {
		for seed := uint64(1); seed <= 8; seed++ {
			m := pram.New(pram.Sequential(), pram.WriteOrder(ord), pram.Seed(seed))
			f := labeled.New(3)
			p := DefaultParams(3)
			p.Seed = seed
			r := NewRunner(m, f, p)
			E := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}
			// The per-round progress guarantee (Lemma 4.4) is
			// probabilistic and aimed at large root counts; on a
			// 3-vertex instance individual rounds can stall on the
			// Step-7 coins, so allow a generous fixed budget.
			for i := 0; i < 12 && len(E) > 0; i++ {
				r.Matching(E)
				E = labeled.Alter(m, f, E)
			}
			if len(E) != 0 {
				t.Fatalf("%v/seed %d: triangle not contracted after 12 rounds", ord, seed)
			}
			if err := f.CheckAcyclic(); err != nil {
				t.Fatalf("%v/seed %d: %v", ord, seed, err)
			}
		}
	}
}

func TestGoldenUpdatedNeverContainsRoots(t *testing.T) {
	// The update log must list only vertices that ended the call as
	// non-roots pointing inside their component.
	g := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 1, V: 2}}
	for seed := uint64(1); seed <= 12; seed++ {
		_, f, r := seqRunner(4, seed)
		upd := r.Matching(g)
		for _, v := range upd {
			if f.P[v] == v {
				t.Fatalf("seed %d: recorded vertex %d is a root", seed, v)
			}
		}
	}
}
