// Package stage1 implements §4 of the paper: contracting the graph to
// n/poly(log n) vertices in O(log log n) time and linear work.
//
//   - MATCHING(E): the constant-shrink algorithm (§4.1, Lemma 4.3/4.4) —
//     finds a large matching among roots and contracts it, reducing the
//     number of roots by a constant factor w.h.p. in O(1) time;
//   - FILTER(E,k): k rounds of MATCHING + ALTER + random edge deletion,
//     followed by the reverse-order pointer unwinding (§4.2);
//   - EXTRACT(E,k): the log log n-shrink algorithm (§4.2);
//   - REDUCE(V,E,k): the poly(log n)-shrink algorithm (§4.3).
//
// MATCHING is O(1) time and O(|E|) work per call.  To honor the work bound,
// the per-vertex scratch cells it needs are stamped (a value is valid only
// if its stamp matches the current call), so no O(n) clearing ever happens;
// this mirrors the paper's per-edge processors writing into indexed cells.
// Every parent update is recorded per round so the unwinding steps of
// FILTER and EXTRACT execute exactly as written ("if a vertex v updated
// v.p in round j then v.p = v.p.p").
package stage1

import (
	"parcc/internal/graph"
	"parcc/internal/labeled"
	"parcc/internal/pram"
	"parcc/internal/prim"
	"parcc/internal/solve"
)

// Params carries the Stage-1 round counts and probabilities.  Paper values
// in comments; DefaultParams returns the practical profile.
type Params struct {
	// DeleteP64 is the per-round FILTER edge deletion probability
	// (paper: 10^-4; Step 1 of FILTER).
	DeleteP64 uint64
	// FilterK is k in FILTER(E,k) inside EXTRACT
	// (paper: Θ(log log log n)).
	FilterK int
	// ExtractK is k in EXTRACT(E,k) (paper: 1000·log log log n).
	ExtractK int
	// ReduceK is k in REDUCE(V,E,k) (paper: 10^6·log log n).
	ReduceK int
	// Seed drives MATCHING's coin flips and FILTER's deletions.
	Seed uint64
}

// DefaultParams returns practical Stage-1 parameters for an n-vertex graph:
// the paper's Θ(·) round counts with constant 1 instead of 10^6.
func DefaultParams(n int) Params {
	return Params{
		DeleteP64: pram.P64(1e-4),
		FilterK:   int(prim.LogLogLog(n + 4)),
		ExtractK:  int(prim.LogLogLog(n + 4)),
		ReduceK:   int(prim.LogLog(n + 4)),
		Seed:      0x5eed57a6e1,
	}
}

// Runner executes Stage-1 subroutines against a shared machine and forest.
type Runner struct {
	M   *pram.Machine
	F   *labeled.Forest
	Prm Params

	cx    *solve.Ctx
	stamp int64
	calls int64
	// stamped per-vertex scratch; valid only when the stored stamp matches.
	out, hadArc, hasArc, cand, in, multiIn, deleted, slot, marked []int64
}

// NewRunner allocates scratch for the forest's vertex count.
func NewRunner(m *pram.Machine, f *labeled.Forest, prm Params) *Runner {
	return NewRunnerOn(solve.New(m), f, prm)
}

// NewRunnerOn is NewRunner drawing the per-vertex scratch from the solve
// context's arena; release it with Free when the solve is done.
func NewRunnerOn(cx *solve.Ctx, f *labeled.Forest, prm Params) *Runner {
	n := f.Len()
	mk := func() []int64 { return cx.Grab64(n) }
	return &Runner{
		M: cx.M, F: f, Prm: prm, cx: cx,
		out: mk(), hadArc: mk(), hasArc: mk(), cand: mk(),
		in: mk(), multiIn: mk(), deleted: mk(), slot: mk(), marked: mk(),
	}
}

// Free returns the runner's scratch to its context's arena.  The runner
// must not be used afterwards.
func (r *Runner) Free() {
	for _, s := range [][]int64{r.out, r.hadArc, r.hasArc, r.cand, r.in, r.multiIn, r.deleted, r.slot, r.marked} {
		r.cx.Release64(s)
	}
	r.out, r.hadArc, r.hasArc, r.cand = nil, nil, nil, nil
	r.in, r.multiIn, r.deleted, r.slot, r.marked = nil, nil, nil, nil, nil
}

func (r *Runner) set(a []int64, i int32, v int32) {
	pram.Store64(a, int(i), r.stamp<<32|int64(uint32(v)))
}

func (r *Runner) get(a []int64, i int32) int32 {
	x := pram.Load64(a, int(i))
	if x>>32 != r.stamp {
		return 0
	}
	return int32(uint32(x))
}

// Matching runs MATCHING(E) (§4.1) on a copy of E (pass-by-value) and
// returns the vertices whose parent it updated, for the caller's round log.
// One call is O(1) time and O(|E|) work.
func (r *Runner) Matching(E []graph.Edge) (updated []int32) {
	m, p := r.M, r.F.P
	r.calls++
	r.stamp = 2 * r.calls // two stamp epochs per call; Step 6 bumps to the odd one
	seed := r.Prm.Seed ^ uint64(r.calls)*0x9e3779b97f4a7c15

	// Step 1: keep only non-loop edges between two roots.
	D := r.cx.GrabEdgesCap(len(E))
	m.Contract(1, int64(len(E)), func() {
		for _, e := range E {
			if e.U != e.V && p[e.U] == e.U && p[e.V] == e.V {
				D = append(D, e)
			}
		}
	})

	// Step 2: orient from the large end to the small end: arc (u,v), u > v.
	m.For(len(D), func(i int) {
		if D[i].U < D[i].V {
			D[i].U, D[i].V = D[i].V, D[i].U
		}
	})

	// Step 3: each tail keeps one arbitrary outgoing arc.
	live := r.cx.Grab32(len(D))
	m.For(len(D), func(i int) {
		r.set(r.out, D[i].U, int32(i)+1)
	})
	m.For(len(D), func(i int) {
		if r.get(r.out, D[i].U) == int32(i)+1 {
			live[i] = 1
		}
	})

	// Step 4: a singleton is a vertex that had an arc before Step 3 and has
	// none after; it adopts the tail of an arbitrary incoming pre-Step-3 arc.
	m.For(len(D), func(i int) {
		r.set(r.hadArc, D[i].U, 1)
		r.set(r.hadArc, D[i].V, 1)
	})
	m.For(len(D), func(i int) {
		if live[i] == 1 {
			r.set(r.hasArc, D[i].U, 1)
			r.set(r.hasArc, D[i].V, 1)
		}
	})
	m.For(len(D), func(i int) {
		v := D[i].V
		if r.get(r.hadArc, v) != 0 && r.get(r.hasArc, v) == 0 {
			r.set(r.cand, v, D[i].U+1)
		}
	})
	m.For(len(D), func(i int) {
		v := D[i].V
		c := r.get(r.cand, v)
		if c != 0 && pram.Load32(p, int(v)) == v {
			pram.Store32(p, int(v), c-1)
		}
	})
	m.Contract(1, int64(len(D)), func() {
		for _, e := range D {
			v := e.V
			if c := r.get(r.cand, v); c != 0 && p[v] == c-1 {
				updated = append(updated, v)
				r.set(r.cand, v, 0)
			}
		}
	})

	// Step 5: a root with >1 incoming arcs drops all its outgoing arcs.
	countIncoming := func() {
		m.For(len(D), func(i int) {
			if live[i] == 1 {
				r.set(r.in, D[i].V, int32(i)+1)
			}
		})
		m.For(len(D), func(i int) {
			if live[i] == 1 && r.get(r.in, D[i].V) != int32(i)+1 {
				r.set(r.multiIn, D[i].V, 1)
			}
		})
	}
	countIncoming()
	m.For(len(D), func(i int) {
		if live[i] == 1 && r.get(r.multiIn, D[i].U) != 0 {
			live[i] = 0
		}
	})

	// Step 6: heads with >1 incoming arcs adopt all their arc tails.  The
	// incoming counts are recomputed on the surviving arcs (fresh stamp
	// region: reuse the same cells under a bumped stamp).
	r.stamp = 2*r.calls + 1 // second stamp epoch for this call
	countIncoming()
	m.For(len(D), func(i int) {
		if live[i] == 1 && r.get(r.multiIn, D[i].V) != 0 {
			u := D[i].U
			pram.Store32(p, int(u), D[i].V)
			r.set(r.deleted, u, 1)
		}
	})
	m.Contract(1, int64(len(D)), func() {
		for _, e := range D {
			if r.get(r.deleted, e.U) == 1 && p[e.U] == e.V {
				updated = append(updated, e.U)
				r.set(r.deleted, e.U, 2)
			}
		}
	})
	m.For(len(D), func(i int) {
		if live[i] == 1 && (r.get(r.deleted, D[i].U) != 0 || r.get(r.deleted, D[i].V) != 0) {
			live[i] = 0
		}
	})

	// Step 7: delete each remaining arc with probability 1/2.
	m.For(len(D), func(i int) {
		if live[i] == 1 && pram.SplitMix64(seed^uint64(i))&1 == 1 {
			live[i] = 0
		}
	})

	// Step 8: isolated arcs contract head onto tail.  Three sub-steps:
	// write ends, mark shared, update unmarked (proof of Lemma 4.3).
	m.For(len(D), func(i int) {
		if live[i] == 1 {
			r.set(r.slot, D[i].U, int32(i)+1)
			r.set(r.slot, D[i].V, int32(i)+1)
		}
	})
	m.For(len(D), func(i int) {
		if live[i] != 1 {
			return
		}
		id := int32(i) + 1
		if r.get(r.slot, D[i].U) != id || r.get(r.slot, D[i].V) != id {
			r.set(r.marked, D[i].U, 1)
			r.set(r.marked, D[i].V, 1)
		}
	})
	m.For(len(D), func(i int) {
		if live[i] != 1 {
			return
		}
		u, v := D[i].U, D[i].V
		if r.get(r.marked, u) == 0 && r.get(r.marked, v) == 0 {
			pram.Store32(p, int(v), u)
		}
	})
	m.Contract(1, int64(len(D)), func() {
		for i := range D {
			if live[i] == 1 && r.get(r.marked, D[i].U) == 0 && r.get(r.marked, D[i].V) == 0 && p[D[i].V] == D[i].U {
				updated = append(updated, D[i].V)
			}
		}
	})

	// Step 9: pointer-jump the ends of the original edge set.
	m.For(len(E), func(i int) {
		for _, v := range []int32{E[i].U, E[i].V} {
			pv := pram.Load32(p, int(v))
			pram.Store32(p, int(v), pram.Load32(p, int(pv)))
		}
	})
	r.cx.Release32(live)
	r.cx.ReleaseEdges(D)
	return updated
}

// Filter runs FILTER(E,k) (§4.2): k+1 rounds of MATCHING/ALTER/deletion on a
// copy of E, then the reverse-order unwinding.  It returns V(E) — vertices
// still adjacent to a surviving edge — and the union of vertices whose
// parents were updated (needed by EXTRACT's own unwinding).
func (r *Runner) Filter(E []graph.Edge, k int, seed uint64) (VE []int32, updatedUnion []int32) {
	m := r.M
	cur := r.cx.CopyEdges(E)
	rounds := make([][]int32, 0, k+1)
	for j := 0; j <= k; j++ {
		upd := r.Matching(cur)
		rounds = append(rounds, upd)
		cur = labeled.Alter(m, r.F, cur)
		cur = deleteEdges(m, cur, r.Prm.DeleteP64, seed^0xf117e4^uint64(j)<<17)
	}
	r.unwind(rounds)
	for _, u := range rounds {
		updatedUnion = append(updatedUnion, u...)
	}
	VE = solve.VertexSet(r.cx, r.F.Len(), cur)
	r.cx.ReleaseEdges(cur)
	return VE, updatedUnion
}

// unwind performs "for iteration j from k to 0: if v updated v.p in round j
// then v.p = v.p.p".
func (r *Runner) unwind(rounds [][]int32) {
	p := r.F.P
	for j := len(rounds) - 1; j >= 0; j-- {
		vs := rounds[j]
		r.M.For(len(vs), func(i int) {
			v := vs[i]
			pv := pram.Load32(p, int(v))
			pram.Store32(p, int(v), pram.Load32(p, int(pv)))
		})
	}
}

func deleteEdges(m *pram.Machine, E []graph.Edge, p64 uint64, seed uint64) []graph.Edge {
	out := E[:0]
	m.Contract(1, int64(len(E)), func() {
		for i, e := range E {
			if pram.SplitMix64(seed^uint64(i)*0x9e3779b97f4a7c15) >= p64 {
				out = append(out, e)
			}
		}
	})
	return out
}

// Extract runs EXTRACT(E,k) (§4.2): repeated FILTER rounds that peel off the
// high-degree part, then unwinding and REVERSE.  E is altered in place
// (pass-by-reference); the surviving edge set is returned.
func (r *Runner) Extract(E []graph.Edge, k int) []graph.Edge {
	m := r.M
	n := r.F.Len()
	inVp := r.cx.Grab32(n) // membership flags for V' (single grab)
	var Vp []int32
	// Step 1: E' = non-loops of E.
	Ep := r.cx.GrabEdgesCap(len(E))
	m.Contract(1, int64(len(E)), func() {
		for _, e := range E {
			if e.U != e.V {
				Ep = append(Ep, e)
			}
		}
	})
	rounds := make([][]int32, 0, k+1)
	for i := 0; i <= k; i++ {
		Vi, upd := r.Filter(Ep, r.Prm.FilterK, r.Prm.Seed^uint64(i)*0x51ab)
		rounds = append(rounds, upd)
		m.For(len(Vi), func(j int) {
			pram.SetFlag(inVp, int(Vi[j]))
		})
		Vp = append(Vp, Vi...)
		Ep = labeled.Alter(m, r.F, Ep)
		Ep = removeBothIn(m, Ep, inVp)
	}
	r.unwind(rounds)
	r.cx.ReleaseEdges(Ep)
	r.cx.Release32(inVp)
	Reverse(m, r.F, dedupVerts(Vp), E)
	return labeled.Alter(m, r.F, E)
}

func removeBothIn(m *pram.Machine, E []graph.Edge, in []int32) []graph.Edge {
	out := E[:0]
	m.Contract(1, int64(len(E)), func() {
		for _, e := range E {
			if in[e.U] != 0 && in[e.V] != 0 {
				continue
			}
			out = append(out, e)
		}
	})
	return out
}

func dedupVerts(vs []int32) []int32 {
	seen := make(map[int32]struct{}, len(vs))
	out := vs[:0]
	for _, v := range vs {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Reverse runs REVERSE(V',E) (§4.2): within each flat tree containing a
// vertex of V', promote an arbitrary V'-child to be the root, then shortcut
// and ALTER.  Precondition (as at its call sites): trees are flat.
func Reverse(m *pram.Machine, f *labeled.Forest, Vp []int32, E []graph.Edge) {
	p := f.P
	// Step 1a: each non-root v ∈ V' competes to become its root's parent.
	m.For(len(Vp), func(i int) {
		v := Vp[i]
		pv := pram.Load32(p, int(v))
		if pv != v {
			pram.Store32(p, int(pv), v)
		}
	})
	// Step 1b: v.p = v.p.p for the same vertices (the winner becomes a root).
	m.For(len(Vp), func(i int) {
		v := Vp[i]
		pv := pram.Load32(p, int(v))
		pram.Store32(p, int(v), pram.Load32(p, int(pv)))
	})
	// Step 2: global shortcut.
	labeled.ShortcutAll(m, f)
	// Step 3: ALTER(E) — in place; loop removal is the caller's choice.
	labeled.AlterKeep(m, f, E)
}

// Result reports what REDUCE produced: the contracted current graph.
// Edges is drawn from the runner's context arena (when it has one):
// ownership passes to the caller, who releases it when the run is done.
type Result struct {
	Edges []graph.Edge // altered edge set of the current graph (no loops)
	Roots []int32      // all roots of the labeled digraph
}

// Reduce runs REDUCE(V,E,k) (§4.3) on the whole graph: EXTRACT, a FILTER
// pass, matching rounds on the low-degree remainder, and a final REVERSE.
// It contracts the current graph to n/poly(log n) vertices (Lemma 4.25)
// w.h.p. in O(log log n) time and O(m)+O(n) expected work.
func (r *Runner) Reduce(g *graph.Graph) Result {
	m, f := r.M, r.F
	n := f.Len()
	E := r.cx.CopyEdges(g.Edges)

	// Step 1: EXTRACT(E, Θ(log log log n)).
	E = r.Extract(E, r.Prm.ExtractK)

	// Step 2: V' = FILTER(E, k).
	k := r.Prm.ReduceK
	Vp, _ := r.Filter(E, k, r.Prm.Seed^0xabcdef)

	// Step 3: shortcut everyone; ALTER(E).
	labeled.ShortcutAll(m, f)
	E = labeled.Alter(m, f, E)

	// Step 4: E' = edges with an end outside V'.
	inVp := r.cx.Grab32(n)
	m.For(len(Vp), func(i int) { pram.SetFlag(inVp, int(Vp[i])) })
	Ep := r.cx.GrabEdgesCap(len(E))
	m.Contract(1, int64(len(E)), func() {
		for _, e := range E {
			if inVp[e.U] == 0 || inVp[e.V] == 0 {
				Ep = append(Ep, e)
			}
		}
	})
	r.cx.Release32(inVp)

	// Step 5: k rounds of MATCHING on E' with global shortcuts.
	for i := 0; i <= k; i++ {
		r.Matching(Ep)
		labeled.ShortcutAll(m, f)
		Ep = labeled.Alter(m, f, Ep)
		if len(Ep) == 0 {
			break
		}
	}
	r.cx.ReleaseEdges(Ep)

	// Step 6: REVERSE(V', E).
	Reverse(m, f, Vp, E)
	E = labeled.Alter(m, f, E)

	roots := prim.CompactIndices(m, n, func(v int) bool { return f.P[v] == int32(v) })
	return Result{Edges: E, Roots: roots}
}
