package stage1

import (
	"testing"
	"testing/quick"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/pram"
)

func newRunner(g *graph.Graph, seed uint64) (*pram.Machine, *labeled.Forest, *Runner) {
	m := pram.New(pram.Seed(seed))
	f := labeled.New(g.N)
	return m, f, NewRunner(m, f, DefaultParams(g.N))
}

// liveRoots counts roots that still have a non-loop edge to another root
// under the current forest ("active roots" in §4.2.3).
func liveRoots(f *labeled.Forest, E []graph.Edge) int {
	set := map[int32]struct{}{}
	for _, e := range E {
		u, v := f.Root(e.U), f.Root(e.V)
		if u != v {
			set[u] = struct{}{}
			set[v] = struct{}{}
		}
	}
	return len(set)
}

func TestMatchingReducesRoots(t *testing.T) {
	// Lemma 4.4: one MATCHING call reduces roots by a constant factor.
	for _, mk := range []func() *graph.Graph{
		func() *graph.Graph { return gen.Cycle(1000) },
		func() *graph.Graph { return gen.RandomRegular(1000, 4, 3) },
		func() *graph.Graph { return gen.Grid(30, 34) },
	} {
		g := mk()
		m, f, r := newRunner(g, 7)
		_ = m
		before := len(f.Roots(nil))
		r.Matching(g.Edges)
		after := len(f.Roots(nil))
		if after > before*999/1000 {
			t.Errorf("matching reduced roots only %d -> %d", before, after)
		}
	}
}

func TestMatchingInvariantRootOrChildOfRoot(t *testing.T) {
	// Lemma 4.5: every original root is a root or child of a root after.
	g := gen.GNM(400, 600, 3)
	_, f, r := newRunner(g, 5)
	r.Matching(g.Edges)
	if h := f.MaxHeight(); h > 1 {
		t.Fatalf("tree height %d > 1 after MATCHING on a flat forest", h)
	}
	if err := f.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingContractionSafety(t *testing.T) {
	g := gen.Union(gen.Cycle(60), gen.Grid(8, 8), gen.Path(40))
	truth := baseline.BFSLabels(g)
	_, f, r := newRunner(g, 9)
	E := append([]graph.Edge(nil), g.Edges...)
	for i := 0; i < 6; i++ {
		r.Matching(E)
		if err := labeled.CheckSameComponent(f, truth); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		E = labeled.Alter(r.M, f, E)
	}
}

func TestMatchingUpdatedListIsAccurate(t *testing.T) {
	g := gen.RandomRegular(300, 4, 1)
	_, f, r := newRunner(g, 2)
	before := f.Snapshot()
	upd := r.Matching(g.Edges)
	changed := map[int32]bool{}
	for v := range before {
		if before[v] != f.P[v] {
			changed[int32(v)] = true
		}
	}
	got := map[int32]bool{}
	for _, v := range upd {
		got[v] = true
	}
	for v := range changed {
		if !got[v] {
			t.Fatalf("vertex %d changed parent but was not recorded", v)
		}
	}
	// Step 9's pointer jumps can re-point recorded vertices further, so got
	// may contain strictly more entries only if their parents also moved;
	// every recorded vertex must at least be a non-root now.
	for v := range got {
		if f.P[v] == v {
			t.Fatalf("recorded vertex %d is still a root", v)
		}
	}
}

func TestFilterKeepsPartitionValid(t *testing.T) {
	g := gen.GNM(500, 800, 11)
	truth := baseline.BFSLabels(g)
	_, f, r := newRunner(g, 3)
	VE, _ := r.Filter(g.Edges, 3, 77)
	if err := labeled.CheckSameComponent(f, truth); err != nil {
		t.Fatal(err)
	}
	for _, v := range VE {
		if v < 0 || int(v) >= g.N {
			t.Fatal("V(E) out of range")
		}
	}
}

func TestFilterHeightGrowth(t *testing.T) {
	// Lemma 4.7: FILTER raises tree height by at most 1 per execution.
	g := gen.RandomRegular(400, 4, 5)
	_, f, r := newRunner(g, 13)
	r.Filter(g.Edges, 3, 1)
	if h := f.MaxHeight(); h > 1 {
		t.Fatalf("height %d > 1 after one FILTER on flat forest", h)
	}
}

func TestExtractShrinksActiveRoots(t *testing.T) {
	g := gen.RandomRegular(2000, 4, 9)
	m, f, r := newRunner(g, 21)
	_ = m
	E := append([]graph.Edge(nil), g.Edges...)
	E = r.Extract(E, r.Prm.ExtractK)
	live := liveRoots(f, E)
	if live > g.N/2 {
		t.Errorf("EXTRACT left %d live roots of %d", live, g.N)
	}
	if err := f.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	if err := labeled.CheckEdgesOnRoots(f, E); err != nil {
		t.Fatalf("Lemma 4.9 violated: %v", err)
	}
}

func TestExtractContractionSafety(t *testing.T) {
	g := gen.Union(gen.GNM(300, 500, 1), gen.Cycle(100))
	truth := baseline.BFSLabels(g)
	_, f, r := newRunner(g, 31)
	E := append([]graph.Edge(nil), g.Edges...)
	r.Extract(E, 2)
	if err := labeled.CheckSameComponent(f, truth); err != nil {
		t.Fatal(err)
	}
}

func TestReduceShrinksAndStaysCorrect(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"expander": gen.RandomRegular(4000, 4, 17),
		"gnm":      gen.GNM(3000, 9000, 23),
		"grid":     gen.Grid(50, 60),
		"union":    gen.Union(gen.Cycle(500), gen.RandomRegular(1000, 4, 2), graph.New(100)),
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			truth := baseline.BFSLabels(g)
			_, f, r := newRunner(g, 3)
			res := r.Reduce(g)
			if err := labeled.CheckSameComponent(f, truth); err != nil {
				t.Fatal(err)
			}
			if err := labeled.CheckEdgesOnRoots(f, res.Edges); err != nil {
				t.Fatal(err)
			}
			live := liveRoots(f, res.Edges)
			if live > g.N/3 {
				t.Errorf("REDUCE left %d live roots of %d", live, g.N)
			}
			// Finishing from the reduced graph must recover the partition:
			// contract the remainder with min-hook union-find and compare.
			u := baseline.NewUnionFind(g.N)
			for v := 0; v < g.N; v++ {
				u.Union(int32(v), f.Root(int32(v)))
			}
			for _, e := range res.Edges {
				u.Union(e.U, e.V)
			}
			lab := make([]int32, g.N)
			for v := range lab {
				lab[v] = u.Find(int32(v))
			}
			if !graph.SamePartition(truth, lab) {
				t.Fatal("reduced graph lost connectivity information")
			}
		})
	}
}

func TestReduceWorkLinear(t *testing.T) {
	// Work charged by REDUCE must stay a bounded multiple of m+n as n grows
	// (Lemma 4.25's O(m)+O(n) expectation).
	norm := func(n int) float64 {
		g := gen.RandomRegular(n, 4, 5)
		m, _, r := newRunner(g, 2)
		r.Reduce(g)
		return float64(m.Work()) / float64(g.M()+g.N)
	}
	small, large := norm(1<<10), norm(1<<14)
	if large > small*3 {
		t.Errorf("REDUCE normalized work grows: %.1f -> %.1f", small, large)
	}
}

func TestReverseMakesVpVerticesRoots(t *testing.T) {
	m := pram.New()
	f := labeled.New(6)
	// flat tree rooted at 0 with children 1,2,3
	f.P[1], f.P[2], f.P[3] = 0, 0, 0
	E := []graph.Edge{{U: 0, V: 4}}
	Reverse(m, f, []int32{2}, E)
	if !f.IsRoot(2) {
		t.Fatalf("REVERSE should promote 2 to root, p=%v", f.P)
	}
	if f.MaxHeight() > 1 {
		t.Fatalf("REVERSE left height %d", f.MaxHeight())
	}
	// the edge moved to the new root
	if E[0].U != 2 {
		t.Fatalf("edge end = %d, want 2", E[0].U)
	}
}

func TestReverseNoVpChange(t *testing.T) {
	m := pram.New()
	f := labeled.New(4)
	f.P[1] = 0
	Reverse(m, f, nil, nil)
	if f.P[1] != 0 || !f.IsRoot(0) {
		t.Fatal("REVERSE with empty V' must not disturb trees")
	}
}

func TestMatchingQuickRandom(t *testing.T) {
	fq := func(seed uint64) bool {
		g := gen.GNM(120, 200, seed)
		truth := baseline.BFSLabels(g)
		_, f, r := newRunner(g, seed)
		E := append([]graph.Edge(nil), g.Edges...)
		for i := 0; i < 4; i++ {
			r.Matching(E)
			E = labeled.Alter(r.M, f, E)
		}
		return labeled.CheckSameComponent(f, truth) == nil && f.CheckAcyclic() == nil
	}
	if err := quick.Check(fq, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMatchingSequentialOrders(t *testing.T) {
	g := gen.GNM(200, 300, 5)
	truth := baseline.BFSLabels(g)
	for _, ord := range []pram.Order{pram.Forward, pram.Reverse, pram.Shuffled} {
		m := pram.New(pram.Sequential(), pram.WriteOrder(ord), pram.Seed(3))
		f := labeled.New(g.N)
		r := NewRunner(m, f, DefaultParams(g.N))
		r.Matching(g.Edges)
		if err := labeled.CheckSameComponent(f, truth); err != nil {
			t.Errorf("%v: %v", ord, err)
		}
		if h := f.MaxHeight(); h > 1 {
			t.Errorf("%v: height %d", ord, h)
		}
	}
}

func TestDefaultParamsScale(t *testing.T) {
	p1 := DefaultParams(1 << 8)
	p2 := DefaultParams(1 << 30)
	if p2.ReduceK < p1.ReduceK {
		t.Error("ReduceK must grow with n")
	}
	if p1.DeleteP64 == 0 {
		t.Error("deletion probability should be positive")
	}
}
