package par

// RNG is a deterministic SplitMix64 stream.  ForChunks hands each chunk its
// own stream seeded from (runtime seed, loop epoch, chunk index), which is
// what keeps randomized kernels reproducible under dynamic scheduling: the
// draws a chunk sees do not depend on which worker claims it or on how many
// procs the loop runs with.
type RNG struct {
	s uint64
}

// NewRNG returns the stream for the given (seed, epoch, chunk) triple.
func NewRNG(seed, epoch, chunk uint64) *RNG {
	return &RNG{s: mix64(seed ^ epoch*0x9e3779b97f4a7c15 ^ chunk*0xbf58476d1ce4e5b9)}
}

// Uint64 returns the next 64 pseudo-random bits.
func (g *RNG) Uint64() uint64 {
	g.s += 0x9e3779b97f4a7c15
	return mix64(g.s)
}

// Intn returns a pseudo-random int in [0,n).  n must be positive and fit
// in 32 bits.  Range reduction is the multiply-shift of Lemire (the bias
// is ≤ n/2³² — irrelevant for sampling) rather than a modulo: the hot
// kernels draw one index per vertex, and a hardware division per draw is
// the difference between a sampling round costing more than the edge pass
// it is supposed to save.
func (g *RNG) Intn(n int) int {
	return int((g.Uint64() >> 32) * uint64(n) >> 32)
}

// Float64 returns a pseudo-random float64 in [0,1).
func (g *RNG) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Coin reports a Bernoulli draw with success probability p64/2^64 (the same
// fixed-point convention as pram.P64).
func (g *RNG) Coin(p64 uint64) bool {
	return g.Uint64() < p64
}

// mix64 is the SplitMix64 finalizer.
func mix64(x uint64) uint64 {
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
