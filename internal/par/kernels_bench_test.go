package par

import (
	"testing"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// Microbenchmarks for the hot union-find kernels.  Run with
//
//	go test -run '^$' -bench 'Find|Compress|SampleUnite' -benchmem ./internal/par
//
// The -benchmem columns are the regression guard for the zero-alloc
// contract TestKernelAllocs pins.

func benchForest(n int) []int32 {
	p := make([]int32, n)
	for v := range p {
		// Chains of length ≤ 2: the shape Find and Compress see in the
		// steady state of a warm solver.
		switch v % 3 {
		case 0:
			p[v] = int32(v)
		default:
			p[v] = int32(v - v%3)
		}
	}
	return p
}

func BenchmarkFind(b *testing.B) {
	p := benchForest(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Find(p, int32(i&(1<<16-1)))
	}
}

func BenchmarkCompress(b *testing.B) {
	r := New(Procs(1))
	defer r.Close()
	p := benchForest(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(r, p)
	}
}

func BenchmarkSampleUnite(b *testing.B) {
	r := New(Procs(1), Seed(1))
	defer r.Close()
	g := gen.GNM(1<<14, 1<<17, 1)
	csr := graph.BuildCSR(g)
	p := make([]int32, g.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range p {
			p[v] = int32(v)
		}
		SampleUnite(r, p, csr, 2)
	}
}

func BenchmarkSkipUnite(b *testing.B) {
	r := New(Procs(1), Seed(1))
	defer r.Close()
	g := gen.GNM(1<<14, 1<<17, 1)
	csr := graph.BuildCSR(g)
	p := make([]int32, g.N)
	for v := range p {
		p[v] = int32(v)
	}
	SampleUnite(r, p, csr, 2)
	Compress(r, p)
	maj, _ := MajorityRoot(r, p, 1024, nil)
	for _, mode := range []struct {
		name string
		maj  int32
	}{{"majority", maj}, {"filtered", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SkipUnite(r, p, csr, mode.maj)
			}
		})
	}
}

// TestKernelAllocs pins the allocation behavior of the hot kernels on a
// warm forest: Find is zero-alloc, Compress pays exactly its one loop-body
// closure (nothing proportional to n), and one SampleUnite round costs at
// most its per-chunk RNG streams.
func TestKernelAllocs(t *testing.T) {
	r := New(Procs(1))
	defer r.Close()
	p := benchForest(1 << 12)
	if a := testing.AllocsPerRun(50, func() { Find(p, 4091) }); a != 0 {
		t.Errorf("Find allocates %v per run, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() { Compress(r, p) }); a > 1 {
		t.Errorf("Compress allocates %v per run, want ≤ 1 (the loop-body closure)", a)
	}
	g := gen.GNM(1<<12, 1<<13, 1)
	csr := graph.BuildCSR(g)
	q := make([]int32, g.N)
	for v := range q {
		q[v] = int32(v)
	}
	nchunks := float64((len(q) + 2047) / 2048) // one RNG stream per chunk
	if a := testing.AllocsPerRun(20, func() { SampleUnite(r, q, csr, 1) }); a > 2*nchunks+2 {
		t.Errorf("SampleUnite allocates %v per run, want ≤ %v (chunk RNG streams only)", a, 2*nchunks+2)
	}
}
