package par

import (
	"parcc/internal/graph"
)

// Replacement-edge search: the deletion kernel of the spanning-forest
// dynamic connectivity layer.  When a forest edge {u,v} is deleted, its
// tree falls into two subtrees Tu ∋ u and Tv ∋ v; the component stays
// connected iff some live non-forest edge crosses between them.  The
// kernel finds such a replacement — or proves the split — while touching
// work proportional to the SMALLER side, the classic trick that keeps
// delete-heavy workloads from paying the component size per deletion:
//
//   - Two tree BFSes, one from each endpoint, expand over FOREST edges
//     only, interleaved in small quanta so whichever side is smaller
//     exhausts first.  Each side's frontier doubles as queue (the sparse
//     list, walked by cursor) and visited set (the bitmap, probed by Has).
//   - Any non-forest edge scanned whose far endpoint is already visited by
//     the OTHER side is a replacement — found without either side being
//     fully enumerated.
//   - When a side's tree BFS exhausts, its list is exactly that subtree's
//     vertex set.  A crossing scan over it then decides: an incident edge
//     whose far endpoint is outside the side must reach the other subtree
//     (edges never leave a component), so it is a replacement; if no edge
//     leaves the set, the split is proven and the list is the side to
//     relabel.  The interleaved phase alone cannot prove a split — the
//     other side's visited set is still partial — which is why the scan,
//     not exhaustion, is the certificate.
//
// Everything is bounded by `budget` adjacency entries (replacement searches
// must not regress to the scoped re-solve they replace); on overrun the
// kernel backs out having mutated nothing and the caller falls back.
type ReplaceOutcome uint8

const (
	// ReplaceFound: a crossing edge was found; the caller promotes
	// Result.Handle to a forest edge.  Labels untouched.
	ReplaceFound ReplaceOutcome = iota
	// ReplaceSplit: the component truly split; the smaller side was
	// relabeled to Result.NewRoot (Result.Moved vertices).
	ReplaceSplit
	// ReplaceBudget: the scan budget blew before a verdict; nothing was
	// mutated.  The caller falls back to the scoped re-solve.
	ReplaceBudget
)

// ReplaceResult reports one replacement search.
type ReplaceResult struct {
	Outcome ReplaceOutcome
	Handle  int32 // replacement edge (ReplaceFound)
	NewRoot int32 // new root of the relabeled side (ReplaceSplit)
	Moved   int   // vertices relabeled (ReplaceSplit)
	Scanned int64 // adjacency entries inspected
}

// replaceQuota is the interleaving quantum: adjacency entries one side
// scans before yielding to the other.  Small enough that the smaller
// side's exhaustion is detected within ~2× its own size, large enough to
// amortize the switch.
const replaceQuota = 32

// replaceSide is one side's resumable BFS state over a frontier used as
// queue + visited set.
type replaceSide struct {
	f     *Frontier
	other *Frontier
	qi    int   // queue cursor into f's sparse list
	curX  int32 // vertex mid-scan, -1 when between vertices
	curH  int32 // next incident handle of curX
}

// ReplacementSearch decides the fate of deleting forest edge {u,v} (the
// edge itself already removed from df).  p must be flat for the affected
// component (every member's parent is the root directly) — the relabel on
// a split writes a flat result back, so flatness is preserved across a
// whole deletion batch.  fu and fv must be empty Frontiers sized to the
// graph; both are left empty on every path.  Sequential,
// orchestrator-owned (the session lock), like the DynForest it walks.
func ReplacementSearch(df *graph.DynForest, p []int32, u, v int32, fu, fv *Frontier, budget int64) ReplaceResult {
	return ReplacementSearchCollect(df, p, u, v, fu, fv, budget, nil)
}

// ReplacementSearchCollect is ReplacementSearch additionally reporting the
// relabeled side's membership on a split: when moved is non-nil and the
// outcome is ReplaceSplit, the vertices that received the new root are
// appended to *moved (reset to its empty prefix first) — the delta the
// copy-on-write snapshot mirror needs to update its member lists without
// scanning the component.  Nothing is appended on the other outcomes.
func ReplacementSearchCollect(df *graph.DynForest, p []int32, u, v int32, fu, fv *Frontier, budget int64, moved *[]int32) ReplaceResult {
	root := p[u]
	fu.BeginCollect(true)
	fu.Add(u)
	fv.BeginCollect(true)
	fv.Add(v)
	defer func() {
		fu.Clear()
		fv.Clear()
	}()
	a := &replaceSide{f: fu, other: fv, curX: -1, curH: -1}
	b := &replaceSide{f: fv, other: fu, curX: -1, curH: -1}
	var scanned int64

	// advance runs up to quota adjacency entries of s's tree BFS.  A
	// non-forest edge into the other side's visited set short-circuits as
	// a replacement; exhaustion means s's list is its full subtree.
	advance := func(s *replaceSide, quota int64) (found int32, exhausted bool) {
		for quota > 0 {
			if s.curX < 0 {
				if s.qi >= s.f.Len() {
					return -1, true
				}
				s.curX = s.f.At(s.qi)
				s.qi++
				s.curH = df.First(s.curX)
			}
			for s.curH >= 0 && quota > 0 {
				h := s.curH
				s.curH = df.NextIncident(s.curX, h)
				scanned++
				quota--
				y := df.Other(h, s.curX)
				if df.IsForest(h) {
					s.f.Add(y) // bitmap dedups the BFS parent
				} else if y != s.curX && s.other.Has(y) {
					return h, false
				}
			}
			if s.curH < 0 {
				s.curX = -1
			}
		}
		return -1, false
	}

	// crossingScan decides an exhausted side: the first incident edge
	// leaving the visited set is a replacement (its far end is in the
	// other subtree); none means a true split.
	crossingScan := func(s *replaceSide) (found int32, overBudget bool) {
		for i := 0; i < s.f.Len(); i++ {
			x := s.f.At(i)
			for h := df.First(x); h >= 0; h = df.NextIncident(x, h) {
				scanned++
				if scanned > budget {
					return -1, true
				}
				y := df.Other(h, x)
				if !s.f.Has(y) {
					return h, false
				}
			}
		}
		return -1, false
	}

	// finish resolves an exhausted side s: replacement, or split with the
	// side not holding the union-find root relabeled (relabeling the
	// root's own side would orphan the complement, whose parents point at
	// the root).  Enumerating the other side when needed is bounded by its
	// subtree — never worse than the component, i.e. than the fallback.
	finish := func(s *replaceSide) ReplaceResult {
		h, over := crossingScan(s)
		if over {
			return ReplaceResult{Outcome: ReplaceBudget, Scanned: scanned}
		}
		if h >= 0 {
			return ReplaceResult{Outcome: ReplaceFound, Handle: h, Scanned: scanned}
		}
		target := s
		if s.f.Has(root) {
			o := a
			if s == a {
				o = b
			}
			for {
				oh, exhausted := advance(o, 1<<30)
				if exhausted {
					break
				}
				if oh >= 0 {
					// Unreachable once s's crossing scan came up empty (no
					// edge leaves s's subtree), but a found edge is always a
					// safe answer.
					return ReplaceResult{Outcome: ReplaceFound, Handle: oh, Scanned: scanned}
				}
			}
			target = o
		}
		seed := target.f.At(0)
		if moved != nil {
			*moved = (*moved)[:0]
		}
		for i := 0; i < target.f.Len(); i++ {
			x := target.f.At(i)
			p[x] = seed
			if moved != nil {
				*moved = append(*moved, x)
			}
		}
		return ReplaceResult{Outcome: ReplaceSplit, NewRoot: seed, Moved: target.f.Len(), Scanned: scanned}
	}

	for {
		if scanned > budget {
			return ReplaceResult{Outcome: ReplaceBudget, Scanned: scanned}
		}
		if h, exhausted := advance(a, replaceQuota); h >= 0 {
			return ReplaceResult{Outcome: ReplaceFound, Handle: h, Scanned: scanned}
		} else if exhausted {
			return finish(a)
		}
		if h, exhausted := advance(b, replaceQuota); h >= 0 {
			return ReplaceResult{Outcome: ReplaceFound, Handle: h, Scanned: scanned}
		} else if exhausted {
			return finish(b)
		}
	}
}
