package par

import (
	"math/bits"
	"testing"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// refMinima computes the per-component minimum label by sequential DSU —
// the ground truth every frontier kernel must converge to.
func refMinima(g *graph.Graph, init []int32) []int32 {
	p := make([]int32, g.N)
	for v := range p {
		p[v] = int32(v)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for p[v] != v {
			p[v] = p[p[v]]
			v = p[v]
		}
		return v
	}
	for _, e := range g.Edges {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			p[ru] = rv
		}
	}
	min := make([]int32, g.N)
	for v := range min {
		min[v] = -1
	}
	for v := 0; v < g.N; v++ {
		r := find(int32(v))
		if min[r] == -1 || init[v] < min[r] {
			min[r] = init[v]
		}
	}
	out := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		out[v] = min[find(int32(v))]
	}
	return out
}

func identity(n int) []int32 {
	l := make([]int32, n)
	for v := range l {
		l[v] = int32(v)
	}
	return l
}

// bitRevPath is a path whose vertex numbering is the bit-reversal of the
// path position, decoupling scan order from path order: a full-frontier
// in-order pass cannot flood the whole component in one round, so the
// occupancy decays over several rounds — the shape that exercises the
// dense→sparse representation switch deterministically.
func bitRevPath(logN int) *graph.Graph {
	n := 1 << logN
	g := graph.New(n)
	rev := func(k int) int { return int(bits.Reverse(uint(k)) >> (bits.UintSize - logN)) }
	for k := 0; k+1 < n; k++ {
		g.AddEdge(rev(k), rev(k+1))
	}
	return g
}

// TestFrontierPropagateComponents pins FrontierPropagate's fixpoint to the
// per-component minima across graph shapes and proc counts, from a full
// cold-solve seed.
func TestFrontierPropagateComponents(t *testing.T) {
	shapes := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty", graph.New(257)},
		{"path", gen.Path(1 << 10)},
		{"cycle", gen.Cycle(1 << 10)},
		{"two-cycles", gen.TwoCycles(1 << 10)},
		{"grid", gen.Grid(48, 48)},
		{"star", gen.Star(1 << 10)},
		{"binary-tree", gen.BinaryTree(1 << 10)},
		{"gnm", gen.GNM(1<<10, 1<<12, 7)},
		{"cliques", gen.RingOfCliques(16, 24, 2, 7)},
		{"bitrev-path", bitRevPath(10)},
	}
	for _, procs := range []int{1, 4} {
		rt := New(Procs(procs), Seed(1))
		for _, s := range shapes {
			csr := graph.BuildCSR(s.g)
			labels := identity(s.g.N)
			want := refMinima(s.g, labels)
			cur := NewFrontier(nil, s.g.N)
			next := NewFrontier(nil, s.g.N)
			cur.SeedAll()
			st := FrontierPropagate(rt, labels, csr, cur, next, nil)
			for v := range labels {
				if labels[v] != want[v] {
					t.Fatalf("procs=%d %s: label[%d]=%d, want %d", procs, s.name, v, labels[v], want[v])
				}
			}
			if cur.Count() != 0 || next.Count() != 0 {
				t.Fatalf("procs=%d %s: frontiers not left empty (%d, %d)", procs, s.name, cur.Count(), next.Count())
			}
			if s.g.N > 0 && len(s.g.Edges) > 0 && st.Rounds == 0 {
				t.Fatalf("procs=%d %s: no rounds recorded", procs, s.name)
			}
		}
		rt.Close()
	}
}

// TestFrontierPartialSeedRepair pins the scoped-repair contract: labels
// already settled except inside a damaged region, the region's vertices
// seeded sparse, and propagation restoring the exact global fixpoint while
// inspecting far fewer adjacency entries than a cold solve.
func TestFrontierPartialSeedRepair(t *testing.T) {
	g := gen.Path(1 << 12)
	csr := graph.BuildCSR(g)
	rt := New(Procs(1), Seed(1))
	defer rt.Close()

	labels := identity(g.N)
	want := refMinima(g, labels)
	cur := NewFrontier(nil, g.N)
	next := NewFrontier(nil, g.N)
	cur.SeedAll()
	cold := FrontierPropagate(rt, labels, csr, cur, next, nil)

	// Damage a region: reset its labels to identity and seed exactly the
	// dirty vertices (every unsettled edge is incident to the region).
	lo, hi := 1024, 1536
	cur.BeginCollect(true)
	for v := lo; v < hi; v++ {
		labels[v] = int32(v)
		cur.Add(int32(v))
	}
	warm := FrontierPropagate(rt, labels, csr, cur, next, nil)
	for v := range labels {
		if labels[v] != want[v] {
			t.Fatalf("after repair label[%d]=%d, want %d", v, labels[v], want[v])
		}
	}
	if warm.Inspected >= cold.Inspected/2 {
		t.Fatalf("scoped repair inspected %d entries, cold solve %d — repair should be much cheaper", warm.Inspected, cold.Inspected)
	}
}

// TestFrontierDualRepresentation drives the bit-reversal path, whose
// occupancy decays across rounds, and pins the dual-representation
// machinery: both dense and sparse rounds occur, the switch count matches
// the transitions the onRound hook observed, and occupancies sum to at
// least n (every vertex was active at least once).
func TestFrontierDualRepresentation(t *testing.T) {
	g := bitRevPath(12)
	csr := graph.BuildCSR(g)
	rt := New(Procs(1), Seed(1))
	defer rt.Close()
	labels := identity(g.N)
	cur := NewFrontier(nil, g.N)
	next := NewFrontier(nil, g.N)
	cur.SeedAll()
	type round struct {
		occ   int64
		dense bool
	}
	var seen []round
	st := FrontierPropagate(rt, labels, csr, cur, next, func(occ int64, dense bool) {
		seen = append(seen, round{occ, dense})
	})
	if len(seen) != st.Rounds {
		t.Fatalf("onRound fired %d times, stats say %d rounds", len(seen), st.Rounds)
	}
	var nDense, nSparse, switches int
	var total int64
	for i, r := range seen {
		if r.occ < 1 {
			t.Fatalf("round %d: occupancy %d < 1", i, r.occ)
		}
		total += r.occ
		if r.dense {
			nDense++
		} else {
			nSparse++
		}
		if i > 0 && r.dense != seen[i-1].dense {
			switches++
		}
	}
	if nDense == 0 || nSparse == 0 {
		t.Fatalf("want both representations exercised, got %d dense / %d sparse rounds", nDense, nSparse)
	}
	if switches != st.Switches {
		t.Fatalf("stats report %d switches, onRound observed %d", st.Switches, switches)
	}
	if total < int64(g.N) {
		t.Fatalf("occupancies sum to %d < n=%d", total, g.N)
	}
	for v := range labels {
		if labels[v] != 0 {
			t.Fatalf("bitrev path must settle to 0, label[%d]=%d", v, labels[v])
		}
	}
}

// TestFrontierUniteMatchesSkipUnite pins FrontierUnite as the same finish
// pass as SkipUnite: a full frontier reproduces SkipUnite's partition in
// both majority and filtered modes, and a partial seed over a damaged
// forest restores the full-pass partition.
func TestFrontierUniteMatchesSkipUnite(t *testing.T) {
	g := gen.GNM(1<<12, 1<<14, 3)
	csr := graph.BuildCSR(g)
	want := refMinima(g, identity(g.N))
	for _, procs := range []int{1, 4} {
		rt := New(Procs(procs), Seed(1))
		for _, maj := range []int32{-1, 0} {
			pSkip := identity(g.N)
			SkipUnite(rt, pSkip, csr, maj)
			Compress(rt, pSkip)

			pFr := identity(g.N)
			f := NewFrontier(nil, g.N)
			f.SeedAll()
			FrontierUnite(rt, pFr, csr, f, maj)
			Compress(rt, pFr)
			if f.Count() != 0 {
				t.Fatalf("procs=%d maj=%d: frontier not consumed", procs, maj)
			}
			for v := range pFr {
				if pFr[v] != pSkip[v] || pFr[v] != want[v] {
					t.Fatalf("procs=%d maj=%d: root[%d] frontier=%d skip=%d want=%d",
						procs, maj, v, pFr[v], pSkip[v], want[v])
				}
			}
		}
		// Partial seed: damage a vertex range of the settled forest, seed
		// it, and finish with the skip-nothing sentinel maj = n.
		p := identity(g.N)
		SkipUnite(rt, p, csr, -1)
		Compress(rt, p)
		f := NewFrontier(nil, g.N)
		f.BeginCollect(true)
		for v := 100; v < 612; v++ {
			p[v] = int32(v)
			f.Add(int32(v))
		}
		FrontierUnite(rt, p, csr, f, int32(g.N))
		Compress(rt, p)
		for v := range p {
			if p[v] != want[v] {
				t.Fatalf("procs=%d partial: root[%d]=%d, want %d", procs, v, p[v], want[v])
			}
		}
		rt.Close()
	}
}

// TestFrontierSetOps pins the Frontier container itself: dedup, sparse
// collection, Len/At, Clear in every representation, and Resize reuse.
func TestFrontierSetOps(t *testing.T) {
	a := NewArena()
	f := NewFrontier(a, 300)
	f.BeginCollect(true)
	for _, v := range []int32{7, 7, 64, 7, 299, 64} {
		f.Add(v)
	}
	if f.Count() != 3 || f.Len() != 3 || !f.Sparse() {
		t.Fatalf("sparse collect: count=%d len=%d sparse=%v", f.Count(), f.Len(), f.Sparse())
	}
	got := map[int32]bool{}
	for i := 0; i < f.Len(); i++ {
		got[f.At(i)] = true
	}
	if !got[7] || !got[64] || !got[299] {
		t.Fatalf("sparse list missing vertices: %v", got)
	}
	f.Clear()
	if f.Count() != 0 || f.Len() != 0 {
		t.Fatalf("clear left count=%d len=%d", f.Count(), f.Len())
	}

	f.BeginCollect(false)
	f.Add(13)
	f.Add(13)
	if f.Count() != 1 || f.Len() != 0 || f.Sparse() {
		t.Fatalf("dense collect: count=%d len=%d sparse=%v", f.Count(), f.Len(), f.Sparse())
	}
	f.Clear()

	f.SeedAll()
	if f.Count() != 300 || f.Len() != 300 || f.At(42) != 42 {
		t.Fatalf("full: count=%d len=%d at(42)=%d", f.Count(), f.Len(), f.At(42))
	}
	f.Clear()

	if f.Cap() < 300 {
		t.Fatalf("cap %d < 300", f.Cap())
	}
	f.Resize(128)
	f.SeedAll()
	if f.Count() != 128 || f.Len() != 128 {
		t.Fatalf("after resize: count=%d len=%d", f.Count(), f.Len())
	}
	f.Clear()
	f.Free(a)
}

// TestFrontierAllocs pins the zero-alloc contract of the warm frontier
// engine: with arena-backed frontiers and a nil onRound (tracing off), a
// full propagate run costs only its fixed set of hoisted closures —
// nothing proportional to n, m, or rounds.
func TestFrontierAllocs(t *testing.T) {
	rt := New(Procs(1), Seed(1))
	defer rt.Close()
	a := NewArena()
	g := bitRevPath(11)
	csr := graph.BuildCSR(g)
	labels := make([]int32, g.N)
	cur := NewFrontier(a, g.N)
	next := NewFrontier(a, g.N)
	if allocs := testing.AllocsPerRun(10, func() {
		for v := range labels {
			labels[v] = int32(v)
		}
		cur.SeedAll()
		FrontierPropagate(rt, labels, csr, cur, next, nil)
	}); allocs > 9 {
		t.Errorf("warm FrontierPropagate allocates %v per run, want ≤ 9 (the fixed hoisted-closure set, nothing per round)", allocs)
	}
	f := NewFrontier(a, g.N)
	p := make([]int32, g.N)
	if allocs := testing.AllocsPerRun(10, func() {
		for v := range p {
			p[v] = int32(v)
		}
		f.SeedAll()
		FrontierUnite(rt, p, csr, f, -1)
	}); allocs > 5 {
		t.Errorf("warm FrontierUnite allocates %v per run, want ≤ 5 (one mode closure and its captures)", allocs)
	}
}
