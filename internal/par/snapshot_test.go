package par

import (
	"testing"

	"parcc/internal/graph"
)

// TestSnapshotLabels checks the publish kernel against a sequential
// reference on a forest built by UniteBatch: dst[v] is v's root, sizes
// count each root's component exactly, and p itself is not mutated beyond
// what the chases read.
func TestSnapshotLabels(t *testing.T) {
	for _, procs := range []int{1, 4} {
		e := New(Procs(procs))
		defer e.Close()

		n := 500
		g := graph.New(n)
		for i := 0; i < n-1; i += 2 {
			g.AddEdge(i, i+1)
		}
		for i := 0; i+10 < n; i += 10 {
			g.AddEdge(i, i+10)
		}
		p := make([]int32, n)
		for v := range p {
			p[v] = int32(v)
		}
		UniteBatch(e, p, g.Edges)

		before := make([]int32, n)
		copy(before, p)

		dst := make([]int32, n)
		sizes := make([]int32, n)
		SnapshotLabels(e, p, dst, sizes)

		// The forest is untouched (the kernel only reads p).
		for v := range p {
			if p[v] != before[v] {
				t.Fatalf("procs=%d: kernel mutated p[%d]: %d -> %d", procs, v, before[v], p[v])
			}
		}
		// dst matches sequential root-chasing, and sizes tally exactly.
		want := make([]int32, n)
		total := int32(0)
		for v := 0; v < n; v++ {
			want[v] = chase(p, int32(v))
			if dst[v] != want[v] {
				t.Fatalf("procs=%d: dst[%d] = %d, want root %d", procs, v, dst[v], want[v])
			}
			total += sizes[v]
		}
		if int(total) != n {
			t.Fatalf("procs=%d: sizes sum to %d, want %d", procs, total, n)
		}
		count := make([]int32, n)
		for v := 0; v < n; v++ {
			count[want[v]]++
		}
		for v := 0; v < n; v++ {
			if sizes[v] != count[v] {
				t.Fatalf("procs=%d: sizes[%d] = %d, want %d", procs, v, sizes[v], count[v])
			}
		}
	}
}
