package par

import "parcc/internal/graph"

// Arena is a scratch-buffer pool for the working arrays a solve allocates:
// released buffers are kept and handed back by later Grabs, so a Solver
// running many solves against one Arena reaches a steady state where the
// hot paths allocate (almost) nothing.  Grabbed buffers are zeroed, making
// Grab a drop-in replacement for make: algorithm code behaves identically
// whether its buffers are fresh or recycled.
//
// An Arena is NOT safe for concurrent use; it is owned by the single
// orchestrating goroutine of a solve (the same discipline as pram.Machine).
// All methods are nil-receiver safe: a nil *Arena degrades to plain make
// (Grab) and no-ops (Release), which is how the one-shot compatibility
// wrappers run.
type Arena struct {
	i32 [][]int32
	i64 [][]int64
	edg [][]graph.Edge
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// arenaMaxFree bounds each freelist so a pathological Release pattern
// cannot pin unbounded memory; excess buffers are dropped to the GC.
const arenaMaxFree = 64

// grab pops the smallest free buffer with cap ≥ n, or returns nil.
func grab[T any](free *[][]T, n int) []T {
	best := -1
	for i, s := range *free {
		if cap(s) >= n && (best < 0 || cap(s) < cap((*free)[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	s := (*free)[best]
	last := len(*free) - 1
	(*free)[best] = (*free)[last]
	(*free)[last] = nil
	*free = (*free)[:last]
	return s[:n]
}

func release[T any](free *[][]T, s []T) {
	if cap(s) == 0 || len(*free) >= arenaMaxFree {
		return
	}
	*free = append(*free, s[:0])
}

// roundCap rounds a requested size up to the next power of two, so
// near-miss requests across solves converge onto shared buffers.
func roundCap(n int) int {
	c := 64
	for c < n {
		c <<= 1
	}
	return c
}

// Grab32 returns a zeroed []int32 of length n (recycled when possible).
func (a *Arena) Grab32(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	if s := grab(&a.i32, n); s != nil {
		clear(s)
		return s
	}
	return make([]int32, n, roundCap(n))
}

// Grab32Cap returns an empty []int32 with capacity ≥ n, for append
// accumulation (no zeroing: the caller only appends).
func (a *Arena) Grab32Cap(n int) []int32 {
	if a == nil {
		return make([]int32, 0, n)
	}
	if s := grab(&a.i32, n); s != nil {
		return s[:0]
	}
	return make([]int32, 0, roundCap(n))
}

// Release32 returns a buffer obtained from Grab32/Grab32Cap to the pool.
// The caller must not use the slice (or any alias of its backing array)
// afterwards.
func (a *Arena) Release32(s []int32) {
	if a != nil {
		release(&a.i32, s)
	}
}

// Grab64 returns a zeroed []int64 of length n (recycled when possible).
func (a *Arena) Grab64(n int) []int64 {
	if a == nil {
		return make([]int64, n)
	}
	if s := grab(&a.i64, n); s != nil {
		clear(s)
		return s
	}
	return make([]int64, n, roundCap(n))
}

// Grab64Cap returns an empty []int64 with capacity ≥ n, for append
// accumulation (no zeroing: the caller only appends or overwrites).
func (a *Arena) Grab64Cap(n int) []int64 {
	if a == nil {
		return make([]int64, 0, n)
	}
	if s := grab(&a.i64, n); s != nil {
		return s[:0]
	}
	return make([]int64, 0, roundCap(n))
}

// Release64 returns a buffer obtained from Grab64/Grab64Cap to the pool.
func (a *Arena) Release64(s []int64) {
	if a != nil {
		release(&a.i64, s)
	}
}

// GrabEdges returns a zeroed []graph.Edge of length n (recycled when
// possible).
func (a *Arena) GrabEdges(n int) []graph.Edge {
	if a == nil {
		return make([]graph.Edge, n)
	}
	if s := grab(&a.edg, n); s != nil {
		clear(s)
		return s
	}
	return make([]graph.Edge, n, roundCap(n))
}

// GrabEdgesCap returns an empty edge slice with capacity ≥ n, for append
// accumulation (no zeroing: the caller only appends).
func (a *Arena) GrabEdgesCap(n int) []graph.Edge {
	if a == nil {
		return make([]graph.Edge, 0, n)
	}
	if s := grab(&a.edg, n); s != nil {
		return s[:0]
	}
	return make([]graph.Edge, 0, roundCap(n))
}

// ReleaseEdges returns a buffer obtained from GrabEdges/GrabEdgesCap to the
// pool.  Safe on slices whose backing array was swapped mid-solve (the
// current backing is pooled; the original is left to the GC).
func (a *Arena) ReleaseEdges(s []graph.Edge) {
	if a != nil {
		release(&a.edg, s)
	}
}
