package par

import (
	"testing"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// samplePipeline runs the full sampling fast path — identity init, sample
// rounds, flatten, majority vote, finish pass, flatten — and returns the
// labels plus the processed count, exactly as the solver composes the
// kernels.  useMajority selects the majority finish mode regardless of the
// measured coverage (both modes must produce the same partition).
func samplePipeline(r *Runtime, g *graph.Graph, rounds int, useMajority bool) ([]int32, int64) {
	p := make([]int32, g.N)
	r.Run(g.N, func(v int) { p[v] = int32(v) })
	csr := graph.BuildCSR(g)
	SampleUnite(r, p, csr, rounds)
	Compress(r, p)
	maj := int32(-1)
	if useMajority && g.N > 0 {
		maj, _ = MajorityRoot(r, p, 256, nil)
	}
	processed, _ := SkipUnite(r, p, csr, maj)
	Compress(r, p)
	return p, processed
}

func TestSamplePipelineMatchesBFS(t *testing.T) {
	for _, procs := range []int{1, 4} {
		r := New(Procs(procs), Grain(64), Seed(7))
		for name, g := range kernelGraphs() {
			for _, useMajority := range []bool{false, true} {
				labels, processed := samplePipeline(r, g, 2, useMajority)
				if !graph.SamePartition(bfsLabels(g), labels) {
					t.Errorf("procs=%d %s maj=%v: sample pipeline partition wrong", procs, name, useMajority)
				}
				if processed < 0 || processed > 2*int64(len(g.Edges)) {
					t.Errorf("procs=%d %s maj=%v: processed=%d out of [0,2m]", procs, name, useMajority, processed)
				}
				// The fixpoint of the CAS forest is min-labeled components.
				want := Components(r, g)
				for v := range want {
					if labels[v] != want[v] {
						t.Fatalf("procs=%d %s maj=%v: label[%d]=%d, want min-label %d",
							procs, name, useMajority, v, labels[v], want[v])
					}
				}
			}
		}
		r.Close()
	}
}

func TestSampleUniteSettlesDenseCommunities(t *testing.T) {
	// 16 cliques of 64: two sampling rounds must collapse nearly every
	// clique, so the finish pass unites almost none of the ~32k edges.
	g := gen.RingOfCliques(16, 64, 2, 3)
	r := New(Procs(2), Grain(128), Seed(1))
	defer r.Close()
	_, processed := samplePipeline(r, g, 2, false)
	if ratio := float64(processed) / float64(len(g.Edges)); ratio > 0.1 {
		t.Fatalf("processed ratio on ring-of-cliques = %.3f, want ≤ 0.1", ratio)
	}
}

func TestSampleUniteEnumeratesLowDegreeExactly(t *testing.T) {
	// Degree ≤ rounds vertices enumerate their adjacency deterministically,
	// so two rounds settle a path completely: the finish pass unites
	// nothing, in either mode (the path is one component, so it is its own
	// majority — vertex skips eliminate the whole pass).
	g := gen.Path(2000)
	r := New(Procs(2), Seed(5))
	defer r.Close()
	for _, useMajority := range []bool{false, true} {
		if _, processed := samplePipeline(r, g, 2, useMajority); processed != 0 {
			t.Fatalf("path maj=%v: processed %d edges, want 0", useMajority, processed)
		}
	}
}

func TestMajorityRootFindsDominantComponent(t *testing.T) {
	// One giant component (4/5 of vertices) plus scattered singletons.
	giant := gen.GNM(4000, 12000, 2)
	g := gen.Union(giant, graph.New(1000))
	r := New(Procs(2), Seed(9))
	defer r.Close()
	p := make([]int32, g.N)
	r.Run(g.N, func(v int) { p[v] = int32(v) })
	UniteBatch(r, p, g.Edges)
	Compress(r, p)
	root, cover := MajorityRoot(r, p, 512, nil)
	if want := Find(p, 0); root != want {
		t.Fatalf("majority root = %d, want the giant's root %d", root, want)
	}
	if cover < 0.6 || cover > 0.95 {
		t.Fatalf("majority coverage = %.3f, want ≈ 0.8", cover)
	}
}

func TestEstimateSkipHighOnSettledMultiBlock(t *testing.T) {
	// After the blocks collapse there is no majority component (8 equal
	// blocks), yet the skip estimate must stay near 1 — the signal that
	// distinguishes "no dominant root" from "nothing settled".
	g := gen.ManyComponents(8, func(i int) *graph.Graph {
		return gen.GNM(500, 2000, uint64(i+1))
	})
	r := New(Procs(2), Seed(11))
	defer r.Close()
	p := make([]int32, g.N)
	r.Run(g.N, func(v int) { p[v] = int32(v) })
	UniteBatch(r, p, g.Edges)
	Compress(r, p)
	if _, cover := MajorityRoot(r, p, 512, nil); cover > 0.3 {
		t.Fatalf("majority coverage = %.3f on 8 equal blocks, want ≤ 0.3", cover)
	}
	if est := EstimateSkip(r, p, g.Edges, 512); est < 0.95 {
		t.Fatalf("skip estimate = %.3f on a fully settled forest, want ≈ 1", est)
	}
	// On a fresh identity forest nothing is settled.
	r.Run(g.N, func(v int) { p[v] = int32(v) })
	if est := EstimateSkip(r, p, g.Edges, 512); est > 0.1 {
		t.Fatalf("skip estimate = %.3f on an identity forest, want ≈ 0", est)
	}
}

func TestSampleKernelsEdgeCases(t *testing.T) {
	r := New(Procs(2))
	defer r.Close()
	if root, cover := MajorityRoot(r, nil, 64, nil); root != -1 || cover != 0 {
		t.Fatalf("MajorityRoot(empty) = (%d, %v), want (-1, 0)", root, cover)
	}
	if est := EstimateSkip(r, nil, nil, 64); est != 1 {
		t.Fatalf("EstimateSkip(no edges) = %v, want 1 (nothing to process)", est)
	}
	g := graph.New(0)
	if processed, hooks := SkipUnite(r, nil, graph.BuildCSR(g), -1); processed != 0 || hooks != 0 {
		t.Fatalf("SkipUnite(empty) = %d, want 0", processed)
	}
}

func TestSkipUniteProcessesOnlyUnsettled(t *testing.T) {
	g := graph.FromPairs(4, [][2]int{{0, 0}, {0, 1}, {0, 1}, {2, 3}})
	r := New(Procs(1))
	defer r.Close()
	p := []int32{0, 1, 2, 3}
	// Nothing sampled, filtered mode: the self-loop falls out of the u > v
	// filter, the first (0,1) visit unites, the duplicate adjacency entry
	// is settled by then (sequential procs=1), and (2,3) unites.
	processed, hooks := SkipUnite(r, p, graph.BuildCSR(g), -1)
	if processed != 2 || hooks != 2 {
		t.Fatalf("processed, hooks = %d, %d, want 2, 2 (one Unite per component merge)", processed, hooks)
	}
	Compress(r, p)
	if p[1] != 0 || p[3] != 2 {
		t.Fatalf("labels = %v, want [0 0 2 2]", p)
	}
}

func TestSkipUniteMajorityModeRevisitsBoundary(t *testing.T) {
	// Majority mode must pick up edges that leave the majority component
	// from their non-majority endpoint: pretend {0,1} is the settled
	// majority and (1,2) is an unsettled boundary edge.
	g := graph.FromPairs(3, [][2]int{{0, 1}, {1, 2}})
	r := New(Procs(1))
	defer r.Close()
	p := []int32{0, 0, 2}
	if processed, _ := SkipUnite(r, p, graph.BuildCSR(g), 0); processed != 1 {
		t.Fatalf("processed = %d, want 1 (the boundary edge from vertex 2)", processed)
	}
	Compress(r, p)
	if p[2] != 0 {
		t.Fatalf("labels = %v, want all 0", p)
	}
}

func TestForRangesCoversEveryIndexOnce(t *testing.T) {
	r := New(Procs(4), Grain(16))
	defer r.Close()
	hits := make([]int32, 1000)
	r.ForRanges(len(hits), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	r.ForRanges(0, func(lo, hi int) { t.Fatal("body must not run for n=0") })
}
