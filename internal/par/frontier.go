// Frontier is the active-vertex-set machinery of the frontier-driven solve
// engine: a dual-representation set that switches between a dense bitmap
// and a sparse compacted list on occupancy, in the direction-optimizing
// style of Beamer-style BFS and Ligra's vertex_map/edge_map.  The engine
// built on it (FrontierPropagate, FrontierUnite) does per-round work
// proportional to the frontier, not to n or m: a round touches exactly the
// vertices whose labels changed last round, which is what wins the
// high-diameter mesh regime (grids, tori, paths) where every dense-round
// algorithm pays rounds × m.
//
// Representation contract:
//
//   - full: every vertex in [0,n) is active.  No bitmap bits are set and
//     no list is built — iteration is a plain range scan with no bit
//     tests, so seeding a cold solve costs nothing.
//   - dense: activity lives in the bitmap only.  Iteration scans the words
//     (skipping zero words 64 vertices at a time) and zeroes each word as
//     it is consumed, so clearing is folded into the scan.
//   - sparse: adds also append to the compacted list through an atomic
//     reservation cursor, and iteration walks the list directly — work
//     exactly |F|, independent of n.
//
// The collection mode of the next frontier is chosen before each round
// from the current occupancy (the predictor direction-optimizing BFS
// uses); frontierSparseFrac holds the measured threshold.  All storage is
// arena-backed: a session reuses one Frontier pair across solves, so the
// warm path allocates nothing (pinned by TestFrontierAllocs).
//
// Concurrency: Add is safe from any number of loop-body goroutines (CAS on
// the bitmap word, atomic cursor reservation for the list); everything
// else — BeginCollect, Clear, iteration setup — is orchestration, owned by
// the single goroutine driving the runtime, like the Arena it draws from.
package par

import (
	"math/bits"
	"sync/atomic"

	"parcc/internal/graph"
)

// frontierSparseFrac is the occupancy divisor of the representation
// switch: the next frontier is collected sparse when the current one holds
// at most n/frontierSparseFrac vertices.  Measured on this container with
// the SOLVE mesh families: the sparse list pays its reservation cursor and
// random-order iteration back once occupancy drops below a few percent of
// n, while above it the bitmap's sequential word scan (64 vertices per
// load, zeroed as consumed) is strictly cheaper.  1/32 ≈ 3% sits safely
// inside the regime where both choices were within noise.
const frontierSparseFrac = 32

// Frontier is one active-vertex set.  Construct with NewFrontier; a
// session keeps a pair and swaps them between rounds.
type Frontier struct {
	n     int
	words []int64 // bitmap, ceil(n/64) words, arena-backed
	list  []int32 // sparse compaction target, n entries, arena-backed
	tail  atomic.Int64
	cnt   atomic.Int64
	// collect marks sparse collection mode (adds also append to list);
	// full marks the all-of-[0,n) representation.
	collect bool
	full    bool
}

// NewFrontier returns an empty frontier over [0,n) with arena-backed
// storage (nil arena degrades to plain allocation, like every arena user).
// The struct itself is the only allocation a session pays; Resize within
// the grabbed capacity and all engine rounds allocate nothing.
func NewFrontier(a *Arena, n int) *Frontier {
	f := &Frontier{n: n}
	f.words = a.Grab64((n + 63) / 64)
	// No zeroing needed: only slots written through the reservation
	// cursor this round are ever read back.
	f.list = a.Grab32Cap(n)[:n]
	return f
}

// Free returns the frontier's storage to the arena.  The frontier must not
// be used afterwards.
func (f *Frontier) Free(a *Arena) {
	a.Release64(f.words)
	a.Release32(f.list)
	f.words, f.list = nil, nil
}

// Cap reports the vertex capacity Resize can grow to without new storage.
func (f *Frontier) Cap() int {
	c := cap(f.list)
	if w := 64 * cap(f.words); w < c {
		c = w
	}
	return c
}

// Resize re-views an empty frontier over [0,n); n must be within Cap().
// Emptiness is the standing invariant between uses (every consumer clears
// as it iterates), so no storage needs rezeroing.
func (f *Frontier) Resize(n int) {
	f.n = n
	f.words = f.words[:(n+63)/64]
	f.list = f.list[:n]
}

// Count returns the number of active vertices.
func (f *Frontier) Count() int64 { return f.cnt.Load() }

// Sparse reports whether the frontier holds a compacted list (it was
// collected in sparse mode), making Len/At valid.
func (f *Frontier) Sparse() bool { return f.collect && !f.full }

// Len returns the indexable length for At: n when full, the list length
// when sparse, 0 for a bitmap-only frontier (iterate via the engine
// kernels instead).
func (f *Frontier) Len() int {
	if f.full {
		return f.n
	}
	if f.collect {
		return int(f.tail.Load())
	}
	return 0
}

// At returns the i-th active vertex of a full or sparse frontier
// (i < Len()).  Sparse order is collection order — deterministic only for
// single-proc runs; consumers must not depend on it.
func (f *Frontier) At(i int) int32 {
	if f.full {
		return int32(i)
	}
	return f.list[i]
}

// Has reports whether v is active — the membership probe of the
// replacement-edge search, which uses a sparse-collected frontier as a
// combined BFS queue (the list, walked by index) and visited set (the
// bitmap).  The atomic load makes it safe alongside concurrent Adds.
func (f *Frontier) Has(v int32) bool {
	if f.full {
		return true
	}
	return atomic.LoadInt64(&f.words[v>>6])&(1<<uint(v&63)) != 0
}

// BeginCollect readies an empty frontier to receive Adds: sparse selects
// list collection (Len/At become valid), false bitmap-only.
func (f *Frontier) BeginCollect(sparse bool) {
	f.collect = sparse
	f.full = false
	f.tail.Store(0)
}

// SeedAll makes the frontier the full set [0,n) — the cold-solve seed.  No
// bits are set: full-mode iteration needs none, and Clear is free.
func (f *Frontier) SeedAll() {
	f.full = true
	f.collect = false
	f.cnt.Store(int64(f.n))
}

// Add activates v.  Idempotent (the bitmap dedups) and safe from
// concurrent loop bodies; in sparse collection mode the deduplicated
// vertex is also appended to the list through the reservation cursor.
func (f *Frontier) Add(v int32) {
	if f.add(v, false) {
		f.cnt.Add(1)
	}
}

// add is Add without the occupancy bump, reporting whether v was newly
// activated — the engine bodies count activations in a chunk-local and
// fold them into cnt once per chunk, instead of paying an atomic add per
// activation.  seq selects plain bitmap stores for a single-proc runtime
// (the CAS loop's only job is racing other procs).  The list reservation
// cursor stays atomic either way: appends are rare (sparse rounds only)
// and an uncontended Add is nearly free.
func (f *Frontier) add(v int32, seq bool) bool {
	w, b := v>>6, uint(v&63)
	if seq {
		if f.words[w]&(1<<b) != 0 {
			return false
		}
		f.words[w] |= 1 << b
	} else {
		for {
			old := atomic.LoadInt64(&f.words[w])
			if old&(1<<b) != 0 {
				return false
			}
			if atomic.CompareAndSwapInt64(&f.words[w], old, old|(1<<b)) {
				break
			}
		}
	}
	if f.collect {
		f.list[f.tail.Add(1)-1] = v
	}
	return true
}

// Clear empties the frontier in O(active) — full mode drops the flag,
// sparse mode zeroes exactly the words its list entries touched, a
// bitmap-only frontier pays the word scan.  Orchestrator-only.
func (f *Frontier) Clear() {
	if f.full {
		f.full = false
	} else if f.collect {
		for _, v := range f.list[:f.tail.Load()] {
			f.words[v>>6] = 0
		}
		f.tail.Store(0)
	} else if f.cnt.Load() != 0 {
		clear(f.words)
	}
	f.collect = false
	f.cnt.Store(0)
}

// afterConsume is Clear for a frontier whose bitmap the engine iterators
// already zeroed word-by-word as they consumed it (the dense case); only
// the sparse list sweep and the flags remain.
func (f *Frontier) afterConsume() {
	if f.full {
		f.full = false
	} else if f.collect {
		for _, v := range f.list[:f.tail.Load()] {
			f.words[v>>6] = 0
		}
		f.tail.Store(0)
	}
	f.collect = false
	f.cnt.Store(0)
}

// FrontierStats is the per-invocation accounting of the engine kernels:
// rounds executed, adjacency entries inspected (the work ∝ frontier
// measure the trace reports against dense rounds × 2m), successful label
// lowerings, and dense↔sparse representation switches between rounds.
type FrontierStats struct {
	Rounds    int
	Inspected int64
	Lowered   int64
	Switches  int
}

// FrontierPropagate runs asynchronous minimum-label propagation to
// fixpoint, driven by the frontier: each round processes exactly the
// active vertices, comparing labels across their incident edges in both
// directions — a larger neighbor label is CAS-lowered and the neighbor
// activated (push), a smaller one lowers the vertex itself, which then
// re-activates to announce its improvement (pull).  New labels are visible
// immediately within the round, so a path or grid chunk floods to its
// minimum in one in-order pass instead of Θ(diameter) synchronous rounds.
//
// Labels must be initialized by the caller (identity for a cold solve) and
// cur seeded with every vertex whose label may need recomputing — SeedAll
// for cold solves, the dirty set for scoped repair.  The fixpoint is the
// per-component minimum of the initial labels, deterministic for any procs
// and schedule (labels only decrease and every decrease re-activates its
// vertex, so an unsettled edge is always revisited); round counts and
// occupancies are schedule-dependent beyond one proc.  Both frontiers are
// left empty.  onRound, when non-nil, observes each round's occupancy and
// representation before it runs (the trace hook); pass nil on the
// tracing-off path.
func FrontierPropagate(rt *Runtime, labels []int32, csr *graph.CSR, cur, next *Frontier, onRound func(occ int64, dense bool)) FrontierStats {
	var st FrontierStats
	var insp, low atomic.Int64
	n := cur.n
	// One predictable branch per label change selects plain stores when
	// the runtime is single-proc: the CAS loop's only job is racing other
	// procs, and per-edge it is the engine's dominant atomic cost.
	seq := rt.Procs() == 1
	// Hoisted bodies: src/dst are captured cells the round loop swaps, so
	// the whole fixpoint shares one closure set (no per-round allocation).
	src, dst := cur, next
	// lower drops labels[u] to x when that improves it.  Called only on
	// label-changing edges (~n per component, not 2m), so the closure call
	// stays off the scan's hot path.
	lower := func(u, x int32) bool {
		if seq {
			if labels[u] > x {
				labels[u] = x
				return true
			}
			return false
		}
		return lowerMin(labels, u, x)
	}
	visit := func(v int32) (li, ll, act int64) {
		lv := atomic.LoadInt32(&labels[v])
		off, end := csr.Off[v], csr.Off[v+1]
		li = end - off
		for i := off; i < end; i++ {
			u := csr.Nbr[i]
			lu := atomic.LoadInt32(&labels[u])
			if lu == lv {
				continue
			}
			if lu > lv {
				if lower(u, lv) {
					ll++
					if dst.add(u, seq) {
						act++
					}
				}
				// A lost race means someone lowered u below lv and
				// re-activated it themselves.
			} else {
				if lower(v, lu) {
					ll++
				}
				// Whoever holds the winning CAS may be a concurrent
				// pusher; either way v's label dropped, so continue the
				// scan with the improvement and re-activate v to push it
				// to the neighbors already passed.
				if nl := atomic.LoadInt32(&labels[v]); nl < lv {
					lv = nl
					if dst.add(v, seq) {
						act++
					}
				}
			}
		}
		return li, ll, act
	}
	// fullBody is the cold-solve seed round, where re-activation can
	// mostly be elided: chunks iterate ascending, so a neighbor u with
	// v < u < hi is provably visited later in this very chunk and will
	// pull v's improvement itself — no frontier write needed.  Only
	// out-of-chunk effects activate: pushes to already-passed or
	// foreign-chunk vertices, and a re-announce of v when a pull left an
	// already-scanned out-of-chunk neighbor (which keeps its label —
	// maxOut tracks the largest such) above v's final label.  On id-local
	// meshes the seed round floods whole chunks this way and the next
	// frontier collapses to the chunk boundaries.  The seed round is ~2m
	// inspections — the engine's dominant cost — so the single-proc
	// variant is the same loop rewritten over plain loads and stores with
	// the lowerings inlined: shaving the atomics and the lower calls off
	// this inner loop is what lets the engine undercut the union-find
	// kernels on mesh families at procs=1.  Exactly one of the two
	// bodies is materialized, keeping the closure set's size fixed.
	var fullBody func(lo, hi, c int)
	if seq {
		fullBody = func(lo, hi, _ int) {
			var li, ll, act int64
			for v := int32(lo); v < int32(hi); v++ {
				lv := labels[v]
				off, end := csr.Off[v], csr.Off[v+1]
				li += end - off
				maxOut := int32(-1)
				for i := off; i < end; i++ {
					u := csr.Nbr[i]
					lu := labels[u]
					if lu == lv {
						if (u < v || int(u) >= hi) && lu > maxOut {
							maxOut = lu
						}
						continue
					}
					if lu > lv {
						labels[u] = lv
						ll++
						if u > v && int(u) < hi {
							continue // visited later in this chunk: it pulls from v
						}
						if dst.add(u, true) {
							act++
						}
						continue
					}
					labels[v] = lu
					lv = lu
					ll++
					if (u < v || int(u) >= hi) && lu > maxOut {
						maxOut = lu
					}
				}
				if maxOut > lv {
					if dst.add(v, true) {
						act++
					}
				}
			}
			insp.Add(li)
			low.Add(ll)
			if act > 0 {
				dst.cnt.Add(act)
			}
		}
	} else {
		fullBody = func(lo, hi, _ int) {
			var li, ll, act int64
			for v := int32(lo); v < int32(hi); v++ {
				lv := atomic.LoadInt32(&labels[v])
				off, end := csr.Off[v], csr.Off[v+1]
				li += end - off
				maxOut := int32(-1)
				for i := off; i < end; i++ {
					u := csr.Nbr[i]
					lu := atomic.LoadInt32(&labels[u])
					if lu == lv {
						if (u < v || int(u) >= hi) && lu > maxOut {
							maxOut = lu
						}
						continue
					}
					if lu > lv {
						if lowerMin(labels, u, lv) {
							ll++
							if u > v && int(u) < hi {
								continue // visited later in this chunk: it pulls from v
							}
							if dst.add(u, false) {
								act++
							}
						}
						continue
					}
					if lowerMin(labels, v, lu) {
						ll++
					}
					if nl := atomic.LoadInt32(&labels[v]); nl < lv {
						lv = nl
					}
					if (u < v || int(u) >= hi) && lu > maxOut {
						maxOut = lu
					}
				}
				if maxOut > lv {
					if dst.add(v, false) {
						act++
					}
				}
			}
			insp.Add(li)
			low.Add(ll)
			if act > 0 {
				dst.cnt.Add(act)
			}
		}
	}
	listBody := func(lo, hi, _ int) {
		var li, ll, act int64
		lst := src.list
		for i := lo; i < hi; i++ {
			a, b, c := visit(lst[i])
			li += a
			ll += b
			act += c
		}
		insp.Add(li)
		low.Add(ll)
		if act > 0 {
			dst.cnt.Add(act)
		}
	}
	wordBody := func(lo, hi, _ int) {
		var li, ll, act int64
		ws := src.words
		for w := lo; w < hi; w++ {
			x := ws[w]
			if x == 0 {
				continue
			}
			// Consume the word: adds this round target dst's bitmap, and
			// each word is owned by exactly one chunk, so the plain store
			// is race-free.
			ws[w] = 0
			base := int32(w << 6)
			for x != 0 {
				a, b, c := visit(base + int32(bits.TrailingZeros64(uint64(x))))
				x &= x - 1
				li += a
				ll += b
				act += c
			}
		}
		insp.Add(li)
		low.Add(ll)
		if act > 0 {
			dst.cnt.Add(act)
		}
	}

	prevDense := false
	for src.Count() > 0 {
		st.Rounds++
		// Predict the next round's representation from this occupancy.
		dst.BeginCollect(src.Count() <= int64(n)/frontierSparseFrac)
		dense := !src.Sparse()
		if st.Rounds > 1 && dense != prevDense {
			st.Switches++
		}
		prevDense = dense
		if onRound != nil {
			onRound(src.Count(), dense)
		}
		switch {
		case src.full:
			rt.ForSpans(n, fullBody)
		case src.Sparse():
			rt.ForSpans(src.Len(), listBody)
		default:
			rt.ForSpans(len(src.words), wordBody)
		}
		src.afterConsume()
		src, dst = dst, src
	}
	st.Inspected = insp.Load()
	st.Lowered = low.Load()
	return st
}

// finishVertex is the per-vertex body of the sampling finish pass, shared
// by SkipUnite (which drives it over the full vertex range) and
// FrontierUnite (which drives it from an active-vertex set): neighbors
// sharing the vertex's cached root pv are dismissed with one load, the
// rest go through Unite.  maj ≥ 0 keeps majority-mode semantics (the
// caller skips majority vertices before calling); maj < 0 is the
// direction-filtered mode (only u > v processed).
func finishVertex(p []int32, csr *graph.CSR, maj, v, pv int32) (att, hk int64) {
	off, end := csr.Off[v], csr.Off[v+1]
	if maj >= 0 {
		for i := off; i < end; i++ {
			u := csr.Nbr[i]
			if u == v || atomic.LoadInt32(&p[u]) == pv {
				continue
			}
			att++
			if Unite(p, v, u) {
				hk++
			}
		}
	} else {
		for i := off; i < end; i++ {
			u := csr.Nbr[i]
			if u <= v || atomic.LoadInt32(&p[u]) == pv {
				continue
			}
			att++
			if Unite(p, v, u) {
				hk++
			}
		}
	}
	return att, hk
}

// finishSpan applies finishVertex to the vertex range [lo,hi), with the
// majority skip test inline (one sequential root load per vertex — the
// full-frontier mode of the finish kernel).
func finishSpan(p []int32, csr *graph.CSR, maj int32, lo, hi int) (att, hk int64) {
	for v := lo; v < hi; v++ {
		pv := atomic.LoadInt32(&p[v])
		if pv == maj {
			continue
		}
		a, h := finishVertex(p, csr, maj, int32(v), pv)
		att += a
		hk += h
	}
	return att, hk
}

// FrontierUnite is the finish pass scoped to an active-vertex set: exactly
// the frontier's vertices run finishVertex, so the work is Σ deg over the
// frontier instead of n + Σ deg over everything — the seeded form the
// incremental machinery feeds (touched endpoints, dirty regions).  Sound
// whenever every unsettled edge is incident to the frontier (the caller's
// seeding contract); the fixpoint then equals a full Unite pass: component
// minima, deterministic for any procs and schedule.  The frontier is
// consumed (left empty).  Counts are per-chunk locals folded once, like
// SkipUnite's.
//
// maj has SkipUnite's semantics with one extra obligation on partial
// seeds: the maj < 0 direction filter assumes every vertex runs (each edge
// is covered from its lower endpoint), so a partially seeded frontier must
// pass either a true majority root or a value no root can take —
// int32(len(p)) is the canonical "skip nothing, filter nothing" sentinel.
func FrontierUnite(rt *Runtime, p []int32, csr *graph.CSR, f *Frontier, maj int32) (attempts, hooks int64) {
	var att, hk atomic.Int64
	switch {
	case f.full:
		rt.ForRanges(f.n, func(lo, hi int) {
			a, h := finishSpan(p, csr, maj, lo, hi)
			att.Add(a)
			hk.Add(h)
		})
	case f.Sparse():
		lst := f.list
		rt.ForRanges(f.Len(), func(lo, hi int) {
			var la, lh int64
			for i := lo; i < hi; i++ {
				v := lst[i]
				if pv := atomic.LoadInt32(&p[v]); pv != maj {
					a, h := finishVertex(p, csr, maj, v, pv)
					la += a
					lh += h
				}
			}
			att.Add(la)
			hk.Add(lh)
		})
	default:
		ws := f.words
		rt.ForRanges(len(ws), func(lo, hi int) {
			var la, lh int64
			for w := lo; w < hi; w++ {
				x := ws[w]
				if x == 0 {
					continue
				}
				ws[w] = 0
				base := int32(w << 6)
				for x != 0 {
					v := base + int32(bits.TrailingZeros64(uint64(x)))
					x &= x - 1
					if pv := atomic.LoadInt32(&p[v]); pv != maj {
						a, h := finishVertex(p, csr, maj, v, pv)
						la += a
						lh += h
					}
				}
			}
			att.Add(la)
			hk.Add(lh)
		})
	}
	f.afterConsume()
	return att.Load(), hk.Load()
}
