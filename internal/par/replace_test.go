package par

import (
	"testing"

	"parcc/internal/graph"
)

// replaceFixture builds a DynForest over pairs with the given forest
// flags, a flat parent array labeling every vertex with root, and a
// frontier pair — the exact state ReplacementSearch sees inside a
// deletion batch.
func replaceFixture(n int, pairs [][2]int, forest []bool, root int32) (*graph.DynForest, []int32, *Frontier, *Frontier) {
	g := graph.FromPairs(n, pairs)
	df := graph.NewDynForest(g)
	df.SetForestAll(forest)
	p := make([]int32, n)
	for i := range p {
		p[i] = root
	}
	return df, p, NewFrontier(nil, n), NewFrontier(nil, n)
}

func TestReplacementSearchFindsCrossing(t *testing.T) {
	// Square 0-1-2-3 with forest edges {0,1},{1,2},{2,3} and non-forest
	// closing edge {3,0}.  Deleting forest edge {1,2} must promote {3,0}.
	df, p, fu, fv := replaceFixture(4,
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
		[]bool{true, true, true, false}, 0)
	df.Remove(df.PickRemovable(graph.Edge{U: 1, V: 2}.CanonKey()))
	res := ReplacementSearch(df, p, 1, 2, fu, fv, 1<<20)
	if res.Outcome != ReplaceFound {
		t.Fatalf("outcome = %v, want ReplaceFound", res.Outcome)
	}
	e := graph.Edge{U: df.U(res.Handle), V: df.V(res.Handle)}
	if e.CanonKey() != (graph.Edge{U: 3, V: 0}).CanonKey() {
		t.Fatalf("replacement = {%d,%d}, want {3,0}", e.U, e.V)
	}
	for v, pv := range p {
		if pv != 0 {
			t.Fatalf("found-replacement search mutated labels (p[%d]=%d)", v, pv)
		}
	}
	if fu.Count() != 0 || fv.Count() != 0 || fu.Len() != 0 {
		t.Fatal("frontiers must be left empty")
	}
}

func TestReplacementSearchSplitRelabelsNonRootSide(t *testing.T) {
	// Path 0-1-2-3-4, all forest, rooted at 0.  Deleting {1,2} splits;
	// the side holding root 0 must keep its labels and the far side
	// {2,3,4} must be relabeled flat to its BFS seed.
	df, p, fu, fv := replaceFixture(5,
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}},
		[]bool{true, true, true, true}, 0)
	df.Remove(df.PickRemovable(graph.Edge{U: 1, V: 2}.CanonKey()))
	res := ReplacementSearch(df, p, 1, 2, fu, fv, 1<<20)
	if res.Outcome != ReplaceSplit {
		t.Fatalf("outcome = %v, want ReplaceSplit", res.Outcome)
	}
	if res.NewRoot != 2 || res.Moved != 3 {
		t.Fatalf("split = root %d moved %d, want root 2 moved 3", res.NewRoot, res.Moved)
	}
	for v, want := range []int32{0, 0, 2, 2, 2} {
		if p[v] != want {
			t.Fatalf("p = %v, want [0 0 2 2 2]", p)
		}
	}
}

func TestReplacementSearchSplitRootOnSmallerSide(t *testing.T) {
	// Same path rooted at the END: root 4 sits on the side whose BFS
	// exhausts second when {3,4} is cut (side {4} exhausts first and
	// holds the root... so test the other orientation: cut {0,1} with
	// root 0 — the exhausting side {0} holds the root, forcing the
	// kernel to enumerate and relabel the complement {1,2,3,4}.
	df, p, fu, fv := replaceFixture(5,
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}},
		[]bool{true, true, true, true}, 0)
	df.Remove(df.PickRemovable(graph.Edge{U: 0, V: 1}.CanonKey()))
	res := ReplacementSearch(df, p, 0, 1, fu, fv, 1<<20)
	if res.Outcome != ReplaceSplit {
		t.Fatalf("outcome = %v, want ReplaceSplit", res.Outcome)
	}
	if res.NewRoot != 1 || res.Moved != 4 {
		t.Fatalf("split = root %d moved %d, want root 1 moved 4 (complement of the root's side)",
			res.NewRoot, res.Moved)
	}
	for v, want := range []int32{0, 1, 1, 1, 1} {
		if p[v] != want {
			t.Fatalf("p = %v, want [0 1 1 1 1]", p)
		}
	}
}

func TestReplacementSearchBudgetMutatesNothing(t *testing.T) {
	// Long path: the split verdict needs ~2n scans, far over a budget of 4.
	n := 64
	pairs := make([][2]int, n-1)
	forest := make([]bool, n-1)
	for i := range pairs {
		pairs[i] = [2]int{i, i + 1}
		forest[i] = true
	}
	df, p, fu, fv := replaceFixture(n, pairs, forest, 0)
	df.Remove(df.PickRemovable(graph.Edge{U: 31, V: 32}.CanonKey()))
	res := ReplacementSearch(df, p, 31, 32, fu, fv, 4)
	if res.Outcome != ReplaceBudget {
		t.Fatalf("outcome = %v, want ReplaceBudget", res.Outcome)
	}
	for v, pv := range p {
		if pv != 0 {
			t.Fatalf("budget bailout mutated labels (p[%d]=%d)", v, pv)
		}
	}
	if fu.Count() != 0 || fv.Count() != 0 {
		t.Fatal("frontiers must be left empty on budget bailout")
	}
	// The same search with budget restored succeeds and relabels.
	if res = ReplacementSearch(df, p, 31, 32, fu, fv, 1<<20); res.Outcome != ReplaceSplit {
		t.Fatalf("re-run outcome = %v, want ReplaceSplit", res.Outcome)
	}
}

func TestFrontierHas(t *testing.T) {
	f := NewFrontier(nil, 130)
	f.BeginCollect(true)
	f.Add(0)
	f.Add(129)
	if !f.Has(0) || !f.Has(129) || f.Has(64) {
		t.Fatal("Has must mirror Add membership")
	}
	f.Clear()
	if f.Has(0) || f.Has(129) {
		t.Fatal("Clear must empty Has membership")
	}
	f.SeedAll()
	if !f.Has(64) {
		t.Fatal("full frontier contains every vertex")
	}
	f.Clear()
}
