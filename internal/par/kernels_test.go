package par

import (
	"testing"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// bfsLabels is an independent sequential ground truth (duplicated from
// internal/baseline to keep par's dependencies minimal).
func bfsLabels(g *graph.Graph) []int32 {
	adj := make([][]int32, g.N)
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	labels := make([]int32, g.N)
	for i := range labels {
		labels[i] = -1
	}
	for s := 0; s < g.N; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = int32(s)
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range adj[v] {
				if labels[w] < 0 {
					labels[w] = int32(s)
					queue = append(queue, w)
				}
			}
		}
	}
	return labels
}

func kernelGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":     graph.New(0),
		"isolated":  graph.New(25),
		"path":      gen.Path(500),
		"two-cycle": gen.TwoCycles(401),
		"expander":  gen.RandomRegular(1024, 4, 1),
		"gnm":       gen.GNM(700, 900, 3),
		"union":     gen.Union(gen.Grid(9, 11), gen.Star(40), graph.New(7)),
		"loops":     graph.FromPairs(5, [][2]int{{0, 0}, {1, 2}, {3, 3}, {3, 4}}),
	}
}

func TestComponentsMatchesBFS(t *testing.T) {
	for _, procs := range []int{1, 4} {
		r := New(Procs(procs), Grain(64))
		for name, g := range kernelGraphs() {
			labels := Components(r, g)
			if !graph.SamePartition(bfsLabels(g), labels) {
				t.Errorf("procs=%d %s: wrong partition", procs, name)
			}
			// Unite-by-min makes labels exactly the component minimum.
			for v, l := range labels {
				if l > int32(v) {
					t.Errorf("procs=%d %s: label[%d]=%d not the component min", procs, name, v, l)
					break
				}
			}
		}
		r.Close()
	}
}

func TestComponentsDeterministicAcrossProcs(t *testing.T) {
	g := gen.GNM(2000, 3000, 7)
	r1 := New(Procs(1))
	defer r1.Close()
	want := Components(r1, g)
	for _, procs := range []int{2, 8} {
		r := New(Procs(procs), Grain(128))
		got := Components(r, g)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("procs=%d: label[%d]=%d, want %d", procs, v, got[v], want[v])
			}
		}
		r.Close()
	}
}

func TestUniteFindSequentialSemantics(t *testing.T) {
	p := []int32{0, 1, 2, 3, 4}
	if Unite(p, 0, 0) {
		t.Fatal("self-unite should report false")
	}
	if !Unite(p, 3, 4) || Find(p, 4) != 3 || Find(p, 3) != 3 {
		t.Fatal("unite(3,4) should root at 3")
	}
	if !Unite(p, 4, 1) || Find(p, 3) != 1 {
		t.Fatal("unite(4,1) should re-root the {3,4} set at 1")
	}
	if Unite(p, 1, 3) {
		t.Fatal("already united")
	}
}

func TestCompressFlattensArbitraryForest(t *testing.T) {
	// A forest with increasing parent pointers (like the FLS stages build):
	// 0<-1<-2<-3<-4 rooted at 0... actually chain v -> v+1 rooted at 4,
	// plus a second chain rooted at 9 — Compress must not need p[v] <= v.
	p := []int32{1, 2, 3, 4, 4, 6, 7, 8, 9, 9}
	r := New(Procs(4), Grain(2))
	defer r.Close()
	Compress(r, p)
	for v := 0; v <= 4; v++ {
		if p[v] != 4 {
			t.Fatalf("p[%d]=%d, want 4", v, p[v])
		}
	}
	for v := 5; v <= 9; v++ {
		if p[v] != 9 {
			t.Fatalf("p[%d]=%d, want 9", v, p[v])
		}
	}
}

func TestPropagateMinFixpoint(t *testing.T) {
	g := gen.Union(gen.Cycle(101), gen.Path(57))
	r := New(Procs(4), Grain(32))
	defer r.Close()
	labels := make([]int32, g.N)
	r.For(g.N, func(v int) { labels[v] = int32(v) })
	rounds := PropagateMin(r, g.Edges, labels)
	if rounds < 2 {
		t.Fatalf("implausibly few rounds: %d", rounds)
	}
	if !graph.SamePartition(bfsLabels(g), labels) {
		t.Fatal("wrong partition")
	}
	for v, l := range labels {
		if l > int32(v) {
			t.Fatalf("label[%d]=%d not the minimum", v, l)
		}
	}
}

func TestCompactMatchesSequentialFilter(t *testing.T) {
	n := 50_000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i * 3
	}
	keep := func(i int) bool { return i%7 == 0 || i%11 == 3 }
	var want []int
	for i, x := range xs {
		if keep(i) {
			want = append(want, x)
		}
	}
	for _, procs := range []int{1, 6} {
		r := New(Procs(procs))
		got := Compact(r, xs, keep)
		if len(got) != len(want) {
			t.Fatalf("procs=%d: len %d, want %d", procs, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("procs=%d: got[%d]=%d, want %d", procs, i, got[i], want[i])
			}
		}
		r.Close()
	}
}

func TestCompactIndices(t *testing.T) {
	r := New(Procs(4))
	defer r.Close()
	idx := CompactIndices(r, 20_000, func(i int) bool { return i%1000 == 1 })
	if len(idx) != 20 {
		t.Fatalf("len = %d", len(idx))
	}
	for k, i := range idx {
		if int(i) != k*1000+1 {
			t.Fatalf("idx[%d] = %d", k, i)
		}
	}
	if got := CompactIndices(nil, 10, func(i int) bool { return i > 7 }); len(got) != 2 {
		t.Fatalf("nil exec fallback: %v", got)
	}
}

func TestUniteStressParallel(t *testing.T) {
	// Many goroutines uniting overlapping edges of one big cycle: the result
	// must still be a single min-rooted component.
	n := 1 << 14
	g := gen.Cycle(n)
	r := New(Procs(8), Grain(256))
	defer r.Close()
	for trial := 0; trial < 4; trial++ {
		labels := Components(r, g)
		for v := range labels {
			if labels[v] != 0 {
				t.Fatalf("trial %d: label[%d]=%d", trial, v, labels[v])
			}
		}
	}
}
