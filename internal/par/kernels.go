// Lock-free kernels for the paper's primitives on flat int32 arrays.  All of
// them tolerate arbitrary interleavings: hooking uses compare-and-swap with a
// monotone direction (roots only ever acquire strictly smaller parents), so
// the parent forest stays acyclic and converges to min-labeled components no
// matter which writer wins — the ARBITRARY CRCW obligation realized with
// hardware primitives.
package par

import (
	"sync/atomic"

	"parcc/internal/graph"
)

// Find returns the root of v in the parent array p, compressing the visited
// path by halving (each step CASes v's parent to its grandparent).  Safe
// under concurrent Find/Unite: parents only ever decrease, so chases
// terminate and failed CASes are benign.
func Find(p []int32, v int32) int32 {
	for {
		pv := atomic.LoadInt32(&p[v])
		if pv == v {
			return v
		}
		gp := atomic.LoadInt32(&p[pv])
		if gp == pv {
			return pv
		}
		// Path halving; a lost race just means someone else lowered it.
		atomic.CompareAndSwapInt32(&p[v], pv, gp)
		v = gp
	}
}

// Unite links the sets of u and v by hooking the larger root under the
// smaller (unite-by-min), retrying on contention.  It reports whether the
// two were in distinct sets.  Because roots only acquire strictly smaller
// parents, the forest is acyclic under any interleaving and every set's root
// is its minimum element — which makes the fixpoint of a Unite pass over an
// edge list deterministic: p[v] chases to the minimum vertex of v's
// component.
func Unite(p []int32, u, v int32) bool {
	for {
		ru, rv := Find(p, u), Find(p, v)
		if ru == rv {
			return false
		}
		if ru < rv {
			ru, rv = rv, ru
		}
		// ru > rv: hook ru under rv if ru is still a root.
		if atomic.CompareAndSwapInt32(&p[ru], ru, rv) {
			return true
		}
	}
}

// Compress is full pointer jumping: after it returns, p[v] is the root of
// v's tree for every v.  It works on any acyclic parent forest (parent
// pointers need not decrease) because concurrent writes only replace a
// pointer with that vertex's root, which preserves root reachability and
// only shortens chases.
func Compress(e Exec, p []int32) {
	e.Run(len(p), func(v int) {
		// Two-try fast path: in the forests this runs on (post-Unite, or
		// re-flattening after an incremental batch) almost every vertex is
		// a root or points at one, so the common cases resolve from the
		// loads alone — a root needs no write, and a vertex whose parent
		// is a root is already flat.  Only depth ≥ 2 chains pay the chase
		// and the store.
		pv := atomic.LoadInt32(&p[v])
		if pv == int32(v) {
			return
		}
		gp := atomic.LoadInt32(&p[pv])
		if gp == pv {
			return
		}
		atomic.StoreInt32(&p[v], chase(p, gp))
	})
}

// chase follows parent pointers to the root without writing.
func chase(p []int32, v int32) int32 {
	for {
		pv := atomic.LoadInt32(&p[v])
		if pv == v {
			return v
		}
		v = pv
	}
}

// PropagateMin runs synchronous minimum-label propagation over the edge list
// to fixpoint: each round every edge CAS-lowers both endpoint labels to the
// other side's, until no label moves.  Labels must be initialized by the
// caller (identity for component labeling).  Returns the number of rounds —
// Θ(diameter) on a connected graph.  The fixpoint (per-component minimum of
// the initial labels) is deterministic.
func PropagateMin(e Exec, edges []graph.Edge, labels []int32) int {
	rounds := 0
	changed := int32(1)
	for changed != 0 {
		changed = 0
		rounds++
		e.Run(len(edges), func(i int) {
			ed := edges[i]
			a := lowerMin(labels, ed.U, atomic.LoadInt32(&labels[ed.V]))
			b := lowerMin(labels, ed.V, atomic.LoadInt32(&labels[ed.U]))
			if a || b {
				atomic.StoreInt32(&changed, 1)
			}
		})
	}
	return rounds
}

// lowerMin CAS-lowers labels[v] to x if x is smaller; reports whether it did.
func lowerMin(labels []int32, v int32, x int32) bool {
	for {
		cur := atomic.LoadInt32(&labels[v])
		if x >= cur {
			return false
		}
		if atomic.CompareAndSwapInt32(&labels[v], cur, x) {
			return true
		}
	}
}

// Compact returns the xs[i] with keep(i), in index order — the parallel
// compaction primitive (count per block, exclusive scan, scatter).  Output
// is identical to the sequential filter for any procs.  The count and
// scatter passes go through runCoarse: each block is one schedulable task,
// so they actually spread across the pool (a plain Run over the handful of
// block indices would be folded into a single grain-sized chunk and
// silently serialize).
func Compact[T any](e Exec, xs []T, keep func(i int) bool) []T {
	n := len(xs)
	block := 4096
	if e != nil {
		// ~8 blocks per proc keeps load balancing without tiny tasks.
		if b := (n + 8*e.Procs() - 1) / (8 * e.Procs()); b > block {
			block = b
		}
	}
	nblocks := (n + block - 1) / block
	if nblocks <= 1 || e == nil || e.Procs() == 1 {
		out := make([]T, 0, min(n, 16))
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, xs[i])
			}
		}
		return out
	}
	counts := make([]int64, nblocks)
	runCoarse(e, nblocks, func(c int) {
		lo, hi := c*block, min((c+1)*block, n)
		var k int64
		for i := lo; i < hi; i++ {
			if keep(i) {
				k++
			}
		}
		counts[c] = k
	})
	var total int64
	for c, k := range counts {
		counts[c] = total
		total += k
	}
	out := make([]T, total)
	runCoarse(e, nblocks, func(c int) {
		lo, hi := c*block, min((c+1)*block, n)
		at := counts[c]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[at] = xs[i]
				at++
			}
		}
	})
	return out
}

// CompactIndices returns the indices i in [0,n) with keep(i), in increasing
// order — the same count/scan/scatter as Compact, writing the indices
// directly (no materialized identity array).
func CompactIndices(e Exec, n int, keep func(i int) bool) []int32 {
	block := 4096
	if e != nil {
		if b := (n + 8*e.Procs() - 1) / (8 * e.Procs()); b > block {
			block = b
		}
	}
	nblocks := (n + block - 1) / block
	if nblocks <= 1 || e == nil || e.Procs() == 1 {
		out := make([]int32, 0, 16)
		for i := 0; i < n; i++ {
			if keep(i) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	counts := make([]int64, nblocks)
	runCoarse(e, nblocks, func(c int) {
		lo, hi := c*block, min((c+1)*block, n)
		var k int64
		for i := lo; i < hi; i++ {
			if keep(i) {
				k++
			}
		}
		counts[c] = k
	})
	var total int64
	for c, k := range counts {
		counts[c] = total
		total += k
	}
	out := make([]int32, total)
	runCoarse(e, nblocks, func(c int) {
		lo, hi := c*block, min((c+1)*block, n)
		at := counts[c]
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[at] = int32(i)
				at++
			}
		}
	})
	return out
}
