package par

import "sync/atomic"

// SnapshotLabels is the snapshot-publish kernel behind Solver
// .PublishSnapshot: it resolves every vertex of the parent forest p to its
// root without mutating p, writing the flattened labels into dst and
// tallying per-component sizes into sizes (indexed by root id; the caller
// supplies it zeroed).  O(n · depth) work, parallel over the vertices —
// the caller flattens the forest first (Compress) when chains may be long,
// making the chases O(1) and the kernel a straight parallel copy+count.
//
// p is only read (atomically), so the kernel tolerates a forest that
// concurrent Find calls are still path-halving; dst and sizes must not be
// shared with any concurrent writer.  Uncharged serving helper.
func SnapshotLabels(e Exec, p, dst, sizes []int32) {
	e.Run(len(p), func(v int) {
		r := chase(p, int32(v))
		dst[v] = r
		atomic.AddInt32(&sizes[r], 1)
	})
}
