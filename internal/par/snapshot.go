package par

import (
	"math/bits"
	"sync/atomic"
)

// SnapshotLabels is the snapshot-publish kernel behind Solver
// .PublishSnapshot: it resolves every vertex of the parent forest p to its
// root without mutating p, writing the flattened labels into dst and
// tallying per-component sizes into sizes (indexed by root id; the caller
// supplies it zeroed).  O(n · depth) work, parallel over the vertices —
// the caller flattens the forest first (Compress) when chains may be long,
// making the chases O(1) and the kernel a straight parallel copy+count.
//
// p is only read (atomically), so the kernel tolerates a forest that
// concurrent Find calls are still path-halving; dst and sizes must not be
// shared with any concurrent writer.  Uncharged serving helper.
func SnapshotLabels(e Exec, p, dst, sizes []int32) {
	e.Run(len(p), func(v int) {
		r := chase(p, int32(v))
		dst[v] = r
		atomic.AddInt32(&sizes[r], 1)
	})
}

// SnapshotPages is SnapshotLabels writing into page-granular storage: the
// flattened labels land in labels[v/pageSize][v%pageSize] and the
// per-component tallies in sizes at the root's page/offset — the full-build
// kernel of the copy-on-write snapshot mirror (Solver.PublishSnapshot's
// paged read view).  pageSize must be a power of two; every page is
// pageSize long (the last one simply has unused tail slots) and the caller
// supplies the size pages zeroed.  Parallel over pages rather than
// vertices, so each goroutine writes one label page exclusively; the size
// tallies cross pages and stay atomic.  Same read-only contract on p as
// SnapshotLabels.  Uncharged serving helper.
func SnapshotPages(e Exec, p []int32, pageSize int, labels, sizes [][]int32) {
	shift := uint(bits.TrailingZeros(uint(pageSize)))
	mask := int32(pageSize - 1)
	n := len(p)
	e.Run(len(labels), func(pg int) {
		base := pg * pageSize
		end := pageSize
		if base+end > n {
			end = n - base
		}
		lp := labels[pg]
		for i := 0; i < end; i++ {
			r := chase(p, int32(base+i))
			lp[i] = r
			atomic.AddInt32(&sizes[r>>shift][r&mask], 1)
		}
	})
}
