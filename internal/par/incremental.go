package par

import (
	"sync/atomic"

	"parcc/internal/graph"
)

// Incremental-connectivity kernels: the batched form of the CAS union-find
// used by Solver.AddEdges, and the partition splice that installs a scoped
// re-solve's labels back into the live forest after Solver.RemoveEdges.
// Both are uncharged serving helpers (no PRAM cost is booked); their
// concurrency contracts are stated per kernel.

// UniteBatch runs Unite over every non-loop edge of batch on e and returns
// the number of unions that actually merged two distinct sets — the
// component-count delta the caller maintains.  O(|batch|·α) amortized work,
// parallel over the batch; the merge count is exact under any interleaving
// because Unite reports success precisely for the winning CAS of each
// merge.  The resulting partition (and, at quiescence, every root, which is
// its component's minimum reachable representative) is deterministic for
// any procs and schedule; concurrent Find/Unite on the same forest is safe,
// concurrent readers that bypass Find are not.
func UniteBatch(e Exec, p []int32, batch []graph.Edge) int {
	var merges atomic.Int64
	e.Run(len(batch), func(i int) {
		ed := batch[i]
		if ed.U != ed.V && Unite(p, ed.U, ed.V) {
			merges.Add(1)
		}
	})
	return int(merges.Load())
}

// UniteBatchMark is UniteBatch reporting per-edge outcomes: marks[i] is
// set true exactly when batch[i]'s Unite merged two distinct sets (false
// for loops, duplicates, and lost races — every slot is written, so a
// recycled buffer needs no clearing).  The marked subset is a valid
// spanning-forest extension under any interleaving: each winning Unite
// connected two components that were distinct at its linearization point,
// so the marked edges are acyclic and span exactly what the batch merged —
// the property the dynamic-connectivity layer (internal/dynconn) builds
// its forest flags from.  Same contract and cost as UniteBatch otherwise.
func UniteBatchMark(e Exec, p []int32, batch []graph.Edge, marks []bool) int {
	var merges atomic.Int64
	e.Run(len(batch), func(i int) {
		ed := batch[i]
		ok := ed.U != ed.V && Unite(p, ed.U, ed.V)
		marks[i] = ok
		if ok {
			merges.Add(1)
		}
	})
	return int(merges.Load())
}

// UniteBatchTouch is UniteBatchMark additionally reporting WHICH root lost
// each merge: the hooked (losing) root of every successful union is
// appended into losers, whose filled prefix length is the return value
// (== the merge count).  marks may be nil when per-edge outcomes are not
// needed; when non-nil every slot is written, as in UniteBatchMark.  The
// losers prefix is unordered (slots are reserved with an atomic cursor)
// and duplicate-free within the batch — a root can lose at most once,
// because the winning CAS retires it from roothood forever.  losers must
// have capacity len(batch).  This is the bookkeeping feed of the
// copy-on-write snapshot mirror: the caller charges each losing root's
// member list against the winner without scanning the forest.  Same
// contract and cost as UniteBatch otherwise.
func UniteBatchTouch(e Exec, p []int32, batch []graph.Edge, marks []bool, losers []int32) int {
	var cur atomic.Int64
	e.Run(len(batch), func(i int) {
		ed := batch[i]
		var ru int32
		ok := false
		if ed.U != ed.V {
			ru, ok = uniteLoser(p, ed.U, ed.V)
		}
		if marks != nil {
			marks[i] = ok
		}
		if ok {
			losers[cur.Add(1)-1] = ru
		}
	})
	return int(cur.Load())
}

// uniteLoser is Unite (kernels.go) returning the hooked root on success:
// the CAS that wins the merge installs p[ru] = rv with ru > rv, so ru is
// exactly the root that stopped being one.  Identical linearization and
// cost; concurrent Find/Unite on the same forest is safe.
func uniteLoser(p []int32, u, v int32) (int32, bool) {
	for {
		ru, rv := Find(p, u), Find(p, v)
		if ru == rv {
			return 0, false
		}
		if ru < rv {
			ru, rv = rv, ru
		}
		if atomic.CompareAndSwapInt32(&p[ru], ru, rv) {
			return ru, true
		}
	}
}

// SpliceLabels installs a scoped re-solve's partition into the global
// forest: for each selected vertex verts[i], the parent becomes the global
// id of its sub-solve representative, p[verts[i]] = verts[sub[i]].  Because
// a representative's own label is itself, the spliced region comes out as
// a flat two-level forest (roots self-parented), ready for further Unite
// batches.  O(|verts|) work, parallel over verts; writes are disjoint
// (verts has no duplicates) so no atomics are needed, but no concurrent
// Find/Unite may run during the splice — the Solver serializes mutations
// under the session lock.
func SpliceLabels(e Exec, p []int32, verts, sub []int32) {
	e.Run(len(verts), func(i int) {
		p[verts[i]] = verts[sub[i]]
	})
}
