package par

import (
	"testing"

	"parcc/internal/graph"
)

// TestUniteBatchMergeCount: the reported merge count must equal the drop
// in the number of sets, under every procs count, with loops and parallel
// edges in the batch.
func TestUniteBatchMergeCount(t *testing.T) {
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 0}, {U: 2, V: 3}, {U: 3, V: 4},
		{U: 5, V: 5}, {U: 6, V: 7}, {U: 0, V: 4},
	}
	for _, procs := range []int{1, 2, 4} {
		rt := New(Procs(procs))
		p := make([]int32, 9)
		for i := range p {
			p[i] = int32(i)
		}
		merges := UniteBatch(rt, p, edges)
		if merges != 5 { // {0,1}+{2,3,4} fuse into {0..4}; {6,7}; loop & dup no-ops
			t.Fatalf("procs=%d: merges = %d, want 5", procs, merges)
		}
		Compress(rt, p)
		for _, pair := range [][2]int{{0, 4}, {2, 1}, {6, 7}} {
			if p[pair[0]] != p[pair[1]] {
				t.Fatalf("procs=%d: %d and %d not merged", procs, pair[0], pair[1])
			}
		}
		if p[5] != 5 || p[8] != 8 {
			t.Fatalf("procs=%d: singletons moved", procs)
		}
		rt.Close()
	}
}

// TestSpliceLabels: the scoped re-solve's sub-space labels must land as a
// flat forest over the selected vertices only.
func TestSpliceLabels(t *testing.T) {
	rt := New(Procs(2))
	defer rt.Close()
	p := []int32{0, 0, 0, 0, 4, 4} // {0,1,2,3} and {4,5}
	verts := []int32{0, 1, 2, 3}   // dirty component, compact ids 0..3
	sub := []int32{0, 0, 2, 2}     // re-solve split it into {0,1} and {2,3}
	SpliceLabels(rt, p, verts, sub)
	want := []int32{0, 0, 2, 2, 4, 4}
	for v, w := range want {
		if p[v] != w {
			t.Fatalf("p = %v, want %v", p, want)
		}
	}
	// Roots are self-parented: further Unite batches work on the result.
	if m := UniteBatch(rt, p, []graph.Edge{{U: 1, V: 3}}); m != 1 {
		t.Fatalf("post-splice unite merges = %d, want 1", m)
	}
	if Find(p, 0) != Find(p, 2) {
		t.Fatal("post-splice unite did not merge the split halves")
	}
}
