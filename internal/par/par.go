// Package par is the shared-memory parallel runtime behind the concurrent
// backend: a persistent goroutine pool executing chunked parallel loops and
// reductions, plus lock-free CAS kernels for the connectivity primitives the
// paper's algorithms are built from — hooking, pointer jumping (compression),
// minimum-label propagation, and compaction.
//
// The PRAM simulator in internal/pram expresses every algorithm as a
// sequence of synchronous parallel loops and charges model costs per loop.
// Runtime implements the simulator's Executor contract (structurally — par
// does not import pram), so the very same algorithms execute their loop
// bodies on real goroutines when a Runtime is installed on the Machine: the
// cost accounting stays the model's, the wall clock becomes the hardware's.
// The CAS kernels additionally give the uncharged helpers (label extraction,
// compaction inside Contract blocks) and the cas-unite algorithm a
// barrier-free fast path in the style of Liu–Tarjan [LT19] and the
// CAS-over-flat-arrays GPU/multicore connectivity literature.
//
// Scheduling is chunked and dynamically load-balanced: an index space [0,n)
// is split into fixed-size chunks (Grain), and pool workers grab chunks off
// a shared atomic cursor.  Chunk boundaries depend only on n and the grain —
// never on the number of procs — so per-chunk RNG streams (ForChunks) are
// reproducible across any parallelism degree.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Exec is the minimal executor surface the kernels in this package need.  It
// is satisfied by *Runtime and is structurally identical to the simulator's
// pram.Executor, so a Machine's installed executor can be passed straight to
// the kernels.
type Exec interface {
	// Run executes body(i) for every i in [0,n), returning when all calls
	// have completed.
	Run(n int, body func(i int))
	// Procs reports the parallelism degree.
	Procs() int
}

// Runtime is a pooled parallel runtime.  Construct with New; an idle Runtime
// holds procs-1 parked goroutines, released by Close (or by the garbage
// collector if the Runtime becomes unreachable).  Parallel constructs must
// be issued from one orchestrating goroutine at a time; loop bodies run
// concurrently.
type Runtime struct {
	procs int
	grain int
	seed  uint64
	epoch atomic.Uint64

	jobs  chan *job
	close sync.Once
	// jb is the dispatch descriptor, reused across parallel loops: the
	// orchestration contract (one loop at a time) plus the wg.Wait barrier
	// make the reuse safe, and it keeps every For/Run on the pool
	// allocation-free.
	jb job
}

// Option configures a Runtime.
type Option func(*Runtime)

// Procs sets the parallelism degree (goroutines used per loop, including the
// caller).  Values < 1 select runtime.NumCPU().
func Procs(p int) Option {
	return func(r *Runtime) {
		if p >= 1 {
			r.procs = p
		}
	}
}

// Grain sets the chunk size parallel loops are split into.  It is the unit
// of load balancing and of per-chunk RNG seeding; results of ForChunks are
// reproducible across procs only for a fixed grain.
func Grain(g int) Option {
	return func(r *Runtime) {
		if g >= 1 {
			r.grain = g
		}
	}
}

// Seed sets the seed all per-chunk RNG streams derive from.
func Seed(s uint64) Option {
	return func(r *Runtime) { r.seed = s }
}

// New returns a runtime with procs-1 pooled workers started and parked.
func New(opts ...Option) *Runtime {
	r := &Runtime{procs: runtime.NumCPU(), grain: 2048, seed: 0x9e3779b97f4a7c15}
	for _, o := range opts {
		o(r)
	}
	if r.procs > 1 {
		r.jobs = make(chan *job, r.procs)
		for i := 0; i < r.procs-1; i++ {
			go worker(r.jobs)
		}
		// Workers reference only the channel, so an abandoned Runtime is
		// collectable; release its goroutines when that happens.
		runtime.SetFinalizer(r, (*Runtime).Close)
	}
	return r
}

// Close releases the pooled workers.  The Runtime must not be used after
// Close; calling Close more than once is a no-op.
func (r *Runtime) Close() {
	r.close.Do(func() {
		if r.jobs != nil {
			close(r.jobs)
		}
		runtime.SetFinalizer(r, nil)
	})
}

// Procs reports the parallelism degree.
func (r *Runtime) Procs() int { return r.procs }

// job is one parallel loop: workers repeatedly claim the next chunk off the
// shared cursor until the index space is exhausted.  Exactly one of body
// (chunked form) and each (per-index form) is set; carrying the per-index
// body directly avoids wrapping it in a fresh chunk closure per loop.
type job struct {
	n     int
	chunk int
	body  func(lo, hi, c int)
	each  func(i int)
	next  atomic.Int64
	wg    sync.WaitGroup
}

func (j *job) run() {
	for {
		c := int(j.next.Add(1)) - 1
		lo := c * j.chunk
		if lo >= j.n {
			return
		}
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		if j.each != nil {
			for i := lo; i < hi; i++ {
				j.each(i)
			}
		} else {
			j.body(lo, hi, c)
		}
	}
}

func worker(jobs chan *job) {
	for j := range jobs {
		j.run()
		j.wg.Done()
	}
}

// dispatch runs body/each over the chunk-size-`chunk` chunking of [0,n),
// on the pool when it pays.  Exactly one of body and each is non-nil; the
// reused descriptor makes pooled loops allocation-free.
func (r *Runtime) dispatch(n, chunk int, body func(lo, hi, c int), each func(i int)) {
	if n <= 0 {
		return
	}
	nchunks := (n + chunk - 1) / chunk
	helpers := r.procs - 1
	if helpers > nchunks-1 {
		helpers = nchunks - 1
	}
	if r.jobs == nil || helpers <= 0 {
		if each != nil {
			for i := 0; i < n; i++ {
				each(i)
			}
			return
		}
		for c := 0; c < nchunks; c++ {
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(lo, hi, c)
		}
		return
	}
	j := &r.jb
	if j.body != nil || j.each != nil {
		// The descriptor is in flight: a loop body issued a nested parallel
		// construct, which the single-orchestrator contract forbids (and
		// which would corrupt the outer loop's chunk cursor).
		panic("par: nested parallel dispatch from inside a loop body")
	}
	j.n, j.chunk, j.body, j.each = n, chunk, body, each
	j.next.Store(0)
	j.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		r.jobs <- j
	}
	j.run() // the orchestrator participates
	j.wg.Wait()
	j.body, j.each = nil, nil // drop closure references until the next loop
}

// For executes body(i) for every i in [0,n) across the pool and returns when
// all iterations have completed.  Iterations touching shared cells must use
// atomics; the completion of For happens-before its return.
func (r *Runtime) For(n int, body func(i int)) {
	r.dispatch(n, r.grain, nil, body)
}

// Run is For under the name the simulator's Executor contract uses.
func (r *Runtime) Run(n int, body func(i int)) { r.For(n, body) }

// ForRanges executes body over the grain-sized chunks [lo,hi) of [0,n) —
// the chunked form of For, for kernels whose inner loop is tight enough
// that a per-index closure call would dominate (SkipUnite's two-load skip
// test is the motivating case: the per-edge work is a pair of loads and a
// compare, so the loop must live inside the kernel, not the dispatcher).
func (r *Runtime) ForRanges(n int, body func(lo, hi int)) {
	r.dispatch(n, r.grain, func(lo, hi, _ int) { body(lo, hi) }, nil)
}

// ForSpans is ForRanges on the dispatcher's native signature (the chunk
// index rides along): no adapter closure is created, so a body hoisted
// outside an engine loop can be re-dispatched every round with zero
// per-call allocation — the frontier engine's round loop is the motivating
// case (ForRanges pays one closure allocation per call to hide the chunk
// index, which a per-round caller would pay per round).
func (r *Runtime) ForSpans(n int, body func(lo, hi, c int)) {
	r.dispatch(n, r.grain, body, nil)
}

// RunCoarse executes body(i) for every i in [0,n) treating each index as one
// schedulable task (chunk size 1).  Kernels that have already blocked their
// work into coarse pieces — e.g. Compact's per-block count and scatter
// passes — use it so a small n still spreads across the pool instead of
// being folded into a single grain-sized chunk.
func (r *Runtime) RunCoarse(n int, body func(i int)) {
	r.dispatch(n, 1, nil, body)
}

// coarseRunner is the optional Exec extension RunCoarse provides; kernels
// fall back to Run when an executor lacks it.
type coarseRunner interface {
	RunCoarse(n int, body func(i int))
}

// runCoarse dispatches n coarse tasks on e, via RunCoarse when available.
func runCoarse(e Exec, n int, body func(i int)) {
	if cr, ok := e.(coarseRunner); ok {
		cr.RunCoarse(n, body)
		return
	}
	e.Run(n, body)
}

// ForChunks executes body once per grain-sized chunk [lo,hi) of [0,n), each
// with its own deterministic RNG stream.  The stream depends on (seed, epoch,
// chunk index) only — epoch advances once per ForChunks call — so the random
// choices made for a given chunk are identical no matter how many procs run
// the loop or which worker claims the chunk.
func (r *Runtime) ForChunks(n int, body func(lo, hi int, rng *RNG)) {
	e := r.epoch.Add(1)
	r.dispatch(n, r.grain, func(lo, hi, c int) {
		rng := NewRNG(r.seed, e, uint64(c))
		body(lo, hi, rng)
	}, nil)
}

// Reduce computes combine over leaf(i) for i in [0,n) with identity id.  The
// per-chunk partials are combined in chunk order, so for a fixed grain the
// result is deterministic across procs (exactly reproducible even for
// non-commutative or floating-point combines).
func Reduce[T any](r *Runtime, n int, id T, leaf func(i int) T, combine func(a, b T) T) T {
	if n <= 0 {
		return id
	}
	nchunks := (n + r.grain - 1) / r.grain
	parts := make([]T, nchunks)
	r.dispatch(n, r.grain, func(lo, hi, c int) {
		acc := id
		for i := lo; i < hi; i++ {
			acc = combine(acc, leaf(i))
		}
		parts[c] = acc
	}, nil)
	acc := id
	for _, p := range parts {
		acc = combine(acc, p)
	}
	return acc
}

// Sum64 is Reduce specialized to int64 addition.
func Sum64(r *Runtime, n int, leaf func(i int) int64) int64 {
	return Reduce(r, n, 0, leaf, func(a, b int64) int64 { return a + b })
}

// Count tallies the i in [0,n) for which pred holds.
func Count(r *Runtime, n int, pred func(i int) bool) int64 {
	return Sum64(r, n, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}
