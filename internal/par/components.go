package par

import "parcc/internal/graph"

// Components labels the connected components of g with a barrier-free
// concurrent union-find: one parallel Unite pass over the edges, then a
// Compress.  This is the cas-unite algorithm of the public API — the
// wall-clock-oriented companion to the charged PRAM algorithms, in the
// spirit of the Liu–Tarjan CAS formulations.  The result is deterministic
// for any procs and schedule: every vertex is labeled by the minimum vertex
// of its component.
func Components(e Exec, g *graph.Graph) []int32 {
	return ComponentsInto(e, g, nil)
}

// ComponentsInto is Components writing into dst when it has the capacity —
// the zero-allocation serving path for session reuse.
func ComponentsInto(e Exec, g *graph.Graph, dst []int32) []int32 {
	p := dst
	if cap(p) < g.N {
		p = make([]int32, g.N)
	}
	p = p[:g.N]
	e.Run(g.N, func(v int) { p[v] = int32(v) })
	edges := g.Edges
	e.Run(len(edges), func(i int) {
		ed := edges[i]
		if ed.U != ed.V {
			Unite(p, ed.U, ed.V)
		}
	})
	Compress(e, p)
	return p
}
