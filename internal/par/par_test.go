package par

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 8} {
		r := New(Procs(procs), Grain(7))
		n := 10_000
		hits := make([]int32, n)
		r.For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("procs=%d: index %d executed %d times", procs, i, h)
			}
		}
		r.Close()
	}
}

func TestForSmallAndEmpty(t *testing.T) {
	r := New(Procs(4))
	defer r.Close()
	r.For(0, func(i int) { t.Fatal("body called for n=0") })
	var n32 int32
	r.For(1, func(i int) { atomic.AddInt32(&n32, 1) })
	if n32 != 1 {
		t.Fatalf("n=1 ran %d bodies", n32)
	}
}

func TestPoolReuseAcrossManyLoops(t *testing.T) {
	r := New(Procs(4), Grain(16))
	defer r.Close()
	var total int64
	for k := 0; k < 500; k++ {
		r.For(100, func(i int) { atomic.AddInt64(&total, 1) })
	}
	if total != 500*100 {
		t.Fatalf("total = %d", total)
	}
}

func TestForChunksDeterministicAcrossProcs(t *testing.T) {
	// The per-chunk RNG draws must depend only on (seed, epoch, chunk).
	draw := func(procs int) []uint64 {
		r := New(Procs(procs), Grain(64), Seed(42))
		defer r.Close()
		out := make([]uint64, 1000)
		r.ForChunks(len(out), func(lo, hi int, rng *RNG) {
			for i := lo; i < hi; i++ {
				out[i] = rng.Uint64()
			}
		})
		// Second epoch must differ from the first but stay reproducible.
		r.ForChunks(len(out), func(lo, hi int, rng *RNG) {
			for i := lo; i < hi; i++ {
				out[i] ^= rng.Uint64() << 1
			}
		})
		return out
	}
	want := draw(1)
	for _, procs := range []int{2, 4, 7} {
		got := draw(procs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("procs=%d: draw %d = %x, want %x", procs, i, got[i], want[i])
			}
		}
	}
}

func TestForChunksEpochAdvances(t *testing.T) {
	r := New(Procs(1), Grain(8), Seed(1))
	a := make([]uint64, 8)
	b := make([]uint64, 8)
	r.ForChunks(8, func(lo, hi int, rng *RNG) { a[lo] = rng.Uint64() })
	r.ForChunks(8, func(lo, hi int, rng *RNG) { b[lo] = rng.Uint64() })
	if a[0] == b[0] {
		t.Fatal("two epochs produced identical streams")
	}
}

func TestReduceDeterministicAndCorrect(t *testing.T) {
	for _, procs := range []int{1, 3, 8} {
		r := New(Procs(procs), Grain(10))
		n := 5000
		sum := Sum64(r, n, func(i int) int64 { return int64(i) })
		if want := int64(n) * int64(n-1) / 2; sum != want {
			t.Fatalf("procs=%d: sum = %d, want %d", procs, sum, want)
		}
		// Non-commutative combine: string-order concatenation length proxy —
		// chunk-ordered combination must match the sequential left fold.
		cat := Reduce(r, 26, "", func(i int) string { return string(rune('a' + i)) },
			func(a, b string) string { return a + b })
		if cat != "abcdefghijklmnopqrstuvwxyz" {
			t.Fatalf("procs=%d: ordered reduce = %q", procs, cat)
		}
		r.Close()
	}
}

func TestCount(t *testing.T) {
	r := New(Procs(4), Grain(32))
	defer r.Close()
	c := Count(r, 1000, func(i int) bool { return i%3 == 0 })
	if c != 334 {
		t.Fatalf("count = %d", c)
	}
}

func TestRunCoarseSpreadsSmallTaskCounts(t *testing.T) {
	// Regression: Compact's per-block passes hand the executor a handful of
	// coarse tasks; routed through For they would be folded into one
	// grain-sized chunk and serialize.  RunCoarse must overlap them.
	r := New(Procs(4), Grain(2048))
	defer r.Close()
	var inFlight, maxSeen int32
	r.RunCoarse(8, func(i int) {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			old := atomic.LoadInt32(&maxSeen)
			if cur <= old || atomic.CompareAndSwapInt32(&maxSeen, old, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond) // let other workers claim tasks
		atomic.AddInt32(&inFlight, -1)
	})
	if maxSeen < 2 {
		t.Fatalf("coarse tasks never overlapped (max concurrency %d)", maxSeen)
	}
}

func TestCloseIdempotent(t *testing.T) {
	r := New(Procs(4))
	r.Close()
	r.Close()
}

func TestProcsReported(t *testing.T) {
	r := New(Procs(3))
	defer r.Close()
	if r.Procs() != 3 {
		t.Fatalf("procs = %d", r.Procs())
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a := NewRNG(1, 1, 0)
	b := NewRNG(1, 1, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d collisions between adjacent chunk streams", same)
	}
	if f := NewRNG(9, 9, 9).Float64(); f < 0 || f >= 1 {
		t.Fatalf("Float64 out of range: %v", f)
	}
	if n := NewRNG(3, 1, 4).Intn(10); n < 0 || n >= 10 {
		t.Fatalf("Intn out of range: %d", n)
	}
}
