// Afforest-style sampling kernels: the fast path that eliminates the bulk
// of union/hook work on real graphs before the edge list is ever walked in
// full.  Sutton–Ben-Nun–Barak (Adaptive Work-Efficient Connected Components
// on the GPU) observe that on most inputs the vast majority of edges are
// intra-component and never change a label; sampling a few neighbors per
// vertex settles those components almost entirely, after which the full
// edge pass only needs one cheap root comparison per edge and a Unite for
// the small surviving minority.  The kernels compose with the Liu–Tarjan
// CAS machinery in kernels.go: the same Unite/Find/Compress primitives do
// the hooking, so every intermediate state is a valid concurrent union-find
// forest and the final labels are the component minima, deterministic for
// any procs and schedule.
//
// The phase structure a caller (parcc's "sample" algorithm) composes:
//
//	SampleUnite   — k sampling rounds over the cached CSR: each vertex
//	                unites with a sampled neighbor (deterministic
//	                per-chunk RNG), collapsing most components early;
//	Compress      — flatten, so roots are one load away;
//	MajorityRoot  — approximate most-frequent root by sampled voting
//	                (Boyer–Moore), the Afforest signal for whether a
//	                dominant component exists;
//	EstimateSkip  — sampled prediction of the skip ratio when the
//	                majority alone is inconclusive (multi-community
//	                graphs skip well without any single dominant root);
//	SkipUnite     — the finish pass over the CSR: majority vertices skip
//	                their whole adjacency range unread; the rest settle
//	                neighbors against a register-cached root and unite
//	                only the surviving minority.
package par

import (
	"sync/atomic"

	"parcc/internal/graph"
)

// sampleWindow is the adjacency prefix SampleUnite draws from: sixteen
// int32 neighbor ids — one 64-byte cache line.  Sampling an arbitrary
// index would cost a cache miss per vertex per round (the adjacency array
// is far larger than cache); confining the draw to the first line keeps
// the pass streaming — the first round warms the line, later rounds hit
// it — which is the same locality argument behind Afforest's "link first
// k neighbors" formulation.
const sampleWindow = 16

// SampleUnite runs `rounds` neighbor-sampling draws per vertex over the
// CSR in a single streaming pass: each vertex unites with `rounds` of its
// neighbors.  Vertices of degree at most `rounds` enumerate their
// adjacency deterministically (every edge covered exactly), so sparse
// regions — paths, cycles, tree fringes — settle completely; higher-degree
// vertices draw from the first cache line of their adjacency via the
// chunk's deterministic RNG stream, which collapses dense communities in
// O(1) draws without a random-access miss per draw.  The single pass
// visits each vertex's CSR metadata and sampling window once for all
// rounds — the pass is dominated by the ~n successful hooks (CAS each),
// which is the irreducible price of building the early forest.  The
// choice of sampled neighbors never affects the final partition a
// subsequent SkipUnite pass converges to — only how much of it is settled
// early.  O(rounds·n) work.
//
// Returns the number of Unite attempts issued and the number that hooked
// (actually merged two sets).  The counts are kept in per-chunk locals and
// folded with one atomic add per chunk, so they cost nothing measurable;
// the tracer turns them into the CAS attempt/hook counters.
func SampleUnite(rt *Runtime, p []int32, csr *graph.CSR, rounds int) (attempts, hooks int64) {
	var att, hk atomic.Int64
	rt.ForChunks(len(p), func(lo, hi int, rng *RNG) {
		la, lh := int64(0), int64(0)
		for v := lo; v < hi; v++ {
			off := csr.Off[v]
			d := int(csr.Off[v+1] - off)
			if d == 0 {
				continue
			}
			if d <= rounds {
				for r := 0; r < d; r++ {
					if u := csr.Nbr[off+int64(r)]; u != int32(v) {
						la++
						if Unite(p, int32(v), u) {
							lh++
						}
					}
				}
				continue
			}
			w := d
			if w > sampleWindow {
				w = sampleWindow
			}
			for r := 0; r < rounds; r++ {
				if u := csr.Nbr[off+int64(rng.Intn(w))]; u != int32(v) {
					la++
					if Unite(p, int32(v), u) {
						lh++
					}
				}
			}
		}
		att.Add(la)
		hk.Add(lh)
	})
	return att.Load(), hk.Load()
}

// MajorityRoot estimates the most frequent root of the flattened forest by
// sampled voting: `probes` vertices are drawn from deterministic per-chunk
// RNG streams, their roots fed to a Boyer–Moore majority vote, and the
// candidate's frequency in the same sample reported as its coverage
// estimate.  The vote is exact whenever a true majority exists in the
// sample; the coverage estimate is within a few percent for probes in the
// hundreds.  Call after Compress for one-load roots (Find is used, so an
// unflattened forest is merely slower, not wrong).  scratch, when it has
// the capacity, backs the sampled roots — sessions pass arena scratch so
// warm solves stay allocation-free; nil allocates.  O(probes) work.
func MajorityRoot(rt *Runtime, p []int32, probes int, scratch []int32) (int32, float64) {
	n := len(p)
	if n == 0 {
		return -1, 0
	}
	if probes > n {
		probes = n
	}
	if probes < 1 {
		probes = 1
	}
	roots := scratch
	if cap(roots) < probes {
		roots = make([]int32, probes)
	}
	roots = roots[:probes]
	rt.ForChunks(probes, func(lo, hi int, rng *RNG) {
		for i := lo; i < hi; i++ {
			roots[i] = Find(p, int32(rng.Intn(n)))
		}
	})
	// Boyer–Moore vote, then an exact count of the winner over the sample.
	cand, bal := roots[0], 0
	for _, r := range roots {
		if bal == 0 {
			cand = r
		}
		if r == cand {
			bal++
		} else {
			bal--
		}
	}
	hits := 0
	for _, r := range roots {
		if r == cand {
			hits++
		}
	}
	return cand, float64(hits) / float64(probes)
}

// EstimateSkip predicts SkipUnite's skip ratio by probing sampled edges:
// the reported value is the fraction of `probes` edges (drawn from
// deterministic per-chunk RNG streams) that are already settled — a
// self-loop, or both endpoints sharing a root.  Unlike the majority
// coverage, this signal stays high on multi-community graphs where no
// single component dominates but every community has collapsed; it is the
// skip-ratio estimate the sample algorithm's FLS fallback thresholds on.
// O(probes·α) work.
func EstimateSkip(rt *Runtime, p []int32, edges []graph.Edge, probes int) float64 {
	m := len(edges)
	if m == 0 {
		return 1
	}
	if probes > m {
		probes = m
	}
	if probes < 1 {
		probes = 1
	}
	var settled atomic.Int64
	rt.ForChunks(probes, func(lo, hi int, rng *RNG) {
		local := int64(0)
		for i := lo; i < hi; i++ {
			ed := edges[rng.Intn(m)]
			if ed.U == ed.V || Find(p, ed.U) == Find(p, ed.V) {
				local++
			}
		}
		settled.Add(local)
	})
	return float64(settled.Load()) / float64(probes)
}

// SkipUnite is the sampling fast path's finish pass, driven by the CSR so
// that settled regions are skipped wholesale instead of edge by edge.  Each
// vertex loads its flattened root once (one sequential, prefetcher-friendly
// scan of p); a vertex whose root is maj skips its entire adjacency range
// without reading it — the branch-free majority check of Afforest, applied
// at vertex granularity, which is what eliminates the memory traffic on the
// settled majority of the edge list rather than merely cheapening it.  The
// surviving vertices walk their neighbor lists with the cached root in a
// register: a neighbor sharing it is settled with a single random load, and
// only genuinely unsettled pairs go through Unite.
//
// maj ≥ 0 selects this majority mode; the skip is sound because an edge
// internal to the majority component is already settled, and an edge
// leaving it is revisited from its non-majority endpoint, which processes
// all of its neighbors.  maj < 0 (no dominant component — the
// multi-community regime) selects the direction-filtered mode instead:
// every vertex processes only neighbors u > v, so each undirected edge
// pays exactly one random root load instead of the two an edge-list pass
// would, and self-loops fall out of the filter.
//
// Stale reads are benign in both directions — an equal root proves the
// endpoints were already connected (parents only move within a set), and
// an unequal pair merely falls through to Unite, which re-derives the
// roots.  Returns the number of Unite attempts (the processed minority;
// the caller derives the skip ratio) and the number that hooked — counted
// in per-chunk locals, folded with one atomic add per chunk.  The final
// partition equals a plain Unite pass over all edges: component minima,
// deterministic for any procs and schedule.
//
// SkipUnite is the full-frontier instantiation of the shared finish
// kernel (finishSpan/finishVertex in frontier.go): the non-majority side
// is the same per-vertex body FrontierUnite drives from a seeded
// active-vertex set, so the two passes cannot drift apart semantically.
func SkipUnite(rt *Runtime, p []int32, csr *graph.CSR, maj int32) (attempts, hooks int64) {
	var processed, hooked atomic.Int64
	rt.ForRanges(len(p), func(lo, hi int) {
		a, h := finishSpan(p, csr, maj, lo, hi)
		processed.Add(a)
		hooked.Add(h)
	})
	return processed.Load(), hooked.Load()
}
