package par

import (
	"testing"

	"parcc/internal/graph"
)

func TestArenaGrabZeroedAndRecycled(t *testing.T) {
	a := NewArena()
	s := a.Grab32(100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	for i := range s {
		s[i] = int32(i) + 1
	}
	a.Release32(s)
	s2 := a.Grab32(50)
	if cap(s2) != cap(s) {
		t.Errorf("expected recycled buffer (cap %d), got cap %d", cap(s), cap(s2))
	}
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %d", i, v)
		}
	}
}

func TestArenaBestFit(t *testing.T) {
	a := NewArena()
	big := a.Grab64(10000)
	small := a.Grab64(10)
	a.Release64(big)
	a.Release64(small)
	got := a.Grab64(8)
	if cap(got) >= cap(big) {
		t.Errorf("best-fit should prefer the small buffer: got cap %d", cap(got))
	}
}

func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	if s := a.Grab32(5); len(s) != 5 {
		t.Fatal("nil arena Grab32 must make")
	}
	if s := a.Grab64(5); len(s) != 5 {
		t.Fatal("nil arena Grab64 must make")
	}
	if s := a.GrabEdges(5); len(s) != 5 {
		t.Fatal("nil arena GrabEdges must make")
	}
	a.Release32(nil)
	a.Release64(nil)
	a.ReleaseEdges(nil)
}

func TestArenaEdgesCap(t *testing.T) {
	a := NewArena()
	e := a.GrabEdgesCap(33)
	if len(e) != 0 || cap(e) < 33 {
		t.Fatalf("len=%d cap=%d", len(e), cap(e))
	}
	e = append(e, graph.Edge{U: 1, V: 2})
	a.ReleaseEdges(e)
	e2 := a.GrabEdges(4)
	for _, ed := range e2 {
		if ed.U != 0 || ed.V != 0 {
			t.Fatal("GrabEdges must zero recycled edges")
		}
	}
}
