package graph

import (
	"testing"
)

// edgeCounts snapshots a multiset of edges by canonical key.
func edgeCounts(edges []Edge) map[int64]int {
	m := make(map[int64]int, len(edges))
	for _, e := range edges {
		m[e.CanonKey()]++
	}
	return m
}

// incidentKeys walks x's incidence list and returns the canonical keys
// seen, asserting the store's own endpoints along the way.
func incidentKeys(t *testing.T, df *DynForest, x int32) map[int64]int {
	t.Helper()
	ks := map[int64]int{}
	for h := df.First(x); h >= 0; h = df.NextIncident(x, h) {
		if df.U(h) != x && df.V(h) != x {
			t.Fatalf("handle %d in vertex %d's list has endpoints {%d,%d}", h, x, df.U(h), df.V(h))
		}
		ks[Edge{U: df.U(h), V: df.V(h)}.CanonKey()]++
	}
	return ks
}

func TestDynForestIndexAndIterate(t *testing.T) {
	g := FromPairs(5, [][2]int{{0, 1}, {1, 2}, {2, 1}, {3, 3}, {0, 4}})
	df := NewDynForest(g)
	if df.M() != 5 {
		t.Fatalf("M = %d, want 5", df.M())
	}
	// Vertex 1 sees {0,1} once and both copies of {1,2}.
	ks := incidentKeys(t, df, 1)
	if ks[Edge{U: 0, V: 1}.CanonKey()] != 1 || ks[Edge{U: 1, V: 2}.CanonKey()] != 2 {
		t.Fatalf("vertex 1 incidence = %v", ks)
	}
	// The self-loop appears exactly once in vertex 3's list.
	if ks := incidentKeys(t, df, 3); ks[Edge{U: 3, V: 3}.CanonKey()] != 1 || len(ks) != 1 {
		t.Fatalf("vertex 3 incidence = %v", ks)
	}
	if got := df.CountKey(Edge{U: 2, V: 1}.CanonKey(), 8); got != 2 {
		t.Fatalf("CountKey({1,2}) = %d, want 2 (orientation-insensitive)", got)
	}
	if got := df.CountKey(Edge{U: 0, V: 3}.CanonKey(), 8); got != 0 {
		t.Fatalf("CountKey(absent) = %d, want 0", got)
	}
}

func TestDynForestRemoveSwapKeepsPositions(t *testing.T) {
	g := FromPairs(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	df := NewDynForest(g)
	want := edgeCounts(g.Edges)
	// Remove from the middle: the last edge is swapped into the hole.
	h := df.PickRemovable(Edge{U: 1, V: 2}.CanonKey())
	df.Remove(h)
	delete(want, Edge{U: 1, V: 2}.CanonKey())
	if len(g.Edges) != 4 {
		t.Fatalf("m = %d after remove, want 4", len(g.Edges))
	}
	got := edgeCounts(g.Edges)
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("edge multiset diverged after swap-remove: got %v want %v", got, want)
		}
	}
	// Positional identity: every position maps to a handle holding that
	// exact edge.
	for i, e := range g.Edges {
		h := df.HandleAt(i)
		if df.U(h) != e.U || df.V(h) != e.V {
			t.Fatalf("position %d: handle %d holds {%d,%d}, g.Edges holds {%d,%d}",
				i, h, df.U(h), df.V(h), e.U, e.V)
		}
	}
	// The removed edge left every incidence list.
	for _, x := range []int32{1, 2} {
		if ks := incidentKeys(t, df, x); ks[Edge{U: 1, V: 2}.CanonKey()] != 0 {
			t.Fatalf("vertex %d still lists the removed edge", x)
		}
	}
	// Handle recycling: the freed handle is reused and relinked.
	nh := df.Insert(Edge{U: 5, V: 0}, false)
	if nh != h {
		t.Fatalf("Insert reused handle %d, want freed %d", nh, h)
	}
	if ks := incidentKeys(t, df, 5); ks[Edge{U: 0, V: 5}.CanonKey()] != 1 {
		t.Fatal("recycled handle not linked at its new endpoints")
	}
	if len(g.Edges) != 5 || g.Edges[4] != (Edge{U: 5, V: 0}) {
		t.Fatalf("Insert must append to g.Edges, got %v", g.Edges)
	}
}

func TestDynForestPickRemovablePrefersNonForest(t *testing.T) {
	g := FromPairs(2, [][2]int{{0, 1}, {0, 1}, {1, 0}})
	df := NewDynForest(g)
	df.SetForestAll([]bool{true, false, false})
	k := Edge{U: 0, V: 1}.CanonKey()
	h := df.PickRemovable(k)
	if df.IsForest(h) {
		t.Fatal("PickRemovable chose the forest copy while non-forest copies live")
	}
	df.Remove(h)
	h = df.PickRemovable(k)
	if df.IsForest(h) {
		t.Fatal("PickRemovable chose the forest copy while a non-forest copy lives")
	}
	df.Remove(h)
	// Only the forest copy remains: it must be returned now.
	h = df.PickRemovable(k)
	if h < 0 || !df.IsForest(h) {
		t.Fatalf("last copy pick = %d (forest %v), want the forest handle", h, h >= 0 && df.IsForest(h))
	}
	df.Remove(h)
	if df.PickRemovable(k) != -1 {
		t.Fatal("PickRemovable on an exhausted key must return -1")
	}
	if df.M() != 0 || len(g.Edges) != 0 {
		t.Fatalf("store not empty after removing every copy (m=%d)", df.M())
	}
}
