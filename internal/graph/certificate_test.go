package graph

import "testing"

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestCertificateRoundTrip(t *testing.T) {
	g := pathGraph(6)
	g.AddEdge(0, 0) // loop should be irrelevant
	labels := []int32{0, 0, 0, 0, 0, 0}
	c, err := BuildCertificate(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Forest) != 5 {
		t.Fatalf("forest has %d edges, want 5", len(c.Forest))
	}
	if err := VerifyCertificate(g, c); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateMultipleComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	labels := []int32{0, 0, 2, 3, 3}
	c, err := BuildCertificate(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Forest) != 2 {
		t.Fatalf("forest size %d", len(c.Forest))
	}
	if err := VerifyCertificate(g, c); err != nil {
		t.Fatal(err)
	}
}

func TestBuildCertificateRejectsSplit(t *testing.T) {
	g := pathGraph(3)
	if _, err := BuildCertificate(g, []int32{0, 0, 2}); err == nil {
		t.Fatal("labels splitting an edge must be rejected")
	}
}

func TestBuildCertificateRejectsMerge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1) // {0,1} and {2,3} disconnected
	g.AddEdge(2, 3)
	if _, err := BuildCertificate(g, []int32{0, 0, 0, 0}); err == nil {
		t.Fatal("labels merging disconnected vertices must be rejected")
	}
}

func TestBuildCertificateLengthMismatch(t *testing.T) {
	if _, err := BuildCertificate(pathGraph(3), []int32{0}); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
}

func TestVerifyCertificateRejectsForgery(t *testing.T) {
	g := pathGraph(4)
	labels := []int32{0, 0, 0, 0}
	c, err := BuildCertificate(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	// forged edge not in graph
	bad := &Certificate{Labels: labels, Forest: []Edge{{U: 0, V: 3}}}
	if VerifyCertificate(g, bad) == nil {
		t.Fatal("edge not in graph must be rejected")
	}
	// cycle in forest
	cyc := &Certificate{Labels: labels, Forest: append(append([]Edge(nil), c.Forest...), c.Forest[0])}
	if VerifyCertificate(g, cyc) == nil {
		t.Fatal("cycle must be rejected")
	}
	// labels spanning two trees
	twoTrees := &Certificate{Labels: labels, Forest: c.Forest[:2]}
	if VerifyCertificate(g, twoTrees) == nil {
		t.Fatal("under-connected forest must be rejected")
	}
	// out-of-range forest edge
	oor := &Certificate{Labels: labels, Forest: []Edge{{U: 0, V: 9}}}
	if VerifyCertificate(g, oor) == nil {
		t.Fatal("out-of-range edge must be rejected")
	}
	if VerifyCertificate(g, nil) == nil {
		t.Fatal("nil certificate must be rejected")
	}
	// original remains valid
	if err := VerifyCertificate(g, c); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateUsesMultisetMembership(t *testing.T) {
	// A forest may use a parallel edge only as many times as it appears.
	g := New(2)
	g.AddEdge(0, 1)
	labels := []int32{0, 0}
	c, _ := BuildCertificate(g, labels)
	dup := &Certificate{Labels: labels, Forest: []Edge{{U: 0, V: 1}, {U: 0, V: 1}}}
	if VerifyCertificate(g, dup) == nil {
		t.Fatal("overusing a single edge must be rejected (it also cycles)")
	}
	if err := VerifyCertificate(g, c); err != nil {
		t.Fatal(err)
	}
}
