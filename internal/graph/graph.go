// Package graph defines the undirected multigraph representation used
// throughout the repository.  Following the paper (§2.1), graphs may contain
// self-loops and parallel edges; vertices are 0..N-1; a self-loop counts once
// toward its endpoint's degree.
//
// Everything in this package is uncharged serving infrastructure: no PRAM
// cost is booked here (the machine in internal/pram charges the model; this
// package only represents inputs and builds adjacency).  Unless a symbol's
// comment says otherwise, functions are single-threaded, values are safe
// for any number of concurrent readers once built, and nothing is safe for
// concurrent mutation.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Edge is an undirected edge between U and V (possibly U == V).
type Edge struct {
	U, V int32
}

// CanonKey packs the edge into a 64-bit multiset key with the smaller
// endpoint in the high word, so both orientations of an undirected edge
// collide — the one canonical form shared by Simplify's dedup and the
// incremental path's remove-batch matching.  O(1), pure, safe anywhere.
func (e Edge) CanonKey() int64 {
	u, v := e.U, e.V
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(uint32(v))
}

// Graph is an undirected multigraph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges []Edge
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	return &Graph{N: n}
}

// FromPairs builds a graph on n vertices from (u,v) pairs.
func FromPairs(n int, pairs [][2]int) *Graph {
	g := New(n)
	for _, p := range pairs {
		g.AddEdge(p[0], p[1])
	}
	return g
}

// M returns the number of edges (counting multiplicities and loops).
func (g *Graph) M() int { return len(g.Edges) }

// AddEdge appends the undirected edge (u,v).
func (g *Graph) AddEdge(u, v int) {
	g.Edges = append(g.Edges, Edge{int32(u), int32(v)})
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	e := make([]Edge, len(g.Edges))
	copy(e, g.Edges)
	return &Graph{N: g.N, Edges: e}
}

// Validate checks that every endpoint is in range.
func (g *Graph) Validate() error {
	for i, e := range g.Edges {
		if e.U < 0 || int(e.U) >= g.N || e.V < 0 || int(e.V) >= g.N {
			return fmt.Errorf("edge %d = (%d,%d) out of range [0,%d)", i, e.U, e.V, g.N)
		}
	}
	return nil
}

// Degrees returns per-vertex degrees.  Per §2.1, a self-loop contributes one
// (not two) to its endpoint's degree.
func (g *Graph) Degrees() []int32 {
	deg := make([]int32, g.N)
	for _, e := range g.Edges {
		if e.U == e.V {
			deg[e.U]++
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}

// MinDegree returns the minimum degree over all vertices (0 if any vertex is
// isolated), matching deg(G) in §2.1.
func (g *Graph) MinDegree() int32 {
	deg := g.Degrees()
	if len(deg) == 0 {
		return 0
	}
	mn := deg[0]
	for _, d := range deg[1:] {
		if d < mn {
			mn = d
		}
	}
	return mn
}

// CSR is a compressed adjacency representation.  Nbr[Off[v]:Off[v+1]] lists
// the neighbors of v; a self-loop appears once, a non-loop edge appears in
// both endpoints' lists.
type CSR struct {
	Off []int64
	Nbr []int32
}

// Deg returns the number of adjacency entries of v.
func (c *CSR) Deg(v int32) int { return int(c.Off[v+1] - c.Off[v]) }

// Neighbors returns the adjacency slice of v (do not modify).
func (c *CSR) Neighbors(v int32) []int32 { return c.Nbr[c.Off[v]:c.Off[v+1]] }

// BuildCSR constructs adjacency lists for g by sequential counting sort:
// O(m+n) time, two passes over the edge list.  Each vertex's neighbors
// appear in edge-scan order — the canonical layout BuildCSROn and
// ExtendPlanOn reproduce exactly on any executor.
func BuildCSR(g *Graph) *CSR {
	n := g.N
	cnt := make([]int64, n+1)
	for _, e := range g.Edges {
		cnt[e.U+1]++
		if e.U != e.V {
			cnt[e.V+1]++
		}
	}
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
	}
	nbr := make([]int32, cnt[n])
	pos := make([]int64, n)
	copy(pos, cnt[:n])
	for _, e := range g.Edges {
		nbr[pos[e.U]] = e.V
		pos[e.U]++
		if e.U != e.V {
			nbr[pos[e.V]] = e.U
			pos[e.V]++
		}
	}
	return &CSR{Off: cnt, Nbr: nbr}
}

// Simplify returns a copy of g with self-loops and parallel edges removed.
// The dedup key is canonical in the endpoint order — (u,v) and (v,u) are
// the same undirected edge, so the smaller endpoint goes in the high word —
// and output edges are emitted in that canonical orientation.
func Simplify(g *Graph) *Graph {
	seen := make(map[int64]struct{}, len(g.Edges))
	out := New(g.N)
	for _, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		k := e.CanonKey()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out.Edges = append(out.Edges, Edge{u, v})
	}
	return out
}

// WriteEdgeList writes "n m" followed by one "u v" line per edge.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n, m int
	if _, err := fmt.Fscan(br, &n, &m); err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("invalid header n=%d m=%d", n, m)
	}
	g := New(n)
	g.Edges = make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		var u, v int
		if _, err := fmt.Fscan(br, &u, &v); err != nil {
			return nil, fmt.Errorf("reading edge %d: %w", i, err)
		}
		g.AddEdge(u, v)
	}
	return g, g.Validate()
}

// ComponentsOf groups vertices by label, returning each component's vertex
// list sorted by the smallest member.  O(n log n) sequential presentation
// helper — hot paths keep flat label arrays instead.
func ComponentsOf(labels []int32) [][]int32 {
	byLabel := map[int32][]int32{}
	for v, l := range labels {
		byLabel[l] = append(byLabel[l], int32(v))
	}
	out := make([][]int32, 0, len(byLabel))
	for _, c := range byLabel {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// SamePartition reports whether two labelings induce the same partition of
// vertices (labels themselves may differ).  O(n) sequential; the
// equivalence check every cross-backend and incremental test is built on.
func SamePartition(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok {
			if x != b[i] {
				return false
			}
		} else {
			fwd[a[i]] = b[i]
		}
		if y, ok := bwd[b[i]]; ok {
			if y != a[i] {
				return false
			}
		} else {
			bwd[b[i]] = a[i]
		}
	}
	return true
}

// NumLabels returns the number of distinct labels.  O(n) sequential with a
// map; solve.NumLabels is the arena-backed equivalent for serving paths.
func NumLabels(labels []int32) int {
	set := map[int32]struct{}{}
	for _, l := range labels {
		set[l] = struct{}{}
	}
	return len(set)
}
