package graph_test

import (
	"testing"

	"parcc/internal/graph"
	"parcc/internal/par"
	"parcc/internal/pram"
)

func randomGraph(n, m int, seed uint64) *graph.Graph {
	g := graph.New(n)
	s := seed
	for i := 0; i < m; i++ {
		s = pram.SplitMix64(s)
		u := int(s % uint64(n))
		s = pram.SplitMix64(s)
		v := int(s % uint64(n))
		g.AddEdge(u, v)
	}
	return g
}

// TestBuildCSROnMatchesSequential is the layout-determinism contract: the
// parallel counting-sort build must produce byte-identical Off and Nbr to
// the sequential builder, for any parallelism degree.
func TestBuildCSROnMatchesSequential(t *testing.T) {
	g := randomGraph(500, 20000, 42) // above the parallel cutoff
	want := graph.BuildCSR(g)
	for _, procs := range []int{2, 3, 8} {
		rt := par.New(par.Procs(procs))
		got := graph.BuildCSROn(rt, g)
		rt.Close()
		if len(got.Off) != len(want.Off) || len(got.Nbr) != len(want.Nbr) {
			t.Fatalf("procs=%d: size mismatch", procs)
		}
		for i := range want.Off {
			if got.Off[i] != want.Off[i] {
				t.Fatalf("procs=%d: Off[%d] = %d, want %d", procs, i, got.Off[i], want.Off[i])
			}
		}
		for i := range want.Nbr {
			if got.Nbr[i] != want.Nbr[i] {
				t.Fatalf("procs=%d: Nbr[%d] = %d, want %d (layout must match sequential exactly)",
					procs, i, got.Nbr[i], want.Nbr[i])
			}
		}
	}
}

func TestPlanDegreeStats(t *testing.T) {
	g := graph.FromPairs(5, [][2]int{{0, 1}, {1, 2}, {2, 2}, {1, 3}})
	p := graph.NewPlan(g)
	// Degrees: 0:1, 1:3, 2:2 (loop counts once), 3:1, 4:0.
	if p.MinDeg != 0 || p.MaxDeg != 3 {
		t.Errorf("MinDeg=%d MaxDeg=%d, want 0,3", p.MinDeg, p.MaxDeg)
	}
	want := g.Degrees()
	got := p.Degrees()
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("deg[%d] = %d, want %d", v, got[v], want[v])
		}
		if p.Degree(int32(v)) != int(want[v]) {
			t.Errorf("Degree(%d) = %d, want %d", v, p.Degree(int32(v)), want[v])
		}
	}
	if !p.Valid() {
		t.Error("fresh plan must be valid")
	}
	g.AddEdge(0, 4)
	if p.Valid() {
		t.Error("plan must detect appended edges as staleness")
	}
}

// TestPlanDetectsInPlaceMutation: rewriting an edge without changing the
// edge count must also invalidate the plan (the fingerprint, not just the
// length, is checked) — otherwise a warm Solver would serve labels from a
// stale adjacency.
func TestPlanDetectsInPlaceMutation(t *testing.T) {
	g := graph.FromPairs(4, [][2]int{{0, 1}, {2, 3}})
	p := graph.NewPlan(g)
	if !p.Valid() {
		t.Fatal("fresh plan must be valid")
	}
	g.Edges[1] = graph.Edge{U: 1, V: 2}
	if p.Valid() {
		t.Error("plan must detect in-place edge mutation as staleness")
	}
}

func TestPlanEmptyGraph(t *testing.T) {
	p := graph.NewPlan(graph.New(0))
	if p.MinDeg != 0 || p.MaxDeg != 0 || !p.Valid() {
		t.Error("empty graph plan")
	}
}

// TestPlanDispatchStats pins the statistics the auto dispatcher reads off
// a cached plan: edge count, average degree (self-loops once), and density.
func TestPlanDispatchStats(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 2) // self-loop: one adjacency entry
	p := graph.NewPlan(g)
	if p.M() != 3 {
		t.Fatalf("M = %d, want 3", p.M())
	}
	if got, want := p.AvgDeg(), 5.0/4.0; got != want {
		t.Fatalf("AvgDeg = %v, want %v", got, want)
	}
	if got, want := p.Density(), 3.0/6.0; got != want {
		t.Fatalf("Density = %v, want %v", got, want)
	}
	empty := graph.NewPlan(graph.New(0))
	if empty.AvgDeg() != 0 || empty.Density() != 0 {
		t.Fatalf("empty plan stats = (%v, %v), want zeros", empty.AvgDeg(), empty.Density())
	}
	one := graph.NewPlan(graph.New(1))
	if one.Density() != 0 {
		t.Fatalf("single-vertex density = %v, want 0", one.Density())
	}
}
