package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewAndAddEdge(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(4, 4)
	if g.N != 5 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	g := New(2)
	g.Edges = append(g.Edges, Edge{U: 0, V: 5})
	if g.Validate() == nil {
		t.Fatal("expected validation error")
	}
}

func TestFromPairs(t *testing.T) {
	g := FromPairs(3, [][2]int{{0, 1}, {1, 2}})
	if g.M() != 2 {
		t.Fatalf("m=%d", g.M())
	}
}

func TestClone(t *testing.T) {
	g := FromPairs(3, [][2]int{{0, 1}})
	h := g.Clone()
	h.AddEdge(1, 2)
	if g.M() != 1 || h.M() != 2 {
		t.Fatal("clone must not share edge storage")
	}
}

func TestDegreesSelfLoopCountsOnce(t *testing.T) {
	// §2.1: each self-loop counts once toward the degree.
	g := FromPairs(3, [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 2}})
	deg := g.Degrees()
	want := []int32{2, 2, 2}
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("deg = %v, want %v", deg, want)
		}
	}
}

func TestMinDegree(t *testing.T) {
	g := FromPairs(4, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if g.MinDegree() != 0 {
		t.Fatalf("isolated vertex 3 should give min degree 0, got %d", g.MinDegree())
	}
	if New(0).MinDegree() != 0 {
		t.Fatal("empty graph min degree should be 0")
	}
}

func TestBuildCSR(t *testing.T) {
	g := FromPairs(4, [][2]int{{0, 1}, {1, 2}, {3, 3}, {0, 1}})
	c := BuildCSR(g)
	if c.Deg(0) != 2 || c.Deg(1) != 3 || c.Deg(2) != 1 {
		t.Fatalf("degrees: %d %d %d", c.Deg(0), c.Deg(1), c.Deg(2))
	}
	// self-loop appears once
	if c.Deg(3) != 1 || c.Neighbors(3)[0] != 3 {
		t.Fatalf("self-loop adjacency wrong: %v", c.Neighbors(3))
	}
}

func TestSimplify(t *testing.T) {
	g := FromPairs(4, [][2]int{{0, 1}, {1, 0}, {2, 2}, {2, 3}, {2, 3}})
	s := Simplify(g)
	if s.M() != 2 {
		t.Fatalf("simplified m=%d, want 2", s.M())
	}
	for _, e := range s.Edges {
		if e.U == e.V {
			t.Fatal("loop survived simplify")
		}
		if e.U > e.V {
			t.Fatal("simplify should canonicalize orientation")
		}
	}
}

// TestSimplifyReversedParallelEdges is the regression test for the dedup
// key: parallel edges recorded in opposite orientations must collapse to
// one edge, including at vertex ids large enough to exercise the packed
// key's word boundaries.
func TestSimplifyReversedParallelEdges(t *testing.T) {
	n := 1 << 21
	big := n - 1
	g := FromPairs(n, [][2]int{
		{3, 9}, {9, 3}, {9, 3}, {3, 9},
		{0, big}, {big, 0},
		{big - 1, big}, {big, big - 1},
		{7, 7}, // loop mixed in
	})
	s := Simplify(g)
	if s.M() != 3 {
		t.Fatalf("simplified m=%d, want 3 (reversed parallels must merge): %v", s.M(), s.Edges)
	}
	seen := map[[2]int32]bool{}
	for _, e := range s.Edges {
		if e.U >= e.V {
			t.Fatalf("edge (%d,%d) not canonically oriented", e.U, e.V)
		}
		seen[[2]int32{e.U, e.V}] = true
	}
	for _, want := range [][2]int32{{3, 9}, {0, int32(big)}, {int32(big) - 1, int32(big)}} {
		if !seen[want] {
			t.Fatalf("missing edge %v in %v", want, s.Edges)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := FromPairs(6, [][2]int{{0, 1}, {2, 3}, {4, 4}, {5, 0}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != g.N || h.M() != g.M() {
		t.Fatalf("round trip changed size: n=%d m=%d", h.N, h.M())
	}
	for i := range g.Edges {
		if g.Edges[i] != h.Edges[i] {
			t.Fatal("round trip changed edges")
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(bytes.NewBufferString("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("2 1\n0")); err == nil {
		t.Error("truncated edge should error")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("-1 0\n")); err == nil {
		t.Error("negative n should error")
	}
	if _, err := ReadEdgeList(bytes.NewBufferString("2 1\n0 7\n")); err == nil {
		t.Error("out-of-range endpoint should error")
	}
}

func TestSamePartition(t *testing.T) {
	a := []int32{0, 0, 2, 2}
	b := []int32{5, 5, 9, 9}
	if !SamePartition(a, b) {
		t.Error("relabeled identical partitions should match")
	}
	c := []int32{0, 0, 0, 2}
	if SamePartition(a, c) {
		t.Error("different partitions should not match")
	}
	if SamePartition(a, []int32{0}) {
		t.Error("length mismatch should not match")
	}
	// Injectivity both ways: merging in either direction must fail.
	if SamePartition([]int32{0, 1}, []int32{0, 0}) {
		t.Error("coarser partition should not match")
	}
	if SamePartition([]int32{0, 0}, []int32{0, 1}) {
		t.Error("finer partition should not match")
	}
}

func TestSamePartitionReflexive(t *testing.T) {
	f := func(labels []int32) bool {
		return SamePartition(labels, labels)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComponentsOf(t *testing.T) {
	comps := ComponentsOf([]int32{7, 7, 3, 3, 3})
	if len(comps) != 2 {
		t.Fatalf("got %d components", len(comps))
	}
	if comps[0][0] != 0 || comps[1][0] != 2 {
		t.Fatalf("components not sorted by smallest member: %v", comps)
	}
}

func TestNumLabels(t *testing.T) {
	if NumLabels([]int32{1, 1, 2, 3}) != 3 {
		t.Error("NumLabels wrong")
	}
	if NumLabels(nil) != 0 {
		t.Error("NumLabels(nil) should be 0")
	}
}
