package graph

import (
	"math/rand"
	"testing"
)

func randomGraph(n, m int, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 0; i < m; i++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// TestExtendPlanMatchesFullBuild: the extended CSR must be byte-identical
// to a from-scratch BuildCSR of the grown graph — offsets, neighbor order,
// degree stats, and a fingerprint that still validates.
func TestExtendPlanMatchesFullBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(200)
		g := randomGraph(n, rng.Intn(3*n), rng)
		p := NewPlan(g)
		// Grow in two rounds to exercise chained extension.
		for round := 0; round < 2; round++ {
			k := 1 + rng.Intn(2*n)
			for i := 0; i < k; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if rng.Intn(6) == 0 {
					v = u // self-loop
				}
				g.AddEdge(u, v)
			}
			np := ExtendPlanOn(nil, p, g)
			if np == nil {
				t.Fatalf("trial %d round %d: extension refused", trial, round)
			}
			want := BuildCSR(g)
			if len(np.CSR.Off) != len(want.Off) || len(np.CSR.Nbr) != len(want.Nbr) {
				t.Fatalf("trial %d: CSR shape differs", trial)
			}
			for i := range want.Off {
				if np.CSR.Off[i] != want.Off[i] {
					t.Fatalf("trial %d: Off[%d] = %d, want %d", trial, i, np.CSR.Off[i], want.Off[i])
				}
			}
			for i := range want.Nbr {
				if np.CSR.Nbr[i] != want.Nbr[i] {
					t.Fatalf("trial %d: Nbr[%d] = %d, want %d", trial, i, np.CSR.Nbr[i], want.Nbr[i])
				}
			}
			full := BuildPlanOn(nil, g)
			if np.MinDeg != full.MinDeg || np.MaxDeg != full.MaxDeg {
				t.Fatalf("trial %d: degree stats (%d,%d), want (%d,%d)",
					trial, np.MinDeg, np.MaxDeg, full.MinDeg, full.MaxDeg)
			}
			if !np.Valid() {
				t.Fatalf("trial %d: extended plan's carried fingerprint does not validate", trial)
			}
			p = np
		}
	}
}

// TestExtendPlanRefusals: extension must return nil whenever the prefix
// contract cannot hold.
func TestExtendPlanRefusals(t *testing.T) {
	g := FromPairs(4, [][2]int{{0, 1}, {1, 2}})
	p := NewPlan(g)
	if ExtendPlanOn(nil, p, g) != nil {
		t.Error("nothing appended: must refuse")
	}
	other := FromPairs(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if ExtendPlanOn(nil, p, other) != nil {
		t.Error("different graph: must refuse")
	}
	g.Edges = g.Edges[:1]
	if ExtendPlanOn(nil, p, g) != nil {
		t.Error("edges removed: must refuse")
	}
	if ExtendPlanOn(nil, nil, g) != nil {
		t.Error("nil plan: must refuse")
	}
}

// TestExtendPlanDetectsPrefixMutation: the carried fingerprint is the
// prefix's fold, so a mutated prefix makes the extended plan invalid under
// the default (untrusting) validation.
func TestExtendPlanDetectsPrefixMutation(t *testing.T) {
	g := FromPairs(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	p := NewPlan(g)
	g.Edges[0] = Edge{U: 2, V: 3} // in-place prefix mutation
	g.AddEdge(0, 4)
	np := ExtendPlanOn(nil, p, g)
	if np == nil {
		t.Fatal("extension itself proceeds (it trusts the prefix)")
	}
	if np.Valid() {
		t.Fatal("Valid must catch the mutated prefix behind an extension")
	}
	if !np.ValidQuick() {
		t.Fatal("ValidQuick (TrustGraph) sees matching lengths by design")
	}
}

// TestInducedInto: compact relabeling, +1 vmap convention, and backing
// reuse.
func TestInducedInto(t *testing.T) {
	g := FromPairs(6, [][2]int{{0, 1}, {1, 0}, {2, 2}, {3, 4}, {4, 5}})
	vmap := make([]int32, 6)
	// Select {0,1,2} -> compact ids 0,1,2: edges (0,1), (1,0), loop at 2.
	vmap[0], vmap[1], vmap[2] = 1, 2, 3
	sub := InducedInto(g, vmap, 3, nil)
	if sub.N != 3 || sub.M() != 3 {
		t.Fatalf("sub = (n=%d, m=%d), want (3, 3)", sub.N, sub.M())
	}
	if sub.Edges[0] != (Edge{U: 0, V: 1}) || sub.Edges[1] != (Edge{U: 1, V: 0}) || sub.Edges[2] != (Edge{U: 2, V: 2}) {
		t.Fatalf("sub edges = %v", sub.Edges)
	}
	// Reuse: the smaller selection {3,4,5} fits the warm backing.
	clear(vmap)
	for i, v := range []int32{3, 4, 5} {
		vmap[v] = int32(i) + 1
	}
	before := &sub.Edges[0]
	sub2 := InducedInto(g, vmap, 3, sub)
	if sub2 != sub || &sub2.Edges[0] != before {
		t.Fatal("InducedInto must reuse the provided backing")
	}
	if sub2.M() != 2 || sub2.Edges[0] != (Edge{U: 0, V: 1}) || sub2.Edges[1] != (Edge{U: 1, V: 2}) {
		t.Fatalf("reused sub edges = %v", sub2.Edges)
	}
}
