package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDIMACS writes g in the DIMACS edge format:
//
//	c comment
//	p edge <n> <m>
//	e <u> <v>      (1-based endpoints)
//
// the lingua franca of graph benchmarks, so generated workloads can be fed
// to external solvers.
func WriteDIMACS(w io.Writer, g *Graph, comment string) error {
	bw := bufio.NewWriter(w)
	if comment != "" {
		for _, line := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "c %s\n", line); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e.U+1, e.V+1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDIMACS parses the DIMACS edge format ("p edge"/"p col" headers are
// both accepted; "c" lines are skipped; endpoints are 1-based).
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		switch text[0] {
		case 'p':
			if g != nil {
				return nil, fmt.Errorf("line %d: duplicate problem line", line)
			}
			var kind string
			var n, m int
			if _, err := fmt.Sscanf(text, "p %s %d %d", &kind, &n, &m); err != nil {
				return nil, fmt.Errorf("line %d: bad problem line: %v", line, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("line %d: negative sizes", line)
			}
			g = New(n)
			g.Edges = make([]Edge, 0, m)
		case 'e', 'a':
			if g == nil {
				return nil, fmt.Errorf("line %d: edge before problem line", line)
			}
			var u, v int
			if _, err := fmt.Sscanf(text[1:], "%d %d", &u, &v); err != nil {
				return nil, fmt.Errorf("line %d: bad edge: %v", line, err)
			}
			if u < 1 || u > g.N || v < 1 || v > g.N {
				return nil, fmt.Errorf("line %d: endpoint out of range", line)
			}
			g.AddEdge(u-1, v-1)
		default:
			return nil, fmt.Errorf("line %d: unknown record %q", line, text[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("missing problem line")
	}
	return g, nil
}
