package graph

// Delta-aware plan maintenance for the incremental serving path: a live
// graph only ever grows by appended edges between rebuilds (removals force
// a full rebuild), so the cached CSR can be extended by merging the old
// adjacency with the appended endpoints instead of re-sorting the whole
// edge list.  Extension is one O(n) offset pass, one O(m) straight memcpy
// of the old neighbor block, and O(batch) scatter of the new entries —
// no counting sort, no full edge rescan.

// ExtendPlanOn returns a plan covering all of g's edges, reusing prev's
// adjacency for the prefix it was built from.  prev must be a plan for g
// whose build prefix is a strict prefix of the current edge list; when it
// is not (different graph, edges removed, or nothing appended), ExtendPlanOn
// returns nil and the caller falls back to a full BuildPlanOn.
//
// The extended layout is byte-identical to BuildCSR(g): appended edges come
// after the prefix in the edge scan, so each vertex's new neighbors land
// after its old ones, in append order.  The fingerprint is carried forward
// by continuing the fold over the appended edges only — the caller is
// trusted not to have mutated the prefix in place; run Valid on the result
// to verify that when the graph is not session-owned.
//
// Uncharged helper (plan builds are serving infrastructure, not PRAM
// steps).  Not safe to call while readers use prev concurrently with a
// mutation of g; the Solver serializes it under the session lock.
func ExtendPlanOn(e Exec, prev *Plan, g *Graph) *Plan {
	if prev == nil || prev.G != g || prev.builtM >= len(g.Edges) {
		return nil
	}
	added := g.Edges[prev.builtM:]
	n := g.N
	old := prev.CSR

	// Per-vertex appended degree (self-loops count once, §2.1).
	addDeg := make([]int64, n)
	for _, ed := range added {
		addDeg[ed.U]++
		if ed.U != ed.V {
			addDeg[ed.V]++
		}
	}
	off := make([]int64, n+1)
	var shift int64
	for v := 0; v < n; v++ {
		off[v] = old.Off[v] + shift
		shift += addDeg[v]
		off[v+1] = old.Off[v+1] + shift // overwritten next iteration except at v = n-1
	}
	nbr := make([]int32, off[n])

	// Move the old adjacency blocks to their shifted positions.  Each
	// vertex's block is a contiguous copy; parallelize over vertices when a
	// runtime is available (blocks are disjoint, no atomics needed).
	copyOld := func(v int) {
		lo, hi := old.Off[v], old.Off[v+1]
		if lo < hi {
			copy(nbr[off[v]:off[v]+(hi-lo)], old.Nbr[lo:hi])
		}
	}
	if e != nil && e.Procs() > 1 && len(old.Nbr) >= planParallelCutoff {
		e.Run(n, copyOld)
	} else {
		for v := 0; v < n; v++ {
			copyOld(v)
		}
	}

	// Scatter the appended endpoints after each vertex's old block, in
	// append order — the order BuildCSR would have produced.
	pos := addDeg // reuse: pos[v] = next free slot for v's new entries
	for v := 0; v < n; v++ {
		pos[v] = off[v] + (old.Off[v+1] - old.Off[v])
	}
	for _, ed := range added {
		nbr[pos[ed.U]] = ed.V
		pos[ed.U]++
		if ed.U != ed.V {
			nbr[pos[ed.V]] = ed.U
			pos[ed.V]++
		}
	}

	p := &Plan{
		G:      g,
		CSR:    &CSR{Off: off, Nbr: nbr},
		builtM: len(g.Edges),
		fp:     edgeFold(prev.fp, added),
		// Resample locality over the full list: the appended batch can
		// change the statistic, and the sweep is O(localityProbes).
		loc: EdgeLocality(n, g.Edges),
	}
	if n > 0 {
		mn, mx := int32(1<<30), int32(0)
		for v := 0; v < n; v++ {
			d := int32(off[v+1] - off[v])
			if d < mn {
				mn = d
			}
			if d > mx {
				mx = d
			}
		}
		p.MinDeg, p.MaxDeg = mn, mx
	}
	return p
}

// InducedInto is the serving-path sibling of InducedSubgraph: extraction
// through a caller-owned dense vertex map instead of a freshly allocated
// hash map, with a reusable output graph.  It extracts the subgraph of g
// induced by the vertices v with vmap[v] != 0, relabeled to the compact
// ids vmap[v]-1 (the +1 convention lets callers hand in a zeroed arena
// buffer with 0 meaning "absent").
// Edges are kept when their first endpoint is selected — the incremental
// path guarantees endpoints of one edge are always in the same component,
// so selection is component-closed; nVerts is the number of selected
// vertices.  The result reuses out's edge backing when provided (pass nil
// for a fresh graph), which makes repeated dirty-region extractions
// allocation-free once warm.
//
// Uncharged helper: one sequential O(m) edge scan (the scoped re-solve it
// feeds is the expensive part).  Not safe for concurrent use with writers
// of g or vmap.
func InducedInto(g *Graph, vmap []int32, nVerts int, out *Graph) *Graph {
	if out == nil {
		out = New(nVerts)
	}
	out.N = nVerts
	out.Edges = out.Edges[:0]
	for _, ed := range g.Edges {
		su := vmap[ed.U]
		if su == 0 {
			continue
		}
		out.Edges = append(out.Edges, Edge{U: su - 1, V: vmap[ed.V] - 1})
	}
	return out
}
