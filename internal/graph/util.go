package graph

import (
	"fmt"
	"sort"
)

// InducedSubgraph returns the subgraph induced on the given vertices,
// relabeled to 0..len(verts)-1 in the given order, plus the mapping back to
// original ids.  Edges with an endpoint outside the set are dropped; loops
// and parallel edges inside it are kept (multigraph semantics).
func InducedSubgraph(g *Graph, verts []int32) (*Graph, []int32) {
	idx := make(map[int32]int32, len(verts))
	back := make([]int32, len(verts))
	for i, v := range verts {
		idx[v] = int32(i)
		back[i] = v
	}
	out := New(len(verts))
	for _, e := range g.Edges {
		u, okU := idx[e.U]
		v, okV := idx[e.V]
		if okU && okV {
			out.Edges = append(out.Edges, Edge{U: u, V: v})
		}
	}
	return out, back
}

// Relabel renames vertices through perm (perm[v] is v's new id, a
// permutation of 0..n-1).  Adversarial relabelings exercise the
// label-ordering sensitivity of hook-to-smaller algorithms.
func Relabel(g *Graph, perm []int32) (*Graph, error) {
	if len(perm) != g.N {
		return nil, fmt.Errorf("perm has %d entries for %d vertices", len(perm), g.N)
	}
	seen := make([]bool, g.N)
	for _, p := range perm {
		if p < 0 || int(p) >= g.N || seen[p] {
			return nil, fmt.Errorf("perm is not a permutation")
		}
		seen[p] = true
	}
	out := New(g.N)
	out.Edges = make([]Edge, len(g.Edges))
	for i, e := range g.Edges {
		out.Edges[i] = Edge{U: perm[e.U], V: perm[e.V]}
	}
	return out, nil
}

// Stats summarizes a graph for reports.
type Stats struct {
	N, M          int
	Loops         int
	Parallel      int // edges beyond the first between a pair
	Isolated      int
	MinDeg        int32
	MaxDeg        int32
	AvgDeg        float64
	DegreeHistLog []int // bucket i counts vertices with degree in [2^i, 2^(i+1))
}

// Summarize computes Stats in one pass.
func Summarize(g *Graph) Stats {
	s := Stats{N: g.N, M: len(g.Edges)}
	deg := g.Degrees()
	seen := make(map[int64]struct{}, len(g.Edges))
	for _, e := range g.Edges {
		if e.U == e.V {
			s.Loops++
			continue
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		k := int64(u)<<32 | int64(uint32(v))
		if _, dup := seen[k]; dup {
			s.Parallel++
		} else {
			seen[k] = struct{}{}
		}
	}
	if g.N == 0 {
		return s
	}
	s.MinDeg = deg[0]
	var total int64
	for _, d := range deg {
		if d == 0 {
			s.Isolated++
		}
		if d < s.MinDeg {
			s.MinDeg = d
		}
		if d > s.MaxDeg {
			s.MaxDeg = d
		}
		total += int64(d)
		b := 0
		for dd := d; dd > 1; dd >>= 1 {
			b++
		}
		for len(s.DegreeHistLog) <= b {
			s.DegreeHistLog = append(s.DegreeHistLog, 0)
		}
		s.DegreeHistLog[b]++
	}
	s.AvgDeg = float64(total) / float64(g.N)
	return s
}

// String renders Stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d loops=%d parallel=%d isolated=%d deg[min=%d avg=%.2f max=%d]",
		s.N, s.M, s.Loops, s.Parallel, s.Isolated, s.MinDeg, s.AvgDeg, s.MaxDeg)
}

// ComponentSizes returns the multiset of component sizes (descending) given
// a labeling.
func ComponentSizes(labels []int32) []int {
	count := map[int32]int{}
	for _, l := range labels {
		count[l]++
	}
	out := make([]int, 0, len(count))
	for _, c := range count {
		out = append(out, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
