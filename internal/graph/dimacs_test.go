package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	g := FromPairs(5, [][2]int{{0, 1}, {1, 2}, {4, 4}, {3, 0}})
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, "test graph\nsecond line"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "c test graph") || !strings.Contains(out, "c second line") {
		t.Error("comment lines missing")
	}
	if !strings.Contains(out, "p edge 5 4") {
		t.Errorf("problem line missing:\n%s", out)
	}
	h, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != g.N || h.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d", h.N, h.M())
	}
	for i := range g.Edges {
		if g.Edges[i] != h.Edges[i] {
			t.Fatal("edges changed in round trip")
		}
	}
}

func TestReadDIMACSSkipsCommentsAndBlank(t *testing.T) {
	in := "c hello\n\np edge 3 2\nc mid\ne 1 2\ne 2 3\n"
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
}

func TestReadDIMACSAcceptsArcRecords(t *testing.T) {
	g, err := ReadDIMACS(strings.NewReader("p sp 2 1\na 1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.Edges[0] != (Edge{U: 0, V: 1}) {
		t.Fatal("arc record not parsed")
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no problem":     "e 1 2\n",
		"empty":          "",
		"double problem": "p edge 2 1\np edge 2 1\n",
		"bad record":     "p edge 2 1\nx 1 2\n",
		"range":          "p edge 2 1\ne 1 9\n",
		"negative":       "p edge -2 1\n",
		"malformed edge": "p edge 2 1\ne one two\n",
	}
	for name, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
