package graph

// DynForest is the mutable edge store behind the spanning-forest dynamic
// connectivity of the live session (internal/dynconn): it owns the
// adjacency, multiset, and forest-flag views of a Graph whose edge list
// the incremental API mutates in place.  Three access paths, all O(1) or
// O(1) amortized:
//
//   - per-vertex incident-edge iteration (First/NextIncident), the walk
//     the replacement-edge search runs — a doubly-linked handle list per
//     endpoint, so Remove unlinks in O(1);
//   - multiset lookup by canonical key (CountKey/PickRemovable), the
//     deletion contract's "one occurrence per batch entry, either
//     orientation" resolved without the legacy O(m) sweep — a singly
//     linked chain per CanonKey;
//   - positional identity with g.Edges (pos/byPos), kept exact under
//     swap-remove so the Graph the rest of the stack sees (plan builds,
//     scoped re-solves, snapshots) is always the live multiset.  Removal
//     permutes the edge order, which nothing downstream depends on — the
//     session invalidates its cached plan on every removal anyway.
//
// Handles are stable int32 ids recycled through a free list; the store
// supports m < 2^31 edges, like the rest of the int32-indexed stack.
// DynForest is orchestrator-owned (the Solver's session lock): no method
// is safe for concurrent use.
type DynForest struct {
	g    *Graph
	head []int32 // per-vertex adjacency head handle, -1 when empty

	// Per-handle storage.  Side 0 is the adjacency list at u[h], side 1
	// the list at v[h]; a self-loop is linked on side 0 only.
	u, v    []int32
	next    [][2]int32
	prev    [][2]int32
	keyNext []int32 // CanonKey chain
	forest  []bool  // h is a spanning-forest edge
	pos     []int32 // handle -> index in g.Edges

	byPos   []int32 // index in g.Edges -> handle
	keyHead map[int64]int32
	free    []int32
}

// NewDynForest indexes g's current edge list; handle i starts as edge
// position i (the identity SetForestAll relies on).  All forest flags
// start false.  The store takes over g.Edges: mutate it only through
// Insert/Remove afterwards.
func NewDynForest(g *Graph) *DynForest {
	m := len(g.Edges)
	df := &DynForest{
		g:       g,
		head:    make([]int32, g.N),
		u:       make([]int32, m),
		v:       make([]int32, m),
		next:    make([][2]int32, m),
		prev:    make([][2]int32, m),
		keyNext: make([]int32, m),
		forest:  make([]bool, m),
		pos:     make([]int32, m),
		byPos:   make([]int32, m),
		keyHead: make(map[int64]int32, m),
	}
	for i := range df.head {
		df.head[i] = -1
	}
	for i, e := range g.Edges {
		h := int32(i)
		df.u[h], df.v[h] = e.U, e.V
		df.pos[h] = h
		df.byPos[i] = h
		df.link(h)
	}
	return df
}

// SetForestAll installs the initial forest flags: marks[i] applies to the
// edge at position i.  Valid only immediately after NewDynForest (handles
// equal positions).
func (df *DynForest) SetForestAll(marks []bool) {
	copy(df.forest, marks[:len(df.byPos)])
}

// M returns the number of live edges.
func (df *DynForest) M() int { return len(df.byPos) }

// U, V, IsForest read handle h's endpoints and forest flag.
func (df *DynForest) U(h int32) int32       { return df.u[h] }
func (df *DynForest) V(h int32) int32       { return df.v[h] }
func (df *DynForest) IsForest(h int32) bool { return df.forest[h] }

// SetForest sets handle h's forest flag.
func (df *DynForest) SetForest(h int32, b bool) { df.forest[h] = b }

// Other returns the endpoint of h opposite x (x itself for a self-loop).
func (df *DynForest) Other(h, x int32) int32 {
	if df.u[h] == x {
		return df.v[h]
	}
	return df.u[h]
}

// First returns the first incident handle of x (-1 when none).
func (df *DynForest) First(x int32) int32 { return df.head[x] }

// NextIncident returns the handle after h in x's incidence list (-1 at the
// end).  h must be incident to x.
func (df *DynForest) NextIncident(x, h int32) int32 {
	return df.next[h][df.sideOf(h, x)]
}

// HandleAt returns the handle of the edge at position i of g.Edges.
func (df *DynForest) HandleAt(i int) int32 { return df.byPos[i] }

// CountKey returns the number of live occurrences of the canonical key k,
// counting at most max (the validation pass only needs "enough").
func (df *DynForest) CountKey(k int64, max int) int {
	c := 0
	h, ok := df.keyHead[k]
	for ok && c < max {
		c++
		if h = df.keyNext[h]; h < 0 {
			break
		}
	}
	if !ok {
		return 0
	}
	return c
}

// PickRemovable returns a live handle with canonical key k, preferring a
// non-forest occurrence — removing a parallel copy must never disturb the
// forest, and the acyclicity invariant (at most one forest copy per key)
// makes any non-forest pick safe.  Returns -1 when the key is absent.
func (df *DynForest) PickRemovable(k int64) int32 {
	h, ok := df.keyHead[k]
	if !ok {
		return -1
	}
	first := h
	for h >= 0 {
		if !df.forest[h] {
			return h
		}
		h = df.keyNext[h]
	}
	return first
}

// Insert appends e to g.Edges and registers it, returning its handle.
func (df *DynForest) Insert(e Edge, forest bool) int32 {
	var h int32
	if n := len(df.free); n > 0 {
		h = df.free[n-1]
		df.free = df.free[:n-1]
		df.u[h], df.v[h] = e.U, e.V
		df.forest[h] = forest
	} else {
		h = int32(len(df.u))
		df.u = append(df.u, e.U)
		df.v = append(df.v, e.V)
		df.next = append(df.next, [2]int32{})
		df.prev = append(df.prev, [2]int32{})
		df.keyNext = append(df.keyNext, -1)
		df.forest = append(df.forest, forest)
		df.pos = append(df.pos, 0)
	}
	df.pos[h] = int32(len(df.g.Edges))
	df.g.Edges = append(df.g.Edges, e)
	df.byPos = append(df.byPos, h)
	df.link(h)
	return h
}

// Remove deletes handle h: unlinks both adjacency sides and the key chain,
// swap-removes its g.Edges slot (patching the moved edge's position), and
// recycles the handle.
func (df *DynForest) Remove(h int32) {
	x, y := df.u[h], df.v[h]
	df.detach(h, 0, x)
	if y != x {
		df.detach(h, 1, y)
	}
	df.keyUnlink(h, Edge{U: x, V: y}.CanonKey())
	p := int(df.pos[h])
	last := len(df.g.Edges) - 1
	if p != last {
		moved := df.byPos[last]
		df.g.Edges[p] = df.g.Edges[last]
		df.pos[moved] = int32(p)
		df.byPos[p] = moved
	}
	df.g.Edges = df.g.Edges[:last]
	df.byPos = df.byPos[:last]
	df.free = append(df.free, h)
}

// sideOf returns the side of h anchored at x: 0 iff x is h's u endpoint
// (self-loops live on side 0 only, matching this test).
func (df *DynForest) sideOf(h, x int32) int {
	if df.u[h] == x {
		return 0
	}
	return 1
}

func (df *DynForest) link(h int32) {
	x, y := df.u[h], df.v[h]
	df.attach(h, 0, x)
	if y != x {
		df.attach(h, 1, y)
	} else {
		df.next[h][1], df.prev[h][1] = -1, -1
	}
	k := Edge{U: x, V: y}.CanonKey()
	if old, ok := df.keyHead[k]; ok {
		df.keyNext[h] = old
	} else {
		df.keyNext[h] = -1
	}
	df.keyHead[k] = h
}

func (df *DynForest) attach(h int32, side int, x int32) {
	nh := df.head[x]
	df.next[h][side] = nh
	df.prev[h][side] = -1
	if nh >= 0 {
		df.prev[nh][df.sideOf(nh, x)] = h
	}
	df.head[x] = h
}

func (df *DynForest) detach(h int32, side int, x int32) {
	nh, ph := df.next[h][side], df.prev[h][side]
	if ph >= 0 {
		df.next[ph][df.sideOf(ph, x)] = nh
	} else {
		df.head[x] = nh
	}
	if nh >= 0 {
		df.prev[nh][df.sideOf(nh, x)] = ph
	}
}

func (df *DynForest) keyUnlink(h int32, k int64) {
	cur := df.keyHead[k]
	if cur == h {
		if nx := df.keyNext[h]; nx >= 0 {
			df.keyHead[k] = nx
		} else {
			delete(df.keyHead, k)
		}
		return
	}
	for df.keyNext[cur] != h {
		cur = df.keyNext[cur]
	}
	df.keyNext[cur] = df.keyNext[h]
}
