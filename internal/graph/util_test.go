package graph

import (
	"strings"
	"testing"
)

func TestInducedSubgraph(t *testing.T) {
	g := FromPairs(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {1, 1}})
	sub, back := InducedSubgraph(g, []int32{1, 2, 3})
	if sub.N != 3 {
		t.Fatalf("n=%d", sub.N)
	}
	// kept: (1,2)->(0,1), (2,3)->(1,2), (1,1)->(0,0); dropped: (0,1),(4,5)
	if sub.M() != 3 {
		t.Fatalf("m=%d, want 3", sub.M())
	}
	if back[0] != 1 || back[2] != 3 {
		t.Fatalf("back map %v", back)
	}
}

func TestInducedSubgraphEmpty(t *testing.T) {
	g := FromPairs(3, [][2]int{{0, 1}})
	sub, back := InducedSubgraph(g, nil)
	if sub.N != 0 || sub.M() != 0 || len(back) != 0 {
		t.Fatal("empty induced subgraph wrong")
	}
}

func TestRelabel(t *testing.T) {
	g := FromPairs(3, [][2]int{{0, 1}, {1, 2}})
	h, err := Relabel(g, []int32{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.Edges[0] != (Edge{U: 2, V: 0}) || h.Edges[1] != (Edge{U: 0, V: 1}) {
		t.Fatalf("relabel wrong: %v", h.Edges)
	}
}

func TestRelabelErrors(t *testing.T) {
	g := FromPairs(3, [][2]int{{0, 1}})
	if _, err := Relabel(g, []int32{0, 1}); err == nil {
		t.Error("short perm should error")
	}
	if _, err := Relabel(g, []int32{0, 0, 1}); err == nil {
		t.Error("non-permutation should error")
	}
	if _, err := Relabel(g, []int32{0, 1, 9}); err == nil {
		t.Error("out-of-range perm should error")
	}
}

func TestSummarize(t *testing.T) {
	g := FromPairs(5, [][2]int{{0, 1}, {0, 1}, {2, 2}, {1, 3}})
	s := Summarize(g)
	if s.Loops != 1 || s.Parallel != 1 || s.Isolated != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinDeg != 0 || s.MaxDeg != 3 {
		t.Fatalf("degrees = %+v", s)
	}
	if !strings.Contains(s.String(), "loops=1") {
		t.Error("String rendering missing fields")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(New(0))
	if s.N != 0 || s.MaxDeg != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestSummarizeHistogram(t *testing.T) {
	// degrees: 0 -> bucket 0; 1 -> bucket 0; 2,3 -> bucket 1; 4..7 -> 2.
	g := FromPairs(3, [][2]int{{0, 1}, {0, 1}, {0, 2}, {0, 2}})
	s := Summarize(g) // deg(0)=4, deg(1)=2, deg(2)=2
	if len(s.DegreeHistLog) != 3 {
		t.Fatalf("hist %v", s.DegreeHistLog)
	}
	if s.DegreeHistLog[1] != 2 || s.DegreeHistLog[2] != 1 {
		t.Fatalf("hist %v", s.DegreeHistLog)
	}
}

func TestComponentSizes(t *testing.T) {
	sizes := ComponentSizes([]int32{0, 0, 0, 3, 3, 5})
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
	if len(ComponentSizes(nil)) != 0 {
		t.Error("empty labels")
	}
}
