package graph

import "fmt"

// Certificate is an independently checkable witness for a component
// labeling: a spanning forest using only input edges.  Any labeling our
// algorithms produce can be certified in O(m α(n)) sequential time, and a
// third party can validate the certificate without trusting the solver.
type Certificate struct {
	Labels []int32
	Forest []Edge // spanning-forest edges drawn from the input multigraph
}

// BuildCertificate constructs a spanning forest consistent with labels.
// It errors if labels merge vertices that the edges do not connect, or
// split vertices that they do — i.e. it doubles as an exact checker.
func BuildCertificate(g *Graph, labels []int32) (*Certificate, error) {
	if len(labels) != g.N {
		return nil, fmt.Errorf("labels length %d for %d vertices", len(labels), g.N)
	}
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	forest := make([]Edge, 0, g.N)
	for _, e := range g.Edges {
		if labels[e.U] != labels[e.V] {
			return nil, fmt.Errorf("labels split edge (%d,%d)", e.U, e.V)
		}
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[rv] = ru
			forest = append(forest, e)
		}
	}
	// The labeling must not merge vertices the edges leave apart: all
	// vertices sharing a label must share a union-find representative.
	rep := map[int32]int32{} // label -> union-find representative
	for v := 0; v < g.N; v++ {
		r := find(int32(v))
		if prev, ok := rep[labels[v]]; ok {
			if prev != r {
				return nil, fmt.Errorf("label %d covers disconnected vertices", labels[v])
			}
		} else {
			rep[labels[v]] = r
		}
	}
	return &Certificate{Labels: labels, Forest: forest}, nil
}

// VerifyCertificate checks a certificate against the graph from scratch:
// every forest edge must exist in the multigraph, the forest must be
// acyclic, and its components must coincide with the labels.
func VerifyCertificate(g *Graph, c *Certificate) error {
	if c == nil || len(c.Labels) != g.N {
		return fmt.Errorf("malformed certificate")
	}
	// multiset membership of forest edges
	have := map[int64]int{}
	for _, e := range g.Edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		have[int64(u)<<32|int64(uint32(v))]++
	}
	uf := make([]int32, g.N)
	for i := range uf {
		uf[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	for _, e := range c.Forest {
		u, v := e.U, e.V
		if u < 0 || int(u) >= g.N || v < 0 || int(v) >= g.N {
			return fmt.Errorf("forest edge (%d,%d) out of range", u, v)
		}
		ku, kv := u, v
		if ku > kv {
			ku, kv = kv, ku
		}
		k := int64(ku)<<32 | int64(uint32(kv))
		if have[k] == 0 {
			return fmt.Errorf("forest edge (%d,%d) not in the graph", u, v)
		}
		have[k]--
		ru, rv := find(u), find(v)
		if ru == rv {
			return fmt.Errorf("forest edge (%d,%d) closes a cycle", u, v)
		}
		uf[rv] = ru
	}
	// forest components must equal the labeling's partition
	repByLabel := map[int32]int32{}
	repByRoot := map[int32]int32{}
	for v := 0; v < g.N; v++ {
		r := find(int32(v))
		l := c.Labels[v]
		if prev, ok := repByLabel[l]; ok && prev != r {
			return fmt.Errorf("label %d spans two forest trees", l)
		}
		repByLabel[l] = r
		if prev, ok := repByRoot[r]; ok && prev != l {
			return fmt.Errorf("forest tree of %d spans two labels", v)
		}
		repByRoot[r] = l
	}
	return nil
}
