package graph

import "sync/atomic"

// Exec is the minimal parallel-executor surface the graph layer uses to
// build plans on a runtime.  It is structurally identical to pram.Executor
// and par.Exec (this package imports neither), so a Machine's installed
// executor or a par.Runtime can be passed straight in.
type Exec interface {
	// Run executes body(i) for every i in [0,n), returning when all calls
	// have completed.
	Run(n int, body func(i int))
	// Procs reports the parallelism degree.
	Procs() int
}

// coarseExec is the optional chunk-size-1 dispatch par.Runtime provides;
// the scatter pass prefers it so a handful of coarse range tasks still
// spread across the pool.
type coarseExec interface {
	RunCoarse(n int, body func(i int))
}

// Plan is the cached per-graph solve plan: the CSR adjacency plus degree
// statistics, built once and shared by every consumer (baseline BFS,
// spectral estimators, repeated Solver.Solve calls).  A Plan is immutable
// after construction and safe for concurrent readers.
type Plan struct {
	G   *Graph
	CSR *CSR
	// MinDeg and MaxDeg are the extreme vertex degrees (§2.1 convention:
	// a self-loop counts once).  MinDeg is 0 when any vertex is isolated.
	MinDeg, MaxDeg int32

	builtM int    // len(G.Edges) at build time
	fp     uint64 // content fingerprint of G.Edges[:builtM] at build time
	loc    float64
	degs   atomic.Pointer[[]int32]
}

// fpOffset is the FNV offset basis the edge fingerprint folds from.
const fpOffset = uint64(0xcbf29ce484222325)

// edgeFold continues an order-sensitive content hash of an edge list (an
// FNV-style fold) from h.  Because it is a pure left fold, the fingerprint
// of an extended edge list is edgeFold(fp, added) — which is what lets
// ExtendPlanOn carry a valid fingerprint forward without rescanning the
// prefix.  Uncharged helper; single-threaded.
func edgeFold(h uint64, edges []Edge) uint64 {
	for _, e := range edges {
		h = (h ^ (uint64(uint32(e.U))<<32 | uint64(uint32(e.V)))) * 0x100000001b3
	}
	return h
}

// edgeFingerprint is the fold over a whole edge list.  Validating a cached
// plan against it costs one cheap pass over the edges — negligible next to
// any solve, which is Ω(m) — and catches in-place mutation, which a length
// check alone would miss.
func edgeFingerprint(edges []Edge) uint64 { return edgeFold(fpOffset, edges) }

// NewPlan builds a plan single-threaded.
func NewPlan(g *Graph) *Plan { return BuildPlanOn(nil, g) }

// BuildPlanOn builds a plan with the CSR constructed in parallel on e via
// counting sort (a nil executor, or Procs()==1, falls back to the
// sequential build).  The resulting adjacency layout is identical to
// BuildCSR's for any executor and parallelism degree.
func BuildPlanOn(e Exec, g *Graph) *Plan {
	p := &Plan{
		G: g, CSR: BuildCSROn(e, g),
		builtM: len(g.Edges), fp: edgeFingerprint(g.Edges),
		loc: EdgeLocality(g.N, g.Edges),
	}
	if g.N > 0 {
		mn, mx := int32(1<<30), int32(0)
		for v := 0; v < g.N; v++ {
			d := int32(p.CSR.Off[v+1] - p.CSR.Off[v])
			if d < mn {
				mn = d
			}
			if d > mx {
				mx = d
			}
		}
		p.MinDeg, p.MaxDeg = mn, mx
	}
	return p
}

// Valid reports whether the plan still describes its graph: both appends
// and in-place edge mutations after the build make the cached adjacency
// stale.  Costs one O(m) fingerprint pass.
func (p *Plan) Valid() bool {
	return p.builtM == len(p.G.Edges) && p.fp == edgeFingerprint(p.G.Edges)
}

// ValidQuick is the O(1) structural check behind Options.TrustGraph: it
// catches appends and removals (the edge count changed) but trusts the
// caller not to have mutated existing edges in place, skipping Valid's
// O(m) fingerprint pass.  Steady-state serving on an unchanging graph
// uses it to make plan-cache validation free.
func (p *Plan) ValidQuick() bool { return p.builtM == len(p.G.Edges) }

// M returns the edge count the plan was built at.
func (p *Plan) M() int { return p.builtM }

// AvgDeg returns the mean adjacency-list length (2m/n, with each self-loop
// counted once, matching the §2.1 degree convention MinDeg/MaxDeg use).
// Zero on an empty vertex set.
func (p *Plan) AvgDeg() float64 {
	if p.G.N == 0 {
		return 0
	}
	return float64(len(p.CSR.Nbr)) / float64(p.G.N)
}

// Density returns m / (n·(n−1)/2), the filled fraction of the simple-graph
// edge slots (> 1 is possible on multigraphs).  Zero when n < 2.
func (p *Plan) Density() float64 {
	n := float64(p.G.N)
	if p.G.N < 2 {
		return 0
	}
	return float64(p.builtM) / (n * (n - 1) / 2)
}

// Locality returns the sampled edge-locality statistic of the build-time
// edge list (see EdgeLocality) — the dispatcher's signal for mesh-like
// graphs whose neighbors live close in vertex-id space.
func (p *Plan) Locality() float64 { return p.loc }

// localityProbes bounds EdgeLocality's sample; localityWindow is the
// id-distance multiplier under which an edge counts as local.
const (
	localityProbes = 1024
	localityWindow = 16
)

// EdgeLocality estimates the fraction of edges whose endpoints are close in
// vertex-id space: an edge (u,v) is local when |u−v|·localityWindow ≤ n.
// Generated meshes — grids, tori, paths — connect id-adjacent vertices and
// score ≈ 1; random sparse graphs connect uniform pairs and score ≈
// 2/localityWindow; stars and trees rooted at low ids land in between.  The
// statistic is sampled by an even stride over at most localityProbes edges,
// so it is O(1) per plan build, deterministic, and independent of edge
// order within a stride bucket.  Zero on an empty edge list.
func EdgeLocality(n int, edges []Edge) float64 {
	m := len(edges)
	if m == 0 || n == 0 {
		return 0
	}
	stride := m / localityProbes
	if stride < 1 {
		stride = 1
	}
	probes, local := 0, 0
	for i := 0; i < m; i += stride {
		ed := edges[i]
		d := int(ed.U) - int(ed.V)
		if d < 0 {
			d = -d
		}
		probes++
		if d*localityWindow <= n {
			local++
		}
	}
	return float64(local) / float64(probes)
}

// Degree returns the degree of v from the cached adjacency.
func (p *Plan) Degree(v int32) int { return p.CSR.Deg(v) }

// Degrees returns the per-vertex degree array, materialized on first use
// and cached (callers must not modify it).
func (p *Plan) Degrees() []int32 {
	if d := p.degs.Load(); d != nil {
		return *d
	}
	deg := make([]int32, p.G.N)
	for v := range deg {
		deg[v] = int32(p.CSR.Off[v+1] - p.CSR.Off[v])
	}
	p.degs.Store(&deg)
	return deg
}

// planParallelCutoff is the edge count below which the parallel CSR build
// isn't worth the extra scans.
const planParallelCutoff = 1 << 13

// BuildCSROn constructs adjacency lists for g on the executor, by parallel
// counting sort: atomic per-vertex counts, a prefix scan, and a scatter
// partitioned over degree-balanced vertex ranges.  Each range pass scans
// the edge list in input order and places only the endpoints it owns, so
// every adjacency list comes out in exactly the order the sequential
// BuildCSR produces — the layout is deterministic and backend-independent.
func BuildCSROn(e Exec, g *Graph) *CSR {
	if e == nil || e.Procs() <= 1 || len(g.Edges) < planParallelCutoff {
		return BuildCSR(g)
	}
	n := g.N
	edges := g.Edges
	cnt := make([]int64, n+1)
	e.Run(len(edges), func(i int) {
		ed := edges[i]
		atomic.AddInt64(&cnt[ed.U+1], 1)
		if ed.U != ed.V {
			atomic.AddInt64(&cnt[ed.V+1], 1)
		}
	})
	for i := 0; i < n; i++ {
		cnt[i+1] += cnt[i]
	}
	total := cnt[n]
	nbr := make([]int32, total)
	pos := make([]int64, n)
	e.Run(n, func(v int) { pos[v] = cnt[v] })

	// Degree-balanced vertex ranges: range k owns vertices [splits[k],
	// splits[k+1]).  Each range task replays the edge list and scatters
	// the endpoints it owns; ranges are disjoint, so pos needs no atomics
	// and the within-vertex neighbor order is the sequential one.  This
	// trades total work for determinism: k tasks read the edge list k
	// times, so k is capped — wall time is ~one edge scan on k cores for
	// k·m total traffic, which is the price of a layout byte-identical to
	// the sequential build.
	k := e.Procs()
	if k > 8 {
		k = 8
	}
	if k > n {
		k = n
	}
	splits := make([]int, k+1)
	splits[k] = n
	for j := 1; j < k; j++ {
		target := total * int64(j) / int64(k)
		lo, hi := splits[j-1], n
		for lo < hi {
			mid := (lo + hi) / 2
			if cnt[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		splits[j] = lo
	}
	scatter := func(t int) {
		lo32, hi32 := int32(splits[t]), int32(splits[t+1])
		if lo32 >= hi32 {
			return
		}
		for _, ed := range edges {
			if ed.U >= lo32 && ed.U < hi32 {
				nbr[pos[ed.U]] = ed.V
				pos[ed.U]++
			}
			if ed.U != ed.V && ed.V >= lo32 && ed.V < hi32 {
				nbr[pos[ed.V]] = ed.U
				pos[ed.V]++
			}
		}
	}
	if ce, ok := e.(coarseExec); ok {
		ce.RunCoarse(k, scatter)
	} else {
		e.Run(k, scatter)
	}
	return &CSR{Off: cnt, Nbr: nbr}
}
