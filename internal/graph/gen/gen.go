// Package gen provides deterministic graph generators for the experiment
// suite.  Each family is chosen because its component-wise spectral gap λ,
// diameter d, or density plays a specific role in the paper:
//
//   - expanders (random regular): λ = Θ(1) — the O(log log n) regime;
//   - hypercubes: λ = Θ(1/log n);
//   - grids/tori: λ = Θ(1/n) (2D: Θ(1/side²) per side length);
//   - paths/cycles: λ = Θ(1/n²) — the Ω(log n) regime;
//   - ring-of-cliques: λ tunable by bridge multiplicity;
//   - one n-cycle vs two n/2-cycles: the 2-CYCLE instances (Appendix A);
//   - the Appendix-B construction: small diameter that blows up under
//     edge sampling.
//
// All randomized generators take an explicit seed and are reproducible.
package gen

import (
	"parcc/internal/graph"
	"parcc/internal/pram"
)

type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return pram.SplitMix64(r.s)
}

// Intn returns a value in [0,n).
func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Path returns the path graph v0-v1-...-v(n-1).  λ = Θ(1/n²).
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the n-cycle.  λ = Θ(1/n²).
func Cycle(n int) *graph.Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// TwoCycles returns two disjoint cycles of ⌊n/2⌋ and ⌈n/2⌉ vertices: the
// hard sibling of Cycle(n) in the 2-CYCLE conjecture (Appendix A).
func TwoCycles(n int) *graph.Graph {
	g := graph.New(n)
	h := n / 2
	addCycle := func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		for i := lo; i+1 < hi; i++ {
			g.AddEdge(i, i+1)
		}
		g.AddEdge(hi-1, lo)
	}
	addCycle(0, h)
	addCycle(h, n)
	return g
}

// Grid returns the r x c grid graph.  λ = Θ(1/max(r,c)²) per dimension.
func Grid(r, c int) *graph.Graph {
	g := graph.New(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				g.AddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return g
}

// Torus returns the r x c torus (grid with wraparound).
func Torus(r, c int) *graph.Graph {
	g := graph.New(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			g.AddEdge(id(i, j), id(i, (j+1)%c))
			g.AddEdge(id(i, j), id((i+1)%r, j))
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
// λ = 2/d = Θ(1/log n).
func Hypercube(d int) *graph.Graph {
	n := 1 << d
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if v < w {
				g.AddEdge(v, w)
			}
		}
	}
	return g
}

// Complete returns the complete graph K_n.  λ = n/(n-1).
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Star returns the star K_{1,n-1} centered at vertex 0.  λ = 1.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// BinaryTree returns the complete binary tree on n vertices (heap indexing).
func BinaryTree(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge((i-1)/2, i)
	}
	return g
}

// RandomRegular returns a random d-regular multigraph on n vertices via the
// configuration model (n*d must be even).  For constant d ≥ 3 these are
// expanders with λ = Θ(1) w.h.p. — the paper's headline O(log log n) regime.
// Self-loops and parallel edges may occur; the paper's model permits both.
func RandomRegular(n, d int, seed uint64) *graph.Graph {
	if n*d%2 != 0 {
		d++
	}
	r := newRNG(seed)
	stubs := make([]int32, n*d)
	for i := range stubs {
		stubs[i] = int32(i / d)
	}
	// Fisher-Yates shuffle, then pair consecutive stubs.
	for i := len(stubs) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	g := graph.New(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		g.Edges = append(g.Edges, graph.Edge{U: stubs[i], V: stubs[i+1]})
	}
	return g
}

// GNM returns an Erdős–Rényi G(n,m) multigraph: m edges drawn uniformly with
// replacement from all vertex pairs.
func GNM(n, m int, seed uint64) *graph.Graph {
	r := newRNG(seed)
	g := graph.New(n)
	g.Edges = make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := int32(r.intn(n))
		v := int32(r.intn(n))
		g.Edges = append(g.Edges, graph.Edge{U: u, V: v})
	}
	return g
}

// RingOfCliques returns k cliques of size s arranged in a ring, consecutive
// cliques joined by `bridges` parallel edges.  Increasing `bridges` raises
// the conductance (and hence λ, via Cheeger) of the single component, so the
// family sweeps λ while holding n ≈ k·s fixed — the knob experiment E1 needs.
func RingOfCliques(k, s, bridges int, seed uint64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if s < 2 {
		s = 2
	}
	r := newRNG(seed)
	g := graph.New(k * s)
	base := func(c int) int { return c * s }
	for c := 0; c < k; c++ {
		b := base(c)
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				g.AddEdge(b+i, b+j)
			}
		}
	}
	if k > 1 {
		for c := 0; c < k; c++ {
			nb := base((c + 1) % k)
			b := base(c)
			for t := 0; t < bridges; t++ {
				g.AddEdge(b+r.intn(s), nb+r.intn(s))
			}
			if k == 2 {
				break // avoid doubling the single bridge pair
			}
		}
	}
	return g
}

// Lollipop returns a clique of size k with a path of length n-k attached.
// Its λ is tiny (Θ(1/n³)-ish mixing), a worst case for gap-based bounds.
func Lollipop(n, k int) *graph.Graph {
	if k > n {
		k = n
	}
	g := graph.New(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j)
		}
	}
	for i := k - 1; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Barbell returns two k-cliques joined by a path of n-2k vertices.
func Barbell(n, k int) *graph.Graph {
	if 2*k > n {
		k = n / 2
	}
	g := graph.New(n)
	clique := func(lo int) {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.AddEdge(lo+i, lo+j)
			}
		}
	}
	clique(0)
	clique(n - k)
	prev := k - 1
	for v := k; v < n-k; v++ {
		g.AddEdge(prev, v)
		prev = v
	}
	if prev != n-k {
		g.AddEdge(prev, n-k)
	}
	return g
}

// Union returns the disjoint union of the given graphs.
func Union(gs ...*graph.Graph) *graph.Graph {
	n := 0
	for _, g := range gs {
		n += g.N
	}
	out := graph.New(n)
	off := int32(0)
	for _, g := range gs {
		for _, e := range g.Edges {
			out.Edges = append(out.Edges, graph.Edge{U: e.U + off, V: e.V + off})
		}
		off += int32(g.N)
	}
	return out
}

// ManyComponents returns k disjoint copies of the generator's output,
// exercising the "minimum gap over all components" semantics.
func ManyComponents(k int, mk func(i int) *graph.Graph) *graph.Graph {
	gs := make([]*graph.Graph, k)
	for i := range gs {
		gs[i] = mk(i)
	}
	return Union(gs...)
}

// SampleEdges returns a copy of g keeping each edge independently with
// probability p (seeded).  This is the random edge sampling of Stage 3.
func SampleEdges(g *graph.Graph, p float64, seed uint64) *graph.Graph {
	thr := pram.P64(p)
	out := graph.New(g.N)
	for i, e := range g.Edges {
		if pram.SplitMix64(seed^uint64(i)*0x9e3779b97f4a7c15) < thr {
			out.Edges = append(out.Edges, e)
		}
	}
	return out
}

// AppendixB builds a graph in the spirit of the paper's Appendix-B
// counterexample: small diameter, but edge sampling with probability
// p = 1/t turns it into (w.h.p.) a long path, so the sampled diameter is
// Θ(n/poly(t)).  Construction: a base path of L segments where consecutive
// vertices are joined by bundles of B = ceil(t·ln L)+1 parallel edges (each
// bundle survives sampling w.h.p.), plus a hierarchy of single-edge express
// paths with stride s = t at every level (express edges mostly die).  The
// original diameter is O(t·log n); the sampled diameter is Ω(L/poly(t)).
func AppendixB(nTarget, t int) *graph.Graph {
	if t < 2 {
		t = 2
	}
	bundle := 1
	for approxLn := 1; 1<<approxLn < nTarget; approxLn++ {
		bundle = approxLn
	}
	bundle = t*bundle + 1 // ceil(t ln L)-ish
	// Choose base length L so total vertices ≈ nTarget, including express
	// levels: L + L/t + L/t² + ... ≤ L·t/(t-1).
	L := nTarget * (t - 1) / t
	if L < 4 {
		L = 4
	}
	g := graph.New(0)
	// Base path vertices 0..L-1 with bundles.
	addPathVertices := func(count int) (lo int) {
		lo = g.N
		g.N += count
		return lo
	}
	base := addPathVertices(L)
	for i := 0; i+1 < L; i++ {
		for b := 0; b < bundle; b++ {
			g.AddEdge(base+i, base+i+1)
		}
	}
	// Express levels: level ℓ has ceil(prev/t) vertices; vertex j of level ℓ
	// is rung-attached to vertex j*t of the level below by a bundle (so the
	// sampled graph stays connected), while consecutive express vertices
	// are joined by single edges (so the sampled graph loses the
	// shortcuts).  Sampling therefore keeps connectivity but destroys the
	// hierarchy, leaving a path-like graph of diameter Ω(L/poly(t)).
	prevLo, prevLen := base, L
	for prevLen > t {
		cur := (prevLen + t - 1) / t
		lo := addPathVertices(cur)
		for j := 0; j < cur; j++ {
			below := j * t
			if below >= prevLen {
				below = prevLen - 1
			}
			for b := 0; b < bundle; b++ {
				g.AddEdge(lo+j, prevLo+below)
			}
			if j+1 < cur {
				g.AddEdge(lo+j, lo+j+1)
			}
		}
		prevLo, prevLen = lo, cur
	}
	return g
}
