package gen

import (
	"testing"

	"parcc/internal/baseline"
	"parcc/internal/graph"
)

func components(g *graph.Graph) int {
	return graph.NumLabels(baseline.BFSLabels(g))
}

func TestPath(t *testing.T) {
	g := Path(10)
	if g.M() != 9 || components(g) != 1 {
		t.Fatalf("path: m=%d comps=%d", g.M(), components(g))
	}
	if Path(1).M() != 0 {
		t.Error("single-vertex path has no edges")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(10)
	if g.M() != 10 || components(g) != 1 {
		t.Fatalf("cycle: m=%d comps=%d", g.M(), components(g))
	}
	deg := g.Degrees()
	for _, d := range deg {
		if d != 2 {
			t.Fatal("cycle must be 2-regular")
		}
	}
}

func TestTwoCycles(t *testing.T) {
	g := TwoCycles(20)
	if components(g) != 2 {
		t.Fatalf("two cycles: comps=%d", components(g))
	}
	if g.N != 20 {
		t.Fatal("vertex count")
	}
	// Same vertex count and edge count as one 20-cycle: the 2-CYCLE pair.
	if g.M() != Cycle(20).M() {
		t.Fatalf("edge count %d differs from single cycle %d", g.M(), Cycle(20).M())
	}
}

func TestGridAndTorus(t *testing.T) {
	g := Grid(4, 5)
	if g.N != 20 || components(g) != 1 {
		t.Fatal("grid wrong")
	}
	if g.M() != 4*4+3*5 {
		t.Fatalf("grid edges = %d", g.M())
	}
	tor := Torus(4, 5)
	if tor.M() != 2*20 || components(tor) != 1 {
		t.Fatalf("torus edges = %d", tor.M())
	}
	for _, d := range tor.Degrees() {
		if d != 4 {
			t.Fatal("torus must be 4-regular")
		}
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(5)
	if g.N != 32 || components(g) != 1 {
		t.Fatal("hypercube wrong")
	}
	for _, d := range g.Degrees() {
		if d != 5 {
			t.Fatal("d-cube must be d-regular")
		}
	}
}

func TestCompleteStarTree(t *testing.T) {
	if Complete(8).M() != 28 {
		t.Error("K8 edges")
	}
	s := Star(9)
	if s.M() != 8 || components(s) != 1 {
		t.Error("star wrong")
	}
	bt := BinaryTree(15)
	if bt.M() != 14 || components(bt) != 1 {
		t.Error("tree wrong")
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(100, 4, 3)
	deg := 0
	for _, e := range g.Edges {
		_ = e
		deg += 2
	}
	if deg != 100*4 {
		t.Fatalf("stub count %d, want %d", deg, 400)
	}
	// 4-regular random graphs are connected w.h.p.
	if components(g) != 1 {
		t.Errorf("random 4-regular graph disconnected (seed-dependent but vanishingly unlikely)")
	}
	// determinism
	h := RandomRegular(100, 4, 3)
	for i := range g.Edges {
		if g.Edges[i] != h.Edges[i] {
			t.Fatal("generator not deterministic for equal seed")
		}
	}
}

func TestRandomRegularOddProduct(t *testing.T) {
	g := RandomRegular(5, 3, 1) // n·d odd: generator bumps d
	if g.N != 5 {
		t.Fatal("vertex count changed")
	}
	if g.M() != 10 { // d bumped to 4: 5*4/2
		t.Fatalf("m=%d, want 10", g.M())
	}
}

func TestGNM(t *testing.T) {
	g := GNM(50, 123, 9)
	if g.N != 50 || g.M() != 123 {
		t.Fatal("GNM size wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRingOfCliques(t *testing.T) {
	g := RingOfCliques(5, 4, 2, 1)
	if g.N != 20 || components(g) != 1 {
		t.Fatalf("ring of cliques: n=%d comps=%d", g.N, components(g))
	}
	// bridges scale edge count
	g2 := RingOfCliques(5, 4, 6, 1)
	if g2.M() <= g.M() {
		t.Error("more bridges must add edges")
	}
	// k=2 must not double the bridge set
	g3 := RingOfCliques(2, 4, 1, 1)
	if g3.M() != 2*6+1 {
		t.Fatalf("2 cliques: m=%d, want 13", g3.M())
	}
	// degenerate params clamp
	if RingOfCliques(0, 1, 0, 1).N < 2 {
		t.Error("clamped ring too small")
	}
}

func TestLollipopBarbell(t *testing.T) {
	l := Lollipop(30, 10)
	if l.N != 30 || components(l) != 1 {
		t.Fatal("lollipop wrong")
	}
	b := Barbell(40, 10)
	if b.N != 40 || components(b) != 1 {
		t.Fatal("barbell wrong")
	}
	// clique too big gets clamped
	if Barbell(10, 50).N != 10 {
		t.Fatal("barbell clamp")
	}
}

func TestUnionOffsets(t *testing.T) {
	g := Union(Path(3), Cycle(4), graph.New(2))
	if g.N != 9 {
		t.Fatalf("union n=%d", g.N)
	}
	if components(g) != 4 { // path + cycle + 2 isolated
		t.Fatalf("union comps=%d", components(g))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestManyComponents(t *testing.T) {
	g := ManyComponents(5, func(i int) *graph.Graph { return Cycle(4 + i) })
	if components(g) != 5 {
		t.Fatalf("comps=%d", components(g))
	}
}

func TestSampleEdges(t *testing.T) {
	g := Complete(40)
	s := SampleEdges(g, 0.5, 3)
	if s.N != g.N {
		t.Fatal("sampling must not change vertices")
	}
	frac := float64(s.M()) / float64(g.M())
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("sampled fraction %.3f, want ≈0.5", frac)
	}
	if SampleEdges(g, 0, 1).M() != 0 {
		t.Error("p=0 must drop everything")
	}
	if SampleEdges(g, 1, 1).M() != g.M() {
		t.Error("p=1 must keep everything")
	}
}

func TestAppendixBConnected(t *testing.T) {
	g := AppendixB(2000, 4)
	if components(g) != 1 {
		t.Fatalf("Appendix-B graph must be connected, got %d comps", components(g))
	}
	if g.N < 1000 {
		t.Fatalf("vertex count %d too small for target 2000", g.N)
	}
}

func TestAppendixBSmallT(t *testing.T) {
	g := AppendixB(100, 0) // t clamps to 2
	if components(g) != 1 {
		t.Fatal("clamped construction must stay connected")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 4, 0.1, 7)
	if g.N != 200 || g.M() != 200*2 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// p=0 is the pure ring lattice: exactly k-regular and connected.
	lattice := WattsStrogatz(100, 4, 0, 1)
	for _, d := range lattice.Degrees() {
		if d != 4 {
			t.Fatal("lattice must be k-regular")
		}
	}
	if components(lattice) != 1 {
		t.Fatal("lattice must be connected")
	}
	// No rewired edge may be a loop.
	for _, e := range WattsStrogatz(150, 6, 1.0, 3).Edges {
		if e.U == e.V {
			t.Fatal("rewiring created a loop")
		}
	}
	// Degenerate parameters clamp.
	if WattsStrogatz(2, 1, 0.5, 1).N < 4 {
		t.Fatal("clamp failed")
	}
}

func TestWattsStrogatzRewiringShrinksDiameter(t *testing.T) {
	// The small-world effect: a little rewiring collapses the diameter.
	lattice := WattsStrogatz(400, 4, 0, 5)
	rewired := WattsStrogatz(400, 4, 0.2, 5)
	dl := diameterOf(lattice)
	dr := diameterOf(rewired)
	if dr >= dl {
		t.Errorf("rewiring should shrink diameter: %d -> %d", dl, dr)
	}
}

func diameterOf(g *graph.Graph) int {
	// double sweep on the largest component (test-local helper)
	lab := baseline.BFSLabels(g)
	_ = lab
	// cheap: BFS from 0 then from the farthest vertex
	csr := graph.BuildCSR(g)
	far, _ := bfsFar(csr, g.N, 0)
	_, ecc := bfsFar(csr, g.N, far)
	return int(ecc)
}

func bfsFar(csr *graph.CSR, n int, s int32) (int32, int32) {
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	q := []int32{s}
	far, ecc := s, int32(0)
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, w := range csr.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if dist[w] > ecc {
					ecc, far = dist[w], w
				}
				q = append(q, w)
			}
		}
	}
	return far, ecc
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(300, 3, 9)
	if g.N != 300 {
		t.Fatalf("n=%d", g.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if components(g) != 1 {
		t.Fatal("BA graphs are connected by construction")
	}
	// Heavy tail: the max degree should far exceed the median.
	deg := g.Degrees()
	var max int32
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 3*6 {
		t.Errorf("max degree %d suspiciously small for preferential attachment", max)
	}
	// Determinism and clamping.
	h := BarabasiAlbert(300, 3, 9)
	for i := range g.Edges {
		if g.Edges[i] != h.Edges[i] {
			t.Fatal("BA not deterministic")
		}
	}
	if BarabasiAlbert(2, 0, 1).N < 3 {
		t.Fatal("clamp failed")
	}
}
