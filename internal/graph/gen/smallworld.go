package gen

import (
	"sort"

	"parcc/internal/graph"
)

// WattsStrogatz returns a Watts–Strogatz small-world graph: a ring lattice
// where each vertex connects to its k nearest neighbors (k even), with each
// edge rewired to a random endpoint with probability p.  Sweeping p moves
// the family from a high-diameter, low-gap lattice (p=0) toward an
// expander-like graph (p→1) — a continuous λ knob between the paper's two
// regimes, complementing RingOfCliques.
func WattsStrogatz(n, k int, p float64, seed uint64) *graph.Graph {
	if k < 2 {
		k = 2
	}
	k -= k % 2
	if n < k+2 {
		n = k + 2
	}
	r := newRNG(seed)
	thr := uint64(p * float64(1<<63) * 2)
	if p >= 1 {
		thr = ^uint64(0)
	}
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			w := (v + j) % n
			if r.next() < thr {
				// rewire the far endpoint, avoiding a loop on v
				w = r.intn(n - 1)
				if w >= v {
					w++
				}
			}
			g.AddEdge(v, w)
		}
	}
	return g
}

// BarabasiAlbert returns a Barabási–Albert preferential-attachment graph:
// starting from a small clique, each new vertex attaches m edges to
// existing vertices with probability proportional to their degree.  The
// family has a heavy-tailed degree distribution — the regime where the
// paper's high/low degree classification (BUILD, §5.1) does real work.
func BarabasiAlbert(n, m int, seed uint64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if n < m+2 {
		n = m + 2
	}
	r := newRNG(seed)
	g := graph.New(n)
	// Preferential attachment via the repeated-endpoints trick: picking a
	// uniform element of the endpoint multiset selects vertices
	// proportionally to degree.
	endpoints := make([]int32, 0, 2*m*n)
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdge(i, j)
			endpoints = append(endpoints, int32(i), int32(j))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make([]int32, 0, m)
		for len(chosen) < m {
			w := endpoints[r.intn(len(endpoints))]
			if int(w) == v || containsInt32(chosen, w) {
				continue
			}
			chosen = append(chosen, w)
		}
		sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })
		for _, w := range chosen {
			g.AddEdge(v, int(w))
			endpoints = append(endpoints, int32(v), w)
		}
	}
	return g
}

func containsInt32(xs []int32, x int32) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
