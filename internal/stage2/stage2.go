// Package stage2 implements §5 of the paper: increasing the minimum degree
// of the current graph to poly(log n) in O(log b) time.
//
//   - BUILD(V,E,b) (§5.1): the skeleton graph — degree estimation by hashing
//     edges into per-vertex tables, high/low classification, and
//     down-sampling of high–high edges;
//   - DENSIFY(H,b) (§5.2): O(log b) rounds of EXPAND-MAXLINK on the skeleton
//     followed by shortcuts and a Theorem-2 contraction of the accumulated
//     close edges;
//   - INCREASE(V,E,b) (§5.3): grouping vertices by their iterated parent
//     v.p^(2R+1), head marking, head hooking and leader sampling, after
//     which every surviving root has degree ≥ b in the current graph
//     (Lemma 5.25);
//   - the work-reduced variants of §7.3–7.4: SPARSEBUILD over the
//     pre-sampled subgraph H₂ and the auxiliary-array gathering of the
//     low-degree edge set E′ in O(|E′|) work.
//
// Simplification recorded here and in DESIGN.md: the paper materializes
// v.p^(2R+1) by composing 2R+2 recorded parent snapshots (§5.3.1).  After
// DENSIFY all trees over V are flat or height ≤ 2 and every hop of the
// composition follows a then-current parent, so the composition lands on the
// final root of v's tree (Lemma 5.21 shows it is a root, and v's tree has
// exactly one).  We therefore compute it by chasing the final forest, which
// yields the identical grouping with the same O(log b) time charge.
package stage2

import (
	"parcc/internal/graph"
	"parcc/internal/labeled"
	"parcc/internal/ltz"
	"parcc/internal/pram"
	"parcc/internal/prim"
	"parcc/internal/solve"
)

// Params carries the Stage-2 constants.  Paper values in comments.
type Params struct {
	// B is the current minimum-degree target b (paper: (log n)^100 in §5,
	// growing per phase in §7).
	B int
	// TableSize is the per-vertex hash table size (paper: b^9).
	TableSize int
	// HighOccupancy marks a vertex high when its table has more occupied
	// cells than this (paper: b^8).
	HighOccupancy int
	// SparseHighOccupancy is the high threshold when estimating from the
	// pre-sampled H₂ instead of E (§7.3.1).
	SparseHighOccupancy int
	// SampleP64 down-samples high–high edges in BUILD (paper: 1/b).
	SampleP64 uint64
	// HeadOccupancy is the head threshold in INCREASE Step 5 (paper: 2b).
	HeadOccupancy int
	// DensifyRounds is the EXPAND-MAXLINK round count (paper: 20·log b).
	DensifyRounds int
	// SolveRounds bounds the Theorem-2 call in DENSIFY Step 5.  Inside an
	// INTERWEAVE phase the paper limits each stage to O(log b) time (§3.4);
	// 0 means run to completion (the known-λ pipeline of §§4–6).
	SolveRounds int
	// ShortcutRounds flattens trees before collecting E_close
	// (paper: Θ(log log n), Lemma 5.9).
	ShortcutRounds int
	// LTZ configures the EXPAND-MAXLINK subroutine and Theorem-2 calls.
	LTZ ltz.Params
	// Seed drives hashing and sampling.
	Seed uint64
}

// DefaultParams returns the practical profile for target degree b on an
// n-vertex instance (paper formulas, polylog exponents reduced to small
// multiples; see DESIGN.md §4).
func DefaultParams(n, b int) Params {
	if b < 4 {
		b = 4
	}
	lp := ltz.DefaultParams(n)
	return Params{
		B:                   b,
		TableSize:           8 * b,
		HighOccupancy:       4 * b,
		SparseHighOccupancy: b,
		SampleP64:           pram.P64(1 / float64(b)),
		HeadOccupancy:       2 * b,
		DensifyRounds:       int(20 * prim.Log2Ceil(b+1)),
		ShortcutRounds:      int(2 * prim.LogLog(n+4)),
		LTZ:                 lp,
		Seed:                0x57a6e2,
	}
}

// Build runs BUILD(V,E,b) (§5.1) over the current graph (V = its vertices,
// all roots; E = its edges) and returns the skeleton edge set E′ with
// parallel edges and loops removed.  O(log b) time, O(m+n) work w.h.p.
func Build(m *pram.Machine, V []int32, E []graph.Edge, p Params) []graph.Edge {
	return BuildOn(solve.New(m), V, E, p)
}

// BuildOn is Build drawing its tables from the solve context's arena.
func BuildOn(cx *solve.Ctx, V []int32, E []graph.Edge, p Params) []graph.Edge {
	m := cx.M
	n32 := maxVertex(V, E) + 1
	// Steps 1–2: hash each edge endpoint into the other end's table.
	tbl := newTables(cx, V, p.TableSize, int(n32))
	h := prim.NewHash(p.Seed^0xb417d, p.TableSize)
	m.For(len(E), func(i int) {
		e := E[i]
		tbl.insert(e.V, h.Apply(e.U), e.U)
		tbl.insert(e.U, h.Apply(e.V), e.V)
	})
	// Step 3: classify by occupancy.
	high := tbl.classify(m, p.HighOccupancy)
	// Step 4: keep low-adjacent edges; sample high–high edges w.p. 1/b.
	keep := cx.GrabEdgesCap(len(E)/2 + 16)
	m.Contract(1, int64(len(E)), func() {
		for i, e := range E {
			if high[e.U] == 0 || high[e.V] == 0 {
				keep = append(keep, e)
				continue
			}
			if pram.SplitMix64(p.Seed^0x5a3b1e^uint64(i)*0x9e3779b97f4a7c15) < p.SampleP64 {
				keep = append(keep, e)
			}
		}
	})
	// Step 5: remove parallel edges and loops (perfect hashing contract).
	out := dedupEdges(m, keep)
	cx.ReleaseEdges(keep)
	tbl.free(cx, high)
	return out
}

// SparseBuild runs SPARSEBUILD(G′,H₂,b) (§7.3.1): degree estimation from the
// pre-sampled subgraph H₂ only, plus the auxiliary-array gather of all
// original edges adjacent to low parents, in O(|E′|) work (Lemma 7.13).
func SparseBuild(m *pram.Machine, f *labeled.Forest, active []int32, aux *Aux, H2 []graph.Edge, p Params) []graph.Edge {
	return SparseBuildOn(solve.New(m), f, active, aux, H2, p)
}

// SparseBuildOn is SparseBuild on a solve context.
func SparseBuildOn(cx *solve.Ctx, f *labeled.Forest, active []int32, aux *Aux, H2 []graph.Edge, p Params) []graph.Edge {
	m := cx.M
	n := f.Len()
	tbl := newTables(cx, active, p.TableSize, n)
	h := prim.NewHash(p.Seed^0xb417d, p.TableSize)
	// Step 2: hash H₂ edges (both directions; loops excluded as self-keys).
	m.For(len(H2), func(i int) {
		e := H2[i]
		if e.U == e.V {
			return
		}
		tbl.insert(e.V, h.Apply(e.U), e.U)
		tbl.insert(e.U, h.Apply(e.V), e.V)
	})
	// Step 3: classify active roots by occupancy (threshold scaled for the
	// sampled estimate).
	high := tbl.classify(m, p.SparseHighOccupancy)
	// Step 4: E′ = original edges whose endpoint-parent is low, gathered
	// from the auxiliary array in O(|E′|) work, then altered.
	low := func(u int32) bool {
		pu := f.P[u]
		return tbl.has(pu) && high[pu] == 0
	}
	Ep := aux.Gather(m, low)
	Ep = labeled.Alter(m, f, Ep)
	// Step 5: return E′ ∪ E(H₂) (altered copy of H₂; H₂ itself is managed
	// by the caller across phases).
	out := append(Ep, H2...)
	out = labeled.Alter(m, f, out)
	tbl.free(cx, high)
	return out
}

// tables is a slab of per-root hash tables, entries storing vertex+1.
type tables struct {
	cx   *solve.Ctx
	pos  []int64 // pos+1 of each vertex's table; 0 = none
	size int
	slab []int32
	vs   []int32
}

func newTables(cx *solve.Ctx, V []int32, size, n int) *tables {
	m := cx.M
	t := &tables{cx: cx, pos: cx.Grab64(n), size: size, vs: V}
	t.slab = cx.Grab32(int(int64(size) * int64(len(V))))
	m.ChargeTime(prim.LogStar(n) + 1) // block assignment via compaction (§5.1 Step 1)
	m.ChargeWork(int64(len(V)))
	for i, v := range V {
		t.pos[v] = int64(i)*int64(size) + 1
	}
	return t
}

func (t *tables) has(v int32) bool { return t.pos[v] != 0 }

func (t *tables) insert(v int32, slot int, w int32) {
	p := t.pos[v]
	if p == 0 {
		return
	}
	pram.Store32(t.slab, int(p-1)+slot, w+1)
}

// free returns the tables' buffers (and an optional classify result) to
// the context's arena.
func (t *tables) free(cx *solve.Ctx, high []int32) {
	cx.Release64(t.pos)
	cx.Release32(t.slab)
	if high != nil {
		cx.Release32(high)
	}
	t.pos, t.slab = nil, nil
}

// classify counts occupied cells per table (binary-tree counting: O(log s)
// time, O(Σs) work; Lemma 5.1) and returns a flag array: 1 = high.
func (t *tables) classify(m *pram.Machine, thresh int) []int32 {
	high := t.cx.Grab32(len(t.pos))
	m.Contract(prim.Log2Ceil(t.size)+1, int64(len(t.slab)), func() {
		for _, v := range t.vs {
			p := t.pos[v] - 1
			c := 0
			for j := 0; j < t.size; j++ {
				if t.slab[p+int64(j)] != 0 {
					c++
				}
			}
			if c > thresh {
				high[v] = 1
			}
		}
	})
	return high
}

func maxVertex(V []int32, E []graph.Edge) int32 {
	var mx int32
	for _, v := range V {
		if v > mx {
			mx = v
		}
	}
	for _, e := range E {
		if e.U > mx {
			mx = e.U
		}
		if e.V > mx {
			mx = e.V
		}
	}
	return mx
}

func dedupEdges(m *pram.Machine, E []graph.Edge) []graph.Edge {
	keys := make([]int64, len(E))
	for i, e := range E {
		keys[i] = prim.PackEdge(e.U, e.V)
	}
	keys = prim.DedupPairs(m, keys, true)
	out := make([]graph.Edge, len(keys))
	for i, k := range keys {
		u, v := prim.UnpackEdge(k)
		out[i] = graph.Edge{U: u, V: v}
	}
	return out
}

// DensifyResult carries what INCREASE needs from DENSIFY.
type DensifyResult struct {
	Eclose []graph.Edge // the close-edge set (altered; loops dropped)
	Rounds int64        // EXPAND-MAXLINK rounds executed
}

// Densify runs DENSIFY(H,b) (§5.2.1) on the skeleton H = (V, EH), updating
// the shared forest, and returns E_close.
func Densify(m *pram.Machine, f *labeled.Forest, V []int32, EH []graph.Edge, p Params) DensifyResult {
	return DensifyOn(solve.New(m), f, V, EH, p)
}

// DensifyOn is Densify on a solve context.
func DensifyOn(cx *solve.Ctx, f *labeled.Forest, V []int32, EH []graph.Edge, p Params) DensifyResult {
	m := cx.M
	// Step 1: 20·log b rounds of EXPAND-MAXLINK.
	st := ltz.NewStateOn(cx, f, V, EH, p.LTZ)
	st.Run(p.DensifyRounds)
	// Step 3: shortcut + alter until the trees over V are flat.
	for r := 0; r < p.ShortcutRounds; r++ {
		labeled.Shortcut(m, f, V)
		st.Edges = labeled.Alter(m, f, st.Edges)
		st.Extra = labeled.Alter(m, f, st.Extra)
	}
	// Step 4: E_close = all current edges (altered originals + added).
	eclose := st.CurrentEdges()
	rounds := st.Rounds()
	st.Free()
	// Step 5: Theorem 2 on (V(E_close), E_close) — round-limited inside an
	// INTERWEAVE phase (§3.4: each stage runs for O(log b) time), full
	// otherwise.
	if len(eclose) > 0 {
		verts := solve.VertexSet(cx, f.Len(), eclose)
		if p.SolveRounds > 0 {
			st2 := ltz.NewStateOn(cx, f, verts, eclose, p.LTZ)
			st2.Run(p.SolveRounds)
			st2.Free()
		} else {
			ltz.SolveOnCtx(cx, f, verts, eclose, p.LTZ)
		}
	}
	// Step 6: ALTER(E_close).
	eclose = labeled.Alter(m, f, eclose)
	return DensifyResult{Eclose: eclose, Rounds: rounds}
}

// Increase runs INCREASE(V,E,b) (§5.3.1) over the current graph (V: its
// vertex set — roots after Stage 1; E: its edges, altered in place with
// loops retained for Stage 3).  Afterwards every root in the current graph
// has degree ≥ b, except roots of components already fully contracted
// (Lemma 5.24/5.25).  Returns E_close for inspection by tests.
func Increase(m *pram.Machine, f *labeled.Forest, V []int32, E []graph.Edge, p Params) []graph.Edge {
	return IncreaseOn(solve.New(m), f, V, E, p)
}

// IncreaseOn is Increase on a solve context.
func IncreaseOn(cx *solve.Ctx, f *labeled.Forest, V []int32, E []graph.Edge, p Params) []graph.Edge {
	// Step 1: skeleton.
	EH := BuildOn(cx, V, E, p)
	// Step 2: densify.
	res := DensifyOn(cx, f, V, EH, p)
	finishIncrease(cx, f, V, E, res.Eclose, p)
	return res.Eclose
}

// IncreaseSparse is the §7.3 variant: skeleton from the pre-sampled H₂ via
// the auxiliary array, then the same Steps 2–9, then ALTER(E(H₁)).
// H1 is altered in place (loops dropped); its remaining edges are returned.
func IncreaseSparse(m *pram.Machine, f *labeled.Forest, active []int32, aux *Aux, H1, H2 []graph.Edge, p Params) (h1 []graph.Edge, eclose []graph.Edge) {
	return IncreaseSparseOn(solve.New(m), f, active, aux, H1, H2, p)
}

// IncreaseSparseOn is IncreaseSparse on a solve context.
func IncreaseSparseOn(cx *solve.Ctx, f *labeled.Forest, active []int32, aux *Aux, H1, H2 []graph.Edge, p Params) (h1 []graph.Edge, eclose []graph.Edge) {
	m := cx.M
	EH := SparseBuildOn(cx, f, active, aux, H2, p)
	res := DensifyOn(cx, f, active, EH, p)
	finishIncrease(cx, f, active, nil, res.Eclose, p)
	h1 = labeled.Alter(m, f, H1)
	return h1, res.Eclose
}

// finishIncrease executes Steps 3–10 of INCREASE(V,E,b): regroup every
// vertex under its iterated parent, mark heads, hook non-heads, sample
// leaders, and re-alter E.  E may be nil (the sparse variant leaves the
// original edges untouched per §7, Definition 7.2).
func finishIncrease(cx *solve.Ctx, f *labeled.Forest, V []int32, E []graph.Edge, eclose []graph.Edge, p Params) {
	m := cx.M
	n := f.Len()
	pp := f.P

	// Steps 3–4: hash each v ∈ V into H′(u) for u = v.p^(2R+1) — the final
	// root of v's tree (see the package comment) — and set v.p = u.
	// Chasing is charged O(log b) time and O(|V|·log b) work as in the
	// paper's iterated-composition implementation (proof of Lemma 5.19).
	anc := cx.Grab32(len(V))
	m.Contract(prim.Log2Ceil(p.B+1)+1, int64(len(V))*(prim.Log2Ceil(p.B+1)+1), func() {
		for i, v := range V {
			anc[i] = f.Root(v)
		}
	})
	tbl := newTables(cx, rootsOf(m, V, anc), p.TableSize, n)
	h := prim.NewHash(p.Seed^0x4ead, p.TableSize)
	m.For(len(V), func(i int) {
		v := V[i]
		u := anc[i]
		tbl.insert(u, h.Apply(v), v)
		pram.Store32(pp, int(v), u)
	})

	// Step 5: heads have at least HeadOccupancy occupied cells.
	head := tbl.classify(m, p.HeadOccupancy-1)

	// Step 6: non-heads adjacent to heads via non-loop close edges hook on.
	m.For(len(eclose), func(i int) {
		e := eclose[i]
		if e.U == e.V {
			return
		}
		hookHead(pp, head, e.U, e.V)
		hookHead(pp, head, e.V, e.U)
	})

	// Step 7: SHORTCUT(V).
	labeled.Shortcut(m, f, V)

	// Step 8: leader sampling w.p. 1/2; non-leader roots w adjacent to a
	// leader v get w.p.p = v.p.
	leaderSeed := p.Seed ^ 0x1ead3a
	isLeader := func(v int32) bool {
		return pram.SplitMix64(leaderSeed^uint64(uint32(v)))&1 == 1
	}
	m.For(len(eclose), func(i int) {
		e := eclose[i]
		if e.U == e.V {
			return
		}
		leaderHook(pp, e.U, e.V, isLeader)
		leaderHook(pp, e.V, e.U, isLeader)
	})

	// Step 9: SHORTCUT(V).
	labeled.Shortcut(m, f, V)

	// Step 10: ALTER(E) (loops retained: Stage 3 samples every edge, §5.3).
	if E != nil {
		labeled.AlterKeep(m, f, E)
	}
	tbl.free(cx, head)
	cx.Release32(anc)
}

func hookHead(p []int32, head []int32, v, w int32) {
	// if v is a head and w is a non-head then w.p = v (Step 6).
	if head[v] == 1 && head[w] == 0 {
		pram.Store32(p, int(w), v)
	}
}

func leaderHook(p []int32, v, w int32, isLeader func(int32) bool) {
	// if v is a leader and w a non-leader then w.p.p = v.p (Step 8).
	if isLeader(v) && !isLeader(w) {
		pw := pram.Load32(p, int(w))
		pv := pram.Load32(p, int(v))
		pram.Store32(p, int(pw), pv)
	}
}

func rootsOf(m *pram.Machine, V []int32, anc []int32) []int32 {
	var out []int32
	m.Contract(1, int64(len(V)), func() {
		seen := make(map[int32]struct{}, len(V))
		for _, u := range anc {
			if _, ok := seen[u]; ok {
				continue
			}
			seen[u] = struct{}{}
			out = append(out, u)
		}
	})
	return out
}
