package stage2

import (
	"sort"

	"parcc/internal/graph"
	"parcc/internal/pram"
	"parcc/internal/prim"
	"parcc/internal/solve"
)

// Aux is the auxiliary array of §7.4.1: the edges of G′ (both orientations)
// padded-sorted by first endpoint, with per-vertex ranges (v.l, v.s), built
// once at the end of Stage 1 and stored for the rest of CONNECTIVITY.  The
// doubling "awaken" procedure of Lemmas 7.13/7.16 then extracts all edges
// whose first endpoint satisfies a predicate in O(output) work instead of
// rescanning all of E(G′) every phase.
type Aux struct {
	edges []graph.Edge // sorted by U; both orientations of every edge
	start []int64      // start[v] = v.l; -1 when v has no edges
	count []int64      // count[v] = number of entries (v.s)
	verts []int32      // vertices with at least one entry
}

// BuildAux runs BUILDAUXILIARY(G′) (§7.4.1): padded sort (Lemma 7.9 charge:
// O(log log m) time, O(m) work) plus the range-delimiting passes.
func BuildAux(m *pram.Machine, n int, E []graph.Edge) *Aux {
	return BuildAuxOn(solve.New(m), n, E)
}

// BuildAuxOn is BuildAux with the array storage drawn from the solve
// context's arena; pair with Free.
func BuildAuxOn(cx *solve.Ctx, n int, E []graph.Edge) *Aux {
	m := cx.M
	a := &Aux{
		edges: cx.GrabEdgesCap(2 * len(E)),
		start: cx.Grab64(n),
		count: cx.Grab64(n),
	}
	for i := range a.start {
		a.start[i] = -1
	}
	m.Contract(prim.LogLog(2*len(E)+4)+2, int64(2*len(E))+int64(n), func() {
		for _, e := range E {
			a.edges = append(a.edges, e)
			if e.U != e.V {
				a.edges = append(a.edges, graph.Edge{U: e.V, V: e.U})
			}
		}
		sort.Slice(a.edges, func(i, j int) bool { return a.edges[i].U < a.edges[j].U })
		for i, e := range a.edges {
			if a.start[e.U] < 0 {
				a.start[e.U] = int64(i)
				a.verts = append(a.verts, e.U)
			}
			a.count[e.U]++
		}
	})
	return a
}

// Free returns the auxiliary array's storage to the context's arena.
func (a *Aux) Free(cx *solve.Ctx) {
	cx.ReleaseEdges(a.edges)
	cx.Release64(a.start)
	cx.Release64(a.count)
	a.edges, a.start, a.count = nil, nil, nil
}

// Gather returns the original-G′ edges (u,v) for which pred(u) holds, using
// the awaken-doubling procedure: charged O(log max-degree) time and
// O(#awakened + #checked vertices) work (Lemmas 7.13/7.16).  The returned
// slice is freshly allocated; callers ALTER it to current parents.
func (a *Aux) Gather(m *pram.Machine, pred func(u int32) bool) []graph.Edge {
	var out []graph.Edge
	var awakened int64
	var maxDeg int64 = 1
	m.Contract(1, int64(len(a.verts)), func() {
		for _, u := range a.verts {
			if !pred(u) {
				continue
			}
			lo := a.start[u]
			c := a.count[u]
			if c > maxDeg {
				maxDeg = c
			}
			awakened += c
			out = append(out, a.edges[lo:lo+c]...)
		}
	})
	m.ChargeTime(prim.Log2Ceil(int(maxDeg)) + 1)
	m.ChargeWork(awakened)
	return out
}

// EdgesNotIn returns the original edges of G′ (single orientation) whose
// index is not flagged in mask — the E_remain = E(G′) \ E(H₁) set REMAIN
// needs (§7.1).  mask[i] corresponds to the i-th edge passed to BuildAux.
func EdgesNotIn(m *pram.Machine, E []graph.Edge, mask []bool) []graph.Edge {
	var out []graph.Edge
	m.Contract(1, int64(len(E)), func() {
		for i, e := range E {
			if !mask[i] {
				out = append(out, e)
			}
		}
	})
	return out
}
