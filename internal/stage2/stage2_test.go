package stage2

import (
	"testing"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/ltz"
	"parcc/internal/pram"
	"parcc/internal/stage1"
)

// reduced runs Stage 1 and returns the machinery Stage 2 starts from.
func reduced(t *testing.T, g *graph.Graph, seed uint64) (*pram.Machine, *labeled.Forest, stage1.Result) {
	t.Helper()
	m := pram.New(pram.Seed(seed))
	f := labeled.New(g.N)
	r := stage1.NewRunner(m, f, stage1.DefaultParams(g.N))
	return m, f, r.Reduce(g)
}

func TestBuildSkeletonIsSubset(t *testing.T) {
	g := gen.RandomRegular(2000, 6, 3)
	m, _, red := reduced(t, g, 1)
	p := DefaultParams(g.N, 8)
	H := Build(m, red.Roots, red.Edges, p)
	// Every skeleton edge (canonicalized) must exist in the current graph.
	have := map[int64]bool{}
	for _, e := range red.Edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		have[int64(u)<<32|int64(uint32(v))] = true
	}
	for _, e := range H {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if !have[int64(u)<<32|int64(uint32(v))] {
			t.Fatalf("skeleton edge (%d,%d) not in current graph", e.U, e.V)
		}
		if e.U == e.V {
			t.Fatal("skeleton must not contain loops")
		}
	}
	// No parallel edges.
	seen := map[int64]bool{}
	for _, e := range H {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		k := int64(u)<<32 | int64(uint32(v))
		if seen[k] {
			t.Fatal("skeleton contains a parallel edge")
		}
		seen[k] = true
	}
}

func TestBuildKeepsLowDegreeEdges(t *testing.T) {
	// Lemma 5.4 ingredient: edges adjacent to low vertices are all kept, so
	// small components survive exactly.
	g := gen.Union(gen.Path(12), gen.Cycle(9))
	m := pram.New(pram.Seed(2))
	V := make([]int32, g.N)
	m.Iota32(V)
	p := DefaultParams(g.N, 64) // threshold far above any degree here
	H := Build(m, V, g.Edges, p)
	simple := graph.Simplify(g)
	if len(H) != simple.M() {
		t.Fatalf("all-low graph: skeleton has %d edges, want %d", len(H), simple.M())
	}
}

func TestBuildSamplesHighHighEdges(t *testing.T) {
	// Lemma 5.5 shape: on a dense graph with tiny threshold, the skeleton
	// must be much smaller than the input.
	g := gen.Complete(200)
	m := pram.New(pram.Seed(3))
	V := make([]int32, g.N)
	m.Iota32(V)
	p := DefaultParams(g.N, 8) // every vertex is high (deg 199 > 32)
	H := Build(m, V, g.Edges, p)
	if len(H) >= g.M()/2 {
		t.Fatalf("skeleton %d edges of %d — no down-sampling happened", len(H), g.M())
	}
	if len(H) == 0 {
		t.Fatal("skeleton should retain some sampled edges")
	}
}

func TestDensifyContractsSmallComponents(t *testing.T) {
	// Small components (< b^6-ish total degree) must contract fully during
	// DENSIFY + Theorem 2 (Lemma 5.24 direction).
	g := gen.Union(gen.Cycle(12), gen.Path(9), gen.Complete(6))
	truth := baseline.BFSLabels(g)
	m := pram.New(pram.Seed(5))
	f := labeled.New(g.N)
	V := make([]int32, g.N)
	m.Iota32(V)
	p := DefaultParams(g.N, 8)
	res := Densify(m, f, V, append([]graph.Edge(nil), g.Edges...), p)
	if err := labeled.CheckSameComponent(f, truth); err != nil {
		t.Fatal(err)
	}
	// every close edge intra-component
	for _, e := range res.Eclose {
		if truth[e.U] != truth[e.V] {
			t.Fatal("close edge crosses components")
		}
	}
	// all components fully contracted: labels match truth already
	if !graph.SamePartition(truth, f.Labels()) {
		t.Fatal("small components should be fully contracted by DENSIFY")
	}
}

func TestIncreaseRaisesMinDegree(t *testing.T) {
	// Lemma 5.25 shape: after INCREASE, surviving active roots have degree
	// ≥ b in the current graph (counting altered multi-edges).
	g := gen.RandomRegular(3000, 6, 11)
	m, f, red := reduced(t, g, 7)
	b := 8
	p := DefaultParams(g.N, b)
	E := append([]graph.Edge(nil), red.Edges...)
	Increase(m, f, red.Roots, E, p)
	// degree of roots in current graph: count altered edge endpoints.
	deg := map[int32]int{}
	for _, e := range E {
		deg[e.U]++
		if e.U != e.V {
			deg[e.V]++
		}
	}
	live := 0
	for _, v := range red.Roots {
		if f.IsRoot(v) && deg[v] > 0 {
			// Only roots that still carry non-loop edges count as active.
			active := false
			for _, e := range E {
				if (e.U == v || e.V == v) && e.U != e.V {
					active = true
					break
				}
			}
			if !active {
				continue
			}
			live++
			if deg[v] < b {
				t.Errorf("active root %d has degree %d < b=%d", v, deg[v], b)
			}
		}
	}
	t.Logf("active roots after INCREASE: %d (from %d)", live, len(red.Roots))
}

func TestIncreaseContractionSafety(t *testing.T) {
	g := gen.Union(gen.RandomRegular(800, 4, 1), gen.Cycle(200), gen.GNM(500, 700, 9))
	truth := baseline.BFSLabels(g)
	m, f, red := reduced(t, g, 13)
	E := append([]graph.Edge(nil), red.Edges...)
	Increase(m, f, red.Roots, E, DefaultParams(g.N, 8))
	if err := labeled.CheckSameComponent(f, truth); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckAcyclic(); err != nil {
		t.Fatal(err)
	}
	for _, e := range E {
		if truth[e.U] != truth[e.V] {
			t.Fatal("altered edge crosses components")
		}
	}
}

func TestSparseBuildMatchesDense(t *testing.T) {
	// SPARSEBUILD from a half-sampled H₂ must still produce an edge set
	// within the same components, containing all low-degree edges.
	g := gen.GNM(1500, 4000, 21)
	truth := baseline.BFSLabels(g)
	m, f, red := reduced(t, g, 3)
	aux := BuildAux(m, g.N, red.Edges)
	H2 := gen.SampleEdges(&graph.Graph{N: g.N, Edges: red.Edges}, 0.5, 99).Edges
	p := DefaultParams(g.N, 8)
	EH := SparseBuild(m, f, red.Roots, aux, H2, p)
	for _, e := range EH {
		if truth[e.U] != truth[e.V] {
			t.Fatal("sparse skeleton edge crosses components")
		}
	}
}

func TestAuxGatherFindsAllEdges(t *testing.T) {
	g := gen.GNM(300, 500, 5)
	m := pram.New(pram.Seed(1))
	aux := BuildAux(m, g.N, g.Edges)
	// predicate true for all: gather must return both orientations of
	// every non-loop edge plus loops once.
	all := aux.Gather(m, func(int32) bool { return true })
	wantCount := 0
	for _, e := range g.Edges {
		if e.U == e.V {
			wantCount++
		} else {
			wantCount += 2
		}
	}
	if len(all) != wantCount {
		t.Fatalf("gather(true) returned %d entries, want %d", len(all), wantCount)
	}
	// predicate for a single vertex returns exactly its incident edges.
	var v int32 = 7
	mine := aux.Gather(m, func(u int32) bool { return u == v })
	deg := 0
	for _, e := range g.Edges {
		if e.U == v || e.V == v {
			deg++
		}
	}
	if len(mine) != deg {
		t.Fatalf("gather(v=7) returned %d, want %d", len(mine), deg)
	}
	for _, e := range mine {
		if e.U != v {
			t.Fatal("gathered edge does not start at v")
		}
	}
}

func TestAuxGatherEmptyPredicate(t *testing.T) {
	g := gen.Cycle(10)
	m := pram.New()
	aux := BuildAux(m, g.N, g.Edges)
	if got := aux.Gather(m, func(int32) bool { return false }); len(got) != 0 {
		t.Fatalf("gather(false) returned %d edges", len(got))
	}
}

func TestEdgesNotIn(t *testing.T) {
	m := pram.New()
	E := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	mask := []bool{true, false, true}
	out := EdgesNotIn(m, E, mask)
	if len(out) != 1 || out[0] != (graph.Edge{U: 1, V: 2}) {
		t.Fatalf("EdgesNotIn = %v", out)
	}
}

func TestIncreaseSparseKeepsH1Consistent(t *testing.T) {
	g := gen.RandomRegular(2000, 6, 31)
	truth := baseline.BFSLabels(g)
	m, f, red := reduced(t, g, 17)
	aux := BuildAux(m, g.N, red.Edges)
	H1 := gen.SampleEdges(&graph.Graph{N: g.N, Edges: red.Edges}, 0.4, 1).Edges
	H2 := gen.SampleEdges(&graph.Graph{N: g.N, Edges: red.Edges}, 0.4, 2).Edges
	p := DefaultParams(g.N, 8)
	p.LTZ = ltz.DefaultParams(g.N)
	h1, eclose := IncreaseSparse(m, f, red.Roots, aux, H1, H2, p)
	if err := labeled.CheckSameComponent(f, truth); err != nil {
		t.Fatal(err)
	}
	for _, e := range h1 {
		if truth[e.U] != truth[e.V] {
			t.Fatal("H1 edge crosses components after alter")
		}
		if e.U == e.V {
			t.Fatal("IncreaseSparse should have dropped H1 loops")
		}
	}
	for _, e := range eclose {
		if truth[e.U] != truth[e.V] {
			t.Fatal("eclose edge crosses components")
		}
	}
}

func TestDefaultParamsClampB(t *testing.T) {
	p := DefaultParams(1000, 0)
	if p.B < 4 {
		t.Errorf("B = %d, want clamp to ≥ 4", p.B)
	}
	if p.TableSize < p.HighOccupancy {
		t.Error("table must be larger than the high threshold")
	}
}
