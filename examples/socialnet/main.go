// Socialnet: the paper's motivating workload (§1.1) — real-world social and
// communication graphs have good expansion, so connectivity runs in
// O(log log n)-type time.  This example builds a synthetic social network
// of well-connected communities, then studies how the strong-tie subgraph
// (keeping each friendship with decreasing probability) fragments, using
// the spectral gap to predict which regime the algorithm is in.
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"log"
	"math"

	"parcc"
)

func main() {
	// 12 communities of varying size, each an 8-regular expander; members
	// additionally have a few random cross-community acquaintances.
	const communities = 12
	sizes := make([]int, communities)
	total := 0
	for i := range sizes {
		sizes[i] = 400 + 250*i
		total += sizes[i]
	}
	g := parcc.NewGraph(total)
	off := 0
	for i, s := range sizes {
		com := parcc.RandomRegular(s, 8, uint64(i+1))
		for _, e := range com.Edges {
			g.AddEdge(off+int(e.U), off+int(e.V))
		}
		off += s
	}
	// sparse random acquaintances across the whole network
	acq := parcc.GNM(total, total/2, 99)
	g.Edges = append(g.Edges, acq.Edges...)

	fmt.Printf("network: n=%d m=%d (%d communities + %d acquaintance ties)\n",
		g.N, g.M(), communities, total/2)

	full, err := parcc.ConnectedComponents(g, &parcc.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full graph: %d component(s), %d rounds\n\n",
		full.NumComponents, full.Steps)

	// Strong-tie analysis: keep each edge w.p. p and watch the components
	// and the spectral gap.  Communities (expanders) survive heavy
	// sparsification; the acquaintance ties vanish first.
	fmt.Println("  p     components   λ(min)    log2(1/λ)   rounds")
	for _, p := range []float64{0.9, 0.6, 0.4, 0.25} {
		s := parcc.SampleEdges(g, p, 1234)
		lam := parcc.SpectralGap(s)
		res, err := parcc.ConnectedComponents(s, &parcc.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %.2f  %10d   %8.4g   %8.2f   %6d\n",
			p, res.NumComponents, lam, math.Log2(1/lam), res.Steps)
	}

	fmt.Println("\ncommunity sizes of the p=0.25 strong-tie graph:")
	s := parcc.SampleEdges(g, 0.25, 1234)
	res, err := parcc.ConnectedComponents(s, nil)
	if err != nil {
		log.Fatal(err)
	}
	comps := res.Components()
	big := 0
	for _, c := range comps {
		if len(c) >= 100 {
			big++
		}
	}
	fmt.Printf("  %d components total, %d with ≥ 100 members\n", len(comps), big)
}
