// Connectivity as a service: a minimal client driving the ccserved HTTP
// API — attach a graph, stream edge updates, issue point queries.  To be
// self-contained the example starts the same engine+handler ccserved
// serves in-process on a loopback port; point -addr at a running ccserved
// to drive a real server instead:
//
//	go run ./examples/service                      # in-process server
//	go run ./cmd/ccserved -addr :8080 &            # or a real one
//	go run ./examples/service -addr 127.0.0.1:8080
//
// docs/OPERATIONS.md documents every endpoint used here.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"parcc/internal/service"
)

func main() {
	addr := flag.String("addr", "", "address of a running ccserved (empty: serve in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		// In-process ccserved: the same engine and handler the binary runs.
		eng := service.New(service.Options{})
		defer eng.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, service.NewHandler(eng))
		base = ln.Addr().String()
		fmt.Printf("in-process ccserved on %s\n\n", base)
	}
	url := "http://" + base

	// 1. Attach a graph: two triangles, not yet connected.
	fmt.Println("PUT /graphs/demo — two triangles:")
	post(url+"/graphs/demo", "PUT",
		`{"n":6,"edges":[[0,1],[1,2],[2,0],[3,4],[4,5],[5,3]]}`)

	// 2. Point queries answer lock-free from the published snapshot.
	fmt.Println("\npoint queries:")
	get(url + "/graphs/demo/connected?u=0&v=5")
	get(url + "/graphs/demo/component?u=4")
	get(url + "/graphs/demo/count")

	// 3. Stream edge updates: a bridge appears, then is retracted.  Each
	// mutation returns after its batch is applied AND the refreshed
	// snapshot is published — the next query observes it.
	fmt.Println("\nPOST /graphs/demo/edges — bridge the triangles:")
	post(url+"/graphs/demo/edges", "POST", `{"edges":[[2,3]]}`)
	get(url + "/graphs/demo/connected?u=0&v=5")
	fmt.Println("\nPOST /graphs/demo/edges/remove — retract the bridge:")
	post(url+"/graphs/demo/edges/remove", "POST", `{"edges":[[2,3]]}`)
	get(url + "/graphs/demo/connected?u=0&v=5")

	// 4. The NDJSON batch endpoint: one op per line, one result per line,
	// reads observing earlier writes in the same stream.
	fmt.Println("\nPOST /graphs/demo/batch (NDJSON stream):")
	post(url+"/graphs/demo/batch", "POST", strings.Join([]string{
		`{"op":"count"}`,
		`{"op":"add","edges":[[0,3],[1,4]]}`,
		`{"op":"connected","u":0,"v":5}`,
		`{"op":"component","u":5}`,
		`{"op":"remove","edges":[[0,3],[1,4]]}`,
		`{"op":"count"}`,
	}, "\n"))

	// 5. Serving counters.
	fmt.Println("\nGET /stats:")
	get(url + "/stats")
}

func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	show(resp)
}

func post(url, method, body string) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	show(resp)
}

func show(resp *http.Response) {
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s %s", resp.Status, out)
	if len(out) == 0 {
		fmt.Println()
	}
}
