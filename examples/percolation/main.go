// Percolation: bond percolation on a 2-D grid — a classical many-component
// workload.  Near the critical probability p≈0.5 the component structure is
// rich, and the per-component spectral gaps collapse, pushing the algorithm
// toward its Ω(log(1/λ)) regime; far from criticality the graph is either
// dust (trivial) or a well-connected giant cluster.
//
//	go run ./examples/percolation
package main

import (
	"fmt"
	"log"

	"parcc"
)

func main() {
	const side = 180 // 32,400 vertices
	base := parcc.Grid(side, side)
	fmt.Printf("grid: %dx%d, n=%d m=%d\n\n", side, side, base.N, base.M())

	fmt.Println("  p     comps   giant size   giant frac   rounds   work/(m+n)")
	for _, p := range []float64{0.3, 0.45, 0.5, 0.55, 0.7, 0.9} {
		g := parcc.SampleEdges(base, p, 2024)
		res, err := parcc.ConnectedComponents(g, &parcc.Options{Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		giant := 0
		for _, c := range res.Components() {
			if len(c) > giant {
				giant = len(c)
			}
		}
		mn := float64(g.M() + g.N)
		fmt.Printf("  %.2f %7d   %10d   %10.3f   %6d   %10.1f\n",
			p, res.NumComponents, giant, float64(giant)/float64(g.N),
			res.Steps, float64(res.Work)/mn)
	}

	fmt.Println("\npercolation threshold: the giant-fraction jump near p=0.5")
	fmt.Println("(bond percolation on Z² has critical probability exactly 1/2)")
}
