// Stagetour: a guided walk through the three stages of the algorithm on one
// graph, printing the quantity each paper lemma governs after each stage —
// vertex counts (Lemma 4.25), skeleton size (Lemma 5.5), minimum degree
// (Lemma 5.25), and the sampled-solve finish (§6).  Uses the internal
// packages directly, so it doubles as a map of the codebase.
//
//	go run ./examples/stagetour
package main

import (
	"fmt"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/labeled"
	"parcc/internal/pram"
	"parcc/internal/stage1"
	"parcc/internal/stage2"
	"parcc/internal/stage3"
)

func main() {
	g := gen.Union(
		gen.RandomRegular(6000, 6, 1),
		gen.RingOfCliques(20, 12, 2, 3),
		gen.Cycle(800),
	)
	truth := baseline.BFSLabels(g)
	fmt.Printf("input graph: n=%d m=%d components=%d\n\n",
		g.N, g.M(), graph.NumLabels(truth))

	m := pram.New(pram.Seed(42))
	f := labeled.New(g.N)

	// ---- Stage 1 (§4): contract to n/poly(log n) vertices -------------
	fmt.Println("Stage 1 — REDUCE (§4): MATCHING/FILTER/EXTRACT contractions")
	r := stage1.NewRunner(m, f, stage1.DefaultParams(g.N))
	red := r.Reduce(g)
	live := map[int32]struct{}{}
	for _, e := range red.Edges {
		if e.U != e.V {
			live[e.U] = struct{}{}
			live[e.V] = struct{}{}
		}
	}
	fmt.Printf("  roots remaining:      %d of %d (%.1f%%)\n",
		len(red.Roots), g.N, 100*float64(len(red.Roots))/float64(g.N))
	fmt.Printf("  live (active) roots:  %d   [Lemma 4.25: n/poly(log n)]\n", len(live))
	fmt.Printf("  edges remaining:      %d of %d\n", len(red.Edges), g.M())
	fmt.Printf("  charged so far:       %d steps, %.1f work/(m+n)\n\n",
		m.Steps(), float64(m.Work())/float64(g.M()+g.N))

	// ---- Stage 2 (§5): skeleton + densify + degree boost ---------------
	fmt.Println("Stage 2 — INCREASE (§5): skeleton BUILD, DENSIFY, degree boost")
	b := 8
	p2 := stage2.DefaultParams(g.N, b)
	H := stage2.Build(m, red.Roots, red.Edges, p2)
	fmt.Printf("  skeleton edges:       %d (%.3f of m+n)   [Lemma 5.5]\n",
		len(H), float64(len(H))/float64(g.M()+g.N))
	E := append([]graph.Edge(nil), red.Edges...)
	stage2.Increase(m, f, red.Roots, E, p2)
	deg := map[int32]int{}
	for _, e := range E {
		if e.U != e.V {
			deg[e.U]++
			deg[e.V]++
		}
	}
	minDeg := -1
	active := 0
	for v, d := range deg {
		if f.P[v] == v {
			active++
			if minDeg < 0 || d < minDeg {
				minDeg = d
			}
		}
	}
	if active == 0 {
		fmt.Printf("  active roots:         0 — Stage 2 contracted every component outright\n")
	} else {
		fmt.Printf("  active roots:         %d, min degree %d (target b=%d)   [Lemma 5.25]\n",
			active, minDeg, b)
	}
	fmt.Printf("  charged so far:       %d steps\n\n", m.Steps())

	// ---- Stage 3 (§6): sample and solve --------------------------------
	fmt.Println("Stage 3 — SAMPLESOLVE (§6): edge sampling + Theorem-2 finish")
	var roots []int32
	for v := int32(0); int(v) < g.N; v++ {
		if f.P[v] == v {
			roots = append(roots, v)
		}
	}
	E = labeled.Alter(m, f, E)
	sampled := stage3.SampleSolve(m, f, roots, E, stage3.DefaultParams(g.N))
	fmt.Printf("  sampled edges solved: %d\n", sampled)
	labeled.FlattenAll(m, f)

	got := f.Labels()
	fmt.Printf("  components found:     %d (truth: %d)\n",
		graph.NumLabels(got), graph.NumLabels(truth))
	fmt.Printf("  exact partition:      %v\n", graph.SamePartition(truth, got))
	fmt.Printf("  total charged:        %d steps, %.1f work/(m+n)\n",
		m.Steps(), float64(m.Work())/float64(g.M()+g.N))
	fmt.Println("\n(any components the sampling misses are finished by the REMAIN/")
	fmt.Println(" backstop cleanup in the full CONNECTIVITY driver — see internal/core)")
}
