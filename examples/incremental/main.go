// Incremental: a stream of edge batches arrives — mostly insertions, with
// occasional retractions — and component counts are needed after every
// batch.  This is the workload the live-session API serves: Attach binds a
// Solver to the graph, AddEdges folds insert batches into the live
// partition in O(batch) CAS union-find work, RemoveEdges re-solves only
// the components its deletions touched with the paper's CONNECTIVITY
// pipeline, and Components re-queries without solving anything.  The
// example replays the same stream against cold from-scratch solves to
// show what the session saves.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"time"

	"parcc"
)

func main() {
	const n = 20000
	const batches = 10
	full := parcc.GNM(n, 3*n, 7)
	per := full.M() / batches

	fmt.Printf("stream: n=%d, %d insert batches of %d edges, retraction every 4th\n\n", n, batches, per)

	s, err := parcc.NewSolver(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if err := s.Attach(parcc.NewGraph(n)); err != nil {
		log.Fatal(err)
	}

	cold := parcc.NewGraph(n)
	res := &parcc.Result{}
	fmt.Println("batch   op        edges    comps   live µs   cold re-solve µs")
	for b := 0; b < batches; b++ {
		lo, hi := b*per, (b+1)*per
		if b == batches-1 {
			hi = full.M()
		}
		batch := full.Edges[lo:hi]

		op := "add"
		t0 := time.Now()
		if err := s.AddEdges(batch); err != nil {
			log.Fatal(err)
		}
		if b > 0 && b%4 == 0 {
			// Retract a slice of an earlier batch: the deletions mark their
			// components dirty and trigger a scoped re-solve.
			op = "add+del"
			if err := s.RemoveEdges(full.Edges[:per/8]); err != nil {
				log.Fatal(err)
			}
			if err := s.AddEdges(full.Edges[:per/8]); err != nil { // re-add: keep streams aligned
				log.Fatal(err)
			}
		}
		if err := s.ComponentsInto(res); err != nil {
			log.Fatal(err)
		}
		liveT := time.Since(t0)

		// The cold path pays a full solve of the mutated graph per batch.
		cold.Edges = append(cold.Edges, batch...)
		t0 = time.Now()
		scratch, err := parcc.ConnectedComponents(cold, &parcc.Options{Seed: uint64(b + 1)})
		if err != nil {
			log.Fatal(err)
		}
		coldT := time.Since(t0)

		if scratch.NumComponents != res.NumComponents {
			log.Fatalf("batch %d: live says %d comps, scratch says %d",
				b, res.NumComponents, scratch.NumComponents)
		}
		fmt.Printf("%5d   %-7s   %6d   %6d   %7d   %16d\n",
			b, op, s.Live().M(), res.NumComponents,
			liveT.Microseconds(), coldT.Microseconds())
	}

	fmt.Println("\nthe live session folds each batch into the standing partition and")
	fmt.Println("answers from it; the cold column re-pays O(m+n) per batch.  deletions")
	fmt.Println("fall back to the paper's pipeline — but only on the dirty components.")
}
