// Incremental: a stream of edge batches arrives and component counts are
// needed after every batch.  This example contrasts the right tool per
// regime: sequential union-find (optimal for incremental updates) versus
// recomputing with the paper's parallel algorithm (optimal when batches
// are huge or the graph arrives at once), reporting the PRAM work a
// recompute would charge at each step.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"parcc"
)

func main() {
	const n = 20000
	const batches = 8
	full := parcc.GNM(n, 3*n, 7)
	per := full.M() / batches

	fmt.Printf("stream: n=%d, %d batches of %d edges\n\n", n, batches, per)
	fmt.Println("batch   edges    comps   uf-finds   recompute rounds   recompute work/(m+n)")

	// Incremental union-find consumes the stream directly.
	uf := newUF(n)

	g := parcc.NewGraph(n)
	for b := 0; b < batches; b++ {
		lo, hi := b*per, (b+1)*per
		if b == batches-1 {
			hi = full.M()
		}
		batch := full.Edges[lo:hi]
		g.Edges = append(g.Edges, batch...)
		for _, e := range batch {
			uf.union(e.U, e.V)
		}
		// Recompute from scratch with the parallel algorithm.
		res, err := parcc.ConnectedComponents(g, &parcc.Options{Seed: uint64(b + 1)})
		if err != nil {
			log.Fatal(err)
		}
		if res.NumComponents != uf.count {
			log.Fatalf("batch %d: recompute says %d comps, union-find says %d",
				b, res.NumComponents, uf.count)
		}
		mn := float64(g.M() + g.N)
		fmt.Printf("%5d   %6d   %6d   %8d   %16d   %20.1f\n",
			b, g.M(), res.NumComponents, uf.finds, res.Steps,
			float64(res.Work)/mn)
	}

	fmt.Println("\nunion-find wins per-batch; the parallel recompute pays a fixed")
	fmt.Println("O(m+n)-work bill but answers in polyloglog parallel time —")
	fmt.Println("the trade the paper's introduction frames.")
}

// newUF is a tiny union-find with a find counter (the package keeps the
// instrumented baseline internal, so the example carries its own).
type uf struct {
	p     []int32
	count int
	finds int
}

func newUF(n int) *uf {
	u := &uf{p: make([]int32, n), count: n}
	for i := range u.p {
		u.p[i] = int32(i)
	}
	return u
}

func (u *uf) find(x int32) int32 {
	u.finds++
	for u.p[x] != x {
		u.p[x] = u.p[u.p[x]]
		x = u.p[x]
	}
	return x
}

func (u *uf) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.p[rb] = ra
		u.count--
	}
}
