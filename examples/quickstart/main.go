// Quickstart: label the connected components of a graph with the paper's
// algorithm and inspect the PRAM cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parcc"
)

func main() {
	// Build a graph: two communities (random 8-regular expanders, λ = Θ(1))
	// plus a long path (λ = Θ(1/n²)) and a few isolated vertices.
	g := parcc.UnionGraphs(
		parcc.RandomRegular(2000, 8, 1),
		parcc.RandomRegular(1500, 8, 2),
		parcc.Path(800),
		parcc.NewGraph(5),
	)
	fmt.Printf("input: n=%d m=%d  λ=%.4g\n", g.N, g.M(), parcc.SpectralGap(g))

	// The default algorithm is FLS — the paper's CONNECTIVITY (Theorem 1):
	// O(log(1/λ) + log log n) simulated PRAM time, O(m+n) work.
	res, err := parcc.ConnectedComponents(g, &parcc.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("components: %d\n", res.NumComponents)
	fmt.Printf("pram time:  %d rounds\n", res.Steps)
	fmt.Printf("pram work:  %.1f ops per edge+vertex\n",
		float64(res.Work)/float64(g.M()+g.N))

	// Constant-time connectivity queries on the labeling (§2.1).
	fmt.Printf("0 ~ 1999?   %v (same expander)\n", res.SameComponent(0, 1999))
	fmt.Printf("0 ~ 2000?   %v (different components)\n", res.SameComponent(0, 2000))

	// Compare with a classical baseline on the same input.
	sv, err := parcc.ConnectedComponents(g, &parcc.Options{Algorithm: parcc.SV})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sv:         %d rounds, %.1f ops per edge+vertex\n",
		sv.Steps, float64(sv.Work)/float64(g.M()+g.N))

	// Every result can be verified against sequential BFS.
	fmt.Printf("verified:   %v\n", parcc.Verify(g, res.Labels))

	// Serving repeated queries: a Solver session keeps the goroutine pool,
	// PRAM machine, scratch arena, and cached CSR plan alive across
	// solves, so repeat queries skip the per-call setup entirely.
	// SolveInto additionally recycles the Result (labels buffer included),
	// which makes the steady state of this loop near-allocation-free.
	solver, err := parcc.NewSolver(&parcc.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer solver.Close()
	session := &parcc.Result{}
	for i := 0; i < 3; i++ {
		if err := solver.SolveInto(g, session); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("session:    %d components after 3 reused solves (steps=%d, same as one-shot: %v)\n",
		session.NumComponents, session.Steps, session.Steps == res.Steps)
}
