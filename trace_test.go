package parcc_test

import (
	"strings"
	"testing"

	"parcc"
	"parcc/internal/bench"
	"parcc/internal/graph/gen"
)

// TestTraceAllocs pins the disabled-Recorder contract: with Options.Trace
// unset the warm serving path keeps its steady-state allocation counts —
// bfs stays exactly zero-alloc, the union-find, cas, and frontier
// sessions stay at their small fixed costs (for frontier that is the
// hoisted closure set built once per solve, independent of graph size and
// round count) — on both backends, and Result.Trace stays nil.
func TestTraceAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow-ish")
	}
	g := gen.GNM(1<<12, 1<<13, 3)
	for _, be := range []parcc.Backend{parcc.BackendSequential, parcc.BackendConcurrent} {
		for _, tc := range []struct {
			algo parcc.Algorithm
			max  float64 // allowed warm allocations per solve
		}{
			{parcc.BFS, 0},
			{parcc.UnionFind, 1},
			{parcc.CASUnite, 3},
			{parcc.Frontier, 14},
		} {
			s, err := parcc.NewSolver(&parcc.Options{Algorithm: tc.algo, Backend: be, Procs: 2, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			res := &parcc.Result{}
			for i := 0; i < 2; i++ { // warm the arena and plan cache
				if err := s.SolveInto(g, res); err != nil {
					t.Fatal(err)
				}
			}
			warm := testing.AllocsPerRun(5, func() {
				if err := s.SolveInto(g, res); err != nil {
					t.Fatal(err)
				}
			})
			if warm > tc.max {
				t.Errorf("%s/%s: tracing-off warm solve allocates %.0f/run, want <= %.0f",
					be, tc.algo, warm, tc.max)
			}
			if res.Trace != nil {
				t.Errorf("%s/%s: Result.Trace must stay nil with tracing off", be, tc.algo)
			}
			s.Close()
		}
	}
}

// TestTraceAutoDispatchGolden is the dispatch golden test: across all
// twenty generator families, the decision the Trace records must match
// the algorithm the Result reports, on both backends.
func TestTraceAutoDispatchGolden(t *testing.T) {
	for _, be := range []parcc.Backend{parcc.BackendSequential, parcc.BackendConcurrent} {
		s, err := parcc.NewSolver(&parcc.Options{
			Algorithm: parcc.Auto, Backend: be, Procs: 2, Seed: 3, Trace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := &parcc.Result{}
		for _, f := range bench.Families(1<<12, 1) {
			if err := s.SolveInto(f.Make(), res); err != nil {
				t.Fatalf("%s/%s: %v", be, f.Name, err)
			}
			tr := res.Trace
			if tr == nil || tr.Dispatch == nil {
				t.Fatalf("%s/%s: auto solve with tracing must record a dispatch decision", be, f.Name)
			}
			if tr.Dispatch.Chosen != res.Algorithm {
				t.Errorf("%s/%s: trace dispatch chose %q but Result.Algorithm is %q (rule %q)",
					be, f.Name, tr.Dispatch.Chosen, res.Algorithm, tr.Dispatch.Rule)
			}
			switch tr.Dispatch.Rule {
			case "tiny", "dense", "mesh", "skewed", "sparse":
			default:
				t.Errorf("%s/%s: unknown dispatch rule %q", be, f.Name, tr.Dispatch.Rule)
			}
			if last := s.LastTrace(); last != tr {
				t.Errorf("%s/%s: LastTrace must return the trace of the latest solve", be, f.Name)
			}
		}
		s.Close()
	}
}

// TestTracePhaseSum is the acceptance bound on span coverage: with
// tracing on, the per-phase wall times of a solve on the complete and
// block families must sum to within 20%% of the recorded total (best of a
// few attempts, to shrug off scheduler noise).
func TestTracePhaseSum(t *testing.T) {
	for _, f := range bench.Families(1<<14, 1) {
		if f.Name != "complete" && f.Name != "block" {
			continue
		}
		g := f.Make()
		s, err := parcc.NewSolver(&parcc.Options{
			Algorithm: parcc.Auto, Backend: parcc.BackendConcurrent, Trace: true, TrustGraph: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := &parcc.Result{}
		best := 0.0
		for attempt := 0; attempt < 4; attempt++ {
			if err := s.SolveInto(g, res); err != nil {
				t.Fatal(err)
			}
			tr := res.Trace
			if tr == nil || tr.Total <= 0 {
				t.Fatalf("%s: traced solve must record a positive total", f.Name)
			}
			if cover := float64(tr.PhaseSum()) / float64(tr.Total); cover > best {
				best = cover
			}
			if best >= 0.8 {
				break
			}
		}
		if best < 0.8 {
			t.Errorf("%s: phase wall times cover %.0f%% of the total, want >= 80%%", f.Name, 100*best)
		}
		s.Close()
	}
}

// TestTraceIncrementalOps: the live-update operations each leave a trace
// with the right op name and batch-shape counters.
func TestTraceIncrementalOps(t *testing.T) {
	s, err := parcc.NewSolver(&parcc.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := gen.TwoCycles(64)
	if err := s.Attach(g); err != nil {
		t.Fatal(err)
	}
	tr := s.LastTrace()
	if tr == nil || tr.Op != "attach" || tr.Incremental == nil {
		t.Fatalf("attach trace = %+v, want op=attach with incremental shape", tr)
	}
	if tr.Incremental.BatchEdges != int64(g.M()) {
		t.Errorf("attach batch edges = %d, want %d", tr.Incremental.BatchEdges, g.M())
	}
	bridge := []parcc.Edge{{U: 0, V: 40}}
	if err := s.AddEdges(bridge); err != nil {
		t.Fatal(err)
	}
	tr = s.LastTrace()
	if tr == nil || tr.Op != "add-edges" || tr.Incremental == nil || tr.Incremental.BatchEdges != 1 {
		t.Fatalf("add-edges trace = %+v, want op=add-edges batch=1", tr)
	}
	if err := s.RemoveEdges(bridge); err != nil {
		t.Fatal(err)
	}
	tr = s.LastTrace()
	if tr == nil || tr.Op != "remove-edges" || tr.Incremental == nil {
		t.Fatalf("remove-edges trace = %+v, want op=remove-edges with incremental shape", tr)
	}
	if tr.Incremental.DirtyComponents < 1 {
		t.Errorf("removing a bridge must dirty at least one component, got %d", tr.Incremental.DirtyComponents)
	}
	var sb strings.Builder
	tr.WriteText(&sb)
	if !strings.Contains(sb.String(), "op=remove-edges") || !strings.Contains(sb.String(), "incremental:") {
		t.Errorf("WriteText output missing expected lines:\n%s", sb.String())
	}
}

// TestTraceAliases: Result.SkipRatio and Result.Phases stay populated
// with tracing off and mirror the Trace fields with tracing on.
func TestTraceAliases(t *testing.T) {
	g := gen.GNM(1<<12, 1<<16, 7) // dense: auto dispatches to sample
	off, err := parcc.ConnectedComponents(g, &parcc.Options{Algorithm: parcc.Sample, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if off.Trace != nil {
		t.Fatal("tracing off must leave Result.Trace nil")
	}
	on, err := parcc.ConnectedComponents(g, &parcc.Options{Algorithm: parcc.Sample, Seed: 3, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Trace == nil {
		t.Fatal("tracing on must populate Result.Trace")
	}
	if on.Trace.SkipRatio != on.SkipRatio {
		t.Errorf("Trace.SkipRatio %v != Result.SkipRatio %v", on.Trace.SkipRatio, on.SkipRatio)
	}
	if on.Trace.FLSPhases != on.Phases {
		t.Errorf("Trace.FLSPhases %d != Result.Phases %d", on.Trace.FLSPhases, on.Phases)
	}
	if off.SkipRatio != on.SkipRatio {
		t.Errorf("SkipRatio must not depend on tracing: off %v on %v", off.SkipRatio, on.SkipRatio)
	}
	if on.Trace.CASAttempts <= 0 || on.Trace.CASHooks <= 0 {
		t.Errorf("sample trace must count kernel attempts/hooks, got %d/%d",
			on.Trace.CASAttempts, on.Trace.CASHooks)
	}
	if d := on.Trace.Phase("sample"); d <= 0 {
		t.Errorf("sample trace must include a sample phase span, got %v", d)
	}
}
