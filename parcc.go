// Package parcc is a Go implementation of "Connected Components in Linear
// Work and Near-Optimal Time" (Farhadi, Liu, Shi — SPAA 2024): a simulated
// ARBITRARY CRCW PRAM connectivity algorithm running in
// O(log(1/λ) + log log n) parallel time and O(m+n) work w.h.p., where λ is
// the minimum spectral gap over the connected components of the input.
//
// The package exposes:
//
//   - ConnectedComponents: the paper's CONNECTIVITY algorithm (§7), plus
//     the [LTZ20] baseline, Shiloach–Vishkin, random-mate, label
//     propagation, and sequential union-find / BFS for comparison;
//   - Solver: the session form of the same engine for serving repeated
//     queries — NewSolver builds the goroutine pool, PRAM machine, scratch
//     arena, and CSR plan cache once; Solve/SolveInto reuse them, making
//     warm solves near-zero-alloc with results identical to the one-shot
//     path (ConnectedComponents is a thin wrapper over a one-shot Solver);
//   - graph constructors and the generator families used by the paper's
//     analysis (expanders, hypercubes, grids, cycles, ring-of-cliques,
//     the 2-CYCLE instances, the Appendix-B construction);
//   - spectral utilities: per-component spectral gap λ, conductance and
//     diameter, the quantities the paper's bounds are parameterized by.
//
// # Execution backends
//
// Every algorithm is written against the synchronous PRAM simulator
// (internal/pram), which charges model costs per parallel step.  Options
// .Backend selects where those steps' loop bodies actually execute:
//
//   - BackendSequential: single-threaded, deterministic, exactly
//     reproducible — the reference semantics;
//   - BackendConcurrent: the internal/par runtime — a persistent goroutine
//     pool with chunked dynamic load balancing, deterministic per-chunk RNG
//     streams, and lock-free CAS kernels (hooking, pointer jumping,
//     min-label propagation, compaction) backing the uncharged helpers.
//     The charged accounting stays the model's: normalized work is flat,
//     and round counts of the randomized algorithms may shift a few percent
//     across procs because ARBITRARY concurrent-write winners steer the
//     control flow (at Procs: 1 they match the simulator exactly).
//     Options.Procs bounds the parallelism.
//
// The partition returned is the same on either backend (concurrent runs may
// break ties differently inside a component, but the components are unique).
// Algorithm CASUnite additionally exposes the barrier-free concurrent
// union-find itself — the wall-clock-oriented solver whose output labels
// (component minima) are deterministic even under arbitrary schedules.
//
// Quick start:
//
//	g := parcc.RandomRegular(1<<16, 8, 1)  // an expander: λ = Θ(1)
//	res, err := parcc.ConnectedComponents(g, nil)
//	if err != nil { ... }
//	fmt.Println(res.NumComponents, res.Steps, res.Work)
//
//	fast, err := parcc.ConnectedComponents(g, &parcc.Options{
//		Backend: parcc.BackendConcurrent, Procs: 8,
//	})
//
//	s, err := parcc.NewSolver(&parcc.Options{Backend: parcc.BackendConcurrent})
//	defer s.Close()
//	for _, q := range queries {
//		res, err := s.Solve(q) // reuses pool, machine, arena, CSR plan
//		...
//	}
package parcc

import (
	"fmt"
	"io"

	"parcc/internal/baseline"
	"parcc/internal/core"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
	"parcc/internal/spectral"
)

// Graph is an undirected multigraph on vertices 0..N-1; self-loops and
// parallel edges are permitted (§2.1).
type Graph = graph.Graph

// Edge is an undirected edge.
type Edge = graph.Edge

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// FromPairs builds a graph on n vertices from (u,v) pairs.
func FromPairs(n int, pairs [][2]int) *Graph { return graph.FromPairs(n, pairs) }

// ReadGraph parses the "n m" + edge-list format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes the "n m" + edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Algorithm selects which connectivity algorithm ConnectedComponents runs.
type Algorithm string

// Available algorithms.
const (
	// FLS is the paper's CONNECTIVITY (Theorem 1): the default.
	FLS Algorithm = "fls"
	// FLSKnownGap is the fixed-b three-stage pipeline (Theorem 3).
	FLSKnownGap Algorithm = "fls-known-gap"
	// LTZ is the Liu–Tarjan–Zhong baseline (Theorem 2).
	LTZ Algorithm = "ltz"
	// SV is Shiloach–Vishkin / Awerbuch–Shiloach.
	SV Algorithm = "sv"
	// RandomMate is Reif's random-mate contraction.
	RandomMate Algorithm = "random-mate"
	// LabelProp is synchronous minimum-label propagation.
	LabelProp Algorithm = "label-prop"
	// UnionFind is the sequential disjoint-set baseline.
	UnionFind Algorithm = "union-find"
	// BFS is the sequential breadth-first baseline (ground truth).
	BFS Algorithm = "bfs"
	// LT is the Liu–Tarjan simple concurrent algorithm [LT19]
	// (parent-connect + shortcut + alter).
	LT Algorithm = "liu-tarjan"
	// ParBFS is multi-source level-synchronous parallel BFS: O(d) rounds,
	// O(m+n) work.
	ParBFS Algorithm = "parallel-bfs"
	// CASUnite is the barrier-free concurrent union-find on the internal/par
	// runtime (unite-by-min hooking, path halving, full compression): the
	// wall-clock-oriented companion to the charged PRAM algorithms.  Its
	// result is deterministic on every backend (labels are component
	// minima); its Steps/Work are charged nominally (one O(log n)-deep
	// contraction of linear work), since CAS retry counts are not a PRAM
	// quantity.
	CASUnite Algorithm = "cas"
	// Sample is the Afforest-style sampling fast path (Sutton et al.,
	// Adaptive Work-Efficient Connected Components on the GPU): a few
	// neighbor-sampling rounds settle most components, a majority-root
	// vote plus a sampled skip-ratio probe decide whether the gamble paid,
	// and the full edge pass then skips every already-settled edge with
	// two loads and a compare, uniting only the surviving minority.  When
	// the probes predict a skip ratio below the fallback threshold, the
	// solve runs the full FLS pipeline instead (observable as Phases > 0).
	// Labels are the component minima, deterministic on every backend
	// (the sampling choices steer only how much work is skipped, never the
	// partition); Result.SkipRatio reports the measured skip fraction.
	// Like CASUnite, Steps/Work are charged nominally.  Wall-clock wins
	// come on graphs whose edges concentrate inside communities — dense
	// random graphs, block/community structure, cliques; on sparse
	// low-degree families it roughly matches CASUnite.
	Sample Algorithm = "sample"
	// Frontier is the frontier-driven solve engine: asynchronous
	// minimum-label propagation over an active-vertex set that switches
	// between a dense bitmap and a sparse compacted list on occupancy
	// (direction-optimizing style).  Per-round work is proportional to the
	// frontier — only vertices whose labels changed are revisited — which
	// wins the high-diameter, low-degree mesh regime (grids, tori, paths)
	// where every dense-round algorithm pays rounds × m and the sampling
	// gamble has nothing to skip.  Labels are the component minima,
	// deterministic on every backend (label CASes only lower values toward
	// the same fixpoint); Steps/Work are charged nominally, like CASUnite.
	// With tracing enabled, per-round occupancy and representation
	// switches appear in Result.Trace.Frontier.
	Frontier Algorithm = "frontier"
	// Auto picks the solver per graph from the session's cached plan
	// statistics (n, m, average/max degree, density, edge locality):
	// union-find for tiny inputs, Sample when the density statistics
	// predict a high skip ratio, Frontier on low-degree high-locality mesh
	// shapes, CASUnite otherwise.  The decision is recorded in
	// Result.Algorithm — a result from an Auto solve echoes the concrete
	// algorithm that ran, never "auto".  The decision table is documented
	// in docs/ARCHITECTURE.md.
	Auto Algorithm = "auto"
	// Incremental is the value Result.Algorithm echoes for results produced
	// by the live-update path (Solver.Components after AddEdges/
	// RemoveEdges).  It is not selectable in Options — the incremental
	// machinery is driven through Solver.Attach, not through Solve.
	Incremental Algorithm = "incremental"
)

// Backend selects the execution engine ConnectedComponents runs on.
type Backend string

// Available backends.
const (
	// BackendSequential is the deterministic single-threaded PRAM
	// simulation — semantics-preserving and exactly reproducible.
	BackendSequential Backend = "sequential"
	// BackendConcurrent executes the same charged PRAM steps with their
	// loop bodies scheduled on the internal/par runtime: a persistent
	// goroutine pool with chunked dynamic load balancing, plus CAS fast
	// paths for the uncharged helpers.  Model costs (Steps/Work) are
	// identical to the simulator's; only the wall clock changes.
	BackendConcurrent Backend = "concurrent"
	// The zero value keeps the legacy selection: the simulator with
	// per-step goroutines, or single-threaded when Options.Sequential is
	// set.
)

// Options configures a run.  The zero value (or nil) selects the FLS
// algorithm with practical parameters on all CPUs.
type Options struct {
	// Algorithm selects the solver (default FLS).
	Algorithm Algorithm
	// Backend selects the execution engine (default: the legacy simulator
	// behavior; see Backend).  BackendConcurrent runs the charged PRAM
	// steps on the internal/par goroutine pool.
	Backend Backend
	// Procs bounds the concurrent backend's parallelism (default: Workers,
	// else NumCPU).  Zero means "unset"; a negative value is a caller bug
	// and is rejected with *ProcsRangeError rather than silently clamped.
	Procs int
	// Workers bounds the goroutine pool (default: NumCPU).
	Workers int
	// Sequential forces deterministic single-threaded simulation.  Ignored
	// when Backend is set explicitly.
	Sequential bool
	// Seed makes randomized algorithms reproducible.  The zero value means
	// "unset" and selects the default seed 1 (so the zero Options value is
	// a working default); to actually run with the literal seed 0, set
	// ZeroSeed.
	Seed uint64
	// ZeroSeed selects the literal seed 0, distinguishing "explicit 0"
	// from the unset zero value of Seed.  Ignored when Seed != 0.
	ZeroSeed bool
	// Params overrides the FLS parameter profile (default core.Default).
	Params *core.Params
	// KnownGapB is the degree target b for FLSKnownGap (default 16).
	KnownGapB int
	// Trace enables solve-phase tracing: the session owns an
	// internal/obs.Recorder, every solve and incremental operation
	// populates Result.Trace (and Solver.LastTrace) with per-phase wall
	// times, kernel counters, and dispatch decisions.  Off by default —
	// the disabled path threads a nil recorder whose methods no-op on one
	// predictable branch, keeping the warm serving path allocation-free
	// and its wall time unchanged.
	Trace bool
	// TrustGraph promises that graphs handed to this solver are never
	// mutated in place between solves (appending or removing edges is
	// still detected — only same-length overwrites of existing edges go
	// unnoticed).  With the promise, the session's plan-cache validation
	// drops from an O(m) content-fingerprint pass per solve to an O(1)
	// length check, which matters exactly in steady-state serving where
	// the graph never changes and the fingerprint scan would otherwise be
	// the only O(m) term left on the warm path.  The tradeoff is
	// documented in docs/ARCHITECTURE.md: break the promise and a warm
	// solver serves labels computed from a stale adjacency.
	TrustGraph bool
	// NoForest disables the incremental session's spanning-forest
	// maintenance: deletions always mark components dirty and repair them
	// with the scoped re-solve, as in the pre-forest sessions.  The
	// forest path is strictly better on delete-heavy streams (see
	// docs/ARCHITECTURE.md); this switch exists as the comparison
	// baseline the INC benchmark measures against and as an escape hatch.
	NoForest bool
}

// Result reports the labeling and the PRAM cost of a run.
type Result struct {
	// Labels[v] is the component representative of vertex v.
	Labels []int32
	// NumComponents is the number of connected components.
	NumComponents int
	// Steps is the charged PRAM time (synchronous rounds).
	Steps int64
	// Work is the charged PRAM work (total operations).
	Work int64
	// Phases is the number of INTERWEAVE phases used (FLS only).  It is a
	// documented alias of Trace.FLSPhases: always populated, tracing or
	// not, and equal to the traced value when Options.Trace is set.
	Phases int
	// SkipRatio is the fraction of edges the sampling fast path settled
	// without a Unite — skipped wholesale with their vertex's adjacency
	// range, or dismissed by the finish pass's one-compare root check —
	// i.e. 1 − UniteAttempts/m (approximate in majority mode, where an
	// unsettled edge between two non-majority vertices is attempted from
	// both sides).  Algorithm Sample only; a fallback run reports the low
	// probe estimate that triggered it.  Zero for every other algorithm.
	// It is a documented alias of Trace.SkipRatio: always populated,
	// tracing or not, and equal to the traced value when Options.Trace is
	// set.
	SkipRatio float64
	// Algorithm echoes the solver used.  For Options.Algorithm Auto this
	// is the dispatch decision: the concrete algorithm the plan statistics
	// selected.
	Algorithm Algorithm
	// Backend echoes the requested backend (zero value: legacy default).
	Backend Backend
	// Procs is the parallelism the run used (1 for sequential).
	Procs int
	// Breakdown attributes charged cost to stages (FLS and FLSKnownGap):
	// stage1-reduce, presample, phase-i, finish / stage2-increase, ....
	Breakdown []StageCost
	// Trace is the structured observation of this solve: per-phase wall
	// times, CAS attempt/hook counters, the sampling probes' signals, the
	// auto dispatcher's decision, and LTZ/FLS round counts.  Nil unless
	// the run's Options.Trace was set.
	Trace *Trace
}

// StageCost is one entry of a per-stage cost breakdown.
type StageCost struct {
	Stage string
	Steps int64
	Work  int64
}

// ConnectedComponents labels the connected components of g.  It is a
// compatibility wrapper over a one-shot [Solver]: construct the session,
// solve once, tear it down.  Callers issuing repeated solves should hold a
// Solver instead and amortize the session state (pool, machine, arena, CSR
// plan) across calls.
func ConnectedComponents(g *Graph, opt *Options) (*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("parcc: %w", err)
	}
	s, err := NewSolver(opt)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Solve(g)
}

// SameComponent reports whether u and v received the same label.  O(1);
// safe for concurrent readers of an unchanging Result.
func (r *Result) SameComponent(u, v int) bool {
	return r.Labels[u] == r.Labels[v]
}

// Components groups vertices by label, ordered by smallest member.
func (r *Result) Components() [][]int32 { return graph.ComponentsOf(r.Labels) }

// Verify checks r.Labels against a sequential BFS of g: O(m+n) uncharged
// single-threaded ground truth, safe to call concurrently with other
// readers of g.
func Verify(g *Graph, labels []int32) bool {
	return graph.SamePartition(baseline.BFSLabels(g), labels)
}

// Certificate is an independently checkable spanning-forest witness.
type Certificate = graph.Certificate

// Certify builds a spanning-forest certificate for a labeling (and errors
// if the labeling is wrong — it doubles as an exact checker).
func Certify(g *Graph, labels []int32) (*Certificate, error) {
	return graph.BuildCertificate(g, labels)
}

// VerifyCertificate validates a certificate against the graph from scratch.
func VerifyCertificate(g *Graph, c *Certificate) error {
	return graph.VerifyCertificate(g, c)
}

// SpectralGap estimates λ(G): the minimum spectral gap (second-smallest
// normalized-Laplacian eigenvalue, Definition 2.2) over all connected
// components with ≥ 2 vertices.
func SpectralGap(g *Graph) float64 { return spectral.Gap(g, nil) }

// ComponentSpectralGaps returns λ per component (NaN for singletons).
func ComponentSpectralGaps(g *Graph) []float64 { return spectral.ComponentGaps(g, nil) }

// Diameter returns the exact maximum intra-component diameter (O(nm); for
// large graphs prefer DiameterApprox).
func Diameter(g *Graph) int { return spectral.DiameterExact(g) }

// DiameterApprox lower-bounds the diameter by iterated double sweeps.
func DiameterApprox(g *Graph) int { return spectral.DiameterApprox(g, 3) }

// Generator re-exports.  Each family is documented in internal/graph/gen
// with the spectral-gap regime it exercises.
var (
	// Path is the n-vertex path: λ = Θ(1/n²).
	Path = gen.Path
	// Cycle is the n-cycle: λ = Θ(1/n²).
	Cycle = gen.Cycle
	// TwoCycles is two disjoint ⌊n/2⌋/⌈n/2⌉-cycles (the 2-CYCLE instance).
	TwoCycles = gen.TwoCycles
	// Grid is the r×c grid.
	Grid = gen.Grid
	// Torus is the r×c torus.
	Torus = gen.Torus
	// Hypercube is the d-dimensional hypercube: λ = 2/d.
	Hypercube = gen.Hypercube
	// Complete is K_n.
	Complete = gen.Complete
	// Star is K_{1,n-1}.
	Star = gen.Star
	// BinaryTree is the complete binary tree on n vertices.
	BinaryTree = gen.BinaryTree
	// RandomRegular is a random d-regular multigraph (expander w.h.p.).
	RandomRegular = gen.RandomRegular
	// GNM is the Erdős–Rényi G(n,m) multigraph.
	GNM = gen.GNM
	// RingOfCliques is k s-cliques in a ring with tunable bridge count.
	RingOfCliques = gen.RingOfCliques
	// Lollipop is a clique with a path tail.
	Lollipop = gen.Lollipop
	// Barbell is two cliques joined by a path.
	Barbell = gen.Barbell
	// UnionGraphs is the disjoint union of graphs.
	UnionGraphs = gen.Union
	// AppendixB is the diameter-blowup construction of Appendix B.
	AppendixB = gen.AppendixB
	// SampleEdges keeps each edge independently with probability p.
	SampleEdges = gen.SampleEdges
)
