package parcc

import (
	"testing"
	"testing/quick"

	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// familyGraphs instantiates every generator family in internal/graph/gen
// (gen.go and smallworld.go) at sizes small enough for the full algorithm ×
// backend product.
func familyGraphs() map[string]*Graph {
	return map[string]*Graph{
		"path":            gen.Path(257),
		"cycle":           gen.Cycle(200),
		"two-cycles":      gen.TwoCycles(201),
		"grid":            gen.Grid(13, 17),
		"torus":           gen.Torus(9, 11),
		"hypercube":       gen.Hypercube(7),
		"complete":        gen.Complete(40),
		"star":            gen.Star(120),
		"binary-tree":     gen.BinaryTree(255),
		"random-regular":  gen.RandomRegular(512, 4, 7),
		"gnm":             gen.GNM(400, 700, 9),
		"ring-of-cliques": gen.RingOfCliques(8, 12, 2, 3),
		"lollipop":        gen.Lollipop(150, 40),
		"barbell":         gen.Barbell(90, 25),
		"union":           gen.Union(gen.Path(60), gen.Cycle(45), graph.New(10)),
		"many-components": gen.ManyComponents(5, func(i int) *Graph { return gen.GNM(80, 120, uint64(i+1)) }),
		"sampled":         gen.SampleEdges(gen.Grid(20, 20), 0.55, 11),
		"appendix-b":      gen.AppendixB(400, 3),
		"watts-strogatz":  gen.WattsStrogatz(300, 6, 0.1, 13),
		"barabasi-albert": gen.BarabasiAlbert(300, 3, 17),
	}
}

// TestBackendEquivalenceAcrossFamilies is the cross-backend property test:
// for every generator family and a spread of algorithms, the concurrent
// backend must produce the same component partition as the sequential
// simulator (both checked against BFS ground truth, so a mutual failure
// cannot hide).
func TestBackendEquivalenceAcrossFamilies(t *testing.T) {
	algos := []Algorithm{FLS, CASUnite, LTZ, LT, LabelProp, SV}
	for name, g := range familyGraphs() {
		truth := mustLabels(t, g, &Options{Algorithm: BFS})
		for _, algo := range algos {
			seqL := mustLabels(t, g, &Options{Algorithm: algo, Backend: BackendSequential, Seed: 5})
			conL := mustLabels(t, g, &Options{Algorithm: algo, Backend: BackendConcurrent, Procs: 4, Seed: 5})
			if !graph.SamePartition(truth, seqL) {
				t.Errorf("%s/%s: sequential backend wrong", name, algo)
			}
			if !graph.SamePartition(seqL, conL) {
				t.Errorf("%s/%s: concurrent partition differs from sequential", name, algo)
			}
		}
	}
}

func mustLabels(t *testing.T, g *Graph, o *Options) []int32 {
	t.Helper()
	res, err := ConnectedComponents(g, o)
	if err != nil {
		t.Fatalf("%s: %v", o.Algorithm, err)
	}
	return res.Labels
}

func TestBackendEquivalenceQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.GNM(150, 220, seed)
		a, err := ConnectedComponents(g, &Options{Backend: BackendSequential, Seed: seed})
		if err != nil {
			return false
		}
		b, err := ConnectedComponents(g, &Options{Backend: BackendConcurrent, Procs: 3, Seed: seed})
		if err != nil {
			return false
		}
		return graph.SamePartition(a.Labels, b.Labels) && Verify(g, b.Labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestCASUniteDeterministicMinLabels(t *testing.T) {
	g := gen.Union(gen.Cycle(99), gen.GNM(200, 300, 4))
	want := mustLabels(t, g, &Options{Algorithm: CASUnite, Backend: BackendSequential})
	for _, procs := range []int{1, 2, 8} {
		got := mustLabels(t, g, &Options{Algorithm: CASUnite, Backend: BackendConcurrent, Procs: procs})
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("procs=%d: label[%d]=%d, want %d (cas-unite must be schedule-independent)",
					procs, v, got[v], want[v])
			}
		}
	}
	// cas-unite charges a nominal model cost, so comparisons stay honest.
	res, err := ConnectedComponents(g, &Options{Algorithm: CASUnite})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 || res.Work == 0 {
		t.Error("cas-unite should charge a nominal PRAM cost")
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	if _, err := ConnectedComponents(NewGraph(3), &Options{Backend: "gpu"}); err == nil {
		t.Fatal("unknown backend should error")
	}
}

func TestResultEchoesBackendAndProcs(t *testing.T) {
	res, err := ConnectedComponents(gen.Path(50), &Options{Backend: BackendConcurrent, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != BackendConcurrent || res.Procs != 2 {
		t.Fatalf("echo = (%q, %d)", res.Backend, res.Procs)
	}
	seq, err := ConnectedComponents(gen.Path(50), &Options{Backend: BackendSequential, Procs: 9})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Procs != 1 {
		t.Fatalf("sequential backend should report procs=1, got %d", seq.Procs)
	}
}
