package parcc

import (
	"errors"
	"fmt"
)

// This file is the error taxonomy of the Solver API.  Every error returned
// by the session and incremental entry points either is one of the
// sentinels below or wraps one of the typed errors, so callers (and the
// serving layer in internal/service, which maps them to HTTP statuses)
// dispatch with errors.Is / errors.As instead of matching strings:
//
//	ErrSolverClosed   — the Solver was Closed; no call succeeds afterwards.
//	ErrNotAttached    — an incremental call (AddEdges, RemoveEdges,
//	                    Components, ComponentsInto, PublishSnapshot) before
//	                    Attach bound a live graph.
//	ErrNilGraph       — a nil *Graph was passed where a graph is required.
//	*EdgeRangeError   — a batch edge has an endpoint outside [0, n); the
//	                    error carries the offending edge and the bound.
//	*ProcsRangeError  — Options.Procs was negative; parallelism is zero
//	                    (defaulted) or positive, never clamped silently.
//	*MissingEdgeError — a RemoveEdges batch references more occurrences of
//	                    some edge than the live multiset holds; the error
//	                    carries the shortfall.
//
// All mutating calls fail without mutating: an error from AddEdges or
// RemoveEdges leaves the live graph, the partition, and the published
// snapshot exactly as they were.

// ErrSolverClosed reports a call on a Solver after Close.
var ErrSolverClosed = errors.New("parcc: solver is closed")

// ErrNotAttached reports an incremental-API call on a Solver with no live
// graph (Attach has not been called, or the last Attach failed).
var ErrNotAttached = errors.New("parcc: no live graph attached (call Attach first)")

// ErrNilGraph reports a nil graph argument.
var ErrNilGraph = errors.New("parcc: nil graph")

// EdgeRangeError reports a batch edge whose endpoint is outside [0, N).
// Returned (wrapped) by AddEdges and RemoveEdges; match with errors.As.
type EdgeRangeError struct {
	Edge Edge // the offending edge
	N    int  // the live graph's vertex-count bound
}

func (e *EdgeRangeError) Error() string {
	return fmt.Sprintf("parcc: edge (%d,%d) out of range [0,%d)", e.Edge.U, e.Edge.V, e.N)
}

// ProcsRangeError reports a negative Options.Procs.  Zero means "use the
// default"; a negative request has no sensible reading, and clamping it
// silently would hide the caller bug, so NewSolver (and therefore
// ConnectedComponents) rejects it before any session state is built.
type ProcsRangeError struct {
	Procs int
}

func (e *ProcsRangeError) Error() string {
	return fmt.Sprintf("parcc: Options.Procs = %d is negative (0 selects the default)", e.Procs)
}

// MissingEdgeError reports a RemoveEdges batch that references more
// occurrences of some edge than the live multiset holds.  Count is the
// total shortfall across the batch.  The live graph is unchanged.
type MissingEdgeError struct {
	Count int
}

func (e *MissingEdgeError) Error() string {
	return fmt.Sprintf("parcc: remove batch includes %d edge occurrence(s) not in the live graph", e.Count)
}
