package parcc

import (
	"errors"
	"fmt"
)

// This file is the error taxonomy of the Solver API.  Every error returned
// by the session and incremental entry points either is one of the
// sentinels below or wraps one of the typed errors, so callers (and the
// serving layer in internal/service, which maps them to HTTP statuses)
// dispatch with errors.Is / errors.As instead of matching strings:
//
//	ErrSolverClosed   — the Solver was Closed; no call succeeds afterwards.
//	ErrNotAttached    — an incremental call (AddEdges, RemoveEdges,
//	                    Components, ComponentsInto, PublishSnapshot) before
//	                    Attach bound a live graph.
//	ErrNilGraph       — a nil *Graph was passed where a graph is required.
//	*EdgeRangeError   — a batch edge has an endpoint outside [0, n); the
//	                    error carries the offending edge and the bound.
//	*ProcsRangeError  — Options.Procs was negative; parallelism is zero
//	                    (defaulted) or positive, never clamped silently.
//	*MissingEdgeError — a RemoveEdges batch references more occurrences of
//	                    some edge than the live multiset holds; the error
//	                    carries the shortfall.
//	ErrRecovering     — the serving layer is replaying its write-ahead log;
//	                    the call should be retried once recovery finishes
//	                    (mapped to HTTP 503 by internal/service).
//	*WALCorruptionError — a write-ahead-log file failed to decode; the
//	                    error carries the file, byte offset, reason, and
//	                    whether the damage is a torn tail (tolerated on
//	                    recovery) or mid-log corruption (fatal).
//	ErrReadOnlyReplica / *ReadOnlyReplicaError — the serving layer is a
//	                    follower replica: it tails a primary's write-ahead
//	                    log and serves reads, but accepts no writes.  The
//	                    typed carrier names the primary to write to
//	                    (mapped to HTTP 409 by internal/service).
//
// All mutating calls fail without mutating: an error from AddEdges or
// RemoveEdges leaves the live graph, the partition, and the published
// snapshot exactly as they were.

// ErrSolverClosed reports a call on a Solver after Close.
var ErrSolverClosed = errors.New("parcc: solver is closed")

// ErrNotAttached reports an incremental-API call on a Solver with no live
// graph (Attach has not been called, or the last Attach failed).
var ErrNotAttached = errors.New("parcc: no live graph attached (call Attach first)")

// ErrNilGraph reports a nil graph argument.
var ErrNilGraph = errors.New("parcc: nil graph")

// EdgeRangeError reports a batch edge whose endpoint is outside [0, N).
// Returned (wrapped) by AddEdges and RemoveEdges; match with errors.As.
type EdgeRangeError struct {
	Edge Edge // the offending edge
	N    int  // the live graph's vertex-count bound
}

func (e *EdgeRangeError) Error() string {
	return fmt.Sprintf("parcc: edge (%d,%d) out of range [0,%d)", e.Edge.U, e.Edge.V, e.N)
}

// ProcsRangeError reports a negative Options.Procs.  Zero means "use the
// default"; a negative request has no sensible reading, and clamping it
// silently would hide the caller bug, so NewSolver (and therefore
// ConnectedComponents) rejects it before any session state is built.
type ProcsRangeError struct {
	Procs int
}

func (e *ProcsRangeError) Error() string {
	return fmt.Sprintf("parcc: Options.Procs = %d is negative (0 selects the default)", e.Procs)
}

// MissingEdgeError reports a RemoveEdges batch that references more
// occurrences of some edge than the live multiset holds.  Count is the
// total shortfall across the batch.  The live graph is unchanged.
type MissingEdgeError struct {
	Count int
}

func (e *MissingEdgeError) Error() string {
	return fmt.Sprintf("parcc: remove batch includes %d edge occurrence(s) not in the live graph", e.Count)
}

// ErrRecovering reports a call rejected because the serving layer is
// still replaying its write-ahead log.  Transient: retry after recovery.
var ErrRecovering = errors.New("parcc: recovering from write-ahead log")

// WALCorruptionError reports a write-ahead-log frame that failed to
// decode.  Torn marks damage consistent with an interrupted final write
// (a truncated length prefix or frame body): recovery tolerates exactly
// that, truncating the log to the last whole record.  Any non-torn
// corruption (checksum mismatch, impossible lengths, unknown record
// kinds, a record the session rejects on replay) fails recovery instead —
// a log that lies must never yield silent partial state.  Match with
// errors.As.
type WALCorruptionError struct {
	Path   string // log file ("" when decoding a byte stream)
	Offset int64  // byte offset of the offending frame
	Reason string
	Torn   bool
}

// ErrReadOnlyReplica reports a mutation sent to a follower replica.
// Followers reconstruct their graphs from a primary's write-ahead-log
// stream; accepting a local write would fork the replicated history, so
// every mutating call is rejected.  Match with errors.Is; the concrete
// error is a *ReadOnlyReplicaError naming the primary.
var ErrReadOnlyReplica = errors.New("parcc: replica is read-only")

// ReadOnlyReplicaError is the carrier behind ErrReadOnlyReplica: it names
// the primary that accepts writes for this replica's graphs, so clients
// (and the HTTP 409 response body) can redirect instead of retrying here.
type ReadOnlyReplicaError struct {
	Primary string // base URL of the primary, "" when not configured
}

func (e *ReadOnlyReplicaError) Error() string {
	if e.Primary == "" {
		return "parcc: replica is read-only"
	}
	return fmt.Sprintf("parcc: replica is read-only (writes go to primary %s)", e.Primary)
}

// Unwrap makes errors.Is(err, ErrReadOnlyReplica) match the carrier.
func (e *ReadOnlyReplicaError) Unwrap() error { return ErrReadOnlyReplica }

func (e *WALCorruptionError) Error() string {
	kind := "corrupt"
	if e.Torn {
		kind = "torn"
	}
	path := e.Path
	if path == "" {
		path = "wal"
	}
	return fmt.Sprintf("parcc: %s %s at offset %d: %s", kind, path, e.Offset, e.Reason)
}
