package parcc

import (
	"testing"
	"testing/quick"

	"parcc/internal/pram"
)

// Cross-cutting properties of the public API, checked with testing/quick.

// TestPropertyLabelsAreRepresentatives: every label is a member of its own
// component (labels are representatives, not arbitrary ints).
func TestPropertyLabelsAreRepresentatives(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNM(80, 110, seed)
		res, err := ConnectedComponents(g, &Options{Seed: seed + 1})
		if err != nil {
			return false
		}
		for v, l := range res.Labels {
			if res.Labels[l] != l {
				return false
			}
			_ = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEdgeEndpointsShareLabels: each edge's endpoints always share
// a label.
func TestPropertyEdgeEndpointsShareLabels(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNM(70, 130, seed)
		res, err := ConnectedComponents(g, &Options{Seed: seed})
		if err != nil {
			return false
		}
		for _, e := range g.Edges {
			if res.Labels[e.U] != res.Labels[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyComponentCountVsEdges: adding an edge never increases the
// component count, and decreases it by at most one.
func TestPropertyComponentCountVsEdges(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNM(50, 40, seed)
		r1, err := ConnectedComponents(g, &Options{Algorithm: UnionFind})
		if err != nil {
			return false
		}
		u := int(pram.SplitMix64(seed) % uint64(g.N))
		v := int(pram.SplitMix64(seed+1) % uint64(g.N))
		g2 := g.Clone()
		g2.AddEdge(u, v)
		r2, err := ConnectedComponents(g2, &Options{Seed: seed})
		if err != nil {
			return false
		}
		d := r1.NumComponents - r2.NumComponents
		return d == 0 || d == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertySamplingMonotone: a sampled subgraph never has fewer
// components than the original.
func TestPropertySamplingMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNM(60, 90, seed)
		full, err := ConnectedComponents(g, &Options{Algorithm: BFS})
		if err != nil {
			return false
		}
		s := SampleEdges(g, 0.5, seed)
		sub, err := ConnectedComponents(s, &Options{Algorithm: BFS})
		if err != nil {
			return false
		}
		return sub.NumComponents >= full.NumComponents
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyUnionAddsComponents: components(g1 ⊎ g2) = components(g1) +
// components(g2).
func TestPropertyUnionAddsComponents(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		g1 := GNM(40, 50, s1)
		g2 := GNM(30, 25, s2)
		u := UnionGraphs(g1, g2)
		c1, err1 := ConnectedComponents(g1, &Options{Seed: 1})
		c2, err2 := ConnectedComponents(g2, &Options{Seed: 1})
		cu, err3 := ConnectedComponents(u, &Options{Seed: 1})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return cu.NumComponents == c1.NumComponents+c2.NumComponents
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAlgorithmsAgreePairwise: FLS, LTZ and SV induce the same
// partition on arbitrary random multigraphs.
func TestPropertyAlgorithmsAgreePairwise(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNM(64, 100, seed)
		a, err1 := ConnectedComponents(g, &Options{Algorithm: FLS, Seed: seed})
		b, err2 := ConnectedComponents(g, &Options{Algorithm: LTZ, Seed: seed})
		c, err3 := ConnectedComponents(g, &Options{Algorithm: SV, Seed: seed})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return samePartition(a.Labels, b.Labels) && samePartition(b.Labels, c.Labels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// samePartition mirrors graph.SamePartition for the root package tests.
func samePartition(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int32{}
	bwd := map[int32]int32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		fwd[a[i]] = b[i]
		if y, ok := bwd[b[i]]; ok && y != a[i] {
			return false
		}
		bwd[b[i]] = a[i]
	}
	return true
}
