package parcc

import (
	"math/rand"
	"slices"
	"testing"

	"parcc/internal/baseline"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// TestAttachMatchesScratch: the partition right after Attach must equal a
// cold ConnectedComponents solve, with the exact component count.
func TestAttachMatchesScratch(t *testing.T) {
	g := solverTestGraph()
	want, err := ConnectedComponents(g, &Options{Algorithm: BFS})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Attach(g.Clone()); err != nil {
		t.Fatal(err)
	}
	res, err := s.Components()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumComponents != want.NumComponents {
		t.Fatalf("components = %d, want %d", res.NumComponents, want.NumComponents)
	}
	if !graph.SamePartition(want.Labels, res.Labels) {
		t.Fatal("attach partition differs from scratch solve")
	}
	if res.Algorithm != Incremental {
		t.Fatalf("Algorithm echo = %q, want %q", res.Algorithm, Incremental)
	}
}

// TestAddEdgesMerges: inserts must merge components and keep the count
// exact, without a re-solve.
func TestAddEdgesMerges(t *testing.T) {
	s, err := NewSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Attach(NewGraph(6)); err != nil {
		t.Fatal(err)
	}
	check := func(want int) {
		t.Helper()
		res, err := s.Components()
		if err != nil {
			t.Fatal(err)
		}
		if res.NumComponents != want {
			t.Fatalf("components = %d, want %d", res.NumComponents, want)
		}
	}
	check(6)
	if err := s.AddEdges([]Edge{{U: 0, V: 1}, {U: 2, V: 3}}); err != nil {
		t.Fatal(err)
	}
	check(4)
	// Parallel edge and self-loop change nothing; a bridge merges.
	if err := s.AddEdges([]Edge{{U: 1, V: 0}, {U: 4, V: 4}, {U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	check(3)
}

// TestRemoveEdgesSplits: deleting a bridge must split a component via the
// scoped re-solve; deleting one copy of a parallel edge must not.
func TestRemoveEdgesSplits(t *testing.T) {
	s, err := NewSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := FromPairs(5, [][2]int{{0, 1}, {1, 2}, {2, 1}, {3, 4}})
	if err := s.Attach(g); err != nil {
		t.Fatal(err)
	}
	comps := func() int {
		t.Helper()
		res, err := s.Components()
		if err != nil {
			t.Fatal(err)
		}
		return res.NumComponents
	}
	if c := comps(); c != 2 {
		t.Fatalf("start: %d components, want 2", c)
	}
	// One copy of the parallel pair (1,2)/(2,1): still connected.
	if err := s.RemoveEdges([]Edge{{U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	if c := comps(); c != 2 {
		t.Fatalf("after parallel-copy removal: %d components, want 2", c)
	}
	// The remaining copy (matched in reversed orientation): splits.
	if err := s.RemoveEdges([]Edge{{U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	if c := comps(); c != 3 {
		t.Fatalf("after bridge removal: %d components, want 3", c)
	}
	if err := s.RemoveEdges([]Edge{{U: 3, V: 4}, {U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if c := comps(); c != 5 {
		t.Fatalf("fully disconnected: %d components, want 5", c)
	}
	if s.Live().M() != 0 {
		t.Fatalf("live graph still has %d edges", s.Live().M())
	}
}

// TestIncrementalErrors: the API must reject misuse without corrupting the
// live state.
func TestIncrementalErrors(t *testing.T) {
	s, err := NewSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AddEdges([]Edge{{U: 0, V: 1}}); err == nil {
		t.Fatal("AddEdges before Attach must error")
	}
	if _, err := s.Components(); err == nil {
		t.Fatal("Components before Attach must error")
	}
	if err := s.Attach(gen.Path(4)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdges([]Edge{{U: 0, V: 9}}); err == nil {
		t.Fatal("out-of-range endpoint must error")
	}
	if err := s.RemoveEdges([]Edge{{U: 0, V: 3}}); err == nil {
		t.Fatal("removing a missing edge must error")
	}
	// The failed removal must not have mutated anything.
	res, err := s.Components()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumComponents != 1 || s.Live().M() != 3 {
		t.Fatalf("failed removal corrupted state: comps=%d m=%d", res.NumComponents, s.Live().M())
	}
	closed, err := NewSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := closed.Attach(gen.Path(3)); err != nil {
		t.Fatal(err)
	}
	closed.Close()
	if err := closed.AddEdges([]Edge{{U: 0, V: 1}}); err == nil {
		t.Fatal("closed solver must refuse incremental updates")
	}
}

// TestIncrementalRandomizedVsScratch is the equivalence satellite: 1000
// random add/remove batches — 25 per generator family per backend, over
// all 20 families on both backends — each checked against a from-scratch
// solve of the mutated graph.  The referee is baseline.IncOracle (an
// independent union-find reimplementation of the multiset semantics), and
// the cold solve of the oracle's graph must match the live partition
// exactly (partition equality; component count is compared exactly).
// After every batch the session's maintained spanning forest must also be
// a valid certificate of the live graph — acyclic, spanning each
// component exactly, forest edges ⊆ live edges (dynconn.Tracker.Check) —
// the property the whole deletion fast path rests on.
func TestIncrementalRandomizedVsScratch(t *testing.T) {
	const batchesPerCase = 25
	for name, g0 := range familyGraphs() {
		for _, be := range []Backend{BackendSequential, BackendConcurrent} {
			rng := rand.New(rand.NewSource(int64(len(name)) * 2654435761))
			s, err := NewSolver(&Options{Backend: be, Procs: 3, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Attach(g0.Clone()); err != nil {
				t.Fatal(err)
			}
			oracle := baseline.NewIncOracle(g0)
			res := &Result{}
			for b := 0; b < batchesPerCase; b++ {
				live := oracle.Graph()
				if rng.Intn(10) < 6 || live.M() == 0 {
					// Insert batch: random pairs, occasional loop/parallel.
					k := 1 + rng.Intn(8)
					batch := make([]Edge, k)
					for i := range batch {
						u := int32(rng.Intn(live.N))
						v := int32(rng.Intn(live.N))
						if rng.Intn(8) == 0 && live.M() > 0 {
							e := live.Edges[rng.Intn(live.M())]
							u, v = e.U, e.V // duplicate an existing edge
						}
						batch[i] = Edge{U: u, V: v}
					}
					if err := s.AddEdges(batch); err != nil {
						t.Fatalf("%s/%s batch %d: AddEdges: %v", name, be, b, err)
					}
					if err := oracle.AddEdges(batch); err != nil {
						t.Fatalf("%s/%s batch %d: oracle AddEdges: %v", name, be, b, err)
					}
				} else {
					// Remove batch: distinct random occurrences.
					k := 1 + rng.Intn(6)
					if k > live.M() {
						k = live.M()
					}
					idx := rng.Perm(live.M())[:k]
					batch := make([]Edge, 0, k)
					for _, i := range idx {
						batch = append(batch, live.Edges[i])
					}
					if err := s.RemoveEdges(batch); err != nil {
						t.Fatalf("%s/%s batch %d: RemoveEdges: %v", name, be, b, err)
					}
					if err := oracle.RemoveEdges(batch); err != nil {
						t.Fatalf("%s/%s batch %d: oracle RemoveEdges: %v", name, be, b, err)
					}
				}
				if err := s.ComponentsInto(res); err != nil {
					t.Fatalf("%s/%s batch %d: Components: %v", name, be, b, err)
				}
				want := oracle.Labels()
				if !graph.SamePartition(want, res.Labels) {
					t.Fatalf("%s/%s batch %d: live partition differs from scratch", name, be, b)
				}
				if wantN := graph.NumLabels(want); res.NumComponents != wantN {
					t.Fatalf("%s/%s batch %d: count %d, want %d", name, be, b, res.NumComponents, wantN)
				}
				if err := s.inc.forest.Check(s.inc.g, res.Labels); err != nil {
					t.Fatalf("%s/%s batch %d: forest invariant: %v", name, be, b, err)
				}
				// Snapshot equivalence: the COW-published labels must be
				// byte-identical to the eager flatten ComponentsInto just
				// computed from the same parent array — not merely the
				// same partition.
				sn, err := s.PublishSnapshot()
				if err != nil {
					t.Fatalf("%s/%s batch %d: publish: %v", name, be, b, err)
				}
				if !slices.Equal(sn.Labels(), res.Labels) {
					t.Fatalf("%s/%s batch %d: snapshot labels diverge from eager flatten", name, be, b)
				}
				if sn.NumComponents() != res.NumComponents {
					t.Fatalf("%s/%s batch %d: snapshot count %d, want %d", name, be, b, sn.NumComponents(), res.NumComponents)
				}
				counts := map[int32]int{}
				for _, l := range res.Labels {
					counts[l]++
				}
				for v := 0; v < sn.N(); v += 37 {
					if got, want := sn.ComponentSize(v), counts[res.Labels[v]]; got != want {
						t.Fatalf("%s/%s batch %d: ComponentSize(%d) = %d, want %d", name, be, b, v, got, want)
					}
				}
			}
			s.Close()
		}
	}
}

// TestIncrementalInterleavedWithSolve: a live session and plain Solve
// calls share the solver; the plan cache must follow the live graph
// through appends (delta extension) and removals (rebuild).
func TestIncrementalInterleavedWithSolve(t *testing.T) {
	s, err := NewSolver(&Options{Algorithm: BFS})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Attach(gen.Grid(8, 9).Clone()); err != nil {
		t.Fatal(err)
	}
	g := s.Live()
	for step := 0; step < 4; step++ {
		res, err := s.Solve(g) // BFS reads the cached plan
		if err != nil {
			t.Fatal(err)
		}
		live, err := s.Components()
		if err != nil {
			t.Fatal(err)
		}
		if !graph.SamePartition(res.Labels, live.Labels) {
			t.Fatalf("step %d: Solve and Components disagree", step)
		}
		if step%2 == 0 {
			if err := s.AddEdges([]Edge{{U: int32(step), V: int32(70 - step)}}); err != nil {
				t.Fatal(err)
			}
		} else {
			// Remove the chord the previous step added.
			if err := s.RemoveEdges([]Edge{{U: int32(step - 1), V: int32(71 - step)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestTrustGraphSkipsFingerprint is the Options.TrustGraph satellite: by
// default the plan cache catches in-place mutation (the regression of the
// stale-CSR bug); with TrustGraph the O(m) fingerprint pass is skipped, so
// the same mutation is — by documented contract — not noticed, while
// appends still invalidate via the length check.
func TestTrustGraphSkipsFingerprint(t *testing.T) {
	mutate := func(trust bool) (stale bool) {
		g := graph.FromPairs(4, [][2]int{{0, 1}, {2, 3}})
		s, err := NewSolver(&Options{Algorithm: BFS, TrustGraph: trust})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Solve(g); err != nil {
			t.Fatal(err)
		}
		g.Edges[1] = graph.Edge{U: 1, V: 2} // in-place, same length
		res, err := s.Solve(g)
		if err != nil {
			t.Fatal(err)
		}
		return !Verify(g, res.Labels)
	}
	if mutate(false) {
		t.Fatal("default solver must catch in-place mutation (fingerprint regression)")
	}
	if !mutate(true) {
		t.Fatal("TrustGraph solver re-fingerprinted the graph (the O(m) scan it promises to skip)")
	}
	// Remove-then-append under TrustGraph (net length growth): the plan
	// extension path must verify the prefix it builds on, not trust it —
	// the documented promise is that only same-length overwrites go
	// unnoticed.  Regression for a stale-CSR bug caught in review.
	gm := graph.FromPairs(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	sm, err := NewSolver(&Options{Algorithm: BFS, TrustGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	if _, err := sm.Solve(gm); err != nil {
		t.Fatal(err)
	}
	gm.Edges = append(gm.Edges[:0], graph.Edge{U: 1, V: 2}, graph.Edge{U: 3, V: 4})
	gm.AddEdge(4, 5)
	gm.AddEdge(2, 3)
	res, err := sm.Solve(gm)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(gm, res.Labels) {
		t.Fatal("TrustGraph plan extension served labels from an unverified mutated prefix")
	}

	// Appends are still caught under TrustGraph: the length check is kept.
	g := graph.FromPairs(4, [][2]int{{0, 1}})
	s, err := NewSolver(&Options{Algorithm: BFS, TrustGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Solve(g); err != nil {
		t.Fatal(err)
	}
	g.AddEdge(2, 3)
	res2, err := s.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(g, res2.Labels) {
		t.Fatal("TrustGraph must still detect appended edges via the length check")
	}
}

// TestComponentsIntoReusesBuffer: the re-query path must be allocation-
// friendly — the label backing is kept once it has the capacity.
func TestComponentsIntoReusesBuffer(t *testing.T) {
	s, err := NewSolver(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Attach(gen.Cycle(64).Clone()); err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	if err := s.ComponentsInto(res); err != nil {
		t.Fatal(err)
	}
	first := &res.Labels[0]
	if err := s.AddEdges([]Edge{{U: 0, V: 32}}); err != nil {
		t.Fatal(err)
	}
	if err := s.ComponentsInto(res); err != nil {
		t.Fatal(err)
	}
	if &res.Labels[0] != first {
		t.Fatal("ComponentsInto reallocated the label buffer despite sufficient capacity")
	}
}
