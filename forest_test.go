package parcc

import (
	"errors"
	"testing"

	"parcc/internal/baseline"
	"parcc/internal/dynconn"
	"parcc/internal/graph"
	"parcc/internal/graph/gen"
)

// This file is the adversarial test battery of the spanning-forest
// deletion path: delete streams engineered to hit each verdict of the
// replacement search (non-forest O(1), replacement found, true split,
// budget fallback), checked against the from-scratch oracle and the
// session's own trace counters.  The randomized equivalence and
// forest-invariant coverage lives in TestIncrementalRandomizedVsScratch;
// here the streams are deterministic worst cases.

// forestSession attaches g on the given backend with tracing on and
// returns the solver plus an oracle over the same graph.
func forestSession(t *testing.T, g *graph.Graph, be Backend) (*Solver, *baseline.IncOracle) {
	t.Helper()
	s, err := NewSolver(&Options{Backend: be, Procs: 3, Seed: 7, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(g.Clone()); err != nil {
		t.Fatal(err)
	}
	return s, baseline.NewIncOracle(g)
}

// forestCheckAgainstOracle asserts the live partition matches the oracle
// and the maintained forest is a valid certificate of the live graph.
func forestCheckAgainstOracle(t *testing.T, stage string, s *Solver, oracle *baseline.IncOracle) {
	t.Helper()
	res, err := s.Components()
	if err != nil {
		t.Fatalf("%s: Components: %v", stage, err)
	}
	want := oracle.Labels()
	if !graph.SamePartition(want, res.Labels) {
		t.Fatalf("%s: live partition differs from oracle", stage)
	}
	if wantN := graph.NumLabels(want); res.NumComponents != wantN {
		t.Fatalf("%s: count %d, want %d", stage, res.NumComponents, wantN)
	}
	if err := s.inc.forest.Check(s.inc.g, res.Labels); err != nil {
		t.Fatalf("%s: forest invariant: %v", stage, err)
	}
}

// TestForestNonForestDeleteIsO1 is the acceptance counter test: deleting
// a non-forest edge (a cycle chord, a parallel copy) must resolve through
// the O(1) path — no replacement search, no dirty component, no scoped
// re-solve — observable in the trace counters.
func TestForestNonForestDeleteIsO1(t *testing.T) {
	// A triangle with a parallel copy of one side: {0,1},{1,2},{2,0},{1,0}.
	g := graph.FromPairs(3, [][2]int{{0, 1}, {1, 2}, {2, 0}, {1, 0}})
	for _, be := range []Backend{BackendSequential, BackendConcurrent} {
		s, oracle := forestSession(t, g, be)
		// Two copies of {0,1} live and at most one is a forest edge, so
		// PickRemovable takes a non-forest copy; {2,0} closes the triangle
		// cycle, so after the first removal one of the remaining three
		// edges is still non-forest.
		for step, rm := range [][]Edge{{{U: 0, V: 1}}, {{U: 2, V: 0}}} {
			if err := s.RemoveEdges(rm); err != nil {
				t.Fatalf("%s step %d: %v", be, step, err)
			}
			if err := oracle.RemoveEdges(rm); err != nil {
				t.Fatal(err)
			}
			tr := s.LastTrace()
			if tr == nil || tr.Incremental == nil {
				t.Fatalf("%s step %d: missing incremental trace", be, step)
			}
			inc := tr.Incremental
			if inc.NonForestDeletes != 1 || inc.ForestDeletes != 0 {
				t.Errorf("%s step %d: deletes forest=%d non-forest=%d, want 0/1",
					be, step, inc.ForestDeletes, inc.NonForestDeletes)
			}
			if inc.ReplaceScans != 0 {
				t.Errorf("%s step %d: non-forest delete scanned %d adjacency entries, want 0",
					be, step, inc.ReplaceScans)
			}
			if inc.DirtyComponents != 0 || inc.ScopedVertices != 0 {
				t.Errorf("%s step %d: non-forest delete triggered a re-solve (dirty=%d scoped=%dv)",
					be, step, inc.DirtyComponents, inc.ScopedVertices)
			}
			if d := tr.Phase("scoped"); d != 0 {
				t.Errorf("%s step %d: non-forest delete recorded a scoped phase (%v)", be, step, d)
			}
			forestCheckAgainstOracle(t, "non-forest delete", s, oracle)
		}
		s.Close()
	}
}

// TestForestBridgeOnlyDeletes drives the worst case for the forest flags:
// families where every edge is a bridge (path, binary tree), so every
// delete hits a forest edge and every verdict is a true split.  The small
// sizes keep every search far under budget — the scoped fallback must
// never fire.
func TestForestBridgeOnlyDeletes(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"path", gen.Path(256)},
		{"tree", gen.BinaryTree(255)},
	} {
		for _, be := range []Backend{BackendSequential, BackendConcurrent} {
			s, oracle := forestSession(t, tc.g, be)
			var splits, fallbacks int64
			// Delete every edge, a few per batch, in a scattered order.
			live := append([]Edge(nil), tc.g.Edges...)
			for len(live) > 0 {
				k := 3
				if k > len(live) {
					k = len(live)
				}
				batch := make([]Edge, 0, k)
				for i := 0; i < k; i++ {
					// Stride through the remaining edges for scattered cuts.
					j := (i * 97) % len(live)
					batch = append(batch, live[j])
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				if err := s.RemoveEdges(batch); err != nil {
					t.Fatalf("%s/%s: RemoveEdges: %v", tc.name, be, err)
				}
				if err := oracle.RemoveEdges(batch); err != nil {
					t.Fatal(err)
				}
				tr := s.LastTrace().Incremental
				if tr.NonForestDeletes != 0 {
					t.Fatalf("%s/%s: bridge-only family recorded %d non-forest deletes",
						tc.name, be, tr.NonForestDeletes)
				}
				splits += tr.Splits
				fallbacks += tr.BudgetFallbacks
				forestCheckAgainstOracle(t, tc.name+" delete batch", s, oracle)
			}
			if fallbacks != 0 {
				t.Errorf("%s/%s: %d budget fallbacks on a tiny bridge-only family", tc.name, be, fallbacks)
			}
			// Every delete of a bridge in a forest-only graph is a split:
			// the end state is n isolated vertices.
			if want := int64(tc.g.M()); splits != want {
				t.Errorf("%s/%s: %d splits across the full delete stream, want %d", tc.name, be, splits, want)
			}
			res, err := s.Components()
			if err != nil {
				t.Fatal(err)
			}
			if res.NumComponents != tc.g.N {
				t.Errorf("%s/%s: fully deleted graph has %d components, want %d",
					tc.name, be, res.NumComponents, tc.g.N)
			}
			s.Close()
		}
	}
}

// TestForestCliqueBridgeEarlyStop: a clique with one pendant bridge.
// Deleting clique edges must never split or scan past the first crossing
// edge, and deleting the bridge must split after scanning work bounded by
// the interleaving quantum — the smaller side (the pendant) exhausts
// immediately, so the search never pays for the clique's density.
func TestForestCliqueBridgeEarlyStop(t *testing.T) {
	const k = 24 // clique vertices 0..23, pendant 24, m = 277
	pairs := make([][2]int, 0, k*(k-1)/2+1)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	pairs = append(pairs, [2]int{k - 1, k})
	g := graph.FromPairs(k+1, pairs)
	for _, be := range []Backend{BackendSequential, BackendConcurrent} {
		s, oracle := forestSession(t, g, be)
		// Thin the clique: delete a scattered half of its edges.  Each hit
		// is either non-forest (free) or a forest edge whose replacement is
		// found among the clique's dense chords.
		var batch []Edge
		for i, p := range pairs[:len(pairs)-1] {
			if i%2 == 0 {
				batch = append(batch, Edge{U: int32(p[0]), V: int32(p[1])})
			}
		}
		if err := s.RemoveEdges(batch); err != nil {
			t.Fatalf("%s: thinning: %v", be, err)
		}
		if err := oracle.RemoveEdges(batch); err != nil {
			t.Fatal(err)
		}
		tr := s.LastTrace().Incremental
		if tr.Splits != 0 || tr.DirtyComponents != 0 || tr.BudgetFallbacks != 0 {
			t.Errorf("%s: thinning a clique split/dirtied (splits=%d dirty=%d fallbacks=%d)",
				be, tr.Splits, tr.DirtyComponents, tr.BudgetFallbacks)
		}
		forestCheckAgainstOracle(t, "clique thinning", s, oracle)

		// The bridge: a real split whose smaller side is one vertex.  The
		// pendant side exhausts after scanning its (now empty) adjacency,
		// so the whole search costs at most one quantum of the clique side
		// plus the pendant's empty crossing scan.
		bridge := []Edge{{U: int32(k - 1), V: int32(k)}}
		if err := s.RemoveEdges(bridge); err != nil {
			t.Fatalf("%s: bridge: %v", be, err)
		}
		if err := oracle.RemoveEdges(bridge); err != nil {
			t.Fatal(err)
		}
		tr = s.LastTrace().Incremental
		if tr.Splits != 1 {
			t.Errorf("%s: bridge delete recorded %d splits, want 1", be, tr.Splits)
		}
		if tr.ReplaceScans > 64 {
			t.Errorf("%s: bridge split scanned %d entries; the smaller side must bound the search (want ≤ 64)",
				be, tr.ReplaceScans)
		}
		forestCheckAgainstOracle(t, "bridge split", s, oracle)
		s.Close()
	}
}

// TestForestChurnReturnsToOriginal: a delete-then-reinsert loop over a
// ring of cliques must return to the exact original partition after every
// round, with the forest invariant holding at both half-steps.
func TestForestChurnReturnsToOriginal(t *testing.T) {
	g := gen.RingOfCliques(8, 12, 1, 5)
	for _, be := range []Backend{BackendSequential, BackendConcurrent} {
		s, oracle := forestSession(t, g, be)
		orig, err := s.Components()
		if err != nil {
			t.Fatal(err)
		}
		origLabels := append([]int32(nil), orig.Labels...)
		for round := 0; round < 8; round++ {
			// A churn batch mixing bridges (ring edges between cliques) and
			// intra-clique chords, shifted each round.
			var batch []Edge
			for i := round; i < g.M(); i += 13 {
				batch = append(batch, g.Edges[i])
			}
			if err := s.RemoveEdges(batch); err != nil {
				t.Fatalf("%s round %d: remove: %v", be, round, err)
			}
			if err := oracle.RemoveEdges(batch); err != nil {
				t.Fatal(err)
			}
			forestCheckAgainstOracle(t, "churn remove", s, oracle)
			if err := s.AddEdges(batch); err != nil {
				t.Fatalf("%s round %d: reinsert: %v", be, round, err)
			}
			if err := oracle.AddEdges(batch); err != nil {
				t.Fatal(err)
			}
			forestCheckAgainstOracle(t, "churn reinsert", s, oracle)
			res, err := s.Components()
			if err != nil {
				t.Fatal(err)
			}
			if !graph.SamePartition(origLabels, res.Labels) {
				t.Fatalf("%s round %d: churn did not return to the original partition", be, round)
			}
		}
		s.Close()
	}
}

// TestForestBudgetFallback forces the replacement search over budget — a
// long cycle whose only replacement edge is maximally far from the cut —
// and asserts the scoped fallback repairs both the labels and the
// region's forest flags.  The second batch entry lands in the same
// component and must take the dirty short-circuit (no second search).
func TestForestBudgetFallback(t *testing.T) {
	defer func(old int64) { dynconn.BudgetFloor = old }(dynconn.BudgetFloor)
	dynconn.BudgetFloor = 16 // cycle m/4 stays the binding budget: 128 « the ~1000-entry search

	g := gen.Cycle(512)
	// Sequential attach unites the edge list in order, so the cycle-closing
	// edge {511,0} is the one non-forest edge; cutting {256,257} puts the
	// only replacement half a cycle from both BFS seeds.
	s, oracle := forestSession(t, g, BackendSequential)
	batch := []Edge{{U: 256, V: 257}, {U: 100, V: 101}}
	if err := s.RemoveEdges(batch); err != nil {
		t.Fatal(err)
	}
	if err := oracle.RemoveEdges(batch); err != nil {
		t.Fatal(err)
	}
	tr := s.LastTrace().Incremental
	if tr.BudgetFallbacks != 1 {
		t.Errorf("budget fallbacks = %d, want 1 (first delete blows the 128-entry budget)", tr.BudgetFallbacks)
	}
	if tr.ForestDeletes != 2 {
		t.Errorf("forest deletes = %d, want 2 (second entry takes the dirty short-circuit)", tr.ForestDeletes)
	}
	if tr.DirtyComponents < 1 || tr.ScopedVertices == 0 {
		t.Errorf("fallback must dirty the component and re-solve it scoped (dirty=%d scoped=%dv)",
			tr.DirtyComponents, tr.ScopedVertices)
	}
	forestCheckAgainstOracle(t, "budget fallback", s, oracle)
	s.Close()
}

// TestRemoveEdgesMultisetRegression pins the PR 3 multiset contract on
// the forest path's O(|batch|) validation: a batch referencing more
// occurrences than the live multiset holds — the same edge twice with one
// copy live, in same or mixed orientation — errors with the exact
// shortfall and mutates nothing; with enough copies live, the same batch
// removes one occurrence per entry.
func TestRemoveEdgesMultisetRegression(t *testing.T) {
	for _, be := range []Backend{BackendSequential, BackendConcurrent} {
		g := gen.Path(4) // one copy each of {0,1},{1,2},{2,3}
		s, oracle := forestSession(t, g, be)
		for _, batch := range [][]Edge{
			{{U: 1, V: 2}, {U: 1, V: 2}}, // same orientation twice
			{{U: 1, V: 2}, {U: 2, V: 1}}, // mixed orientation: same undirected edge
		} {
			err := s.RemoveEdges(batch)
			var miss *MissingEdgeError
			if !errors.As(err, &miss) {
				t.Fatalf("%s: double-remove of a single copy returned %v, want *MissingEdgeError", be, err)
			}
			if miss.Count != 1 {
				t.Errorf("%s: shortfall = %d, want 1 (two references, one copy)", be, miss.Count)
			}
			// No mutation: graph, partition, count, and forest unchanged.
			if got := s.Live().M(); got != 3 {
				t.Fatalf("%s: failed remove mutated the live graph (m = %d, want 3)", be, got)
			}
			forestCheckAgainstOracle(t, "failed remove", s, oracle)
		}
		// With a second (reversed) copy inserted, the mixed-orientation
		// batch is satisfiable and removes both copies.
		if err := s.AddEdges([]Edge{{U: 2, V: 1}}); err != nil {
			t.Fatal(err)
		}
		if err := oracle.AddEdges([]Edge{{U: 2, V: 1}}); err != nil {
			t.Fatal(err)
		}
		if err := s.RemoveEdges([]Edge{{U: 1, V: 2}, {U: 2, V: 1}}); err != nil {
			t.Fatalf("%s: removing two live copies: %v", be, err)
		}
		if err := oracle.RemoveEdges([]Edge{{U: 1, V: 2}, {U: 2, V: 1}}); err != nil {
			t.Fatal(err)
		}
		if got := s.Live().M(); got != 2 {
			t.Fatalf("%s: after removing both copies m = %d, want 2", be, got)
		}
		forestCheckAgainstOracle(t, "mixed-orientation remove", s, oracle)
		s.Close()
	}
}
